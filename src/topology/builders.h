// Topology builders. Each returns a validated Blueprint with every node
// placed at a real rack location and every cable routed through the trays.
//
// The set covers the paper's discussion in §4 "Scalable network topologies":
// the deployed-in-practice trees (fat-tree, leaf-spine), the expander-graph
// proposals it cites (Jellyfish [14], Xpander [17]) whose wiring complexity
// has kept them out of production, and the §1 GPU-cluster scenario with
// rail-optimized links.
#pragma once

#include <cstdint>

#include "topology/blueprint.h"

namespace smn::topology {

struct FatTreeParams {
  int k = 8;                     // pod/port parameter; must be even and >= 4
  double edge_gbps = 100.0;      // server <-> ToR
  double fabric_gbps = 400.0;    // ToR <-> agg <-> core
};
/// Standard 3-tier k-ary fat-tree: k pods, (k/2)^2 cores, k^3/4 servers.
[[nodiscard]] Blueprint build_fat_tree(const FatTreeParams& p);

struct LeafSpineParams {
  int leaves = 16;
  int spines = 4;
  int servers_per_leaf = 24;
  int uplinks_per_spine = 1;     // parallel leaf->spine links (redundancy knob, E5)
  double server_gbps = 100.0;
  double uplink_gbps = 400.0;
};
/// Two-tier leaf-spine (folded Clos). `uplinks_per_spine` is the
/// right-provisioning knob swept in experiment E5.
[[nodiscard]] Blueprint build_leaf_spine(const LeafSpineParams& p);

struct JellyfishParams {
  int switches = 64;
  int network_degree = 8;        // ports per switch used for switch-switch links
  int servers_per_switch = 4;
  double server_gbps = 100.0;
  double fabric_gbps = 400.0;
  std::uint64_t seed = 1;
};
/// Jellyfish: switches wired as a random regular graph (Singla et al., NSDI'12).
[[nodiscard]] Blueprint build_jellyfish(const JellyfishParams& p);

struct XpanderParams {
  int network_degree = 8;        // d; base graph is K_{d+1}
  int lift = 8;                  // L copies of each base node => (d+1)*L switches
  int servers_per_switch = 4;
  double server_gbps = 100.0;
  double fabric_gbps = 400.0;
  std::uint64_t seed = 1;
};
/// Xpander: deterministic-degree expander built by random L-lift of K_{d+1}
/// (Valadarsky et al., CoNEXT'16).
[[nodiscard]] Blueprint build_xpander(const XpanderParams& p);

struct DragonflyParams {
  int routers_per_group = 4;   // a: full mesh within a group
  int servers_per_router = 2;  // p
  int global_per_router = 2;   // h: global links per router
  double server_gbps = 100.0;
  double local_gbps = 400.0;
  double global_gbps = 400.0;
};
/// Canonical dragonfly: g = a*h + 1 groups, full-mesh local wiring, one
/// global link between every pair of groups. Groups map to rows, so global
/// links are the long cross-row runs — the wiring profile that makes
/// dragonfly deployments cable-heavy.
[[nodiscard]] Blueprint build_dragonfly(const DragonflyParams& p);

struct Torus2dParams {
  int x = 6;
  int y = 6;
  int servers_per_node = 2;
  double server_gbps = 100.0;
  double fabric_gbps = 400.0;
};
/// 2-D torus: each switch links to its four grid neighbours with wraparound.
/// Wrap links span the full row/column — physically the longest cables in
/// the study, which the deployment/maintainability metrics notice.
[[nodiscard]] Blueprint build_torus2d(const Torus2dParams& p);

struct HybridParams {
  int switches = 32;
  int lattice_neighbors = 4;     // ring-lattice degree; must be even and >= 2
  double rewire_fraction = 0.1;  // Watts-Strogatz beta: fraction of lattice edges rewired
  int servers_per_switch = 4;
  double server_gbps = 100.0;
  double fabric_gbps = 400.0;
  std::uint64_t seed = 1;
};
/// Hybrid regular/random fabric (Sriram & Cliff): a ring lattice where each
/// switch links to its `lattice_neighbors` nearest ring neighbours, with a
/// `rewire_fraction` of edges re-pointed at uniformly random switches
/// (Watts-Strogatz small-world construction). beta=0 is a pure regular
/// lattice, beta=1 approaches a random graph — the sweep's survivability
/// preset probes both ends of that dial.
[[nodiscard]] Blueprint build_hybrid(const HybridParams& p);

struct GpuClusterParams {
  int gpu_servers = 32;
  int rails = 8;                 // NICs per server, one per rail switch
  int spines = 4;                // rail switches uplink to spines
  double rail_gbps = 400.0;
  double spine_gbps = 800.0;
};
/// Rail-optimized GPU training pod (§1 motivation): server NIC r connects to
/// rail switch r; losing one link degrades the whole server's collective
/// bandwidth.
[[nodiscard]] Blueprint build_gpu_cluster(const GpuClusterParams& p);

}  // namespace smn::topology
