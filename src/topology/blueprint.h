// A Blueprint is the full physical+logical description of a datacenter
// network: nodes (switches, servers) with rack locations, and links with
// cable routes through the tray system. It is what topology builders produce
// and what `smn::net::Network` instantiates into live simulated hardware.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "topology/physical.h"

namespace smn::topology {

enum class NodeRole : std::uint8_t {
  kCoreSwitch,
  kAggSwitch,
  kTorSwitch,   // also used for leaf switches
  kSpineSwitch,
  kRailSwitch,  // GPU-cluster rail-optimized switch
  kServer,
  kGpuServer,
};

[[nodiscard]] constexpr bool is_switch(NodeRole r) {
  return r != NodeRole::kServer && r != NodeRole::kGpuServer;
}
[[nodiscard]] const char* to_string(NodeRole r);

struct NodeSpec {
  std::string name;
  NodeRole role = NodeRole::kServer;
  RackLocation location;
  int ports_used = 0;  // maintained by Blueprint::connect
};

struct LinkSpec {
  int node_a = -1;
  int port_a = -1;
  int node_b = -1;
  int port_b = -1;
  double capacity_gbps = 100.0;
  CableRoute route;  // empty segments => in-rack cable
};

/// Builder-facing graph; immutable once handed to the network layer.
class Blueprint {
 public:
  explicit Blueprint(PhysicalLayout layout, std::string name = "topology")
      : layout_{std::move(layout)}, name_{std::move(name)} {}

  /// Adds a node; returns its index.
  int add_node(std::string name, NodeRole role, RackLocation loc);

  /// Connects two nodes, auto-assigning the next free port on each side and
  /// routing the cable through the tray system. Returns the link index.
  int connect(int node_a, int node_b, double capacity_gbps);

  [[nodiscard]] const PhysicalLayout& layout() const { return layout_; }
  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const std::vector<NodeSpec>& nodes() const { return nodes_; }
  [[nodiscard]] const std::vector<LinkSpec>& links() const { return links_; }
  [[nodiscard]] const NodeSpec& node(int i) const { return nodes_.at(static_cast<size_t>(i)); }
  [[nodiscard]] const LinkSpec& link(int i) const { return links_.at(static_cast<size_t>(i)); }
  /// Mutable link access for the owner to keep the blueprint in sync when a
  /// cable is physically re-terminated at runtime (Network::rewire).
  [[nodiscard]] LinkSpec& link_mut(int i) { return links_.at(static_cast<size_t>(i)); }

  /// neighbors()[n] lists (peer node, link index) pairs.
  [[nodiscard]] std::vector<std::vector<std::pair<int, int>>> adjacency() const;

  [[nodiscard]] std::size_t count_nodes(NodeRole role) const;
  [[nodiscard]] std::size_t server_count() const;
  [[nodiscard]] std::size_t switch_count() const;

  /// Throws std::logic_error if any invariant is broken (dangling endpoints,
  /// self-loops, locations outside the building).
  void validate() const;

 private:
  PhysicalLayout layout_;
  std::string name_;
  std::vector<NodeSpec> nodes_;
  std::vector<LinkSpec> links_;
};

}  // namespace smn::topology
