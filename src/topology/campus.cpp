#include "topology/campus.h"

#include <cmath>
#include <stdexcept>
#include <string>

namespace smn::topology {

std::size_t CampusBlueprint::node_count() const {
  std::size_t n = 0;
  for (const Blueprint& h : halls) n += h.nodes().size();
  return n;
}

std::size_t CampusBlueprint::link_count() const {
  std::size_t n = 0;
  for (const Blueprint& h : halls) n += h.links().size();
  return n;
}

void CampusBlueprint::validate() const {
  const int n = static_cast<int>(halls.size());
  for (const CrossHallLink& l : cross_links) {
    if (l.hall_a < 0 || l.hall_a >= n || l.hall_b < 0 || l.hall_b >= n) {
      throw std::logic_error{"campus cross link references hall outside [0, " +
                            std::to_string(n) + ")"};
    }
    if (l.hall_a == l.hall_b) {
      throw std::logic_error{"campus cross link is a self-loop on hall " +
                            std::to_string(l.hall_a)};
    }
    if (l.latency <= sim::Duration::zero()) {
      throw std::logic_error{
          "campus cross link latency must be > 0: it is the conservative lookahead "
          "bound for epoch barriers"};
    }
  }
}

CampusBlueprint build_campus(const CampusParams& p) {
  if (p.halls < 1) throw std::invalid_argument{"build_campus: halls must be >= 1"};
  CampusBlueprint campus;
  campus.name = "campus x" + std::to_string(p.halls);
  campus.halls.reserve(static_cast<std::size_t>(p.halls));
  for (int i = 0; i < p.halls; ++i) {
    Blueprint hall = build_leaf_spine(p.hall);
    campus.halls.push_back(std::move(hall));
  }

  auto trunk = [&](int a, int b) {
    CrossHallLink l;
    l.hall_a = a;
    l.hall_b = b;
    l.length_m = 2.0 * p.entry_run_m + std::abs(a - b) * p.hall_spacing_m;
    l.capacity_gbps = p.cross_capacity_gbps;
    const sim::Duration prop = sim::Duration::microseconds(
        static_cast<std::int64_t>(std::ceil(l.length_m * p.latency_us_per_m)));
    l.latency = prop < p.min_latency ? p.min_latency : prop;
    return l;
  };

  if (p.halls > 1) {
    if (p.ring) {
      for (int i = 0; i + 1 < p.halls; ++i) campus.cross_links.push_back(trunk(i, i + 1));
      if (p.halls > 2) campus.cross_links.push_back(trunk(0, p.halls - 1));  // wrap trunk
    } else {
      for (int i = 0; i < p.halls; ++i) {
        for (int j = i + 1; j < p.halls; ++j) campus.cross_links.push_back(trunk(i, j));
      }
    }
  }
  campus.validate();
  return campus;
}

}  // namespace smn::topology
