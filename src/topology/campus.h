// A campus: several independent halls (each a full Blueprint fabric) tied
// together by long inter-hall links. This is the multi-hall modular-DC shape
// the sharded simulation targets — one domain (own Simulator, Network,
// fleets) per hall, cross-hall interactions exchanged at epoch barriers.
//
// Inter-hall links are deliberately *not* folded into one giant Blueprint:
// the whole point of domain sharding is that a hall's event loop never reads
// another hall's mutable state. A CrossHallLink therefore carries only the
// coupling facts the barrier exchange needs: endpoints (hall indices),
// capacity, and the one number that bounds the epoch length — its latency.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/time.h"
#include "topology/blueprint.h"
#include "topology/builders.h"

namespace smn::topology {

/// One long-haul fiber trunk between two halls. Latency is the conservative
/// lookahead contribution: the epoch length of a sharded run is the minimum
/// latency over all cross links (see net/domain.h).
struct CrossHallLink {
  int hall_a = -1;
  int hall_b = -1;
  double length_m = 0.0;
  double capacity_gbps = 400.0;
  sim::Duration latency;
};

/// The full campus description: hall fabrics plus the inter-hall trunks.
struct CampusBlueprint {
  std::string name = "campus";
  std::vector<Blueprint> halls;
  std::vector<CrossHallLink> cross_links;

  [[nodiscard]] bool empty() const { return halls.empty(); }
  [[nodiscard]] std::size_t hall_count() const { return halls.size(); }

  /// Total devices / links across all halls (cross trunks excluded).
  [[nodiscard]] std::size_t node_count() const;
  [[nodiscard]] std::size_t link_count() const;

  /// Throws std::logic_error on dangling hall indices, self-loops, or
  /// non-positive cross-link latency (lookahead = 0 is unschedulable).
  void validate() const;
};

struct CampusParams {
  /// Number of identical halls; each is a leaf-spine fabric built from
  /// `hall`. >= 1.
  int halls = 4;
  LeafSpineParams hall{.leaves = 8, .spines = 4, .servers_per_leaf = 6};
  /// Physical spacing between adjacent halls; trunk length between halls i
  /// and j is |i-j| * hall_spacing_m plus an entry run per end.
  double hall_spacing_m = 120.0;
  double entry_run_m = 25.0;
  double cross_capacity_gbps = 1600.0;
  /// Propagation + switching latency per meter of trunk fiber. 5 ns/m of
  /// glass plus DWDM gear overhead, rounded to a round number that keeps
  /// epoch arithmetic exact in integer microseconds.
  double latency_us_per_m = 0.05;
  /// Floor on trunk latency, and therefore on the campus lookahead (= epoch
  /// length). This models the end-to-end time for a cross-hall interaction
  /// to take effect — traffic ramp-up, depot logistics dispatch — not raw
  /// fiber propagation (which at ~6 us would force millions of barriers per
  /// simulated day for no behavioral gain). One minute keeps a 30-day
  /// campus run at ~43k barriers while staying far below every producer
  /// period in scenario::CampusConfig.
  sim::Duration min_latency = sim::Duration::minutes(1.0);
  /// Ring topology (hall i <-> i+1, wrap) when true; full mesh when false.
  bool ring = true;
};

/// Builds a campus of `halls` identical leaf-spine halls joined by a ring (or
/// full mesh) of long trunks. Validated before return.
[[nodiscard]] CampusBlueprint build_campus(const CampusParams& p);

}  // namespace smn::topology
