#include "topology/metrics.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace smn::topology {

WiringStats compute_wiring_stats(const Blueprint& bp) {
  WiringStats st;
  st.links = bp.links().size();
  if (st.links == 0) return st;

  std::set<long> length_classes;
  std::unordered_map<TraySegment, std::vector<int>, TraySegmentHash> segment_cables;
  std::set<std::pair<long, long>> rack_pairs;
  auto rack_key = [](const RackLocation& loc) {
    return (static_cast<long>(loc.hall) << 40) ^ (static_cast<long>(loc.row) << 20) ^ loc.rack;
  };

  for (int li = 0; li < static_cast<int>(bp.links().size()); ++li) {
    const LinkSpec& l = bp.link(li);
    const auto& loc_a = bp.node(l.node_a).location;
    const auto& loc_b = bp.node(l.node_b).location;
    if (loc_a.same_rack(loc_b)) {
      ++st.in_rack;
    } else {
      if (loc_a.same_row(loc_b)) {
        ++st.same_row;
      } else {
        ++st.cross_row;
      }
      ++st.out_of_rack_cables;
      const long ka = rack_key(loc_a);
      const long kb = rack_key(loc_b);
      rack_pairs.insert({std::min(ka, kb), std::max(ka, kb)});
    }
    st.total_length_m += l.route.length_m;
    st.max_length_m = std::max(st.max_length_m, l.route.length_m);
    length_classes.insert(static_cast<long>(std::ceil(l.route.length_m)));
    for (const TraySegment& seg : l.route.segments) {
      segment_cables[seg].push_back(li);
    }
  }
  st.mean_length_m = st.total_length_m / static_cast<double>(st.links);
  st.length_classes = length_classes.size();
  st.distinct_rack_pairs = rack_pairs.size();

  if (!segment_cables.empty()) {
    double occ_sum = 0;
    for (const auto& [seg, cables] : segment_cables) {
      occ_sum += static_cast<double>(cables.size());
      st.max_tray_occupancy =
          std::max(st.max_tray_occupancy, static_cast<double>(cables.size()));
    }
    st.mean_tray_occupancy = occ_sum / static_cast<double>(segment_cables.size());
  }

  // Adjacency: for each cable, the set of other cables sharing a segment.
  std::vector<std::unordered_set<int>> neighbors(bp.links().size());
  for (const auto& [seg, cables] : segment_cables) {
    for (const int a : cables) {
      for (const int b : cables) {
        if (a != b) neighbors[static_cast<size_t>(a)].insert(b);
      }
    }
  }
  double adj_sum = 0;
  for (const auto& n : neighbors) {
    adj_sum += static_cast<double>(n.size());
    st.max_adjacent_cables = std::max(st.max_adjacent_cables, static_cast<double>(n.size()));
  }
  st.mean_adjacent_cables = adj_sum / static_cast<double>(st.links);
  return st;
}

SelfMaintainability compute_self_maintainability(const Blueprint& bp) {
  const WiringStats st = compute_wiring_stats(bp);
  SelfMaintainability m;
  if (st.links == 0) return m;

  const double n_links = static_cast<double>(st.links);

  // Reachability: in-rack cables are serviceable by a rack-scope robot (1.0),
  // same-row by a row gantry (0.8), cross-row needs hall-scope mobility (0.5).
  m.reachability = (static_cast<double>(st.in_rack) * 1.0 +
                    static_cast<double>(st.same_row) * 0.8 +
                    static_cast<double>(st.cross_row) * 0.5) / n_links;

  // Occlusion: tray congestion makes perception and cable separation harder.
  // Log scale: doubling the cables in a tray costs a fixed increment; ~4096
  // cables in one segment is treated as fully occluded.
  m.occlusion = std::clamp(1.0 - std::log2(1.0 + st.max_tray_occupancy) / 12.0, 0.0, 1.0);

  // Uniformity: each distinct cable SKU adds recognition/grasp/spares burden.
  // One SKU per 4 links is treated as worst-case diversity.
  const double sku_ratio = static_cast<double>(st.length_classes) / n_links;
  m.uniformity = std::clamp(1.0 - sku_ratio * 4.0, 0.0, 1.0);

  // Blast radius: how many cables a single maintenance touch can disturb
  // (log scale, ~4096 neighbours = certain collateral damage).
  m.blast_radius =
      std::clamp(1.0 - std::log2(1.0 + st.mean_adjacent_cables) / 12.0, 0.0, 1.0);

  // Bundleability: cables sharing an identical rack-to-rack route deploy and
  // service as one loom (§4's wiring-loom argument). 1 = perfectly bundled.
  m.bundling = st.out_of_rack_cables == 0
                   ? 1.0
                   : 1.0 - static_cast<double>(st.distinct_rack_pairs) /
                               static_cast<double>(st.out_of_rack_cables);

  // Port density: ports that must be manipulated per rack — crowded faceplates
  // mean less clearance for grippers (paper §3.4). 256 ports/rack is worst.
  std::unordered_map<long, int> ports_per_rack;
  for (const NodeSpec& n : bp.nodes()) {
    const long rack_key = (static_cast<long>(n.location.hall) << 40) ^
                          (static_cast<long>(n.location.row) << 20) ^ n.location.rack;
    ports_per_rack[rack_key] += n.ports_used;
  }
  double max_ports = 0;
  for (const auto& [rack, ports] : ports_per_rack) {
    max_ports = std::max(max_ports, static_cast<double>(ports));
  }
  m.port_density = std::clamp(1.0 - max_ports / 256.0, 0.0, 1.0);

  // Composite: bundling carries the largest weight — the paper attributes
  // non-deployment of expander fabrics to wiring-loom complexity — followed
  // by reachability and blast radius, which gate whether robots can service
  // the plant at all and how safely.
  m.score = 100.0 * (0.20 * m.reachability + 0.10 * m.occlusion + 0.10 * m.uniformity +
                     0.15 * m.blast_radius + 0.10 * m.port_density + 0.35 * m.bundling);
  return m;
}

}  // namespace smn::topology
