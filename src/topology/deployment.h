// Deployment-effort estimation: what it costs to build (not just maintain)
// a fabric's physical wiring.
//
// §4: "the reason why these more efficient topologies are not deployed is due
// to the complexity to manually deploy the complex wiring looms. ... if we
// can build self-maintaining systems, these systems may well be able to also
// deploy the network originally not just maintain it."
//
// The model prices each cable install (pull through its tray route +
// terminate both ends) with two structural effects the paper's argument
// hinges on: (a) cables sharing a rack-pair route bundle into looms, which
// amortizes pulling; (b) mis-wiring probability grows with wiring
// irregularity for human crews, while machine-verified robot terminations
// hold a flat, tiny error rate. Experiment E15 sweeps crews over topologies.
#pragma once

#include "topology/blueprint.h"
#include "topology/metrics.h"

namespace smn::topology {

struct CrewParams {
  int workers = 1;                   // parallel installers (humans or robot units)
  double lay_speed_mpm = 8.0;        // cable-pulling speed, meters/minute
  double terminate_minutes = 6.0;    // per end: dress, terminate, clean, test
  /// Base mis-wiring probability per cable for perfectly regular wiring.
  double base_miswire = 0.003;
  /// Additional mis-wiring probability at bundling = 0 (fully irregular).
  double irregularity_miswire = 0.025;
  /// Hours to diagnose and fix one mis-wired cable.
  double rework_hours = 2.0;
  double hourly_usd = 85.0;

  /// A human cable crew of `workers` technicians.
  [[nodiscard]] static CrewParams human_crew(int workers);
  /// A fleet of cable-laying robot units: slower pulling, faster machine
  /// terminations, near-zero (connection-verified) mis-wiring.
  [[nodiscard]] static CrewParams robot_fleet(int units);
};

struct DeploymentEstimate {
  double pull_hours = 0;        // cable pulling, after loom amortization
  double terminate_hours = 0;
  double expected_miswires = 0;
  double rework_hours = 0;
  double total_work_hours = 0;  // sum of the above
  double calendar_days = 0;     // total / (workers * 8h shifts)
  double labor_cost_usd = 0;
};

/// Expected-value deployment estimate for wiring the blueprint with `crew`.
[[nodiscard]] DeploymentEstimate estimate_deployment(const Blueprint& bp,
                                                     const CrewParams& crew);

}  // namespace smn::topology
