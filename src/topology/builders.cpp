#include "topology/builders.h"

#include <algorithm>
#include <set>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "sim/rng.h"

namespace smn::topology {
namespace {

std::string make_name(const char* prefix, int i) { return std::string{prefix} + std::to_string(i); }

PhysicalLayout::Config sized_layout(int rows, int racks_per_row, int rack_units = 48) {
  PhysicalLayout::Config cfg;
  cfg.halls = 1;
  cfg.rows_per_hall = std::max(1, rows);
  cfg.racks_per_row = std::max(1, racks_per_row);
  cfg.rack_units = rack_units;
  return cfg;
}

/// Places `count` switches into racks of `row`, `per_rack` per rack starting
/// at the top unit and packing downward.
RackLocation switch_slot(int row, int index, int per_rack, int rack_units) {
  return RackLocation{0, row, index / per_rack, rack_units - 1 - (index % per_rack)};
}

/// Generates a random simple r-regular graph on n nodes: seed with a
/// circulant r-regular graph, then randomize with degree-preserving 2-opt
/// edge swaps. Unlike stub pairing, this never fails, even at high density.
std::vector<std::pair<int, int>> random_regular_graph(int n, int r, sim::RngStream& rng) {
  if (n * r % 2 != 0) throw std::invalid_argument{"random_regular_graph: n*r must be even"};
  if (r >= n) throw std::invalid_argument{"random_regular_graph: degree must be < n"};
  if (r < 1) throw std::invalid_argument{"random_regular_graph: degree must be >= 1"};

  std::set<std::pair<int, int>> edge_set;
  auto key = [](int a, int b) { return a < b ? std::pair{a, b} : std::pair{b, a}; };

  // Circulant seed: connect i to i +/- 1..r/2 (mod n); odd r adds the
  // antipodal matching i <-> i + n/2 (n is even when r is odd).
  for (int i = 0; i < n; ++i) {
    for (int k = 1; k <= r / 2; ++k) edge_set.insert(key(i, (i + k) % n));
    if (r % 2 == 1 && i < n / 2) edge_set.insert(key(i, i + n / 2));
  }

  std::vector<std::pair<int, int>> edges(edge_set.begin(), edge_set.end());
  // Randomize: each swap removes edges (a,b),(c,d) and adds (a,c),(b,d),
  // preserving all degrees; rejected if it would create a loop or multi-edge.
  const int swaps = 20 * n * r;
  for (int s = 0; s < swaps; ++s) {
    const std::size_t i = rng.index(edges.size());
    const std::size_t j = rng.index(edges.size());
    if (i == j) continue;
    auto [a, b] = edges[i];
    auto [c, d] = edges[j];
    if (rng.bernoulli(0.5)) std::swap(c, d);
    if (a == c || a == d || b == c || b == d) continue;
    if (edge_set.contains(key(a, c)) || edge_set.contains(key(b, d))) continue;
    edge_set.erase(key(a, b));
    edge_set.erase(key(c, d));
    edge_set.insert(key(a, c));
    edge_set.insert(key(b, d));
    edges[i] = key(a, c);
    edges[j] = key(b, d);
  }
  return edges;
}

}  // namespace

Blueprint build_fat_tree(const FatTreeParams& p) {
  if (p.k < 4 || p.k % 2 != 0) throw std::invalid_argument{"fat-tree k must be even and >= 4"};
  const int k = p.k;
  const int half = k / 2;
  const int cores = half * half;
  const int cores_per_rack = 8;
  const int core_racks = (cores + cores_per_rack - 1) / cores_per_rack;
  const int racks_per_row = std::max(half + 1, core_racks);
  const int rack_units = std::max(48, half + 2);

  // Row 0 holds core switches; row 1+p holds pod p: one rack per ToR (ToR on
  // top, its servers below) plus one network rack with the pod's agg switches.
  PhysicalLayout layout{sized_layout(1 + k, racks_per_row, rack_units)};
  Blueprint bp{std::move(layout), "fat-tree-k" + std::to_string(k)};

  std::vector<int> core_ids;
  for (int c = 0; c < cores; ++c) {
    core_ids.push_back(bp.add_node(make_name("core", c), NodeRole::kCoreSwitch,
                                   switch_slot(0, c, cores_per_rack, rack_units)));
  }

  for (int pod = 0; pod < k; ++pod) {
    const int row = 1 + pod;
    std::vector<int> aggs, tors;
    for (int a = 0; a < half; ++a) {
      aggs.push_back(bp.add_node(make_name(("agg" + std::to_string(pod) + "_").c_str(), a),
                                 NodeRole::kAggSwitch,
                                 switch_slot(row, a, half, rack_units)));
    }
    for (int t = 0; t < half; ++t) {
      const int rack = 1 + t;  // rack 0 is the pod's network rack
      tors.push_back(bp.add_node(make_name(("tor" + std::to_string(pod) + "_").c_str(), t),
                                 NodeRole::kTorSwitch,
                                 RackLocation{0, row, rack, rack_units - 1}));
      for (int s = 0; s < half; ++s) {
        const int srv = bp.add_node(
            make_name(("srv" + std::to_string(pod) + "_" + std::to_string(t) + "_").c_str(), s),
            NodeRole::kServer, RackLocation{0, row, rack, rack_units - 2 - s});
        bp.connect(srv, tors.back(), p.edge_gbps);
      }
    }
    for (int t = 0; t < half; ++t) {
      for (int a = 0; a < half; ++a) bp.connect(tors[static_cast<size_t>(t)], aggs[static_cast<size_t>(a)], p.fabric_gbps);
    }
    // Agg a of every pod connects to cores [a*half, (a+1)*half).
    for (int a = 0; a < half; ++a) {
      for (int i = 0; i < half; ++i) {
        bp.connect(aggs[static_cast<size_t>(a)], core_ids[static_cast<size_t>(a * half + i)], p.fabric_gbps);
      }
    }
  }
  bp.validate();
  return bp;
}

Blueprint build_leaf_spine(const LeafSpineParams& p) {
  if (p.leaves <= 0 || p.spines <= 0 || p.servers_per_leaf < 0 || p.uplinks_per_spine <= 0) {
    throw std::invalid_argument{"leaf-spine: counts must be positive"};
  }
  const int rack_units = std::max(48, p.servers_per_leaf + 2);
  const int racks_per_row = 16;
  const int leaf_rows = (p.leaves + racks_per_row - 1) / racks_per_row;
  PhysicalLayout layout{sized_layout(1 + leaf_rows, racks_per_row, rack_units)};
  Blueprint bp{std::move(layout), "leaf-spine"};

  std::vector<int> spines;
  for (int s = 0; s < p.spines; ++s) {
    spines.push_back(bp.add_node(make_name("spine", s), NodeRole::kSpineSwitch,
                                 switch_slot(0, s, 4, rack_units)));
  }
  for (int l = 0; l < p.leaves; ++l) {
    const int row = 1 + l / racks_per_row;
    const int rack = l % racks_per_row;
    const int leaf = bp.add_node(make_name("leaf", l), NodeRole::kTorSwitch,
                                 RackLocation{0, row, rack, rack_units - 1});
    for (int s = 0; s < p.servers_per_leaf; ++s) {
      const int srv = bp.add_node(
          make_name(("srv" + std::to_string(l) + "_").c_str(), s), NodeRole::kServer,
          RackLocation{0, row, rack, rack_units - 2 - s});
      bp.connect(srv, leaf, p.server_gbps);
    }
    for (int s = 0; s < p.spines; ++s) {
      for (int u = 0; u < p.uplinks_per_spine; ++u) {
        bp.connect(leaf, spines[static_cast<size_t>(s)], p.uplink_gbps);
      }
    }
  }
  bp.validate();
  return bp;
}

namespace {

/// Shared tail for the two expander-family builders: places switches one per
/// rack, attaches servers, and wires the given switch-switch edge list.
Blueprint assemble_flat_fabric(std::string name, int switches, int servers_per_switch,
                               double server_gbps, double fabric_gbps,
                               const std::vector<std::pair<int, int>>& edges) {
  const int rack_units = std::max(48, servers_per_switch + 2);
  const int racks_per_row = 16;
  const int rows = (switches + racks_per_row - 1) / racks_per_row;
  PhysicalLayout layout{sized_layout(rows, racks_per_row, rack_units)};
  Blueprint bp{std::move(layout), std::move(name)};

  std::vector<int> sw;
  for (int i = 0; i < switches; ++i) {
    const int row = i / racks_per_row;
    const int rack = i % racks_per_row;
    sw.push_back(bp.add_node(make_name("sw", i), NodeRole::kTorSwitch,
                             RackLocation{0, row, rack, rack_units - 1}));
    for (int s = 0; s < servers_per_switch; ++s) {
      const int srv = bp.add_node(make_name(("srv" + std::to_string(i) + "_").c_str(), s),
                                  NodeRole::kServer,
                                  RackLocation{0, row, rack, rack_units - 2 - s});
      bp.connect(srv, sw.back(), server_gbps);
    }
  }
  for (const auto& [a, b] : edges) bp.connect(sw.at(static_cast<size_t>(a)), sw.at(static_cast<size_t>(b)), fabric_gbps);
  bp.validate();
  return bp;
}

}  // namespace

Blueprint build_jellyfish(const JellyfishParams& p) {
  sim::RngFactory rngs{p.seed};
  sim::RngStream rng = rngs.stream("jellyfish");
  const auto edges = random_regular_graph(p.switches, p.network_degree, rng);
  return assemble_flat_fabric("jellyfish", p.switches, p.servers_per_switch, p.server_gbps,
                              p.fabric_gbps, edges);
}

Blueprint build_xpander(const XpanderParams& p) {
  if (p.lift < 1 || p.network_degree < 2) {
    throw std::invalid_argument{"xpander: need lift >= 1 and degree >= 2"};
  }
  sim::RngFactory rngs{p.seed};
  sim::RngStream rng = rngs.stream("xpander");
  const int d = p.network_degree;
  const int L = p.lift;
  // Random L-lift of K_{d+1}: base edge (u, v) becomes a random perfect
  // matching between the L copies of u and the L copies of v.
  std::vector<std::pair<int, int>> edges;
  for (int u = 0; u < d + 1; ++u) {
    for (int v = u + 1; v < d + 1; ++v) {
      std::vector<int> perm(static_cast<size_t>(L));
      for (int i = 0; i < L; ++i) perm[static_cast<size_t>(i)] = i;
      rng.shuffle(perm);
      for (int i = 0; i < L; ++i) {
        edges.emplace_back(u * L + i, v * L + perm[static_cast<size_t>(i)]);
      }
    }
  }
  return assemble_flat_fabric("xpander", (d + 1) * L, p.servers_per_switch, p.server_gbps,
                              p.fabric_gbps, edges);
}

Blueprint build_hybrid(const HybridParams& p) {
  if (p.switches < 4) throw std::invalid_argument{"hybrid: need at least 4 switches"};
  if (p.lattice_neighbors < 2 || p.lattice_neighbors % 2 != 0 ||
      p.lattice_neighbors >= p.switches) {
    throw std::invalid_argument{"hybrid: lattice_neighbors must be even, >= 2, < switches"};
  }
  if (p.rewire_fraction < 0.0 || p.rewire_fraction > 1.0) {
    throw std::invalid_argument{"hybrid: rewire_fraction must be in [0, 1]"};
  }
  sim::RngFactory rngs{p.seed};
  sim::RngStream rng = rngs.stream("hybrid");

  const int n = p.switches;
  std::set<std::pair<int, int>> edge_set;
  const auto key = [](int a, int b) { return a < b ? std::pair{a, b} : std::pair{b, a}; };
  // Ring lattice: i connects to its lattice_neighbors/2 clockwise neighbours.
  for (int i = 0; i < n; ++i) {
    for (int k = 1; k <= p.lattice_neighbors / 2; ++k) edge_set.insert(key(i, (i + k) % n));
  }
  // Watts-Strogatz rewiring: each lattice edge (i, i+k), taken in canonical
  // order, is re-pointed from its far endpoint to a uniformly random switch
  // with probability beta (skipped when it would self-loop or duplicate).
  for (int k = 1; k <= p.lattice_neighbors / 2; ++k) {
    for (int i = 0; i < n; ++i) {
      if (!rng.bernoulli(p.rewire_fraction)) continue;
      const auto old_edge = key(i, (i + k) % n);
      if (!edge_set.contains(old_edge)) continue;  // already rewired away
      const int target = static_cast<int>(rng.index(static_cast<std::size_t>(n)));
      if (target == i || edge_set.contains(key(i, target))) continue;
      edge_set.erase(old_edge);
      edge_set.insert(key(i, target));
    }
  }
  const std::vector<std::pair<int, int>> edges(edge_set.begin(), edge_set.end());
  return assemble_flat_fabric("hybrid", n, p.servers_per_switch, p.server_gbps, p.fabric_gbps,
                              edges);
}

Blueprint build_dragonfly(const DragonflyParams& p) {
  if (p.routers_per_group < 2 || p.global_per_router < 1 || p.servers_per_router < 0) {
    throw std::invalid_argument{"dragonfly: need a >= 2, h >= 1, p >= 0"};
  }
  const int a = p.routers_per_group;
  const int h = p.global_per_router;
  const int groups = a * h + 1;
  const int rack_units = std::max(48, p.servers_per_router + 2);
  // One group per row; each router in its own rack with its servers.
  PhysicalLayout layout{sized_layout(groups, std::max(a, 1), rack_units)};
  Blueprint bp{std::move(layout), "dragonfly"};

  std::vector<std::vector<int>> routers(static_cast<size_t>(groups));
  for (int g = 0; g < groups; ++g) {
    for (int r = 0; r < a; ++r) {
      const int router = bp.add_node(
          make_name(("df" + std::to_string(g) + "_").c_str(), r),
          NodeRole::kSpineSwitch, RackLocation{0, g, r, rack_units - 1});
      routers[static_cast<size_t>(g)].push_back(router);
      for (int s = 0; s < p.servers_per_router; ++s) {
        const int srv = bp.add_node(
            make_name(("dsrv" + std::to_string(g) + "_" + std::to_string(r) + "_").c_str(), s),
            NodeRole::kServer, RackLocation{0, g, r, rack_units - 2 - s});
        bp.connect(srv, router, p.server_gbps);
      }
    }
    // Local full mesh within the group.
    for (int i = 0; i < a; ++i) {
      for (int j = i + 1; j < a; ++j) {
        bp.connect(routers[static_cast<size_t>(g)][static_cast<size_t>(i)],
                   routers[static_cast<size_t>(g)][static_cast<size_t>(j)], p.local_gbps);
      }
    }
  }
  // Global links: one per group pair, assigned round-robin to routers so
  // each router terminates at most h globals (a*h globals per group, g-1 =
  // a*h pairs per group: exactly full).
  std::vector<int> next_port(static_cast<size_t>(groups), 0);
  for (int g1 = 0; g1 < groups; ++g1) {
    for (int g2 = g1 + 1; g2 < groups; ++g2) {
      const int r1 = next_port[static_cast<size_t>(g1)]++ % a;
      const int r2 = next_port[static_cast<size_t>(g2)]++ % a;
      bp.connect(routers[static_cast<size_t>(g1)][static_cast<size_t>(r1)],
                 routers[static_cast<size_t>(g2)][static_cast<size_t>(r2)],
                 p.global_gbps);
    }
  }
  bp.validate();
  return bp;
}

Blueprint build_torus2d(const Torus2dParams& p) {
  if (p.x < 3 || p.y < 3) throw std::invalid_argument{"torus2d: need x, y >= 3"};
  const int rack_units = std::max(48, p.servers_per_node + 2);
  PhysicalLayout layout{sized_layout(p.y, p.x, rack_units)};
  Blueprint bp{std::move(layout), "torus2d"};

  std::vector<int> nodes(static_cast<size_t>(p.x * p.y));
  for (int y = 0; y < p.y; ++y) {
    for (int x = 0; x < p.x; ++x) {
      const int sw = bp.add_node(
          make_name(("t" + std::to_string(x) + "_").c_str(), y), NodeRole::kTorSwitch,
          RackLocation{0, y, x, rack_units - 1});
      nodes[static_cast<size_t>(y * p.x + x)] = sw;
      for (int s = 0; s < p.servers_per_node; ++s) {
        const int srv = bp.add_node(
            make_name(("tsrv" + std::to_string(x) + "_" + std::to_string(y) + "_").c_str(), s),
            NodeRole::kServer, RackLocation{0, y, x, rack_units - 2 - s});
        bp.connect(srv, sw, p.server_gbps);
      }
    }
  }
  // +x and +y neighbours with wraparound (each undirected edge added once).
  for (int y = 0; y < p.y; ++y) {
    for (int x = 0; x < p.x; ++x) {
      const int here = nodes[static_cast<size_t>(y * p.x + x)];
      bp.connect(here, nodes[static_cast<size_t>(y * p.x + (x + 1) % p.x)], p.fabric_gbps);
      bp.connect(here, nodes[static_cast<size_t>(((y + 1) % p.y) * p.x + x)],
                 p.fabric_gbps);
    }
  }
  bp.validate();
  return bp;
}

Blueprint build_gpu_cluster(const GpuClusterParams& p) {
  if (p.gpu_servers <= 0 || p.rails <= 0 || p.spines < 0) {
    throw std::invalid_argument{"gpu-cluster: counts must be positive"};
  }
  const int rack_units = 48;
  const int servers_per_rack = 4;  // GPU servers are tall (8-10U with airflow)
  const int racks_per_row = 16;
  const int server_racks = (p.gpu_servers + servers_per_rack - 1) / servers_per_rack;
  const int rows = 1 + (server_racks + racks_per_row - 1) / racks_per_row;
  PhysicalLayout layout{sized_layout(rows, racks_per_row, rack_units)};
  Blueprint bp{std::move(layout), "gpu-cluster"};

  std::vector<int> rails, spines;
  for (int r = 0; r < p.rails; ++r) {
    rails.push_back(bp.add_node(make_name("rail", r), NodeRole::kRailSwitch,
                                switch_slot(0, r, 8, rack_units)));
  }
  for (int s = 0; s < p.spines; ++s) {
    spines.push_back(bp.add_node(make_name("gspine", s), NodeRole::kSpineSwitch,
                                 switch_slot(0, p.rails + s, 8, rack_units)));
  }
  for (int g = 0; g < p.gpu_servers; ++g) {
    const int rack = g / servers_per_rack;
    const int row = 1 + rack / racks_per_row;
    const int unit = rack_units - 1 - 10 * (g % servers_per_rack);
    const int srv = bp.add_node(make_name("gpu", g), NodeRole::kGpuServer,
                                RackLocation{0, row, rack % racks_per_row, unit});
    for (int r = 0; r < p.rails; ++r) bp.connect(srv, rails[static_cast<size_t>(r)], p.rail_gbps);
  }
  for (int r = 0; r < p.rails; ++r) {
    for (int s = 0; s < p.spines; ++s) bp.connect(rails[static_cast<size_t>(r)], spines[static_cast<size_t>(s)], p.spine_gbps);
  }
  bp.validate();
  return bp;
}

}  // namespace smn::topology
