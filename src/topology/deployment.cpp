#include "topology/deployment.h"

#include <algorithm>
#include <map>

namespace smn::topology {

CrewParams CrewParams::human_crew(int workers) {
  CrewParams c;
  c.workers = std::max(1, workers);
  return c;
}

CrewParams CrewParams::robot_fleet(int units) {
  CrewParams c;
  c.workers = std::max(1, units);
  c.lay_speed_mpm = 5.0;         // gantries pull slower than a two-man team
  c.terminate_minutes = 3.0;     // machine termination + auto inspection
  c.base_miswire = 0.0005;       // every connection is verified end-to-end
  c.irregularity_miswire = 0.0;  // a robot does not care that cables "look alike"
  c.rework_hours = 0.5;
  c.hourly_usd = 15.0;           // amortized unit cost per working hour
  return c;
}

DeploymentEstimate estimate_deployment(const Blueprint& bp, const CrewParams& crew) {
  DeploymentEstimate est;
  const SelfMaintainability sm = compute_self_maintainability(bp);

  // Group out-of-rack cables into looms by rack pair: the first cable of a
  // loom pays full pulling time, the rest ride the same pull at 35%.
  auto rack_key = [](const RackLocation& loc) {
    return (static_cast<long>(loc.hall) << 40) ^ (static_cast<long>(loc.row) << 20) ^
           loc.rack;
  };
  std::map<std::pair<long, long>, int> loom_position;

  const double miswire_p =
      crew.base_miswire + crew.irregularity_miswire * (1.0 - sm.bundling);

  for (const LinkSpec& l : bp.links()) {
    const RackLocation& la = bp.node(l.node_a).location;
    const RackLocation& lb = bp.node(l.node_b).location;
    double pull_minutes = l.route.length_m / crew.lay_speed_mpm;
    if (!la.same_rack(lb)) {
      const long ka = rack_key(la);
      const long kb = rack_key(lb);
      const int position = loom_position[{std::min(ka, kb), std::max(ka, kb)}]++;
      if (position > 0) pull_minutes *= 0.35;  // rides an already-pulled loom
    }
    est.pull_hours += pull_minutes / 60.0;
    est.terminate_hours += 2.0 * crew.terminate_minutes / 60.0;
    est.expected_miswires += miswire_p;
  }
  est.rework_hours = est.expected_miswires * crew.rework_hours;
  est.total_work_hours = est.pull_hours + est.terminate_hours + est.rework_hours;
  est.calendar_days = est.total_work_hours / (crew.workers * 8.0);
  est.labor_cost_usd = est.total_work_hours * crew.hourly_usd;
  return est;
}

}  // namespace smn::topology
