#include "topology/blueprint.h"

#include <stdexcept>

namespace smn::topology {

const char* to_string(NodeRole r) {
  switch (r) {
    case NodeRole::kCoreSwitch: return "core";
    case NodeRole::kAggSwitch: return "agg";
    case NodeRole::kTorSwitch: return "tor";
    case NodeRole::kSpineSwitch: return "spine";
    case NodeRole::kRailSwitch: return "rail";
    case NodeRole::kServer: return "server";
    case NodeRole::kGpuServer: return "gpu-server";
  }
  return "?";
}

int Blueprint::add_node(std::string name, NodeRole role, RackLocation loc) {
  if (!layout_.contains(loc)) {
    throw std::out_of_range{"Blueprint::add_node: location outside building: " + loc.to_string()};
  }
  nodes_.push_back(NodeSpec{std::move(name), role, loc, 0});
  return static_cast<int>(nodes_.size()) - 1;
}

int Blueprint::connect(int node_a, int node_b, double capacity_gbps) {
  if (node_a < 0 || node_b < 0 || node_a >= static_cast<int>(nodes_.size()) ||
      node_b >= static_cast<int>(nodes_.size())) {
    throw std::out_of_range{"Blueprint::connect: node index out of range"};
  }
  if (node_a == node_b) throw std::invalid_argument{"Blueprint::connect: self-loop"};
  if (capacity_gbps <= 0) throw std::invalid_argument{"Blueprint::connect: capacity must be > 0"};

  LinkSpec link;
  link.node_a = node_a;
  link.port_a = nodes_[static_cast<size_t>(node_a)].ports_used++;
  link.node_b = node_b;
  link.port_b = nodes_[static_cast<size_t>(node_b)].ports_used++;
  link.capacity_gbps = capacity_gbps;
  link.route = layout_.route_cable(nodes_[static_cast<size_t>(node_a)].location,
                                   nodes_[static_cast<size_t>(node_b)].location);
  links_.push_back(std::move(link));
  return static_cast<int>(links_.size()) - 1;
}

std::vector<std::vector<std::pair<int, int>>> Blueprint::adjacency() const {
  std::vector<std::vector<std::pair<int, int>>> adj(nodes_.size());
  for (int li = 0; li < static_cast<int>(links_.size()); ++li) {
    const LinkSpec& l = links_[static_cast<size_t>(li)];
    adj[static_cast<size_t>(l.node_a)].emplace_back(l.node_b, li);
    adj[static_cast<size_t>(l.node_b)].emplace_back(l.node_a, li);
  }
  return adj;
}

std::size_t Blueprint::count_nodes(NodeRole role) const {
  std::size_t n = 0;
  for (const NodeSpec& s : nodes_) {
    if (s.role == role) ++n;
  }
  return n;
}

std::size_t Blueprint::server_count() const {
  return count_nodes(NodeRole::kServer) + count_nodes(NodeRole::kGpuServer);
}

std::size_t Blueprint::switch_count() const {
  std::size_t n = 0;
  for (const NodeSpec& s : nodes_) {
    if (is_switch(s.role)) ++n;
  }
  return n;
}

void Blueprint::validate() const {
  for (const NodeSpec& n : nodes_) {
    if (!layout_.contains(n.location)) {
      throw std::logic_error{"Blueprint: node outside building: " + n.name};
    }
  }
  for (const LinkSpec& l : links_) {
    if (l.node_a < 0 || l.node_a >= static_cast<int>(nodes_.size()) || l.node_b < 0 ||
        l.node_b >= static_cast<int>(nodes_.size())) {
      throw std::logic_error{"Blueprint: dangling link endpoint"};
    }
    if (l.node_a == l.node_b) throw std::logic_error{"Blueprint: self-loop"};
    if (l.capacity_gbps <= 0) throw std::logic_error{"Blueprint: non-positive capacity"};
  }
}

}  // namespace smn::topology
