// Physical datacenter geometry: halls, rows, racks, rack units, and the
// overhead cable-tray system.
//
// The paper's central observation is that maintenance is a *physical*
// activity: repairs take travel time, robots have operating radii
// (rack / row / hall scopes, §3.4), and motion near cables disturbs the
// cables sharing a tray (cascading failures, §1). All of those need real
// coordinates and real cable routes, which this module provides.
#pragma once

#include <cmath>
#include <compare>
#include <cstdint>
#include <string>
#include <vector>

namespace smn::topology {

/// Where a device sits: hall > row > rack > U position (0 = bottom).
struct RackLocation {
  int hall = 0;
  int row = 0;
  int rack = 0;
  int unit = 0;

  auto operator<=>(const RackLocation&) const = default;
  [[nodiscard]] bool same_rack(const RackLocation& o) const {
    return hall == o.hall && row == o.row && rack == o.rack;
  }
  [[nodiscard]] bool same_row(const RackLocation& o) const {
    return hall == o.hall && row == o.row;
  }
  [[nodiscard]] bool same_hall(const RackLocation& o) const { return hall == o.hall; }
  [[nodiscard]] std::string to_string() const;
};

/// 3D point in meters; x runs along a row, y across rows, z up.
struct Point {
  double x = 0, y = 0, z = 0;
  [[nodiscard]] double distance_to(const Point& o) const {
    return std::sqrt((x - o.x) * (x - o.x) + (y - o.y) * (y - o.y) + (z - o.z) * (z - o.z));
  }
};

/// One segment of the overhead tray system. Cables whose routes share
/// segments are physically adjacent — the substrate of the cascade model.
struct TraySegment {
  enum class Kind : std::uint8_t { kRiser, kRowTray, kSpineTray };
  Kind kind = Kind::kRowTray;
  int hall = 0;
  int row = 0;   // for kRiser / kRowTray: which row; for kSpineTray: row index crossed
  int slot = 0;  // for kRiser: rack index; for kRowTray: rack-pitch slot; kSpineTray: 0

  auto operator<=>(const TraySegment&) const = default;
};

struct TraySegmentHash {
  std::size_t operator()(const TraySegment& s) const {
    std::uint64_t v = (static_cast<std::uint64_t>(s.kind) << 56) ^
                      (static_cast<std::uint64_t>(static_cast<std::uint32_t>(s.hall)) << 40) ^
                      (static_cast<std::uint64_t>(static_cast<std::uint32_t>(s.row)) << 20) ^
                      static_cast<std::uint32_t>(s.slot);
    v = (v ^ (v >> 30)) * 0xBF58476D1CE4E5B9ULL;
    return static_cast<std::size_t>(v ^ (v >> 27));
  }
};

/// The route a cable takes through the tray system, plus its total length.
struct CableRoute {
  std::vector<TraySegment> segments;
  double length_m = 0.0;
};

/// Geometry constants and derived queries for a datacenter building.
///
/// Layout: `halls` halls, each with `rows_per_hall` rows of `racks_per_row`
/// racks. Racks are `rack_units` tall. Same-row cables ride that row's tray;
/// cross-row cables additionally ride the hall spine tray at x = 0.
class PhysicalLayout {
 public:
  struct Config {
    int halls = 1;
    int rows_per_hall = 4;
    int racks_per_row = 16;
    int rack_units = 48;
    double rack_pitch_m = 0.7;    // x distance between adjacent racks
    double row_pitch_m = 3.0;     // y distance between adjacent rows
    double hall_pitch_m = 40.0;   // y distance between halls
    double unit_height_m = 0.0445;
    double tray_height_m = 2.6;   // overhead tray elevation
    double slack_factor = 1.15;   // service-loop slack added to cable lengths
  };

  explicit PhysicalLayout(Config cfg);

  [[nodiscard]] const Config& config() const { return cfg_; }
  [[nodiscard]] int total_racks() const {
    return cfg_.halls * cfg_.rows_per_hall * cfg_.racks_per_row;
  }

  /// True if the location is inside the configured building.
  [[nodiscard]] bool contains(const RackLocation& loc) const;

  /// 3D coordinates of a rack unit's faceplate.
  [[nodiscard]] Point position(const RackLocation& loc) const;

  /// Aisle walking distance between two locations (Manhattan along aisles),
  /// used for technician and mobile-robot travel.
  [[nodiscard]] double walking_distance_m(const RackLocation& a, const RackLocation& b) const;

  /// The tray route a cable between two locations takes. Same-rack cables
  /// have an empty segment list (they never leave the rack).
  [[nodiscard]] CableRoute route_cable(const RackLocation& a, const RackLocation& b) const;

 private:
  Config cfg_;
};

}  // namespace smn::topology
