// Wiring-complexity statistics and the self-maintainability metric.
//
// §4 of the paper argues that expander-style topologies are undeployed
// because of wiring complexity, and asks: "perhaps we can create a metric for
// self-maintainability of a network design?". This module supplies both the
// raw wiring statistics and a concrete instantiation of that metric, used by
// experiment E7 to compare fat-tree / leaf-spine / Jellyfish / Xpander.
#pragma once

#include <cstddef>

#include "topology/blueprint.h"

namespace smn::topology {

/// Physical wiring statistics of a blueprint.
struct WiringStats {
  std::size_t links = 0;
  std::size_t in_rack = 0;     // cable never leaves the rack (DAC-able)
  std::size_t same_row = 0;    // leaves the rack, stays in the row tray
  std::size_t cross_row = 0;   // rides the hall spine tray
  double total_length_m = 0;
  double mean_length_m = 0;
  double max_length_m = 0;
  /// Number of distinct cable-length SKUs (lengths rounded up to 1 m) — a
  /// proxy for the manufacturing/spares diversity the paper flags in §4.
  std::size_t length_classes = 0;
  double mean_tray_occupancy = 0;  // cables per occupied tray segment
  double max_tray_occupancy = 0;
  /// Average number of *other* cables sharing at least one tray segment with
  /// a given cable — the physical blast radius of touching it.
  double mean_adjacent_cables = 0;
  double max_adjacent_cables = 0;
  /// Out-of-rack cables grouped by (rack, rack) endpoint pair: cables in the
  /// same group follow an identical route and can be deployed/maintained as a
  /// single pre-bundled loom. This is the paper's §4 deployability argument —
  /// "the complexity to manually deploy the complex wiring looms".
  std::size_t out_of_rack_cables = 0;
  std::size_t distinct_rack_pairs = 0;
};

[[nodiscard]] WiringStats compute_wiring_stats(const Blueprint& bp);

/// The self-maintainability metric. Each sub-score is in [0, 1], 1 = easiest
/// for robotic maintenance; `score` is a 0-100 weighted composite.
struct SelfMaintainability {
  double reachability = 0;   // fraction of cables serviceable by rack/row-scope robots
  double occlusion = 0;      // 1 - normalized tray congestion (perception difficulty)
  double uniformity = 0;     // 1 - normalized cable-SKU diversity
  double blast_radius = 0;   // 1 - normalized mean adjacent cables (cascade exposure)
  double port_density = 0;   // 1 - normalized ports per rack face (manipulation clearance)
  double bundling = 0;       // fraction of out-of-rack cables sharing a loom route
  double score = 0;
};

[[nodiscard]] SelfMaintainability compute_self_maintainability(const Blueprint& bp);

}  // namespace smn::topology
