#include "topology/physical.h"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

namespace smn::topology {

std::string RackLocation::to_string() const {
  char buf[64];
  std::snprintf(buf, sizeof buf, "h%d/r%d/k%d/u%d", hall, row, rack, unit);
  return buf;
}

PhysicalLayout::PhysicalLayout(Config cfg) : cfg_{cfg} {
  if (cfg_.halls <= 0 || cfg_.rows_per_hall <= 0 || cfg_.racks_per_row <= 0 ||
      cfg_.rack_units <= 0) {
    throw std::invalid_argument{"PhysicalLayout: all counts must be positive"};
  }
  if (cfg_.rack_pitch_m <= 0 || cfg_.row_pitch_m <= 0 || cfg_.unit_height_m <= 0 ||
      cfg_.tray_height_m <= 0 || cfg_.slack_factor < 1.0) {
    throw std::invalid_argument{"PhysicalLayout: invalid geometry"};
  }
}

bool PhysicalLayout::contains(const RackLocation& loc) const {
  return loc.hall >= 0 && loc.hall < cfg_.halls && loc.row >= 0 &&
         loc.row < cfg_.rows_per_hall && loc.rack >= 0 && loc.rack < cfg_.racks_per_row &&
         loc.unit >= 0 && loc.unit < cfg_.rack_units;
}

Point PhysicalLayout::position(const RackLocation& loc) const {
  if (!contains(loc)) throw std::out_of_range{"PhysicalLayout: location outside building"};
  return Point{
      .x = loc.rack * cfg_.rack_pitch_m,
      .y = loc.hall * cfg_.hall_pitch_m + loc.row * cfg_.row_pitch_m,
      .z = loc.unit * cfg_.unit_height_m,
  };
}

double PhysicalLayout::walking_distance_m(const RackLocation& a, const RackLocation& b) const {
  const Point pa = position(a);
  const Point pb = position(b);
  // Walk along the aisle (x), cross rows at the row head (y), ignore height.
  if (a.same_row(b)) return std::abs(pa.x - pb.x);
  return pa.x + pb.x + std::abs(pa.y - pb.y);
}

CableRoute PhysicalLayout::route_cable(const RackLocation& a, const RackLocation& b) const {
  if (!contains(a) || !contains(b)) {
    throw std::out_of_range{"route_cable: location outside building"};
  }
  CableRoute route;
  const Point pa = position(a);
  const Point pb = position(b);

  if (a.same_rack(b)) {
    route.length_m = (std::abs(pa.z - pb.z) + 0.5) * cfg_.slack_factor;
    return route;
  }

  // Up the riser at each end.
  double length = (cfg_.tray_height_m - pa.z) + (cfg_.tray_height_m - pb.z);
  route.segments.push_back(
      TraySegment{TraySegment::Kind::kRiser, a.hall, a.row, a.rack});
  route.segments.push_back(
      TraySegment{TraySegment::Kind::kRiser, b.hall, b.row, b.rack});

  auto add_row_span = [&](int hall, int row, int rack_from, int rack_to) {
    const int lo = std::min(rack_from, rack_to);
    const int hi = std::max(rack_from, rack_to);
    for (int s = lo; s < hi; ++s) {
      route.segments.push_back(TraySegment{TraySegment::Kind::kRowTray, hall, row, s});
    }
    length += (hi - lo) * cfg_.rack_pitch_m;
  };

  if (a.same_row(b)) {
    add_row_span(a.hall, a.row, a.rack, b.rack);
  } else {
    // Along each row tray to the row head (slot 0), then along the spine tray.
    add_row_span(a.hall, a.row, a.rack, 0);
    add_row_span(b.hall, b.row, b.rack, 0);
    const double ya = a.hall * cfg_.hall_pitch_m + a.row * cfg_.row_pitch_m;
    const double yb = b.hall * cfg_.hall_pitch_m + b.row * cfg_.row_pitch_m;
    const int hall = a.hall;  // spine segments keyed by rows crossed in hall coordinates
    const int row_lo = std::min(a.hall * 1000 + a.row, b.hall * 1000 + b.row);
    const int row_hi = std::max(a.hall * 1000 + a.row, b.hall * 1000 + b.row);
    for (int r = row_lo; r < row_hi; ++r) {
      route.segments.push_back(TraySegment{TraySegment::Kind::kSpineTray, hall, r, 0});
    }
    length += std::abs(ya - yb);
  }

  route.length_m = length * cfg_.slack_factor;
  return route;
}

}  // namespace smn::topology
