// Stochastic hardware fault injection.
//
// Covers the paper's failure taxonomy (§1): fail-stop component deaths
// (transceiver, cable, whole device), and gray/transient episodes where a
// link flaps for a while and recovers on its own. Hazard rates are annualized
// failure rates (AFR) sampled per step; gray-episode hazard grows with
// end-face contamination and environmental stress, which is exactly the
// coupling the paper describes for dirt-driven flapping.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <vector>

#include "fault/environment.h"
#include "net/network.h"
#include "obs/obs.h"
#include "sim/event_queue.h"
#include "sim/rng.h"

namespace smn::fault {

enum class FaultKind : std::uint8_t {
  kTransceiverFailure,  // module electrically/optically dead; needs replace
  kCableBreak,          // fiber/copper damaged; needs cable replacement
  kDeviceFailure,       // switch/NIC dead; needs device replacement
  kGrayEpisode,         // transient flapping; self-clears
  kLineCardFailure,     // one chassis card dead; its port group goes dark
};
inline constexpr std::size_t kFaultKindCount = 5;
[[nodiscard]] const char* to_string(FaultKind k);

struct FaultEvent {
  sim::TimePoint time;
  FaultKind kind = FaultKind::kGrayEpisode;
  net::LinkId link;      // valid for link-scoped faults
  net::DeviceId device;  // valid for kDeviceFailure
  int end = -1;          // which link end for kTransceiverFailure (0/1)
  sim::Duration gray_duration;  // valid for kGrayEpisode
};

class FaultInjector {
 public:
  struct Config {
    /// Annualized failure rates. Deliberately on the aggressive end of field
    /// data so that month-scale simulations of a few-thousand-link plant see
    /// hundreds of events (documented substitution: accelerated aging).
    double transceiver_afr = 0.04;   // per transceiver end per year
    double cable_afr = 0.006;        // per cable per year
    double switch_afr = 0.015;       // per switch per year
    /// Base gray-episode rate per link per year, before contamination and
    /// environment multipliers.
    double gray_rate_per_year = 1.5;
    /// Contamination multiplies gray hazard by (1 + k * contamination).
    double gray_contamination_gain = 8.0;
    /// Contact oxidation multiplies gray hazard by (1 + k * oxidation);
    /// oxidation is what reseating fixes (§3.2).
    double gray_oxidation_gain = 6.0;
    /// Mean oxidation accumulated per year on a mated contact.
    double oxidation_rate_per_year = 0.15;
    /// Gray episode duration: lognormal, median ~20 minutes.
    double gray_duration_log_mean = std::log(20.0 * 60.0);  // seconds
    double gray_duration_log_sigma = 1.0;
    /// Wear-out: hazard multiplier grows linearly with reseat count (gold
    /// contacts tolerate a finite number of insertions).
    double reseat_wear_gain = 0.02;
    sim::Duration step = sim::Duration::hours(1);
    /// Servers' NICs fail too, but at a lower rate than switches.
    double server_nic_afr = 0.005;
    /// Per line card per year, on chassis switches.
    double linecard_afr = 0.01;
  };

  using Listener = std::function<void(const FaultEvent&)>;

  FaultInjector(net::Network& net, Environment& env, sim::RngStream rng)
      : FaultInjector(net, env, std::move(rng), Config{}) {}
  FaultInjector(net::Network& net, Environment& env, sim::RngStream rng, Config cfg);

  void start();
  void stop();
  /// One hazard-sampling step over all hardware (also called periodically).
  void step_once();

  void subscribe(Listener l) { listeners_.push_back(std::move(l)); }

  /// Wires observability: per-mechanism injected-fault counters, plus one
  /// flight-recorder record and one trace instant per emitted fault, so a
  /// crash dump shows the faults leading up to an invariant failure. Pure
  /// observer — draws no randomness and schedules nothing.
  void set_obs(obs::Obs* o);

  [[nodiscard]] const std::vector<FaultEvent>& log() const { return log_; }
  [[nodiscard]] std::size_t count(FaultKind k) const;

  /// Injects a specific fault immediately (for tests and directed scenarios).
  void inject_transceiver_failure(net::LinkId id, int end);
  void inject_cable_break(net::LinkId id);
  void inject_device_failure(net::DeviceId id);
  void inject_gray_episode(net::LinkId id, sim::Duration duration);
  void inject_linecard_failure(net::DeviceId id, int card);

 private:
  void emit(FaultEvent ev);

  net::Network& net_;
  Environment& env_;
  sim::RngStream rng_;
  Config cfg_;
  std::vector<FaultEvent> log_;
  std::vector<Listener> listeners_;
  sim::EventId periodic_ = sim::kInvalidEvent;
  std::array<obs::Counter*, kFaultKindCount> obs_injected_{};
  obs::Counter* obs_injected_total_ = nullptr;
  obs::TraceBuffer* obs_trace_ = nullptr;
  obs::FlightRecorder* obs_recorder_ = nullptr;
};

}  // namespace smn::fault
