// Fault-trace recording and replay.
//
// Same-seed comparisons stay aligned only until the worlds diverge (a repair
// changes hazards, which changes subsequent draws). For differential
// evaluation — "L0 vs L3 on the *identical* fault workload" — record the
// fault sequence once from a passive world and replay it as an exogenous
// schedule into each world under test (with the stochastic injector's
// periodic process left off). This is the simulation analogue of trace-driven
// evaluation against production failure logs.
#pragma once

#include <istream>
#include <ostream>
#include <vector>

#include "fault/injector.h"

namespace smn::fault {

/// An exogenous fault schedule.
class FaultTrace {
 public:
  std::vector<FaultEvent> events;

  /// Records every event the injector emits (subscribe-then-run). The trace
  /// holds whatever was emitted between attach() and the end of the run.
  void attach(FaultInjector& injector);

  /// CSV round-trip: time_us,kind,link,device,end,gray_us.
  void save(std::ostream& os) const;
  [[nodiscard]] static FaultTrace load(std::istream& is);

  [[nodiscard]] std::size_t size() const { return events.size(); }
};

/// Replays a trace into a world by scheduling direct injections. The
/// injector's own stochastic process should not be started.
class TraceReplayer {
 public:
  TraceReplayer(net::Network& net, FaultInjector& injector)
      : net_{net}, injector_{injector} {}

  /// Schedules every event at its recorded time (must be >= now).
  /// Returns the number of events scheduled.
  std::size_t schedule(const FaultTrace& trace);

 private:
  net::Network& net_;
  FaultInjector& injector_;
};

}  // namespace smn::fault
