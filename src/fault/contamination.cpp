#include "fault/contamination.h"

#include <algorithm>

namespace smn::fault {

ContaminationProcess::ContaminationProcess(net::Network& net, Environment& env,
                                           sim::RngStream rng, Config cfg)
    : net_{net}, env_{env}, rng_{std::move(rng)}, cfg_{cfg} {}

void ContaminationProcess::start() {
  if (periodic_ != sim::kInvalidEvent) return;
  periodic_ = net_.simulator().schedule_every(cfg_.step, [this] { step_once(); });
}

void ContaminationProcess::stop() {
  if (periodic_ == sim::kInvalidEvent) return;
  net_.simulator().cancel_periodic(periodic_);
  periodic_ = sim::kInvalidEvent;
}

void ContaminationProcess::step_once() {
  const sim::TimePoint now = net_.now();
  const double stress = env_.stress_factor(now);
  const double dt_days = cfg_.step.to_days();
  const double mean_inc = cfg_.mean_accumulation_per_day * dt_days * stress;
  for (const net::Link& l : net_.links()) {
    if (!net::is_cleanable(l.medium)) continue;
    net::Link& lm = net_.link_mut(l.id);
    for (net::EndCondition* end : {&lm.end_a.condition, &lm.end_b.condition}) {
      end->contamination = std::min(1.0, end->contamination + rng_.exponential(mean_inc));
    }
    net_.refresh_link(l.id);
  }
}

void ContaminationProcess::expose(net::LinkId id, int which_end, double risk_scale) {
  net::Link& l = net_.link_mut(id);
  if (!net::is_cleanable(l.medium)) return;
  if (!rng_.bernoulli(cfg_.exposure_probability * risk_scale)) return;
  net::EndCondition& end = which_end == 0 ? l.end_a.condition : l.end_b.condition;
  end.contamination = std::min(1.0, end.contamination + rng_.exponential(cfg_.exposure_burst_mean));
  net_.refresh_link(id);
}

double ContaminationProcess::total_contamination() const {
  double total = 0.0;
  for (const net::Link& l : net_.links()) {
    total += l.end_a.condition.contamination + l.end_b.condition.contamination;
  }
  return total;
}

}  // namespace smn::fault
