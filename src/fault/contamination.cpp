#include "fault/contamination.h"

#include <algorithm>

namespace smn::fault {

ContaminationProcess::ContaminationProcess(net::Network& net, Environment& env,
                                           sim::RngStream rng, Config cfg)
    : net_{net}, env_{env}, rng_{std::move(rng)}, cfg_{cfg} {}

void ContaminationProcess::start() {
  if (periodic_ != sim::kInvalidEvent) return;
  periodic_ = net_.simulator().schedule_every(cfg_.step, [this] { step_once(); });
}

void ContaminationProcess::stop() {
  if (periodic_ == sim::kInvalidEvent) return;
  net_.simulator().cancel_periodic(periodic_);
  periodic_ = sim::kInvalidEvent;
}

void ContaminationProcess::step_once() {
  const sim::TimePoint now = net_.now();
  const double stress = env_.stress_factor(now);
  const double dt_days = cfg_.step.to_days();
  const double mean_inc = cfg_.mean_accumulation_per_day * dt_days * stress;
  for (const net::Link& l : net_.links()) {
    if (!net::is_cleanable(l.medium)) continue;
    net::Link& lm = net_.link_mut(l.id);
    const double before = worst_end(lm);
    for (net::EndCondition* end : {&lm.end_a.condition, &lm.end_b.condition}) {
      end->contamination = std::min(1.0, end->contamination + rng_.exponential(mean_inc));
    }
    observe_crossings(l.id, before, worst_end(lm));
    net_.refresh_link(l.id);
  }
}

void ContaminationProcess::expose(net::LinkId id, int which_end, double risk_scale) {
  net::Link& l = net_.link_mut(id);
  if (!net::is_cleanable(l.medium)) return;
  if (!rng_.bernoulli(cfg_.exposure_probability * risk_scale)) return;
  if (obs_exposures_ != nullptr) obs_exposures_->inc();
  const double before = worst_end(l);
  net::EndCondition& end = which_end == 0 ? l.end_a.condition : l.end_b.condition;
  end.contamination = std::min(1.0, end.contamination + rng_.exponential(cfg_.exposure_burst_mean));
  observe_crossings(id, before, worst_end(l));
  net_.refresh_link(id);
}

void ContaminationProcess::set_obs(obs::Obs* o) {
  if (o == nullptr) return;
  if (obs::Registry* reg = o->metrics()) {
    obs_exposures_ = reg->counter("contamination_exposures_total");
    obs_degrade_crossings_ = reg->counter("contamination_degrade_crossings_total");
    obs_flap_crossings_ = reg->counter("contamination_flap_crossings_total");
  }
  obs_trace_ = o->trace();
  obs_recorder_ = o->recorder();
}

void ContaminationProcess::observe_crossings(net::LinkId id, double before, double after) {
  const net::LinkThresholds& thr = net_.config().thresholds;
  const sim::TimePoint now = net_.now();
  // Percent-scale second arg: trace/recorder payloads are integers.
  const auto pct = [](double c) { return static_cast<std::int64_t>(c * 100.0); };
  if (before < thr.degrade_contamination && after >= thr.degrade_contamination) {
    if (obs_degrade_crossings_ != nullptr) obs_degrade_crossings_->inc();
    SMN_TRACE_STMT(if (obs_trace_ != nullptr) obs_trace_->instant(
        "contamination-degrade", "fault", now, "link", id.value(), "pct", pct(after)));
    if (obs_recorder_ != nullptr) {
      obs_recorder_->record(now.count_us(), "contamination-degrade", id.value(), pct(after));
    }
  }
  if (before < thr.flap_contamination && after >= thr.flap_contamination) {
    if (obs_flap_crossings_ != nullptr) obs_flap_crossings_->inc();
    SMN_TRACE_STMT(if (obs_trace_ != nullptr) obs_trace_->instant(
        "contamination-flap", "fault", now, "link", id.value(), "pct", pct(after)));
    if (obs_recorder_ != nullptr) {
      obs_recorder_->record(now.count_us(), "contamination-flap", id.value(), pct(after));
    }
  }
}

double ContaminationProcess::total_contamination() const {
  double total = 0.0;
  for (const net::Link& l : net_.links()) {
    total += l.end_a.condition.contamination + l.end_b.condition.contamination;
  }
  return total;
}

}  // namespace smn::fault
