// Environmental conditions inside the datacenter hall.
//
// §1: "transient failures are a function of the workload or external factors,
// such as environmental changes in temperature, vibration and so forth", and
// contamination effects are "often dependent on temperature, humidity,
// vibration". The environment is a deterministic diurnal profile plus
// transient vibration events registered by physical maintenance activity.
#pragma once

#include <vector>

#include "sim/time.h"

namespace smn::fault {

class Environment {
 public:
  struct Config {
    double base_temperature_c = 24.0;
    double temperature_amplitude_c = 3.0;  // diurnal swing
    double base_humidity = 0.45;           // relative, 0..1
    double humidity_amplitude = 0.10;
    double ambient_vibration = 0.02;       // fans/CRAC background, arbitrary units
  };

  Environment() : Environment(Config{}) {}
  explicit Environment(Config cfg) : cfg_{cfg} {}

  [[nodiscard]] double temperature_c(sim::TimePoint t) const;
  [[nodiscard]] double humidity(sim::TimePoint t) const;

  /// Registers a transient vibration episode (e.g. a technician working in a
  /// row, a robot moving cables). Magnitude adds to ambient for its duration.
  void add_vibration(sim::TimePoint start, sim::Duration duration, double magnitude);

  /// Total vibration level at time t: ambient + active episodes.
  [[nodiscard]] double vibration(sim::TimePoint t) const;

  /// Multiplier >= ~0.5 applied to contamination-driven fault hazards:
  /// hot, humid, shaky halls make marginal links act up (§1).
  [[nodiscard]] double stress_factor(sim::TimePoint t) const;

  /// Drops expired vibration episodes; call occasionally to bound memory.
  void prune(sim::TimePoint now);

  [[nodiscard]] const Config& config() const { return cfg_; }

 private:
  struct VibrationEvent {
    sim::TimePoint start;
    sim::TimePoint end;
    double magnitude;
  };
  Config cfg_;
  std::vector<VibrationEvent> events_;
};

}  // namespace smn::fault
