#include "fault/trace.h"

#include <sstream>
#include <stdexcept>
#include <string>

namespace smn::fault {

void FaultTrace::attach(FaultInjector& injector) {
  injector.subscribe([this](const FaultEvent& ev) { events.push_back(ev); });
}

void FaultTrace::save(std::ostream& os) const {
  os << "time_us,kind,link,device,end,gray_us\n";
  for (const FaultEvent& e : events) {
    os << e.time.count_us() << "," << static_cast<int>(e.kind) << "," << e.link.value()
       << "," << e.device.value() << "," << e.end << "," << e.gray_duration.count_us()
       << "\n";
  }
}

FaultTrace FaultTrace::load(std::istream& is) {
  FaultTrace trace;
  std::string line;
  if (!std::getline(is, line)) return trace;  // header (or empty)
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    std::istringstream ss{line};
    std::string cell;
    auto next = [&]() -> long long {
      if (!std::getline(ss, cell, ',')) {
        throw std::runtime_error{"FaultTrace::load: malformed row: " + line};
      }
      return std::stoll(cell);
    };
    FaultEvent e;
    e.time = sim::TimePoint::from_us(next());
    e.kind = static_cast<FaultKind>(next());
    e.link = net::LinkId{static_cast<std::int32_t>(next())};
    e.device = net::DeviceId{static_cast<std::int32_t>(next())};
    e.end = static_cast<int>(next());
    e.gray_duration = sim::Duration::microseconds(next());
    trace.events.push_back(e);
  }
  return trace;
}

std::size_t TraceReplayer::schedule(const FaultTrace& trace) {
  std::size_t scheduled = 0;
  for (const FaultEvent& e : trace.events) {
    if (e.time < net_.now()) continue;  // already in the past; skip
    net_.simulator().schedule_at(e.time, [this, e] {
      switch (e.kind) {
        case FaultKind::kTransceiverFailure:
          injector_.inject_transceiver_failure(e.link, e.end);
          break;
        case FaultKind::kCableBreak:
          injector_.inject_cable_break(e.link);
          break;
        case FaultKind::kDeviceFailure:
          injector_.inject_device_failure(e.device);
          break;
        case FaultKind::kGrayEpisode:
          injector_.inject_gray_episode(e.link, e.gray_duration);
          break;
        case FaultKind::kLineCardFailure:
          injector_.inject_linecard_failure(e.device, e.end);
          break;
      }
    });
    ++scheduled;
  }
  return scheduled;
}

}  // namespace smn::fault
