#include "fault/environment.h"

#include <algorithm>
#include <cmath>
#include <numbers>

namespace smn::fault {
namespace {
constexpr double kDayHours = 24.0;
}

double Environment::temperature_c(sim::TimePoint t) const {
  const double phase = 2.0 * std::numbers::pi * std::fmod(t.to_hours(), kDayHours) / kDayHours;
  // Peak mid-afternoon (phase shifted), trough pre-dawn.
  return cfg_.base_temperature_c + cfg_.temperature_amplitude_c * std::sin(phase - 1.0);
}

double Environment::humidity(sim::TimePoint t) const {
  const double phase = 2.0 * std::numbers::pi * std::fmod(t.to_hours(), kDayHours) / kDayHours;
  const double h = cfg_.base_humidity + cfg_.humidity_amplitude * std::sin(phase + 0.8);
  return std::clamp(h, 0.0, 1.0);
}

void Environment::add_vibration(sim::TimePoint start, sim::Duration duration,
                                double magnitude) {
  if (magnitude <= 0.0 || duration <= sim::Duration::zero()) return;
  events_.push_back(VibrationEvent{start, start + duration, magnitude});
}

double Environment::vibration(sim::TimePoint t) const {
  double total = cfg_.ambient_vibration;
  for (const VibrationEvent& e : events_) {
    if (t >= e.start && t < e.end) total += e.magnitude;
  }
  return total;
}

double Environment::stress_factor(sim::TimePoint t) const {
  // Normalized deviations: 1.0 at nominal conditions; each contribution is
  // small so the factor stays in roughly [0.6, 3] under realistic inputs.
  const double temp_dev = (temperature_c(t) - cfg_.base_temperature_c) / 10.0;
  const double humid_dev = (humidity(t) - cfg_.base_humidity) / 0.25;
  const double vib = vibration(t);
  return std::max(0.25, 1.0 + 0.4 * temp_dev + 0.3 * humid_dev + 2.0 * vib);
}

void Environment::prune(sim::TimePoint now) {
  std::erase_if(events_, [now](const VibrationEvent& e) { return e.end <= now; });
}

}  // namespace smn::fault
