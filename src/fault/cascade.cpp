#include "fault/cascade.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "topology/physical.h"

namespace smn::fault {

CascadeModel::CascadeModel(net::Network& net, Environment& env, FaultInjector& injector,
                           sim::RngStream rng, Config cfg)
    : net_{net}, env_{env}, injector_{injector}, rng_{std::move(rng)}, cfg_{cfg} {
  rebuild_adjacency();
}

void CascadeModel::rebuild_adjacency() {
  // Build link->tray-mates adjacency from the blueprint routes.
  const topology::Blueprint& bp = net_.blueprint();
  std::unordered_map<topology::TraySegment, std::vector<int>, topology::TraySegmentHash>
      segment_links;
  for (int li = 0; li < static_cast<int>(bp.links().size()); ++li) {
    for (const topology::TraySegment& seg : bp.link(li).route.segments) {
      segment_links[seg].push_back(li);
    }
  }
  tray_adjacent_.assign(bp.links().size(), {});
  std::vector<std::unordered_set<int>> sets(bp.links().size());
  for (const auto& [seg, lids] : segment_links) {
    for (const int a : lids) {
      for (const int b : lids) {
        if (a != b) sets[static_cast<size_t>(a)].insert(b);
      }
    }
  }
  for (std::size_t i = 0; i < sets.size(); ++i) {
    tray_adjacent_[i].reserve(sets[i].size());
    for (const int b : sets[i]) tray_adjacent_[i].push_back(net::LinkId{b});
    std::sort(tray_adjacent_[i].begin(), tray_adjacent_[i].end());
  }
}

std::vector<net::LinkId> CascadeModel::faceplate_neighbors(net::LinkId target,
                                                           net::DeviceId device) const {
  const net::Link& t = net_.link(target);
  const int my_port = t.end_a.device == device ? t.end_a.port : t.end_b.port;
  std::vector<net::LinkId> out;
  for (const net::LinkId lid : net_.links_at(device)) {
    if (lid == target) continue;
    const net::Link& l = net_.link(lid);
    const int port = l.end_a.device == device ? l.end_a.port : l.end_b.port;
    if (std::abs(port - my_port) <= cfg_.faceplate_radius) out.push_back(lid);
  }
  return out;
}

std::vector<net::LinkId> CascadeModel::tray_neighbors(net::LinkId target) const {
  return tray_adjacent_.at(static_cast<size_t>(target.value()));
}

std::vector<net::LinkId> CascadeModel::predicted_contacts(const Disturbance& d) const {
  std::vector<net::LinkId> contacts = faceplate_neighbors(d.target, d.at_device);
  if (d.full_route) {
    for (const net::LinkId lid : tray_neighbors(d.target)) contacts.push_back(lid);
    std::sort(contacts.begin(), contacts.end());
    contacts.erase(std::unique(contacts.begin(), contacts.end()), contacts.end());
  }
  return contacts;
}

std::vector<CascadeEffect> CascadeModel::apply(const Disturbance& d) {
  const sim::TimePoint now = net_.now();
  env_.add_vibration(now, cfg_.vibration_duration, cfg_.vibration_gain * d.magnitude);

  std::vector<CascadeEffect> effects;
  auto hit = [&](net::LinkId victim, double probability) {
    if (!rng_.bernoulli(std::min(0.95, probability))) return;
    const net::Link& v = net_.link(victim);
    if (v.state == net::LinkState::kDown) return;  // nothing left to disturb

    const double weights[] = {cfg_.w_gray, cfg_.w_contamination, cfg_.w_permanent};
    const std::size_t kind = rng_.weighted_index(weights);
    CascadeEffect effect{now, victim, FaultKind::kGrayEpisode, d.target};
    if (kind == 0) {
      const double secs =
          rng_.lognormal(cfg_.induced_gray_log_mean, cfg_.induced_gray_log_sigma);
      injector_.inject_gray_episode(victim, sim::Duration::seconds(secs));
      effect.induced = FaultKind::kGrayEpisode;
    } else if (kind == 1 && net::is_cleanable(v.medium)) {
      // The motion knocked dust onto/into a nearby end-face.
      net::Link& vm = net_.link_mut(victim);
      net::EndCondition& end =
          rng_.bernoulli(0.5) ? vm.end_a.condition : vm.end_b.condition;
      end.contamination =
          std::min(1.0, end.contamination + rng_.exponential(cfg_.contamination_bump_mean));
      net_.refresh_link(victim);
      effect.induced = FaultKind::kGrayEpisode;  // presents as transient degradation
    } else {
      // Permanent: yanked a neighbouring plug half-out or stressed its cable.
      net::Link& vm = net_.link_mut(victim);
      if (rng_.bernoulli(0.7)) {
        // Unseat the end on the faceplate being worked on when there is one;
        // otherwise (a tray-mate) either end is plausible.
        net::EndCondition& end = vm.end_b.device == d.at_device
                                     ? vm.end_b.condition
                                     : vm.end_a.condition;
        end.transceiver_seated = false;
        effect.induced = FaultKind::kTransceiverFailure;
      } else {
        vm.cable.intact = false;
        effect.induced = FaultKind::kCableBreak;
      }
      net_.refresh_link(victim);
    }
    effects.push_back(effect);
    log_.push_back(effect);
    if (obs_hops_ != nullptr) {
      obs_hops_->inc();
      if (effect.induced != FaultKind::kGrayEpisode) obs_permanent_->inc();
    }
    SMN_TRACE_STMT(if (obs_trace_ != nullptr) obs_trace_->instant(
        "cascade-hop", "fault", now, "victim", effect.victim.value(), "cause",
        effect.cause.value()));
    if (obs_recorder_ != nullptr) {
      obs_recorder_->record(now.count_us(), "cascade-hop", effect.victim.value(),
                            effect.cause.value());
    }
  };

  for (const net::LinkId lid : faceplate_neighbors(d.target, d.at_device)) {
    hit(lid, cfg_.faceplate_coupling * d.magnitude);
  }
  if (d.full_route) {
    for (const net::LinkId lid : tray_neighbors(d.target)) {
      hit(lid, cfg_.tray_coupling * d.magnitude);
    }
  }
  return effects;
}

void CascadeModel::set_obs(obs::Obs* o) {
  if (o == nullptr) return;
  if (obs::Registry* reg = o->metrics()) {
    obs_hops_ = reg->counter("cascade_hops_total");
    obs_permanent_ = reg->counter("cascade_permanent_total");
  }
  obs_trace_ = o->trace();
  obs_recorder_ = o->recorder();
}

std::size_t CascadeModel::induced_permanent_count() const {
  std::size_t n = 0;
  for (const CascadeEffect& e : log_) {
    if (e.induced != FaultKind::kGrayEpisode) ++n;
  }
  return n;
}

}  // namespace smn::fault
