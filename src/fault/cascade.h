// The cascading-failure model.
//
// §1: "Cascading failures occur when physical motion near or with hardware
// creates vibrations and other physical effects on the co-located hardware,
// which leads to additional transient (or permanent!) failures."
//
// Every physical maintenance action produces a Disturbance with a magnitude
// (humans are heavy-handed; the paper's small grippers are designed to
// "minimize accidental interaction with physically close cables"). The model
// maps a disturbance to the set of physically coupled cables — same-faceplate
// neighbours and, for actions touching the whole cable run, tray-mates — and
// samples induced faults on them. It can also *predict* the contact set
// before acting, which is what the controller's impact-aware scheduling
// consumes (§2: "automation can report which network cables will be contacted
// before the maintenance occurs").
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "fault/environment.h"
#include "fault/injector.h"
#include "net/network.h"
#include "sim/rng.h"

namespace smn::fault {

struct Disturbance {
  net::LinkId target;
  /// The device whose faceplate is being worked on.
  net::DeviceId at_device;
  /// Physical intensity: ~1.0 human technician, ~0.25 manipulation robot,
  /// ~0.1 cleaning unit (docked, minimal cable contact).
  double magnitude = 1.0;
  /// True when the whole cable run is handled (cable replacement / re-laying
  /// through trays), coupling to every tray-mate; false for faceplate-local
  /// work (reseat, clean).
  bool full_route = false;
};

struct CascadeEffect {
  sim::TimePoint time;
  net::LinkId victim;
  FaultKind induced = FaultKind::kGrayEpisode;
  net::LinkId cause;  // the target whose maintenance caused this
};

class CascadeModel {
 public:
  struct Config {
    /// Per-neighbour induced-fault probability per unit disturbance.
    double faceplate_coupling = 0.05;
    double tray_coupling = 0.006;
    /// Faceplate neighbourhood: ports within this distance on the same device.
    int faceplate_radius = 2;
    /// Induced fault mix (normalized internally).
    double w_gray = 0.85;
    double w_contamination = 0.12;
    double w_permanent = 0.03;
    /// Induced gray episodes: lognormal seconds.
    double induced_gray_log_mean = std::log(10.0 * 60.0);
    double induced_gray_log_sigma = 0.8;
    double contamination_bump_mean = 0.08;
    /// Vibration contributed to the hall per unit magnitude.
    double vibration_gain = 0.15;
    sim::Duration vibration_duration = sim::Duration::minutes(2);
  };

  CascadeModel(net::Network& net, Environment& env, FaultInjector& injector,
               sim::RngStream rng)
      : CascadeModel(net, env, injector, std::move(rng), Config{}) {}
  CascadeModel(net::Network& net, Environment& env, FaultInjector& injector,
               sim::RngStream rng, Config cfg);

  /// Cables that WILL be physically contacted/coupled by the action — the
  /// pre-announced contact list the control plane can act on.
  [[nodiscard]] std::vector<net::LinkId> predicted_contacts(const Disturbance& d) const;

  /// Applies the disturbance: registers hall vibration and samples induced
  /// faults on the contact set. Returns what happened (also logged).
  std::vector<CascadeEffect> apply(const Disturbance& d);

  /// Re-derives the tray adjacency from the network's (possibly rewired)
  /// blueprint; call after Network::rewire.
  void rebuild_adjacency();

  [[nodiscard]] const std::vector<CascadeEffect>& log() const { return log_; }
  [[nodiscard]] std::size_t induced_count() const { return log_.size(); }
  [[nodiscard]] std::size_t induced_permanent_count() const;

  /// Wires observability: hop/permanent counters, a flight-recorder record
  /// and a trace instant per cascade hop (victim + cause link ids), so crash
  /// dumps expose the propagation chain. Pure observer.
  void set_obs(obs::Obs* o);

 private:
  [[nodiscard]] std::vector<net::LinkId> faceplate_neighbors(net::LinkId target,
                                                             net::DeviceId device) const;
  [[nodiscard]] std::vector<net::LinkId> tray_neighbors(net::LinkId target) const;

  net::Network& net_;
  Environment& env_;
  FaultInjector& injector_;
  sim::RngStream rng_;
  Config cfg_;
  std::vector<CascadeEffect> log_;
  /// Precomputed tray adjacency: link -> links sharing >= 1 tray segment.
  std::vector<std::vector<net::LinkId>> tray_adjacent_;
  obs::Counter* obs_hops_ = nullptr;
  obs::Counter* obs_permanent_ = nullptr;
  obs::TraceBuffer* obs_trace_ = nullptr;
  obs::FlightRecorder* obs_recorder_ = nullptr;
};

}  // namespace smn::fault
