// End-face contamination dynamics.
//
// §1: "A great example would be dirt on an end-face of an optical fiber cable
// in a network transceiver. This dirt can cause the link to fail or to flap."
// Contamination accumulates slowly while links are mated, jumps when an
// end-face is exposed to hall air (every unplug), and is removed by cleaning.
// The link state machine turns contamination into Degraded/Flapping.
#pragma once

#include <algorithm>

#include "fault/environment.h"
#include "net/network.h"
#include "obs/obs.h"
#include "sim/event_queue.h"
#include "sim/rng.h"

namespace smn::fault {

class ContaminationProcess {
 public:
  struct Config {
    /// Mean contamination added per day to a mated optical end-face at
    /// nominal environmental stress. Real plants are slower; this is
    /// accelerated so multi-month runs produce statistically useful counts
    /// (documented in DESIGN.md).
    double mean_accumulation_per_day = 0.004;
    /// Mean contamination burst when an end-face is exposed (unplugged
    /// without a dust cap, §3.2's reason reassembly must be immediate).
    double exposure_burst_mean = 0.12;
    /// Probability an exposure event picks up any dirt at all.
    double exposure_probability = 0.5;
    sim::Duration step = sim::Duration::hours(6);
  };

  ContaminationProcess(net::Network& net, Environment& env, sim::RngStream rng)
      : ContaminationProcess(net, env, std::move(rng), Config{}) {}
  ContaminationProcess(net::Network& net, Environment& env, sim::RngStream rng,
                       Config cfg);

  /// Starts the periodic accumulation process on the network's simulator.
  void start();
  void stop();

  /// One accumulation step over all cleanable link ends (also called by the
  /// periodic process). Refreshes link states.
  void step_once();

  /// Called when an end-face is exposed to hall air (unplug / detach).
  /// `which_end` is 0 for end_a, 1 for end_b. `risk_scale` multiplies the
  /// exposure probability: careful robotic handling that re-mates in place
  /// (§3.3.2 "reassembles ... to minimize the risk of recontamination")
  /// passes < 1.
  void expose(net::LinkId id, int which_end, double risk_scale = 1.0);

  /// Total contamination across the plant (diagnostic).
  [[nodiscard]] double total_contamination() const;

  [[nodiscard]] const Config& config() const { return cfg_; }

  /// Wires observability: counters for exposures and for upward crossings of
  /// the degrade/flap contamination thresholds, plus a flight-recorder record
  /// and trace instant per crossing — the moment dirt turned into an
  /// operational state change. Pure observer.
  void set_obs(obs::Obs* o);

 private:
  /// Records threshold crossings given a link's worst-end contamination
  /// before and after a mutation.
  void observe_crossings(net::LinkId id, double before, double after);
  [[nodiscard]] static double worst_end(const net::Link& l) {
    return std::max(l.end_a.condition.contamination, l.end_b.condition.contamination);
  }

  net::Network& net_;
  Environment& env_;
  sim::RngStream rng_;
  Config cfg_;
  sim::EventId periodic_ = sim::kInvalidEvent;
  obs::Counter* obs_exposures_ = nullptr;
  obs::Counter* obs_degrade_crossings_ = nullptr;
  obs::Counter* obs_flap_crossings_ = nullptr;
  obs::TraceBuffer* obs_trace_ = nullptr;
  obs::FlightRecorder* obs_recorder_ = nullptr;
};

}  // namespace smn::fault
