#include "fault/injector.h"

#include <cmath>

#include "topology/blueprint.h"

namespace smn::fault {

const char* to_string(FaultKind k) {
  switch (k) {
    case FaultKind::kTransceiverFailure: return "transceiver-failure";
    case FaultKind::kCableBreak: return "cable-break";
    case FaultKind::kDeviceFailure: return "device-failure";
    case FaultKind::kGrayEpisode: return "gray-episode";
    case FaultKind::kLineCardFailure: return "linecard-failure";
  }
  return "?";
}

FaultInjector::FaultInjector(net::Network& net, Environment& env, sim::RngStream rng,
                             Config cfg)
    : net_{net}, env_{env}, rng_{std::move(rng)}, cfg_{cfg} {}

void FaultInjector::start() {
  if (periodic_ != sim::kInvalidEvent) return;
  periodic_ = net_.simulator().schedule_every(cfg_.step, [this] { step_once(); });
}

void FaultInjector::stop() {
  if (periodic_ == sim::kInvalidEvent) return;
  net_.simulator().cancel_periodic(periodic_);
  periodic_ = sim::kInvalidEvent;
}

void FaultInjector::step_once() {
  const sim::TimePoint now = net_.now();
  const double dt_years = cfg_.step.to_days() / 365.0;
  const double stress = env_.stress_factor(now);

  for (const net::Link& l : net_.links()) {
    // Transceiver hard failures and contact aging, per end, with reseat wear.
    for (int end = 0; end < 2; ++end) {
      net::EndCondition& cond =
          end == 0 ? net_.link_mut(l.id).end_a.condition : net_.link_mut(l.id).end_b.condition;
      if (!cond.usable()) continue;  // already dead / unseated
      cond.oxidation = std::min(
          1.0, cond.oxidation + rng_.exponential(cfg_.oxidation_rate_per_year * dt_years));
      const double wear = 1.0 + cfg_.reseat_wear_gain * cond.reseat_count;
      if (rng_.bernoulli(cfg_.transceiver_afr * wear * dt_years)) {
        inject_transceiver_failure(l.id, end);
      }
    }
    if (l.cable.intact &&
        rng_.bernoulli(cfg_.cable_afr * (1.0 + l.cable.wear) * dt_years)) {
      inject_cable_break(l.id);
    }
    // Gray episodes: only meaningful on links that are currently carrying
    // traffic; hazard rises with contamination and environmental stress.
    if (l.state == net::LinkState::kUp || l.state == net::LinkState::kDegraded) {
      // Dirt blocks the shared light path, so the worse end-face dominates;
      // electrical contacts glitch independently, so the two ends' oxidation
      // hazards add (and reseating either end removes its half).
      const double contamination =
          std::max(l.end_a.condition.contamination, l.end_b.condition.contamination);
      const double oxidation =
          0.5 * (l.end_a.condition.oxidation + l.end_b.condition.oxidation);
      const double rate = cfg_.gray_rate_per_year *
                          (1.0 + cfg_.gray_contamination_gain * contamination +
                           cfg_.gray_oxidation_gain * oxidation) *
                          stress;
      if (rng_.bernoulli(std::min(0.9, rate * dt_years))) {
        const double secs =
            rng_.lognormal(cfg_.gray_duration_log_mean, cfg_.gray_duration_log_sigma);
        inject_gray_episode(l.id, sim::Duration::seconds(secs));
      }
    }
  }

  for (const net::Device& d : net_.devices()) {
    if (!d.healthy) continue;
    const double afr =
        topology::is_switch(d.role) ? cfg_.switch_afr : cfg_.server_nic_afr;
    if (rng_.bernoulli(afr * dt_years)) inject_device_failure(d.id);
    if (d.has_linecards()) {
      for (int card = 0; card < static_cast<int>(d.linecards_healthy.size()); ++card) {
        if (d.linecards_healthy[static_cast<size_t>(card)] &&
            rng_.bernoulli(cfg_.linecard_afr * dt_years)) {
          inject_linecard_failure(d.id, card);
        }
      }
    }
  }
}

void FaultInjector::inject_transceiver_failure(net::LinkId id, int end) {
  net::Link& l = net_.link_mut(id);
  (end == 0 ? l.end_a.condition : l.end_b.condition).transceiver_healthy = false;
  net_.refresh_link(id);
  emit(FaultEvent{net_.now(), FaultKind::kTransceiverFailure, id, net::DeviceId{}, end,
                  sim::Duration::zero()});
}

void FaultInjector::inject_cable_break(net::LinkId id) {
  net_.link_mut(id).cable.intact = false;
  net_.refresh_link(id);
  emit(FaultEvent{net_.now(), FaultKind::kCableBreak, id, net::DeviceId{}, -1,
                  sim::Duration::zero()});
}

void FaultInjector::inject_device_failure(net::DeviceId id) {
  net_.set_device_health(id, false);
  emit(FaultEvent{net_.now(), FaultKind::kDeviceFailure, net::LinkId{}, id, -1,
                  sim::Duration::zero()});
}

void FaultInjector::inject_linecard_failure(net::DeviceId id, int card) {
  net_.set_linecard_health(id, card, false);
  emit(FaultEvent{net_.now(), FaultKind::kLineCardFailure, net::LinkId{}, id, card,
                  sim::Duration::zero()});
}

void FaultInjector::inject_gray_episode(net::LinkId id, sim::Duration duration) {
  net::Link& l = net_.link_mut(id);
  const sim::TimePoint until = net_.now() + duration;
  if (until > l.gray_until) l.gray_until = until;
  net_.refresh_link(id);
  // Schedule the recovery refresh so the state machine observes the expiry.
  net_.simulator().schedule_at(until, [this, id] { net_.refresh_link(id); });
  emit(FaultEvent{net_.now(), FaultKind::kGrayEpisode, id, net::DeviceId{}, -1, duration});
}

std::size_t FaultInjector::count(FaultKind k) const {
  std::size_t n = 0;
  for (const FaultEvent& e : log_) {
    if (e.kind == k) ++n;
  }
  return n;
}

void FaultInjector::set_obs(obs::Obs* o) {
  if (o == nullptr) return;
  if (obs::Registry* reg = o->metrics()) {
    static constexpr const char* kNames[kFaultKindCount] = {
        "fault_injected_transceiver_failure_total", "fault_injected_cable_break_total",
        "fault_injected_device_failure_total", "fault_injected_gray_episode_total",
        "fault_injected_linecard_failure_total"};
    for (std::size_t k = 0; k < kFaultKindCount; ++k) obs_injected_[k] = reg->counter(kNames[k]);
    obs_injected_total_ = reg->counter("fault_injected_total");
  }
  obs_trace_ = o->trace();
  obs_recorder_ = o->recorder();
}

void FaultInjector::emit(FaultEvent ev) {
  log_.push_back(ev);
  if (obs_injected_total_ != nullptr) {
    obs_injected_total_->inc();
    obs_injected_[static_cast<std::size_t>(ev.kind)]->inc();
  }
  SMN_TRACE_STMT(if (obs_trace_ != nullptr) obs_trace_->instant(
      to_string(ev.kind), "fault", ev.time, "link", ev.link.value(), "device",
      ev.device.value()));
  if (obs_recorder_ != nullptr) {
    obs_recorder_->record(ev.time.count_us(), to_string(ev.kind), ev.link.value(),
                          ev.device.value());
  }
  for (const Listener& l : listeners_) l(ev);
}

}  // namespace smn::fault
