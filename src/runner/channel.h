// Bounded MPMC channel — the runner's only cross-thread primitive.
//
// Deliberately simple (one mutex, two condition variables, a deque): the
// sweep's unit of work is an entire Monte-Carlo replicate (milliseconds to
// seconds of simulation), so channel overhead is noise and a work-stealing
// deque would buy nothing. Close semantics follow Go channels: producers
// `close()` when done, consumers drain remaining items and then observe
// `std::nullopt`.
//
// Every mutex-protected member is SMN_GUARDED_BY-annotated and the clang CI
// build promotes -Wthread-safety to an error, so an access outside the lock
// is a compile failure, not a TSan lottery ticket. Notifications are issued
// after the critical section ends (the state that satisfies the waiter's
// predicate was published while the lock was held, so no wakeup is lost and
// the woken thread never bounces off a still-held mutex).
#pragma once

#include <cstddef>
#include <deque>
#include <optional>
#include <utility>

#include "core/mutex.h"
#include "core/thread_annotations.h"

namespace smn::runner {

template <typename T>
class BoundedChannel {
 public:
  explicit BoundedChannel(std::size_t capacity) : capacity_{capacity == 0 ? 1 : capacity} {}

  BoundedChannel(const BoundedChannel&) = delete;
  BoundedChannel& operator=(const BoundedChannel&) = delete;

  /// Blocks while the channel is full. Returns false (dropping `v`) if the
  /// channel was closed — a late producer must not hang forever.
  bool push(T v) {
    bool pushed = false;
    {
      core::MutexLock lock{mu_};
      while (items_.size() >= capacity_ && !closed_) not_full_.wait(mu_);
      if (!closed_) {
        items_.push_back(std::move(v));
        pushed = true;
      }
    }
    if (pushed) not_empty_.notify_one();
    return pushed;
  }

  /// Blocks while the channel is empty and open. Returns nullopt only once
  /// the channel is closed *and* drained, so no pushed item is ever lost.
  std::optional<T> pop() {
    std::optional<T> v;
    {
      core::MutexLock lock{mu_};
      while (items_.empty() && !closed_) not_empty_.wait(mu_);
      if (!items_.empty()) {
        v.emplace(std::move(items_.front()));
        items_.pop_front();
      }
    }
    if (v.has_value()) not_full_.notify_one();
    return v;
  }

  /// Idempotent. Wakes every blocked producer and consumer.
  void close() {
    {
      core::MutexLock lock{mu_};
      closed_ = true;
    }
    not_full_.notify_all();
    not_empty_.notify_all();
  }

  [[nodiscard]] bool closed() const {
    core::MutexLock lock{mu_};
    return closed_;
  }

  [[nodiscard]] std::size_t size() const {
    core::MutexLock lock{mu_};
    return items_.size();
  }

 private:
  mutable core::Mutex mu_;
  core::CondVar not_full_;
  core::CondVar not_empty_;
  std::deque<T> items_ SMN_GUARDED_BY(mu_);
  const std::size_t capacity_;  // immutable after construction; no guard needed
  bool closed_ SMN_GUARDED_BY(mu_) = false;
};

}  // namespace smn::runner
