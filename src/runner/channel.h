// Bounded MPMC channel — the runner's only cross-thread primitive.
//
// Deliberately simple (one mutex, two condition variables, a deque): the
// sweep's unit of work is an entire Monte-Carlo replicate (milliseconds to
// seconds of simulation), so channel overhead is noise and a work-stealing
// deque would buy nothing. Close semantics follow Go channels: producers
// `close()` when done, consumers drain remaining items and then observe
// `std::nullopt`.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace smn::runner {

template <typename T>
class BoundedChannel {
 public:
  explicit BoundedChannel(std::size_t capacity) : capacity_{capacity == 0 ? 1 : capacity} {}

  BoundedChannel(const BoundedChannel&) = delete;
  BoundedChannel& operator=(const BoundedChannel&) = delete;

  /// Blocks while the channel is full. Returns false (dropping `v`) if the
  /// channel was closed — a late producer must not hang forever.
  bool push(T v) {
    std::unique_lock lock{mu_};
    not_full_.wait(lock, [&] { return items_.size() < capacity_ || closed_; });
    if (closed_) return false;
    items_.push_back(std::move(v));
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Blocks while the channel is empty and open. Returns nullopt only once
  /// the channel is closed *and* drained, so no pushed item is ever lost.
  std::optional<T> pop() {
    std::unique_lock lock{mu_};
    not_empty_.wait(lock, [&] { return !items_.empty() || closed_; });
    if (items_.empty()) return std::nullopt;
    T v = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return v;
  }

  /// Idempotent. Wakes every blocked producer and consumer.
  void close() {
    {
      std::lock_guard lock{mu_};
      closed_ = true;
    }
    not_full_.notify_all();
    not_empty_.notify_all();
  }

  [[nodiscard]] bool closed() const {
    std::lock_guard lock{mu_};
    return closed_;
  }

  [[nodiscard]] std::size_t size() const {
    std::lock_guard lock{mu_};
    return items_.size();
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<T> items_;
  const std::size_t capacity_;
  bool closed_ = false;
};

}  // namespace smn::runner
