// Canonical sweep grids shared by smnctl, the bench harnesses, and CI.
//
// `standard_fabric`/`standard_world` are the single source of truth for the
// "standard hall" every experiment uses (bench/common.h forwards here), so a
// sweep launched from the CLI, a bench binary, and the CI smoke job all mean
// the same world by the same name.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/automation.h"
#include "runner/sweep.h"
#include "scenario/world.h"
#include "topology/blueprint.h"

namespace smn::runner {

/// The standard hall used across experiments: 12 leaves x 4 spines with 8
/// servers per leaf (144 links), long uplinks on separate MPO optics.
[[nodiscard]] topology::Blueprint standard_fabric();

/// World preset for an automation level with the standard accelerated-aging
/// fault environment (a 60-day run yields statistically useful event counts).
[[nodiscard]] scenario::WorldConfig standard_world(core::AutomationLevel level,
                                                   std::uint64_t seed);

/// E2 grid: the five automation levels on the standard fabric.
[[nodiscard]] SweepSpec availability_sweep(sim::Duration duration, std::uint64_t first_seed,
                                           std::uint64_t seeds);

/// E7 dynamic grid: six fabrics x {L0, L4}, proactive maintenance off (cells
/// named "<fabric>/<level>").
[[nodiscard]] SweepSpec topology_sweep(sim::Duration duration, std::uint64_t first_seed,
                                       std::uint64_t seeds);

/// Small single-cell grid (tiny leaf-spine at L3) for CI smoke runs.
[[nodiscard]] SweepSpec quick_sweep(sim::Duration duration, std::uint64_t first_seed,
                                    std::uint64_t seeds);

/// Sharded multi-hall campus cell: four leaf-spine halls on a trunk ring at
/// L3, cross-hall traffic and a shared spare depot exchanged at epoch
/// barriers. The preset behind the CI shard-invariance gate (--shards 1/2/4
/// must produce byte-identical --no-timing reports).
[[nodiscard]] SweepSpec campus_sweep(sim::Duration duration, std::uint64_t first_seed,
                                     std::uint64_t seeds);

/// Standard-world config with the SNS-repair storage data plane enabled,
/// sized for fabrics with >= 10 servers (8+2 parity groups).
[[nodiscard]] scenario::WorldConfig storage_world(core::AutomationLevel level,
                                                  std::uint64_t seed);

/// quick_sweep's tiny fabric with a narrow (3+1) stripe layout — the
/// storage-enabled determinism/jobs-invariance CI cell.
[[nodiscard]] SweepSpec storage_quick_sweep(sim::Duration duration, std::uint64_t first_seed,
                                            std::uint64_t seeds);

/// campus_sweep's four-hall ring with per-hall storage and cross-hall replica
/// pushes riding the epoch barrier — the storage shard-invariance CI cell.
[[nodiscard]] SweepSpec storage_campus_sweep(sim::Duration duration, std::uint64_t first_seed,
                                             std::uint64_t seeds);

/// E19 grid: the five topology presets x {human L0, robot L4}, storage on —
/// repair-window and data-loss numbers at human vs robot repair timescales.
[[nodiscard]] SweepSpec storage_sweep(sim::Duration duration, std::uint64_t first_seed,
                                      std::uint64_t seeds);

/// Standard-world config (L3) with the survivability frontier enabled.
[[nodiscard]] scenario::WorldConfig survivability_world(std::uint64_t seed);

/// E20 grid: progressive-failure frontiers for the five audit fabrics plus
/// two regular/random hybrids (Sriram & Cliff, beta = 0.1 / 0.5), a
/// switch-failure cell on the standard fabric, and a four-hall campus cell
/// with per-hall curves (cells named "<fabric>/<mode>"). Every cell carries
/// full mean±95% CI curve arrays in the sweep JSON.
[[nodiscard]] SweepSpec survivability_sweep(sim::Duration duration, std::uint64_t first_seed,
                                            std::uint64_t seeds);

/// Dispatch by preset name; throws std::invalid_argument for unknown names.
[[nodiscard]] SweepSpec make_sweep(const std::string& preset, sim::Duration duration,
                                   std::uint64_t first_seed, std::uint64_t seeds);

/// Names accepted by make_sweep, for --help text and error messages.
[[nodiscard]] const std::vector<std::string>& sweep_preset_names();

}  // namespace smn::runner
