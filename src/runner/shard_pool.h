// ShardPool: a persistent fork-join worker pool for sharded campus runs.
//
// A Campus emits one task per domain at every epoch chunk; with thousands of
// chunks per simulated day, spawning threads per chunk would dominate the
// runtime. ShardPool keeps its workers parked on a condition variable and
// republishes the task vector each round, so a barrier costs two lock
// handoffs instead of N thread creations.
//
// run() has barrier semantics: every task executes exactly once and run()
// returns only after the last one finished. The calling thread participates
// as one of the shards, so ShardPool(n) uses exactly n threads of
// concurrency and ShardPool(1) degenerates to the plain sequential loop —
// which is what makes the shard-invariance gate meaningful: 1, 2, and 4
// shards run the identical task set, only the interleaving differs.
//
// Tasks claimed from the shared vector mutate disjoint domains; the claim
// index, completion count, and generation counter are the only shared state
// and every one of them is SMN_GUARDED_BY the pool mutex, machine-checked by
// the clang -Werror=thread-safety build and raced under the TSan CI matrix.
#pragma once

#include <cstdint>
#include <functional>
#include <thread>
#include <vector>

#include "core/mutex.h"
#include "core/thread_annotations.h"

namespace smn::runner {

class ShardPool {
 public:
  using Task = std::function<void()>;

  /// `shards` is the total concurrency including the calling thread; values
  /// below 1 are clamped to 1 (no worker threads, pure inline execution).
  explicit ShardPool(int shards);
  ~ShardPool();

  ShardPool(const ShardPool&) = delete;
  ShardPool& operator=(const ShardPool&) = delete;

  [[nodiscard]] int shards() const { return shards_; }

  /// Runs every task exactly once and returns after all completed. Tasks may
  /// run on any participating thread in any order; callers own making that
  /// order-insensitive (Campus does, by construction). Not reentrant.
  void run(std::vector<Task>& tasks);

  /// Adapter with the scenario::Campus::Executor signature.
  [[nodiscard]] std::function<void(std::vector<Task>&)> executor() {
    return [this](std::vector<Task>& tasks) { run(tasks); };
  }

 private:
  void worker_loop();
  /// Claims and runs tasks of `generation` until the vector is exhausted.
  void drain_tasks(std::uint64_t generation);

  const int shards_;
  mutable core::Mutex mu_;
  core::CondVar work_ready_;
  core::CondVar work_done_;
  std::vector<Task>* tasks_ SMN_GUARDED_BY(mu_) = nullptr;
  std::size_t next_ SMN_GUARDED_BY(mu_) = 0;
  std::size_t done_ SMN_GUARDED_BY(mu_) = 0;
  std::uint64_t generation_ SMN_GUARDED_BY(mu_) = 0;
  bool stop_ SMN_GUARDED_BY(mu_) = false;
  std::vector<std::jthread> workers_;
};

}  // namespace smn::runner
