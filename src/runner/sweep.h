// The parallel Monte-Carlo sweep engine.
//
// Every quantitative claim in EXPERIMENTS.md is a Monte-Carlo estimate over
// seeds; the seed dimension is embarrassingly parallel. A SweepRunner takes a
// SweepSpec — a grid of named WorldConfig cells × a seed range — and executes
// each (cell, seed) replicate on a fixed pool of std::jthread workers fed by
// a bounded MPMC task channel. Each replicate constructs its own private
// World (simulator, network, RNG streams — nothing mutable is shared across
// threads; the cell Blueprint is shared read-only and Network copies it), so
// the per-world determinism guarantee is untouched: a replicate's trace hash
// is a pure function of (cell config, seed), independent of thread count or
// completion order.
//
// Results stream through a bounded channel to the calling thread, which is
// the only aggregator. Aggregation is deferred until the sweep drains and
// performed in sorted (cell, seed) order, so floating-point accumulation —
// and therefore the JSON report — is byte-identical at jobs=1 and jobs=N
// (modulo the explicitly-excludable timing fields).
//
// Thread-safety inventory (machine-checked; see DESIGN.md "Static analysis"):
// the only mutex-protected state in the runner is BoundedChannel's, annotated
// SMN_GUARDED_BY in runner/channel.h. SweepRunner itself holds one atomic
// (stop_) and the aggregation state (`collected`, the report) is confined to
// the calling thread — workers hand results over exclusively through the
// channel, and the jthread join barrier orders the final aggregation after
// every worker exit.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "analysis/survivability.h"
#include "obs/metrics.h"
#include "scenario/campus.h"
#include "scenario/world.h"
#include "sim/time.h"
#include "topology/blueprint.h"
#include "topology/campus.h"

namespace smn::runner {

/// One grid cell: a named world configuration evaluated across all seeds.
/// When `campus.halls` is non-empty the cell is a *campus cell*: each
/// replicate runs a sharded scenario::Campus (one domain per hall) instead of
/// a single World. `config` then provides the per-hall WorldConfig and
/// `campus_config` the cross-hall coupling knobs (its `hall` member is
/// overwritten per replicate); `blueprint` is unused.
struct CellSpec {
  /// A single-World cell (the classic shape).
  CellSpec(std::string cell_name, topology::Blueprint bp, scenario::WorldConfig cfg)
      : name{std::move(cell_name)}, blueprint{std::move(bp)}, config{std::move(cfg)} {}

  /// A campus cell: `hall_cfg` applies to every hall, `tuning` sets the
  /// cross-hall coupling (its `hall` member is overwritten per replicate).
  CellSpec(std::string cell_name, topology::CampusBlueprint campus_bp,
           scenario::WorldConfig hall_cfg, scenario::CampusConfig tuning = {})
      : name{std::move(cell_name)},
        blueprint{topology::PhysicalLayout{{}}, "unused"},
        config{std::move(hall_cfg)},
        campus{std::move(campus_bp)},
        campus_config{std::move(tuning)} {}

  std::string name;
  topology::Blueprint blueprint;  // shared const across workers; Network copies it
  scenario::WorldConfig config;   // `seed` is overwritten per replicate
  topology::CampusBlueprint campus;
  scenario::CampusConfig campus_config;

  [[nodiscard]] bool is_campus() const { return !campus.halls.empty(); }
};

/// The fixed per-replicate metric vector. Indexed by Metric; kMetricNames
/// keeps the JSON field names in the same order.
enum Metric : std::size_t {
  kAvailability = 0,
  kNines,
  kImpairedFraction,
  kDowntimeLinkHours,
  kPlannedLinkHours,
  kImpairedLinkHours,
  kOpenBacklog,
  kFaultsInjected,
  kTicketsResolved,
  kTechnicianHours,
  kRobotBusyHours,
  kAnnualCostUsd,
  /// Simulator queue pressure: events processed per simulated day. The
  /// continuation scheduler's headline observable — fewer wakeups for the
  /// same physical outcome means a leaner hot loop.
  kEventsPerSimDay,
  /// Storage data plane (0 when `WorldConfig::storage.enabled` is false):
  /// mean dirty-episode length (first failure → parity group fully clean),
  /// the fraction of parity groups that ever crossed the >K simultaneous-
  /// failure line, and the fraction of reads that went degraded or
  /// unavailable — the client-visible durability triple of E19.
  kStorageRepairWindowHours,
  kStorageDataLossFraction,
  kStorageDegradedReadFraction,
  /// Survivability frontier AUC triple (0 when `WorldConfig::survivability`
  /// is disabled): normalized area under the mean largest-component,
  /// server-reachability, and bisection curves — 1.0 means the fabric holds
  /// its full capability across the whole progressive-failure sweep, 0.0
  /// means instant collapse. The full curves ride CellReport::survivability.
  kSurvivabilityAucConnectivity,
  kSurvivabilityAucReachability,
  kSurvivabilityAucBisection,
  kMetricCount,
};

inline constexpr std::array<const char*, kMetricCount> kMetricNames = {
    "availability",         "nines",
    "impaired_fraction",    "downtime_link_hours",
    "planned_link_hours",   "impaired_link_hours",
    "open_backlog",         "faults_injected",
    "tickets_resolved",     "technician_hours",
    "robot_busy_hours",     "annual_cost_usd",
    "events_per_sim_day",   "storage_repair_window_hours",
    "storage_data_loss_fraction", "storage_degraded_read_fraction",
    "survivability_auc_connectivity", "survivability_auc_reachability",
    "survivability_auc_bisection",
};

struct ReplicateResult {
  std::size_t cell = 0;
  std::uint64_t seed = 0;
  std::array<double, kMetricCount> metrics{};
  std::uint64_t trace_hash = 0;  // determinism signal, recorded per replicate
  std::uint64_t events = 0;
  /// Flattened obs registry snapshot (sorted by name; empty if metrics were
  /// disabled in the cell config) and its FNV-1a hash — the second
  /// determinism signal, proving instrumentation itself is reproducible.
  std::vector<obs::SnapshotEntry> obs_snapshot;
  std::uint64_t metrics_hash = 0;
  /// Chrome trace JSON of this replicate, populated only when it was the
  /// cell's sampled replicate (Options::sample_traces, lowest seed), plus the
  /// FNV-1a hash of those bytes embedded in the sweep JSON. Because tracing
  /// is a pure observer, enabling it leaves trace_hash/metrics/obs_snapshot
  /// untouched — the rest of the report stays byte-identical.
  std::string sampled_trace_json;
  std::uint64_t sampled_trace_hash = 0;
  /// Survivability frontier of this replicate's fabric (empty — samples == 0
  /// — unless the cell config enables it). Computed post-run on the calling
  /// worker from the cell blueprint with ordering seeds mixed from
  /// (config seed, replicate seed), so it is deterministic per (cell, seed)
  /// and a pure observer of the simulation. For campus cells it aggregates
  /// per-hall curves computed in hall order — shard-count invariant.
  analysis::FrontierResult survivability;
};

struct SweepSpec {
  std::vector<CellSpec> cells;
  std::uint64_t first_seed = 1;
  std::uint64_t seeds = 8;  // replicates per cell: seeds [first_seed, first_seed+seeds)
  sim::Duration duration = sim::Duration::days(30);
};

/// Summary statistics for one metric over a cell's replicates.
struct MetricSummary {
  double mean = 0.0;
  double stddev = 0.0;
  double ci95 = 0.0;  // half-width of the 95% normal CI on the mean
  double p50 = 0.0;
  double p95 = 0.0;
  double min = 0.0;
  double max = 0.0;
};

/// Per-cell aggregate of one obs snapshot entry across replicates.
struct ObsAggregate {
  std::string name;
  double mean = 0.0;
  double min = 0.0;
  double max = 0.0;
};

struct CellReport {
  std::string name;
  std::vector<ReplicateResult> replicates;  // sorted by seed
  std::array<MetricSummary, kMetricCount> stats{};
  /// Merged obs metrics (sorted by name; empty when metrics were disabled).
  /// Every replicate of a cell registers the same instrument set — the
  /// registry is populated eagerly at World wiring — so aggregation zips the
  /// sorted snapshots positionally.
  std::vector<ObsAggregate> obs;
  /// Cell-level survivability frontier: each replicate's mean curves enter
  /// as one sample (sorted-value aggregation, so byte-identical at any job
  /// count). samples == 0 when the cell has the frontier disabled.
  analysis::FrontierResult survivability;
};

struct SweepReport {
  std::vector<CellReport> cells;
  std::size_t replicates_done = 0;
  std::size_t replicates_total = 0;
  bool stopped_early = false;
  std::uint64_t first_seed = 1;
  std::uint64_t seeds = 0;
  double duration_days = 0.0;
  // Timing fields — excluded by JsonOptions::include_timing=false so reports
  // from different thread counts (jobs) and shard counts can be diffed
  // byte-for-byte. `shards` lives here for exactly that reason: it changes
  // wall time, never results.
  int jobs = 1;
  int shards = 1;
  double wall_seconds = 0.0;
  double replicates_per_sec = 0.0;
};

struct JsonOptions {
  bool include_timing = true;
};

/// Serializes a report to the machine-readable `smn-sweep-v1` JSON schema.
[[nodiscard]] std::string to_json(const SweepReport& report, const JsonOptions& opts = {});

/// File name (no directory) a cell's sampled trace is written under:
/// `trace_<cell>_seed<N>.json` with non-[A-Za-z0-9_-] bytes of the cell name
/// replaced by '_'. Directory-independent so the sweep JSON that embeds it
/// stays byte-identical wherever the traces land.
[[nodiscard]] std::string sampled_trace_filename(const std::string& cell_name,
                                                 std::uint64_t seed);

/// Writes every sampled trace in the report to `dir` (created if missing)
/// under sampled_trace_filename(). Returns false on any I/O failure. Kept
/// out of SweepRunner::run so aggregation itself never touches the
/// filesystem.
bool write_sampled_traces(const SweepReport& report, const std::string& dir);

class SweepRunner {
 public:
  struct Options {
    /// Worker threads; 0 means std::thread::hardware_concurrency().
    int jobs = 0;
    /// Progress callback, invoked on the calling thread after each replicate
    /// lands (`done` of `total`). May call request_stop() to end the sweep
    /// early; in-flight replicates still complete and are reported.
    std::function<void(const ReplicateResult&, std::size_t done, std::size_t total)> on_result;
    /// Trace one replicate per cell — deterministically the cheapest seed,
    /// i.e. first_seed — and carry its Chrome trace JSON + hash in the
    /// report, so every sweep ships a loadable example timeline.
    bool sample_traces = false;
    /// Worker threads *inside* each campus replicate (one ShardPool per
    /// replicate, one task per hall domain). 1 = sequential. Results are
    /// byte-identical at any value — that is the invariant the CI
    /// shard-invariance gate enforces. Ignored by single-World cells.
    int shards = 1;
  };

  /// Runs the full grid. Blocks until every replicate finished or the sweep
  /// was stopped; safe to call repeatedly (the stop flag resets per run).
  SweepReport run(const SweepSpec& spec, const Options& opts);
  SweepReport run(const SweepSpec& spec) { return run(spec, Options{}); }

  /// Requests cancellation: workers finish their current replicate and take
  /// no new work. Callable from on_result or from another thread.
  void request_stop() { stop_.store(true, std::memory_order_relaxed); }
  [[nodiscard]] bool stop_requested() const { return stop_.load(std::memory_order_relaxed); }

  /// Executes a single replicate synchronously — the unit the pool runs.
  /// Exposed for tests and for callers that want one world's metrics.
  /// `sample_trace` forces tracing on for this replicate and exports its
  /// trace JSON into the result; everything else is unaffected. For campus
  /// cells, `shards` > 1 runs the replicate's domains on a ShardPool of that
  /// width (results identical by construction; single-World cells ignore it).
  [[nodiscard]] static ReplicateResult run_replicate(const CellSpec& cell, std::size_t cell_index,
                                                     std::uint64_t seed, sim::Duration duration,
                                                     bool sample_trace = false, int shards = 1);

 private:
  std::atomic<bool> stop_{false};
};

}  // namespace smn::runner
