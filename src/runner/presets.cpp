#include "runner/presets.h"

#include <stdexcept>
#include <utility>

#include "topology/builders.h"

namespace smn::runner {
namespace {

[[nodiscard]] SweepSpec base_spec(sim::Duration duration, std::uint64_t first_seed,
                                  std::uint64_t seeds) {
  SweepSpec spec;
  spec.duration = duration;
  spec.first_seed = first_seed;
  spec.seeds = seeds;
  return spec;
}

}  // namespace

topology::Blueprint standard_fabric() {
  return topology::build_leaf_spine(
      {.leaves = 12, .spines = 4, .servers_per_leaf = 8, .uplinks_per_spine = 1});
}

scenario::WorldConfig standard_world(core::AutomationLevel level, std::uint64_t seed) {
  scenario::WorldConfig cfg = scenario::WorldConfig::for_level(level);
  cfg.seed = seed;
  cfg.network.aoc_max_m = 5.0;  // uplinks become separate cleanable optics
  cfg.faults.oxidation_rate_per_year = 0.4;
  cfg.contamination.mean_accumulation_per_day = 0.006;
  return cfg;
}

SweepSpec availability_sweep(sim::Duration duration, std::uint64_t first_seed,
                             std::uint64_t seeds) {
  static constexpr core::AutomationLevel kLevels[] = {
      core::AutomationLevel::kL0_Manual,          core::AutomationLevel::kL1_OperatorAssist,
      core::AutomationLevel::kL2_PartialAutomation,
      core::AutomationLevel::kL3_HighAutomation,  core::AutomationLevel::kL4_FullAutomation,
  };
  SweepSpec spec = base_spec(duration, first_seed, seeds);
  const topology::Blueprint bp = standard_fabric();
  for (const core::AutomationLevel level : kLevels) {
    spec.cells.push_back({core::to_string(level), bp, standard_world(level, first_seed)});
  }
  return spec;
}

SweepSpec topology_sweep(sim::Duration duration, std::uint64_t first_seed,
                         std::uint64_t seeds) {
  struct Fabric {
    const char* name;
    topology::Blueprint bp;
  };
  std::vector<Fabric> fabrics;
  fabrics.push_back({"fat-tree k=8", topology::build_fat_tree({.k = 8})});
  fabrics.push_back({"leaf-spine 32x8",
                     topology::build_leaf_spine(
                         {.leaves = 32, .spines = 8, .servers_per_leaf = 4})});
  fabrics.push_back({"jellyfish d=10",
                     topology::build_jellyfish({.switches = 32,
                                                .network_degree = 10,
                                                .servers_per_switch = 4,
                                                .seed = 7})});
  fabrics.push_back({"xpander d=7 L=4",
                     topology::build_xpander({.network_degree = 7,
                                              .lift = 4,
                                              .servers_per_switch = 4,
                                              .seed = 7})});
  fabrics.push_back({"dragonfly a=4 h=2",
                     topology::build_dragonfly({.routers_per_group = 4,
                                                .servers_per_router = 4,
                                                .global_per_router = 2})});
  fabrics.push_back({"torus 8x8",
                     topology::build_torus2d({.x = 8, .y = 8, .servers_per_node = 4})});

  SweepSpec spec = base_spec(duration, first_seed, seeds);
  for (Fabric& f : fabrics) {
    for (const core::AutomationLevel level :
         {core::AutomationLevel::kL0_Manual, core::AutomationLevel::kL4_FullAutomation}) {
      scenario::WorldConfig cfg = standard_world(level, first_seed);
      cfg.controller.proactive.enabled = false;
      spec.cells.push_back(
          {std::string{f.name} + "/" + core::to_string(level), f.bp, std::move(cfg)});
    }
  }
  return spec;
}

SweepSpec quick_sweep(sim::Duration duration, std::uint64_t first_seed, std::uint64_t seeds) {
  SweepSpec spec = base_spec(duration, first_seed, seeds);
  const topology::Blueprint bp =
      topology::build_leaf_spine({.leaves = 4, .spines = 2, .servers_per_leaf = 2});
  spec.cells.push_back(
      {"quick/L3", bp, standard_world(core::AutomationLevel::kL3_HighAutomation, first_seed)});
  return spec;
}

SweepSpec campus_sweep(sim::Duration duration, std::uint64_t first_seed, std::uint64_t seeds) {
  SweepSpec spec = base_spec(duration, first_seed, seeds);
  topology::CampusParams params;
  params.halls = 4;
  // Halls the size of the quick-preset fabric: the cell stays CI-cheap while
  // still crossing dozens of epoch barriers per simulated day.
  params.hall = {.leaves = 4, .spines = 2, .servers_per_leaf = 2};
  spec.cells.emplace_back(
      "campus/L3", topology::build_campus(params),
      standard_world(core::AutomationLevel::kL3_HighAutomation, first_seed));
  return spec;
}

scenario::WorldConfig storage_world(core::AutomationLevel level, std::uint64_t seed) {
  scenario::WorldConfig cfg = standard_world(level, seed);
  cfg.storage.enabled = true;
  // 8+2 groups of 2 GiB units at 250 MB/s healthy repair: one unit rebuild
  // takes ~8 simulated seconds. The E19 contrast lives in what ends an
  // episode: robot-maintained fabrics restore links fast enough that most
  // dirty groups close by self-recovery in about a second, while under
  // human maintenance nearly every failure rides the full reconstruction
  // path (queue + health-throttled rebuild).
  cfg.storage.layout.data_units = 8;
  cfg.storage.layout.parity_units = 2;
  cfg.storage.layout.stripes = 64;
  cfg.storage.layout.unit_mb = 2048.0;
  cfg.storage.repair_mbps = 250.0;
  return cfg;
}

namespace {

/// Narrow layout for the 8-server quick/campus fabrics: 3+1 groups of small
/// units so CI cells rebuild in simulated minutes, not hours.
void narrow_storage(scenario::WorldConfig& cfg) {
  cfg.storage.layout.data_units = 3;
  cfg.storage.layout.parity_units = 1;
  cfg.storage.layout.stripes = 24;
  cfg.storage.layout.unit_mb = 512.0;
}

}  // namespace

SweepSpec storage_quick_sweep(sim::Duration duration, std::uint64_t first_seed,
                              std::uint64_t seeds) {
  SweepSpec spec = base_spec(duration, first_seed, seeds);
  const topology::Blueprint bp =
      topology::build_leaf_spine({.leaves = 4, .spines = 2, .servers_per_leaf = 2});
  scenario::WorldConfig cfg =
      storage_world(core::AutomationLevel::kL3_HighAutomation, first_seed);
  narrow_storage(cfg);
  spec.cells.push_back({"storage-quick/L3", bp, std::move(cfg)});
  return spec;
}

SweepSpec storage_campus_sweep(sim::Duration duration, std::uint64_t first_seed,
                               std::uint64_t seeds) {
  SweepSpec spec = base_spec(duration, first_seed, seeds);
  topology::CampusParams params;
  params.halls = 4;
  params.hall = {.leaves = 4, .spines = 2, .servers_per_leaf = 2};
  scenario::WorldConfig cfg =
      storage_world(core::AutomationLevel::kL3_HighAutomation, first_seed);
  narrow_storage(cfg);
  spec.cells.emplace_back("storage-campus/L3", topology::build_campus(params),
                          std::move(cfg));
  return spec;
}

SweepSpec storage_sweep(sim::Duration duration, std::uint64_t first_seed,
                        std::uint64_t seeds) {
  // The same five fabrics smnctl's --audit-determinism cycles through.
  struct Fabric {
    const char* name;
    topology::Blueprint bp;
  };
  std::vector<Fabric> fabrics;
  fabrics.push_back({"leaf-spine", standard_fabric()});
  fabrics.push_back({"fat-tree", topology::build_fat_tree({.k = 8})});
  fabrics.push_back({"jellyfish",
                     topology::build_jellyfish({.switches = 32,
                                                .network_degree = 8,
                                                .servers_per_switch = 4,
                                                .seed = 1})});
  fabrics.push_back({"xpander",
                     topology::build_xpander({.network_degree = 7,
                                              .lift = 4,
                                              .servers_per_switch = 4,
                                              .seed = 1})});
  fabrics.push_back(
      {"gpu", topology::build_gpu_cluster({.gpu_servers = 16, .rails = 8, .spines = 2})});

  SweepSpec spec = base_spec(duration, first_seed, seeds);
  for (Fabric& f : fabrics) {
    // E19's contrast: human repair timescales (L0, technician shifts) vs
    // robotic ones (L4, minutes) under the identical fault environment.
    for (const auto& [tag, level] :
         {std::pair{"human", core::AutomationLevel::kL0_Manual},
          std::pair{"robot", core::AutomationLevel::kL4_FullAutomation}}) {
      spec.cells.push_back(
          {std::string{f.name} + "/" + tag, f.bp, storage_world(level, first_seed)});
    }
  }
  return spec;
}

scenario::WorldConfig survivability_world(std::uint64_t seed) {
  scenario::WorldConfig cfg =
      standard_world(core::AutomationLevel::kL3_HighAutomation, seed);
  cfg.survivability.enabled = true;
  cfg.survivability.orderings = 16;
  return cfg;
}

SweepSpec survivability_sweep(sim::Duration duration, std::uint64_t first_seed,
                              std::uint64_t seeds) {
  // The five audit fabrics plus the two hybrid dials of E20.
  struct Fabric {
    const char* name;
    topology::Blueprint bp;
  };
  std::vector<Fabric> fabrics;
  fabrics.push_back({"leaf-spine", standard_fabric()});
  fabrics.push_back({"fat-tree", topology::build_fat_tree({.k = 8})});
  fabrics.push_back({"jellyfish",
                     topology::build_jellyfish({.switches = 32,
                                                .network_degree = 8,
                                                .servers_per_switch = 4,
                                                .seed = 1})});
  fabrics.push_back({"xpander",
                     topology::build_xpander({.network_degree = 7,
                                              .lift = 4,
                                              .servers_per_switch = 4,
                                              .seed = 1})});
  fabrics.push_back(
      {"gpu", topology::build_gpu_cluster({.gpu_servers = 16, .rails = 8, .spines = 2})});
  fabrics.push_back({"hybrid-0.1",
                     topology::build_hybrid({.switches = 32,
                                             .lattice_neighbors = 4,
                                             .rewire_fraction = 0.1,
                                             .servers_per_switch = 4,
                                             .seed = 1})});
  fabrics.push_back({"hybrid-0.5",
                     topology::build_hybrid({.switches = 32,
                                             .lattice_neighbors = 4,
                                             .rewire_fraction = 0.5,
                                             .servers_per_switch = 4,
                                             .seed = 1})});

  SweepSpec spec = base_spec(duration, first_seed, seeds);
  for (Fabric& f : fabrics) {
    spec.cells.push_back(
        {std::string{f.name} + "/links", f.bp, survivability_world(first_seed)});
  }
  // Device-failure frontier on the standard fabric: switches fail in order,
  // servers (the reachability denominator) stay up.
  scenario::WorldConfig switch_cfg = survivability_world(first_seed);
  switch_cfg.survivability.mode = analysis::FailureMode::kSwitches;
  spec.cells.push_back({"leaf-spine/switches", standard_fabric(), std::move(switch_cfg)});
  // Per-hall campus curves — the shard-invariance cell for this preset.
  topology::CampusParams campus;
  campus.halls = 4;
  campus.hall = {.leaves = 4, .spines = 2, .servers_per_leaf = 2};
  spec.cells.emplace_back("campus/links", topology::build_campus(campus),
                          survivability_world(first_seed));
  return spec;
}

SweepSpec make_sweep(const std::string& preset, sim::Duration duration,
                     std::uint64_t first_seed, std::uint64_t seeds) {
  if (preset == "availability") return availability_sweep(duration, first_seed, seeds);
  if (preset == "topologies") return topology_sweep(duration, first_seed, seeds);
  if (preset == "quick") return quick_sweep(duration, first_seed, seeds);
  if (preset == "campus") return campus_sweep(duration, first_seed, seeds);
  if (preset == "storage") return storage_sweep(duration, first_seed, seeds);
  if (preset == "storage-quick") return storage_quick_sweep(duration, first_seed, seeds);
  if (preset == "storage-campus") return storage_campus_sweep(duration, first_seed, seeds);
  if (preset == "survivability") return survivability_sweep(duration, first_seed, seeds);
  throw std::invalid_argument{
      "unknown sweep preset '" + preset +
      "' (use availability|topologies|quick|campus|storage|storage-quick|storage-campus|"
      "survivability)"};
}

const std::vector<std::string>& sweep_preset_names() {
  static const std::vector<std::string> kNames = {
      "availability", "topologies", "quick", "campus", "storage", "storage-quick",
      "storage-campus", "survivability"};
  return kNames;
}

}  // namespace smn::runner
