#include "runner/presets.h"

#include <stdexcept>
#include <utility>

#include "topology/builders.h"

namespace smn::runner {
namespace {

[[nodiscard]] SweepSpec base_spec(sim::Duration duration, std::uint64_t first_seed,
                                  std::uint64_t seeds) {
  SweepSpec spec;
  spec.duration = duration;
  spec.first_seed = first_seed;
  spec.seeds = seeds;
  return spec;
}

}  // namespace

topology::Blueprint standard_fabric() {
  return topology::build_leaf_spine(
      {.leaves = 12, .spines = 4, .servers_per_leaf = 8, .uplinks_per_spine = 1});
}

scenario::WorldConfig standard_world(core::AutomationLevel level, std::uint64_t seed) {
  scenario::WorldConfig cfg = scenario::WorldConfig::for_level(level);
  cfg.seed = seed;
  cfg.network.aoc_max_m = 5.0;  // uplinks become separate cleanable optics
  cfg.faults.oxidation_rate_per_year = 0.4;
  cfg.contamination.mean_accumulation_per_day = 0.006;
  return cfg;
}

SweepSpec availability_sweep(sim::Duration duration, std::uint64_t first_seed,
                             std::uint64_t seeds) {
  static constexpr core::AutomationLevel kLevels[] = {
      core::AutomationLevel::kL0_Manual,          core::AutomationLevel::kL1_OperatorAssist,
      core::AutomationLevel::kL2_PartialAutomation,
      core::AutomationLevel::kL3_HighAutomation,  core::AutomationLevel::kL4_FullAutomation,
  };
  SweepSpec spec = base_spec(duration, first_seed, seeds);
  const topology::Blueprint bp = standard_fabric();
  for (const core::AutomationLevel level : kLevels) {
    spec.cells.push_back({core::to_string(level), bp, standard_world(level, first_seed)});
  }
  return spec;
}

SweepSpec topology_sweep(sim::Duration duration, std::uint64_t first_seed,
                         std::uint64_t seeds) {
  struct Fabric {
    const char* name;
    topology::Blueprint bp;
  };
  std::vector<Fabric> fabrics;
  fabrics.push_back({"fat-tree k=8", topology::build_fat_tree({.k = 8})});
  fabrics.push_back({"leaf-spine 32x8",
                     topology::build_leaf_spine(
                         {.leaves = 32, .spines = 8, .servers_per_leaf = 4})});
  fabrics.push_back({"jellyfish d=10",
                     topology::build_jellyfish({.switches = 32,
                                                .network_degree = 10,
                                                .servers_per_switch = 4,
                                                .seed = 7})});
  fabrics.push_back({"xpander d=7 L=4",
                     topology::build_xpander({.network_degree = 7,
                                              .lift = 4,
                                              .servers_per_switch = 4,
                                              .seed = 7})});
  fabrics.push_back({"dragonfly a=4 h=2",
                     topology::build_dragonfly({.routers_per_group = 4,
                                                .servers_per_router = 4,
                                                .global_per_router = 2})});
  fabrics.push_back({"torus 8x8",
                     topology::build_torus2d({.x = 8, .y = 8, .servers_per_node = 4})});

  SweepSpec spec = base_spec(duration, first_seed, seeds);
  for (Fabric& f : fabrics) {
    for (const core::AutomationLevel level :
         {core::AutomationLevel::kL0_Manual, core::AutomationLevel::kL4_FullAutomation}) {
      scenario::WorldConfig cfg = standard_world(level, first_seed);
      cfg.controller.proactive.enabled = false;
      spec.cells.push_back(
          {std::string{f.name} + "/" + core::to_string(level), f.bp, std::move(cfg)});
    }
  }
  return spec;
}

SweepSpec quick_sweep(sim::Duration duration, std::uint64_t first_seed, std::uint64_t seeds) {
  SweepSpec spec = base_spec(duration, first_seed, seeds);
  const topology::Blueprint bp =
      topology::build_leaf_spine({.leaves = 4, .spines = 2, .servers_per_leaf = 2});
  spec.cells.push_back(
      {"quick/L3", bp, standard_world(core::AutomationLevel::kL3_HighAutomation, first_seed)});
  return spec;
}

SweepSpec campus_sweep(sim::Duration duration, std::uint64_t first_seed, std::uint64_t seeds) {
  SweepSpec spec = base_spec(duration, first_seed, seeds);
  topology::CampusParams params;
  params.halls = 4;
  // Halls the size of the quick-preset fabric: the cell stays CI-cheap while
  // still crossing dozens of epoch barriers per simulated day.
  params.hall = {.leaves = 4, .spines = 2, .servers_per_leaf = 2};
  spec.cells.emplace_back(
      "campus/L3", topology::build_campus(params),
      standard_world(core::AutomationLevel::kL3_HighAutomation, first_seed));
  return spec;
}

SweepSpec make_sweep(const std::string& preset, sim::Duration duration,
                     std::uint64_t first_seed, std::uint64_t seeds) {
  if (preset == "availability") return availability_sweep(duration, first_seed, seeds);
  if (preset == "topologies") return topology_sweep(duration, first_seed, seeds);
  if (preset == "quick") return quick_sweep(duration, first_seed, seeds);
  if (preset == "campus") return campus_sweep(duration, first_seed, seeds);
  throw std::invalid_argument{"unknown sweep preset '" + preset +
                              "' (use availability|topologies|quick|campus)"};
}

const std::vector<std::string>& sweep_preset_names() {
  static const std::vector<std::string> kNames = {"availability", "topologies", "quick",
                                                  "campus"};
  return kNames;
}

}  // namespace smn::runner
