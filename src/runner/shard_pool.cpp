#include "runner/shard_pool.h"

namespace smn::runner {

ShardPool::ShardPool(int shards) : shards_{shards < 1 ? 1 : shards} {
  workers_.reserve(static_cast<std::size_t>(shards_ - 1));
  for (int i = 0; i < shards_ - 1; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ShardPool::~ShardPool() {
  {
    core::MutexLock lock{mu_};
    stop_ = true;
  }
  work_ready_.notify_all();
  // jthread joins on destruction.
}

void ShardPool::run(std::vector<Task>& tasks) {
  if (tasks.empty()) return;
  if (workers_.empty()) {
    for (Task& t : tasks) t();
    return;
  }
  std::uint64_t generation = 0;
  {
    core::MutexLock lock{mu_};
    tasks_ = &tasks;
    next_ = 0;
    done_ = 0;
    generation = ++generation_;
  }
  work_ready_.notify_all();
  drain_tasks(generation);  // the calling thread is one of the shards
  {
    core::MutexLock lock{mu_};
    while (done_ < tasks.size()) work_done_.wait(mu_);
    tasks_ = nullptr;  // stale workers see this and go back to sleep
  }
}

void ShardPool::worker_loop() {
  std::uint64_t seen_generation = 0;
  for (;;) {
    {
      core::MutexLock lock{mu_};
      while (!stop_ && generation_ == seen_generation) work_ready_.wait(mu_);
      if (stop_) return;
      seen_generation = generation_;
    }
    drain_tasks(seen_generation);
  }
}

void ShardPool::drain_tasks(std::uint64_t generation) {
  for (;;) {
    Task* task = nullptr;
    {
      core::MutexLock lock{mu_};
      if (generation_ != generation || tasks_ == nullptr || next_ >= tasks_->size()) return;
      task = &(*tasks_)[next_++];
    }
    (*task)();
    bool all_done = false;
    {
      core::MutexLock lock{mu_};
      // tasks_ stays set until done_ reaches the task count, and this
      // increment is what lets it get there — the deref cannot be stale.
      ++done_;
      all_done = done_ == tasks_->size();
    }
    if (all_done) work_done_.notify_all();
  }
}

}  // namespace smn::runner
