#include "runner/sweep.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <thread>
#include <utility>

#include "analysis/cost.h"
#include "analysis/stats.h"
#include "core/check.h"
#include "maintenance/ticket.h"
#include "runner/channel.h"
#include "runner/json_writer.h"
#include "runner/shard_pool.h"

namespace smn::runner {
namespace {

// Wall-clock throughput timing only (never simulation-visible): the sim side
// of every replicate runs purely on sim::TimePoint.
// smn-lint: allow(wall-clock)
using WallClock = std::chrono::steady_clock;

[[nodiscard]] int resolve_jobs(int requested) {
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

[[nodiscard]] MetricSummary summarize(const analysis::SampleStats& s) {
  MetricSummary m;
  if (s.empty()) return m;
  m.mean = s.mean();
  m.stddev = s.stddev();
  m.ci95 = s.count() > 1 ? 1.96 * s.stddev() / std::sqrt(static_cast<double>(s.count())) : 0.0;
  m.p50 = s.percentile(50.0);
  m.p95 = s.percentile(95.0);
  m.min = s.min();
  m.max = s.max();
  return m;
}

/// Registers the survivability_* instruments and records the frontier into
/// them. Called before the obs snapshot is taken so the aggregates (and the
/// metrics hash) carry the frontier deterministically.
void record_survivability_obs(obs::Registry* reg, const analysis::FrontierResult& frontier) {
  if (reg == nullptr || !frontier.present()) return;
  reg->counter("survivability_orderings_total")->inc(frontier.samples);
  reg->counter("survivability_curve_points_total")
      ->inc(frontier.samples * (frontier.elements + 1));
  reg->gauge("survivability_elements")->set(static_cast<double>(frontier.elements));
  reg->gauge("survivability_auc_connectivity")->set(frontier.auc_connectivity);
  reg->gauge("survivability_auc_reachability")->set(frontier.auc_reachability);
  reg->gauge("survivability_auc_bisection")->set(frontier.auc_bisection);
}

/// Single-fabric frontier: ordering seeds are mixed from (config seed,
/// replicate seed), so every replicate samples distinct orderings while the
/// result stays a pure function of (cell config, seed).
[[nodiscard]] analysis::FrontierResult compute_survivability(
    const topology::Blueprint& bp, const analysis::SurvivabilityConfig& cfg,
    std::uint64_t replicate_seed) {
  analysis::SurvivabilityFrontier frontier{bp};
  const std::vector<std::uint64_t> seeds = analysis::SurvivabilityFrontier::ordering_seeds(
      analysis::SurvivabilityFrontier::mix_seed(cfg.seed, replicate_seed), cfg.orderings);
  return frontier.compute(cfg.mode, seeds);
}

/// Campus frontier: per-hall curves (hall index mixed into the ordering
/// seeds) aggregated over every (hall, ordering) sample. Runs on the calling
/// thread in hall order and aggregation sorts per-point, so the result is
/// byte-identical at any shard count. Requires every hall to expose the same
/// element count (build_campus stamps identical halls).
[[nodiscard]] analysis::FrontierResult compute_campus_survivability(
    const topology::CampusBlueprint& campus, const analysis::SurvivabilityConfig& cfg,
    std::uint64_t replicate_seed) {
  const std::uint64_t base =
      analysis::SurvivabilityFrontier::mix_seed(cfg.seed, replicate_seed);
  std::vector<analysis::SurvivabilityCurves> samples;
  std::size_t elements = 0, devices = 0, servers = 0;
  std::vector<std::int32_t> order;
  for (std::size_t hall = 0; hall < campus.halls.size(); ++hall) {
    analysis::SurvivabilityFrontier frontier{campus.halls[hall]};
    if (hall == 0) {
      elements = frontier.element_count(cfg.mode);
      devices = frontier.device_count();
      servers = frontier.server_count();
    } else {
      SMN_ASSERT(frontier.element_count(cfg.mode) == elements,
                 "campus hall %zu has %zu failable elements, hall 0 has %zu", hall,
                 frontier.element_count(cfg.mode), elements);
    }
    const std::vector<std::uint64_t> seeds = analysis::SurvivabilityFrontier::ordering_seeds(
        analysis::SurvivabilityFrontier::mix_seed(base, hall + 1), cfg.orderings);
    for (const std::uint64_t seed : seeds) {
      frontier.make_ordering(cfg.mode, seed, order);
      analysis::SurvivabilityCurves curves;
      frontier.replay(cfg.mode, order, curves);
      samples.push_back(std::move(curves));
    }
  }
  return analysis::aggregate_curves(cfg.mode, elements, devices, servers, samples);
}

/// The campus-cell replicate: one sharded Campus instead of one World. The
/// sim side is shard-count-invariant by construction (epoch barriers +
/// sorted exchange), and everything below reads the finished campus on the
/// calling thread in hall order, so the result is too.
[[nodiscard]] ReplicateResult run_campus_replicate(const CellSpec& cell, std::size_t cell_index,
                                                   std::uint64_t seed, sim::Duration duration,
                                                   bool sample_trace, int shards) {
  scenario::CampusConfig cfg = cell.campus_config;
  cfg.hall = cell.config;
  cfg.hall.seed = seed;
  if (sample_trace) cfg.hall.obs.trace = true;
  scenario::Campus campus{cell.campus, std::move(cfg)};
  if (shards > 1) {
    ShardPool pool{shards};
    campus.run_for(duration, pool.executor());
  } else {
    campus.run_for(duration);
  }
  campus.check_invariants();

  ReplicateResult r;
  r.cell = cell_index;
  r.seed = seed;
  // Frontier before the merged snapshot so the survivability_* instruments
  // (registered into hall 0's registry) are part of the obs aggregate.
  if (cell.config.survivability.enabled && cell.config.survivability.orderings > 0) {
    r.survivability = compute_campus_survivability(cell.campus, cell.config.survivability, seed);
    record_survivability_obs(campus.domain(0).obs().metrics(), r.survivability);
  }
  r.trace_hash = campus.trace_hash();
  r.events = campus.events_processed();
  r.obs_snapshot = campus.merged_snapshot();
  if (!r.obs_snapshot.empty()) r.metrics_hash = obs::snapshot_hash(r.obs_snapshot);
  // The sampled timeline is hall 0's — the domain whose seed equals the
  // campus seed, so it is directly comparable to a single-World trace.
  if (sample_trace && campus.domain(0).obs().trace() != nullptr) {
    r.sampled_trace_json = campus.domain(0).obs().trace()->to_chrome_json();
    r.sampled_trace_hash = obs::fnv1a(r.sampled_trace_json);
  }

  // Hours, counts, and costs sum across halls; the availability/impairment
  // fractions are weighted by hall link count (identical halls degrade to a
  // plain mean, ragged campuses stay correct). Accumulation runs in hall
  // order on this thread — deterministic at any shard count.
  auto& m = r.metrics;
  analysis::CostInputs costs;
  double weight_total = 0.0;
  double storage_window_hours = 0.0, storage_windows = 0.0;
  double storage_lost = 0.0, storage_stripes = 0.0;
  double storage_bad_reads = 0.0, storage_reads = 0.0;
  for (std::size_t i = 0; i < campus.domain_count(); ++i) {
    scenario::World& world = campus.domain(i);
    const analysis::AvailabilityTracker& avail = world.availability();
    const double w = static_cast<double>(cell.campus.halls[i].links().size());
    weight_total += w;
    m[kAvailability] += w * avail.fleet_availability();
    m[kImpairedFraction] += w * avail.fleet_impairment();
    m[kDowntimeLinkHours] += avail.downtime_link_hours();
    m[kPlannedLinkHours] += avail.planned_maintenance_link_hours();
    m[kImpairedLinkHours] += avail.impaired_link_hours();
    m[kOpenBacklog] +=
        static_cast<double>(world.tickets().count(maintenance::TicketState::kOpen) +
                            world.tickets().count(maintenance::TicketState::kDispatched) +
                            world.tickets().count(maintenance::TicketState::kInProgress));
    m[kFaultsInjected] += static_cast<double>(world.injector().log().size());
    m[kTicketsResolved] +=
        static_cast<double>(world.tickets().count(maintenance::TicketState::kResolved));
    m[kTechnicianHours] += world.technicians().labor_hours();
    m[kRobotBusyHours] += world.has_fleet() ? world.fleet().busy_hours() : 0.0;
    costs.robot_units += world.has_fleet() ? world.fleet().units_online() : 0;
    if (world.has_storage()) {
      const storage::DataPlane& sp = world.storage();
      storage_window_hours += sp.repair_window_hours_sum();
      storage_windows += static_cast<double>(sp.repair_windows());
      storage_lost += static_cast<double>(sp.pool().stripes_lost_ever());
      storage_stripes += static_cast<double>(sp.pool().stripe_count());
      storage_bad_reads +=
          static_cast<double>(sp.degraded_reads() + sp.unavailable_reads());
      storage_reads += static_cast<double>(sp.reads());
    }
  }
  if (weight_total > 0.0) {
    m[kAvailability] /= weight_total;
    m[kImpairedFraction] /= weight_total;
  }
  m[kNines] = analysis::AvailabilityTracker::nines(m[kAvailability]);
  // Campus-wide storage ratios from the raw sums (hall-count independent).
  m[kStorageRepairWindowHours] =
      storage_windows > 0.0 ? storage_window_hours / storage_windows : 0.0;
  m[kStorageDataLossFraction] =
      storage_stripes > 0.0 ? storage_lost / storage_stripes : 0.0;
  m[kStorageDegradedReadFraction] =
      storage_reads > 0.0 ? storage_bad_reads / storage_reads : 0.0;

  costs.technician_hours = m[kTechnicianHours];
  costs.robot_busy_hours = m[kRobotBusyHours];
  costs.elapsed_years = duration.to_days() / 365.0;
  costs.downtime_link_hours = m[kDowntimeLinkHours];
  costs.impaired_link_hours = m[kImpairedLinkHours];
  const double elapsed_days = duration.to_days();
  m[kAnnualCostUsd] = elapsed_days > 0.0
                          ? analysis::compute_cost({}, costs).total_usd * 365.0 / elapsed_days
                          : 0.0;
  m[kEventsPerSimDay] =
      elapsed_days > 0.0 ? static_cast<double>(r.events) / elapsed_days : 0.0;
  m[kSurvivabilityAucConnectivity] = r.survivability.auc_connectivity;
  m[kSurvivabilityAucReachability] = r.survivability.auc_reachability;
  m[kSurvivabilityAucBisection] = r.survivability.auc_bisection;
  return r;
}

}  // namespace

ReplicateResult SweepRunner::run_replicate(const CellSpec& cell, std::size_t cell_index,
                                           std::uint64_t seed, sim::Duration duration,
                                           bool sample_trace, int shards) {
  if (cell.is_campus()) {
    return run_campus_replicate(cell, cell_index, seed, duration, sample_trace, shards);
  }
  scenario::WorldConfig cfg = cell.config;
  cfg.seed = seed;
  if (sample_trace) cfg.obs.trace = true;
  scenario::World world{cell.blueprint, std::move(cfg)};
  world.run_for(duration);
  world.check_invariants();

  ReplicateResult r;
  r.cell = cell_index;
  r.seed = seed;
  // Frontier before the snapshot so the survivability_* instruments land in
  // the replicate's obs hash and aggregates.
  if (cell.config.survivability.enabled && cell.config.survivability.orderings > 0) {
    r.survivability = compute_survivability(cell.blueprint, cell.config.survivability, seed);
    record_survivability_obs(world.obs().metrics(), r.survivability);
  }
  r.trace_hash = world.simulator().trace_hash();
  r.events = world.simulator().events_processed();
  if (const obs::Registry* reg = world.obs().metrics()) {
    r.obs_snapshot = reg->snapshot();
    r.metrics_hash = reg->snapshot_hash();
  }
  if (sample_trace && world.obs().trace() != nullptr) {
    r.sampled_trace_json = world.obs().trace()->to_chrome_json();
    r.sampled_trace_hash = obs::fnv1a(r.sampled_trace_json);
  }

  const analysis::AvailabilityTracker& avail = world.availability();
  auto& m = r.metrics;
  m[kAvailability] = avail.fleet_availability();
  m[kNines] = analysis::AvailabilityTracker::nines(m[kAvailability]);
  m[kImpairedFraction] = avail.fleet_impairment();
  m[kDowntimeLinkHours] = avail.downtime_link_hours();
  m[kPlannedLinkHours] = avail.planned_maintenance_link_hours();
  m[kImpairedLinkHours] = avail.impaired_link_hours();
  m[kOpenBacklog] =
      static_cast<double>(world.tickets().count(maintenance::TicketState::kOpen) +
                          world.tickets().count(maintenance::TicketState::kDispatched) +
                          world.tickets().count(maintenance::TicketState::kInProgress));
  m[kFaultsInjected] = static_cast<double>(world.injector().log().size());
  m[kTicketsResolved] =
      static_cast<double>(world.tickets().count(maintenance::TicketState::kResolved));
  m[kTechnicianHours] = world.technicians().labor_hours();
  m[kRobotBusyHours] = world.has_fleet() ? world.fleet().busy_hours() : 0.0;
  if (world.has_storage()) {
    const storage::DataPlane& sp = world.storage();
    m[kStorageRepairWindowHours] = sp.mean_repair_window_hours();
    m[kStorageDataLossFraction] = sp.data_loss_fraction();
    m[kStorageDegradedReadFraction] = sp.degraded_read_fraction();
  }

  analysis::CostInputs costs;
  costs.technician_hours = m[kTechnicianHours];
  costs.robot_busy_hours = m[kRobotBusyHours];
  costs.robot_units = world.has_fleet() ? world.fleet().units_online() : 0;
  costs.elapsed_years = duration.to_days() / 365.0;
  costs.downtime_link_hours = m[kDowntimeLinkHours];
  costs.impaired_link_hours = m[kImpairedLinkHours];
  const double elapsed_days = duration.to_days();
  m[kAnnualCostUsd] = elapsed_days > 0.0
                          ? analysis::compute_cost({}, costs).total_usd * 365.0 / elapsed_days
                          : 0.0;
  m[kEventsPerSimDay] =
      elapsed_days > 0.0 ? static_cast<double>(r.events) / elapsed_days : 0.0;
  m[kSurvivabilityAucConnectivity] = r.survivability.auc_connectivity;
  m[kSurvivabilityAucReachability] = r.survivability.auc_reachability;
  m[kSurvivabilityAucBisection] = r.survivability.auc_bisection;
  return r;
}

SweepReport SweepRunner::run(const SweepSpec& spec, const Options& opts) {
  stop_.store(false, std::memory_order_relaxed);

  struct Task {
    std::size_t cell;
    std::uint64_t seed;
  };
  std::vector<Task> tasks;
  tasks.reserve(spec.cells.size() * static_cast<std::size_t>(spec.seeds));
  for (std::size_t c = 0; c < spec.cells.size(); ++c) {
    for (std::uint64_t s = 0; s < spec.seeds; ++s) {
      tasks.push_back({c, spec.first_seed + s});
    }
  }

  SweepReport report;
  report.replicates_total = tasks.size();
  report.first_seed = spec.first_seed;
  report.seeds = spec.seeds;
  report.duration_days = spec.duration.to_days();
  report.cells.reserve(spec.cells.size());
  for (const CellSpec& cell : spec.cells) {
    CellReport cr;
    cr.name = cell.name;
    report.cells.push_back(std::move(cr));
  }

  const int jobs = resolve_jobs(opts.jobs);
  const int shards = opts.shards < 1 ? 1 : opts.shards;
  report.jobs = jobs;
  report.shards = shards;
  const auto wall_start = WallClock::now();

  std::vector<ReplicateResult> collected;
  collected.reserve(tasks.size());

  if (!tasks.empty()) {
    // Task channel holds the whole grid so producers never block; the results
    // channel is small and continuously drained by this thread, so workers
    // stay bounded-ahead and cancellation latency stays at one replicate.
    BoundedChannel<Task> task_channel{tasks.size()};
    BoundedChannel<ReplicateResult> results{static_cast<std::size_t>(jobs) * 2 + 1};
    for (const Task& t : tasks) task_channel.push(t);
    task_channel.close();

    std::atomic<int> live_workers{jobs};
    {
      std::vector<std::jthread> workers;
      workers.reserve(static_cast<std::size_t>(jobs));
      for (int j = 0; j < jobs; ++j) {
        workers.emplace_back([&] {
          while (std::optional<Task> task = task_channel.pop()) {
            if (stop_requested()) break;
            ReplicateResult r =
                run_replicate(spec.cells[task->cell], task->cell, task->seed, spec.duration,
                              opts.sample_traces && task->seed == spec.first_seed, shards);
            if (!results.push(std::move(r))) break;
          }
          if (live_workers.fetch_sub(1, std::memory_order_acq_rel) == 1) results.close();
        });
      }

      // Sole aggregator: stream results in completion order; deterministic
      // ordering is restored after the drain.
      while (std::optional<ReplicateResult> r = results.pop()) {
        collected.push_back(std::move(*r));
        if (opts.on_result) opts.on_result(collected.back(), collected.size(), tasks.size());
      }
    }  // jthread join barrier
  }

  const std::chrono::duration<double> wall = WallClock::now() - wall_start;
  report.wall_seconds = wall.count();
  report.replicates_done = collected.size();
  report.stopped_early = collected.size() < tasks.size();
  report.replicates_per_sec =
      report.wall_seconds > 0.0 ? static_cast<double>(collected.size()) / report.wall_seconds
                                : 0.0;

  // Deterministic aggregation: identical (cell, seed) sets produce identical
  // accumulation order — and therefore bit-identical stats — at any jobs.
  std::sort(collected.begin(), collected.end(),
            [](const ReplicateResult& a, const ReplicateResult& b) {
              return a.cell != b.cell ? a.cell < b.cell : a.seed < b.seed;
            });
  for (ReplicateResult& r : collected) {
    SMN_ASSERT(r.cell < report.cells.size(), "replicate cell index %zu out of range", r.cell);
    report.cells[r.cell].replicates.push_back(std::move(r));
  }
  for (CellReport& cell : report.cells) {
    std::array<analysis::SampleStats, kMetricCount> acc;
    for (const ReplicateResult& r : cell.replicates) {
      for (std::size_t i = 0; i < kMetricCount; ++i) acc[i].push(r.metrics[i]);
    }
    for (std::size_t i = 0; i < kMetricCount; ++i) cell.stats[i] = summarize(acc[i]);

    // Merge obs snapshots: every replicate of a cell carries the same sorted
    // name set (instruments are registered eagerly at World wiring), so the
    // zip below is positional. Accumulation runs in sorted-seed order, so the
    // aggregates are byte-identical at any thread count.
    if (!cell.replicates.empty() && !cell.replicates.front().obs_snapshot.empty()) {
      const std::vector<obs::SnapshotEntry>& first = cell.replicates.front().obs_snapshot;
      std::vector<analysis::SampleStats> obs_acc(first.size());
      for (const ReplicateResult& r : cell.replicates) {
        SMN_ASSERT(r.obs_snapshot.size() == first.size(),
                   "replicate seed %llu has %zu obs entries, expected %zu",
                   static_cast<unsigned long long>(r.seed), r.obs_snapshot.size(), first.size());
        for (std::size_t i = 0; i < first.size(); ++i) {
          SMN_DCHECK(r.obs_snapshot[i].name == first[i].name, "obs schema mismatch at %zu", i);
          obs_acc[i].push(r.obs_snapshot[i].value);
        }
      }
      cell.obs.reserve(first.size());
      for (std::size_t i = 0; i < first.size(); ++i) {
        cell.obs.push_back({first[i].name, obs_acc[i].mean(), obs_acc[i].min(), obs_acc[i].max()});
      }
    }

    // Cell-level frontier: every replicate's mean curves enter as one sample.
    // aggregate_curves sorts per point, so the block is byte-identical at any
    // job count (and, for campus cells, any shard count).
    if (!cell.replicates.empty() && cell.replicates.front().survivability.present()) {
      const analysis::FrontierResult& first = cell.replicates.front().survivability;
      std::vector<analysis::SurvivabilityCurves> samples;
      samples.reserve(cell.replicates.size());
      for (const ReplicateResult& r : cell.replicates) {
        SMN_ASSERT(r.survivability.elements == first.elements,
                   "replicate seed %llu has %zu survivability elements, expected %zu",
                   static_cast<unsigned long long>(r.seed), r.survivability.elements,
                   first.elements);
        samples.push_back({r.survivability.largest_component.mean,
                           r.survivability.server_reachability.mean,
                           r.survivability.bisection.mean});
      }
      cell.survivability = analysis::aggregate_curves(first.mode, first.elements, first.devices,
                                                      first.servers, samples);
    }
  }
  return report;
}

std::string to_json(const SweepReport& report, const JsonOptions& opts) {
  JsonWriter w;
  w.begin_object();
  w.kv("schema", "smn-sweep-v1");
  w.kv("first_seed", report.first_seed);
  w.kv("seeds", report.seeds);
  w.kv("duration_days", report.duration_days);
  w.kv("replicates_total", report.replicates_total);
  w.kv("replicates_done", report.replicates_done);
  w.kv("stopped_early", report.stopped_early);
  if (opts.include_timing) {
    w.kv("jobs", report.jobs);
    w.kv("shards", report.shards);
    w.kv("wall_seconds", report.wall_seconds);
    w.kv("replicates_per_sec", report.replicates_per_sec);
  }
  w.key("cells");
  w.begin_array();
  for (const CellReport& cell : report.cells) {
    w.begin_object();
    w.kv("name", cell.name);
    w.kv("replicates", cell.replicates.size());
    // At most one replicate per cell carries a sampled trace (lowest seed).
    const ReplicateResult* sampled = nullptr;
    for (const ReplicateResult& r : cell.replicates) {
      if (!r.sampled_trace_json.empty()) {
        sampled = &r;
        break;
      }
    }
    if (sampled != nullptr) {
      w.key("sampled_trace");
      w.begin_object();
      w.kv("seed", sampled->seed);
      w.kv("trace_hash", JsonWriter::hex64(sampled->sampled_trace_hash));
      w.kv("file", sampled_trace_filename(cell.name, sampled->seed));
      w.end_object();
    }
    w.key("metrics");
    w.begin_object();
    for (std::size_t i = 0; i < kMetricCount; ++i) {
      const MetricSummary& s = cell.stats[i];
      w.key(kMetricNames[i]);
      w.begin_object();
      w.kv("mean", s.mean);
      w.kv("stddev", s.stddev);
      w.kv("ci95", s.ci95);
      w.kv("p50", s.p50);
      w.kv("p95", s.p95);
      w.kv("min", s.min);
      w.kv("max", s.max);
      w.end_object();
    }
    w.end_object();
    if (!cell.obs.empty()) {
      w.key("obs");
      w.begin_object();
      for (const ObsAggregate& a : cell.obs) {
        w.key(a.name);
        w.begin_object();
        w.kv("mean", a.mean);
        w.kv("min", a.min);
        w.kv("max", a.max);
        w.end_object();
      }
      w.end_object();
    }
    if (cell.survivability.present()) {
      const analysis::FrontierResult& f = cell.survivability;
      w.key("survivability");
      w.begin_object();
      w.kv("mode", analysis::to_string(f.mode));
      w.kv("elements", f.elements);
      w.kv("devices", f.devices);
      w.kv("servers", f.servers);
      w.kv("samples", f.samples);
      w.kv("auc_connectivity", f.auc_connectivity);
      w.kv("auc_reachability", f.auc_reachability);
      w.kv("auc_bisection", f.auc_bisection);
      w.kv("hash", JsonWriter::hex64(f.hash));
      w.key("curves");
      w.begin_object();
      const auto emit_curve = [&w](const char* name, const analysis::CurveSummary& c) {
        w.key(name);
        w.begin_object();
        w.key("mean");
        w.begin_array();
        for (const double v : c.mean) w.value(v);
        w.end_array();
        w.key("ci95");
        w.begin_array();
        for (const double v : c.ci95) w.value(v);
        w.end_array();
        w.end_object();
      };
      emit_curve("largest_component", f.largest_component);
      emit_curve("server_reachability", f.server_reachability);
      emit_curve("bisection", f.bisection);
      w.end_object();
      w.end_object();
    }
    w.key("samples");
    w.begin_array();
    for (const ReplicateResult& r : cell.replicates) {
      w.begin_object();
      w.kv("seed", r.seed);
      w.kv("trace_hash", JsonWriter::hex64(r.trace_hash));
      if (r.metrics_hash != 0) w.kv("metrics_hash", JsonWriter::hex64(r.metrics_hash));
      w.kv("events", r.events);
      if (r.survivability.present()) {
        w.kv("survivability_hash", JsonWriter::hex64(r.survivability.hash));
      }
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.str();
}

std::string sampled_trace_filename(const std::string& cell_name, std::uint64_t seed) {
  std::string sanitized = cell_name;
  for (char& c : sanitized) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == '-';
    if (!ok) c = '_';
  }
  return "trace_" + sanitized + "_seed" + std::to_string(seed) + ".json";
}

bool write_sampled_traces(const SweepReport& report, const std::string& dir) {
  bool ok = true;
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);  // best-effort; open() reports failures
  for (const CellReport& cell : report.cells) {
    for (const ReplicateResult& r : cell.replicates) {
      if (r.sampled_trace_json.empty()) continue;
      const std::string path = dir + "/" + sampled_trace_filename(cell.name, r.seed);
      std::ofstream out{path, std::ios::binary};
      out << r.sampled_trace_json;
      if (!out.good()) {
        std::fprintf(stderr, "failed to write sampled trace %s\n", path.c_str());
        ok = false;
      }
    }
  }
  return ok;
}

}  // namespace smn::runner
