// Historical location of the JSON writer; the implementation moved to
// obs/json_writer.h when the observability subsystem landed (obs sits below
// runner, and trace/metrics exports share the writer). Kept so existing
// includes and the runner::JsonWriter spelling stay valid.
#pragma once

#include "obs/json_writer.h"

namespace smn::runner {

using obs::JsonWriter;

}  // namespace smn::runner
