#include "maintenance/ticket.h"

#include <algorithm>
#include <stdexcept>
#include <unordered_set>

#include "core/check.h"

namespace smn::maintenance {

const char* to_string(TicketState s) {
  switch (s) {
    case TicketState::kOpen: return "open";
    case TicketState::kDispatched: return "dispatched";
    case TicketState::kInProgress: return "in-progress";
    case TicketState::kResolved: return "resolved";
    case TicketState::kCancelled: return "cancelled";
  }
  return "?";
}

void TicketSystem::set_obs(obs::Obs* o) {
  if (o == nullptr) return;
  if (obs::Registry* reg = o->metrics()) {
    obs_opened_ = reg->counter("tickets_opened_total");
    obs_resolved_ = reg->counter("tickets_resolved_total");
    obs_cancelled_ = reg->counter("tickets_cancelled_total");
    obs_backlog_ = reg->gauge("tickets_open_backlog");
    // Resolve latency buckets in hours: sub-shift through the §3.2 SLA ladder
    // out to a full week.
    obs_resolve_hours_ =
        reg->histogram("ticket_resolve_hours", {1.0, 4.0, 12.0, 24.0, 48.0, 96.0, 168.0});
  }
  obs_trace_ = o->trace();
  obs_recorder_ = o->recorder();
}

std::optional<int> TicketSystem::open(sim::TimePoint now, net::LinkId link,
                                      telemetry::IssueKind issue, bool genuine,
                                      TicketPriority priority, bool proactive) {
  if (open_ticket_for(link).has_value()) return std::nullopt;
  Ticket t;
  t.id = static_cast<int>(tickets_.size());
  t.link = link;
  t.issue = issue;
  t.priority = priority;
  t.genuine = genuine;
  t.proactive = proactive;
  t.opened = now;
  tickets_.push_back(t);
  if (obs_opened_ != nullptr) {
    obs_opened_->inc();
    obs_backlog_->add(1.0);
  }
  SMN_TRACE_STMT(if (obs_trace_ != nullptr) obs_trace_->async_begin(
      "ticket", "ticket", now, static_cast<std::uint64_t>(t.id), "link", link.value()));
  if (obs_recorder_ != nullptr) obs_recorder_->record(now.count_us(), "ticket-open", t.id, link.value());
  return t.id;
}

Ticket& TicketSystem::ticket_mut(int id) { return tickets_.at(static_cast<size_t>(id)); }

const Ticket& TicketSystem::ticket(int id) const {
  return tickets_.at(static_cast<size_t>(id));
}

void TicketSystem::mark_dispatched(int id, sim::TimePoint now) {
  Ticket& t = ticket_mut(id);
  if (t.state != TicketState::kOpen) {
    throw std::logic_error{"ticket: dispatch from non-open state"};
  }
  t.state = TicketState::kDispatched;
  t.dispatched = now;
}

void TicketSystem::mark_started(int id, sim::TimePoint now) {
  Ticket& t = ticket_mut(id);
  if (t.state != TicketState::kDispatched && t.state != TicketState::kInProgress) {
    throw std::logic_error{"ticket: start from non-dispatched state"};
  }
  if (t.state == TicketState::kDispatched) {
    t.state = TicketState::kInProgress;
    t.started = now;
  }
}

void TicketSystem::mark_resolved(int id, sim::TimePoint now, std::string resolved_by) {
  Ticket& t = ticket_mut(id);
  if (t.state == TicketState::kResolved || t.state == TicketState::kCancelled) {
    throw std::logic_error{"ticket: resolve of a closed ticket"};
  }
  t.state = TicketState::kResolved;
  t.resolved = now;
  t.resolved_by = std::move(resolved_by);
  if (obs_resolved_ != nullptr) {
    obs_resolved_->inc();
    obs_backlog_->add(-1.0);
    obs_resolve_hours_->observe((t.resolved - t.opened).to_hours());
  }
  SMN_TRACE_STMT(if (obs_trace_ != nullptr) obs_trace_->async_end(
      "ticket", "ticket", now, static_cast<std::uint64_t>(t.id), "actions", t.actions_taken));
  if (obs_recorder_ != nullptr) obs_recorder_->record(now.count_us(), "ticket-resolve", t.id, t.link.value());
  for (const Listener& l : resolved_listeners_) l(t);
}

void TicketSystem::mark_cancelled(int id, sim::TimePoint now, std::string reason) {
  Ticket& t = ticket_mut(id);
  if (t.state == TicketState::kResolved || t.state == TicketState::kCancelled) return;
  t.state = TicketState::kCancelled;
  t.resolved = now;
  t.resolved_by = "cancelled: " + reason;
  if (obs_cancelled_ != nullptr) {
    obs_cancelled_->inc();
    obs_backlog_->add(-1.0);
  }
  SMN_TRACE_STMT(if (obs_trace_ != nullptr) obs_trace_->async_end(
      "ticket", "ticket", now, static_cast<std::uint64_t>(t.id), "cancelled", 1));
  if (obs_recorder_ != nullptr) obs_recorder_->record(now.count_us(), "ticket-cancel", t.id, t.link.value());
}

std::optional<int> TicketSystem::open_ticket_for(net::LinkId link) const {
  // Newest first: open tickets are usually recent.
  for (auto it = tickets_.rbegin(); it != tickets_.rend(); ++it) {
    if (it->link == link && it->state != TicketState::kResolved &&
        it->state != TicketState::kCancelled) {
      return it->id;
    }
  }
  return std::nullopt;
}

std::vector<const Ticket*> TicketSystem::history_for(net::LinkId link) const {
  std::vector<const Ticket*> out;
  for (auto it = tickets_.rbegin(); it != tickets_.rend(); ++it) {
    if (it->link == link && it->state == TicketState::kResolved) out.push_back(&*it);
  }
  return out;
}

bool TicketSystem::repeat_within(net::LinkId link, sim::TimePoint now,
                                 sim::Duration window) const {
  for (auto it = tickets_.rbegin(); it != tickets_.rend(); ++it) {
    if (it->link == link && it->state == TicketState::kResolved &&
        now - it->resolved <= window) {
      return true;
    }
  }
  return false;
}

std::size_t TicketSystem::count(TicketState s) const {
  return static_cast<size_t>(
      std::count_if(tickets_.begin(), tickets_.end(),
                    [s](const Ticket& t) { return t.state == s; }));
}

void TicketSystem::check_invariants() const {
  std::unordered_set<std::int32_t> links_in_flight;
  for (std::size_t i = 0; i < tickets_.size(); ++i) {
    const Ticket& t = tickets_[i];
    SMN_ASSERT(t.id == static_cast<int>(i), "ticket %zu holds id %d", i, t.id);
    SMN_ASSERT(t.link.valid(), "ticket %d has no link", t.id);
    SMN_ASSERT(t.actions_taken >= 0, "ticket %d negative action count %d", t.id,
               t.actions_taken);
    switch (t.state) {
      case TicketState::kOpen:
        break;
      case TicketState::kInProgress:
        SMN_ASSERT(t.started >= t.dispatched, "ticket %d started before dispatch", t.id);
        [[fallthrough]];
      case TicketState::kDispatched:
        SMN_ASSERT(t.dispatched >= t.opened, "ticket %d dispatched before open", t.id);
        break;
      case TicketState::kResolved:
      case TicketState::kCancelled:
        SMN_ASSERT(t.resolved >= t.opened, "ticket %d closed before open", t.id);
        if (t.started != sim::TimePoint::origin()) {
          SMN_ASSERT(t.resolved >= t.started, "ticket %d closed before work started", t.id);
        }
        SMN_ASSERT(!t.resolved_by.empty(), "ticket %d closed without a resolver", t.id);
        break;
    }
    if (t.state != TicketState::kResolved && t.state != TicketState::kCancelled) {
      SMN_ASSERT(links_in_flight.insert(t.link.value()).second,
                 "two in-flight tickets for link %d (dedup broken)", t.link.value());
    }
  }
}

std::size_t TicketSystem::repeat_ticket_count(sim::Duration window) const {
  std::size_t repeats = 0;
  for (const Ticket& t : tickets_) {
    for (const Ticket& prev : tickets_) {
      if (prev.link == t.link && prev.state == TicketState::kResolved &&
          prev.resolved <= t.opened && t.opened - prev.resolved <= window) {
        ++repeats;
        break;
      }
    }
  }
  return repeats;
}

}  // namespace smn::maintenance
