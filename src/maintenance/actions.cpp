#include "maintenance/actions.h"

#include <algorithm>

namespace smn::maintenance {

const char* to_string(RepairActionKind k) {
  switch (k) {
    case RepairActionKind::kReseat: return "reseat";
    case RepairActionKind::kInspect: return "inspect";
    case RepairActionKind::kClean: return "clean";
    case RepairActionKind::kReplaceTransceiver: return "replace-transceiver";
    case RepairActionKind::kReplaceCable: return "replace-cable";
    case RepairActionKind::kReplaceLineCard: return "replace-linecard";
    case RepairActionKind::kReplaceDevice: return "replace-device";
  }
  return "?";
}

namespace {

net::EndCondition& end_of(net::Link& l, int end) {
  return end == 0 ? l.end_a.condition : l.end_b.condition;
}

/// Reseating reboots the module, which terminates an in-progress gray
/// episode on the link (§3.2 effect (ii): "a full reboot of the transceiver").
void end_gray_episode(net::Link& l, sim::TimePoint now) {
  if (l.gray_until > now) l.gray_until = now;
}

}  // namespace

ActionResult apply_action(net::Network& net, fault::ContaminationProcess* contamination,
                          sim::RngStream& rng, net::LinkId id, int end,
                          RepairActionKind kind, const WorkQuality& quality) {
  ActionResult result;
  net::Link& l = net.link_mut(id);
  const sim::TimePoint now = net.now();

  const bool botched = rng.bernoulli(quality.botch_probability);

  switch (kind) {
    case RepairActionKind::kReseat: {
      net::EndCondition& c = end_of(l, end);
      if (!c.transceiver_present) return result;  // nothing to reseat
      result.performed = true;
      c.reseat_count += 1;
      if (botched) {
        // Left it half-seated; the link stays dark until someone notices.
        c.transceiver_seated = false;
        result.botched = true;
        break;
      }
      c.transceiver_seated = true;
      c.oxidation = 0.0;  // contact scrape (§3.2 effect (i))
      end_gray_episode(l, now);
      // The unplug/replug exposes the end-face to hall air.
      if (contamination != nullptr) contamination->expose(id, end, quality.exposure_risk);
      break;
    }

    case RepairActionKind::kInspect: {
      result.performed = true;
      const double worst =
          std::max(l.end_a.condition.contamination, l.end_b.condition.contamination);
      // Imaging is good but not perfect; small multiplicative sensor noise.
      result.measured_contamination =
          std::clamp(worst * rng.normal_min(1.0, 0.05, 0.0), 0.0, 1.0);
      break;
    }

    case RepairActionKind::kClean: {
      if (!net::is_cleanable(l.medium)) return result;  // integrated cable
      net::EndCondition& c = end_of(l, end);
      result.performed = true;
      c.clean_count += 1;
      if (botched) {
        // Smeared it: contamination slightly worse.
        c.contamination = std::min(1.0, c.contamination + 0.05);
        result.botched = true;
        break;
      }
      // Wet+dry passes until verification passes, diminishing returns per
      // pass; quality.clean_verify_pass gates how often one pass suffices.
      double effectiveness = quality.clean_effectiveness;
      if (!rng.bernoulli(quality.clean_verify_pass)) effectiveness *= 0.7;
      c.contamination *= (1.0 - effectiveness);
      end_gray_episode(l, now);
      break;
    }

    case RepairActionKind::kReplaceTransceiver: {
      net::EndCondition& c = end_of(l, end);
      result.performed = true;
      if (botched) {
        c.transceiver_seated = false;
        result.botched = true;
        break;
      }
      // Fresh module: cleaned and verified at assembly (§3.2).
      c.transceiver_present = true;
      c.transceiver_seated = true;
      c.transceiver_healthy = true;
      c.oxidation = 0.0;
      c.contamination = 0.0;
      c.reseat_count = 0;
      c.clean_count = 0;
      end_gray_episode(l, now);
      if (contamination != nullptr) contamination->expose(id, end, quality.exposure_risk);
      break;
    }

    case RepairActionKind::kReplaceCable: {
      result.performed = true;
      if (botched) {
        result.botched = true;
        break;
      }
      l.cable.intact = true;
      l.cable.wear = 0.0;
      // New cable arrives cleaned; both ends are re-mated.
      l.end_a.condition.contamination = 0.0;
      l.end_b.condition.contamination = 0.0;
      l.end_a.condition.transceiver_seated = true;
      l.end_b.condition.transceiver_seated = true;
      end_gray_episode(l, now);
      break;
    }

    case RepairActionKind::kReplaceLineCard: {
      const net::LinkEnd& link_end = end == 0 ? l.end_a : l.end_b;
      const net::Device& dev = net.device(link_end.device);
      if (!dev.has_linecards()) return result;  // monolithic box: wrong rung
      result.performed = true;
      if (botched) {
        result.botched = true;
        break;
      }
      net.set_linecard_health(link_end.device, dev.card_of(link_end.port), true);
      break;
    }

    case RepairActionKind::kReplaceDevice: {
      result.performed = true;
      if (botched) {
        result.botched = true;
        break;
      }
      // Device-scoped: replace whichever endpoint box is dead; its links
      // re-derive on refresh.
      for (const net::DeviceId d : {l.end_a.device, l.end_b.device}) {
        if (!net.device(d).healthy) net.set_device_health(d, true);
      }
      break;
    }
  }

  net.refresh_link(id);
  return result;
}

}  // namespace smn::maintenance
