// The repair-action catalogue (§3.2 "Repair operations").
//
// Each action has (a) effect semantics on the hardware model, implemented in
// `apply_action`, and (b) per-performer timing/quality, owned by the
// performers (TechnicianPool, robots). The ladder the paper describes —
// reseat, then clean, then replace transceiver, then cable, then device — is
// policy, and lives in smn::core; this module only knows what each rung does.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "fault/contamination.h"
#include "net/network.h"
#include "sim/rng.h"

namespace smn::maintenance {

enum class RepairActionKind : std::uint8_t {
  kReseat,             // remove, wait, re-insert the transceiver (one end)
  kInspect,            // image the end-face cores; no state change
  kClean,              // detach fiber, clean end-face + bore, reassemble
  kReplaceTransceiver, // swap the module for a spare (one end)
  kReplaceCable,       // lay a new cable through the trays (both ends touched)
  kReplaceLineCard,    // swap one chassis card (the port group of this end)
  kReplaceDevice,      // swap the switch/NIC
};
inline constexpr int kRepairActionKinds = 7;
[[nodiscard]] const char* to_string(RepairActionKind k);

/// True for actions that operate on one link end (vs the whole link/device).
[[nodiscard]] constexpr bool is_end_scoped(RepairActionKind k) {
  return k == RepairActionKind::kReseat || k == RepairActionKind::kInspect ||
         k == RepairActionKind::kClean || k == RepairActionKind::kReplaceTransceiver ||
         k == RepairActionKind::kReplaceLineCard;
}

/// Quality of the hands doing the work; sets success probabilities inside
/// apply_action.
struct WorkQuality {
  /// Fraction of contamination removed by a cleaning pass. The robot's
  /// wet+dry process with inspection verification beats a rushed manual job.
  double clean_effectiveness = 0.85;
  /// Probability a cleaning pass passes inspection the first time.
  double clean_verify_pass = 0.8;
  /// Probability the action is botched outright (no effect, extra wear).
  double botch_probability = 0.02;
  /// Multiplier on end-face exposure risk during unplug/replug. Careful
  /// robotic handling (§3.3.2) is well below the human 1.0.
  double exposure_risk = 1.0;
};

struct ActionResult {
  bool performed = false;   // false when preconditions fail (e.g. no spare)
  bool botched = false;
  /// kInspect: measured worst-end contamination (with sensor noise), else 0.
  double measured_contamination = 0.0;
};

/// Applies the hardware effect of `kind` to link `id` (end 0/1 for
/// end-scoped actions). `contamination` is used to model end-face exposure
/// during unplug/replug; pass nullptr to skip exposure effects.
ActionResult apply_action(net::Network& net, fault::ContaminationProcess* contamination,
                          sim::RngStream& rng, net::LinkId id, int end,
                          RepairActionKind kind, const WorkQuality& quality);

/// A unit of repair work handed to a performer (technician pool or robot
/// fleet): one action on one link end.
struct Job {
  int ticket_id = -1;
  net::LinkId link;
  int end = 0;
  RepairActionKind kind = RepairActionKind::kReseat;
  bool high_priority = false;
  /// Invoked by the performer at the moment hands touch hardware (just
  /// before the disturbance), NOT at dispatch: the controller hangs its
  /// contact-list drain here so links are only admin-down while work is
  /// physically in progress.
  std::function<void()> on_work_start;
};

struct JobReport {
  Job job;
  bool performed = false;
  bool botched = false;
  double measured_contamination = 0.0;
  sim::TimePoint enqueued;
  sim::TimePoint started;   // hands on hardware
  sim::TimePoint finished;
  std::string performer;
  std::size_t induced_faults = 0;  // cascade collateral from this job
};

using JobCallback = std::function<void(const JobReport&)>;

}  // namespace smn::maintenance
