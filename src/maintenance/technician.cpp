#include "maintenance/technician.h"

#include <algorithm>
#include <memory>
#include <utility>

namespace smn::maintenance {

TechnicianPool::TechnicianPool(net::Network& net, fault::CascadeModel& cascade,
                               fault::ContaminationProcess* contamination,
                               sim::RngStream rng, Config cfg)
    : net_{net},
      cascade_{cascade},
      contamination_{contamination},
      rng_{std::move(rng)},
      cfg_{cfg},
      idle_{cfg.technicians} {}

void TechnicianPool::set_obs(obs::Obs* o) {
  if (o == nullptr) return;
  if (obs::Registry* reg = o->metrics()) {
    obs_jobs_ = reg->counter("technician_jobs_total");
    obs_botched_ = reg->counter("technician_botched_total");
    // Job wall-time (dispatch + travel + hands-on) in hours; the long tail is
    // the normal-priority lognormal dispatch delay.
    obs_job_hours_ =
        reg->histogram("technician_job_hours", {1.0, 4.0, 12.0, 24.0, 48.0, 96.0});
  }
  obs_trace_ = o->trace();
  obs_recorder_ = o->recorder();
}

void TechnicianPool::submit(const Job& job, JobCallback cb) {
  Pending p{job, std::move(cb), net_.now()};
  if (job.high_priority) {
    // High-priority jobs jump the queue but do not preempt working techs.
    auto it = std::find_if(queue_.begin(), queue_.end(),
                           [](const Pending& q) { return !q.job.high_priority; });
    queue_.insert(it, std::move(p));
  } else {
    queue_.push_back(std::move(p));
  }
  try_dispatch();
}

void TechnicianPool::try_dispatch() {
  while (idle_ > 0 && !queue_.empty()) {
    Pending p = std::move(queue_.front());
    queue_.pop_front();
    --idle_;
    run(std::move(p));
  }
}

double TechnicianPool::hands_on_minutes(RepairActionKind kind) {
  double median = 0;
  switch (kind) {
    case RepairActionKind::kReseat: median = cfg_.reseat_minutes; break;
    case RepairActionKind::kInspect: median = cfg_.inspect_minutes; break;
    case RepairActionKind::kClean: median = cfg_.clean_minutes; break;
    case RepairActionKind::kReplaceTransceiver:
      median = cfg_.replace_transceiver_minutes;
      break;
    case RepairActionKind::kReplaceCable: median = cfg_.replace_cable_minutes; break;
    case RepairActionKind::kReplaceLineCard:
      median = cfg_.replace_linecard_minutes;
      break;
    case RepairActionKind::kReplaceDevice: median = cfg_.replace_device_minutes; break;
  }
  return rng_.lognormal(std::log(median * cfg_.assist_factor), cfg_.duration_log_sigma);
}

net::DeviceId TechnicianPool::work_site(const Job& job) const {
  const net::Link& l = net_.link(job.link);
  return job.end == 0 ? l.end_a.device : l.end_b.device;
}

void TechnicianPool::run(Pending p) {
  const double dispatch_hours =
      p.job.high_priority
          ? rng_.lognormal(cfg_.priority_dispatch_log_mean, cfg_.priority_dispatch_log_sigma)
          : rng_.lognormal(cfg_.dispatch_log_mean, cfg_.dispatch_log_sigma);

  const net::DeviceId site = work_site(p.job);
  // Walk from the hall entrance (row 0, rack 0).
  const topology::RackLocation entrance{net_.device(site).location.hall, 0, 0, 0};
  const double walk_m = net_.blueprint().layout().walking_distance_m(
      entrance, net_.device(site).location);
  const sim::Duration travel = sim::Duration::seconds(walk_m / cfg_.walk_speed_mps);
  const sim::Duration dispatch = sim::Duration::hours(dispatch_hours);
  const sim::Duration hands_on = sim::Duration::minutes(hands_on_minutes(p.job.kind));

  const sim::TimePoint start = net_.now() + dispatch + travel;
  const sim::TimePoint finish = start + hands_on;

  // Physical contact happens at start-of-work: that is when neighbours get
  // disturbed, not when the ticket closes.
  auto induced = std::make_shared<std::size_t>(0);
  net_.simulator().schedule_at(start, [this, job = p.job, site, induced, hands_on] {
    if (presence_) presence_(net_.device(site).location, hands_on);
    if (job.on_work_start) job.on_work_start();
    fault::Disturbance d;
    d.target = job.link;
    d.at_device = site;
    d.magnitude = cfg_.disturbance;
    d.full_route = job.kind == RepairActionKind::kReplaceCable;
    *induced = cascade_.apply(d).size();
  });

  net_.simulator().schedule_at(
      finish, [this, p = std::move(p), start, finish, travel, hands_on, induced] {
        WorkQuality q = cfg_.quality;
        if (cfg_.assist_factor < 1.0) q.botch_probability *= 0.5;  // Level-1 tooling
        const ActionResult r = apply_action(net_, contamination_, rng_, p.job.link,
                                            p.job.end, p.job.kind, q);
        JobReport report;
        report.job = p.job;
        report.performed = r.performed;
        report.botched = r.botched;
        report.measured_contamination = r.measured_contamination;
        report.enqueued = p.enqueued;
        report.started = start;
        report.finished = finish;
        report.performer = "technician";
        report.induced_faults = *induced;
        labor_hours_ += (travel + hands_on).to_hours();
        ++completed_;
        ++by_kind_[static_cast<int>(p.job.kind)];
        ++idle_;
        if (obs_jobs_ != nullptr) {
          obs_jobs_->inc();
          if (r.botched) obs_botched_->inc();
          obs_job_hours_->observe((finish - p.enqueued).to_hours());
        }
        SMN_TRACE_STMT(if (obs_trace_ != nullptr) obs_trace_->complete(
            to_string(p.job.kind), "technician", start, finish, "ticket", p.job.ticket_id,
            "botched", r.botched ? 1 : 0));
        if (obs_recorder_ != nullptr) {
          obs_recorder_->record(finish.count_us(), "technician-job", p.job.ticket_id,
                                static_cast<std::int64_t>(p.job.kind));
        }
        if (p.cb) p.cb(report);
        try_dispatch();
      });
}

}  // namespace smn::maintenance
