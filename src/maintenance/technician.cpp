#include "maintenance/technician.h"

#include <algorithm>
#include <memory>
#include <utility>

namespace smn::maintenance {

TechnicianPool::TechnicianPool(net::Network& net, fault::CascadeModel& cascade,
                               fault::ContaminationProcess* contamination,
                               sim::RngStream rng, Config cfg)
    : net_{net},
      cascade_{cascade},
      contamination_{contamination},
      rng_{std::move(rng)},
      cfg_{cfg},
      fom_engine_{net.simulator()},
      idle_{cfg.technicians} {}

void TechnicianPool::set_obs(obs::Obs* o) {
  if (o == nullptr) return;
  if (obs::Registry* reg = o->metrics()) {
    obs_jobs_ = reg->counter("technician_jobs_total");
    obs_botched_ = reg->counter("technician_botched_total");
    // Job wall-time (dispatch + travel + hands-on) in hours; the long tail is
    // the normal-priority lognormal dispatch delay.
    obs_job_hours_ =
        reg->histogram("technician_job_hours", {1.0, 4.0, 12.0, 24.0, 48.0, 96.0});
    fom_engine_.set_obs(reg->counter("sim_wakeups_technician_total"));
  }
  obs_trace_ = o->trace();
  obs_recorder_ = o->recorder();
}

void TechnicianPool::submit(const Job& job, JobCallback cb) {
  Pending p{job, std::move(cb), net_.now()};
  if (job.high_priority) {
    // High-priority jobs jump the queue but do not preempt working techs.
    auto it = std::find_if(queue_.begin(), queue_.end(),
                           [](const Pending& q) { return !q.job.high_priority; });
    queue_.insert(it, std::move(p));
  } else {
    queue_.push_back(std::move(p));
  }
  try_dispatch();
}

void TechnicianPool::try_dispatch() {
  while (idle_ > 0 && !queue_.empty()) {
    Pending p = std::move(queue_.front());
    queue_.pop_front();
    --idle_;
    run(std::move(p));
  }
}

double TechnicianPool::hands_on_minutes(RepairActionKind kind) {
  double median = 0;
  switch (kind) {
    case RepairActionKind::kReseat: median = cfg_.reseat_minutes; break;
    case RepairActionKind::kInspect: median = cfg_.inspect_minutes; break;
    case RepairActionKind::kClean: median = cfg_.clean_minutes; break;
    case RepairActionKind::kReplaceTransceiver:
      median = cfg_.replace_transceiver_minutes;
      break;
    case RepairActionKind::kReplaceCable: median = cfg_.replace_cable_minutes; break;
    case RepairActionKind::kReplaceLineCard:
      median = cfg_.replace_linecard_minutes;
      break;
    case RepairActionKind::kReplaceDevice: median = cfg_.replace_device_minutes; break;
  }
  return rng_.lognormal(std::log(median * cfg_.assist_factor), cfg_.duration_log_sigma);
}

net::DeviceId TechnicianPool::work_site(const Job& job) const {
  const net::Link& l = net_.link(job.link);
  return job.end == 0 ? l.end_a.device : l.end_b.device;
}

TechnicianPool::JobFom& TechnicianPool::acquire_fom() {
  if (!fom_free_.empty()) {
    JobFom* f = fom_free_.back();
    fom_free_.pop_back();
    return *f;
  }
  foms_.push_back(std::make_unique<JobFom>(*this));
  return *foms_.back();
}

void TechnicianPool::run(Pending p) {
  const double dispatch_hours =
      p.job.high_priority
          ? rng_.lognormal(cfg_.priority_dispatch_log_mean, cfg_.priority_dispatch_log_sigma)
          : rng_.lognormal(cfg_.dispatch_log_mean, cfg_.dispatch_log_sigma);

  const net::DeviceId site = work_site(p.job);
  // Walk from the hall entrance (row 0, rack 0).
  const topology::RackLocation entrance{net_.device(site).location.hall, 0, 0, 0};
  const double walk_m = net_.blueprint().layout().walking_distance_m(
      entrance, net_.device(site).location);
  const sim::Duration travel = sim::Duration::seconds(walk_m / cfg_.walk_speed_mps);
  const sim::Duration dispatch = sim::Duration::hours(dispatch_hours);
  const sim::Duration hands_on = sim::Duration::minutes(hands_on_minutes(p.job.kind));

  const sim::TimePoint start = net_.now() + dispatch + travel;
  const sim::TimePoint finish = start + hands_on;

  if (!cfg_.use_fom) {
    run_legacy(std::move(p), site, start, finish, travel, hands_on);
    return;
  }
  JobFom& f = acquire_fom();
  f.begin(std::move(p), site, start, finish, travel, hands_on);
}

void TechnicianPool::JobFom::begin(Pending p, net::DeviceId site, sim::TimePoint start,
                                   sim::TimePoint finish, sim::Duration travel,
                                   sim::Duration hands_on) {
  p_ = std::move(p);
  site_ = site;
  start_ = start;
  finish_ = finish;
  travel_ = travel;
  hands_on_ = hands_on;
  induced_ = 0;
  set_phase(kStart);
  engine().wake_at(*this, start_);
}

sim::Fom::Tick TechnicianPool::JobFom::tick() {
  switch (phase()) {
    case kStart: {
      // Arm the finish wakeup before any side effect: the presence lock
      // schedules the fleet's row-unlock recheck, and when the lock expiry
      // coincides exactly with the finish time the finish must keep its
      // earlier insertion order (as it did when both were scheduled at
      // dispatch time).
      set_phase(kFinish);
      engine().wake_at(*this, finish_);
      // Physical contact happens at start-of-work: that is when neighbours
      // get disturbed, not when the ticket closes.
      if (pool_.presence_) {
        pool_.presence_(pool_.net_.device(site_).location, hands_on_);
      }
      if (p_.job.on_work_start) p_.job.on_work_start();
      fault::Disturbance d;
      d.target = p_.job.link;
      d.at_device = site_;
      d.magnitude = pool_.cfg_.disturbance;
      d.full_route = p_.job.kind == RepairActionKind::kReplaceCable;
      induced_ = pool_.cascade_.apply(d).size();
      return Tick::kWait;
    }
    case kFinish:
      pool_.finish_job(*this);
      return Tick::kDone;
    default: break;
  }
  return Tick::kDone;
}

void TechnicianPool::JobFom::on_done() {
  p_ = Pending{};  // release the captured callback/job state eagerly
  pool_.fom_free_.push_back(this);
}

void TechnicianPool::finish_job(JobFom& f) {
  WorkQuality q = cfg_.quality;
  if (cfg_.assist_factor < 1.0) q.botch_probability *= 0.5;  // Level-1 tooling
  const ActionResult r =
      apply_action(net_, contamination_, rng_, f.p_.job.link, f.p_.job.end, f.p_.job.kind, q);
  JobReport report;
  report.job = f.p_.job;
  report.performed = r.performed;
  report.botched = r.botched;
  report.measured_contamination = r.measured_contamination;
  report.enqueued = f.p_.enqueued;
  report.started = f.start_;
  report.finished = f.finish_;
  report.performer = "technician";
  report.induced_faults = f.induced_;
  labor_hours_ += (f.travel_ + f.hands_on_).to_hours();
  ++completed_;
  ++by_kind_[static_cast<int>(f.p_.job.kind)];
  ++idle_;
  if (obs_jobs_ != nullptr) {
    obs_jobs_->inc();
    if (r.botched) obs_botched_->inc();
    obs_job_hours_->observe((f.finish_ - f.p_.enqueued).to_hours());
  }
  SMN_TRACE_STMT(if (obs_trace_ != nullptr) obs_trace_->complete(
      to_string(f.p_.job.kind), "technician", f.start_, f.finish_, "ticket", f.p_.job.ticket_id,
      "botched", r.botched ? 1 : 0));
  if (obs_recorder_ != nullptr) {
    obs_recorder_->record(f.finish_.count_us(), "technician-job", f.p_.job.ticket_id,
                          static_cast<std::int64_t>(f.p_.job.kind));
  }
  if (f.p_.cb) f.p_.cb(report);
  try_dispatch();
}

void TechnicianPool::run_legacy(Pending p, net::DeviceId site, sim::TimePoint start,
                                sim::TimePoint finish, sim::Duration travel,
                                sim::Duration hands_on) {
  // Reference semantics for the differential oracle: both job events are
  // scheduled at dispatch time, capturing the whole job state by value.
  auto induced = std::make_shared<std::size_t>(0);
  net_.simulator().schedule_at(start, [this, job = p.job, site, induced, hands_on] {
    if (presence_) presence_(net_.device(site).location, hands_on);
    if (job.on_work_start) job.on_work_start();
    fault::Disturbance d;
    d.target = job.link;
    d.at_device = site;
    d.magnitude = cfg_.disturbance;
    d.full_route = job.kind == RepairActionKind::kReplaceCable;
    *induced = cascade_.apply(d).size();
  });

  net_.simulator().schedule_at(
      finish, [this, p = std::move(p), start, finish, travel, hands_on, induced] {
        WorkQuality q = cfg_.quality;
        if (cfg_.assist_factor < 1.0) q.botch_probability *= 0.5;  // Level-1 tooling
        const ActionResult r = apply_action(net_, contamination_, rng_, p.job.link,
                                            p.job.end, p.job.kind, q);
        JobReport report;
        report.job = p.job;
        report.performed = r.performed;
        report.botched = r.botched;
        report.measured_contamination = r.measured_contamination;
        report.enqueued = p.enqueued;
        report.started = start;
        report.finished = finish;
        report.performer = "technician";
        report.induced_faults = *induced;
        labor_hours_ += (travel + hands_on).to_hours();
        ++completed_;
        ++by_kind_[static_cast<int>(p.job.kind)];
        ++idle_;
        if (obs_jobs_ != nullptr) {
          obs_jobs_->inc();
          if (r.botched) obs_botched_->inc();
          obs_job_hours_->observe((finish - p.enqueued).to_hours());
        }
        SMN_TRACE_STMT(if (obs_trace_ != nullptr) obs_trace_->complete(
            to_string(p.job.kind), "technician", start, finish, "ticket", p.job.ticket_id,
            "botched", r.botched ? 1 : 0));
        if (obs_recorder_ != nullptr) {
          obs_recorder_->record(finish.count_us(), "technician-job", p.job.ticket_id,
                                static_cast<std::int64_t>(p.job.kind));
        }
        if (p.cb) p.cb(report);
        try_dispatch();
      });
}

}  // namespace smn::maintenance
