// The ticketing system (§1: "The services produce service tickets that
// describe what needs to be repaired or replaced and its location").
//
// Tickets are the interface between detection and repair at every automation
// level; what changes with automation is who consumes them and how fast.
// TicketSystem also tracks per-link repair history, because the escalation
// ladder (§3.2) is defined over it: "If the transceiver has been reseated in
// the past, and another ticket is generated for the same link within a time
// window ... the next stage is to perform this cleaning process."
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "net/types.h"
#include "obs/obs.h"
#include "sim/time.h"
#include "telemetry/monitor.h"

namespace smn::maintenance {

enum class TicketState : std::uint8_t {
  kOpen,        // raised, not yet assigned
  kDispatched,  // assigned to a performer, work not started
  kInProgress,  // performer on site / robot acting
  kResolved,
  kCancelled,   // e.g. false positive recognized, or superseded
};
[[nodiscard]] const char* to_string(TicketState s);

enum class TicketPriority : std::uint8_t { kNormal, kHigh };

struct Ticket {
  int id = -1;
  net::LinkId link;
  telemetry::IssueKind issue = telemetry::IssueKind::kDown;
  TicketPriority priority = TicketPriority::kNormal;
  bool genuine = true;     // whether the detection was a true positive
  bool proactive = false;  // opened by a proactive policy, not a detection
  TicketState state = TicketState::kOpen;
  sim::TimePoint opened;
  sim::TimePoint dispatched;
  sim::TimePoint started;
  sim::TimePoint resolved;
  std::string resolved_by;  // "technician" / "robot" / "self-cleared" / ...
  int actions_taken = 0;    // repair attempts consumed by this ticket
};

class TicketSystem {
 public:
  using Listener = std::function<void(const Ticket&)>;

  /// Opens a ticket unless one is already open/in-flight for the link
  /// (dedup, as production ticketing does). Returns the ticket id, or
  /// nullopt if deduplicated.
  std::optional<int> open(sim::TimePoint now, net::LinkId link, telemetry::IssueKind issue,
                          bool genuine, TicketPriority priority = TicketPriority::kNormal,
                          bool proactive = false);

  void mark_dispatched(int id, sim::TimePoint now);
  void mark_started(int id, sim::TimePoint now);
  void mark_resolved(int id, sim::TimePoint now, std::string resolved_by);
  void mark_cancelled(int id, sim::TimePoint now, std::string reason);
  void count_action(int id) { ticket_mut(id).actions_taken++; }

  [[nodiscard]] const Ticket& ticket(int id) const;
  [[nodiscard]] const std::vector<Ticket>& all() const { return tickets_; }
  [[nodiscard]] std::optional<int> open_ticket_for(net::LinkId link) const;

  /// Resolved tickets for this link, newest first.
  [[nodiscard]] std::vector<const Ticket*> history_for(net::LinkId link) const;

  /// True if a ticket on this link was resolved within `window` before `now`
  /// — the repeat-ticket test driving escalation (§3.2).
  [[nodiscard]] bool repeat_within(net::LinkId link, sim::TimePoint now,
                                   sim::Duration window) const;

  /// Notifies on every resolve (experiment bookkeeping).
  void subscribe_resolved(Listener l) { resolved_listeners_.push_back(std::move(l)); }

  /// Wires observability: tickets_* counters, the open-backlog gauge, the
  /// resolve-latency histogram, and async trace spans keyed by ticket id.
  void set_obs(obs::Obs* o);

  [[nodiscard]] std::size_t count(TicketState s) const;
  [[nodiscard]] std::size_t total() const { return tickets_.size(); }
  /// Tickets opened on a link within `window` after a resolve on the same
  /// link — the repeat-ticket statistic for E6.
  [[nodiscard]] std::size_t repeat_ticket_count(sim::Duration window) const;

  /// Aborts (via SMN_ASSERT) on state-machine violations: ids must equal
  /// indices, per-state timestamps must be monotone (opened ≤ dispatched ≤
  /// started ≤ resolved where set), closed tickets must name a resolver, and
  /// at most one non-closed ticket may exist per link (the dedup invariant
  /// `open` relies on).
  void check_invariants() const;

 private:
  Ticket& ticket_mut(int id);

  std::vector<Ticket> tickets_;
  std::vector<Listener> resolved_listeners_;

  // Observability handles (all null until set_obs). The backlog gauge tracks
  // tickets that are neither resolved nor cancelled.
  obs::Counter* obs_opened_ = nullptr;
  obs::Counter* obs_resolved_ = nullptr;
  obs::Counter* obs_cancelled_ = nullptr;
  obs::Gauge* obs_backlog_ = nullptr;
  obs::Histogram* obs_resolve_hours_ = nullptr;
  obs::TraceBuffer* obs_trace_ = nullptr;
  obs::FlightRecorder* obs_recorder_ = nullptr;
};

}  // namespace smn::maintenance
