// The human-technician baseline (automation Level 0/1).
//
// §1: "a physical repair is on a timescale of days, with a fraction of
// repairs being high priority and done in hours." The pool models triage +
// scheduling delay (the dominant term), walking travel, hands-on action
// time, human error, and the full-magnitude physical disturbance that makes
// technician activity the classic cascade trigger (§1).
//
// Job lifecycles run as pooled `JobFom` state machines (sim/fom.h): one
// wakeup at work-start (presence lock + disturbance), one at finish — the
// job state lives in the recycled fom object, so each wakeup is a 16-byte
// inline-capture queue entry instead of a heap-allocated closure. The
// pre-fom implementation is kept behind `Config::use_fom = false` as the
// reference semantics for the differential oracle test.
#pragma once

#include <deque>
#include <memory>
#include <vector>

#include "fault/cascade.h"
#include "fault/contamination.h"
#include "maintenance/actions.h"
#include "net/network.h"
#include "obs/obs.h"
#include "sim/fom.h"
#include "sim/rng.h"

namespace smn::maintenance {

class TechnicianPool {
 public:
  struct Config {
    int technicians = 4;
    /// Lognormal ticket->boots-on-ground delay, hours. Median ~18 h for
    /// normal priority (days-scale including queueing), ~2 h for high.
    double dispatch_log_mean = std::log(18.0);
    double dispatch_log_sigma = 0.8;
    double priority_dispatch_log_mean = std::log(2.0);
    double priority_dispatch_log_sigma = 0.5;
    double walk_speed_mps = 1.2;
    /// Hands-on duration medians, minutes (lognormal, sigma 0.35). Manual
    /// MPO cleaning is the complex multi-core procedure of §3.2.
    double reseat_minutes = 5.0;
    double inspect_minutes = 8.0;
    double clean_minutes = 25.0;
    double replace_transceiver_minutes = 15.0;
    double replace_cable_minutes = 240.0;
    double replace_linecard_minutes = 90.0;
    double replace_device_minutes = 180.0;
    double duration_log_sigma = 0.35;
    WorkQuality quality{
        .clean_effectiveness = 0.80, .clean_verify_pass = 0.70, .botch_probability = 0.03};
    /// Physical disturbance magnitude of human hands in dense cabling.
    double disturbance = 1.0;
    /// Tool-assist factor (automation Level 1): scales hands-on durations
    /// and halves botch probability when < 1.
    double assist_factor = 1.0;
    /// Run jobs as pooled state machines (allocation-free wakeups). The
    /// legacy callback scheduling is retained as the oracle reference.
    bool use_fom = true;
  };

  TechnicianPool(net::Network& net, fault::CascadeModel& cascade,
                 fault::ContaminationProcess* contamination, sim::RngStream rng)
      : TechnicianPool(net, cascade, contamination, std::move(rng), Config{}) {}
  TechnicianPool(net::Network& net, fault::CascadeModel& cascade,
                 fault::ContaminationProcess* contamination, sim::RngStream rng,
                 Config cfg);

  /// Queues a job; `cb` fires when it completes.
  void submit(const Job& job, JobCallback cb);

  /// Presence announcements: invoked when a technician starts hands-on work
  /// at a location, with the expected dwell. The robot fleet subscribes to
  /// this to enforce the §3.4 human-robot safety interlock.
  using PresenceListener =
      std::function<void(const topology::RackLocation&, sim::Duration)>;
  void set_presence_listener(PresenceListener l) { presence_ = std::move(l); }

  [[nodiscard]] int idle() const { return idle_; }
  [[nodiscard]] std::size_t queued() const { return queue_.size(); }
  [[nodiscard]] std::size_t completed() const { return completed_; }
  [[nodiscard]] double labor_hours() const { return labor_hours_; }
  [[nodiscard]] std::size_t completed_of(RepairActionKind kind) const {
    return by_kind_[static_cast<int>(kind)];
  }
  [[nodiscard]] const Config& config() const { return cfg_; }

  /// Wires observability: technician job counters/hours, per-job trace
  /// spans, and the fom wakeup counter. RNG draws are untouched, so
  /// schedules are identical with obs off.
  void set_obs(obs::Obs* o);

 private:
  struct Pending {
    Job job;
    JobCallback cb;
    sim::TimePoint enqueued;
  };

  /// One in-flight technician job: dispatched -> working (wakeup at start,
  /// disturbance + presence lock) -> finished (wakeup at finish, apply the
  /// action and report). Recycled through `fom_free_` between jobs.
  class JobFom final : public sim::Fom {
   public:
    enum Phase : int { kStart = 0, kFinish = 1 };
    explicit JobFom(TechnicianPool& pool) : sim::Fom(pool.fom_engine_), pool_(pool) {}
    void begin(Pending p, net::DeviceId site, sim::TimePoint start, sim::TimePoint finish,
               sim::Duration travel, sim::Duration hands_on);

   private:
    Tick tick() override;
    void on_done() override;

    TechnicianPool& pool_;
    Pending p_;
    net::DeviceId site_{};
    sim::TimePoint start_;
    sim::TimePoint finish_;
    sim::Duration travel_{};
    sim::Duration hands_on_{};
    std::size_t induced_ = 0;
    friend class TechnicianPool;
  };

  void try_dispatch();
  void run(Pending p);
  void run_legacy(Pending p, net::DeviceId site, sim::TimePoint start, sim::TimePoint finish,
                  sim::Duration travel, sim::Duration hands_on);
  void finish_job(JobFom& f);
  [[nodiscard]] JobFom& acquire_fom();
  [[nodiscard]] double hands_on_minutes(RepairActionKind kind);
  [[nodiscard]] net::DeviceId work_site(const Job& job) const;

  net::Network& net_;
  fault::CascadeModel& cascade_;
  fault::ContaminationProcess* contamination_;
  sim::RngStream rng_;
  Config cfg_;
  sim::FomEngine fom_engine_;
  std::vector<std::unique_ptr<JobFom>> foms_;    // all job foms ever created
  std::vector<JobFom*> fom_free_;                // recycled, ready for reuse
  std::deque<Pending> queue_;
  int idle_;
  std::size_t completed_ = 0;
  std::size_t by_kind_[kRepairActionKinds] = {};
  double labor_hours_ = 0.0;
  PresenceListener presence_;

  // Observability handles (null until set_obs).
  obs::Counter* obs_jobs_ = nullptr;
  obs::Counter* obs_botched_ = nullptr;
  obs::Histogram* obs_job_hours_ = nullptr;
  obs::TraceBuffer* obs_trace_ = nullptr;
  obs::FlightRecorder* obs_recorder_ = nullptr;
};

}  // namespace smn::maintenance
