#include "sim/time.h"

#include <cstdio>

namespace smn::sim {

std::string format_duration(Duration d) {
  std::int64_t us = d.count_us();
  const bool negative = us < 0;
  if (negative) us = -us;

  char buf[64];
  if (us < 1000) {
    std::snprintf(buf, sizeof buf, "%s%ldus", negative ? "-" : "", static_cast<long>(us));
  } else if (us < 1'000'000) {
    std::snprintf(buf, sizeof buf, "%s%.1fms", negative ? "-" : "",
                  static_cast<double>(us) / 1e3);
  } else if (us < 60LL * 1'000'000) {
    std::snprintf(buf, sizeof buf, "%s%.1fs", negative ? "-" : "",
                  static_cast<double>(us) / 1e6);
  } else {
    const std::int64_t total_s = us / 1'000'000;
    const std::int64_t days = total_s / 86400;
    const std::int64_t h = (total_s % 86400) / 3600;
    const std::int64_t m = (total_s % 3600) / 60;
    const std::int64_t s = total_s % 60;
    if (days > 0) {
      std::snprintf(buf, sizeof buf, "%s%ldd %02ld:%02ld:%02ld", negative ? "-" : "",
                    static_cast<long>(days), static_cast<long>(h), static_cast<long>(m),
                    static_cast<long>(s));
    } else {
      std::snprintf(buf, sizeof buf, "%s%02ld:%02ld:%02ld", negative ? "-" : "",
                    static_cast<long>(h), static_cast<long>(m), static_cast<long>(s));
    }
  }
  return buf;
}

std::string format_time(TimePoint t) {
  return format_duration(t - TimePoint::origin());
}

}  // namespace smn::sim
