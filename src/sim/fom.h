// Run-to-completion state machines for workflow subsystems — the FOM
// ("fop state machine") pattern from the cortx-motr HLDs, reduced to what a
// deterministic single-threaded simulation needs.
//
// A `Fom` is a long-lived unit of work (a technician job, a robot job, a
// ticket hop) that advances through non-blocking phases. Each call to
// `tick()` executes the current phase and returns:
//   kAgain — run the next phase immediately, on the same queue entry,
//   kWait  — park; the fom runs again at its next wakeup (timer or external),
//   kDone  — terminal; the engine calls `on_done()` and forgets the fom.
//
// The `FomEngine` turns wakeups into simulator events: one 16-byte-capture
// queue entry per wakeup (always inside the SmallFn inline budget — nothing
// on the heap), with coalescing so re-arming an already-armed fom at the
// same-or-later time costs nothing. Per-engine wakeup counters feed the
// `sim_wakeups_*_total` obs metrics, which is how the "fewer events per
// sim-day" claim is machine-checked.
#pragma once

#include <cstdint>

#include "obs/metrics.h"
#include "sim/event_queue.h"

namespace smn::sim {

class FomEngine;

class Fom {
 public:
  enum class Tick : std::uint8_t { kAgain, kWait, kDone };

  explicit Fom(FomEngine& engine) : engine_(engine) {}
  virtual ~Fom();
  Fom(const Fom&) = delete;
  Fom& operator=(const Fom&) = delete;

  [[nodiscard]] int phase() const { return phase_; }
  [[nodiscard]] bool armed() const { return wakeup_ != kInvalidEvent; }
  [[nodiscard]] TimePoint armed_at() const { return wakeup_time_; }

 protected:
  /// Executes the current phase. Must not block; long waits are expressed by
  /// arming a wakeup (engine().wake_at) and returning kWait.
  virtual Tick tick() = 0;

  /// Runs once after tick() returns kDone; the owner typically recycles the
  /// fom here. The engine never touches the fom afterwards.
  virtual void on_done() {}

  void set_phase(int p) { phase_ = p; }
  [[nodiscard]] FomEngine& engine() { return engine_; }

 private:
  friend class FomEngine;
  FomEngine& engine_;
  int phase_ = 0;
  EventId wakeup_ = kInvalidEvent;
  TimePoint wakeup_time_{};
  bool in_tick_ = false;
};

class FomEngine {
 public:
  explicit FomEngine(Simulator& sim) : sim_(sim) {}

  /// Wires the per-component wakeup counter (may be null).
  void set_obs(obs::Counter* wakeups) { obs_wakeups_ = wakeups; }

  /// Runs `f` to completion synchronously (no queue entry, not counted as a
  /// wakeup) — the entry point for work dispatched from inside another event.
  void run(Fom& f);

  /// Ensures `f` runs at time `t` (earliest armed wakeup wins). Arming an
  /// already-armed fom at the same or a later time is a no-op — wakeup
  /// coalescing — so callers may re-arm freely; the earlier tick re-arms if
  /// it fired before the work was actually due.
  void wake_at(Fom& f, TimePoint t);
  void wake_after(Fom& f, Duration d) { wake_at(f, sim_.now() + d); }

  /// Immediate wakeup through the queue: runs at the current time, after all
  /// already-queued same-time events.
  void wake(Fom& f) { wake_at(f, sim_.now()); }

  /// Disarms a pending wakeup (no-op when not armed). The captured state of
  /// the queue entry is reclaimed eagerly.
  void cancel_wakeup(Fom& f);

  [[nodiscard]] Simulator& simulator() { return sim_; }
  [[nodiscard]] std::uint64_t wakeups_delivered() const { return delivered_; }

  /// Aborts (via SMN_ASSERT) if a fom's wakeup bookkeeping is inconsistent.
  void check_invariants(const Fom& f) const;

 private:
  void fire(Fom* f);
  void advance(Fom& f);

  Simulator& sim_;
  obs::Counter* obs_wakeups_ = nullptr;
  std::uint64_t delivered_ = 0;
};

}  // namespace smn::sim
