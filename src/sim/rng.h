// Deterministic random-number streams.
//
// Every stochastic process in the simulator draws from its own named stream
// derived from a single master seed, so adding a new consumer never perturbs
// the draws seen by existing ones and a (seed, stream-name) pair fully
// determines a sequence. This is what makes differential experiments (e.g.
// L0 vs L3 automation on the *same* fault trace) meaningful.
#pragma once

#include <cstdint>
#include <random>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace smn::sim {

/// A single deterministic random stream with distribution helpers.
class RngStream {
 public:
  explicit RngStream(std::uint64_t seed) : engine_{seed} {}

  /// Uniform double in [lo, hi).
  [[nodiscard]] double uniform(double lo = 0.0, double hi = 1.0) {
    return std::uniform_real_distribution<double>{lo, hi}(engine_);
  }
  /// Uniform integer in [lo, hi] inclusive.
  [[nodiscard]] std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    return std::uniform_int_distribution<std::int64_t>{lo, hi}(engine_);
  }
  [[nodiscard]] bool bernoulli(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return std::bernoulli_distribution{p}(engine_);
  }
  /// Exponential variate with the given mean (not rate).
  [[nodiscard]] double exponential(double mean) {
    return std::exponential_distribution<double>{1.0 / mean}(engine_);
  }
  [[nodiscard]] double normal(double mean, double stddev) {
    return std::normal_distribution<double>{mean, stddev}(engine_);
  }
  /// Normal truncated below at `lo` (re-draws; suitable for lo well below mean).
  [[nodiscard]] double normal_min(double mean, double stddev, double lo) {
    for (int i = 0; i < 64; ++i) {
      const double v = normal(mean, stddev);
      if (v >= lo) return v;
    }
    return lo;
  }
  [[nodiscard]] double lognormal(double log_mean, double log_sigma) {
    return std::lognormal_distribution<double>{log_mean, log_sigma}(engine_);
  }
  /// Weibull variate; shape < 1 gives infant mortality, > 1 wear-out.
  [[nodiscard]] double weibull(double shape, double scale) {
    return std::weibull_distribution<double>{shape, scale}(engine_);
  }
  /// Poisson count with the given mean (0 for non-positive means).
  [[nodiscard]] int poisson(double mean) {
    if (mean <= 0.0) return 0;
    return std::poisson_distribution<int>{mean}(engine_);
  }
  /// Picks an index in [0, weights.size()) proportionally to weights.
  [[nodiscard]] std::size_t weighted_index(std::span<const double> weights);

  /// Picks a uniformly random element index of a non-empty container size.
  [[nodiscard]] std::size_t index(std::size_t size) {
    if (size == 0) throw std::invalid_argument{"RngStream::index on empty range"};
    return static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(size) - 1));
  }

  /// In-place Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      using std::swap;
      swap(v[i - 1], v[index(i)]);
    }
  }

  [[nodiscard]] std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

/// Factory for named sub-streams, all derived from one master seed.
class RngFactory {
 public:
  explicit RngFactory(std::uint64_t master_seed) : master_seed_{master_seed} {}

  /// Derives a stream whose sequence depends only on (master seed, name).
  [[nodiscard]] RngStream stream(std::string_view name) const;

  [[nodiscard]] std::uint64_t master_seed() const { return master_seed_; }

 private:
  std::uint64_t master_seed_;
};

}  // namespace smn::sim
