#include "sim/rng.h"

#include <numeric>

namespace smn::sim {
namespace {

// FNV-1a, then a splitmix64 finalizer for avalanche. Stable across platforms,
// unlike std::hash, so a (seed, name) pair reproduces everywhere.
std::uint64_t hash_name(std::string_view name) {
  std::uint64_t h = 1469598103934665603ULL;
  for (const char c : name) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 1099511628211ULL;
  }
  h += 0x9E3779B97F4A7C15ULL;
  h = (h ^ (h >> 30)) * 0xBF58476D1CE4E5B9ULL;
  h = (h ^ (h >> 27)) * 0x94D049BB133111EBULL;
  return h ^ (h >> 31);
}

}  // namespace

std::size_t RngStream::weighted_index(std::span<const double> weights) {
  if (weights.empty()) throw std::invalid_argument{"weighted_index on empty weights"};
  const double total = std::accumulate(weights.begin(), weights.end(), 0.0);
  if (total <= 0.0) throw std::invalid_argument{"weighted_index needs positive total weight"};
  double x = uniform(0.0, total);
  for (std::size_t i = 0; i < weights.size(); ++i) {
    x -= weights[i];
    if (x <= 0.0) return i;
  }
  return weights.size() - 1;
}

RngStream RngFactory::stream(std::string_view name) const {
  return RngStream{master_seed_ ^ hash_name(name)};
}

}  // namespace smn::sim
