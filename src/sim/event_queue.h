// The discrete-event simulation engine.
//
// A single-threaded event loop: callbacks are scheduled at TimePoints and run
// in (time, insertion-order) order, so simultaneous events execute in the
// order they were scheduled — deterministic by construction.
//
// The hot path is allocation-free in steady state:
//  - callbacks are `SmallFn` (captures <= kSmallFnInlineBytes live inline),
//  - events live in a flat slot arena recycled through a free list; ids are
//    (generation << 32 | slot), so a stale cancel is a generation mismatch
//    and costs one array lookup instead of two unordered_set touches,
//  - the ready queue is a 4-ary heap of 24-byte {time, seq, slot} entries.
// Cancellation eagerly destroys the captured callback state; only the inert
// heap entry is reclaimed lazily when it surfaces (a tombstone pop).
#pragma once

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "sim/callback.h"
#include "sim/time.h"

namespace smn::sim {

using EventId = std::uint64_t;
inline constexpr EventId kInvalidEvent = 0;

class Simulator {
 public:
  using Callback = SmallFn;

  /// Schedules `fn` at absolute time `t`; `t` must not be in the past.
  EventId schedule_at(TimePoint t, Callback fn);

  /// Schedules `fn` after a non-negative delay from now.
  EventId schedule_after(Duration d, Callback fn) { return schedule_at(now_ + d, std::move(fn)); }

  /// Cancels a pending event, destroying its captured state immediately.
  /// Cancelling an already-run, stale, or unknown id is a true no-op: the
  /// slot generation no longer matches, so nothing is touched.
  void cancel(EventId id);

  /// Schedules `fn` to run every `period`, starting one period from now.
  /// Returns a handle cancellable with `cancel_periodic`.
  EventId schedule_every(Duration period, Callback fn);
  void cancel_periodic(EventId handle);

  [[nodiscard]] TimePoint now() const { return now_; }

  /// Runs a single pending event; returns false if the queue is empty.
  bool step();

  /// Runs events with time <= deadline; the clock ends at the deadline even
  /// if the queue drains early.
  void run_until(TimePoint deadline);

  /// Runs until the queue drains.
  void run();

  /// Exact count of live pending events (cancelled tombstones excluded).
  [[nodiscard]] std::size_t pending() const { return live_; }
  [[nodiscard]] std::uint64_t events_processed() const { return processed_; }

  /// FNV-1a hash over (time, seq, id) of every event executed so far — the
  /// determinism audit signal. Two runs with identical seeds and configs must
  /// produce identical hashes; divergence means a nondeterminism bug
  /// (hash-order iteration, uninitialized read, wall-clock leak).
  [[nodiscard]] std::uint64_t trace_hash() const { return trace_hash_; }

  /// Wires observability into the event loop: `events` counts executed
  /// events, `recorder` logs (time, seq, id) of each into the crash ring.
  /// Either may be null. Both effects are observers of the execution order,
  /// never inputs to it, so the trace hash is identical with obs on or off —
  /// the property --audit-determinism enforces.
  void set_obs(obs::Counter* events, obs::FlightRecorder* recorder) {
    obs_events_ = events;
    obs_recorder_ = recorder;
  }

  /// Aborts (via SMN_ASSERT) if internal bookkeeping is inconsistent: the
  /// heap must satisfy the 4-ary heap property, reference each occupied slot
  /// exactly once, and agree with the live/free-list accounting; cancelled
  /// slots must hold no callback (eager reclaim); the clock must not have
  /// moved backwards.
  void check_invariants() const;

 private:
  static constexpr std::uint32_t kNoFree = 0xffffffffu;

  struct Slot {
    Callback fn;
    std::uint32_t gen = 0;  // bumped on allocation; id validity check
    enum class State : std::uint8_t { kFree, kLive, kCancelled } state = State::kFree;
    std::uint32_t next_free = kNoFree;
  };

  struct HeapEntry {
    TimePoint time;
    std::uint64_t seq;  // tie-break: earlier scheduling runs first
    std::uint32_t slot;
  };

  struct PeriodicTask {
    Callback fn;
    Duration period{};
    EventId tick_event = kInvalidEvent;  // the pending tick, for eager cancel
    std::uint32_t gen = 0;
    bool live = false;
    bool in_tick = false;  // cancel during the tick defers reclamation
    std::uint32_t next_free = kNoFree;
  };

  // Periodic handles carry a tag bit so an event id can never be mistaken
  // for a periodic handle (and vice versa) by cancel / cancel_periodic.
  static constexpr EventId kPeriodicTag = 1ull << 63;

  [[nodiscard]] static EventId make_id(std::uint32_t gen, std::uint32_t slot) {
    return (static_cast<EventId>(gen) << 32) | slot;
  }

  [[nodiscard]] std::uint32_t acquire_slot();
  void release_slot(std::uint32_t s);
  void heap_push(HeapEntry e);
  HeapEntry heap_pop();
  [[nodiscard]] static bool heap_before(const HeapEntry& a, const HeapEntry& b) {
    if (a.time != b.time) return a.time < b.time;
    return a.seq < b.seq;
  }

  void run_periodic(std::uint32_t idx, std::uint32_t gen);
  void execute(const HeapEntry& top);

  // Folds one executed event into the running trace hash.
  void fold_trace(TimePoint t, std::uint64_t seq, EventId id);

  // Hot-path instrumentation for one executed event; both sinks are inline
  // and null-checked, so the disabled cost is two predicted branches.
  void observe_event(TimePoint t, std::uint64_t seq, EventId id) {
    if (obs_events_ != nullptr) obs_events_->inc();
    if (obs_recorder_ != nullptr) {
      obs_recorder_->record(t.count_us(), "sim-event", static_cast<std::int64_t>(id),
                            static_cast<std::int64_t>(seq));
    }
  }

  std::vector<HeapEntry> heap_;  // 4-ary min-heap over (time, seq)
  std::vector<Slot> slots_;
  std::uint32_t free_head_ = kNoFree;
  std::size_t live_ = 0;  // scheduled and not cancelled

  std::vector<PeriodicTask> periodics_;
  std::uint32_t periodic_free_head_ = kNoFree;

  TimePoint now_;
  std::uint64_t next_seq_ = 1;
  std::uint64_t processed_ = 0;
  std::uint64_t trace_hash_ = 0xcbf29ce484222325ull;  // FNV-1a offset basis
  obs::Counter* obs_events_ = nullptr;
  obs::FlightRecorder* obs_recorder_ = nullptr;
};

}  // namespace smn::sim
