// The discrete-event simulation engine.
//
// A single-threaded event loop: callbacks are scheduled at TimePoints and run
// in (time, insertion-order) order, so simultaneous events execute in the
// order they were scheduled — deterministic by construction. Cancellation is
// lazy: cancelled ids are skipped when popped.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <stdexcept>
#include <unordered_set>
#include <vector>

#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "sim/time.h"

namespace smn::sim {

using EventId = std::uint64_t;
inline constexpr EventId kInvalidEvent = 0;

class Simulator {
 public:
  using Callback = std::function<void()>;

  /// Schedules `fn` at absolute time `t`; `t` must not be in the past.
  EventId schedule_at(TimePoint t, Callback fn);

  /// Schedules `fn` after a non-negative delay from now.
  EventId schedule_after(Duration d, Callback fn) { return schedule_at(now_ + d, std::move(fn)); }

  /// Cancels a pending event. Cancelling an already-run or unknown id is a
  /// true no-op: only ids still in the queue are recorded, so `pending()`
  /// converges instead of drifting when stale ids are cancelled.
  void cancel(EventId id) {
    if (id != kInvalidEvent && queued_ids_.contains(id)) cancelled_.insert(id);
  }

  /// Schedules `fn` to run every `period`, starting one period from now.
  /// Returns a handle cancellable with `cancel_periodic`.
  EventId schedule_every(Duration period, Callback fn);
  void cancel_periodic(EventId handle);

  [[nodiscard]] TimePoint now() const { return now_; }

  /// Runs a single pending event; returns false if the queue is empty.
  bool step();

  /// Runs events with time <= deadline; the clock ends at the deadline even
  /// if the queue drains early.
  void run_until(TimePoint deadline);

  /// Runs until the queue drains.
  void run();

  /// Exact count of live pending events. `cancelled_` only ever holds ids
  /// still present in the queue (see `cancel`), so the subtraction cannot
  /// drift. Remaining transient slack: a cancelled event's queue slot (and
  /// its captured callback state) is reclaimed lazily when popped, so
  /// *memory*, unlike the count, can lag until the event's time arrives.
  [[nodiscard]] std::size_t pending() const { return queue_.size() - cancelled_.size(); }
  [[nodiscard]] std::uint64_t events_processed() const { return processed_; }

  /// FNV-1a hash over (time, seq, id) of every event executed so far — the
  /// determinism audit signal. Two runs with identical seeds and configs must
  /// produce identical hashes; divergence means a nondeterminism bug
  /// (hash-order iteration, uninitialized read, wall-clock leak).
  [[nodiscard]] std::uint64_t trace_hash() const { return trace_hash_; }

  /// Wires observability into the event loop: `events` counts executed
  /// events, `recorder` logs (time, seq, id) of each into the crash ring.
  /// Either may be null. Both effects are observers of the execution order,
  /// never inputs to it, so the trace hash is identical with obs on or off —
  /// the property --audit-determinism enforces.
  void set_obs(obs::Counter* events, obs::FlightRecorder* recorder) {
    obs_events_ = events;
    obs_recorder_ = recorder;
  }

  /// Aborts (via SMN_ASSERT) if internal bookkeeping is inconsistent:
  /// cancelled ids must be a subset of queued ids, the queued-id index must
  /// mirror the heap, and the clock must not have moved backwards.
  void check_invariants() const;

 private:
  struct Event {
    TimePoint time;
    std::uint64_t seq;  // tie-break: earlier scheduling runs first
    EventId id;
    Callback fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  // Pops the next live event into `out`; false when drained.
  bool pop_next(Event& out);

  // Schedules the next tick of a periodic task. The scheduled lambda shares
  // the callback via shared_ptr but never owns a reference to itself (a
  // self-capturing std::function is a shared_ptr cycle and leaks every
  // periodic task still pending at destruction).
  void schedule_periodic_tick(EventId handle, Duration period, std::shared_ptr<Callback> task);

  // Folds one executed event into the running trace hash.
  void fold_trace(const Event& ev);

  // Hot-path instrumentation for one executed event; both sinks are inline
  // and null-checked, so the disabled cost is two predicted branches.
  void observe_event(const Event& ev) {
    if (obs_events_ != nullptr) obs_events_->inc();
    if (obs_recorder_ != nullptr) {
      obs_recorder_->record(ev.time.count_us(), "sim-event", static_cast<std::int64_t>(ev.id),
                            static_cast<std::int64_t>(ev.seq));
    }
  }

  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  std::unordered_set<EventId> queued_ids_;  // ids currently in queue_ (incl. cancelled)
  std::unordered_set<EventId> cancelled_;   // always a subset of queued_ids_
  std::unordered_set<EventId> periodic_cancelled_;
  TimePoint now_;
  std::uint64_t next_seq_ = 1;
  EventId next_id_ = 1;
  std::uint64_t processed_ = 0;
  std::uint64_t trace_hash_ = 0xcbf29ce484222325ull;  // FNV-1a offset basis
  obs::Counter* obs_events_ = nullptr;
  obs::FlightRecorder* obs_recorder_ = nullptr;
};

}  // namespace smn::sim
