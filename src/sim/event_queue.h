// The discrete-event simulation engine.
//
// A single-threaded event loop: callbacks are scheduled at TimePoints and run
// in (time, insertion-order) order, so simultaneous events execute in the
// order they were scheduled — deterministic by construction. Cancellation is
// lazy: cancelled ids are skipped when popped.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <stdexcept>
#include <unordered_set>
#include <vector>

#include "sim/time.h"

namespace smn::sim {

using EventId = std::uint64_t;
inline constexpr EventId kInvalidEvent = 0;

class Simulator {
 public:
  using Callback = std::function<void()>;

  /// Schedules `fn` at absolute time `t`; `t` must not be in the past.
  EventId schedule_at(TimePoint t, Callback fn);

  /// Schedules `fn` after a non-negative delay from now.
  EventId schedule_after(Duration d, Callback fn) { return schedule_at(now_ + d, std::move(fn)); }

  /// Cancels a pending event. Cancelling an already-run or unknown id is a no-op.
  void cancel(EventId id) { if (id != kInvalidEvent) cancelled_.insert(id); }

  /// Schedules `fn` to run every `period`, starting one period from now.
  /// Returns a handle cancellable with `cancel_periodic`.
  EventId schedule_every(Duration period, Callback fn);
  void cancel_periodic(EventId handle);

  [[nodiscard]] TimePoint now() const { return now_; }

  /// Runs a single pending event; returns false if the queue is empty.
  bool step();

  /// Runs events with time <= deadline; the clock ends at the deadline even
  /// if the queue drains early.
  void run_until(TimePoint deadline);

  /// Runs until the queue drains.
  void run();

  /// Approximate count of live pending events (cancelled entries are removed
  /// lazily, so this can over-count until they are popped).
  [[nodiscard]] std::size_t pending() const {
    return queue_.size() >= cancelled_.size() ? queue_.size() - cancelled_.size() : 0;
  }
  [[nodiscard]] std::uint64_t events_processed() const { return processed_; }

 private:
  struct Event {
    TimePoint time;
    std::uint64_t seq;  // tie-break: earlier scheduling runs first
    EventId id;
    Callback fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  // Pops the next live event into `out`; false when drained.
  bool pop_next(Event& out);

  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  std::unordered_set<EventId> cancelled_;
  std::unordered_set<EventId> periodic_cancelled_;
  TimePoint now_;
  std::uint64_t next_seq_ = 1;
  EventId next_id_ = 1;
  std::uint64_t processed_ = 0;
};

}  // namespace smn::sim
