#include "sim/fom.h"

#include "core/check.h"

namespace smn::sim {

Fom::~Fom() { engine_.cancel_wakeup(*this); }

void FomEngine::run(Fom& f) { advance(f); }

void FomEngine::advance(Fom& f) {
  f.in_tick_ = true;
  Fom::Tick t;
  do {
    t = f.tick();
  } while (t == Fom::Tick::kAgain);
  f.in_tick_ = false;
  if (t == Fom::Tick::kDone) {
    // A finished fom must never fire again, even if a phase armed a wakeup
    // before deciding to finish.
    cancel_wakeup(f);
    f.on_done();  // may recycle or destroy f; last touch
  }
}

void FomEngine::wake_at(Fom& f, TimePoint t) {
  if (t < sim_.now()) t = sim_.now();
  if (f.wakeup_ != kInvalidEvent) {
    if (f.wakeup_time_ <= t) return;  // coalesced: an earlier wakeup covers this one
    sim_.cancel(f.wakeup_);
  }
  Fom* fp = &f;
  f.wakeup_time_ = t;
  f.wakeup_ = sim_.schedule_at(t, [this, fp] { fire(fp); });
}

void FomEngine::cancel_wakeup(Fom& f) {
  if (f.wakeup_ != kInvalidEvent) {
    sim_.cancel(f.wakeup_);
    f.wakeup_ = kInvalidEvent;
  }
}

void FomEngine::fire(Fom* f) {
  f->wakeup_ = kInvalidEvent;
  ++delivered_;
  if (obs_wakeups_ != nullptr) obs_wakeups_->inc();
  advance(*f);
}

void FomEngine::check_invariants(const Fom& f) const {
  SMN_ASSERT(f.phase_ >= 0, "fom phase negative: %d", f.phase_);
  SMN_ASSERT(!f.in_tick_, "check_invariants called from inside a tick");
  if (f.wakeup_ != kInvalidEvent) {
    SMN_ASSERT(f.wakeup_time_ >= sim_.now(), "fom armed in the past: %lld < %lld",
               static_cast<long long>(f.wakeup_time_.count_us()),
               static_cast<long long>(sim_.now().count_us()));
  }
}

}  // namespace smn::sim
