#include "sim/event_queue.h"

#include <memory>
#include <utility>

#include "core/check.h"

namespace smn::sim {

EventId Simulator::schedule_at(TimePoint t, Callback fn) {
  if (t < now_) throw std::invalid_argument{"schedule_at: time is in the past"};
  if (!fn) throw std::invalid_argument{"schedule_at: empty callback"};
  const EventId id = ++next_id_;
  queue_.push(Event{t, next_seq_++, id, std::move(fn)});
  queued_ids_.insert(id);
  return id;
}

EventId Simulator::schedule_every(Duration period, Callback fn) {
  if (period <= Duration::zero()) {
    throw std::invalid_argument{"schedule_every: period must be positive"};
  }
  if (!fn) throw std::invalid_argument{"schedule_every: empty callback"};
  const EventId handle = ++next_id_;
  schedule_periodic_tick(handle, period, std::make_shared<Callback>(std::move(fn)));
  return handle;
}

void Simulator::schedule_periodic_tick(EventId handle, Duration period,
                                       std::shared_ptr<Callback> task) {
  // The periodic task reschedules itself until its handle is cancelled. The
  // recursion is through the queue, not the stack — and deliberately through
  // this member function rather than a self-capturing std::function: a
  // function that owns a shared_ptr to itself is a reference cycle, and every
  // periodic task pending at Simulator destruction would leak (found by the
  // asan-ubsan preset).
  schedule_after(period, [this, handle, period, task = std::move(task)]() mutable {
    if (periodic_cancelled_.contains(handle)) {
      periodic_cancelled_.erase(handle);
      return;
    }
    (*task)();
    if (periodic_cancelled_.contains(handle)) {
      periodic_cancelled_.erase(handle);
      return;
    }
    schedule_periodic_tick(handle, period, std::move(task));
  });
}

void Simulator::cancel_periodic(EventId handle) {
  if (handle != kInvalidEvent) periodic_cancelled_.insert(handle);
}

bool Simulator::pop_next(Event& out) {
  while (!queue_.empty()) {
    // priority_queue::top is const; the callback is moved out via const_cast,
    // which is safe because the element is popped immediately after.
    Event& top = const_cast<Event&>(queue_.top());
    queued_ids_.erase(top.id);
    if (cancelled_.erase(top.id) > 0) {
      queue_.pop();
      continue;
    }
    out = std::move(top);
    queue_.pop();
    return true;
  }
  return false;
}

void Simulator::fold_trace(const Event& ev) {
  constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;
  const std::uint64_t words[3] = {static_cast<std::uint64_t>(ev.time.count_us()), ev.seq, ev.id};
  for (const std::uint64_t w : words) {
    for (int byte = 0; byte < 8; ++byte) {
      trace_hash_ ^= (w >> (8 * byte)) & 0xffu;
      trace_hash_ *= kFnvPrime;
    }
  }
}

bool Simulator::step() {
  Event ev;
  if (!pop_next(ev)) return false;
  SMN_DCHECK(ev.time >= now_, "clock would move backwards: %lld < %lld",
             static_cast<long long>(ev.time.count_us()), static_cast<long long>(now_.count_us()));
  now_ = ev.time;
  ++processed_;
  fold_trace(ev);
  observe_event(ev);
  ev.fn();
  return true;
}

void Simulator::run_until(TimePoint deadline) {
  Event ev;
  while (!queue_.empty()) {
    if (queue_.top().time > deadline) break;
    if (!pop_next(ev)) break;
    if (ev.time > deadline) {
      // pop_next skipped cancelled entries and surfaced one past the deadline;
      // push it back untouched.
      queued_ids_.insert(ev.id);
      queue_.push(std::move(ev));
      break;
    }
    SMN_DCHECK(ev.time >= now_, "clock would move backwards: %lld < %lld",
               static_cast<long long>(ev.time.count_us()),
               static_cast<long long>(now_.count_us()));
    now_ = ev.time;
    ++processed_;
    fold_trace(ev);
    observe_event(ev);
    ev.fn();
  }
  if (deadline > now_) now_ = deadline;
}

void Simulator::run() {
  while (step()) {
  }
}

void Simulator::check_invariants() const {
  SMN_ASSERT(queued_ids_.size() == queue_.size(), "id index %zu out of sync with heap %zu",
             queued_ids_.size(), queue_.size());
  SMN_ASSERT(cancelled_.size() <= queued_ids_.size(),
             "cancelled set (%zu) larger than queue (%zu)", cancelled_.size(),
             queued_ids_.size());
  for (const EventId id : cancelled_) {
    SMN_ASSERT(queued_ids_.contains(id), "cancelled id %llu not in queue",
               static_cast<unsigned long long>(id));
  }
  if (!queue_.empty()) {
    SMN_ASSERT(queue_.top().time >= now_, "head event at %lld is before now %lld",
               static_cast<long long>(queue_.top().time.count_us()),
               static_cast<long long>(now_.count_us()));
  }
}

}  // namespace smn::sim
