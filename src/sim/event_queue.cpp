#include "sim/event_queue.h"

#include <memory>
#include <utility>

namespace smn::sim {

EventId Simulator::schedule_at(TimePoint t, Callback fn) {
  if (t < now_) throw std::invalid_argument{"schedule_at: time is in the past"};
  if (!fn) throw std::invalid_argument{"schedule_at: empty callback"};
  const EventId id = ++next_id_;
  queue_.push(Event{t, next_seq_++, id, std::move(fn)});
  return id;
}

EventId Simulator::schedule_every(Duration period, Callback fn) {
  if (period <= Duration::zero()) {
    throw std::invalid_argument{"schedule_every: period must be positive"};
  }
  if (!fn) throw std::invalid_argument{"schedule_every: empty callback"};
  const EventId handle = ++next_id_;
  // The periodic task reschedules itself until its handle is cancelled. The
  // recursion is through the queue, not the stack.
  auto tick = std::make_shared<std::function<void()>>();
  *tick = [this, handle, period, fn = std::move(fn), tick]() {
    if (periodic_cancelled_.contains(handle)) {
      periodic_cancelled_.erase(handle);
      return;
    }
    fn();
    if (periodic_cancelled_.contains(handle)) {
      periodic_cancelled_.erase(handle);
      return;
    }
    schedule_after(period, *tick);
  };
  schedule_after(period, *tick);
  return handle;
}

void Simulator::cancel_periodic(EventId handle) {
  if (handle != kInvalidEvent) periodic_cancelled_.insert(handle);
}

bool Simulator::pop_next(Event& out) {
  while (!queue_.empty()) {
    // priority_queue::top is const; the callback is moved out via const_cast,
    // which is safe because the element is popped immediately after.
    Event& top = const_cast<Event&>(queue_.top());
    if (cancelled_.erase(top.id) > 0) {
      queue_.pop();
      continue;
    }
    out = std::move(top);
    queue_.pop();
    return true;
  }
  return false;
}

bool Simulator::step() {
  Event ev;
  if (!pop_next(ev)) return false;
  now_ = ev.time;
  ++processed_;
  ev.fn();
  return true;
}

void Simulator::run_until(TimePoint deadline) {
  Event ev;
  while (!queue_.empty()) {
    if (queue_.top().time > deadline) break;
    if (!pop_next(ev)) break;
    if (ev.time > deadline) {
      // pop_next skipped cancelled entries and surfaced one past the deadline;
      // push it back untouched.
      queue_.push(std::move(ev));
      break;
    }
    now_ = ev.time;
    ++processed_;
    ev.fn();
  }
  if (deadline > now_) now_ = deadline;
}

void Simulator::run() {
  while (step()) {
  }
}

}  // namespace smn::sim
