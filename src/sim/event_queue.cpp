#include "sim/event_queue.h"

#include <algorithm>
#include <utility>

#include "core/check.h"

namespace smn::sim {
namespace {

// Bit 63 of an EventId is the periodic-handle tag, so only 31 generation bits
// fit in an event id. Slot generations wrap there; a stale id can only alias
// after 2^31 reuses of the same slot.
constexpr std::uint32_t kGenMask = 0x7fffffffu;

}  // namespace

std::uint32_t Simulator::acquire_slot() {
  std::uint32_t s;
  if (free_head_ != kNoFree) {
    s = free_head_;
    free_head_ = slots_[s].next_free;
  } else {
    s = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  Slot& slot = slots_[s];
  ++slot.gen;
  slot.state = Slot::State::kLive;
  slot.next_free = kNoFree;
  return s;
}

void Simulator::release_slot(std::uint32_t s) {
  Slot& slot = slots_[s];
  slot.fn.reset();
  slot.state = Slot::State::kFree;
  slot.next_free = free_head_;
  free_head_ = s;
}

void Simulator::heap_push(HeapEntry e) {
  std::size_t i = heap_.size();
  heap_.push_back(e);
  while (i > 0) {
    const std::size_t parent = (i - 1) / 4;
    if (!heap_before(heap_[i], heap_[parent])) break;
    std::swap(heap_[i], heap_[parent]);
    i = parent;
  }
}

Simulator::HeapEntry Simulator::heap_pop() {
  const HeapEntry top = heap_[0];
  heap_[0] = heap_.back();
  heap_.pop_back();
  const std::size_t n = heap_.size();
  std::size_t i = 0;
  while (true) {
    const std::size_t first_child = 4 * i + 1;
    if (first_child >= n) break;
    std::size_t best = first_child;
    const std::size_t last_child = std::min(first_child + 4, n);
    for (std::size_t c = first_child + 1; c < last_child; ++c) {
      if (heap_before(heap_[c], heap_[best])) best = c;
    }
    if (!heap_before(heap_[best], heap_[i])) break;
    std::swap(heap_[i], heap_[best]);
    i = best;
  }
  return top;
}

EventId Simulator::schedule_at(TimePoint t, Callback fn) {
  if (t < now_) throw std::invalid_argument{"schedule_at: time is in the past"};
  if (!fn) throw std::invalid_argument{"schedule_at: empty callback"};
  const std::uint32_t s = acquire_slot();
  slots_[s].fn = std::move(fn);
  heap_push(HeapEntry{t, next_seq_++, s});
  ++live_;
  return make_id(slots_[s].gen & kGenMask, s);
}

void Simulator::cancel(EventId id) {
  if (id == kInvalidEvent || (id & kPeriodicTag) != 0) return;
  const std::uint32_t s = static_cast<std::uint32_t>(id & 0xffffffffu);
  if (s >= slots_.size()) return;
  Slot& slot = slots_[s];
  if (slot.state != Slot::State::kLive || (slot.gen & kGenMask) != (id >> 32)) return;
  // Eager reclaim: the captured state dies now; only the inert 24-byte heap
  // entry waits (as a tombstone) for its time to surface.
  slot.fn.reset();
  slot.state = Slot::State::kCancelled;
  --live_;
}

EventId Simulator::schedule_every(Duration period, Callback fn) {
  if (period <= Duration::zero()) {
    throw std::invalid_argument{"schedule_every: period must be positive"};
  }
  if (!fn) throw std::invalid_argument{"schedule_every: empty callback"};
  std::uint32_t idx;
  if (periodic_free_head_ != kNoFree) {
    idx = periodic_free_head_;
    periodic_free_head_ = periodics_[idx].next_free;
  } else {
    idx = static_cast<std::uint32_t>(periodics_.size());
    periodics_.emplace_back();
  }
  PeriodicTask& p = periodics_[idx];
  ++p.gen;
  p.fn = std::move(fn);
  p.period = period;
  p.live = true;
  p.in_tick = false;
  p.next_free = kNoFree;
  const std::uint32_t gen = p.gen;
  p.tick_event = schedule_after(period, [this, idx, gen] { run_periodic(idx, gen); });
  return make_id(gen & kGenMask, idx) | kPeriodicTag;
}

void Simulator::run_periodic(std::uint32_t idx, std::uint32_t gen) {
  {
    PeriodicTask& p = periodics_[idx];
    if (!p.live || p.gen != gen) return;
    p.in_tick = true;
  }
  // The task runs from a local: the callback may itself create periodic
  // tasks, growing `periodics_` and moving every PeriodicTask — executing a
  // callable while it is being moved would be UB.
  Callback fn = std::move(periodics_[idx].fn);
  fn();
  PeriodicTask& p = periodics_[idx];
  p.in_tick = false;
  if (p.live) {
    p.fn = std::move(fn);
    p.tick_event = schedule_after(p.period, [this, idx, gen] { run_periodic(idx, gen); });
  } else {
    // Cancelled from inside its own tick; reclaim deferred to here.
    p.tick_event = kInvalidEvent;
    p.next_free = periodic_free_head_;
    periodic_free_head_ = idx;
  }
}

void Simulator::cancel_periodic(EventId handle) {
  if (handle == kInvalidEvent || (handle & kPeriodicTag) == 0) return;
  const EventId untagged = handle & ~kPeriodicTag;
  const std::uint32_t idx = static_cast<std::uint32_t>(untagged & 0xffffffffu);
  if (idx >= periodics_.size()) return;
  PeriodicTask& p = periodics_[idx];
  if (!p.live || (p.gen & kGenMask) != (untagged >> 32)) return;
  p.live = false;
  if (!p.in_tick) {
    cancel(p.tick_event);
    p.fn.reset();
    p.tick_event = kInvalidEvent;
    p.next_free = periodic_free_head_;
    periodic_free_head_ = idx;
  }
}

void Simulator::fold_trace(TimePoint t, std::uint64_t seq, EventId id) {
  constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;
  const std::uint64_t words[3] = {static_cast<std::uint64_t>(t.count_us()), seq, id};
  for (const std::uint64_t w : words) {
    for (int byte = 0; byte < 8; ++byte) {
      trace_hash_ ^= (w >> (8 * byte)) & 0xffu;
      trace_hash_ *= kFnvPrime;
    }
  }
}

void Simulator::execute(const HeapEntry& top) {
  SMN_DCHECK(top.time >= now_, "clock would move backwards: %lld < %lld",
             static_cast<long long>(top.time.count_us()),
             static_cast<long long>(now_.count_us()));
  Slot& slot = slots_[top.slot];
  // Move the callback out and free the slot before invoking: the callback
  // may schedule (reusing this slot) or grow `slots_`.
  Callback fn = std::move(slot.fn);
  const EventId id = make_id(slot.gen & kGenMask, top.slot);
  release_slot(top.slot);
  --live_;
  now_ = top.time;
  ++processed_;
  fold_trace(top.time, top.seq, id);
  observe_event(top.time, top.seq, id);
  fn();
}

bool Simulator::step() {
  while (!heap_.empty()) {
    const HeapEntry top = heap_pop();
    if (slots_[top.slot].state == Slot::State::kCancelled) {
      release_slot(top.slot);
      continue;
    }
    execute(top);
    return true;
  }
  return false;
}

void Simulator::run_until(TimePoint deadline) {
  while (!heap_.empty()) {
    if (slots_[heap_[0].slot].state == Slot::State::kCancelled) {
      // Tombstone: reclaim regardless of deadline.
      release_slot(heap_pop().slot);
      continue;
    }
    if (heap_[0].time > deadline) break;
    execute(heap_pop());
  }
  if (deadline > now_) now_ = deadline;
}

void Simulator::run() {
  while (step()) {
  }
}

void Simulator::check_invariants() const {
  // Heap property and per-slot reference counts.
  std::vector<std::uint8_t> referenced(slots_.size(), 0);
  for (std::size_t i = 0; i < heap_.size(); ++i) {
    if (i > 0) {
      const std::size_t parent = (i - 1) / 4;
      SMN_ASSERT(!heap_before(heap_[i], heap_[parent]),
                 "heap property violated at index %zu", i);
    }
    const std::uint32_t s = heap_[i].slot;
    SMN_ASSERT(s < slots_.size(), "heap entry %zu references slot %u out of range", i, s);
    SMN_ASSERT(referenced[s] == 0, "slot %u referenced twice from the heap", s);
    referenced[s] = 1;
    SMN_ASSERT(slots_[s].state != Slot::State::kFree, "heap entry %zu references free slot %u",
               i, s);
    SMN_ASSERT(heap_[i].time >= now_, "heap entry at %lld is before now %lld",
               static_cast<long long>(heap_[i].time.count_us()),
               static_cast<long long>(now_.count_us()));
  }
  std::size_t live = 0;
  std::size_t cancelled = 0;
  for (std::size_t s = 0; s < slots_.size(); ++s) {
    const Slot& slot = slots_[s];
    switch (slot.state) {
      case Slot::State::kLive:
        ++live;
        SMN_ASSERT(referenced[s] == 1, "live slot %zu missing from the heap", s);
        SMN_ASSERT(static_cast<bool>(slot.fn), "live slot %zu has no callback", s);
        break;
      case Slot::State::kCancelled:
        ++cancelled;
        SMN_ASSERT(referenced[s] == 1, "cancelled slot %zu missing from the heap", s);
        SMN_ASSERT(!static_cast<bool>(slot.fn),
                   "cancelled slot %zu still holds a callback (reclaim lag)", s);
        break;
      case Slot::State::kFree:
        SMN_ASSERT(!static_cast<bool>(slot.fn), "free slot %zu still holds a callback", s);
        break;
    }
  }
  SMN_ASSERT(live == live_, "live count %zu out of sync with slots %zu", live_, live);
  SMN_ASSERT(live + cancelled == heap_.size(), "heap size %zu != occupied slots %zu",
             heap_.size(), live + cancelled);
  // Free list covers exactly the free slots.
  std::size_t free_count = 0;
  for (std::uint32_t f = free_head_; f != kNoFree; f = slots_[f].next_free) {
    SMN_ASSERT(slots_[f].state == Slot::State::kFree, "free list entry %u not free", f);
    ++free_count;
    SMN_ASSERT(free_count <= slots_.size(), "free list cycle");
  }
  SMN_ASSERT(free_count + heap_.size() == slots_.size(),
             "free list %zu + heap %zu != slots %zu", free_count, heap_.size(), slots_.size());
  for (const PeriodicTask& p : periodics_) {
    if (p.live && !p.in_tick) {
      SMN_ASSERT(static_cast<bool>(p.fn), "live periodic task has no callback");
      SMN_ASSERT(p.tick_event != kInvalidEvent, "live periodic task has no pending tick");
    }
  }
}

}  // namespace smn::sim
