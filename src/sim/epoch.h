// Epoch-barrier scheduling for sharded (multi-simulator) execution.
//
// A campus-scale run partitions the plant into *domains*, each owning its own
// Simulator. Domains advance independently inside an epoch and synchronize at
// fixed barriers where cross-domain messages are exchanged. The discipline is
// conservative parallel discrete-event simulation: the epoch length (the
// *lookahead*) must not exceed the minimum cross-domain latency, so a message
// sent anywhere inside epoch k is always delivered strictly after barrier k —
// it can be scheduled into the destination simulator while every domain is
// parked at the barrier, before epoch k+1 starts. No rollbacks, no straggler
// events, and the executed event order of every domain is independent of how
// domains are assigned to worker threads.
//
// EpochSchedule is the pure arithmetic: barrier placement at fixed multiples
// of the lookahead from a start point. The exchange itself (sorted merge of
// messages) lives with the owner of the domains (scenario::Campus); the
// ordering key it must use is defined here so the tie-break discipline is a
// single source of truth shared with tests.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <tuple>

#include "sim/time.h"

namespace smn::sim {

/// Placement of epoch barriers: fixed multiples of `lookahead` after `start`.
/// Barriers never move once the schedule is constructed, so two runs chunked
/// into different run_for() slices still exchange at identical instants.
class EpochSchedule {
 public:
  /// `lookahead` must be strictly positive: a zero lookahead would require a
  /// delivery at the send instant itself, which the conservative barrier
  /// discipline cannot honor (the destination may already have advanced past
  /// it on another thread). Throws std::invalid_argument.
  EpochSchedule(TimePoint start, Duration lookahead) : start_{start}, lookahead_{lookahead} {
    if (lookahead <= Duration::zero()) {
      throw std::invalid_argument{
          "EpochSchedule: lookahead must be > 0 (epoch barriers need a conservative "
          "minimum cross-domain latency)"};
    }
  }

  [[nodiscard]] TimePoint start() const { return start_; }
  [[nodiscard]] Duration lookahead() const { return lookahead_; }

  /// The first barrier strictly after `t`. Epoch k spans
  /// (start + k*lookahead, start + (k+1)*lookahead].
  [[nodiscard]] TimePoint next_barrier_after(TimePoint t) const {
    const std::int64_t elapsed = (t - start_).count_us();
    const std::int64_t e = lookahead_.count_us();
    const std::int64_t k = elapsed / e + 1;  // elapsed >= 0: domains never run before start
    return start_ + Duration::microseconds(k * e);
  }

 private:
  TimePoint start_;
  Duration lookahead_;
};

/// The canonical cross-domain message ordering key. Messages drained from
/// per-domain outboxes arrive in a thread-count-dependent order; sorting by
/// (send time, source domain, per-source sequence number) restores a total
/// order — (src, seq) is unique per message — so delivery-event scheduling is
/// byte-identical at any shard count. This is the same tie-break discipline
/// the sweep aggregator uses for (cell, seed) replicates.
struct ExchangeKey {
  TimePoint sent;
  int src_domain = 0;
  std::uint64_t seq = 0;

  [[nodiscard]] friend bool operator<(const ExchangeKey& a, const ExchangeKey& b) {
    return std::tuple{a.sent, a.src_domain, a.seq} < std::tuple{b.sent, b.src_domain, b.seq};
  }
};

}  // namespace smn::sim
