// Simulation time primitives.
//
// The simulator measures time in integer microseconds wrapped in two strong
// types: Duration (a span) and TimePoint (an instant since simulation start).
// Integer ticks keep event ordering exact and runs bit-reproducible; the
// microsecond resolution comfortably covers both robot actuation (~100 ms
// steps) and multi-month maintenance campaigns (~10^13 us) within int64_t.
#pragma once

#include <cstdint>
#include <compare>
#include <string>

namespace smn::sim {

/// A span of simulated time. Microsecond resolution, signed.
class Duration {
 public:
  constexpr Duration() = default;

  [[nodiscard]] static constexpr Duration microseconds(std::int64_t us) { return Duration{us}; }
  [[nodiscard]] static constexpr Duration milliseconds(double ms) {
    return Duration{static_cast<std::int64_t>(ms * 1e3)};
  }
  [[nodiscard]] static constexpr Duration seconds(double s) {
    return Duration{static_cast<std::int64_t>(s * 1e6)};
  }
  [[nodiscard]] static constexpr Duration minutes(double m) { return seconds(m * 60.0); }
  [[nodiscard]] static constexpr Duration hours(double h) { return seconds(h * 3600.0); }
  [[nodiscard]] static constexpr Duration days(double d) { return seconds(d * 86400.0); }
  [[nodiscard]] static constexpr Duration zero() { return Duration{0}; }
  [[nodiscard]] static constexpr Duration max() { return Duration{INT64_MAX}; }

  [[nodiscard]] constexpr std::int64_t count_us() const { return us_; }
  [[nodiscard]] constexpr double to_seconds() const { return static_cast<double>(us_) / 1e6; }
  [[nodiscard]] constexpr double to_minutes() const { return to_seconds() / 60.0; }
  [[nodiscard]] constexpr double to_hours() const { return to_seconds() / 3600.0; }
  [[nodiscard]] constexpr double to_days() const { return to_seconds() / 86400.0; }

  constexpr auto operator<=>(const Duration&) const = default;

  constexpr Duration operator+(Duration o) const { return Duration{us_ + o.us_}; }
  constexpr Duration operator-(Duration o) const { return Duration{us_ - o.us_}; }
  constexpr Duration operator*(double k) const {
    return Duration{static_cast<std::int64_t>(static_cast<double>(us_) * k)};
  }
  constexpr Duration operator/(double k) const {
    return Duration{static_cast<std::int64_t>(static_cast<double>(us_) / k)};
  }
  /// Ratio of two durations. Divisor must be non-zero.
  [[nodiscard]] constexpr double ratio(Duration o) const {
    return static_cast<double>(us_) / static_cast<double>(o.us_);
  }
  constexpr Duration& operator+=(Duration o) { us_ += o.us_; return *this; }
  constexpr Duration& operator-=(Duration o) { us_ -= o.us_; return *this; }
  constexpr Duration operator-() const { return Duration{-us_}; }

 private:
  constexpr explicit Duration(std::int64_t us) : us_{us} {}
  std::int64_t us_ = 0;
};

/// An instant in simulated time, measured from simulation start (t = 0).
class TimePoint {
 public:
  constexpr TimePoint() = default;

  [[nodiscard]] static constexpr TimePoint origin() { return TimePoint{}; }
  [[nodiscard]] static constexpr TimePoint from_us(std::int64_t us) { return TimePoint{us}; }
  [[nodiscard]] static constexpr TimePoint max() { return TimePoint{INT64_MAX}; }

  [[nodiscard]] constexpr std::int64_t count_us() const { return us_; }
  [[nodiscard]] constexpr double to_seconds() const { return static_cast<double>(us_) / 1e6; }
  [[nodiscard]] constexpr double to_hours() const { return to_seconds() / 3600.0; }
  [[nodiscard]] constexpr double to_days() const { return to_seconds() / 86400.0; }

  constexpr auto operator<=>(const TimePoint&) const = default;

  constexpr TimePoint operator+(Duration d) const { return TimePoint{us_ + d.count_us()}; }
  constexpr TimePoint operator-(Duration d) const { return TimePoint{us_ - d.count_us()}; }
  constexpr Duration operator-(TimePoint o) const { return Duration::microseconds(us_ - o.us_); }

 private:
  constexpr explicit TimePoint(std::int64_t us) : us_{us} {}
  std::int64_t us_ = 0;
};

/// Human-readable rendering, e.g. "2d 03:14:07" or "850ms".
[[nodiscard]] std::string format_duration(Duration d);
/// Renders a time point as elapsed time since simulation start.
[[nodiscard]] std::string format_time(TimePoint t);

}  // namespace smn::sim
