// Small-buffer-optimized callback for the event queue hot path.
//
// `SmallFn` is a move-only `void()` callable: captures up to
// `kSmallFnInlineBytes` live inside the object itself, so scheduling a
// workflow wakeup allocates nothing. Larger captures fall back to the heap
// (one allocation, same as std::function) — the smn-lint "hot-schedule" rule
// flags schedule sites whose lambdas outgrow the inline budget.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace smn::sim {

/// Inline capture budget, bytes. 48 fits {this, two ids, two time points}
/// with room to spare and keeps sizeof(SmallFn) at 64 — one cache line.
inline constexpr std::size_t kSmallFnInlineBytes = 48;

class SmallFn {
 public:
  SmallFn() = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::remove_cvref_t<F>, SmallFn> &&
                std::is_invocable_r_v<void, std::remove_cvref_t<F>&>>>
  // NOLINTNEXTLINE(google-explicit-constructor): drop-in for std::function
  SmallFn(F&& f) {
    using D = std::remove_cvref_t<F>;
    if constexpr (fits_inline<D>()) {
      ::new (static_cast<void*>(buf_)) D(std::forward<F>(f));
      vt_ = &kInlineVt<D>;
    } else {
      *reinterpret_cast<D**>(buf_) = new D(std::forward<F>(f));
      vt_ = &kHeapVt<D>;
    }
  }

  SmallFn(SmallFn&& other) noexcept { steal(other); }
  SmallFn& operator=(SmallFn&& other) noexcept {
    if (this != &other) {
      reset();
      steal(other);
    }
    return *this;
  }
  SmallFn(const SmallFn&) = delete;
  SmallFn& operator=(const SmallFn&) = delete;
  ~SmallFn() { reset(); }

  void operator()() { vt_->invoke(buf_); }
  [[nodiscard]] explicit operator bool() const { return vt_ != nullptr; }

  /// True when the held callable lives in the inline buffer (no heap).
  [[nodiscard]] bool is_inline() const { return vt_ != nullptr && vt_->inline_storage; }

  /// Whether a callable of type F would be stored inline.
  template <typename F>
  [[nodiscard]] static constexpr bool fits_inline() {
    using D = std::remove_cvref_t<F>;
    return sizeof(D) <= kSmallFnInlineBytes && alignof(D) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<D>;
  }

  void reset() {
    if (vt_ != nullptr) {
      vt_->destroy(buf_);
      vt_ = nullptr;
    }
  }

 private:
  struct VTable {
    void (*invoke)(void*);
    void (*move)(void* src, void* dst);  // move-construct dst from src, destroy src
    void (*destroy)(void*);
    bool inline_storage;
  };

  template <typename D>
  static constexpr VTable kInlineVt{
      [](void* b) { (*std::launder(reinterpret_cast<D*>(b)))(); },
      [](void* src, void* dst) {
        D* s = std::launder(reinterpret_cast<D*>(src));
        ::new (dst) D(std::move(*s));
        s->~D();
      },
      [](void* b) { std::launder(reinterpret_cast<D*>(b))->~D(); },
      /*inline_storage=*/true,
  };

  template <typename D>
  static constexpr VTable kHeapVt{
      [](void* b) { (**reinterpret_cast<D**>(b))(); },
      [](void* src, void* dst) {
        *reinterpret_cast<D**>(dst) = *reinterpret_cast<D**>(src);
      },
      [](void* b) { delete *reinterpret_cast<D**>(b); },
      /*inline_storage=*/false,
  };

  void steal(SmallFn& other) {
    if (other.vt_ != nullptr) {
      other.vt_->move(other.buf_, buf_);
      vt_ = other.vt_;
      other.vt_ = nullptr;
    }
  }

  const VTable* vt_ = nullptr;
  alignas(std::max_align_t) unsigned char buf_[kSmallFnInlineBytes];
};

}  // namespace smn::sim
