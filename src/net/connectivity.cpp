#include "net/connectivity.h"

#include <algorithm>

#include "core/check.h"
#include "net/network.h"

namespace smn::net {

ConnectivityEngine::ConnectivityEngine(const Network& net) : net_{&net} {}

std::int32_t ConnectivityEngine::find(Forest& f, std::int32_t v) {
  // Path halving: every other node on the walk is re-pointed at its
  // grandparent, giving the inverse-Ackermann amortized bound without a
  // second pass.
  while (f.parent[static_cast<std::size_t>(v)] != v) {
    auto& p = f.parent[static_cast<std::size_t>(v)];
    p = f.parent[static_cast<std::size_t>(p)];
    v = p;
  }
  return v;
}

void ConnectivityEngine::ensure_fresh(Forest& f, const PathPolicy& policy) {
  const std::uint64_t state_gen = net_->state_generation();
  const std::uint64_t structure_gen = net_->structure_generation();
  if (f.state_gen == state_gen && f.structure_gen == structure_gen) return;

  const auto n = static_cast<std::int32_t>(net_->devices().size());
  f.parent.resize(static_cast<std::size_t>(n));
  for (std::int32_t i = 0; i < n; ++i) f.parent[static_cast<std::size_t>(i)] = i;
  f.size.assign(static_cast<std::size_t>(n), 1);

  // Links at an unhealthy device (or dead line card) are already Down —
  // Network::refresh_link folds device health into the derived state — so
  // unioning over usable links alone reproduces the reference BFS's
  // peer-health behaviour exactly.
  for (const Link& l : net_->links()) {
    if (!link_usable(l, policy)) continue;
    std::int32_t ra = find(f, l.end_a.device.value());
    std::int32_t rb = find(f, l.end_b.device.value());
    if (ra == rb) continue;
    // Union by size; ties attach the higher-index root under the lower so
    // the forest shape is a pure function of the link set.
    if (f.size[static_cast<std::size_t>(ra)] < f.size[static_cast<std::size_t>(rb)] ||
        (f.size[static_cast<std::size_t>(ra)] == f.size[static_cast<std::size_t>(rb)] &&
         rb < ra)) {
      std::swap(ra, rb);
    }
    f.parent[static_cast<std::size_t>(rb)] = ra;
    f.size[static_cast<std::size_t>(ra)] += f.size[static_cast<std::size_t>(rb)];
  }
  f.state_gen = state_gen;
  f.structure_gen = structure_gen;
  ++rebuilds_;
}

bool ConnectivityEngine::connected(DeviceId a, DeviceId b, const PathPolicy& policy) {
  if (a == b) return true;  // matches shortest_path's {from} self-path
  Forest& f = forests_[policy_index(policy)];
  ensure_fresh(f, policy);
  return find(f, a.value()) == find(f, b.value());
}

void ConnectivityEngine::begin_bfs() {
  const std::size_t n = net_->devices().size();
  ++epoch_;
  if (visit_epoch_.size() != n || epoch_ == 0) {
    visit_epoch_.assign(n, 0);
    epoch_ = 1;
  }
  bfs_parent_.resize(n);
  bfs_queue_.clear();
}

std::vector<DeviceId> ConnectivityEngine::shortest_path(DeviceId from, DeviceId to,
                                                        const PathPolicy& policy) {
  if (from == to) return {from};
  // The union-find answers the reachability half for free; a failed BFS is
  // the expensive case (it floods the whole component), so skip it outright.
  if (!connected(from, to, policy)) return {};

  const CsrAdjacency& adj = net_->adjacency();
  begin_bfs();
  visit_epoch_[static_cast<std::size_t>(from.value())] = epoch_;
  bfs_parent_[static_cast<std::size_t>(from.value())] = -1;
  bfs_queue_.push_back(from);
  for (std::size_t head = 0; head < bfs_queue_.size(); ++head) {
    const DeviceId cur = bfs_queue_[head];
    const auto [row_begin, row_end] = adj.row(cur);
    for (std::int32_t k = row_begin; k < row_end; ++k) {
      const Link& l = net_->link(adj.link[static_cast<std::size_t>(k)]);
      if (!link_usable(l, policy)) continue;
      const DeviceId peer = adj.peer[static_cast<std::size_t>(k)];
      if (!net_->device(peer).healthy) continue;
      auto& stamp = visit_epoch_[static_cast<std::size_t>(peer.value())];
      if (stamp == epoch_) continue;
      stamp = epoch_;
      bfs_parent_[static_cast<std::size_t>(peer.value())] = cur.value();
      if (peer == to) {
        // Walk parents from `to` back to the root and reverse.
        std::vector<DeviceId> path;
        DeviceId v = to;
        while (true) {
          path.push_back(v);
          const std::int32_t pv = bfs_parent_[static_cast<std::size_t>(v.value())];
          if (pv == -1) break;
          v = DeviceId{pv};
        }
        std::reverse(path.begin(), path.end());
        return path;
      }
      bfs_queue_.push_back(peer);
    }
  }
  // connected() said reachable; the BFS honouring the same link set must
  // agree (the peer-health check cannot diverge because unhealthy devices
  // have no usable links).
  SMN_ASSERT(false, "connectivity forest and BFS disagree on %d -> %d", from.value(),
             to.value());
  return {};
}

void ConnectivityEngine::bfs_distances(DeviceId root, const PathPolicy& policy,
                                       std::vector<int>& out) {
  const CsrAdjacency& adj = net_->adjacency();
  out.assign(net_->devices().size(), -1);
  begin_bfs();
  out[static_cast<std::size_t>(root.value())] = 0;
  bfs_queue_.push_back(root);
  for (std::size_t head = 0; head < bfs_queue_.size(); ++head) {
    const DeviceId cur = bfs_queue_[head];
    const int next_dist = out[static_cast<std::size_t>(cur.value())] + 1;
    const auto [row_begin, row_end] = adj.row(cur);
    for (std::int32_t k = row_begin; k < row_end; ++k) {
      const Link& l = net_->link(adj.link[static_cast<std::size_t>(k)]);
      if (!link_usable(l, policy)) continue;
      const DeviceId peer = adj.peer[static_cast<std::size_t>(k)];
      if (!net_->device(peer).healthy) continue;
      int& d = out[static_cast<std::size_t>(peer.value())];
      if (d >= 0) continue;
      d = next_dist;
      bfs_queue_.push_back(peer);
    }
  }
}

}  // namespace smn::net
