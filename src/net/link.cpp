#include "net/link.h"

#include <algorithm>
#include <cmath>

namespace smn::net {

const char* to_string(LinkState s) {
  switch (s) {
    case LinkState::kUp: return "up";
    case LinkState::kDegraded: return "degraded";
    case LinkState::kFlapping: return "flapping";
    case LinkState::kDown: return "down";
  }
  return "?";
}

LinkState Link::derive_state(sim::TimePoint now, bool devices_healthy,
                             const LinkThresholds& thr) const {
  if (admin_down) return LinkState::kDown;
  if (!devices_healthy) return LinkState::kDown;
  if (!cable.intact) return LinkState::kDown;
  if (!end_a.condition.usable() || !end_b.condition.usable()) return LinkState::kDown;

  if (now < gray_until) return LinkState::kFlapping;

  const double c = std::max(end_a.condition.contamination, end_b.condition.contamination);
  if (c >= thr.flap_contamination) return LinkState::kFlapping;
  if (c >= thr.degrade_contamination) return LinkState::kDegraded;
  return LinkState::kUp;
}

double Link::loss_rate(LinkState s) {
  switch (s) {
    case LinkState::kUp: return 1e-9;
    case LinkState::kDegraded: return 3e-6;
    case LinkState::kFlapping: return 8e-3;  // time-averaged over flap bursts
    case LinkState::kDown: return 1.0;
  }
  return 1.0;
}

bool link_usable(const Link& l, const PathPolicy& policy) {
  switch (l.state) {
    case LinkState::kUp: return true;
    case LinkState::kDegraded: return policy.use_degraded;
    case LinkState::kFlapping: return policy.use_flapping;
    case LinkState::kDown: return false;
  }
  return false;
}

double tail_latency_factor(double loss) {
  // A flow's p99 completion time inflates roughly with the probability that
  // one of its ~1000 packets needs an RTO-scale (~100x RTT) retransmission.
  const double p_hit = 1.0 - std::pow(1.0 - std::min(loss, 0.5), 1000.0);
  return 1.0 + 99.0 * p_hit;
}

}  // namespace smn::net
