// Transceiver and cable modeling (§3.1 of the paper).
//
// The paper's repair ladder is defined over this hardware: DAC/AEC/AOC cables
// have transceivers integrated at manufacture (nothing to clean on-site),
// while longer links use separate optical transceivers and LC/MPO fiber whose
// end-faces contaminate and need inspection/cleaning. Form-factor and pull-tab
// diversity (§4 "tens of different designs") is what makes robotic grasping
// hard, so it is modeled explicitly.
#pragma once

#include <cstdint>
#include <string>

namespace smn::net {

/// Physical link medium, chosen from cable length at build time (§3.1).
enum class CableMedium : std::uint8_t {
  kDac,        // direct-attach copper, short in-rack links
  kAec,        // active electrical cable, integrated transceivers
  kAoc,        // active optical cable, integrated transceivers
  kLcOptical,  // separate transceiver + single-channel LC fiber
  kMpoOptical, // separate transceiver + multi-channel MPO fiber
};
[[nodiscard]] const char* to_string(CableMedium m);

/// True when transceivers are permanently attached to the cable, so the
/// cleaning stage of the repair ladder does not apply — only reseat/replace.
[[nodiscard]] constexpr bool is_integrated(CableMedium m) {
  return m == CableMedium::kDac || m == CableMedium::kAec || m == CableMedium::kAoc;
}
/// True when there is a fiber end-face that can be contaminated and cleaned.
[[nodiscard]] constexpr bool is_cleanable(CableMedium m) {
  return m == CableMedium::kLcOptical || m == CableMedium::kMpoOptical;
}

/// Pluggable form factor; one axis of the hardware diversity the paper says
/// robots must cope with.
enum class FormFactor : std::uint8_t { kSfp28, kQsfp28, kQsfpDd, kOsfp };
[[nodiscard]] const char* to_string(FormFactor f);

/// The mechanical pull-tab / latch style. Grasp success and timing of the
/// manipulation robot depend on this (§3.3.3: backends "vary in color, shape,
/// material, stiffness").
enum class TabStyle : std::uint8_t { kPullTab, kBail, kRigidTab, kRecessed };
[[nodiscard]] const char* to_string(TabStyle t);

/// A transceiver SKU: what a vision system must recognize and a gripper grasp.
struct TransceiverModel {
  FormFactor form_factor = FormFactor::kQsfp28;
  TabStyle tab = TabStyle::kPullTab;
  std::uint8_t vendor = 0;  // vendor index, for diversity statistics
  /// MPO end-faces may be polished at an 8-degree angle (APC); §3.3.3 calls
  /// out supporting both as a robot-design lesson.
  bool angled_end_face = false;

  [[nodiscard]] std::string describe() const;
};

/// Mutable per-end condition of a link: one transceiver plus the mating fiber
/// end-face. Repair actions and fault processes write these fields; the link
/// state machine reads them.
struct EndCondition {
  bool transceiver_present = true;
  bool transceiver_seated = true;
  /// Electrical/optical health of the module itself; false => must replace.
  bool transceiver_healthy = true;
  /// End-face contamination in [0, 1]: 0 pristine, 1 opaque. Drives the
  /// degraded/flapping thresholds in the link state machine. Removed by
  /// cleaning, not by reseating.
  double contamination = 0.0;
  /// Contact oxidation in [0, 1]: gold-plated edge contacts corrode slowly
  /// (§3.2: "gold is not immune from oxidation and corrosion"). Raises the
  /// gray-episode hazard; *reset by reseating*, which scrapes the contacts.
  double oxidation = 0.0;
  int reseat_count = 0;
  int clean_count = 0;

  [[nodiscard]] bool usable() const {
    return transceiver_present && transceiver_seated && transceiver_healthy;
  }
};

/// Mutable condition of the cable between the two ends.
struct CableCondition {
  bool intact = true;
  /// Accumulated mechanical stress (bends, pulls); raises failure hazard.
  double wear = 0.0;
};

/// Number of fiber cores a cleaning robot must inspect per end (§3.2: an
/// 800G link uses 8 fibers in one MPO cable).
[[nodiscard]] int core_count(CableMedium m, double capacity_gbps);

}  // namespace smn::net
