// The link state machine.
//
// A link's operational state is *derived* from physical conditions — the two
// end conditions (transceiver seated/healthy, end-face contamination), the
// cable, device health at both ends, transient gray-failure episodes, and
// administrative drain. Fault processes and repair actions mutate conditions;
// `derive_state` folds them into Up / Degraded / Flapping / Down exactly the
// way the paper describes failures presenting (§1: fail-stop vs gray vs
// flapping).
#pragma once

#include <cstdint>

#include "net/transceiver.h"
#include "net/types.h"
#include "sim/time.h"

namespace smn::net {

enum class LinkState : std::uint8_t { kUp, kDegraded, kFlapping, kDown };
[[nodiscard]] const char* to_string(LinkState s);

/// Contamination thresholds at which an optical end-face starts to degrade or
/// flap the link. Calibrated so that dirt accumulates into Degraded well
/// before hard failure, matching §1's description of dirt-driven flapping.
struct LinkThresholds {
  double degrade_contamination = 0.35;
  double flap_contamination = 0.60;
};

struct LinkEnd {
  DeviceId device;
  int port = -1;
  TransceiverModel model;
  EndCondition condition;
};

/// A bidirectional physical link.
class Link {
 public:
  LinkId id;
  LinkEnd end_a;
  LinkEnd end_b;
  CableMedium medium = CableMedium::kDac;
  CableCondition cable;
  double capacity_gbps = 100.0;
  double length_m = 1.0;
  int topology_link_index = -1;  // back-reference into the Blueprint

  /// Transient gray-failure episode: while now < gray_until the link flaps
  /// regardless of contamination (e.g. marginal electrical contact).
  sim::TimePoint gray_until = sim::TimePoint::origin();

  /// Administrative drain (maintenance / migration). Admin-down links carry
  /// no traffic but are not hardware failures.
  bool admin_down = false;

  /// Current derived operational state; maintained by Network::refresh_link.
  LinkState state = LinkState::kUp;

  [[nodiscard]] int cores_per_end() const { return core_count(medium, capacity_gbps); }

  /// Folds physical conditions into an operational state at time `now`.
  /// `devices_healthy` is the AND of both endpoint devices' health.
  [[nodiscard]] LinkState derive_state(sim::TimePoint now, bool devices_healthy,
                                       const LinkThresholds& thr = {}) const;

  /// Mean packet-loss rate implied by a state; used by telemetry monitors.
  [[nodiscard]] static double loss_rate(LinkState s);
};

/// Multiplier on p99 flow-completion latency caused by a link's loss rate —
/// the "curse of a flapping link" (§1). A simple retransmission model:
/// each lost packet adds an RTO-scale delay to the tail.
[[nodiscard]] double tail_latency_factor(double loss);

/// Which impaired states may still carry traffic for a path query. Lives here
/// (rather than routing.h) so the connectivity cache can key its per-policy
/// forests without pulling in the full routing interface.
struct PathPolicy {
  /// Whether Flapping links may carry traffic (connected but lossy).
  bool use_flapping = true;
  /// Whether Degraded links may carry traffic.
  bool use_degraded = true;
};

[[nodiscard]] bool link_usable(const Link& l, const PathPolicy& policy);

}  // namespace smn::net
