#include "net/domain.h"

#include <algorithm>

namespace smn::net {

DomainGraph::DomainGraph(const topology::CampusBlueprint& campus) {
  campus.validate();
  peers_.resize(campus.halls.size());
  for (const topology::CrossHallLink& l : campus.cross_links) {
    peers_[static_cast<std::size_t>(l.hall_a)].push_back(
        {l.hall_b, l.latency, l.capacity_gbps});
    peers_[static_cast<std::size_t>(l.hall_b)].push_back(
        {l.hall_a, l.latency, l.capacity_gbps});
    if (l.latency < min_latency_) min_latency_ = l.latency;
    coupled_ = true;
  }
  for (std::vector<DomainPeer>& ps : peers_) {
    std::sort(ps.begin(), ps.end(), [](const DomainPeer& a, const DomainPeer& b) {
      return a.hall != b.hall ? a.hall < b.hall : a.latency < b.latency;
    });
  }
}

sim::Duration DomainGraph::latency(int src, int dst) const {
  for (const DomainPeer& p : peers(src)) {
    if (p.hall == dst) return p.latency;
  }
  return sim::Duration::max();
}

}  // namespace smn::net
