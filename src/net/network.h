// The live network: devices and links instantiated from a topology
// Blueprint, with hardware diversity assigned and state-change notification.
//
// Network is the single source of truth for hardware condition. Fault
// processes and repair actions mutate link conditions and then call
// `refresh_link`, which re-derives the operational state and notifies
// observers (telemetry, availability trackers).
//
// Derived hot-path caches (and their invalidation rules):
//   * role rosters (`servers`, `devices_with_role`) — roles are immutable for
//     a Network's lifetime, so these are built once at construction and
//     returned by const reference.
//   * parallel-link groups (`links_between`) — maintained incrementally:
//     populated at construction and updated by `rewire`, the only operation
//     that changes link endpoints.
//   * CSR adjacency (`adjacency`) — flat (peer, link) arrays mirroring
//     `links_at` row order, rebuilt lazily after `rewire`.
//   * the ConnectivityEngine (`connectivity`) — generation-stamped union-find
//     reachability cache; see net/connectivity.h for its invalidation rules.
// All four are pure caches over the authoritative device/link state: they
// never draw randomness or schedule events, so simulation traces are
// byte-identical with or without them.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "net/connectivity.h"
#include "net/link.h"
#include "obs/obs.h"
#include "net/transceiver.h"
#include "net/types.h"
#include "sim/event_queue.h"
#include "sim/rng.h"
#include "topology/blueprint.h"

namespace smn::net {

struct Device {
  DeviceId id;
  std::string name;
  topology::NodeRole role = topology::NodeRole::kServer;
  topology::RackLocation location;
  bool healthy = true;
  int topology_node_index = -1;
  /// Modular chassis switches group ports into line cards (§3.2 mentions
  /// line-card replacement as a repair stage). 0 = monolithic (no cards).
  int ports_per_linecard = 0;
  std::vector<bool> linecards_healthy;

  [[nodiscard]] bool has_linecards() const { return ports_per_linecard > 0; }
  [[nodiscard]] int card_of(int port) const {
    return has_linecards() ? port / ports_per_linecard : 0;
  }
  [[nodiscard]] bool card_healthy(int port) const {
    if (!has_linecards()) return true;
    const int card = card_of(port);
    return card >= static_cast<int>(linecards_healthy.size()) ||
           linecards_healthy[static_cast<size_t>(card)];
  }
};

/// Flat compressed-sparse-row view of the device→(peer, link) adjacency.
/// Row order matches `Network::links_at` exactly, so a BFS over the CSR
/// visits neighbours in the same order as one over the jagged index — a
/// requirement for byte-identical paths.
struct CsrAdjacency {
  std::vector<std::int32_t> offsets;  // devices()+1 row offsets into peer/link
  std::vector<DeviceId> peer;
  std::vector<LinkId> link;

  /// [begin, end) index range of a device's row.
  [[nodiscard]] std::pair<std::int32_t, std::int32_t> row(DeviceId d) const {
    const auto i = static_cast<std::size_t>(d.value());
    return {offsets[i], offsets[i + 1]};
  }
};

class Network {
 public:
  struct Config {
    LinkThresholds thresholds;
    /// Medium assignment cutoffs by routed cable length (§3.1).
    double dac_max_m = 3.0;
    double aec_max_m = 7.0;
    double aoc_max_m = 30.0;
    /// Number of transceiver vendors in the fleet; more vendors = more SKU
    /// diversity for the robots (§4 "tens of different designs").
    int vendor_count = 5;
    /// Ports per line card on chassis-class switches (core/agg/spine); ToRs,
    /// rail switches and servers are monolithic. 0 disables line cards.
    int chassis_ports_per_linecard = 16;
    std::uint64_t seed = 42;
  };

  /// Observer invoked after a link's derived state changes.
  using Observer =
      std::function<void(const Link&, LinkState old_state, LinkState new_state)>;

  Network(const topology::Blueprint& bp, const Config& cfg, sim::Simulator& sim);

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  [[nodiscard]] const std::vector<Device>& devices() const { return devices_; }
  [[nodiscard]] const std::vector<Link>& links() const { return links_; }
  [[nodiscard]] const Device& device(DeviceId id) const {
    return devices_.at(static_cast<size_t>(id.value()));
  }
  [[nodiscard]] const Link& link(LinkId id) const {
    return links_.at(static_cast<size_t>(id.value()));
  }
  /// Mutable access for fault/repair code; call refresh_link afterwards.
  [[nodiscard]] Link& link_mut(LinkId id) { return links_.at(static_cast<size_t>(id.value())); }

  [[nodiscard]] const topology::Blueprint& blueprint() const { return blueprint_; }
  [[nodiscard]] const Config& config() const { return cfg_; }
  [[nodiscard]] sim::TimePoint now() const { return sim_->now(); }
  [[nodiscard]] sim::Simulator& simulator() { return *sim_; }

  /// Links incident to a device.
  [[nodiscard]] const std::vector<LinkId>& links_at(DeviceId id) const {
    return device_links_.at(static_cast<size_t>(id.value()));
  }
  /// (peer device, link) adjacency of a device, live links only.
  [[nodiscard]] std::vector<std::pair<DeviceId, LinkId>> live_neighbors(DeviceId id) const;

  /// Devices of a role, in id order. Cached: roles never change after
  /// construction, so the returned reference is stable for the Network's
  /// lifetime.
  [[nodiscard]] const std::vector<DeviceId>& devices_with_role(topology::NodeRole role) const;
  /// All non-switch devices (servers and GPU servers), in id order. Cached.
  [[nodiscard]] const std::vector<DeviceId>& servers() const { return servers_; }
  /// The parallel-link (LAG) group between two adjacent devices, in the same
  /// order the links appear in `links_at(a)`. Backed by the precomputed group
  /// index; the reference is invalidated by `rewire`.
  [[nodiscard]] const std::vector<LinkId>& links_between(DeviceId a, DeviceId b) const;

  /// Flat adjacency for BFS hot loops; rebuilt lazily after `rewire`.
  [[nodiscard]] const CsrAdjacency& adjacency() const;

  /// The reachability cache bound to this network (one per Network, so one
  /// per World — sweep workers share nothing). Callable on a const Network:
  /// the engine only ever caches derived state.
  [[nodiscard]] ConnectivityEngine& connectivity() const { return *connectivity_; }

  /// Generation counters backing cache invalidation: `state_generation`
  /// advances whenever any link's derived state changes; `structure_generation`
  /// advances when `rewire` changes link endpoints.
  [[nodiscard]] std::uint64_t state_generation() const { return state_generation_; }
  [[nodiscard]] std::uint64_t structure_generation() const { return structure_generation_; }

  /// Re-derives a link's state from its conditions; notifies observers on
  /// change. Returns the (possibly unchanged) state.
  LinkState refresh_link(LinkId id);
  void refresh_links_of(DeviceId id);
  void refresh_all();

  /// Physically re-terminates a link at new endpoints (§4 "The robotics that
  /// enables a self-maintaining network will also be able to deploy arbitrary
  /// topologies"): assigns fresh ports, re-routes the cable through the
  /// trays, re-assigns the medium for the new length, and updates the
  /// embedded blueprint so downstream consumers (cascade adjacency, metrics)
  /// can re-derive. Hardware condition is reset (it is a new cable run).
  void rewire(LinkId id, DeviceId new_a, DeviceId new_b);

  void set_device_health(DeviceId id, bool healthy);
  /// Fails/repairs one line card; refreshes the links whose ports sit on it.
  void set_linecard_health(DeviceId id, int card, bool healthy);

  void subscribe(Observer obs) { observers_.push_back(std::move(obs)); }

  /// Wires observability: registers the net_* instruments and seeds the
  /// link-state gauges from the current fleet. Pure observer — records state
  /// changes, never causes them — so traces stay byte-identical with it off.
  void set_obs(obs::Obs* o);

  [[nodiscard]] std::size_t count_links(LinkState s) const;
  /// True if a link's traffic can pass (not Down).
  [[nodiscard]] bool usable(LinkId id) const { return link(id).state != LinkState::kDown; }

  /// Distinct transceiver SKUs present, a fleet-diversity statistic the
  /// robot vision/grasp models consume.
  [[nodiscard]] std::size_t transceiver_sku_count() const;

  /// Aborts (via SMN_ASSERT) on referential-integrity violations: id/index
  /// agreement, endpoint device ids in range, the device→links adjacency
  /// mirroring link endpoints exactly, and physical conditions within their
  /// documented ranges (contamination/oxidation/wear ∈ [0, 1]).
  void check_invariants() const;

 private:
  void assign_hardware(sim::RngStream& rng, Link& link);
  void build_role_rosters();
  // Metric/trace/recorder sinks for one state change (no-op until set_obs).
  void observe_transition(const Link& l, LinkState prev, LinkState next);
  /// Unordered endpoint pair key for the parallel-link group index.
  [[nodiscard]] static std::uint64_t pair_key(DeviceId a, DeviceId b) {
    const auto lo = static_cast<std::uint32_t>(std::min(a.value(), b.value()));
    const auto hi = static_cast<std::uint32_t>(std::max(a.value(), b.value()));
    return (static_cast<std::uint64_t>(lo) << 32) | hi;
  }

  Config cfg_;
  topology::Blueprint blueprint_;
  sim::Simulator* sim_;
  std::vector<Device> devices_;
  std::vector<Link> links_;
  std::vector<std::vector<LinkId>> device_links_;
  std::vector<Observer> observers_;

  // Derived caches — see the class comment for invalidation rules.
  std::vector<DeviceId> servers_;
  std::vector<std::vector<DeviceId>> role_rosters_;  // indexed by NodeRole
  std::unordered_map<std::uint64_t, std::vector<LinkId>> link_groups_;
  std::uint64_t state_generation_ = 0;
  std::uint64_t structure_generation_ = 0;
  mutable CsrAdjacency csr_;
  mutable std::uint64_t csr_structure_generation_ = ~std::uint64_t{0};
  mutable std::unique_ptr<ConnectivityEngine> connectivity_;

  // Observability handles (all null until set_obs; see that method).
  obs::Counter* obs_transitions_ = nullptr;
  obs::Gauge* obs_links_down_ = nullptr;
  obs::Gauge* obs_links_impaired_ = nullptr;
  obs::TraceBuffer* obs_trace_ = nullptr;
  obs::FlightRecorder* obs_recorder_ = nullptr;
};

}  // namespace smn::net
