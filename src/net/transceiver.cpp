#include "net/transceiver.h"

namespace smn::net {

const char* to_string(CableMedium m) {
  switch (m) {
    case CableMedium::kDac: return "DAC";
    case CableMedium::kAec: return "AEC";
    case CableMedium::kAoc: return "AOC";
    case CableMedium::kLcOptical: return "LC-optical";
    case CableMedium::kMpoOptical: return "MPO-optical";
  }
  return "?";
}

const char* to_string(FormFactor f) {
  switch (f) {
    case FormFactor::kSfp28: return "SFP28";
    case FormFactor::kQsfp28: return "QSFP28";
    case FormFactor::kQsfpDd: return "QSFP-DD";
    case FormFactor::kOsfp: return "OSFP";
  }
  return "?";
}

const char* to_string(TabStyle t) {
  switch (t) {
    case TabStyle::kPullTab: return "pull-tab";
    case TabStyle::kBail: return "bail";
    case TabStyle::kRigidTab: return "rigid-tab";
    case TabStyle::kRecessed: return "recessed";
  }
  return "?";
}

std::string TransceiverModel::describe() const {
  std::string s = to_string(form_factor);
  s += "/";
  s += to_string(tab);
  s += "/v";
  s += std::to_string(static_cast<int>(vendor));
  if (angled_end_face) s += "/APC";
  return s;
}

int core_count(CableMedium m, double capacity_gbps) {
  if (m != CableMedium::kMpoOptical) return 1;
  // One fiber pair currently carries ~100 Gbps (§3.2), so an MPO cable for an
  // N x 100G link bundles N cores (8 for 800G).
  const int cores = static_cast<int>(capacity_gbps / 100.0);
  return cores < 2 ? 2 : cores;
}

}  // namespace smn::net
