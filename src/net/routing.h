// Path queries over the live network.
//
// The availability experiments ask "can these servers still reach each
// other", "how many of this leaf's uplinks survive", and "what fraction of
// server pairs are connected" — the quantities the paper's overprovisioning
// argument (§1) trades against repair speed.
#pragma once

#include <optional>
#include <vector>

#include "net/network.h"
#include "sim/rng.h"

namespace smn::net {

struct PathPolicy {
  /// Whether Flapping links may carry traffic (connected but lossy).
  bool use_flapping = true;
  /// Whether Degraded links may carry traffic.
  bool use_degraded = true;
};

[[nodiscard]] bool link_usable(const Link& l, const PathPolicy& policy);

/// BFS shortest path by hop count; empty if unreachable.
[[nodiscard]] std::vector<DeviceId> shortest_path(const Network& net, DeviceId from,
                                                  DeviceId to, const PathPolicy& policy = {});

[[nodiscard]] bool path_available(const Network& net, DeviceId from, DeviceId to,
                                  const PathPolicy& policy = {});

/// Fraction of `samples` random server pairs that are mutually reachable.
[[nodiscard]] double sampled_pair_connectivity(const Network& net, sim::RngStream& rng,
                                               int samples, const PathPolicy& policy = {});

/// Count of usable parallel links between two adjacent devices (the E5
/// redundancy measure for leaf->spine uplinks).
[[nodiscard]] int live_parallel_links(const Network& net, DeviceId a, DeviceId b,
                                      const PathPolicy& policy = {});

/// Fraction of a device's links that are usable (e.g. a GPU server's rails).
[[nodiscard]] double live_link_fraction(const Network& net, DeviceId d,
                                        const PathPolicy& policy = {});

/// Worst-case loss rate along a path (max over links).
[[nodiscard]] std::optional<double> path_loss(const Network& net,
                                              const std::vector<DeviceId>& path);

}  // namespace smn::net
