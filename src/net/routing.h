// Path queries over the live network.
//
// The availability experiments ask "can these servers still reach each
// other", "how many of this leaf's uplinks survive", and "what fraction of
// server pairs are connected" — the quantities the paper's overprovisioning
// argument (§1) trades against repair speed.
//
// `shortest_path` and `path_available` are now thin wrappers over the
// network's ConnectivityEngine (net/connectivity.h): reachability comes from
// a generation-stamped union-find instead of a fresh BFS per query.
// `path_available_bfs` keeps the original allocating BFS verbatim as the
// reference implementation the differential tests and benchmarks compare
// against. PathPolicy and link_usable live in net/link.h.
#pragma once

#include <optional>
#include <vector>

#include "net/network.h"
#include "sim/rng.h"

namespace smn::net {

/// BFS shortest path by hop count; empty if unreachable.
[[nodiscard]] std::vector<DeviceId> shortest_path(const Network& net, DeviceId from,
                                                  DeviceId to, const PathPolicy& policy = {});

[[nodiscard]] bool path_available(const Network& net, DeviceId from, DeviceId to,
                                  const PathPolicy& policy = {});

/// Reference reachability: the pre-engine from-scratch BFS, kept verbatim.
/// O(V+E) per call — use only for differential testing and benchmarking.
[[nodiscard]] bool path_available_bfs(const Network& net, DeviceId from, DeviceId to,
                                      const PathPolicy& policy = {});

/// Fraction of `samples` random server pairs that are mutually reachable.
[[nodiscard]] double sampled_pair_connectivity(const Network& net, sim::RngStream& rng,
                                               int samples, const PathPolicy& policy = {});

/// Reference counterpart of `sampled_pair_connectivity` running on the BFS;
/// draws the identical RNG sequence, so results must match bit-for-bit.
[[nodiscard]] double sampled_pair_connectivity_bfs(const Network& net, sim::RngStream& rng,
                                                   int samples, const PathPolicy& policy = {});

/// Count of usable parallel links between two adjacent devices (the E5
/// redundancy measure for leaf->spine uplinks).
[[nodiscard]] int live_parallel_links(const Network& net, DeviceId a, DeviceId b,
                                      const PathPolicy& policy = {});

/// Fraction of a device's links that are usable (e.g. a GPU server's rails).
[[nodiscard]] double live_link_fraction(const Network& net, DeviceId d,
                                        const PathPolicy& policy = {});

/// Worst-case loss rate along a path (max over links).
[[nodiscard]] std::optional<double> path_loss(const Network& net,
                                              const std::vector<DeviceId>& path);

}  // namespace smn::net
