// Flow-level traffic engine: demand matrices, ECMP routing over the live
// network, link loads, and tail-latency estimation.
//
// §1: "Layers in the network stack will ensure retransmission of lost
// packets, the curse of a flapping link is the associated increase in tail
// latency for the network." This module turns link states into the
// application-visible quantity that sentence is about: the p99
// flow-completion-time inflation across a demand matrix (experiment E13).
// It also gives the reconfiguration engine (E14) its objective function.
#pragma once

#include <array>
#include <vector>

#include "net/network.h"
#include "net/routing.h"
#include "obs/metrics.h"
#include "sim/rng.h"

namespace smn::net {

struct Flow {
  DeviceId src;
  DeviceId dst;
  double gbps = 1.0;
};

/// A set of server-to-server demands.
class TrafficMatrix {
 public:
  std::vector<Flow> flows;

  [[nodiscard]] double total_demand_gbps() const;

  /// All-to-all-ish uniform random pairs: `pairs` flows of `gbps` each.
  [[nodiscard]] static TrafficMatrix uniform(const Network& net, int pairs, double gbps,
                                             sim::RngStream& rng);

  /// Skewed: `hot_fraction` of servers receive `hot_share` of the demand —
  /// the elephant pattern that makes static fabrics a poor fit (§4
  /// reconfigurable topologies).
  [[nodiscard]] static TrafficMatrix skewed(const Network& net, int pairs, double gbps,
                                            double hot_fraction, double hot_share,
                                            sim::RngStream& rng);
};

/// Attribution of a routed flow's tail-latency factor to the worst link
/// state on its path. Lossy states dominate: any Flapping link on the path
/// wins, then any Degraded link. A flow whose links are all clean but whose
/// shortest usable path is longer than the pristine-fabric distance was
/// rerouted around Down links — near-unity tail factor, but real exposure
/// the drill-down (E13) must not fold into "up".
enum class TailState : std::uint8_t { kUp = 0, kImpaired, kFlapping, kDownRerouted };
inline constexpr std::size_t kTailStateCount = 4;
[[nodiscard]] const char* to_string(TailState s);

/// Per-flow routing outcome, kept for drill-down and the differential
/// attribution oracle. Only routed flows appear (unroutable flows are
/// counted in LoadReport::unroutable_flows).
struct FlowOutcome {
  std::size_t flow_index = 0;  // index into TrafficMatrix::flows
  TailState state = TailState::kUp;
  double tail_factor = 1.0;
  double gbps = 0;
};

/// Per-attribution-state aggregate over one routed matrix.
struct TailBucket {
  std::size_t flows = 0;
  double demand_gbps = 0;
  double tail_sum = 0;  // unweighted sum of per-flow tail factors
  double worst_tail = 1.0;
};

/// The result of routing a matrix over the current link states.
struct LoadReport {
  double demand_gbps = 0;
  /// Demand actually delivered after bottleneck clipping.
  double delivered_gbps = 0;
  std::size_t unroutable_flows = 0;
  double max_link_utilization = 0;
  double mean_link_utilization = 0;  // over links carrying load
  /// Demand-weighted p99 of the per-flow tail-latency factor (1.0 = no loss
  /// anywhere on the path; grows with flapping links en route).
  double p99_tail_factor = 1.0;
  double mean_tail_factor = 1.0;
  std::vector<double> link_load_gbps;  // indexed by LinkId
  /// Tail-latency decomposition by worst-path-link state, indexed by
  /// static_cast<std::size_t>(TailState).
  std::array<TailBucket, kTailStateCount> tail_by_state;
  /// Routed flows in matrix order.
  std::vector<FlowOutcome> flow_outcomes;
};

/// Routes every flow over ECMP shortest paths (equal split across the
/// shortest-path DAG, including across parallel links), accumulates link
/// loads, clips to capacity, and estimates tail-latency inflation from the
/// loss rates of the links each flow traverses.
[[nodiscard]] LoadReport route_and_load(const Network& net, const TrafficMatrix& tm,
                                        const PathPolicy& policy = {});

/// Bucket upper edges shared by the per-state FCT-factor histograms. The
/// loss model caps the factor at 100 (1 + 99·P[any loss]), so the edges span
/// [1, 100] with resolution around the 2x/10x claims E13 quotes.
[[nodiscard]] const std::vector<double>& fct_factor_bounds();

/// Feeds LoadReports into an obs registry: one FCT-factor histogram per
/// attribution state (`net_fct_factor_<state>`) plus an unroutable-flow
/// counter. Instruments are registered eagerly at wiring time so every
/// replicate snapshots the same schema whether or not traffic ever ran.
/// Pure observer: never mutates the network or draws randomness.
class TrafficInstruments {
 public:
  TrafficInstruments() = default;
  explicit TrafficInstruments(obs::Registry& reg);

  /// Records every routed flow's tail factor into its state's histogram.
  void observe(const LoadReport& report);

 private:
  std::array<obs::Histogram*, kTailStateCount> fct_factor_{};
  obs::Counter* unroutable_ = nullptr;
};

}  // namespace smn::net
