// Flow-level traffic engine: demand matrices, ECMP routing over the live
// network, link loads, and tail-latency estimation.
//
// §1: "Layers in the network stack will ensure retransmission of lost
// packets, the curse of a flapping link is the associated increase in tail
// latency for the network." This module turns link states into the
// application-visible quantity that sentence is about: the p99
// flow-completion-time inflation across a demand matrix (experiment E13).
// It also gives the reconfiguration engine (E14) its objective function.
#pragma once

#include <vector>

#include "net/network.h"
#include "net/routing.h"
#include "sim/rng.h"

namespace smn::net {

struct Flow {
  DeviceId src;
  DeviceId dst;
  double gbps = 1.0;
};

/// A set of server-to-server demands.
class TrafficMatrix {
 public:
  std::vector<Flow> flows;

  [[nodiscard]] double total_demand_gbps() const;

  /// All-to-all-ish uniform random pairs: `pairs` flows of `gbps` each.
  [[nodiscard]] static TrafficMatrix uniform(const Network& net, int pairs, double gbps,
                                             sim::RngStream& rng);

  /// Skewed: `hot_fraction` of servers receive `hot_share` of the demand —
  /// the elephant pattern that makes static fabrics a poor fit (§4
  /// reconfigurable topologies).
  [[nodiscard]] static TrafficMatrix skewed(const Network& net, int pairs, double gbps,
                                            double hot_fraction, double hot_share,
                                            sim::RngStream& rng);
};

/// The result of routing a matrix over the current link states.
struct LoadReport {
  double demand_gbps = 0;
  /// Demand actually delivered after bottleneck clipping.
  double delivered_gbps = 0;
  std::size_t unroutable_flows = 0;
  double max_link_utilization = 0;
  double mean_link_utilization = 0;  // over links carrying load
  /// Demand-weighted p99 of the per-flow tail-latency factor (1.0 = no loss
  /// anywhere on the path; grows with flapping links en route).
  double p99_tail_factor = 1.0;
  double mean_tail_factor = 1.0;
  std::vector<double> link_load_gbps;  // indexed by LinkId
};

/// Routes every flow over ECMP shortest paths (equal split across the
/// shortest-path DAG, including across parallel links), accumulates link
/// loads, clips to capacity, and estimates tail-latency inflation from the
/// loss rates of the links each flow traverses.
[[nodiscard]] LoadReport route_and_load(const Network& net, const TrafficMatrix& tm,
                                        const PathPolicy& policy = {});

}  // namespace smn::net
