// Domain partitioning over a campus: the per-hall adjacency view a sharded
// run needs, derived once from a topology::CampusBlueprint.
//
// A *domain* is one hall — one Network, one Simulator, one set of fault
// processes and fleets — and domains never share mutable state. What crosses
// domains is messages, and the only facts the exchange layer needs are
// captured here: which halls are adjacent, at what latency and capacity, and
// the minimum cross-domain latency (the conservative lookahead that bounds
// the epoch length; see sim/epoch.h).
#pragma once

#include <cstddef>
#include <vector>

#include "sim/time.h"
#include "topology/campus.h"

namespace smn::net {

/// One directed cross-domain edge as seen from a source hall.
struct DomainPeer {
  int hall = -1;  // destination hall index
  sim::Duration latency;
  double capacity_gbps = 0.0;
};

/// The validated, per-hall view of a campus's cross links. Construction
/// validates the blueprint (throws std::logic_error on dangling indices,
/// self-loops, or non-positive latency).
class DomainGraph {
 public:
  explicit DomainGraph(const topology::CampusBlueprint& campus);

  [[nodiscard]] std::size_t domains() const { return peers_.size(); }

  /// Outbound peers of `hall`, sorted by destination hall index — the
  /// deterministic iteration order every cross-domain producer uses.
  [[nodiscard]] const std::vector<DomainPeer>& peers(int hall) const {
    return peers_.at(static_cast<std::size_t>(hall));
  }

  [[nodiscard]] bool coupled() const { return coupled_; }

  /// Minimum latency over all cross links — the conservative lookahead.
  /// Only meaningful when coupled(); Duration::max() otherwise.
  [[nodiscard]] sim::Duration min_latency() const { return min_latency_; }

  /// Latency from `src` to `dst`; Duration::max() when not adjacent.
  [[nodiscard]] sim::Duration latency(int src, int dst) const;

 private:
  std::vector<std::vector<DomainPeer>> peers_;  // indexed by source hall
  sim::Duration min_latency_ = sim::Duration::max();
  bool coupled_ = false;
};

}  // namespace smn::net
