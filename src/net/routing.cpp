#include "net/routing.h"

#include <algorithm>
#include <queue>

namespace smn::net {

std::vector<DeviceId> shortest_path(const Network& net, DeviceId from, DeviceId to,
                                    const PathPolicy& policy) {
  return net.connectivity().shortest_path(from, to, policy);
}

bool path_available(const Network& net, DeviceId from, DeviceId to,
                    const PathPolicy& policy) {
  return net.connectivity().connected(from, to, policy);
}

bool path_available_bfs(const Network& net, DeviceId from, DeviceId to,
                        const PathPolicy& policy) {
  if (from == to) return true;
  const int n = static_cast<int>(net.devices().size());
  std::vector<int> parent(static_cast<size_t>(n), -2);  // -2 unvisited, -1 root
  std::queue<DeviceId> q;
  parent[static_cast<size_t>(from.value())] = -1;
  q.push(from);
  while (!q.empty()) {
    const DeviceId cur = q.front();
    q.pop();
    for (const LinkId lid : net.links_at(cur)) {
      const Link& l = net.link(lid);
      if (!link_usable(l, policy)) continue;
      const DeviceId peer = l.end_a.device == cur ? l.end_b.device : l.end_a.device;
      if (!net.device(peer).healthy) continue;
      auto& p = parent[static_cast<size_t>(peer.value())];
      if (p != -2) continue;
      p = cur.value();
      if (peer == to) return true;
      q.push(peer);
    }
  }
  return false;
}

double sampled_pair_connectivity(const Network& net, sim::RngStream& rng, int samples,
                                 const PathPolicy& policy) {
  const std::vector<DeviceId>& servers = net.servers();
  if (servers.size() < 2 || samples <= 0) return 1.0;
  int ok = 0;
  for (int i = 0; i < samples; ++i) {
    const DeviceId a = servers[rng.index(servers.size())];
    DeviceId b = a;
    while (b == a) b = servers[rng.index(servers.size())];
    if (path_available(net, a, b, policy)) ++ok;
  }
  return static_cast<double>(ok) / samples;
}

double sampled_pair_connectivity_bfs(const Network& net, sim::RngStream& rng, int samples,
                                     const PathPolicy& policy) {
  const std::vector<DeviceId>& servers = net.servers();
  if (servers.size() < 2 || samples <= 0) return 1.0;
  int ok = 0;
  for (int i = 0; i < samples; ++i) {
    const DeviceId a = servers[rng.index(servers.size())];
    DeviceId b = a;
    while (b == a) b = servers[rng.index(servers.size())];
    if (path_available_bfs(net, a, b, policy)) ++ok;
  }
  return static_cast<double>(ok) / samples;
}

int live_parallel_links(const Network& net, DeviceId a, DeviceId b,
                        const PathPolicy& policy) {
  int live = 0;
  for (const LinkId lid : net.links_between(a, b)) {
    if (link_usable(net.link(lid), policy)) ++live;
  }
  return live;
}

double live_link_fraction(const Network& net, DeviceId d, const PathPolicy& policy) {
  const auto& lids = net.links_at(d);
  if (lids.empty()) return 1.0;
  int live = 0;
  for (const LinkId lid : lids) {
    if (link_usable(net.link(lid), policy)) ++live;
  }
  return static_cast<double>(live) / static_cast<double>(lids.size());
}

std::optional<double> path_loss(const Network& net, const std::vector<DeviceId>& path) {
  if (path.empty()) return std::nullopt;
  double worst = 0.0;
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    // Use the best (lowest-loss) parallel link between consecutive hops, as
    // ECMP would steer around the sick member of a LAG. The group differs per
    // hop, so the lookup belongs in the loop. smn-lint: allow(hot-copy)
    double best = 1.0;
    for (const LinkId lid : net.links_between(path[i], path[i + 1])) {
      const Link& l = net.link(lid);
      if (l.state == LinkState::kDown) continue;
      best = std::min(best, Link::loss_rate(l.state));
    }
    worst = std::max(worst, best);
  }
  return worst;
}

}  // namespace smn::net
