#include "net/network.h"

#include <set>
#include <stdexcept>

#include "core/check.h"

namespace smn::net {

Network::Network(const topology::Blueprint& bp, const Config& cfg, sim::Simulator& sim)
    : cfg_{cfg}, blueprint_{bp}, sim_{&sim} {
  blueprint_.validate();
  sim::RngFactory rngs{cfg_.seed};
  sim::RngStream hw_rng = rngs.stream("network.hardware");

  devices_.reserve(blueprint_.nodes().size());
  for (int i = 0; i < static_cast<int>(blueprint_.nodes().size()); ++i) {
    const topology::NodeSpec& n = blueprint_.node(i);
    Device dev{DeviceId{i}, n.name, n.role, n.location, true, i, 0, {}};
    const bool chassis = n.role == topology::NodeRole::kCoreSwitch ||
                         n.role == topology::NodeRole::kAggSwitch ||
                         n.role == topology::NodeRole::kSpineSwitch;
    if (chassis && cfg_.chassis_ports_per_linecard > 0) {
      dev.ports_per_linecard = cfg_.chassis_ports_per_linecard;
      const int cards =
          (n.ports_used + dev.ports_per_linecard - 1) / dev.ports_per_linecard;
      dev.linecards_healthy.assign(static_cast<size_t>(std::max(1, cards)), true);
    }
    devices_.push_back(std::move(dev));
  }
  device_links_.resize(devices_.size());

  links_.reserve(blueprint_.links().size());
  for (int i = 0; i < static_cast<int>(blueprint_.links().size()); ++i) {
    const topology::LinkSpec& ls = blueprint_.link(i);
    Link link;
    link.id = LinkId{i};
    link.topology_link_index = i;
    link.end_a.device = DeviceId{ls.node_a};
    link.end_a.port = ls.port_a;
    link.end_b.device = DeviceId{ls.node_b};
    link.end_b.port = ls.port_b;
    link.capacity_gbps = ls.capacity_gbps;
    link.length_m = ls.route.length_m;
    assign_hardware(hw_rng, link);
    device_links_[static_cast<size_t>(ls.node_a)].push_back(link.id);
    device_links_[static_cast<size_t>(ls.node_b)].push_back(link.id);
    link_groups_[pair_key(link.end_a.device, link.end_b.device)].push_back(link.id);
    links_.push_back(std::move(link));
  }
  build_role_rosters();
  connectivity_ = std::make_unique<ConnectivityEngine>(*this);
  refresh_all();
}

void Network::build_role_rosters() {
  role_rosters_.assign(static_cast<std::size_t>(topology::NodeRole::kGpuServer) + 1, {});
  for (const Device& d : devices_) {
    role_rosters_[static_cast<std::size_t>(d.role)].push_back(d.id);
    if (!topology::is_switch(d.role)) servers_.push_back(d.id);
  }
}

void Network::assign_hardware(sim::RngStream& rng, Link& link) {
  if (link.length_m <= cfg_.dac_max_m) {
    link.medium = CableMedium::kDac;
  } else if (link.length_m <= cfg_.aec_max_m) {
    link.medium = CableMedium::kAec;
  } else if (link.length_m <= cfg_.aoc_max_m) {
    link.medium = CableMedium::kAoc;
  } else {
    link.medium =
        link.capacity_gbps > 100.0 ? CableMedium::kMpoOptical : CableMedium::kLcOptical;
  }

  TransceiverModel model;
  if (link.capacity_gbps <= 25.0) {
    model.form_factor = FormFactor::kSfp28;
  } else if (link.capacity_gbps <= 100.0) {
    model.form_factor = FormFactor::kQsfp28;
  } else if (link.capacity_gbps <= 400.0) {
    model.form_factor = rng.bernoulli(0.5) ? FormFactor::kQsfpDd : FormFactor::kOsfp;
  } else {
    model.form_factor = FormFactor::kOsfp;
  }
  model.vendor = static_cast<std::uint8_t>(rng.uniform_int(0, cfg_.vendor_count - 1));
  // Tab style correlates with vendor but not perfectly — the diversity that
  // bites robot grippers.
  const int tab = (model.vendor + static_cast<int>(rng.uniform_int(0, 1))) % 4;
  model.tab = static_cast<TabStyle>(tab);
  model.angled_end_face = link.medium == CableMedium::kMpoOptical && rng.bernoulli(0.5);

  link.end_a.model = model;
  link.end_b.model = model;
}

std::vector<std::pair<DeviceId, LinkId>> Network::live_neighbors(DeviceId id) const {
  std::vector<std::pair<DeviceId, LinkId>> out;
  for (const LinkId lid : links_at(id)) {
    const Link& l = link(lid);
    if (l.state == LinkState::kDown) continue;
    const DeviceId peer = l.end_a.device == id ? l.end_b.device : l.end_a.device;
    out.emplace_back(peer, lid);
  }
  return out;
}

const std::vector<DeviceId>& Network::devices_with_role(topology::NodeRole role) const {
  return role_rosters_.at(static_cast<std::size_t>(role));
}

const std::vector<LinkId>& Network::links_between(DeviceId a, DeviceId b) const {
  static const std::vector<LinkId> kEmpty;
  const auto it = link_groups_.find(pair_key(a, b));
  return it == link_groups_.end() ? kEmpty : it->second;
}

const CsrAdjacency& Network::adjacency() const {
  if (csr_structure_generation_ == structure_generation_) return csr_;
  csr_.offsets.assign(devices_.size() + 1, 0);
  csr_.peer.clear();
  csr_.link.clear();
  csr_.peer.reserve(links_.size() * 2);
  csr_.link.reserve(links_.size() * 2);
  for (std::size_t d = 0; d < device_links_.size(); ++d) {
    const DeviceId dev{static_cast<std::int32_t>(d)};
    for (const LinkId lid : device_links_[d]) {
      const Link& l = links_[static_cast<std::size_t>(lid.value())];
      csr_.peer.push_back(l.end_a.device == dev ? l.end_b.device : l.end_a.device);
      csr_.link.push_back(lid);
    }
    csr_.offsets[d + 1] = static_cast<std::int32_t>(csr_.peer.size());
  }
  csr_structure_generation_ = structure_generation_;
  return csr_;
}

LinkState Network::refresh_link(LinkId id) {
  Link& l = links_.at(static_cast<size_t>(id.value()));
  const Device& da = device(l.end_a.device);
  const Device& db = device(l.end_b.device);
  const bool devices_healthy = da.healthy && db.healthy &&
                               da.card_healthy(l.end_a.port) &&
                               db.card_healthy(l.end_b.port);
  const LinkState next = l.derive_state(sim_->now(), devices_healthy, cfg_.thresholds);
  if (next != l.state) {
    const LinkState prev = l.state;
    l.state = next;
    // Stamp before notifying: an observer that issues a reachability query
    // must see the post-change forest, not a stale cache.
    ++state_generation_;
    observe_transition(l, prev, next);
    for (const Observer& obs : observers_) obs(l, prev, next);
  }
  return l.state;
}

void Network::set_obs(obs::Obs* o) {
  if (o == nullptr) return;
  if (obs::Registry* reg = o->metrics()) {
    obs_transitions_ = reg->counter("net_link_transitions_total");
    obs_links_down_ = reg->gauge("net_links_down");
    obs_links_impaired_ = reg->gauge("net_links_impaired");
    // Seed the gauges from the current fleet so incremental ±1 maintenance in
    // observe_transition starts from truth, not zero.
    obs_links_down_->set(static_cast<double>(count_links(LinkState::kDown)));
    obs_links_impaired_->set(static_cast<double>(count_links(LinkState::kDegraded) +
                                                 count_links(LinkState::kFlapping)));
  }
  obs_trace_ = o->trace();
  obs_recorder_ = o->recorder();
}

void Network::observe_transition(const Link& l, LinkState prev, LinkState next) {
  const auto is_down = [](LinkState s) { return s == LinkState::kDown; };
  const auto is_impaired = [](LinkState s) {
    return s == LinkState::kDegraded || s == LinkState::kFlapping;
  };
  if (obs_transitions_ != nullptr) {
    obs_transitions_->inc();
    obs_links_down_->add(static_cast<double>(is_down(next)) - static_cast<double>(is_down(prev)));
    obs_links_impaired_->add(static_cast<double>(is_impaired(next)) -
                             static_cast<double>(is_impaired(prev)));
  }
  SMN_TRACE_STMT(if (obs_trace_ != nullptr) obs_trace_->instant(
      to_string(next), "net", sim_->now(), "link", l.id.value(), "prev", static_cast<int>(prev)));
  if (obs_recorder_ != nullptr) {
    obs_recorder_->record(sim_->now().count_us(), "link-transition", l.id.value(),
                          static_cast<std::int64_t>(next));
  }
}

void Network::refresh_links_of(DeviceId id) {
  for (const LinkId lid : links_at(id)) refresh_link(lid);
}

void Network::refresh_all() {
  for (const Link& l : links_) refresh_link(l.id);
}

void Network::set_device_health(DeviceId id, bool healthy) {
  devices_.at(static_cast<size_t>(id.value())).healthy = healthy;
  refresh_links_of(id);
}

void Network::set_linecard_health(DeviceId id, int card, bool healthy) {
  Device& dev = devices_.at(static_cast<size_t>(id.value()));
  if (!dev.has_linecards() || card < 0 ||
      card >= static_cast<int>(dev.linecards_healthy.size())) {
    throw std::out_of_range{"set_linecard_health: no such card"};
  }
  dev.linecards_healthy[static_cast<size_t>(card)] = healthy;
  refresh_links_of(id);
}

void Network::rewire(LinkId id, DeviceId new_a, DeviceId new_b) {
  if (new_a == new_b) throw std::invalid_argument{"rewire: self-loop"};
  Link& l = links_.at(static_cast<size_t>(id.value()));

  auto detach = [&](DeviceId dev) {
    auto& lids = device_links_.at(static_cast<size_t>(dev.value()));
    std::erase(lids, id);
  };
  detach(l.end_a.device);
  detach(l.end_b.device);

  // Keep the parallel-link group index in step with the adjacency rows.
  const auto old_key = pair_key(l.end_a.device, l.end_b.device);
  auto group_it = link_groups_.find(old_key);
  SMN_ASSERT(group_it != link_groups_.end(), "rewire: link %d missing from group index",
             id.value());
  std::erase(group_it->second, id);
  if (group_it->second.empty()) link_groups_.erase(group_it);

  auto next_port = [&](DeviceId dev) {
    int max_port = -1;
    for (const LinkId other : links_at(dev)) {
      const Link& o = link(other);
      max_port = std::max(max_port, o.end_a.device == dev ? o.end_a.port : o.end_b.port);
    }
    return max_port + 1;
  };

  l.end_a.device = new_a;
  l.end_a.port = next_port(new_a);
  l.end_a.condition = EndCondition{};
  l.end_b.device = new_b;
  l.end_b.port = next_port(new_b);
  l.end_b.condition = EndCondition{};
  l.cable = CableCondition{};
  l.gray_until = sim_->now();
  device_links_.at(static_cast<size_t>(new_a.value())).push_back(id);
  device_links_.at(static_cast<size_t>(new_b.value())).push_back(id);
  link_groups_[pair_key(new_a, new_b)].push_back(id);
  ++structure_generation_;

  // Re-route the physical cable and re-assign medium/SKU for the new length.
  topology::LinkSpec& spec = blueprint_.link_mut(l.topology_link_index);
  spec.node_a = new_a.value();
  spec.port_a = l.end_a.port;
  spec.node_b = new_b.value();
  spec.port_b = l.end_b.port;
  spec.route = blueprint_.layout().route_cable(device(new_a).location,
                                               device(new_b).location);
  l.length_m = spec.route.length_m;
  sim::RngFactory rngs{cfg_.seed ^ static_cast<std::uint64_t>(id.value())};
  sim::RngStream rng = rngs.stream("network.rewire");
  assign_hardware(rng, l);

  refresh_link(id);
}

std::size_t Network::count_links(LinkState s) const {
  std::size_t n = 0;
  for (const Link& l : links_) {
    if (l.state == s) ++n;
  }
  return n;
}

void Network::check_invariants() const {
  SMN_ASSERT(device_links_.size() == devices_.size(), "adjacency rows %zu != devices %zu",
             device_links_.size(), devices_.size());
  for (std::size_t i = 0; i < devices_.size(); ++i) {
    const Device& d = devices_[i];
    SMN_ASSERT(d.id.value() == static_cast<std::int32_t>(i), "device %zu holds id %d", i,
               d.id.value());
  }

  const auto in_range = [&](DeviceId id) {
    return id.valid() && id.value() < static_cast<std::int32_t>(devices_.size());
  };
  const auto unit_interval = [](double v) { return v >= 0.0 && v <= 1.0; };
  for (std::size_t i = 0; i < links_.size(); ++i) {
    const Link& l = links_[i];
    SMN_ASSERT(l.id.value() == static_cast<std::int32_t>(i), "link %zu holds id %d", i,
               l.id.value());
    SMN_ASSERT(in_range(l.end_a.device) && in_range(l.end_b.device),
               "link %d endpoints (%d, %d) out of range", l.id.value(), l.end_a.device.value(),
               l.end_b.device.value());
    SMN_ASSERT(l.end_a.device != l.end_b.device, "link %d is a self-loop", l.id.value());
    SMN_ASSERT(l.end_a.port >= 0 && l.end_b.port >= 0, "link %d has unassigned ports",
               l.id.value());
    for (const LinkEnd* end : {&l.end_a, &l.end_b}) {
      SMN_ASSERT(unit_interval(end->condition.contamination) &&
                     unit_interval(end->condition.oxidation),
                 "link %d end-face condition out of [0,1]: contamination=%f oxidation=%f",
                 l.id.value(), end->condition.contamination, end->condition.oxidation);
    }
    SMN_ASSERT(l.cable.wear >= 0.0, "link %d negative cable wear %f", l.id.value(),
               l.cable.wear);
    SMN_ASSERT(l.length_m > 0.0 && l.capacity_gbps > 0.0,
               "link %d non-physical length %f / capacity %f", l.id.value(), l.length_m,
               l.capacity_gbps);
  }

  // The adjacency index must mirror link endpoints exactly: each link appears
  // once in each endpoint's row and nowhere else.
  std::vector<int> seen(links_.size(), 0);
  for (std::size_t dev = 0; dev < device_links_.size(); ++dev) {
    for (const LinkId lid : device_links_[dev]) {
      SMN_ASSERT(lid.valid() && lid.value() < static_cast<std::int32_t>(links_.size()),
                 "device %zu lists unknown link %d", dev, lid.value());
      const Link& l = links_[static_cast<std::size_t>(lid.value())];
      const auto did = static_cast<std::int32_t>(dev);
      SMN_ASSERT(l.end_a.device.value() == did || l.end_b.device.value() == did,
                 "device %zu lists link %d it does not terminate", dev, lid.value());
      ++seen[static_cast<std::size_t>(lid.value())];
    }
  }
  for (std::size_t i = 0; i < links_.size(); ++i) {
    SMN_ASSERT(seen[i] == 2, "link %zu appears %d times in the adjacency (want 2)", i, seen[i]);
  }

  // The parallel-link group index must list every link exactly once, under
  // the key of its current endpoints.
  std::size_t grouped = 0;
  for (const auto& [key, group] : link_groups_) {
    SMN_ASSERT(!group.empty(), "group index holds empty group for key %llu",
               static_cast<unsigned long long>(key));
    for (const LinkId lid : group) {
      SMN_ASSERT(lid.valid() && lid.value() < static_cast<std::int32_t>(links_.size()),
                 "group index lists unknown link %d", lid.value());
      const Link& l = links_[static_cast<std::size_t>(lid.value())];
      SMN_ASSERT(pair_key(l.end_a.device, l.end_b.device) == key,
                 "link %d filed under stale endpoint key", lid.value());
      ++grouped;
    }
  }
  SMN_ASSERT(grouped == links_.size(), "group index holds %zu links (want %zu)", grouped,
             links_.size());

  // Role rosters partition the device set; `servers_` is exactly the
  // non-switch slice in id order.
  std::size_t rostered = 0;
  for (const auto& roster : role_rosters_) rostered += roster.size();
  SMN_ASSERT(rostered == devices_.size(), "role rosters hold %zu devices (want %zu)",
             rostered, devices_.size());
  for (const DeviceId sid : servers_) {
    SMN_ASSERT(!topology::is_switch(device(sid).role), "servers_ lists switch %d",
               sid.value());
  }

  // A fresh CSR must mirror the jagged adjacency row-for-row.
  if (csr_structure_generation_ == structure_generation_) {
    SMN_ASSERT(csr_.offsets.size() == devices_.size() + 1 &&
                   csr_.peer.size() == links_.size() * 2,
               "CSR shape (%zu offsets, %zu entries) disagrees with network",
               csr_.offsets.size(), csr_.peer.size());
    for (std::size_t dev = 0; dev < device_links_.size(); ++dev) {
      const auto begin = static_cast<std::size_t>(csr_.offsets[dev]);
      SMN_ASSERT(static_cast<std::size_t>(csr_.offsets[dev + 1]) - begin ==
                     device_links_[dev].size(),
                 "CSR row %zu length disagrees with adjacency", dev);
      for (std::size_t k = 0; k < device_links_[dev].size(); ++k) {
        SMN_ASSERT(csr_.link[begin + k] == device_links_[dev][k],
                   "CSR row %zu entry %zu out of order", dev, k);
      }
    }
  }
}

std::size_t Network::transceiver_sku_count() const {
  std::set<std::tuple<FormFactor, TabStyle, std::uint8_t, bool>> skus;
  for (const Link& l : links_) {
    const TransceiverModel& m = l.end_a.model;
    skus.insert({m.form_factor, m.tab, m.vendor, m.angled_end_face});
  }
  return skus.size();
}

}  // namespace smn::net
