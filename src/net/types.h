// Strongly-typed ids for network entities.
#pragma once

#include <cstdint>
#include <functional>

namespace smn::net {

/// CRTP-free strong id: distinct types for devices and links so they cannot
/// be swapped at a call site.
template <typename Tag>
class Id {
 public:
  constexpr Id() = default;
  constexpr explicit Id(std::int32_t v) : v_{v} {}
  [[nodiscard]] constexpr std::int32_t value() const { return v_; }
  [[nodiscard]] constexpr bool valid() const { return v_ >= 0; }
  constexpr auto operator<=>(const Id&) const = default;

 private:
  std::int32_t v_ = -1;
};

struct DeviceTag {};
struct LinkTag {};
using DeviceId = Id<DeviceTag>;
using LinkId = Id<LinkTag>;

struct IdHash {
  template <typename Tag>
  std::size_t operator()(Id<Tag> id) const {
    return std::hash<std::int32_t>{}(id.value());
  }
};

}  // namespace smn::net
