#include "net/traffic.h"

#include <algorithm>
#include <cmath>

namespace smn::net {

const char* to_string(TailState s) {
  switch (s) {
    case TailState::kUp: return "up";
    case TailState::kImpaired: return "impaired";
    case TailState::kFlapping: return "flapping";
    case TailState::kDownRerouted: return "down-rerouted";
  }
  return "?";
}

double TrafficMatrix::total_demand_gbps() const {
  double total = 0;
  for (const Flow& f : flows) total += f.gbps;
  return total;
}

TrafficMatrix TrafficMatrix::uniform(const Network& net, int pairs, double gbps,
                                     sim::RngStream& rng) {
  TrafficMatrix tm;
  const std::vector<DeviceId>& servers = net.servers();
  if (servers.size() < 2) return tm;
  tm.flows.reserve(static_cast<size_t>(pairs));
  for (int i = 0; i < pairs; ++i) {
    const DeviceId src = servers[rng.index(servers.size())];
    DeviceId dst = src;
    while (dst == src) dst = servers[rng.index(servers.size())];
    tm.flows.push_back(Flow{src, dst, gbps});
  }
  return tm;
}

TrafficMatrix TrafficMatrix::skewed(const Network& net, int pairs, double gbps,
                                    double hot_fraction, double hot_share,
                                    sim::RngStream& rng) {
  TrafficMatrix tm;
  std::vector<DeviceId> servers = net.servers();
  if (servers.size() < 2) return tm;
  rng.shuffle(servers);
  const std::size_t hot_count = std::max<std::size_t>(
      1, static_cast<std::size_t>(hot_fraction * static_cast<double>(servers.size())));
  tm.flows.reserve(static_cast<size_t>(pairs));
  for (int i = 0; i < pairs; ++i) {
    const bool hot = rng.bernoulli(hot_share);
    const std::size_t dst_idx =
        hot ? rng.index(hot_count) : hot_count + rng.index(servers.size() - hot_count);
    const DeviceId dst = servers[dst_idx];
    DeviceId src = dst;
    while (src == dst) src = servers[rng.index(servers.size())];
    tm.flows.push_back(Flow{src, dst, gbps});
  }
  return tm;
}

LoadReport route_and_load(const Network& net, const TrafficMatrix& tm,
                          const PathPolicy& policy) {
  LoadReport report;
  report.demand_gbps = tm.total_demand_gbps();
  report.link_load_gbps.assign(net.links().size(), 0.0);
  report.flow_outcomes.reserve(tm.flows.size());

  struct FlowPath {
    std::size_t flow_index = 0;
    double gbps = 0;
    double worst_loss = 0;
    LinkState worst_state = LinkState::kUp;
    TailState state = TailState::kUp;
    double bottleneck_overload = 1.0;  // max(load/capacity) along the path
    std::vector<std::pair<LinkId, double>> shares;  // link, fraction of flow
  };
  std::vector<FlowPath> placed;
  placed.reserve(tm.flows.size());

  // Distance tables are cached per destination — matrices typically hit few
  // distinct destinations relative to flow count. The BFS itself runs here,
  // outside the flow loop's body, only on a cache miss.
  std::unordered_map<std::int32_t, std::vector<int>> dist_to_dst;
  const auto policy_dist = [&](DeviceId dst) -> const std::vector<int>& {
    auto it = dist_to_dst.find(dst.value());
    if (it == dist_to_dst.end()) {
      it = dist_to_dst.emplace(dst.value(), std::vector<int>{}).first;
      net.connectivity().bfs_distances(dst, policy, it->second);
    }
    return it->second;
  };
  // Pristine-fabric distances (every link counted regardless of state), used
  // to detect detours around Down links. Cached per destination like above.
  std::unordered_map<std::int32_t, std::vector<int>> struct_to_dst;
  const auto structural_dist = [&](DeviceId dst) -> const std::vector<int>& {
    auto sit = struct_to_dst.find(dst.value());
    if (sit == struct_to_dst.end()) {
      sit = struct_to_dst.emplace(dst.value(), std::vector<int>{}).first;
      std::vector<int>& out = sit->second;
      const CsrAdjacency& adj = net.adjacency();
      out.assign(net.devices().size(), -1);
      std::vector<DeviceId> queue;
      queue.reserve(out.size());
      out[static_cast<std::size_t>(dst.value())] = 0;
      queue.push_back(dst);
      for (std::size_t head = 0; head < queue.size(); ++head) {
        const DeviceId node = queue[head];
        const int d = out[static_cast<std::size_t>(node.value())];
        const auto [begin, end] = adj.row(node);
        for (std::int32_t i = begin; i < end; ++i) {
          const DeviceId peer = adj.peer[static_cast<std::size_t>(i)];
          int& pd = out[static_cast<std::size_t>(peer.value())];
          if (pd < 0) {
            pd = d + 1;
            queue.push_back(peer);
          }
        }
      }
    }
    return sit->second;
  };

  for (std::size_t flow_index = 0; flow_index < tm.flows.size(); ++flow_index) {
    const Flow& f = tm.flows[flow_index];
    const std::vector<int>& ddst = policy_dist(f.dst);
    const int total = ddst[static_cast<size_t>(f.src.value())];
    if (total < 0) {
      ++report.unroutable_flows;
      continue;
    }

    // Propagate flow fractions along the shortest-path DAG: from a node at
    // distance d, next hops are usable neighbours at distance d-1; the
    // fraction splits equally over next-hop *links* (ECMP incl. LAG members).
    FlowPath fp;
    fp.flow_index = flow_index;
    fp.gbps = f.gbps;
    std::unordered_map<std::int32_t, double> frac;
    frac[f.src.value()] = 1.0;
    // Process nodes in decreasing distance (src has the max distance).
    std::vector<std::pair<int, DeviceId>> order{{total, f.src}};
    std::unordered_map<std::int32_t, bool> queued{{f.src.value(), true}};
    for (std::size_t head = 0; head < order.size(); ++head) {
      const auto [d, node] = order[head];
      if (d == 0) continue;
      const double node_frac = frac[node.value()];
      // Collect next-hop links.
      std::vector<std::pair<LinkId, DeviceId>> next;
      for (const LinkId lid : net.links_at(node)) {
        const Link& l = net.link(lid);
        if (!link_usable(l, policy)) continue;
        const DeviceId peer = l.end_a.device == node ? l.end_b.device : l.end_a.device;
        if (ddst[static_cast<size_t>(peer.value())] == d - 1) next.emplace_back(lid, peer);
      }
      if (next.empty()) continue;  // should not happen on a shortest DAG
      const double share = node_frac / static_cast<double>(next.size());
      for (const auto& [lid, peer] : next) {
        fp.shares.emplace_back(lid, share);
        const LinkState ls = net.link(lid).state;
        fp.worst_loss = std::max(fp.worst_loss, Link::loss_rate(ls) * 1.0);
        // Up < Degraded < Flapping in both enum order and loss rate, so the
        // worst state is the one behind worst_loss.
        if (static_cast<int>(ls) > static_cast<int>(fp.worst_state)) fp.worst_state = ls;
        frac[peer.value()] += share;
        if (!queued[peer.value()]) {
          queued[peer.value()] = true;
          order.emplace_back(d - 1, peer);
        }
      }
    }
    for (const auto& [lid, share] : fp.shares) {
      report.link_load_gbps[static_cast<size_t>(lid.value())] += f.gbps * share;
    }
    if (fp.worst_state == LinkState::kFlapping) {
      fp.state = TailState::kFlapping;
    } else if (fp.worst_state == LinkState::kDegraded) {
      fp.state = TailState::kImpaired;
    } else if (total > structural_dist(f.dst)[static_cast<std::size_t>(f.src.value())]) {
      fp.state = TailState::kDownRerouted;
    }
    placed.push_back(std::move(fp));
  }

  // Utilization and overload per link.
  double util_sum = 0;
  std::size_t loaded_links = 0;
  std::vector<double> overload(net.links().size(), 1.0);
  for (const Link& l : net.links()) {
    const double load = report.link_load_gbps[static_cast<size_t>(l.id.value())];
    if (load <= 0.0) continue;
    const double u = load / l.capacity_gbps;
    overload[static_cast<size_t>(l.id.value())] = std::max(1.0, u);
    report.max_link_utilization = std::max(report.max_link_utilization, u);
    util_sum += std::min(1.0, u);
    ++loaded_links;
  }
  if (loaded_links > 0) {
    report.mean_link_utilization = util_sum / static_cast<double>(loaded_links);
  }

  // Delivered goodput: each flow is clipped by its worst bottleneck; tail
  // factor from the lossiest link it uses.
  std::vector<std::pair<double, double>> weighted_tails;  // (tail factor, gbps)
  double tail_sum = 0;
  for (FlowPath& fp : placed) {
    for (const auto& [lid, share] : fp.shares) {
      fp.bottleneck_overload =
          std::max(fp.bottleneck_overload, overload[static_cast<size_t>(lid.value())]);
    }
    report.delivered_gbps += fp.gbps / fp.bottleneck_overload;
    const double tail = tail_latency_factor(fp.worst_loss);
    weighted_tails.emplace_back(tail, fp.gbps);
    tail_sum += tail * fp.gbps;
    TailBucket& bucket = report.tail_by_state[static_cast<std::size_t>(fp.state)];
    ++bucket.flows;
    bucket.demand_gbps += fp.gbps;
    bucket.tail_sum += tail;
    bucket.worst_tail = std::max(bucket.worst_tail, tail);
    report.flow_outcomes.push_back(FlowOutcome{fp.flow_index, fp.state, tail, fp.gbps});
  }
  if (!weighted_tails.empty()) {
    std::sort(weighted_tails.begin(), weighted_tails.end());
    double total_w = 0;
    for (const auto& [t, w] : weighted_tails) total_w += w;
    double acc = 0;
    report.p99_tail_factor = weighted_tails.back().first;
    for (const auto& [t, w] : weighted_tails) {
      acc += w;
      if (acc >= 0.99 * total_w) {
        report.p99_tail_factor = t;
        break;
      }
    }
    report.mean_tail_factor = tail_sum / total_w;
  }
  return report;
}

const std::vector<double>& fct_factor_bounds() {
  static const std::vector<double> kBounds{1.02, 1.5, 2.0, 5.0, 10.0, 25.0, 50.0, 100.0};
  return kBounds;
}

TrafficInstruments::TrafficInstruments(obs::Registry& reg) {
  static constexpr const char* kNames[kTailStateCount] = {
      "net_fct_factor_up", "net_fct_factor_impaired", "net_fct_factor_flapping",
      "net_fct_factor_down_rerouted"};
  for (std::size_t s = 0; s < kTailStateCount; ++s) {
    fct_factor_[s] = reg.histogram(kNames[s], fct_factor_bounds());
  }
  unroutable_ = reg.counter("net_flows_unroutable_total");
}

void TrafficInstruments::observe(const LoadReport& report) {
  if (unroutable_ == nullptr) return;  // default-constructed: not wired
  for (const FlowOutcome& fo : report.flow_outcomes) {
    fct_factor_[static_cast<std::size_t>(fo.state)]->observe(fo.tail_factor);
  }
  unroutable_->inc(report.unroutable_flows);
}

}  // namespace smn::net
