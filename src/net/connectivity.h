// Incremental connectivity engine: generation-stamped reachability cache.
//
// Every availability number in the repro is a function of reachability
// queries — `path_available`, `sampled_pair_connectivity`, the migration and
// reconfiguration safety checks — and a from-scratch BFS per query made the
// per-replicate hot path the sweep engine's bottleneck. This engine answers
// `connected(a, b)` from a union-find forest over the usable links of the
// queried PathPolicy class, rebuilt lazily on the first query after the
// network reports a change, so a burst of queries against an unchanged
// network costs near-O(α) each instead of O(V+E).
//
// Invalidation rules (see Network's generation counters):
//   * state generation   — bumped whenever any link's derived state changes
//     (fault, repair, contamination threshold crossing, admin drain, device
//     or line-card health: all of these flow through Network::refresh_link).
//   * structure generation — bumped on Network::rewire (endpoints changed).
// A forest is fresh iff both stamps match; each of the four PathPolicy
// classes carries its own stamps, so policies invalidate independently.
//
// The engine is a PURE CACHE: it never draws randomness, never schedules
// events, and its answers are byte-identical to the reference BFS
// (`path_available_bfs`) — the randomized differential test in
// tests/connectivity_test.cpp holds it to that across fault/repair/rewire/
// admin-down sequences on every topology preset. One engine lives per
// Network (hence per World), so sweep workers share no mutable state.
#pragma once

#include <cstdint>
#include <vector>

#include "net/link.h"
#include "net/types.h"

namespace smn::net {

class Network;

class ConnectivityEngine {
 public:
  explicit ConnectivityEngine(const Network& net);

  ConnectivityEngine(const ConnectivityEngine&) = delete;
  ConnectivityEngine& operator=(const ConnectivityEngine&) = delete;

  /// True iff `a` and `b` are mutually reachable over links usable under
  /// `policy`. Near-O(α) amortized; O(V + E) on the first query after a
  /// network change (forest rebuild).
  [[nodiscard]] bool connected(DeviceId a, DeviceId b, const PathPolicy& policy = {});

  /// BFS shortest path by hop count; empty if unreachable. Identical output
  /// to the pre-engine BFS, but runs on the CSR adjacency with reusable
  /// scratch (no per-call allocation beyond the returned path) and early-outs
  /// on the union-find when the endpoints are in different components.
  [[nodiscard]] std::vector<DeviceId> shortest_path(DeviceId from, DeviceId to,
                                                    const PathPolicy& policy = {});

  /// Hop distances from `root` over links usable under `policy`; -1 means
  /// unreachable. Writes into `out` (resized to the device count) so callers
  /// that cache distance tables reuse their own storage.
  void bfs_distances(DeviceId root, const PathPolicy& policy, std::vector<int>& out);

  /// Forest rebuilds performed so far — the observability hook the benches
  /// and tests use to prove queries against an unchanged network stay cached.
  [[nodiscard]] std::uint64_t rebuilds() const { return rebuilds_; }

 private:
  struct Forest {
    std::vector<std::int32_t> parent;
    std::vector<std::int32_t> size;
    std::uint64_t state_gen = ~std::uint64_t{0};
    std::uint64_t structure_gen = ~std::uint64_t{0};
  };

  [[nodiscard]] static std::size_t policy_index(const PathPolicy& p) {
    return (p.use_degraded ? 1u : 0u) | (p.use_flapping ? 2u : 0u);
  }
  void ensure_fresh(Forest& f, const PathPolicy& policy);
  [[nodiscard]] std::int32_t find(Forest& f, std::int32_t v);
  /// Starts a BFS epoch; resets the stamp arrays on device-count change or
  /// epoch wrap so stale marks can never alias a live query.
  void begin_bfs();

  const Network* net_;
  Forest forests_[4];  // indexed by policy_index

  // BFS scratch, reused across queries: epoch-stamped visit marks instead of
  // a cleared vector per call, and a flat vector as the queue.
  std::vector<std::int32_t> bfs_parent_;
  std::vector<std::uint32_t> visit_epoch_;
  std::vector<DeviceId> bfs_queue_;
  std::uint32_t epoch_ = 0;
  std::uint64_t rebuilds_ = 0;
};

}  // namespace smn::net
