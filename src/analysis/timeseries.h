// Time-series recording: periodic sampling of named metrics into columns,
// exportable as CSV — the "figure data" companion to the Table reporter.
// Benches and the CLI use it to dump availability/backlog/flap trajectories
// that plot directly.
#pragma once

#include <functional>
#include <ostream>
#include <string>
#include <vector>

#include "sim/event_queue.h"
#include "sim/time.h"

namespace smn::analysis {

class TimeSeriesRecorder {
 public:
  using Probe = std::function<double()>;

  TimeSeriesRecorder(sim::Simulator& sim, sim::Duration interval)
      : sim_{sim}, interval_{interval} {}

  /// Registers a named column sampled by `probe` at every tick. Add all
  /// columns before calling start().
  void add_column(std::string name, Probe probe);

  /// Begins periodic sampling (first sample one interval from now).
  void start();
  void stop();

  /// Takes one sample immediately (also called by the periodic tick).
  void sample_now();

  [[nodiscard]] std::size_t rows() const { return times_.size(); }
  [[nodiscard]] const std::vector<double>& column(std::size_t i) const {
    return values_.at(i);
  }
  [[nodiscard]] const std::vector<std::string>& names() const { return names_; }
  [[nodiscard]] const std::vector<double>& times_hours() const { return times_; }

  /// CSV with a leading `hours` column.
  void write_csv(std::ostream& os) const;

 private:
  sim::Simulator& sim_;
  sim::Duration interval_;
  std::vector<std::string> names_;
  std::vector<Probe> probes_;
  std::vector<double> times_;
  std::vector<std::vector<double>> values_;
  sim::EventId periodic_ = sim::kInvalidEvent;
};

}  // namespace smn::analysis
