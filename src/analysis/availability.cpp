#include "analysis/availability.h"

#include <cmath>

namespace smn::analysis {
namespace {

int bucket_of(const net::Link& l, net::LinkState s) {
  if (s == net::LinkState::kDown && l.admin_down) {
    return 4;  // kPlannedBucket: deliberate drain, not a failure
  }
  return static_cast<int>(s);
}

}  // namespace

AvailabilityTracker::AvailabilityTracker(net::Network& net) : net_{net}, start_{net.now()} {
  spans_.resize(net_.links().size());
  for (std::size_t i = 0; i < spans_.size(); ++i) {
    const net::Link& l = net_.links()[i];
    spans_[i].bucket = bucket_of(l, l.state);
    spans_[i].since = start_;
  }
  net_.subscribe([this](const net::Link& l, net::LinkState /*from*/, net::LinkState to) {
    Span& s = spans_.at(static_cast<size_t>(l.id.value()));
    s.accumulated[static_cast<size_t>(s.bucket)] += net_.now() - s.since;
    s.bucket = bucket_of(l, to);
    s.since = net_.now();
  });
}

std::array<sim::Duration, 5> AvailabilityTracker::closed(net::LinkId id) const {
  const Span& s = spans_.at(static_cast<size_t>(id.value()));
  std::array<sim::Duration, 5> totals = s.accumulated;
  totals[static_cast<size_t>(s.bucket)] += net_.now() - s.since;
  return totals;
}

sim::Duration AvailabilityTracker::time_in(net::LinkId id, net::LinkState s) const {
  return closed(id)[static_cast<size_t>(s)];
}

sim::Duration AvailabilityTracker::planned_maintenance(net::LinkId id) const {
  return closed(id)[kPlannedBucket];
}

double AvailabilityTracker::planned_maintenance_link_hours() const {
  double hours = 0.0;
  for (const net::Link& l : net_.links()) {
    hours += planned_maintenance(l.id).to_hours();
  }
  return hours;
}

double AvailabilityTracker::link_availability(net::LinkId id) const {
  const sim::Duration elapsed = net_.now() - start_;
  if (elapsed <= sim::Duration::zero()) return 1.0;
  const sim::Duration down = time_in(id, net::LinkState::kDown);
  return 1.0 - down.ratio(elapsed);
}

double AvailabilityTracker::impairment_fraction(net::LinkId id) const {
  const sim::Duration elapsed = net_.now() - start_;
  if (elapsed <= sim::Duration::zero()) return 0.0;
  const auto t = closed(id);
  const sim::Duration impaired = t[static_cast<int>(net::LinkState::kDegraded)] +
                                 t[static_cast<int>(net::LinkState::kFlapping)];
  return impaired.ratio(elapsed);
}

double AvailabilityTracker::fleet_availability() const {
  if (net_.links().empty()) return 1.0;
  double sum = 0.0;
  for (const net::Link& l : net_.links()) sum += link_availability(l.id);
  return sum / static_cast<double>(net_.links().size());
}

double AvailabilityTracker::fleet_impairment() const {
  if (net_.links().empty()) return 0.0;
  double sum = 0.0;
  for (const net::Link& l : net_.links()) sum += impairment_fraction(l.id);
  return sum / static_cast<double>(net_.links().size());
}

double AvailabilityTracker::downtime_link_hours() const {
  double hours = 0.0;
  for (const net::Link& l : net_.links()) {
    hours += time_in(l.id, net::LinkState::kDown).to_hours();
  }
  return hours;
}

double AvailabilityTracker::impaired_link_hours() const {
  double hours = 0.0;
  for (const net::Link& l : net_.links()) {
    hours += time_in(l.id, net::LinkState::kDegraded).to_hours() +
             time_in(l.id, net::LinkState::kFlapping).to_hours();
  }
  return hours;
}

double AvailabilityTracker::nines(double availability) {
  if (availability >= 1.0) return 9.0;  // cap: better than we can measure
  if (availability <= 0.0) return 0.0;
  return -std::log10(1.0 - availability);
}

}  // namespace smn::analysis
