// Spares-stocking advisor.
//
// §3.3.2: "the robots can carry spares". How many? Replacement demand over a
// restock interval is (approximately) Poisson; the stock level that keeps
// stockout probability below a target is its quantile. This is the
// right-provisioning logic of §2 applied to the robot's spares cache instead
// of the network's redundant links.
#pragma once

namespace smn::analysis {

/// Probability that Poisson(mean) demand exceeds `stock` units.
[[nodiscard]] double poisson_stockout_probability(double mean_demand, int stock);

/// Smallest stock level whose stockout probability over one restock interval
/// is <= `stockout_target` given `mean_demand` replacements per interval.
[[nodiscard]] int recommended_spares(double mean_demand, double stockout_target);

}  // namespace smn::analysis
