// Survivability frontier: progressive-failure curves for a fabric blueprint.
//
// Couto et al.'s survivability methodology replaces one-number availability
// with full degradation curves: pick a random ordering in which elements
// (links or switches) fail, and record — after every single failure — the
// largest-component fraction, the server-reachability fraction, and a
// bisection-bandwidth proxy. Averaged over many orderings this traces the
// *frontier* along which a topology degrades, which is the quantity the
// paper's self-maintainability claim is ultimately about.
//
// The naive computation re-runs BFS over the surviving graph after every
// removal — O(M * (V + E)) per ordering. SurvivabilityFrontier instead
// replays each ordering IN REVERSE through an add-only union-find (the same
// path-halving + union-by-size machinery behind net::ConnectivityEngine):
// start from the fully-failed state and re-add elements one at a time,
// recording curve point k right before re-adding failed element k. Deletion
// becomes insertion, every curve costs O(M * alpha(V)) merges, and the whole
// replay loop is allocation-free after the constructor (scratch buffers are
// sized once and reused across orderings).
//
// Exactness contract: every curve value is a single double division of two
// exactly-maintained integers (component sizes, server counts, and link
// capacities pre-converted to integral milli-Gbps units), so the incremental
// engine is bit-identical to a brute-force per-step BFS oracle — which
// tests/survivability_test.cpp enforces on every preset topology.
//
// Curve definitions, with k = number of failed elements (index 0..M):
//   largest_component[k]   = max alive-component device count / total devices
//   server_reachability[k] = max per-component alive-server count / servers
//                            (1.0 when the blueprint has no servers)
//   bisection[k]           = C(k) / C(0), where C is the total capacity of
//                            alive links crossing the canonical checkerboard
//                            bipartition (node index parity) restricted to
//                            components containing at least one alive server
//                            (1.0 throughout when C(0) == 0)
// All three are monotone non-increasing in k. In kLinks mode every device
// stays alive and links fail in order; in kSwitches mode switches fail in
// order while servers (and hence the reachability denominator) stay alive.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "topology/blueprint.h"

namespace smn::analysis {

enum class FailureMode : std::uint8_t {
  kLinks,     // links fail one at a time; devices stay up
  kSwitches,  // switches fail one at a time; servers stay up
};

[[nodiscard]] const char* to_string(FailureMode mode);

/// Knobs carried by scenario::WorldConfig; the sweep runner computes the
/// frontier post-run on the cell blueprint (the engine is a pure observer —
/// it never touches the simulation, which the determinism audit verifies).
struct SurvivabilityConfig {
  bool enabled = false;
  FailureMode mode = FailureMode::kLinks;
  /// Failure orderings sampled per replicate (per hall for campus cells).
  int orderings = 16;
  /// Mixed with the replicate seed (and hall index) to derive ordering seeds.
  std::uint64_t seed = 1;
};

/// One ordering's raw curves, indexed by failed-element count 0..M.
struct SurvivabilityCurves {
  std::vector<double> largest_component;
  std::vector<double> server_reachability;
  std::vector<double> bisection;
};

/// Mean curve with the half-width of the 95% normal CI at every point.
struct CurveSummary {
  std::vector<double> mean;
  std::vector<double> ci95;
};

/// Aggregate of many sample curves (orderings, or hall x ordering for a
/// campus). `hash` is an FNV-1a digest of the mean/ci95 arrays — the
/// determinism signal --audit-determinism gates on.
struct FrontierResult {
  FailureMode mode = FailureMode::kLinks;
  std::size_t elements = 0;  // M: failable elements (curves have M+1 points)
  std::size_t devices = 0;
  std::size_t servers = 0;
  std::size_t samples = 0;  // aggregated sample curves
  CurveSummary largest_component;
  CurveSummary server_reachability;
  CurveSummary bisection;
  /// Normalized area under each mean curve over failed fraction in [0, 1]
  /// (trapezoid rule): 1.0 = no degradation at all, 0.0 = instant collapse.
  double auc_connectivity = 0.0;
  double auc_reachability = 0.0;
  double auc_bisection = 0.0;
  std::uint64_t hash = 0;

  [[nodiscard]] bool present() const { return samples > 0; }
};

/// Mean-curve value at the point closest to `failed_fraction` in [0, 1].
[[nodiscard]] double curve_value_at(const CurveSummary& curve, double failed_fraction);

/// Permutation-invariant aggregation: at every curve point the sample values
/// are sorted before accumulation, so the result is byte-identical no matter
/// in which order the samples were produced (ordering-seed permutations,
/// campus hall interleavings). Mean/CI accumulate through SampleStats.
[[nodiscard]] FrontierResult aggregate_curves(FailureMode mode, std::size_t elements,
                                              std::size_t devices, std::size_t servers,
                                              std::span<const SurvivabilityCurves> samples);

class SurvivabilityFrontier {
 public:
  /// Precomputes the flat link table (integer capacities, crossing flags) and
  /// CSR incidence lists. Throws std::invalid_argument on an empty blueprint.
  explicit SurvivabilityFrontier(const topology::Blueprint& bp);

  [[nodiscard]] std::size_t element_count(FailureMode mode) const;
  [[nodiscard]] std::size_t device_count() const { return node_count_; }
  [[nodiscard]] std::size_t server_count() const { return server_total_; }

  /// Capacity quantization shared with the differential oracle: milli-Gbps,
  /// rounded half away from zero. All cut arithmetic is integral so the
  /// accumulation order can never change a curve bit.
  [[nodiscard]] static std::uint64_t capacity_units(double gbps);

  /// splitmix64-style mix; used to derive ordering seeds from
  /// (config seed, replicate seed, hall index) without stream overlap.
  [[nodiscard]] static std::uint64_t mix_seed(std::uint64_t a, std::uint64_t b);

  /// The `count` ordering seeds derived from `base`: mix_seed(base, i).
  [[nodiscard]] static std::vector<std::uint64_t> ordering_seeds(std::uint64_t base, int count);

  /// Deterministic failure ordering: Fisher-Yates shuffle of [0, M) under
  /// sim::RngStream{seed}. `out` is reused (no allocation at steady size).
  void make_ordering(FailureMode mode, std::uint64_t seed, std::vector<std::int32_t>& out) const;

  /// Replays one failure ordering (a permutation of [0, M)) in reverse
  /// through the add-only union-find and fills the three curves with M+1
  /// points each. Allocation-free once `out` has reached steady size.
  void replay(FailureMode mode, std::span<const std::int32_t> order, SurvivabilityCurves& out);

  /// One sample curve per ordering seed, aggregated permutation-invariantly.
  [[nodiscard]] FrontierResult compute(FailureMode mode,
                                       std::span<const std::uint64_t> ordering_seeds);
  [[nodiscard]] FrontierResult compute(const SurvivabilityConfig& cfg);

 private:
  struct LinkRec {
    std::int32_t a = -1;
    std::int32_t b = -1;
    std::uint64_t capacity = 0;  // milli-Gbps
    bool crossing = false;       // endpoints on opposite checkerboard sides
  };

  [[nodiscard]] std::int32_t find(std::int32_t x);
  void add_link(const LinkRec& link);
  void reset_forest();
  void record_point(std::size_t k);

  // Immutable after construction.
  std::size_t node_count_ = 0;
  std::size_t server_total_ = 0;
  std::vector<std::uint8_t> is_server_;
  std::vector<std::int32_t> switch_nodes_;  // kSwitches element -> node index
  std::vector<LinkRec> links_;
  std::vector<std::int32_t> incident_offset_;  // CSR: node -> incident links
  std::vector<std::int32_t> incident_link_;

  // Replay scratch, sized once in the constructor.
  std::vector<std::int32_t> parent_;
  std::vector<std::int32_t> comp_size_;
  std::vector<std::int32_t> comp_servers_;
  std::vector<std::uint64_t> comp_cut_;
  std::vector<std::uint8_t> alive_;
  std::vector<std::int32_t> raw_largest_;
  std::vector<std::int32_t> raw_servers_;
  std::vector<std::uint64_t> raw_cut_;
  std::int32_t max_component_ = 0;
  std::int32_t max_servers_ = 0;
  std::uint64_t active_cut_ = 0;

  // compute() scratch (reused across seeds; allocation only on first growth).
  std::vector<std::int32_t> order_scratch_;
};

}  // namespace smn::analysis
