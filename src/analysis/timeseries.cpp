#include "analysis/timeseries.h"

#include <stdexcept>

namespace smn::analysis {

void TimeSeriesRecorder::add_column(std::string name, Probe probe) {
  if (periodic_ != sim::kInvalidEvent) {
    throw std::logic_error{"TimeSeriesRecorder: add_column after start"};
  }
  if (!probe) throw std::invalid_argument{"TimeSeriesRecorder: empty probe"};
  names_.push_back(std::move(name));
  probes_.push_back(std::move(probe));
  values_.emplace_back();
}

void TimeSeriesRecorder::start() {
  if (periodic_ != sim::kInvalidEvent) return;
  periodic_ = sim_.schedule_every(interval_, [this] { sample_now(); });
}

void TimeSeriesRecorder::stop() {
  if (periodic_ == sim::kInvalidEvent) return;
  sim_.cancel_periodic(periodic_);
  periodic_ = sim::kInvalidEvent;
}

void TimeSeriesRecorder::sample_now() {
  times_.push_back(sim_.now().to_hours());
  for (std::size_t i = 0; i < probes_.size(); ++i) {
    values_[i].push_back(probes_[i]());
  }
}

void TimeSeriesRecorder::write_csv(std::ostream& os) const {
  os << "hours";
  for (const std::string& n : names_) os << "," << n;
  os << "\n";
  for (std::size_t r = 0; r < times_.size(); ++r) {
    os << times_[r];
    for (std::size_t c = 0; c < values_.size(); ++c) os << "," << values_[c][r];
    os << "\n";
  }
}

}  // namespace smn::analysis
