#include "analysis/survivability.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <stdexcept>
#include <string>

#include "analysis/stats.h"
#include "core/check.h"
#include "obs/metrics.h"
#include "sim/rng.h"

namespace smn::analysis {
namespace {

/// Checkerboard side of a node: the canonical bipartition every builder and
/// the oracle agree on. Index parity interleaves servers and switches across
/// both halves for every preset, so the cut stays structurally meaningful
/// without per-topology knowledge.
[[nodiscard]] bool checkerboard_side(std::int32_t node) { return (node & 1) != 0; }

void append_u64(std::string& bytes, std::uint64_t v) {
  char buf[sizeof(v)];
  std::memcpy(buf, &v, sizeof(v));
  bytes.append(buf, sizeof(v));
}

void append_doubles(std::string& bytes, const std::vector<double>& values) {
  for (const double v : values) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof(bits));
    append_u64(bytes, bits);
  }
}

/// Trapezoid area under the mean curve over failed fraction in [0, 1].
[[nodiscard]] double curve_auc(const std::vector<double>& mean) {
  if (mean.size() < 2) return mean.empty() ? 0.0 : mean.front();
  double area = 0.0;
  for (std::size_t k = 0; k + 1 < mean.size(); ++k) area += 0.5 * (mean[k] + mean[k + 1]);
  return area / static_cast<double>(mean.size() - 1);
}

}  // namespace

const char* to_string(FailureMode mode) {
  switch (mode) {
    case FailureMode::kLinks: return "links";
    case FailureMode::kSwitches: return "switches";
  }
  return "unknown";
}

double curve_value_at(const CurveSummary& curve, double failed_fraction) {
  if (curve.mean.empty()) return 0.0;
  const double clamped = std::clamp(failed_fraction, 0.0, 1.0);
  const auto idx = static_cast<std::size_t>(
      std::llround(clamped * static_cast<double>(curve.mean.size() - 1)));
  return curve.mean[idx];
}

FrontierResult aggregate_curves(FailureMode mode, std::size_t elements, std::size_t devices,
                                std::size_t servers,
                                std::span<const SurvivabilityCurves> samples) {
  FrontierResult out;
  out.mode = mode;
  out.elements = elements;
  out.devices = devices;
  out.servers = servers;
  out.samples = samples.size();
  if (samples.empty()) return out;

  const std::size_t points = elements + 1;
  const auto aggregate_one = [&](auto member, CurveSummary& summary) {
    summary.mean.resize(points);
    summary.ci95.resize(points);
    std::vector<double> sorted(samples.size());
    for (std::size_t k = 0; k < points; ++k) {
      for (std::size_t s = 0; s < samples.size(); ++s) {
        const std::vector<double>& curve = samples[s].*member;
        SMN_ASSERT(curve.size() == points, "sample %zu has %zu points, expected %zu", s,
                   curve.size(), points);
        sorted[s] = curve[k];
      }
      // Sorted accumulation: the aggregate is independent of sample order.
      std::sort(sorted.begin(), sorted.end());
      SampleStats stats;
      for (const double v : sorted) stats.push(v);
      summary.mean[k] = stats.mean();
      summary.ci95[k] = stats.count() > 1 ? 1.96 * stats.stddev() /
                                                std::sqrt(static_cast<double>(stats.count()))
                                          : 0.0;
    }
  };
  aggregate_one(&SurvivabilityCurves::largest_component, out.largest_component);
  aggregate_one(&SurvivabilityCurves::server_reachability, out.server_reachability);
  aggregate_one(&SurvivabilityCurves::bisection, out.bisection);

  out.auc_connectivity = curve_auc(out.largest_component.mean);
  out.auc_reachability = curve_auc(out.server_reachability.mean);
  out.auc_bisection = curve_auc(out.bisection.mean);

  std::string bytes;
  bytes.reserve((6 * points + 4) * sizeof(std::uint64_t));
  append_u64(bytes, static_cast<std::uint64_t>(mode));
  append_u64(bytes, elements);
  append_u64(bytes, samples.size());
  for (const CurveSummary* c :
       {&out.largest_component, &out.server_reachability, &out.bisection}) {
    append_doubles(bytes, c->mean);
    append_doubles(bytes, c->ci95);
  }
  out.hash = obs::fnv1a(bytes);
  return out;
}

SurvivabilityFrontier::SurvivabilityFrontier(const topology::Blueprint& bp) {
  const std::vector<topology::NodeSpec>& nodes = bp.nodes();
  if (nodes.empty()) {
    throw std::invalid_argument{"SurvivabilityFrontier: blueprint has no nodes"};
  }
  node_count_ = nodes.size();
  is_server_.resize(node_count_);
  for (std::size_t i = 0; i < node_count_; ++i) {
    const bool server = !topology::is_switch(nodes[i].role);
    is_server_[i] = server ? 1 : 0;
    if (server) {
      ++server_total_;
    } else {
      switch_nodes_.push_back(static_cast<std::int32_t>(i));
    }
  }

  links_.reserve(bp.links().size());
  for (const topology::LinkSpec& l : bp.links()) {
    LinkRec rec;
    rec.a = static_cast<std::int32_t>(l.node_a);
    rec.b = static_cast<std::int32_t>(l.node_b);
    rec.capacity = capacity_units(l.capacity_gbps);
    rec.crossing = checkerboard_side(rec.a) != checkerboard_side(rec.b);
    links_.push_back(rec);
  }

  // CSR incidence lists (counting sort by endpoint), used by kSwitches replay
  // to activate every link of a re-added switch.
  incident_offset_.assign(node_count_ + 1, 0);
  for (const LinkRec& l : links_) {
    ++incident_offset_[static_cast<std::size_t>(l.a) + 1];
    ++incident_offset_[static_cast<std::size_t>(l.b) + 1];
  }
  for (std::size_t i = 1; i < incident_offset_.size(); ++i) {
    incident_offset_[i] += incident_offset_[i - 1];
  }
  incident_link_.resize(2 * links_.size());
  std::vector<std::int32_t> cursor(incident_offset_.begin(), incident_offset_.end() - 1);
  for (std::size_t li = 0; li < links_.size(); ++li) {
    const LinkRec& l = links_[li];
    incident_link_[static_cast<std::size_t>(cursor[static_cast<std::size_t>(l.a)]++)] =
        static_cast<std::int32_t>(li);
    incident_link_[static_cast<std::size_t>(cursor[static_cast<std::size_t>(l.b)]++)] =
        static_cast<std::int32_t>(li);
  }

  parent_.resize(node_count_);
  comp_size_.resize(node_count_);
  comp_servers_.resize(node_count_);
  comp_cut_.resize(node_count_);
  alive_.resize(node_count_);
  const std::size_t max_points = std::max(links_.size(), switch_nodes_.size()) + 1;
  raw_largest_.resize(max_points);
  raw_servers_.resize(max_points);
  raw_cut_.resize(max_points);
}

std::size_t SurvivabilityFrontier::element_count(FailureMode mode) const {
  return mode == FailureMode::kLinks ? links_.size() : switch_nodes_.size();
}

std::uint64_t SurvivabilityFrontier::capacity_units(double gbps) {
  if (!(gbps > 0.0)) return 0;
  return static_cast<std::uint64_t>(std::llround(gbps * 1000.0));
}

std::uint64_t SurvivabilityFrontier::mix_seed(std::uint64_t a, std::uint64_t b) {
  std::uint64_t z = a + 0x9e3779b97f4a7c15ULL * (b + 0x632be59bd9b4e019ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::vector<std::uint64_t> SurvivabilityFrontier::ordering_seeds(std::uint64_t base, int count) {
  std::vector<std::uint64_t> seeds;
  seeds.reserve(static_cast<std::size_t>(std::max(0, count)));
  for (int i = 0; i < count; ++i) seeds.push_back(mix_seed(base, static_cast<std::uint64_t>(i)));
  return seeds;
}

void SurvivabilityFrontier::make_ordering(FailureMode mode, std::uint64_t seed,
                                          std::vector<std::int32_t>& out) const {
  const std::size_t m = element_count(mode);
  out.resize(m);
  for (std::size_t i = 0; i < m; ++i) out[i] = static_cast<std::int32_t>(i);
  sim::RngStream rng{seed};
  rng.shuffle(out);
}

std::int32_t SurvivabilityFrontier::find(std::int32_t x) {
  while (parent_[static_cast<std::size_t>(x)] != x) {
    parent_[static_cast<std::size_t>(x)] =
        parent_[static_cast<std::size_t>(parent_[static_cast<std::size_t>(x)])];
    x = parent_[static_cast<std::size_t>(x)];
  }
  return x;
}

void SurvivabilityFrontier::add_link(const LinkRec& link) {
  std::int32_t ra = find(link.a);
  std::int32_t rb = find(link.b);
  const std::uint64_t cross = link.crossing ? link.capacity : 0;
  if (ra == rb) {
    comp_cut_[static_cast<std::size_t>(ra)] += cross;
    if (comp_servers_[static_cast<std::size_t>(ra)] > 0) active_cut_ += cross;
    return;
  }
  if (comp_size_[static_cast<std::size_t>(ra)] < comp_size_[static_cast<std::size_t>(rb)]) {
    std::swap(ra, rb);
  }
  const auto ua = static_cast<std::size_t>(ra);
  const auto ub = static_cast<std::size_t>(rb);
  if (comp_servers_[ua] > 0) active_cut_ -= comp_cut_[ua];
  if (comp_servers_[ub] > 0) active_cut_ -= comp_cut_[ub];
  parent_[ub] = ra;
  comp_size_[ua] += comp_size_[ub];
  comp_servers_[ua] += comp_servers_[ub];
  comp_cut_[ua] += comp_cut_[ub] + cross;
  if (comp_servers_[ua] > 0) active_cut_ += comp_cut_[ua];
  max_component_ = std::max(max_component_, comp_size_[ua]);
  max_servers_ = std::max(max_servers_, comp_servers_[ua]);
}

void SurvivabilityFrontier::reset_forest() {
  for (std::size_t i = 0; i < node_count_; ++i) {
    parent_[i] = static_cast<std::int32_t>(i);
    comp_size_[i] = 1;
    comp_servers_[i] = is_server_[i];
    comp_cut_[i] = 0;
  }
  active_cut_ = 0;
}

void SurvivabilityFrontier::record_point(std::size_t k) {
  raw_largest_[k] = max_component_;
  raw_servers_[k] = max_servers_;
  raw_cut_[k] = active_cut_;
}

void SurvivabilityFrontier::replay(FailureMode mode, std::span<const std::int32_t> order,
                                   SurvivabilityCurves& out) {
  const std::size_t m = element_count(mode);
  SMN_ASSERT(order.size() == m, "ordering has %zu elements, expected %zu", order.size(), m);
  reset_forest();

  if (mode == FailureMode::kLinks) {
    // All devices alive throughout; links come back in reverse failure order.
    max_component_ = node_count_ > 0 ? 1 : 0;
    max_servers_ = server_total_ > 0 ? 1 : 0;
    record_point(m);
    for (std::size_t k = m; k-- > 0;) {
      add_link(links_[static_cast<std::size_t>(order[k])]);
      record_point(k);
    }
  } else {
    // Servers start alive as singletons; switches come back one at a time,
    // activating every incident link whose peer is already alive.
    for (std::size_t i = 0; i < node_count_; ++i) alive_[i] = is_server_[i];
    max_component_ = server_total_ > 0 ? 1 : 0;
    max_servers_ = server_total_ > 0 ? 1 : 0;
    for (const LinkRec& l : links_) {
      if (alive_[static_cast<std::size_t>(l.a)] != 0 &&
          alive_[static_cast<std::size_t>(l.b)] != 0) {
        add_link(l);
      }
    }
    record_point(m);
    for (std::size_t k = m; k-- > 0;) {
      const auto node = static_cast<std::size_t>(switch_nodes_[static_cast<std::size_t>(order[k])]);
      alive_[node] = 1;
      max_component_ = std::max(max_component_, std::int32_t{1});
      const auto begin = static_cast<std::size_t>(incident_offset_[node]);
      const auto end = static_cast<std::size_t>(incident_offset_[node + 1]);
      for (std::size_t e = begin; e < end; ++e) {
        const LinkRec& l = links_[static_cast<std::size_t>(incident_link_[e])];
        const auto peer = static_cast<std::size_t>(
            static_cast<std::size_t>(l.a) == node ? l.b : l.a);
        if (alive_[peer] != 0) add_link(l);
      }
      record_point(k);
    }
  }

  // Raw integer maxima -> fractions. Every value is one division of two
  // integers both the engine and the BFS oracle maintain exactly, so the two
  // implementations agree bit-for-bit.
  const std::size_t points = m + 1;
  out.largest_component.resize(points);
  out.server_reachability.resize(points);
  out.bisection.resize(points);
  const double device_den = static_cast<double>(node_count_);
  const double server_den = static_cast<double>(server_total_);
  const std::uint64_t pristine_cut = raw_cut_[0];
  for (std::size_t k = 0; k < points; ++k) {
    out.largest_component[k] = static_cast<double>(raw_largest_[k]) / device_den;
    out.server_reachability[k] =
        server_total_ > 0 ? static_cast<double>(raw_servers_[k]) / server_den : 1.0;
    out.bisection[k] = pristine_cut > 0
                           ? static_cast<double>(raw_cut_[k]) / static_cast<double>(pristine_cut)
                           : 1.0;
  }
}

FrontierResult SurvivabilityFrontier::compute(FailureMode mode,
                                              std::span<const std::uint64_t> ordering_seeds) {
  std::vector<SurvivabilityCurves> samples(ordering_seeds.size());
  for (std::size_t s = 0; s < ordering_seeds.size(); ++s) {
    make_ordering(mode, ordering_seeds[s], order_scratch_);
    replay(mode, order_scratch_, samples[s]);
  }
  return aggregate_curves(mode, element_count(mode), node_count_, server_total_, samples);
}

FrontierResult SurvivabilityFrontier::compute(const SurvivabilityConfig& cfg) {
  const std::vector<std::uint64_t> seeds = ordering_seeds(cfg.seed, cfg.orderings);
  return compute(cfg.mode, seeds);
}

}  // namespace smn::analysis
