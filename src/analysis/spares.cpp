#include "analysis/spares.h"

#include <cmath>
#include <stdexcept>

namespace smn::analysis {

double poisson_stockout_probability(double mean_demand, int stock) {
  if (mean_demand < 0.0) throw std::invalid_argument{"mean_demand must be >= 0"};
  if (stock < 0) return 1.0;
  if (mean_demand == 0.0) return 0.0;
  // P(X > stock) = 1 - sum_{k=0..stock} e^-m m^k / k!, computed iteratively.
  double term = std::exp(-mean_demand);
  double cdf = term;
  for (int k = 1; k <= stock; ++k) {
    term *= mean_demand / k;
    cdf += term;
  }
  return cdf >= 1.0 ? 0.0 : 1.0 - cdf;
}

int recommended_spares(double mean_demand, double stockout_target) {
  if (stockout_target <= 0.0 || stockout_target >= 1.0) {
    throw std::invalid_argument{"stockout_target must be in (0, 1)"};
  }
  int stock = 0;
  while (poisson_stockout_probability(mean_demand, stock) > stockout_target) {
    ++stock;
    if (stock > 100000) throw std::runtime_error{"recommended_spares: demand too large"};
  }
  return stock;
}

}  // namespace smn::analysis
