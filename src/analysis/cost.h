// The maintenance cost model.
//
// §1 frames the economics: overprovisioning "is costly", manual repair is
// "labor-intensive", and §2 promises "lower service costs" plus
// "right-provisioning redundant hardware components". This model prices the
// four cost channels so experiments E5/E7/E10 can compare configurations in
// one currency: technician labor, robot fleet (amortized capex + opex),
// downtime, and hardware consumed.
#pragma once

#include <cstddef>

namespace smn::analysis {

struct CostConfig {
  double technician_hourly_usd = 85.0;
  /// Robot unit capex, amortized over its service life.
  double robot_unit_capex_usd = 120'000.0;
  double robot_life_years = 5.0;
  double robot_opex_hourly_usd = 2.0;
  /// Lost-capacity cost of one link-hour of hard downtime.
  double downtime_link_hour_usd = 40.0;
  /// Impaired (degraded/flapping) link-hours cost a fraction of downtime.
  double impaired_link_hour_usd = 10.0;
  /// Parts.
  double transceiver_usd = 600.0;
  double cable_usd = 300.0;
  double device_usd = 18'000.0;
  /// Cost of keeping one redundant (overprovisioned) link per year:
  /// two transceivers + cable amortized over 4 years, plus port power.
  double overprovision_link_year_usd = (2 * 600.0 + 300.0) / 4.0 + 120.0;
};

struct CostInputs {
  double technician_hours = 0.0;
  double robot_busy_hours = 0.0;
  int robot_units = 0;
  double elapsed_years = 0.0;
  double downtime_link_hours = 0.0;
  double impaired_link_hours = 0.0;
  std::size_t transceivers_replaced = 0;
  std::size_t cables_replaced = 0;
  std::size_t devices_replaced = 0;
  int overprovisioned_links = 0;
};

struct CostBreakdown {
  double labor_usd = 0.0;
  double robot_usd = 0.0;
  double downtime_usd = 0.0;
  double parts_usd = 0.0;
  double overprovision_usd = 0.0;
  double total_usd = 0.0;
};

[[nodiscard]] CostBreakdown compute_cost(const CostConfig& cfg, const CostInputs& in);

}  // namespace smn::analysis
