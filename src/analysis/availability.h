// Availability accounting: integrates per-link time in each operational
// state by observing Network transitions — the denominator of every
// reliability claim in the paper (§2: "This will enhance datacenter
// reliability, availability, and efficiency").
#pragma once

#include <array>
#include <vector>

#include "net/network.h"

namespace smn::analysis {

class AvailabilityTracker {
 public:
  explicit AvailabilityTracker(net::Network& net);

  /// Fraction of elapsed time the link was not *unexpectedly* Down. Planned
  /// drains (admin-down: migration around maintenance, link parking) are
  /// accounted separately as maintenance time — a deliberately drained idle
  /// link is not a failure. Degraded and Flapping count as
  /// available-but-impaired; see impairment_fraction.
  [[nodiscard]] double link_availability(net::LinkId id) const;

  /// Time this link spent deliberately drained (admin-down).
  [[nodiscard]] sim::Duration planned_maintenance(net::LinkId id) const;
  /// Sum over links of planned (admin-down) time, link-hours.
  [[nodiscard]] double planned_maintenance_link_hours() const;

  /// Fraction of elapsed time spent Degraded or Flapping.
  [[nodiscard]] double impairment_fraction(net::LinkId id) const;

  [[nodiscard]] sim::Duration time_in(net::LinkId id, net::LinkState s) const;

  /// Mean availability over all links ("the nines" of the plant).
  [[nodiscard]] double fleet_availability() const;
  [[nodiscard]] double fleet_impairment() const;

  /// Sum over links of Down time, in link-hours — the downtime quantity the
  /// cost model prices.
  [[nodiscard]] double downtime_link_hours() const;
  [[nodiscard]] double impaired_link_hours() const;

  /// Converts an availability fraction to "nines" (0.999 -> 3.0).
  [[nodiscard]] static double nines(double availability);

 private:
  // Bucket 0-3 mirror LinkState; bucket 4 is planned (admin) downtime.
  static constexpr int kPlannedBucket = 4;

  struct Span {
    int bucket = 0;
    sim::TimePoint since;
    std::array<sim::Duration, 5> accumulated{};
  };

  [[nodiscard]] std::array<sim::Duration, 5> closed(net::LinkId id) const;

  net::Network& net_;
  sim::TimePoint start_;
  std::vector<Span> spans_;
};

}  // namespace smn::analysis
