#include "analysis/report.h"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

namespace smn::analysis {

void Table::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) {
    throw std::invalid_argument{"Table::add_row: cell count != header count"};
  }
  rows_.push_back(std::move(cells));
}

std::string Table::num(double v, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", decimals, v);
  return buf;
}

std::string Table::num(std::size_t v) { return std::to_string(v); }
std::string Table::num(int v) { return std::to_string(v); }

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& cells) {
    os << "| ";
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << cells[c];
      os << std::string(widths[c] - cells[c].size(), ' ') << " | ";
    }
    os << "\n";
  };
  print_row(headers_);
  os << "|";
  for (const std::size_t w : widths) os << std::string(w + 2, '-') << "-|";
  os << "\n";
  for (const auto& row : rows_) print_row(row);
}

void Table::write_csv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c > 0) os << ",";
      os << cells[c];
    }
    os << "\n";
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
}

}  // namespace smn::analysis
