// Small statistics toolkit used by experiments: streaming moments plus exact
// percentiles over retained samples.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <stdexcept>
#include <vector>

namespace smn::analysis {

class SampleStats {
 public:
  void push(double x) {
    samples_.push_back(x);
    sorted_ = false;
    sum_ += x;
    sum_sq_ += x * x;
  }

  [[nodiscard]] std::size_t count() const { return samples_.size(); }
  [[nodiscard]] bool empty() const { return samples_.empty(); }

  [[nodiscard]] double mean() const {
    return samples_.empty() ? 0.0 : sum_ / static_cast<double>(samples_.size());
  }

  [[nodiscard]] double stddev() const {
    const std::size_t n = samples_.size();
    if (n < 2) return 0.0;
    const double m = mean();
    const double var = (sum_sq_ - static_cast<double>(n) * m * m) / static_cast<double>(n - 1);
    return var > 0.0 ? std::sqrt(var) : 0.0;
  }

  [[nodiscard]] double min() const { return order_statistic(0.0); }
  [[nodiscard]] double max() const { return order_statistic(1.0); }
  [[nodiscard]] double median() const { return percentile(50.0); }

  /// Exact percentile (nearest-rank on the retained samples), p in [0, 100].
  [[nodiscard]] double percentile(double p) const {
    if (p < 0.0 || p > 100.0) throw std::invalid_argument{"percentile: p out of range"};
    return order_statistic(p / 100.0);
  }

  [[nodiscard]] const std::vector<double>& samples() const { return samples_; }

 private:
  [[nodiscard]] double order_statistic(double q) const {
    if (samples_.empty()) return 0.0;
    if (!sorted_) {
      sorted_samples_ = samples_;
      std::sort(sorted_samples_.begin(), sorted_samples_.end());
      sorted_ = true;
    }
    const auto idx = static_cast<std::size_t>(q * (static_cast<double>(sorted_samples_.size()) - 1) + 0.5);
    return sorted_samples_[std::min(idx, sorted_samples_.size() - 1)];
  }

  std::vector<double> samples_;
  mutable std::vector<double> sorted_samples_;
  mutable bool sorted_ = false;
  double sum_ = 0.0;
  double sum_sq_ = 0.0;
};

}  // namespace smn::analysis
