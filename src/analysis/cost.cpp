#include "analysis/cost.h"

namespace smn::analysis {

CostBreakdown compute_cost(const CostConfig& cfg, const CostInputs& in) {
  CostBreakdown out;
  out.labor_usd = in.technician_hours * cfg.technician_hourly_usd;
  out.robot_usd = in.robot_units * cfg.robot_unit_capex_usd / cfg.robot_life_years *
                      in.elapsed_years +
                  in.robot_busy_hours * cfg.robot_opex_hourly_usd;
  out.downtime_usd = in.downtime_link_hours * cfg.downtime_link_hour_usd +
                     in.impaired_link_hours * cfg.impaired_link_hour_usd;
  out.parts_usd = static_cast<double>(in.transceivers_replaced) * cfg.transceiver_usd +
                  static_cast<double>(in.cables_replaced) * cfg.cable_usd +
                  static_cast<double>(in.devices_replaced) * cfg.device_usd;
  out.overprovision_usd =
      in.overprovisioned_links * cfg.overprovision_link_year_usd * in.elapsed_years;
  out.total_usd = out.labor_usd + out.robot_usd + out.downtime_usd + out.parts_usd +
                  out.overprovision_usd;
  return out;
}

}  // namespace smn::analysis
