// Plain-text table rendering for experiment harnesses, plus CSV export.
#pragma once

#include <initializer_list>
#include <ostream>
#include <string>
#include <vector>

namespace smn::analysis {

class Table {
 public:
  explicit Table(std::vector<std::string> headers) : headers_{std::move(headers)} {}

  /// Adds a row; each cell is pre-formatted text. Row width must match.
  void add_row(std::vector<std::string> cells);

  /// Formats a double with `decimals` places (helper for add_row).
  [[nodiscard]] static std::string num(double v, int decimals = 2);
  [[nodiscard]] static std::string num(std::size_t v);
  [[nodiscard]] static std::string num(int v);

  void print(std::ostream& os) const;
  void write_csv(std::ostream& os) const;

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace smn::analysis
