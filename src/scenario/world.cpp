#include "scenario/world.h"

namespace smn::scenario {

WorldConfig WorldConfig::for_level(core::AutomationLevel level) {
  WorldConfig cfg;
  cfg.controller.level = level;
  const core::LevelTraits t = core::traits(level);
  cfg.use_robots = t.robots_allowed;
  cfg.technicians.assist_factor = t.tool_assist_factor;
  switch (level) {
    case core::AutomationLevel::kL0_Manual:
    case core::AutomationLevel::kL1_OperatorAssist:
      // No robots; impact-aware scheduling needs the robot control plane's
      // contact prediction, so the human baseline runs without it.
      cfg.controller.impact_aware = false;
      cfg.controller.proactive.enabled = false;
      break;
    case core::AutomationLevel::kL2_PartialAutomation:
      cfg.controller.impact_aware = true;
      cfg.controller.proactive.enabled = false;  // supervision is too scarce
      break;
    case core::AutomationLevel::kL3_HighAutomation:
      cfg.controller.impact_aware = true;
      cfg.controller.proactive.enabled = true;
      break;
    case core::AutomationLevel::kL4_FullAutomation:
      cfg.controller.impact_aware = true;
      cfg.controller.proactive.enabled = true;
      // §2.1: "Every datacenter repair operation is fully autonomous" — the
      // L4 fleet includes the fiber-laying and device-swap units.
      cfg.fleet.can_replace_cable = true;
      cfg.fleet.can_replace_device = true;
      break;
  }
  return cfg;
}

World::World(const topology::Blueprint& blueprint, WorldConfig cfg)
    : cfg_{std::move(cfg)},
      obs_{std::make_unique<obs::Obs>(cfg_.obs)},
      environment_{cfg_.environment} {
  sim::RngFactory rngs{cfg_.seed};

  cfg_.network.seed = cfg_.seed;
  network_ = std::make_unique<net::Network>(blueprint, cfg_.network, sim_);

  // Wire the event loop first so every later component's activity is counted;
  // the sim holds only inline null-checked handles, never the bundle itself.
  sim_.set_obs(obs_->metrics() != nullptr ? obs_->metrics()->counter("sim_events_total") : nullptr,
               obs_->recorder());
  network_->set_obs(obs_.get());
  tickets_.set_obs(obs_.get());

  injector_ = std::make_unique<fault::FaultInjector>(*network_, environment_,
                                                     rngs.stream("faults"), cfg_.faults);
  cascade_ = std::make_unique<fault::CascadeModel>(
      *network_, environment_, *injector_, rngs.stream("cascade"), cfg_.cascade);
  contamination_ = std::make_unique<fault::ContaminationProcess>(
      *network_, environment_, rngs.stream("contamination"), cfg_.contamination);
  // Fault-side instrumentation: injected faults, cascade hops, and
  // contamination threshold crossings all land in the flight recorder so an
  // SMN_ASSERT dump shows the causal chain, not just controller activity.
  injector_->set_obs(obs_.get());
  cascade_->set_obs(obs_.get());
  contamination_->set_obs(obs_.get());
  detection_ = std::make_unique<telemetry::DetectionEngine>(
      *network_, rngs.stream("detection"), cfg_.detection);
  detection_->set_obs(obs_.get());
  cfg_.technicians.use_fom = cfg_.fom_workflows;
  cfg_.fleet.use_fom = cfg_.fom_workflows;
  technicians_ = std::make_unique<maintenance::TechnicianPool>(
      *network_, *cascade_, contamination_.get(), rngs.stream("technicians"),
      cfg_.technicians);
  if (cfg_.use_robots) {
    robotics::RobotFleet::Config fleet_cfg = cfg_.fleet;
    if (fleet_cfg.units.empty()) {
      fleet_cfg.units = robotics::RobotFleet::row_coverage(blueprint).units;
    }
    fleet_ = std::make_unique<robotics::RobotFleet>(
        *network_, *cascade_, contamination_.get(), rngs.stream("fleet"), fleet_cfg);
  }
  if (fleet_ != nullptr) {
    // §3.4 safety interlock: robots stand down in any row where a technician
    // is physically working.
    technicians_->set_presence_listener(
        [this](const topology::RackLocation& loc, sim::Duration dwell) {
          fleet_->lock_row(loc, dwell);
        });
  }
  controller_ = std::make_unique<core::MaintenanceController>(
      *network_, *detection_, tickets_, *cascade_, *technicians_, fleet_.get(),
      rngs.stream("controller"), cfg_.controller);
  availability_ = std::make_unique<analysis::AvailabilityTracker>(*network_);
  if (cfg_.storage.enabled) {
    storage_ = std::make_unique<storage::DataPlane>(*network_, rngs.stream("storage"),
                                                    cfg_.storage);
    storage_->set_obs(obs_.get());
  }

  technicians_->set_obs(obs_.get());
  if (fleet_ != nullptr) fleet_->set_obs(obs_.get());
  controller_->set_obs(obs_.get());
}

void World::start() {
  if (started_) return;
  started_ = true;
  injector_->start();
  contamination_->start();
  detection_->start();
  controller_->start();
  if (storage_ != nullptr) storage_->start();
  // Keep the vibration-event list bounded on long runs.
  sim_.schedule_every(sim::Duration::days(1), [this] { environment_.prune(sim_.now()); });
  if (cfg_.invariant_interval > sim::Duration::zero()) {
    sim_.schedule_every(cfg_.invariant_interval, [this] { check_invariants(); });
  }
}

void World::check_invariants() const {
  sim_.check_invariants();
  network_->check_invariants();
  tickets_.check_invariants();
  if (fleet_ != nullptr) fleet_->check_invariants();
  if (storage_ != nullptr) storage_->check_invariants();
}

void World::run_for(sim::Duration d) {
  start();
  sim_.run_until(sim_.now() + d);
}

}  // namespace smn::scenario
