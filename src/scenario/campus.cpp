#include "scenario/campus.h"

#include <algorithm>
#include <cstring>
#include <string>
#include <utility>

#include "core/check.h"

namespace smn::scenario {

Campus::Campus(const topology::CampusBlueprint& blueprint, CampusConfig cfg)
    : cfg_{std::move(cfg)}, graph_{blueprint}, spare_pool_{cfg_.spare_pool} {
  SMN_ASSERT(!blueprint.halls.empty(), "campus needs at least one hall");
  if (graph_.coupled()) {
    // Conservative lookahead: the epoch may be at most the fastest trunk,
    // so every message sent inside an epoch is deliverable strictly after
    // its barrier. EpochSchedule's constructor enforces lookahead > 0.
    lookahead_ = sim::EpochSchedule{sim::TimePoint{}, graph_.min_latency()}.lookahead();
  }

  domains_.reserve(blueprint.halls.size());
  for (std::size_t i = 0; i < blueprint.halls.size(); ++i) {
    WorldConfig hall_cfg = cfg_.hall;
    hall_cfg.seed = domain_seed(cfg_.hall.seed, i);
    sim::RngFactory rngs{hall_cfg.seed};
    auto d = std::make_unique<Domain>(static_cast<int>(i), rngs.stream("campus-xtraffic"));
    d->world = std::make_unique<World>(blueprint.halls[i], std::move(hall_cfg));
    // Campus-coupling instruments are registered only when trunks exist, so
    // an uncoupled domain's registry — like its event trace — is
    // byte-identical to a standalone World's (the differential-test anchor).
    if (graph_.coupled()) {
      if (obs::Registry* reg = d->world->obs().metrics()) {
        d->tx_flows = reg->counter("campus_xtraffic_tx_total");
        d->rx_flows = reg->counter("campus_xtraffic_rx_total");
        d->rx_degraded = reg->counter("campus_xtraffic_rx_degraded_total");
        d->rx_gbps = reg->histogram("campus_xtraffic_rx_gbps",
                                    {5.0, 10.0, 20.0, 40.0, 80.0, 160.0, 320.0});
        d->spares_requested = reg->counter("campus_spares_requested_total");
        d->spares_granted = reg->counter("campus_spares_granted_total");
        d->spares_denied = reg->counter("campus_spares_denied_total");
        d->depot_level = reg->gauge("campus_spare_depot_level");
        d->depot_level->set(static_cast<double>(spare_pool_.stock()));
        if (cfg_.hall.storage.enabled) {
          d->repl_tx = reg->counter("campus_storage_repl_tx_total");
          d->repl_rx = reg->counter("campus_storage_repl_rx_total");
        }
      }
    }
    domains_.push_back(std::move(d));
  }
}

void Campus::start() {
  if (started_) return;
  started_ = true;
  next_barrier_ = now_ + lookahead_;
  for (const std::unique_ptr<Domain>& dp : domains_) {
    Domain& d = *dp;
    d.world->start();
    if (!graph_.coupled()) continue;
    if (cfg_.traffic_period > sim::Duration::zero() && !graph_.peers(d.index).empty()) {
      d.world->simulator().schedule_every(cfg_.traffic_period,
                                          [this, dom = &d] { traffic_tick(*dom); });
    }
    if (cfg_.spare_audit_period > sim::Duration::zero()) {
      d.world->simulator().schedule_every(cfg_.spare_audit_period,
                                          [this, dom = &d] { spare_audit_tick(*dom); });
    }
    if (cfg_.hall.storage.enabled && cfg_.storage_repl_period > sim::Duration::zero() &&
        !graph_.peers(d.index).empty()) {
      d.world->simulator().schedule_every(cfg_.storage_repl_period,
                                          [this, dom = &d] { storage_repl_tick(*dom); });
    }
  }
}

void Campus::traffic_tick(Domain& d) {
  const sim::TimePoint now = d.world->now();
  for (const net::DomainPeer& peer : graph_.peers(d.index)) {
    for (int f = 0; f < cfg_.flows_per_tick; ++f) {
      CrossMessage m;
      m.kind = CrossMessage::Kind::kTraffic;
      m.src = d.index;
      m.dst = peer.hall;
      m.sent = now;
      m.seq = d.next_seq++;
      m.gbps = d.traffic_rng.exponential(cfg_.flow_gbps_mean);
      d.outbox.push_back(m);
      if (d.tx_flows != nullptr) d.tx_flows->inc();
    }
  }
}

void Campus::spare_audit_tick(Domain& d) {
  const std::size_t faults = d.world->injector().log().size();
  const std::size_t delta = faults - d.faults_seen;
  d.faults_seen = faults;
  if (delta == 0) return;
  CrossMessage m;
  m.kind = CrossMessage::Kind::kSpareRequest;
  m.src = d.index;
  m.dst = -1;  // the campus coordinator (shared depot)
  m.sent = d.world->now();
  m.seq = d.next_seq++;
  m.spares = static_cast<int>(delta);
  d.outbox.push_back(m);
  if (d.spares_requested != nullptr) d.spares_requested->inc(delta);
}

void Campus::storage_repl_tick(Domain& d) {
  const sim::TimePoint now = d.world->now();
  for (const net::DomainPeer& peer : graph_.peers(d.index)) {
    CrossMessage m;
    m.kind = CrossMessage::Kind::kStorageRepl;
    m.src = d.index;
    m.dst = peer.hall;
    m.sent = now;
    m.seq = d.next_seq++;
    m.mb = cfg_.storage_repl_mb;
    d.outbox.push_back(m);
    if (d.repl_tx != nullptr) d.repl_tx->inc();
  }
}

void Campus::run_chunk(sim::TimePoint target, const Executor& exec) {
  std::vector<Task> tasks;
  tasks.reserve(domains_.size());
  for (const std::unique_ptr<Domain>& dp : domains_) {
    tasks.push_back([dom = dp.get(), target, this] {
      dom->world->simulator().run_until(target);
      mailbox_.post(std::move(dom->outbox));
      dom->outbox.clear();
    });
  }
  if (exec) {
    exec(tasks);
  } else {
    for (Task& t : tasks) t();
  }
  // Coordinator side of the barrier: collect what the workers posted. The
  // arrival order is thread-timing noise; exchange() restores the canonical
  // order before anything acts on it.
  std::vector<CrossMessage> drained = mailbox_.drain();
  pending_.insert(pending_.end(), std::make_move_iterator(drained.begin()),
                  std::make_move_iterator(drained.end()));
}

void Campus::exchange(sim::TimePoint barrier) {
  ++barriers_passed_;
  std::sort(pending_.begin(), pending_.end(),
            [](const CrossMessage& a, const CrossMessage& b) { return a.key() < b.key(); });
  spare_pool_.restock_to(barrier);
  for (const CrossMessage& m : pending_) {
    switch (m.kind) {
      case CrossMessage::Kind::kTraffic: {
        SMN_ASSERT(m.dst >= 0 && m.dst < static_cast<int>(domains_.size()),
                   "cross-traffic message to unknown hall %d", m.dst);
        Domain& dst = *domains_[static_cast<std::size_t>(m.dst)];
        const sim::Duration latency = graph_.latency(m.src, m.dst);
        SMN_ASSERT(latency < sim::Duration::max(), "cross-traffic between non-adjacent halls");
        // Conservative lookahead guarantees sent + latency > barrier, so the
        // destination (parked exactly at the barrier) receives no event in
        // its past.
        dst.world->simulator().schedule_at(m.sent + latency, [dom = &dst, gbps = m.gbps] {
          if (dom->rx_flows != nullptr) dom->rx_flows->inc();
          if (dom->rx_gbps != nullptr) dom->rx_gbps->observe(gbps);
          const bool impaired =
              dom->world->network().count_links(net::LinkState::kDown) > 0;
          if (impaired && dom->rx_degraded != nullptr) dom->rx_degraded->inc();
        });
        break;
      }
      case CrossMessage::Kind::kStorageRepl: {
        SMN_ASSERT(m.dst >= 0 && m.dst < static_cast<int>(domains_.size()),
                   "storage replica message to unknown hall %d", m.dst);
        Domain& dst = *domains_[static_cast<std::size_t>(m.dst)];
        const sim::Duration latency = graph_.latency(m.src, m.dst);
        SMN_ASSERT(latency < sim::Duration::max(), "storage replica between non-adjacent halls");
        dst.world->simulator().schedule_at(m.sent + latency, [dom = &dst, mb = m.mb] {
          if (dom->repl_rx != nullptr) dom->repl_rx->inc();
          if (dom->world->has_storage()) dom->world->storage().absorb_replica_mb(mb);
        });
        break;
      }
      case CrossMessage::Kind::kSpareRequest: {
        // Campus-level controller decision: arbitration happens here, at the
        // barrier, in canonical message order — first-sent, first-served,
        // ties broken by hall index. The grant travels back over the campus
        // spine: one lookahead out, one back.
        const int granted = spare_pool_.grant(m.spares);
        const int denied = m.spares - granted;
        const int level = spare_pool_.stock();
        Domain& src = *domains_[static_cast<std::size_t>(m.src)];
        src.world->simulator().schedule_at(
            m.sent + lookahead_ + lookahead_, [dom = &src, granted, denied, level] {
              if (dom->spares_granted != nullptr) {
                dom->spares_granted->inc(static_cast<std::uint64_t>(granted));
              }
              if (dom->spares_denied != nullptr) {
                dom->spares_denied->inc(static_cast<std::uint64_t>(denied));
              }
              if (dom->depot_level != nullptr) dom->depot_level->set(level);
            });
        break;
      }
    }
  }
  messages_exchanged_ += pending_.size();
  pending_.clear();
}

void Campus::run_for(sim::Duration d, const Executor& exec) {
  start();
  const sim::TimePoint end = now_ + d;
  if (!graph_.coupled()) {
    // No trunks, no barriers: domains are fully independent and can run the
    // whole span as one chunk (still parallelizable across shards).
    run_chunk(end, exec);
    now_ = end;
    return;
  }
  while (now_ < end) {
    const sim::TimePoint target = next_barrier_ < end ? next_barrier_ : end;
    run_chunk(target, exec);
    now_ = target;
    if (now_ == next_barrier_) {
      exchange(now_);
      next_barrier_ = next_barrier_ + lookahead_;
    }
  }
}

std::uint64_t Campus::trace_hash() const {
  std::string bytes;
  bytes.resize(domains_.size() * sizeof(std::uint64_t));
  for (std::size_t i = 0; i < domains_.size(); ++i) {
    const std::uint64_t h = domains_[i]->world->simulator().trace_hash();
    std::memcpy(bytes.data() + i * sizeof h, &h, sizeof h);
  }
  return obs::fnv1a(bytes);
}

std::uint64_t Campus::events_processed() const {
  std::uint64_t total = 0;
  for (const std::unique_ptr<Domain>& d : domains_) {
    total += d->world->simulator().events_processed();
  }
  return total;
}

std::vector<obs::SnapshotEntry> Campus::merged_snapshot() const {
  std::vector<std::vector<obs::SnapshotEntry>> snaps;
  snaps.reserve(domains_.size());
  for (const std::unique_ptr<Domain>& d : domains_) {
    if (const obs::Registry* reg = d->world->obs().metrics()) {
      snaps.push_back(reg->snapshot());
    }
  }
  return obs::merge_snapshots(snaps);
}

std::uint64_t Campus::metrics_hash() const {
  const std::vector<obs::SnapshotEntry> merged = merged_snapshot();
  return merged.empty() ? 0 : obs::snapshot_hash(merged);
}

void Campus::check_invariants() const {
  for (const std::unique_ptr<Domain>& d : domains_) d->world->check_invariants();
}

}  // namespace smn::scenario
