// Campus: a sharded multi-fabric world.
//
// A Campus owns one *domain* per hall. Each domain is a complete World —
// its own Simulator event queue, Network, fault injectors, ticket system,
// technician/robot fleets, and obs registry — so nothing mutable is ever
// shared between domains and each one can run on its own worker thread.
// Cross-hall physics (inter-hall traffic flows, the shared spare depot with
// campus-level grant arbitration) travel as messages exchanged at fixed
// epoch barriers under the conservative-lookahead discipline of sim/epoch.h:
//
//   1. Epoch k: every domain runs its own event loop to the barrier,
//      appending outbound messages to a private outbox. The executor may run
//      domains on any threads in any order — they share no mutable state.
//   2. Barrier k: each domain's outbox batch lands in the CrossShardMailbox
//      (the only locked structure, annotated SMN_GUARDED_BY); the calling
//      thread drains it and sorts by the canonical ExchangeKey
//      (send time, source hall, per-source sequence), erasing every trace of
//      thread timing from the order.
//   3. Deliveries are scheduled into destination simulators in that sorted
//      order. Lookahead = min cross-hall latency guarantees every delivery
//      time is strictly after the barrier, so no domain ever receives an
//      event in its past.
//
// Consequence (the property the shard-invariance CI gate enforces): per-hall
// trace hashes, the campus trace hash, merged metrics snapshots, and sweep
// JSON are byte-identical whether a replicate runs on 1, 2, or 4 shards —
// the same invariance the sweep engine proves for jobs=1 vs jobs=4, pushed
// down inside a single replicate.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "core/mutex.h"
#include "core/spare_pool.h"
#include "core/thread_annotations.h"
#include "net/domain.h"
#include "obs/metrics.h"
#include "scenario/world.h"
#include "sim/epoch.h"
#include "topology/campus.h"

namespace smn::scenario {

/// One cross-domain message. Plain data; `kind` selects the payload fields.
struct CrossMessage {
  enum class Kind : std::uint8_t {
    kTraffic,       // inter-hall flow offered to dst's fabric
    kSpareRequest,  // hall asks the shared depot for replacement units
    kStorageRepl,   // cross-hall replica delta for dst's storage data plane
  };
  Kind kind = Kind::kTraffic;
  int src = -1;  // source hall
  int dst = -1;  // destination hall; -1 = campus coordinator (spare depot)
  sim::TimePoint sent;
  std::uint64_t seq = 0;  // per-source sequence number; (src, seq) is unique
  double gbps = 0.0;      // kTraffic: offered load
  int spares = 0;         // kSpareRequest: units wanted
  double mb = 0.0;        // kStorageRepl: replica payload

  [[nodiscard]] sim::ExchangeKey key() const { return {sent, src, seq}; }
};

/// The cross-shard mailbox: domain workers post their epoch's outbox batch
/// here as they reach the barrier; the coordinator drains it once all
/// workers have joined. The only mutable state shared across shard threads,
/// and therefore the only lock — annotated so the clang -Werror=thread-safety
/// build proves every access holds it.
class CrossShardMailbox {
 public:
  /// Appends a batch (possibly empty). Called by domain tasks on worker
  /// threads at the end of each epoch chunk.
  void post(std::vector<CrossMessage>&& batch) {
    if (batch.empty()) return;
    core::MutexLock lock{mu_};
    pending_.insert(pending_.end(), std::make_move_iterator(batch.begin()),
                    std::make_move_iterator(batch.end()));
  }

  /// Takes everything posted so far. Called by the coordinator between
  /// epochs; arrival order is thread-timing-dependent, so callers must
  /// re-sort by ExchangeKey before acting on the result.
  [[nodiscard]] std::vector<CrossMessage> drain() {
    core::MutexLock lock{mu_};
    std::vector<CrossMessage> out;
    out.swap(pending_);
    return out;
  }

  [[nodiscard]] std::size_t size() const {
    core::MutexLock lock{mu_};
    return pending_.size();
  }

 private:
  mutable core::Mutex mu_;
  std::vector<CrossMessage> pending_ SMN_GUARDED_BY(mu_);
};

struct CampusConfig {
  /// Per-hall world configuration. `hall.seed` is the campus master seed;
  /// hall i actually runs at domain_seed(hall.seed, i).
  WorldConfig hall;
  /// Inter-hall traffic: every `traffic_period`, each hall offers
  /// `flows_per_tick` flows to each of its trunk peers. zero() disables.
  sim::Duration traffic_period = sim::Duration::minutes(30);
  int flows_per_tick = 2;
  /// Mean offered load per flow (exponentially distributed).
  double flow_gbps_mean = 40.0;
  /// Spare audits: every period, a hall tallies faults injected since its
  /// last audit and requests that many replacement units from the shared
  /// depot; the campus coordinator arbitrates grants at the barrier.
  /// zero() disables.
  sim::Duration spare_audit_period = sim::Duration::hours(6);
  core::SparePool::Config spare_pool;
  /// Cross-hall storage replication (active only when `hall.storage.enabled`):
  /// every period each hall pushes `storage_repl_mb` of replica deltas to
  /// each trunk peer; the delta lands in the peer's repair token bucket
  /// (storage::DataPlane::absorb_replica_mb), so replication competes with
  /// local reconstruction for repair bandwidth. zero() disables.
  sim::Duration storage_repl_period = sim::Duration::hours(2);
  double storage_repl_mb = 512.0;
};

/// Deterministic per-hall seed derivation (splitmix-style odd-constant
/// stride): hall 0 runs at the campus seed itself, so a one-hall campus with
/// coupling disabled is event-for-event the same simulation as a standalone
/// World — the anchor of the differential test suite.
[[nodiscard]] constexpr std::uint64_t domain_seed(std::uint64_t campus_seed, std::size_t hall) {
  return campus_seed + 0x9E3779B97F4A7C15ull * static_cast<std::uint64_t>(hall);
}

class Campus {
 public:
  using Task = std::function<void()>;
  /// Runs every task exactly once — on any threads, in any order — and
  /// returns only after all of them completed. Null/default means run
  /// sequentially on the calling thread (shards=1). runner::ShardPool
  /// provides the threaded implementation.
  using Executor = std::function<void(std::vector<Task>&)>;

  Campus(const topology::CampusBlueprint& blueprint, CampusConfig cfg);

  Campus(const Campus&) = delete;
  Campus& operator=(const Campus&) = delete;

  /// Starts all domains and schedules the cross-domain producers. Idempotent.
  void start();

  /// Runs the campus for `d` of simulated time. The executor (if any) is
  /// invoked once per epoch chunk with one task per domain.
  void run_for(sim::Duration d, const Executor& exec = {});

  [[nodiscard]] std::size_t domain_count() const { return domains_.size(); }
  [[nodiscard]] World& domain(std::size_t i) { return *domains_.at(i)->world; }
  [[nodiscard]] const World& domain(std::size_t i) const { return *domains_.at(i)->world; }

  [[nodiscard]] sim::TimePoint now() const { return now_; }
  /// True when any cross-hall trunk exists; an uncoupled campus runs its
  /// domains with no barriers and no extra scheduled events at all.
  [[nodiscard]] bool coupled() const { return graph_.coupled(); }
  /// The epoch length (min cross-hall trunk latency). Meaningful iff coupled.
  [[nodiscard]] sim::Duration lookahead() const { return lookahead_; }

  /// Campus trace hash: FNV-1a fold of the per-domain executed-event trace
  /// hashes in hall order — byte-identical at any shard count.
  [[nodiscard]] std::uint64_t trace_hash() const;
  [[nodiscard]] std::uint64_t events_processed() const;

  /// Merged obs snapshot across domains (values summed; empty when metrics
  /// are disabled) and its hash — the campus-level metrics determinism
  /// signal.
  [[nodiscard]] std::vector<obs::SnapshotEntry> merged_snapshot() const;
  [[nodiscard]] std::uint64_t metrics_hash() const;

  [[nodiscard]] const core::SparePool& spare_pool() const { return spare_pool_; }
  [[nodiscard]] std::uint64_t messages_exchanged() const { return messages_exchanged_; }
  [[nodiscard]] std::uint64_t barriers_passed() const { return barriers_passed_; }

  [[nodiscard]] const CampusConfig& config() const { return cfg_; }

  /// Sweeps every domain's cross-component invariants.
  void check_invariants() const;

 private:
  struct Domain {
    int index = 0;
    std::unique_ptr<World> world;
    sim::RngStream traffic_rng;
    /// Outbound messages accumulated during the current epoch. Touched only
    /// by the one task running this domain; handed to the mailbox at the
    /// chunk boundary.
    std::vector<CrossMessage> outbox;
    std::uint64_t next_seq = 1;
    std::size_t faults_seen = 0;  // injector-log watermark for spare audits
    // Campus-coupling instruments in this domain's registry (null when
    // metrics are off).
    obs::Counter* tx_flows = nullptr;
    obs::Counter* rx_flows = nullptr;
    obs::Counter* rx_degraded = nullptr;
    obs::Histogram* rx_gbps = nullptr;
    obs::Counter* spares_requested = nullptr;
    obs::Counter* spares_granted = nullptr;
    obs::Counter* spares_denied = nullptr;
    obs::Gauge* depot_level = nullptr;
    obs::Counter* repl_tx = nullptr;  // storage replica pushes sent/received
    obs::Counter* repl_rx = nullptr;

    Domain(int idx, sim::RngStream rng) : index{idx}, traffic_rng{std::move(rng)} {}
  };

  void traffic_tick(Domain& d);
  void spare_audit_tick(Domain& d);
  void storage_repl_tick(Domain& d);
  /// Runs all domains to `target` through `exec`, posting outboxes.
  void run_chunk(sim::TimePoint target, const Executor& exec);
  /// Sorted-merge delivery of everything pending at barrier time `barrier`.
  void exchange(sim::TimePoint barrier);

  CampusConfig cfg_;
  net::DomainGraph graph_;
  sim::Duration lookahead_ = sim::Duration::max();
  std::vector<std::unique_ptr<Domain>> domains_;
  CrossShardMailbox mailbox_;
  /// Messages drained from the mailbox but not yet at their barrier (a
  /// run_for boundary can land mid-epoch). Coordinator-owned.
  std::vector<CrossMessage> pending_;
  core::SparePool spare_pool_;
  sim::TimePoint now_;
  sim::TimePoint next_barrier_;
  std::uint64_t messages_exchanged_ = 0;
  std::uint64_t barriers_passed_ = 0;
  bool started_ = false;
};

}  // namespace smn::scenario
