// One-call assembly of a complete self-maintaining-network world:
// network + environment + fault processes + telemetry + ticketing +
// technicians + robot fleet + controller + availability tracking.
//
// This is the library's quickstart facade: examples, integration tests, and
// every experiment harness build on it. `for_level` returns a WorldConfig
// preset implementing the §2.1 automation levels faithfully (L1 = assistive
// tooling, L2 = supervised robots, L3 = autonomous with human escalation,
// L4 = no humans, robots handle cables and devices too).
#pragma once

#include <memory>
#include <optional>

#include "analysis/availability.h"
#include "analysis/survivability.h"
#include "core/controller.h"
#include "fault/cascade.h"
#include "fault/contamination.h"
#include "fault/environment.h"
#include "fault/injector.h"
#include "maintenance/technician.h"
#include "maintenance/ticket.h"
#include "net/network.h"
#include "obs/obs.h"
#include "robotics/fleet.h"
#include "sim/event_queue.h"
#include "storage/data_plane.h"
#include "telemetry/monitor.h"
#include "topology/blueprint.h"

namespace smn::scenario {

struct WorldConfig {
  std::uint64_t seed = 1;
  net::Network::Config network;
  fault::Environment::Config environment;
  fault::ContaminationProcess::Config contamination;
  fault::FaultInjector::Config faults;
  fault::CascadeModel::Config cascade;
  telemetry::DetectionEngine::Config detection;
  maintenance::TechnicianPool::Config technicians;
  robotics::RobotFleet::Config fleet;  // units empty => row_coverage roster
  core::MaintenanceController::Config controller;
  /// SNS-repair storage data plane (off by default; `storage.enabled = true`
  /// stripes objects over the servers and turns link repair speed into
  /// repair-window and data-loss numbers).
  storage::DataPlane::Config storage;
  /// Survivability frontier (off by default). A pure post-run observer: the
  /// World itself never reads it — the sweep runner (and smnctl analyze)
  /// compute progressive-failure curves on the cell blueprint after the
  /// simulation finishes, so enabling it cannot perturb a trace hash, which
  /// --audit-determinism verifies per fabric.
  analysis::SurvivabilityConfig survivability;
  bool use_robots = true;
  /// Master switch for the continuation-style workflow scheduler: overrides
  /// `technicians.use_fom` and `fleet.use_fom` together. `false` runs the
  /// legacy per-callback scheduling (the differential-oracle reference).
  bool fom_workflows = true;
  /// Observability (metrics on by default; tracing opt-in). Instrumentation
  /// only observes — RNG draws and event order are identical with all of it
  /// off, which --audit-determinism verifies.
  obs::Options obs;
  /// Cadence of the runtime invariant sweep (`World::check_invariants`,
  /// which aborts on corruption). Duration::zero() disables it; the default
  /// is cheap enough to leave on in every experiment.
  sim::Duration invariant_interval = sim::Duration::hours(6);

  /// Preset for an automation level (§2.1). Adjust fields afterwards freely.
  [[nodiscard]] static WorldConfig for_level(core::AutomationLevel level);
};

class World {
 public:
  World(const topology::Blueprint& blueprint, WorldConfig cfg);

  World(const World&) = delete;
  World& operator=(const World&) = delete;

  /// Starts all periodic processes (fault injection, contamination,
  /// detection, proactive scans). Idempotent.
  void start();

  /// Runs the simulation for `d` from the current simulated time.
  void run_for(sim::Duration d);

  /// Cross-component invariant sweep: simulator bookkeeping, network
  /// referential integrity, ticket state machine, fleet dispatcher state.
  /// Aborts (via SMN_ASSERT) on the first violation. Runs automatically
  /// every `WorldConfig::invariant_interval` of simulated time.
  void check_invariants() const;

  [[nodiscard]] sim::TimePoint now() const { return sim_.now(); }

  // Component access (stable for the World's lifetime).
  sim::Simulator& simulator() { return sim_; }
  net::Network& network() { return *network_; }
  fault::Environment& environment() { return environment_; }
  fault::FaultInjector& injector() { return *injector_; }
  fault::CascadeModel& cascade() { return *cascade_; }
  fault::ContaminationProcess& contamination() { return *contamination_; }
  telemetry::DetectionEngine& detection() { return *detection_; }
  maintenance::TicketSystem& tickets() { return tickets_; }
  maintenance::TechnicianPool& technicians() { return *technicians_; }
  [[nodiscard]] bool has_fleet() const { return fleet_ != nullptr; }
  robotics::RobotFleet& fleet() { return *fleet_; }
  core::MaintenanceController& controller() { return *controller_; }
  analysis::AvailabilityTracker& availability() { return *availability_; }
  [[nodiscard]] bool has_storage() const { return storage_ != nullptr; }
  storage::DataPlane& storage() { return *storage_; }
  [[nodiscard]] const storage::DataPlane& storage() const { return *storage_; }
  obs::Obs& obs() { return *obs_; }
  [[nodiscard]] const obs::Obs& obs() const { return *obs_; }

  [[nodiscard]] const WorldConfig& config() const { return cfg_; }

 private:
  WorldConfig cfg_;
  // Declared before the simulator and components: they hold raw handles into
  // the registry/recorder, so the bundle must outlive all of them.
  std::unique_ptr<obs::Obs> obs_;
  sim::Simulator sim_;
  std::unique_ptr<net::Network> network_;
  fault::Environment environment_;
  std::unique_ptr<fault::FaultInjector> injector_;
  std::unique_ptr<fault::CascadeModel> cascade_;
  std::unique_ptr<fault::ContaminationProcess> contamination_;
  std::unique_ptr<telemetry::DetectionEngine> detection_;
  maintenance::TicketSystem tickets_;
  std::unique_ptr<maintenance::TechnicianPool> technicians_;
  std::unique_ptr<robotics::RobotFleet> fleet_;
  std::unique_ptr<core::MaintenanceController> controller_;
  std::unique_ptr<analysis::AvailabilityTracker> availability_;
  std::unique_ptr<storage::DataPlane> storage_;
  bool started_ = false;
};

}  // namespace smn::scenario
