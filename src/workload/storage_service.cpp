#include "workload/storage_service.h"

#include <algorithm>
#include <stdexcept>

namespace smn::workload {

StorageService::StorageService(net::Network& net, sim::RngStream rng, Config cfg)
    : net_{net}, rng_{std::move(rng)}, cfg_{cfg} {
  const std::vector<net::DeviceId>& servers = net_.servers();
  if (static_cast<int>(servers.size()) < cfg_.replication) {
    throw std::invalid_argument{"StorageService: fewer servers than replication factor"};
  }
  placements_.reserve(static_cast<size_t>(cfg_.shards));
  for (int s = 0; s < cfg_.shards; ++s) {
    // Distinct random replica set per shard.
    std::vector<net::DeviceId> replicas;
    while (static_cast<int>(replicas.size()) < cfg_.replication) {
      const net::DeviceId candidate = servers[rng_.index(servers.size())];
      if (std::find(replicas.begin(), replicas.end(), candidate) == replicas.end()) {
        replicas.push_back(candidate);
      }
    }
    placements_.push_back(std::move(replicas));
  }
}

void StorageService::start() {
  if (started_) return;
  started_ = true;
  net_.simulator().schedule_every(cfg_.poll, [this] { poll(); });
}

bool StorageService::server_serving(net::DeviceId id) const {
  if (!net_.device(id).healthy) return false;
  for (const net::LinkId lid : net_.links_at(id)) {
    if (net_.usable(lid)) return true;
  }
  return false;
}

void StorageService::poll() {
  const double dt_hours = cfg_.poll.to_hours();
  std::size_t under_now = 0;
  bool any_last_replica = false;
  for (const std::vector<net::DeviceId>& replicas : placements_) {
    int reachable = 0;
    for (const net::DeviceId r : replicas) {
      if (server_serving(r)) ++reachable;
    }
    if (reachable < cfg_.replication) {
      ++under_now;
      under_hours_ += dt_hours;
    }
    if (reachable == 1) any_last_replica = true;
    if (reachable == 0) unavailable_hours_ += dt_hours;
  }
  worst_under_ = std::max(worst_under_, under_now);
  if (any_last_replica) ++last_replica_;
}

}  // namespace smn::workload
