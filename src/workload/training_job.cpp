#include "workload/training_job.h"

#include <stdexcept>

namespace smn::workload {

TrainingJob::TrainingJob(net::Network& net, Config cfg) : net_{net}, cfg_{std::move(cfg)} {
  if (cfg_.servers.empty()) throw std::invalid_argument{"TrainingJob: no servers"};
  if (cfg_.required_live_links <= 0) {
    throw std::invalid_argument{"TrainingJob: required_live_links must be positive"};
  }
}

void TrainingJob::start() {
  if (started_flag_) return;
  started_flag_ = true;
  started_ = net_.now();
  last_checkpoint_ = started_;
  segment_began_ = started_;
  net_.simulator().schedule_every(cfg_.poll, [this] { poll(); });
}

bool TrainingJob::fabric_healthy() const {
  for (const net::DeviceId s : cfg_.servers) {
    if (!net_.device(s).healthy) return false;
    int live = 0;
    for (const net::LinkId lid : net_.links_at(s)) {
      // Gang-synchronous collectives stall on a flapping member (§1's tail
      // latency at its worst): only Up/Degraded rails count as live.
      const net::LinkState st = net_.link(lid).state;
      if (st == net::LinkState::kUp || st == net::LinkState::kDegraded) ++live;
    }
    if (live < cfg_.required_live_links) return false;
  }
  return true;
}

void TrainingJob::poll() {
  const sim::TimePoint now = net_.now();
  const bool healthy = fabric_healthy();

  switch (state_) {
    case State::kRunning: {
      if (healthy) {
        // Commit a checkpoint when due.
        if (now - last_checkpoint_ >= cfg_.checkpoint_interval) {
          useful_hours_ += (now - last_checkpoint_).to_hours();
          last_checkpoint_ = now;
        }
        break;
      }
      // Interruption: everything since the last checkpoint is discarded.
      recomputed_hours_ += (now - last_checkpoint_).to_hours();
      ++interruptions_;
      state_ = State::kInterrupted;
      break;
    }
    case State::kInterrupted: {
      if (healthy) {
        state_ = State::kRestarting;
        restart_ready_at_ = now + cfg_.restart_overhead;
      }
      break;
    }
    case State::kRestarting: {
      if (!healthy) {
        state_ = State::kInterrupted;  // broke again mid-restart
        break;
      }
      if (now >= restart_ready_at_) {
        state_ = State::kRunning;
        last_checkpoint_ = now;  // resumes from the checkpointed watermark
      }
      break;
    }
  }
}

double TrainingJob::useful_gpu_hours() const {
  double committed = useful_hours_;
  if (state_ == State::kRunning) {
    // In-flight (uncommitted) progress counts as useful if nothing kills it;
    // report optimistically, matching how goodput dashboards read.
    committed += (net_.now() - last_checkpoint_).to_hours();
  }
  return committed * static_cast<double>(cfg_.servers.size()) * cfg_.gpus_per_server;
}

double TrainingJob::lost_gpu_hours() const {
  const double elapsed = (net_.now() - started_).to_hours();
  const double total =
      elapsed * static_cast<double>(cfg_.servers.size()) * cfg_.gpus_per_server;
  return total - useful_gpu_hours();
}

double TrainingJob::goodput() const {
  const double elapsed = (net_.now() - started_).to_hours();
  if (elapsed <= 0.0) return 1.0;
  const double total =
      elapsed * static_cast<double>(cfg_.servers.size()) * cfg_.gpus_per_server;
  return useful_gpu_hours() / total;
}

}  // namespace smn::workload
