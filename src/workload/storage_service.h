// Replicated storage service over the simulated plant.
//
// §1: "Cloud services must remain operational despite hardware failures ...
// This overprovisioning might include redundant network links or spare
// computing and storage resources." A storage service survives failures by
// replication; what repair speed buys it is a shorter *window of
// vulnerability* (§2's phrase) during which further failures can stack up on
// the same shard. This model assigns shards to replica sets, watches server
// reachability, and integrates under-replicated and unavailable shard-time.
#pragma once

#include <cstdint>
#include <vector>

#include "net/network.h"
#include "net/routing.h"
#include "sim/event_queue.h"
#include "sim/rng.h"

namespace smn::workload {

class StorageService {
 public:
  struct Config {
    int replication = 3;
    int shards = 200;
    sim::Duration poll = sim::Duration::minutes(5);
  };

  StorageService(net::Network& net, sim::RngStream rng, Config cfg);

  void start();

  /// A server is serving when it is healthy and has a usable access link.
  [[nodiscard]] bool server_serving(net::DeviceId id) const;

  /// Shard-hours spent with fewer than `replication` reachable replicas.
  [[nodiscard]] double under_replicated_shard_hours() const { return under_hours_; }
  /// Shard-hours spent with zero reachable replicas (client-visible outage).
  [[nodiscard]] double unavailable_shard_hours() const { return unavailable_hours_; }
  /// Peak number of simultaneously under-replicated shards.
  [[nodiscard]] std::size_t worst_under_replicated() const { return worst_under_; }
  /// Samples where at least one shard was down to its last replica — the
  /// §2 "window of vulnerability" in its most acute form.
  [[nodiscard]] std::size_t last_replica_episodes() const { return last_replica_; }

  [[nodiscard]] const std::vector<std::vector<net::DeviceId>>& placements() const {
    return placements_;
  }

 private:
  void poll();

  net::Network& net_;
  sim::RngStream rng_;
  Config cfg_;
  std::vector<std::vector<net::DeviceId>> placements_;  // shard -> replica servers
  double under_hours_ = 0.0;
  double unavailable_hours_ = 0.0;
  std::size_t worst_under_ = 0;
  std::size_t last_replica_ = 0;
  bool started_ = false;
};

}  // namespace smn::workload
