// Gang-scheduled training job over a set of GPU servers (§1's motivating
// workload).
//
// "a single network link failing or an HBM module failing changes the
// resource availability per GPU, potentially causing significant fraction of
// the GPU-cluster to go offline, which is costly."
//
// Semantics match production training: the job makes progress only while
// every member server has its required rail count live (rail-optimized
// collectives are gang-synchronous); on a violation the job stops, work since
// the last checkpoint is lost, and resuming costs a restart overhead on top
// of the outage itself. GPU-hours lost therefore exceed raw repair time —
// the amplification that makes repair latency so expensive in AI clusters.
#pragma once

#include <cstdint>
#include <vector>

#include "net/network.h"
#include "sim/event_queue.h"

namespace smn::workload {

class TrainingJob {
 public:
  struct Config {
    std::vector<net::DeviceId> servers;  // gang members
    int gpus_per_server = 8;
    /// Live links each member needs for the collective to run at full rate.
    int required_live_links = 8;
    sim::Duration checkpoint_interval = sim::Duration::minutes(30);
    /// Cost of resuming after an interruption (load checkpoint, rebuild
    /// communicators), paid once the fabric is healthy again.
    sim::Duration restart_overhead = sim::Duration::minutes(10);
    sim::Duration poll = sim::Duration::minutes(1);
  };

  TrainingJob(net::Network& net, Config cfg);

  void start();

  /// Wall-clock GPU accounting at the current sim time.
  [[nodiscard]] double useful_gpu_hours() const;
  [[nodiscard]] double lost_gpu_hours() const;
  /// Fraction of elapsed time spent making useful progress.
  [[nodiscard]] double goodput() const;
  [[nodiscard]] std::size_t interruptions() const { return interruptions_; }
  /// Progress discarded because it post-dated the last checkpoint, hours.
  [[nodiscard]] double recomputed_hours() const { return recomputed_hours_; }

 private:
  enum class State { kRunning, kInterrupted, kRestarting };

  [[nodiscard]] bool fabric_healthy() const;
  void poll();

  net::Network& net_;
  Config cfg_;
  State state_ = State::kRunning;
  sim::TimePoint started_;
  sim::TimePoint last_checkpoint_;
  sim::TimePoint segment_began_;     // current running segment start
  sim::TimePoint restart_ready_at_;  // when the restart overhead completes
  double useful_hours_ = 0.0;        // committed (checkpointed) progress
  double recomputed_hours_ = 0.0;
  std::size_t interruptions_ = 0;
  bool started_flag_ = false;
};

}  // namespace smn::workload
