#include "storage/data_plane.h"

#include <cstddef>

#include "core/check.h"

namespace smn::storage {

DataPlane::DataPlane(net::Network& net, sim::RngStream rng, Config cfg)
    : net_{net},
      rng_{std::move(rng)},
      cfg_{std::move(cfg)},
      fom_engine_{net.simulator()},
      pool_{net, rng_, cfg_.layout},
      read_fom_{*this},
      repair_fom_{*this} {}

void DataPlane::set_obs(obs::Obs* o) {
  if (o == nullptr || o->metrics() == nullptr) return;
  obs::Registry& reg = *o->metrics();
  fom_engine_.set_obs(reg.counter("sim_wakeups_storage_total"));
  obs_reads_ = reg.counter("storage_reads_total");
  obs_degraded_ = reg.counter("storage_degraded_reads_total");
  obs_unavailable_ = reg.counter("storage_unavailable_reads_total");
  obs_repairs_ = reg.counter("storage_repairs_total");
  obs_dirty_transitions_ = reg.counter("storage_dirty_episodes_total");
  obs_lost_ = reg.counter("storage_stripes_lost_total");
  obs_repaired_mb_ = reg.gauge("storage_repaired_mb");
  obs_replica_mb_ = reg.gauge("storage_replica_ingest_mb");
  obs_dirty_ = reg.gauge("storage_dirty_stripes");
  obs_rate_ = reg.gauge("storage_repair_rate_mbps");
  obs_window_hours_ =
      reg.histogram("storage_repair_window_hours",
                    {0.5, 1.0, 2.0, 4.0, 8.0, 24.0, 72.0, 168.0});
  obs_read_tail_ =
      reg.histogram("storage_degraded_read_tail_factor", net::fct_factor_bounds());
  // Seed the level gauges/counters from the wiring-time pool state (a pool
  // indexed into an already-degraded fabric starts with dirty stripes).
  sync_pool_obs();
}

void DataPlane::start() {
  if (started_) return;
  started_ = true;
  net_.subscribe([this](const net::Link& l, net::LinkState, net::LinkState) {
    pool_.on_link_transition(l);
    finish_clean_episodes();
    sync_pool_obs();
    kick_repair();
  });
  if (cfg_.read_interval > sim::Duration::zero() && cfg_.reads_per_tick > 0 &&
      pool_.stripe_count() > 0) {
    fom_engine_.wake_after(read_fom_, cfg_.read_interval);
  }
  kick_repair();  // the fabric may already be degraded at start
}

double DataPlane::fabric_health() const {
  double total = 0.0;
  double usable = 0.0;
  for (const net::Link& l : net_.links()) {
    total += l.capacity_gbps;
    switch (l.state) {
      case net::LinkState::kUp:
        usable += l.capacity_gbps;
        break;
      case net::LinkState::kDegraded:
        usable += 0.5 * l.capacity_gbps;
        break;
      case net::LinkState::kFlapping:
      case net::LinkState::kDown:
        break;
    }
  }
  const double health = total <= 0.0 ? 1.0 : usable / total;
  return health < cfg_.health_floor ? cfg_.health_floor : health;
}

double DataPlane::current_repair_mbps() const {
  return cfg_.repair_mbps * fabric_health();
}

void DataPlane::absorb_replica_mb(double mb) {
  if (mb <= 0.0) return;
  backlog_mb_ += mb;
  if (obs_replica_mb_ != nullptr) obs_replica_mb_->add(mb);
  kick_repair();
}

void DataPlane::kick_repair() {
  if (!started_ || !cfg_.repair) return;
  if (repair_fom_.phase() != RepairCoordinator::kIdle || repair_fom_.armed()) return;
  if (pool_.dirty_count() == 0 && backlog_mb_ <= 0.0) return;
  fom_engine_.wake(repair_fom_);
}

void DataPlane::finish_clean_episodes() {
  const sim::TimePoint now = net_.now();
  std::size_t s = pool_.first_dirty(0);
  while (s < pool_.stripe_count()) {
    const std::size_t next = s + 1;
    if (pool_.stripe(s).failed == 0) {
      const sim::Duration ep = pool_.finish_episode_if_clean(s, now);
      if (ep >= sim::Duration::zero()) record_window(ep);
    }
    s = pool_.first_dirty(next);
  }
}

void DataPlane::record_window(sim::Duration episode) {
  ++windows_;
  window_hours_sum_ += episode.to_hours();
  if (obs_window_hours_ != nullptr) obs_window_hours_->observe(episode.to_hours());
}

void DataPlane::sync_pool_obs() {
  if (obs_dirty_transitions_ != nullptr) {
    obs_dirty_transitions_->inc(pool_.dirty_transitions() - seen_dirty_transitions_);
    obs_lost_->inc(pool_.stripes_lost_ever() - seen_lost_);
    obs_dirty_->set(static_cast<double>(pool_.dirty_count()));
  }
  seen_dirty_transitions_ = pool_.dirty_transitions();
  seen_lost_ = pool_.stripes_lost_ever();
}

void DataPlane::read_tick() {
  for (int i = 0; i < cfg_.reads_per_tick; ++i) one_read();
}

void DataPlane::one_read() {
  // Exactly one draw per read, whatever the outcome — later reads never
  // depend on how many earlier ones went degraded.
  const std::size_t s = rng_.index(pool_.stripe_count());
  ++reads_;
  if (obs_reads_ != nullptr) obs_reads_->inc();

  const Stripe& st = pool_.stripe(s);
  const int serving = pool_.units_serving(s);
  if (st.lost || serving < cfg_.layout.data_units) {
    ++unavailable_reads_;
    if (obs_unavailable_ != nullptr) obs_unavailable_->inc();
    return;
  }
  if (serving == pool_.width()) return;  // clean read: no fan-out

  // Degraded read: reconstruct at the first serving unit's server from the
  // next N-1 serving units, charging the fan-out to the live fabric.
  ++degraded_reads_;
  if (obs_degraded_ != nullptr) obs_degraded_->inc();
  fanout_.flows.clear();
  net::DeviceId reconstructor{};
  int sources = 0;
  for (std::size_t u = 0; u < st.units.size() && sources < cfg_.layout.data_units - 1;
       ++u) {
    if ((st.failed >> u) & 1u) continue;
    if (!reconstructor.valid()) {
      reconstructor = st.units[u];
      continue;
    }
    fanout_.flows.push_back({st.units[u], reconstructor, cfg_.read_gbps});
    ++sources;
  }
  if (fanout_.flows.empty()) return;  // N == 1: the surviving unit serves alone
  const net::LoadReport report = net::route_and_load(net_, fanout_);
  if (obs_read_tail_ != nullptr) obs_read_tail_->observe(report.p99_tail_factor);
}

sim::Fom::Tick DataPlane::ReadFom::tick() {
  dp_.read_tick();
  engine().wake_after(*this, dp_.cfg_.read_interval);
  return Tick::kWait;
}

sim::Fom::Tick DataPlane::RepairCoordinator::tick() {
  switch (phase()) {
    case kIdle:
      set_phase(kPick);
      return Tick::kAgain;

    case kPick: {
      // Canonical order: always the lowest dirty group with plannable work.
      dp_.rebuild_units_.clear();
      dp_.rebuild_targets_.clear();
      std::size_t s = dp_.pool_.first_dirty(0);
      while (s < dp_.pool_.stripe_count()) {
        const Stripe& st = dp_.pool_.stripe(s);
        for (int u = 0; u < dp_.pool_.width(); ++u) {
          if (((st.failed >> u) & 1u) == 0) continue;
          const net::DeviceId target = dp_.pool_.rebuild_target(s, static_cast<int>(u));
          if (target.valid()) {
            dp_.rebuild_units_.push_back(u);
            dp_.rebuild_targets_.push_back(target);
          }
        }
        if (!dp_.rebuild_units_.empty()) break;
        s = dp_.pool_.first_dirty(s + 1);  // blocked: no serving target anywhere
      }

      double work_mb = dp_.backlog_mb_;
      dp_.backlog_mb_ = 0.0;
      if (!dp_.rebuild_units_.empty()) {
        dp_.rebuild_stripe_ = s;
        work_mb += dp_.cfg_.layout.unit_mb *
                   static_cast<double>(dp_.rebuild_units_.size());
      }
      if (work_mb <= 0.0) {
        // Nothing repairable: park until a serving flip or replica ingest.
        dp_.last_rate_mbps_ = 0.0;
        if (dp_.obs_rate_ != nullptr) dp_.obs_rate_->set(0.0);
        set_phase(kIdle);
        return Tick::kWait;
      }
      // The throttle: the bucket refills at repair_mbps scaled by live fabric
      // health, so an impaired fabric stretches this very rebuild.
      const double rate = dp_.current_repair_mbps();
      dp_.last_rate_mbps_ = rate;
      if (dp_.obs_rate_ != nullptr) dp_.obs_rate_->set(rate);
      dp_.rebuild_mb_ = work_mb;
      set_phase(kRebuild);
      engine().wake_after(*this, sim::Duration::seconds(work_mb / rate));
      return Tick::kWait;
    }

    case kRebuild: {
      if (!dp_.rebuild_units_.empty()) {
        const std::size_t s = dp_.rebuild_stripe_;
        for (std::size_t i = 0; i < dp_.rebuild_units_.size(); ++i) {
          const int u = dp_.rebuild_units_[i];
          // A unit whose server recovered mid-rebuild needs no placement; a
          // target that died mid-rebuild leaves the bit set for the next pick.
          if ((dp_.pool_.stripe(s).failed >> u) & 1u) {
            dp_.pool_.place_unit(s, u, dp_.rebuild_targets_[i]);
          }
        }
        ++dp_.repairs_completed_;
        if (dp_.obs_repairs_ != nullptr) dp_.obs_repairs_->inc();
        const sim::Duration ep = dp_.pool_.finish_episode_if_clean(s, dp_.net_.now());
        if (ep >= sim::Duration::zero()) dp_.record_window(ep);
        dp_.rebuild_units_.clear();
        dp_.rebuild_targets_.clear();
      }
      dp_.repaired_mb_ += dp_.rebuild_mb_;
      if (dp_.obs_repaired_mb_ != nullptr) dp_.obs_repaired_mb_->add(dp_.rebuild_mb_);
      dp_.rebuild_mb_ = 0.0;
      dp_.sync_pool_obs();
      set_phase(kPick);
      return Tick::kAgain;
    }

    default:
      SMN_ASSERT(false, "RepairCoordinator in unknown phase %d", phase());
      return Tick::kDone;
  }
}

void DataPlane::check_invariants() const {
  pool_.check_invariants();
  SMN_ASSERT(backlog_mb_ >= 0.0, "negative replica backlog %f", backlog_mb_);
  SMN_ASSERT(rebuild_units_.size() == rebuild_targets_.size(),
             "rebuild plan units/targets out of step");
  SMN_ASSERT(degraded_reads_ + unavailable_reads_ <= reads_,
             "read outcome counters exceed issued reads");
  SMN_ASSERT(repair_fom_.phase() == RepairCoordinator::kRebuild ||
                 rebuild_mb_ == 0.0,
             "rebuild work charged outside a rebuild");
  fom_engine_.check_invariants(read_fom_);
  fom_engine_.check_invariants(repair_fom_);
}

}  // namespace smn::storage
