// The SNS-repair storage data plane: degraded reads and background
// reconstruction riding on the simulated fabric.
//
// Two FOMs drive everything (sim/fom.h, the continuation scheduler):
//
//  * ReadFom — the client-side workload. Every `read_interval` it issues a
//    batch of reads against random stripes. A read of a clean group is a
//    cheap bookkeeping tick; a read of a degraded group fans out to the N
//    surviving units, routes those reconstruction flows over the *live*
//    fabric through net::route_and_load, and records the resulting p99
//    tail-latency factor — a flapping link on the fan-out path is exactly
//    the "curse of a flapping link" (§1) made client-visible. A group with
//    fewer than N serving units is unreadable (data loss if >K failed).
//
//  * RepairCoordinator — background SNS repair. Failures mark parity groups
//    dirty (StripePool); the coordinator drains the dirty set in canonical
//    ascending-group order, one reconstruction at a time. The rebuild rate
//    is throttled by live fabric health: the repair token bucket refills at
//    `repair_mbps * health` where health is the usable fraction of fabric
//    links, so impaired links shrink the bucket and maintenance quality
//    directly moves repair-window length — the co-design observable E19
//    measures. Cross-hall replica ingest (Campus) drains the same bucket.
//
// Everything is deterministic: one named RNG stream, wakeups through a
// FomEngine (counted in sim_wakeups_storage_total), no wall clock, no
// hash-order iteration. With the fabric healthy and no dirty groups the
// steady state is one read batch per interval and zero allocations — the
// property bench_storage_repair gates.
#pragma once

#include <cstdint>
#include <vector>

#include "net/network.h"
#include "net/traffic.h"
#include "obs/obs.h"
#include "sim/fom.h"
#include "sim/rng.h"
#include "storage/stripe_pool.h"

namespace smn::storage {

class DataPlane {
 public:
  struct Config {
    /// World-level master switch: scenario::World only constructs a
    /// DataPlane when set, so storage-off worlds keep byte-identical traces.
    bool enabled = false;
    StripePool::Config layout;
    /// Read workload: every interval, `reads_per_tick` random-stripe reads.
    /// zero() disables the read path entirely.
    sim::Duration read_interval = sim::Duration::minutes(15);
    int reads_per_tick = 4;
    /// Offered load of each reconstruction fan-out flow during a degraded
    /// read (charged to net::Traffic when routing the fan-out).
    double read_gbps = 1.0;
    /// Background reconstruction; false keeps groups dirty forever (the
    /// degenerate StorageService-oracle configuration).
    bool repair = true;
    /// Healthy-fabric reconstruction bandwidth (token-bucket refill rate at
    /// health 1.0).
    double repair_mbps = 250.0;
    /// Throttle floor: the bucket never refills slower than this fraction of
    /// repair_mbps, so repair always converges once failures stop.
    double health_floor = 0.05;
  };

  DataPlane(net::Network& net, sim::RngStream rng, Config cfg);

  /// Registers storage_* instruments eagerly (stable snapshot schema whether
  /// or not a single byte is ever repaired) and the FOM wakeup counter.
  void set_obs(obs::Obs* o);

  /// Arms the read workload and subscribes repair to failures. Idempotent.
  void start();

  [[nodiscard]] StripePool& pool() { return pool_; }
  [[nodiscard]] const StripePool& pool() const { return pool_; }
  [[nodiscard]] const Config& config() const { return cfg_; }

  /// Live fabric health in [health_floor, 1]: the capacity-weighted usable
  /// fraction of links (Down and Flapping count as unusable, Degraded half).
  [[nodiscard]] double fabric_health() const;
  /// The bucket refill rate at the current health — the throttle observable.
  [[nodiscard]] double current_repair_mbps() const;

  /// Cross-hall replica ingest (Campus epoch exchange): replication traffic
  /// competes with local reconstruction for the same repair bucket.
  void absorb_replica_mb(double mb);

  // --- statistics (sweep metric sources) ---
  [[nodiscard]] std::uint64_t reads() const { return reads_; }
  [[nodiscard]] std::uint64_t degraded_reads() const { return degraded_reads_; }
  [[nodiscard]] std::uint64_t unavailable_reads() const { return unavailable_reads_; }
  [[nodiscard]] std::uint64_t repairs_completed() const { return repairs_completed_; }
  [[nodiscard]] double repaired_mb() const { return repaired_mb_; }
  /// Sum / count of completed dirty-episode lengths (first failure -> fully
  /// clean), the "repair window" of the paper's co-design question.
  [[nodiscard]] double repair_window_hours_sum() const { return window_hours_sum_; }
  [[nodiscard]] std::uint64_t repair_windows() const { return windows_; }
  [[nodiscard]] double mean_repair_window_hours() const {
    return windows_ == 0 ? 0.0 : window_hours_sum_ / static_cast<double>(windows_);
  }
  [[nodiscard]] double data_loss_fraction() const {
    return pool_.stripe_count() == 0
               ? 0.0
               : static_cast<double>(pool_.stripes_lost_ever()) /
                     static_cast<double>(pool_.stripe_count());
  }
  [[nodiscard]] double degraded_read_fraction() const {
    return reads_ == 0 ? 0.0
                       : static_cast<double>(degraded_reads_ + unavailable_reads_) /
                             static_cast<double>(reads_);
  }

  void check_invariants() const;

 private:
  class ReadFom final : public sim::Fom {
   public:
    explicit ReadFom(DataPlane& dp) : sim::Fom(dp.fom_engine_), dp_(dp) {}

   protected:
    Tick tick() override;

   private:
    DataPlane& dp_;
  };

  class RepairCoordinator final : public sim::Fom {
   public:
    enum Phase { kIdle = 0, kPick, kRebuild };
    explicit RepairCoordinator(DataPlane& dp) : sim::Fom(dp.fom_engine_), dp_(dp) {}

   protected:
    Tick tick() override;

   private:
    DataPlane& dp_;
  };

  void read_tick();
  void one_read();
  /// Wakes the coordinator if it is parked and there is (potentially)
  /// repairable work. Called from the failure observer and replica ingest.
  void kick_repair();
  /// Closes dirty episodes whose failures all recovered on their own (the
  /// pool clears failure bits on recovery but leaves episode accounting to
  /// us), recording their windows just like repair-closed ones.
  void finish_clean_episodes();
  void record_window(sim::Duration episode);
  /// Folds pool deltas (dirty gauge, transition/loss counters) into obs.
  void sync_pool_obs();

  net::Network& net_;
  sim::RngStream rng_;
  Config cfg_;
  sim::FomEngine fom_engine_;
  StripePool pool_;
  ReadFom read_fom_;
  RepairCoordinator repair_fom_;
  bool started_ = false;

  // In-flight rebuild plan (reused across picks; no steady-state growth).
  std::size_t rebuild_stripe_ = 0;
  std::vector<int> rebuild_units_;
  std::vector<net::DeviceId> rebuild_targets_;
  double rebuild_mb_ = 0.0;  // bucket work charged to the in-flight rebuild

  // Repair bucket bookkeeping.
  double backlog_mb_ = 0.0;  // replica ingest waiting to drain the bucket
  double last_rate_mbps_ = 0.0;

  // Degraded-read scratch (cleared, never shrunk: the fan-out matrix stops
  // allocating once its capacity covers N flows).
  net::TrafficMatrix fanout_;

  std::uint64_t reads_ = 0;
  std::uint64_t degraded_reads_ = 0;
  std::uint64_t unavailable_reads_ = 0;
  std::uint64_t repairs_completed_ = 0;
  double repaired_mb_ = 0.0;
  double window_hours_sum_ = 0.0;
  std::uint64_t windows_ = 0;

  // Instruments (null when metrics are off).
  obs::Counter* obs_reads_ = nullptr;
  obs::Counter* obs_degraded_ = nullptr;
  obs::Counter* obs_unavailable_ = nullptr;
  obs::Counter* obs_repairs_ = nullptr;
  obs::Counter* obs_lost_ = nullptr;
  obs::Counter* obs_dirty_transitions_ = nullptr;
  obs::Gauge* obs_repaired_mb_ = nullptr;  // monotone; gauges carry fractions
  obs::Gauge* obs_replica_mb_ = nullptr;
  obs::Gauge* obs_dirty_ = nullptr;
  obs::Gauge* obs_rate_ = nullptr;
  obs::Histogram* obs_window_hours_ = nullptr;
  obs::Histogram* obs_read_tail_ = nullptr;
  std::uint64_t seen_dirty_transitions_ = 0;
  std::uint64_t seen_lost_ = 0;
};

}  // namespace smn::storage
