#include "storage/stripe_pool.h"

#include <algorithm>
#include <bit>
#include <stdexcept>

#include "core/check.h"

namespace smn::storage {
namespace {

[[nodiscard]] std::int64_t pack_rack(const topology::RackLocation& loc) {
  return (static_cast<std::int64_t>(loc.hall) << 40) |
         (static_cast<std::int64_t>(static_cast<std::uint32_t>(loc.row)) << 20) |
         static_cast<std::int64_t>(static_cast<std::uint32_t>(loc.rack));
}

}  // namespace

StripePool::StripePool(const net::Network& net, sim::RngStream& rng, Config cfg)
    : net_{net}, cfg_{std::move(cfg)} {
  if (cfg_.data_units < 1 || cfg_.parity_units < 0) {
    throw std::invalid_argument{"StripePool: need N >= 1 data units and K >= 0 parity"};
  }
  if (width() > 32) {
    throw std::invalid_argument{"StripePool: N+K exceeds the 32-unit failure mask"};
  }
  if (!cfg_.explicit_placements.empty()) {
    stripes_.reserve(cfg_.explicit_placements.size());
    for (const std::vector<net::DeviceId>& row : cfg_.explicit_placements) {
      Stripe s;
      s.units = row;
      stripes_.push_back(std::move(s));
    }
    cfg_.stripes = static_cast<int>(stripes_.size());
    cfg_.parity_units = static_cast<int>(stripes_.front().units.size()) - cfg_.data_units;
    SMN_ASSERT(cfg_.parity_units >= 0, "explicit placement narrower than N");
  } else {
    build_layout(rng);
  }
  index_placements();
}

void StripePool::build_layout(sim::RngStream& rng) {
  const std::vector<net::DeviceId>& servers = net_.servers();
  if (static_cast<int>(servers.size()) < width()) {
    throw std::invalid_argument{"StripePool: fewer servers than stripe width N+K"};
  }
  // Group the roster by rack, preserving roster order (deterministic: the
  // roster is immutable and rack keys are geometric, not hashed).
  std::vector<std::int64_t> rack_keys;
  std::vector<std::vector<net::DeviceId>> racks;
  for (const net::DeviceId id : servers) {
    const std::int64_t key = pack_rack(net_.device(id).location);
    const auto it = std::find(rack_keys.begin(), rack_keys.end(), key);
    if (it == rack_keys.end()) {
      rack_keys.push_back(key);
      racks.emplace_back();
      racks.back().push_back(id);
    } else {
      racks[static_cast<std::size_t>(it - rack_keys.begin())].push_back(id);
    }
  }

  stripes_.resize(static_cast<std::size_t>(cfg_.stripes));
  for (Stripe& s : stripes_) {
    s.units.reserve(static_cast<std::size_t>(width()));
    // Walk the racks round-robin from a random offset, drawing one server
    // per rack per lap: with enough racks every unit lands in its own
    // failure domain; smaller plants wrap but still never reuse a server.
    const std::size_t offset = rng.index(racks.size());
    std::size_t step = 0;
    while (static_cast<int>(s.units.size()) < width()) {
      SMN_ASSERT(step < racks.size() * static_cast<std::size_t>(width()),
                 "stripe placement failed to converge");
      const std::vector<net::DeviceId>& rack = racks[(offset + step) % racks.size()];
      ++step;
      // One random probe, then a deterministic in-rack scan — the draw count
      // per stripe is fixed, so layouts of later stripes never depend on
      // how many collisions earlier picks hit.
      const std::size_t probe = rng.index(rack.size());
      for (std::size_t j = 0; j < rack.size(); ++j) {
        const net::DeviceId candidate = rack[(probe + j) % rack.size()];
        if (std::find(s.units.begin(), s.units.end(), candidate) == s.units.end()) {
          s.units.push_back(candidate);
          break;
        }
      }
    }
  }
}

void StripePool::index_placements() {
  hosted_.assign(net_.devices().size(), {});
  serving_.assign(net_.devices().size(), 0);
  for (std::size_t s = 0; s < stripes_.size(); ++s) {
    Stripe& st = stripes_[s];
    SMN_ASSERT(!st.units.empty(), "stripe %zu has no units", s);
    for (std::size_t u = 0; u < st.units.size(); ++u) {
      const std::size_t dev = static_cast<std::size_t>(st.units[u].value());
      hosted_.at(dev).push_back(
          {static_cast<std::uint32_t>(s), static_cast<std::uint16_t>(u)});
    }
  }
  // Initial serving state and failure masks (a world may wire storage into
  // an already-degraded fabric, e.g. on a replay).
  for (std::size_t dev = 0; dev < hosted_.size(); ++dev) {
    if (hosted_[dev].empty()) continue;
    const bool ok = compute_serving(net::DeviceId{static_cast<std::int32_t>(dev)});
    serving_[dev] = ok ? 1 : 0;
    if (ok) continue;
    for (const Hosted& h : hosted_[dev]) {
      stripes_[h.stripe].failed |= 1u << h.unit;
    }
  }
  const sim::TimePoint now = net_.now();
  for (Stripe& st : stripes_) {
    if (st.failed == 0) continue;
    st.dirty = true;
    st.dirty_since = now;
    ++dirty_count_;
    ++dirty_transitions_;
    if (std::popcount(st.failed) > cfg_.parity_units) {
      st.lost = true;
      ++stripes_lost_ever_;
    }
  }
}

bool StripePool::compute_serving(net::DeviceId server) const {
  if (!net_.device(server).healthy) return false;
  for (const net::LinkId lid : net_.links_at(server)) {
    if (net_.usable(lid)) return true;
  }
  return false;
}

bool StripePool::serving(net::DeviceId server) const {
  const std::size_t dev = static_cast<std::size_t>(server.value());
  return dev < serving_.size() && serving_[dev] != 0;
}

int StripePool::units_serving(std::size_t s) const {
  const Stripe& st = stripes_.at(s);
  return static_cast<int>(st.units.size()) - std::popcount(st.failed);
}

std::size_t StripePool::first_dirty(std::size_t from) const {
  for (std::size_t s = from; s < stripes_.size(); ++s) {
    if (stripes_[s].dirty) return s;
  }
  return stripes_.size();
}

void StripePool::on_link_transition(const net::Link& l) {
  for (const net::DeviceId dev : {l.end_a.device, l.end_b.device}) {
    const std::size_t i = static_cast<std::size_t>(dev.value());
    if (i >= hosted_.size() || hosted_[i].empty()) continue;
    const bool now_serving = compute_serving(dev);
    if (now_serving != (serving_[i] != 0)) apply_serving_flip(dev, now_serving);
  }
}

void StripePool::apply_serving_flip(net::DeviceId server, bool serving_now) {
  const std::size_t dev = static_cast<std::size_t>(server.value());
  serving_[dev] = serving_now ? 1 : 0;
  const sim::TimePoint now = net_.now();
  for (const Hosted& h : hosted_[dev]) {
    Stripe& st = stripes_[h.stripe];
    const std::uint32_t bit = 1u << h.unit;
    if (serving_now) {
      st.failed &= ~bit;
    } else {
      st.failed |= bit;
      if (!st.dirty) {
        st.dirty = true;
        st.dirty_since = now;
        ++dirty_count_;
        ++dirty_transitions_;
      }
      if (!st.lost && std::popcount(st.failed) > cfg_.parity_units) {
        st.lost = true;
        ++stripes_lost_ever_;
      }
    }
  }
}

void StripePool::place_unit(std::size_t s, int u, net::DeviceId target) {
  Stripe& st = stripes_.at(s);
  const std::size_t ui = static_cast<std::size_t>(u);
  const net::DeviceId old = st.units.at(ui);
  if (old != target) {
    std::vector<Hosted>& from = hosted_.at(static_cast<std::size_t>(old.value()));
    std::erase_if(from, [&](const Hosted& h) {
      return h.stripe == static_cast<std::uint32_t>(s) &&
             h.unit == static_cast<std::uint16_t>(ui);
    });
    hosted_.at(static_cast<std::size_t>(target.value()))
        .push_back({static_cast<std::uint32_t>(s), static_cast<std::uint16_t>(ui)});
    st.units[ui] = target;
  }
  // The rebuilt unit's health is its (possibly new) server's health; keep the
  // tracked flag fresh even if no transition fired since the last look.
  const std::size_t ti = static_cast<std::size_t>(target.value());
  serving_[ti] = compute_serving(target) ? 1 : 0;
  const std::uint32_t bit = 1u << ui;
  if (serving_[ti] != 0) {
    st.failed &= ~bit;
  } else {
    st.failed |= bit;
  }
}

sim::Duration StripePool::finish_episode_if_clean(std::size_t s, sim::TimePoint now) {
  Stripe& st = stripes_.at(s);
  if (!st.dirty || st.failed != 0) return sim::Duration::hours(-1.0);
  st.dirty = false;
  st.lost = false;
  SMN_ASSERT(dirty_count_ > 0, "dirty episode finished with zero dirty count");
  --dirty_count_;
  return now - st.dirty_since;
}

net::DeviceId StripePool::rebuild_target(std::size_t s, int u) {
  const Stripe& st = stripes_.at(s);
  const net::DeviceId original = st.units.at(static_cast<std::size_t>(u));
  if (serving(original)) return original;

  const std::vector<net::DeviceId>& roster = net_.servers();
  auto hosts_stripe = [&](net::DeviceId dev) {
    for (const Hosted& h : hosted_[static_cast<std::size_t>(dev.value())]) {
      if (h.stripe == static_cast<std::uint32_t>(s)) return true;
    }
    return false;
  };
  auto rack_clash = [&](net::DeviceId dev) {
    const std::int64_t key = rack_of(dev);
    for (std::size_t v = 0; v < st.units.size(); ++v) {
      if (static_cast<int>(v) == u) continue;
      if (rack_of(st.units[v]) == key) return true;
    }
    return false;
  };
  // Two deterministic passes from the rotating cursor: prefer a fresh
  // failure domain; fall back to any serving non-member so small plants can
  // still drain a dead rack.
  for (const bool relax : {false, true}) {
    for (std::size_t j = 0; j < roster.size(); ++j) {
      const net::DeviceId cand = roster[(rebuild_cursor_ + j) % roster.size()];
      if (!serving(cand) && !compute_serving(cand)) continue;
      if (hosts_stripe(cand)) continue;
      if (!relax && rack_clash(cand)) continue;
      rebuild_cursor_ = (rebuild_cursor_ + j + 1) % roster.size();
      return cand;
    }
  }
  return net::DeviceId{};
}

std::int64_t StripePool::rack_of(net::DeviceId server) const {
  return pack_rack(net_.device(server).location);
}

void StripePool::check_invariants() const {
  std::size_t dirty = 0;
  for (std::size_t s = 0; s < stripes_.size(); ++s) {
    const Stripe& st = stripes_[s];
    SMN_ASSERT(static_cast<int>(st.units.size()) == width(),
               "stripe %zu width %zu != N+K %d", s, st.units.size(), width());
    SMN_ASSERT(st.dirty == (st.failed != 0 || st.lost),
               "stripe %zu dirty flag out of sync with failure mask", s);
    if (st.dirty) ++dirty;
    for (std::size_t u = 0; u < st.units.size(); ++u) {
      const std::size_t dev = static_cast<std::size_t>(st.units[u].value());
      const bool tracked_ok = serving_.at(dev) != 0;
      SMN_ASSERT(((st.failed >> u) & 1u) == (tracked_ok ? 0u : 1u),
                 "stripe %zu unit %zu failure bit disagrees with serving flag", s, u);
      for (std::size_t v = u + 1; v < st.units.size(); ++v) {
        SMN_ASSERT(st.units[u] != st.units[v], "stripe %zu reuses a server", s);
      }
      bool indexed = false;
      for (const Hosted& h : hosted_.at(dev)) {
        indexed = indexed || (h.stripe == s && h.unit == u);
      }
      SMN_ASSERT(indexed, "stripe %zu unit %zu missing from the host index", s, u);
    }
  }
  SMN_ASSERT(dirty == dirty_count_, "dirty count %zu != flagged stripes %zu", dirty_count_,
             dirty);
  // The incremental serving flags must agree with a fresh derivation — a
  // missed Network transition would silently freeze a stripe's health.
  for (std::size_t dev = 0; dev < hosted_.size(); ++dev) {
    if (hosted_[dev].empty()) continue;
    const bool fresh = compute_serving(net::DeviceId{static_cast<std::int32_t>(dev)});
    SMN_ASSERT((serving_[dev] != 0) == fresh, "stale serving flag for device %zu", dev);
  }
}

}  // namespace smn::storage
