// Striped-object placement and health bookkeeping — the data half of the
// SNS-repair data plane (à la the cortx-motr SNS-repair HLDs).
//
// A StripePool carves the cluster's objects into `stripes` parity groups of
// N data + K parity units and places each group's N+K units on distinct
// servers in distinct racks (rack-level failure-domain separation, so a rack
// power event costs at most one unit per group). Placement is a pure
// function of the seed: the same fabric and stream produce the same layout
// on every run, which is what lets the sweep engine reproduce repair-window
// numbers byte-for-byte.
//
// The pool tracks which units are *serving* (endpoint device healthy with a
// usable access link — the same predicate workload::StorageService polls
// for) incrementally from link-state transitions, stamps parity groups dirty
// on the first failure, and declares a group *lost* the instant more than K
// units are down at once (data is unrecoverable; §2's window of
// vulnerability closed too late). The RepairCoordinator in data_plane.h
// consumes the dirty set in canonical (ascending group id) order.
#pragma once

#include <cstdint>
#include <vector>

#include "net/network.h"
#include "sim/rng.h"
#include "sim/time.h"

namespace smn::storage {

/// One parity group: N+K units, each on its own server.
struct Stripe {
  std::vector<net::DeviceId> units;  // unit -> server; [0,N) data, [N,N+K) parity
  std::uint32_t failed = 0;          // bit u set: units[u]'s server is not serving
  bool lost = false;                 // >K units failed simultaneously at some point
  bool dirty = false;                // failed != 0 || lost
  sim::TimePoint dirty_since{};      // start of the current dirty episode
};

class StripePool {
 public:
  struct Config {
    int data_units = 8;    // N
    int parity_units = 2;  // K
    int stripes = 64;      // parity groups
    double unit_mb = 2048.0;
    /// Test hook: when non-empty, use these placements verbatim (one row per
    /// stripe; row width becomes N+K with the configured N) instead of the
    /// seeded rack-separated layout. The differential oracle against
    /// workload::StorageService injects that service's placements here.
    std::vector<std::vector<net::DeviceId>> explicit_placements;
  };

  /// Builds the layout by drawing from `rng` (a named stream owned by the
  /// caller); the pool keeps no reference to it afterwards.
  StripePool(const net::Network& net, sim::RngStream& rng, Config cfg);

  [[nodiscard]] int width() const { return cfg_.data_units + cfg_.parity_units; }
  [[nodiscard]] std::size_t stripe_count() const { return stripes_.size(); }
  [[nodiscard]] const Stripe& stripe(std::size_t s) const { return stripes_[s]; }
  [[nodiscard]] const Config& config() const { return cfg_; }

  /// Units of stripe `s` currently serving (width - popcount(failed)).
  [[nodiscard]] int units_serving(std::size_t s) const;
  /// Whether a read of stripe `s` can complete right now: at least N units
  /// serving (a degraded read reconstructs from any N of the N+K).
  [[nodiscard]] bool readable(std::size_t s) const {
    return units_serving(s) >= cfg_.data_units;
  }

  [[nodiscard]] std::size_t dirty_count() const { return dirty_count_; }
  /// Lowest dirty stripe id >= `from`, or stripe_count() when none — the
  /// canonical iteration order of the RepairCoordinator.
  [[nodiscard]] std::size_t first_dirty(std::size_t from) const;

  /// Lifetime dirty-episode starts (clean -> dirty transitions).
  [[nodiscard]] std::uint64_t dirty_transitions() const { return dirty_transitions_; }
  /// Parity groups that have ever crossed the >K simultaneous-failure line.
  [[nodiscard]] std::uint64_t stripes_lost_ever() const { return stripes_lost_ever_; }

  /// Re-derives the serving state of both endpoint devices of `l` and
  /// applies any flips to the hosted units. Call from a Network observer;
  /// device-health changes also surface here because Network re-derives the
  /// device's link states when health flips.
  void on_link_transition(const net::Link& l);

  /// Whether `server` is currently serving according to the pool's
  /// incremental tracking (servers not hosting any unit always read false).
  [[nodiscard]] bool serving(net::DeviceId server) const;

  /// Re-places unit `u` of stripe `s` onto `target` and marks it rebuilt
  /// (serving state of the target decides the new failed bit). Used by the
  /// repair path after reconstruction completes.
  void place_unit(std::size_t s, int u, net::DeviceId target);

  /// Marks the current dirty episode of `s` finished if all units serve
  /// again; returns the episode length, or a negative duration when the
  /// stripe is still dirty. Clears `lost` (the group has been re-initialized
  /// from surviving replicas or fresh writes).
  [[nodiscard]] sim::Duration finish_episode_if_clean(std::size_t s, sim::TimePoint now);

  /// Deterministic rebuild-target choice for a failed unit of stripe `s`:
  /// the original server if it serves again, else the next serving server
  /// (round-robin over the roster from an internal cursor) that hosts no
  /// unit of `s`, preferring rack-disjoint candidates. Returns an invalid id
  /// when no candidate exists (the stripe stays dirty; the coordinator is
  /// re-kicked on the next serving flip).
  [[nodiscard]] net::DeviceId rebuild_target(std::size_t s, int u);

  /// Cross-component invariant sweep (failed masks vs serving flags, dirty
  /// bookkeeping, index integrity). Aborts via SMN_ASSERT on corruption.
  void check_invariants() const;

 private:
  struct Hosted {
    std::uint32_t stripe = 0;
    std::uint16_t unit = 0;
  };

  void build_layout(sim::RngStream& rng);
  void index_placements();
  [[nodiscard]] bool compute_serving(net::DeviceId server) const;
  void apply_serving_flip(net::DeviceId server, bool serving_now);
  /// Rack key of a server (hall/row/rack packed); -1 for unknown devices.
  [[nodiscard]] std::int64_t rack_of(net::DeviceId server) const;

  const net::Network& net_;
  Config cfg_;
  std::vector<Stripe> stripes_;
  /// server device value -> units hosted there (empty for non-storage
  /// devices). Sized to the device table; rebuilt incrementally on
  /// place_unit.
  std::vector<std::vector<Hosted>> hosted_;
  std::vector<std::uint8_t> serving_;  // tracked serving flag per device value
  std::size_t dirty_count_ = 0;
  std::uint64_t dirty_transitions_ = 0;
  std::uint64_t stripes_lost_ever_ = 0;
  std::size_t rebuild_cursor_ = 0;  // round-robin start for target choice
};

}  // namespace smn::storage
