// Structured tracing keyed to simulated time.
//
// Events are recorded against sim::Simulator::now() — never a wall clock — so
// a trace is as reproducible as the run that produced it. Export is Chrome
// trace_event JSON ({"traceEvents":[...]}), loadable in Perfetto or
// chrome://tracing, with simulated microseconds as the timeline.
//
// Cost model: event names and categories are string literals (const char*
// stored by pointer, no allocation); recording is a bounds check plus a
// push_back into a pre-reserved vector. When a build configures
// -DSMN_OBS_TRACE=OFF, SMN_OBS_TRACE_ENABLED is 0 and the SMN_TRACE_STMT
// instrumentation macro compiles to nothing — the disabled cost is zero, not
// "a branch". The TraceBuffer class itself stays defined either way so tests
// and exporters always compile.
//
// Concurrency contract: single-owner, no internal locking. A TraceBuffer is
// confined to its World's thread (one World per sweep worker); smn_analyze's
// shared-mutable-state rule guards the no-hidden-global-state half of that
// invariant, and any future cross-thread use must adopt core/mutex.h +
// SMN_GUARDED_BY per the DESIGN.md thread-safety policy.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/time.h"

#ifndef SMN_OBS_TRACE_ENABLED
#define SMN_OBS_TRACE_ENABLED 1
#endif

#if SMN_OBS_TRACE_ENABLED
/// Wraps an instrumentation statement; compiled away under -DSMN_OBS_TRACE=OFF.
/// Usage: SMN_TRACE_STMT(if (obs_) obs_->trace.instant("link-flap", "net", now));
#define SMN_TRACE_STMT(stmt) \
  do {                       \
    stmt;                    \
  } while (0)
#else
#define SMN_TRACE_STMT(stmt) \
  do {                       \
  } while (0)
#endif

namespace smn::obs {

class JsonWriter;

/// Bounded, allocation-stable buffer of trace events.
class TraceBuffer {
 public:
  /// Chrome trace_event phases we emit.
  enum class Phase : char {
    kInstant = 'i',    // point event
    kComplete = 'X',   // span with explicit duration
    kAsyncBegin = 'b', // async span start (keyed by id)
    kAsyncEnd = 'e',   // async span end (keyed by id)
  };

  struct Event {
    Phase ph;
    const char* name;  // string literal; stored by pointer
    const char* cat;   // string literal category ("sim", "net", "ticket", ...)
    std::int64_t ts_us = 0;
    std::int64_t dur_us = 0;   // kComplete only
    std::uint64_t id = 0;      // async correlation key (ticket id, ...)
    // Up to two integer arguments, emitted into the trace "args" object.
    const char* arg0_name = nullptr;
    std::int64_t arg0 = 0;
    const char* arg1_name = nullptr;
    std::int64_t arg1 = 0;
  };

  explicit TraceBuffer(std::size_t max_events = kDefaultMaxEvents);

  void instant(const char* name, const char* cat, sim::TimePoint t,
               const char* arg0_name = nullptr, std::int64_t arg0 = 0,
               const char* arg1_name = nullptr, std::int64_t arg1 = 0) {
    Event ev{Phase::kInstant, name, cat, t.count_us(), 0, 0, arg0_name, arg0, arg1_name, arg1};
    push(ev);
  }

  void complete(const char* name, const char* cat, sim::TimePoint start, sim::TimePoint end,
                const char* arg0_name = nullptr, std::int64_t arg0 = 0,
                const char* arg1_name = nullptr, std::int64_t arg1 = 0) {
    Event ev{Phase::kComplete, name,      cat,  start.count_us(), (end - start).count_us(),
             0,                arg0_name, arg0, arg1_name,        arg1};
    push(ev);
  }

  void async_begin(const char* name, const char* cat, sim::TimePoint t, std::uint64_t id,
                   const char* arg0_name = nullptr, std::int64_t arg0 = 0) {
    Event ev{Phase::kAsyncBegin, name, cat, t.count_us(), 0, id, arg0_name, arg0, nullptr, 0};
    push(ev);
  }

  void async_end(const char* name, const char* cat, sim::TimePoint t, std::uint64_t id,
                 const char* arg0_name = nullptr, std::int64_t arg0 = 0) {
    Event ev{Phase::kAsyncEnd, name, cat, t.count_us(), 0, id, arg0_name, arg0, nullptr, 0};
    push(ev);
  }

  [[nodiscard]] const std::vector<Event>& events() const { return events_; }
  [[nodiscard]] std::size_t size() const { return events_.size(); }
  /// Events discarded because the buffer hit max_events.
  [[nodiscard]] std::uint64_t dropped() const { return dropped_; }

  /// Chrome trace_event JSON document: {"traceEvents":[...], ...}.
  [[nodiscard]] std::string to_chrome_json() const;
  void write_chrome_json(JsonWriter& w) const;

  static constexpr std::size_t kDefaultMaxEvents = std::size_t{1} << 20;

 private:
  void push(const Event& ev) {
    if (events_.size() >= max_events_) {
      ++dropped_;
      return;
    }
    events_.push_back(ev);
  }

  std::size_t max_events_;
  std::vector<Event> events_;
  std::uint64_t dropped_ = 0;
};

}  // namespace smn::obs
