// The per-World observability bundle: one metrics registry, one optional
// trace buffer, one optional flight recorder.
//
// A World owns exactly one Obs and hands `Obs*` to each component at wiring
// time; components register their instruments eagerly (stable schema across
// replicates) and keep raw handles for the hot path. Every pointer here can
// be null — metrics off, tracing off, recorder off — and instrumented code
// null-checks once per event, which is the entire disabled cost for metrics
// and the recorder. Tracing can additionally be compiled out wholesale with
// -DSMN_OBS_TRACE=OFF (see trace.h).
#pragma once

#include <memory>
#include <string>

#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace smn::obs {

struct Options {
  bool metrics = true;
  bool trace = false;
  std::size_t trace_max_events = TraceBuffer::kDefaultMaxEvents;
  /// Ring capacity for the crash flight recorder; 0 disables it.
  std::size_t flight_recorder_capacity = FlightRecorder::kDefaultCapacity;

  [[nodiscard]] static Options disabled() { return {false, false, 0, 0}; }
};

class Obs {
 public:
  explicit Obs(const Options& opts);

  Obs(const Obs&) = delete;
  Obs& operator=(const Obs&) = delete;

  /// Null when the corresponding facility is disabled.
  [[nodiscard]] Registry* metrics() { return metrics_.get(); }
  [[nodiscard]] const Registry* metrics() const { return metrics_.get(); }
  [[nodiscard]] TraceBuffer* trace() { return trace_.get(); }
  [[nodiscard]] const TraceBuffer* trace() const { return trace_.get(); }
  [[nodiscard]] FlightRecorder* recorder() { return recorder_.get(); }
  [[nodiscard]] const FlightRecorder* recorder() const { return recorder_.get(); }

  [[nodiscard]] const Options& options() const { return opts_; }

  /// Metrics snapshot hash, or 0 when metrics are disabled.
  [[nodiscard]] std::uint64_t metrics_hash() const {
    return metrics_ ? metrics_->snapshot_hash() : 0;
  }

  /// Export helpers used by smnctl. Return false (and print to stderr) on
  /// I/O failure or when the facility is disabled.
  bool write_metrics_prom(const std::string& path) const;
  bool write_trace_json(const std::string& path) const;

 private:
  Options opts_;
  std::unique_ptr<Registry> metrics_;
  std::unique_ptr<TraceBuffer> trace_;
  std::unique_ptr<FlightRecorder> recorder_;
};

}  // namespace smn::obs
