#include "obs/obs.h"

#include <cstdio>

namespace smn::obs {
namespace {

bool write_file(const std::string& path, const std::string& contents, const char* what) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "error: cannot open %s for %s output\n", path.c_str(), what);
    return false;
  }
  const std::size_t written = std::fwrite(contents.data(), 1, contents.size(), f);
  const bool ok = written == contents.size() && std::fclose(f) == 0;
  if (!ok) std::fprintf(stderr, "error: short write to %s\n", path.c_str());
  return ok;
}

}  // namespace

Obs::Obs(const Options& opts) : opts_(opts) {
  if (opts.metrics) metrics_ = std::make_unique<Registry>();
  if (opts.trace) trace_ = std::make_unique<TraceBuffer>(opts.trace_max_events);
  if (opts.flight_recorder_capacity > 0) {
    recorder_ = std::make_unique<FlightRecorder>(opts.flight_recorder_capacity);
    recorder_->install();
  }
}

bool Obs::write_metrics_prom(const std::string& path) const {
  if (!metrics_) {
    std::fprintf(stderr, "error: metrics are disabled; nothing to write to %s\n", path.c_str());
    return false;
  }
  return write_file(path, metrics_->to_prometheus(), "metrics");
}

bool Obs::write_trace_json(const std::string& path) const {
  if (!trace_) {
    std::fprintf(stderr, "error: tracing is disabled; nothing to write to %s\n", path.c_str());
    return false;
  }
  return write_file(path, trace_->to_chrome_json(), "trace");
}

}  // namespace smn::obs
