#include "obs/flight_recorder.h"

namespace smn::obs {

std::vector<FlightRecorder::Record> FlightRecorder::recent() const {
  std::vector<Record> out;
  const std::size_t cap = ring_.size();
  const std::size_t n = total_ < cap ? static_cast<std::size_t>(total_) : cap;
  out.reserve(n);
  // head_ points at the next write slot; with a full ring that is also the
  // oldest record. With a partially-filled ring the valid range is [0, head_).
  const std::size_t start = total_ < cap ? 0 : head_;
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(ring_[(start + i) % cap]);
  }
  return out;
}

void FlightRecorder::dump(std::FILE* out) const {
  const std::vector<Record> records = recent();
  std::fprintf(out, "--- flight recorder: last %zu of %llu events ---\n", records.size(),
               static_cast<unsigned long long>(total_));
  for (const Record& r : records) {
    std::fprintf(out, "  t=%lldus %s a=%lld b=%lld\n", static_cast<long long>(r.t_us),
                 r.what != nullptr ? r.what : "?", static_cast<long long>(r.a),
                 static_cast<long long>(r.b));
  }
  std::fprintf(out, "--- end flight recorder ---\n");
  std::fflush(out);
}

}  // namespace smn::obs
