// Crash flight recorder: a bounded ring of the most recent simulator events
// and controller decisions, dumped to stderr when an SMN_ASSERT fires.
//
// The recorder answers "what were the last N things that happened?" at the
// moment an invariant breaks — the question PR 1's invariant checks could
// detect but not explain. record() is the hot-path call (inline: index math
// plus four stores, no allocation after construction); the dump path only
// runs when the process is already dying.
//
// Installation goes through the thread-local hook in core/check.h: one
// recorder per World, one World per sweep-worker thread, so thread-local is
// exactly the right scope and concurrent replicates never share a hook.
//
// Concurrency contract: single-owner, no internal locking — the ring is
// written only from its World's thread, and the crash-dump path runs on that
// same thread (SMN_ASSERT aborts in place). The thread-local hook itself is
// the one deliberate piece of non-World state, justified where it lives in
// core/check.h under smn_analyze's shared-mutable-state rule.
#pragma once

#include <cstdint>
#include <cstdio>
#include <vector>

#include "core/check.h"

namespace smn::obs {

class FlightRecorder {
 public:
  struct Record {
    std::int64_t t_us = 0;      // simulated time of the event
    const char* what = nullptr; // string literal tag ("sim-event", "dispatch", ...)
    std::int64_t a = 0;         // event id / ticket id / link id ...
    std::int64_t b = 0;         // secondary detail (state, decision code, ...)
  };

  explicit FlightRecorder(std::size_t capacity = kDefaultCapacity)
      : ring_(capacity > 0 ? capacity : 1) {}

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  ~FlightRecorder() { uninstall(); }

  void record(std::int64_t t_us, const char* what, std::int64_t a = 0, std::int64_t b = 0) {
    Record& r = ring_[head_];
    r.t_us = t_us;
    r.what = what;
    r.a = a;
    r.b = b;
    head_ = (head_ + 1) % ring_.size();
    ++total_;
  }

  /// Records in arrival order, oldest first. Size is min(total, capacity).
  [[nodiscard]] std::vector<Record> recent() const;

  [[nodiscard]] std::uint64_t total_recorded() const { return total_; }
  [[nodiscard]] std::size_t capacity() const { return ring_.size(); }

  /// Writes the recent history to `out` (stderr in the crash path).
  void dump(std::FILE* out) const;

  /// Registers this recorder with the calling thread's SMN_ASSERT crash hook.
  /// The destructor uninstalls, but only if this recorder still owns the hook
  /// (a newer World on the same thread may have replaced it).
  void install() {
    core::detail::check_dump_hook() = {&FlightRecorder::dump_trampoline, this};
  }
  void uninstall() {
    core::detail::CheckDumpHook& hook = core::detail::check_dump_hook();
    if (hook.ctx == this) hook = core::detail::CheckDumpHook{};
  }

  static constexpr std::size_t kDefaultCapacity = 256;

 private:
  static void dump_trampoline(const void* ctx) {
    static_cast<const FlightRecorder*>(ctx)->dump(stderr);
  }

  std::vector<Record> ring_;
  std::size_t head_ = 0;       // next write position
  std::uint64_t total_ = 0;    // lifetime record() calls
};

}  // namespace smn::obs
