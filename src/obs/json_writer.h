// Minimal streaming JSON writer for machine-readable reports.
//
// Just enough for the sweep report and the observability exports: nested
// objects/arrays, string escaping, and *deterministic* number formatting
// ("%.10g") so two reports built from identical data are byte-identical —
// the property the thread-count invariance test diffs on.
//
// Lives in obs (the lowest shared reporting layer) so both the trace/metrics
// exporters and the sweep runner emit through the same writer;
// runner/json_writer.h re-exports it under its historical name.
#pragma once

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

namespace smn::obs {

class JsonWriter {
 public:
  void begin_object() {
    comma();
    out_ += '{';
    fresh_.push_back(true);
  }
  void end_object() {
    out_ += '}';
    fresh_.pop_back();
  }
  void begin_array() {
    comma();
    out_ += '[';
    fresh_.push_back(true);
  }
  void end_array() {
    out_ += ']';
    fresh_.pop_back();
  }

  /// Emits `"k":`; the next value call supplies the payload.
  void key(std::string_view k) {
    comma();
    quote(k);
    out_ += ':';
    pending_key_ = true;
  }

  void value(std::string_view s) {
    comma();
    quote(s);
  }
  void value(const char* s) { value(std::string_view{s}); }
  void value(bool b) {
    comma();
    out_ += b ? "true" : "false";
  }
  void value(double d) {
    comma();
    if (!std::isfinite(d)) {
      out_ += "null";
      return;
    }
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.10g", d);
    out_ += buf;
  }
  void value(std::uint64_t v) {
    comma();
    out_ += std::to_string(v);
  }
  void value(std::int64_t v) {
    comma();
    out_ += std::to_string(v);
  }
  void value(int v) {
    comma();
    out_ += std::to_string(v);
  }

  /// Convenience: key + value in one call.
  template <typename T>
  void kv(std::string_view k, T v) {
    key(k);
    value(v);
  }

  [[nodiscard]] const std::string& str() const { return out_; }

  /// 16-hex-digit rendering for trace hashes (JSON numbers lose 64-bit ints).
  [[nodiscard]] static std::string hex64(std::uint64_t v) {
    char buf[17];
    std::snprintf(buf, sizeof buf, "%016llx", static_cast<unsigned long long>(v));
    return buf;
  }

 private:
  // Inserts the separating comma unless this is the first element of the
  // enclosing aggregate or the payload of a just-written key.
  void comma() {
    if (pending_key_) {
      pending_key_ = false;
      return;
    }
    if (!fresh_.empty()) {
      if (!fresh_.back()) out_ += ',';
      fresh_.back() = false;
    }
  }

  void quote(std::string_view s) {
    out_ += '"';
    for (const char c : s) {
      switch (c) {
        case '"': out_ += "\\\""; break;
        case '\\': out_ += "\\\\"; break;
        case '\n': out_ += "\\n"; break;
        case '\r': out_ += "\\r"; break;
        case '\t': out_ += "\\t"; break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof buf, "\\u%04x", c);
            out_ += buf;
          } else {
            out_ += c;
          }
      }
    }
    out_ += '"';
  }

  std::string out_;
  std::vector<bool> fresh_;  // per open aggregate: no element written yet
  bool pending_key_ = false;
};

}  // namespace smn::obs
