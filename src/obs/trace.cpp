#include "obs/trace.h"

#include "obs/json_writer.h"

namespace smn::obs {

TraceBuffer::TraceBuffer(std::size_t max_events) : max_events_(max_events) {
  // Reserve a sensible chunk up front so the first pushes don't reallocate;
  // capped so tiny buffers (tests) don't over-allocate.
  events_.reserve(max_events_ < 4096 ? max_events_ : 4096);
}

void TraceBuffer::write_chrome_json(JsonWriter& w) const {
  w.begin_object();
  w.key("traceEvents");
  w.begin_array();
  for (const Event& ev : events_) {
    w.begin_object();
    w.kv("name", ev.name);
    w.kv("cat", ev.cat);
    const char ph[2] = {static_cast<char>(ev.ph), '\0'};
    w.kv("ph", static_cast<const char*>(ph));
    w.kv("ts", ev.ts_us);
    if (ev.ph == Phase::kComplete) w.kv("dur", ev.dur_us);
    if (ev.ph == Phase::kAsyncBegin || ev.ph == Phase::kAsyncEnd) {
      w.kv("id", JsonWriter::hex64(ev.id));
    }
    // One simulated world == one process/thread on the trace timeline.
    w.kv("pid", 1);
    w.kv("tid", 1);
    if (ev.arg0_name != nullptr || ev.arg1_name != nullptr) {
      w.key("args");
      w.begin_object();
      if (ev.arg0_name != nullptr) w.kv(ev.arg0_name, ev.arg0);
      if (ev.arg1_name != nullptr) w.kv(ev.arg1_name, ev.arg1);
      w.end_object();
    }
    w.end_object();
  }
  w.end_array();
  w.kv("displayTimeUnit", "ms");
  w.kv("smn_dropped_events", dropped_);
  w.end_object();
}

std::string TraceBuffer::to_chrome_json() const {
  JsonWriter w;
  write_chrome_json(w);
  return w.str();
}

}  // namespace smn::obs
