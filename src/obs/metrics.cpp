#include "obs/metrics.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <map>
#include <numeric>
#include <stdexcept>

#include "obs/json_writer.h"

namespace smn::obs {
namespace {

// Deterministic double rendering shared by the Prometheus exporter and the
// flattened snapshot names ("%.10g" matches JsonWriter::value(double)).
std::string format_double(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.10g", v);
  return buf;
}

constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

std::uint64_t fnv1a_bytes(std::uint64_t h, const void* data, std::size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
  return h;
}

}  // namespace

std::uint64_t fnv1a(std::string_view bytes) {
  return fnv1a_bytes(kFnvOffset, bytes.data(), bytes.size());
}

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  for (std::size_t i = 1; i < bounds_.size(); ++i) {
    if (!(bounds_[i - 1] < bounds_[i])) {
      throw std::invalid_argument("histogram bounds must be strictly ascending");
    }
  }
  counts_.assign(bounds_.size() + 1, 0);
}

std::uint64_t Histogram::count() const {
  return std::accumulate(counts_.begin(), counts_.end(), std::uint64_t{0});
}

Registry::Instrument* Registry::find(const std::string& name) {
  for (Instrument& ins : instruments_) {
    if (ins.name == name) return &ins;
  }
  return nullptr;
}

Counter* Registry::counter(std::string name) {
  if (Instrument* ins = find(name)) {
    if (ins->kind != Kind::kCounter) {
      throw std::invalid_argument("metric '" + name + "' already registered with a different kind");
    }
    return ins->counter.get();
  }
  Instrument ins;
  ins.name = std::move(name);
  ins.kind = Kind::kCounter;
  ins.counter = std::make_unique<Counter>();
  Counter* handle = ins.counter.get();
  instruments_.push_back(std::move(ins));
  return handle;
}

Gauge* Registry::gauge(std::string name) {
  if (Instrument* ins = find(name)) {
    if (ins->kind != Kind::kGauge) {
      throw std::invalid_argument("metric '" + name + "' already registered with a different kind");
    }
    return ins->gauge.get();
  }
  Instrument ins;
  ins.name = std::move(name);
  ins.kind = Kind::kGauge;
  ins.gauge = std::make_unique<Gauge>();
  Gauge* handle = ins.gauge.get();
  instruments_.push_back(std::move(ins));
  return handle;
}

Histogram* Registry::histogram(std::string name, std::vector<double> bounds) {
  if (Instrument* ins = find(name)) {
    if (ins->kind != Kind::kHistogram || ins->histogram->bounds() != bounds) {
      throw std::invalid_argument("metric '" + name + "' already registered with a different kind");
    }
    return ins->histogram.get();
  }
  Instrument ins;
  ins.name = std::move(name);
  ins.kind = Kind::kHistogram;
  ins.histogram = std::make_unique<Histogram>(std::move(bounds));
  Histogram* handle = ins.histogram.get();
  instruments_.push_back(std::move(ins));
  return handle;
}

std::vector<SnapshotEntry> Registry::snapshot() const {
  std::vector<SnapshotEntry> out;
  out.reserve(instruments_.size() * 2);
  for (const Instrument& ins : instruments_) {
    switch (ins.kind) {
      case Kind::kCounter:
        out.push_back({ins.name, static_cast<double>(ins.counter->value())});
        break;
      case Kind::kGauge:
        out.push_back({ins.name, ins.gauge->value()});
        break;
      case Kind::kHistogram: {
        const Histogram& h = *ins.histogram;
        std::uint64_t cumulative = 0;
        for (std::size_t i = 0; i < h.bounds().size(); ++i) {
          cumulative += h.counts()[i];
          out.push_back({ins.name + "_le_" + format_double(h.bounds()[i]),
                         static_cast<double>(cumulative)});
        }
        out.push_back({ins.name + "_sum", h.sum()});
        out.push_back({ins.name + "_count", static_cast<double>(h.count())});
        break;
      }
    }
  }
  std::sort(out.begin(), out.end(),
            [](const SnapshotEntry& a, const SnapshotEntry& b) { return a.name < b.name; });
  return out;
}

std::uint64_t snapshot_hash(const std::vector<SnapshotEntry>& entries) {
  std::uint64_t h = kFnvOffset;
  for (const SnapshotEntry& e : entries) {
    h = fnv1a_bytes(h, e.name.data(), e.name.size());
    std::uint64_t bits = 0;
    static_assert(sizeof bits == sizeof e.value);
    std::memcpy(&bits, &e.value, sizeof bits);
    h = fnv1a_bytes(h, &bits, sizeof bits);
  }
  return h;
}

std::vector<SnapshotEntry> merge_snapshots(const std::vector<std::vector<SnapshotEntry>>& snaps) {
  // k-way merge by name over already-sorted inputs. The common case (every
  // domain carries the identical schema) degenerates to a positional zip;
  // a map keeps the rare ragged case deterministic too.
  std::map<std::string, double> acc;
  for (const std::vector<SnapshotEntry>& snap : snaps) {
    for (const SnapshotEntry& e : snap) acc[e.name] += e.value;
  }
  std::vector<SnapshotEntry> out;
  out.reserve(acc.size());
  for (const auto& [name, value] : acc) out.push_back({name, value});
  return out;
}

std::uint64_t Registry::snapshot_hash() const { return obs::snapshot_hash(snapshot()); }

std::string Registry::to_prometheus() const {
  // Sort by name so the exposition is stable regardless of wiring order.
  std::vector<const Instrument*> sorted;
  sorted.reserve(instruments_.size());
  for (const Instrument& ins : instruments_) sorted.push_back(&ins);
  std::sort(sorted.begin(), sorted.end(),
            [](const Instrument* a, const Instrument* b) { return a->name < b->name; });

  std::string out;
  for (const Instrument* ins : sorted) {
    switch (ins->kind) {
      case Kind::kCounter:
        out += "# TYPE " + ins->name + " counter\n";
        out += ins->name + " " + std::to_string(ins->counter->value()) + "\n";
        break;
      case Kind::kGauge:
        out += "# TYPE " + ins->name + " gauge\n";
        out += ins->name + " " + format_double(ins->gauge->value()) + "\n";
        break;
      case Kind::kHistogram: {
        const Histogram& h = *ins->histogram;
        out += "# TYPE " + ins->name + " histogram\n";
        std::uint64_t cumulative = 0;
        for (std::size_t i = 0; i < h.bounds().size(); ++i) {
          cumulative += h.counts()[i];
          out += ins->name + "_bucket{le=\"" + format_double(h.bounds()[i]) + "\"} " +
                 std::to_string(cumulative) + "\n";
        }
        out += ins->name + "_bucket{le=\"+Inf\"} " + std::to_string(h.count()) + "\n";
        out += ins->name + "_sum " + format_double(h.sum()) + "\n";
        out += ins->name + "_count " + std::to_string(h.count()) + "\n";
        break;
      }
    }
  }
  return out;
}

void Registry::write_json(JsonWriter& w) const {
  w.begin_object();
  for (const SnapshotEntry& e : snapshot()) w.kv(e.name, e.value);
  w.end_object();
}

}  // namespace smn::obs
