// Deterministic metrics registry: named counters, gauges, and fixed-bucket
// histograms.
//
// Design constraints (ISSUE 4):
//  - No wall clock anywhere; values advance only when instrumented code calls
//    inc()/set()/observe(), so two runs with the same seed produce identical
//    snapshots.
//  - No locks on the hot path: a Registry belongs to exactly one World, and
//    SweepRunner gives every replicate its own World. Handles returned by the
//    registry are plain pointers with inline mutators — an instrumented
//    callsite is one predicted branch (null check) plus an add.
//  - Stable schema: instruments are registered eagerly when a component is
//    wired (not lazily on first event), so every replicate of a sweep cell
//    snapshots the same name set and per-cell aggregation can zip them.
//
// Export formats: Prometheus text exposition (for --metrics out.prom) and
// JSON (embedded in sweep reports), both with "%.10g" formatting so reports
// are byte-identical across runs and thread counts. snapshot_hash() folds the
// sorted snapshot through FNV-1a, giving --audit-determinism a second signal
// next to the event-trace hash.
//
// Concurrency contract: single-owner, no internal locking — by design, not
// omission. A Registry is confined to the thread of the World that owns it;
// cross-thread sharing would need core/mutex.h + SMN_GUARDED_BY annotations
// (the policy in DESIGN.md "Static analysis"), and the absence of hidden
// global state that could leak between Worlds is machine-audited by
// smn_analyze's shared-mutable-state rule.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace smn::obs {

class JsonWriter;

/// FNV-1a over a byte string — the same hash family the registry snapshot
/// and the event trace use. Exposed so sweep trace sampling can fingerprint
/// exported trace JSON with a hash any component can recompute.
[[nodiscard]] std::uint64_t fnv1a(std::string_view bytes);

/// Monotonically increasing event count.
class Counter {
 public:
  void inc(std::uint64_t n = 1) { value_ += n; }
  [[nodiscard]] std::uint64_t value() const { return value_; }

 private:
  std::uint64_t value_ = 0;
};

/// Point-in-time level (backlog depth, links down, ...). Signed: maintained
/// incrementally via add(), and transient dips below the initial value are
/// legal mid-update.
class Gauge {
 public:
  void set(double v) { value_ = v; }
  void add(double d) { value_ += d; }
  [[nodiscard]] double value() const { return value_; }

 private:
  double value_ = 0.0;
};

/// Fixed-bound histogram. Bounds are upper edges of the finite buckets; an
/// implicit +inf bucket catches the tail. Cumulative counts are computed at
/// snapshot time, so observe() is a linear scan over a handful of doubles —
/// bounds lists here are 6-10 entries, not hundreds.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void observe(double v) {
    std::size_t i = 0;
    while (i < bounds_.size() && v > bounds_[i]) ++i;
    ++counts_[i];
    sum_ += v;
  }

  [[nodiscard]] const std::vector<double>& bounds() const { return bounds_; }
  /// Per-bucket (non-cumulative) counts; counts()[bounds().size()] is +inf.
  [[nodiscard]] const std::vector<std::uint64_t>& counts() const { return counts_; }
  [[nodiscard]] double sum() const { return sum_; }
  [[nodiscard]] std::uint64_t count() const;

 private:
  std::vector<double> bounds_;          // ascending upper edges
  std::vector<std::uint64_t> counts_;   // bounds_.size() + 1 entries
  double sum_ = 0.0;
};

/// One flattened (name, value) pair of a registry snapshot. Histograms
/// expand into `<name>_le_<bound>` cumulative buckets plus `<name>_sum` and
/// `<name>_count`, so a snapshot is a flat, sortable, hashable list.
struct SnapshotEntry {
  std::string name;
  double value = 0.0;
};

/// FNV-1a over a flattened, sorted snapshot (name bytes + value bit
/// patterns) — the exact fold Registry::snapshot_hash applies, exposed so a
/// merged multi-domain snapshot hashes the same way a single registry does.
[[nodiscard]] std::uint64_t snapshot_hash(const std::vector<SnapshotEntry>& entries);

/// Deterministic merge of several sorted snapshots into one: entries are
/// matched by name and their values summed (counters add, gauges add,
/// flattened histogram buckets/sums/counts add). Domains of a campus all
/// register the same instrument schema, so this is normally a positional
/// zip; names missing from some snapshots still merge correctly. The result
/// is sorted by name.
[[nodiscard]] std::vector<SnapshotEntry> merge_snapshots(
    const std::vector<std::vector<SnapshotEntry>>& snaps);

class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Registering an existing name with a matching kind returns the existing
  /// handle (components wired twice share instruments); a kind mismatch is a
  /// programming error and throws std::invalid_argument.
  Counter* counter(std::string name);
  Gauge* gauge(std::string name);
  /// `bounds` must be strictly ascending; re-registration must match them.
  Histogram* histogram(std::string name, std::vector<double> bounds);

  /// Flattened snapshot sorted by name — deterministic given deterministic
  /// instrument values.
  [[nodiscard]] std::vector<SnapshotEntry> snapshot() const;

  /// FNV-1a over the sorted snapshot (name bytes + value bit patterns).
  /// Folded into --audit-determinism next to the event-trace hash.
  [[nodiscard]] std::uint64_t snapshot_hash() const;

  /// Prometheus text exposition format (# TYPE lines, _bucket{le="..."}).
  [[nodiscard]] std::string to_prometheus() const;

  /// Writes `{"name": value, ...}` (sorted) into an in-progress JSON doc.
  void write_json(JsonWriter& w) const;

  [[nodiscard]] std::size_t size() const { return instruments_.size(); }

 private:
  enum class Kind { kCounter, kGauge, kHistogram };
  struct Instrument {
    std::string name;
    Kind kind;
    // Exactly one of these is set, matching `kind`. unique_ptr keeps handle
    // addresses stable as the registry vector grows.
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Instrument* find(const std::string& name);

  std::vector<Instrument> instruments_;  // registration order; sorted at export
};

}  // namespace smn::obs
