// Energy management through link parking (§4).
//
// "Energy efficiency: The community could also rethink how to enhance energy
// efficiency through optimized resource management facilitated by robotic
// systems."
//
// Redundant parallel fabric links burn transceiver power around the clock to
// insure against failures that repair-by-robot makes minutes-long. The
// EnergyManager parks (admin-down, lasers off) surplus members of parallel
// link groups during low-utilization windows and unparks them when demand
// returns or when a live sibling fails. The experiment (E17) measures the
// transceiver watt-hours saved against the capacity risk incurred — a trade
// that only closes favourably when the repair loop is fast.
#pragma once

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "core/traffic.h"
#include "net/network.h"
#include "sim/event_queue.h"

namespace smn::core {

class EnergyManager {
 public:
  struct Config {
    bool enabled = true;
    /// Park only while fabric utilization is below this.
    double low_threshold = 0.40;
    /// Keep at least this many live members per parallel group.
    int min_live_members = 1;
    /// Per-link transceiver power (both ends), watts.
    double link_power_w = 24.0;
    sim::Duration check_interval = sim::Duration::minutes(15);
    TrafficProfile traffic;
  };

  EnergyManager(net::Network& net, Config cfg);

  /// Starts the periodic park/unpark loop.
  void start();

  /// One evaluation pass (also called periodically): parks surplus members
  /// in low windows, unparks everything otherwise. Also unparks immediately
  /// when a parked link's sibling has failed (invoked from the subscription).
  void step_once();

  /// True if this link is currently parked by the manager.
  [[nodiscard]] bool parked(net::LinkId id) const { return parked_.contains(id.value()); }
  [[nodiscard]] std::size_t parked_count() const { return parked_.size(); }

  /// Accumulated savings, in link-hours of de-energized optics and kWh.
  [[nodiscard]] double parked_link_hours() const;
  [[nodiscard]] double energy_saved_kwh() const {
    return parked_link_hours() * cfg_.link_power_w / 1000.0;
  }
  /// Times a parked link had to be woken because a live sibling failed.
  [[nodiscard]] std::size_t emergency_unparks() const { return emergency_unparks_; }

 private:
  void park(net::LinkId id);
  void unpark(net::LinkId id);
  void unpark_all();

  net::Network& net_;
  Config cfg_;
  std::unordered_set<std::int32_t> parked_;
  double parked_hours_ = 0.0;
  sim::TimePoint last_accounting_;
  std::size_t emergency_unparks_ = 0;
  bool started_ = false;
};

}  // namespace smn::core
