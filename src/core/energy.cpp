#include "core/energy.h"

#include <algorithm>

#include "topology/blueprint.h"

namespace smn::core {

EnergyManager::EnergyManager(net::Network& net, Config cfg)
    : net_{net}, cfg_{cfg}, last_accounting_{net.now()} {
  // Emergency unpark: when any link on a device goes Down and a parked
  // sibling exists, wake the sibling immediately (lasers re-arm in seconds —
  // far inside the repair window).
  net_.subscribe([this](const net::Link& l, net::LinkState, net::LinkState now_state) {
    if (now_state != net::LinkState::kDown || l.admin_down) return;
    // smn-lint: allow(hot-copy) — links_between returns a cached reference.
    for (const net::LinkId sibling : net_.links_between(l.end_a.device, l.end_b.device)) {
      if (parked(sibling)) {
        unpark(sibling);
        ++emergency_unparks_;
      }
    }
  });
}

void EnergyManager::start() {
  if (started_ || !cfg_.enabled) return;
  started_ = true;
  net_.simulator().schedule_every(cfg_.check_interval, [this] { step_once(); });
}

double EnergyManager::parked_link_hours() const {
  // Closed accounting plus the currently parked set's open interval.
  return parked_hours_ + static_cast<double>(parked_.size()) *
                             (net_.now() - last_accounting_).to_hours();
}

void EnergyManager::park(net::LinkId id) {
  net::Link& l = net_.link_mut(id);
  l.admin_down = true;
  net_.refresh_link(id);
  parked_.insert(id.value());
}

void EnergyManager::unpark(net::LinkId id) {
  if (parked_.erase(id.value()) == 0) return;
  net::Link& l = net_.link_mut(id);
  l.admin_down = false;
  net_.refresh_link(id);
}

void EnergyManager::unpark_all() {
  const std::vector<std::int32_t> ids(parked_.begin(), parked_.end());
  for (const std::int32_t id : ids) unpark(net::LinkId{id});
}

void EnergyManager::step_once() {
  // Close the accounting interval before the parked set changes.
  parked_hours_ += static_cast<double>(parked_.size()) *
                   (net_.now() - last_accounting_).to_hours();
  last_accounting_ = net_.now();

  if (!cfg_.traffic.is_low(net_.now(), cfg_.low_threshold)) {
    unpark_all();
    return;
  }

  // Low window: park surplus members of every switch-switch parallel group.
  std::unordered_set<std::int64_t> seen_groups;
  for (const net::Link& l : net_.links()) {
    if (!topology::is_switch(net_.device(l.end_a.device).role) ||
        !topology::is_switch(net_.device(l.end_b.device).role)) {
      continue;
    }
    const std::int64_t group =
        (static_cast<std::int64_t>(std::min(l.end_a.device.value(),
                                            l.end_b.device.value()))
         << 32) |
        static_cast<std::uint32_t>(
            std::max(l.end_a.device.value(), l.end_b.device.value()));
    if (!seen_groups.insert(group).second) continue;

    const auto& members = net_.links_between(l.end_a.device, l.end_b.device);
    if (static_cast<int>(members.size()) <= cfg_.min_live_members) continue;
    int live = 0;
    for (const net::LinkId m : members) {
      if (net_.link(m).state != net::LinkState::kDown) ++live;
    }
    for (const net::LinkId m : members) {
      if (live <= cfg_.min_live_members) break;
      const net::Link& member = net_.link(m);
      if (member.state == net::LinkState::kDown || parked(m)) continue;
      park(m);
      --live;
    }
  }
}

}  // namespace smn::core
