// Runtime invariant checking.
//
// SMN_ASSERT is always on (release included): the simulator's value rests on
// the determinism claim in DESIGN.md, and a silently-corrupted run is worse
// than an aborted one. SMN_DCHECK compiles away in optimized builds unless
// SMN_ENABLE_DCHECKS is defined (the sanitizer presets define it), so hot-path
// checks cost nothing in the configurations benchmarks run under.
//
// Both print the failed expression, the source location, and an optional
// printf-style context message, then abort() — which sanitizers and death
// tests both recognize. Header-only on purpose: sim/ and topology/ sit below
// the smn_core library and must be able to include this without a link edge.
#pragma once

#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace smn::core::detail {

/// Last-gasp diagnostics hook: the obs flight recorder installs itself here so
/// a failed SMN_ASSERT dumps the recent event history before abort(). One hook
/// per thread (sweep workers each own their World, and with it their
/// recorder), and the hook is cleared before it runs so a failure inside the
/// dump itself can't recurse.
using CheckDumpFn = void (*)(const void* ctx);

struct CheckDumpHook {
  CheckDumpFn fn = nullptr;
  const void* ctx = nullptr;
};

inline CheckDumpHook& check_dump_hook() {
  // smn-analyze: allow(shared-mutable-state) — deliberately thread-local, not
  // per-World: the crash path must find the hook with no World pointer in
  // hand, and one-World-per-thread (the invariant smn_analyze protects
  // everywhere else) makes thread scope exactly World scope. Replicates on
  // different threads never observe each other's hook, so determinism holds.
  thread_local CheckDumpHook hook;
  return hook;
}

[[noreturn]] inline void check_failed(const char* expr, const char* file, int line,
                                      const char* fmt = nullptr, ...) {
  std::fprintf(stderr, "SMN_CHECK failed: %s\n  at %s:%d\n", expr, file, line);
  if (fmt != nullptr) {
    std::fprintf(stderr, "  context: ");
    va_list args;
    va_start(args, fmt);
    std::vfprintf(stderr, fmt, args);
    va_end(args);
    std::fprintf(stderr, "\n");
  }
  CheckDumpHook& hook = check_dump_hook();
  if (hook.fn != nullptr) {
    const CheckDumpHook snapshot = hook;
    hook = CheckDumpHook{};  // disarm first: no recursion if the dump asserts
    snapshot.fn(snapshot.ctx);
  }
  std::fflush(stderr);
  std::abort();
}

}  // namespace smn::core::detail

/// Always-on invariant check. Optional printf-style context:
///   SMN_ASSERT(idx < size, "idx=%zu size=%zu", idx, size);
#define SMN_ASSERT(cond, ...)                                                            \
  do {                                                                                   \
    if (!(cond)) [[unlikely]] {                                                          \
      ::smn::core::detail::check_failed(#cond, __FILE__, __LINE__ __VA_OPT__(, ) __VA_ARGS__); \
    }                                                                                    \
  } while (0)

/// Debug/sanitizer-build check: active when NDEBUG is unset (Debug builds) or
/// when SMN_ENABLE_DCHECKS is defined (the asan-ubsan / tsan presets).
#if defined(SMN_ENABLE_DCHECKS) || !defined(NDEBUG)
#define SMN_DCHECK_IS_ON 1
#define SMN_DCHECK(...) SMN_ASSERT(__VA_ARGS__)
#else
#define SMN_DCHECK_IS_ON 0
// Still compiled (so the expression can't rot and its operands stay "used"),
// but dead-code-eliminated.
#define SMN_DCHECK(...)          \
  do {                           \
    if (false) {                 \
      SMN_ASSERT(__VA_ARGS__);   \
    }                            \
  } while (0)
#endif
