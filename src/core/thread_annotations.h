// Clang thread-safety annotation macros (SMN_GUARDED_BY and friends).
//
// The simulator's concurrency story is deliberately narrow: one World per
// sweep-worker thread, nothing mutable shared — and the pieces that *do*
// cross threads (the runner's MPMC channel) must say so in the type system.
// These macros wrap clang's -Wthread-safety attributes so that discipline is
// compiler-checked: under clang the CI build promotes -Wthread-safety to an
// error (see the top-level CMakeLists), under every other compiler the macros
// expand to nothing and cost nothing.
//
// Usage (see core/mutex.h for the annotated primitives and runner/channel.h
// for the canonical consumer):
//
//   core::Mutex mu_;
//   std::deque<T> items_ SMN_GUARDED_BY(mu_);    // member needs mu_ held
//   void drain() SMN_REQUIRES(mu_);              // caller must hold mu_
//   void poke() SMN_EXCLUDES(mu_);               // caller must NOT hold mu_
//
// Macro-only header by design; nothing to declare.
// smn-lint: allow(namespace)
#pragma once

#if defined(__clang__) && !defined(SWIG)
#define SMN_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define SMN_THREAD_ANNOTATION(x)
#endif

/// Marks a type as a lockable capability ("mutex").
#define SMN_CAPABILITY(x) SMN_THREAD_ANNOTATION(capability(x))

/// Marks an RAII type that acquires a capability in its constructor and
/// releases it in its destructor.
#define SMN_SCOPED_CAPABILITY SMN_THREAD_ANNOTATION(scoped_lockable)

/// Data member readable/writable only while holding the given mutex.
#define SMN_GUARDED_BY(x) SMN_THREAD_ANNOTATION(guarded_by(x))

/// Pointer member whose *pointee* is protected by the given mutex.
#define SMN_PT_GUARDED_BY(x) SMN_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function requires the listed capabilities held on entry (and keeps them).
#define SMN_REQUIRES(...) SMN_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Function must be called with the listed capabilities NOT held.
#define SMN_EXCLUDES(...) SMN_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Function acquires the listed capabilities (no argument: `this`).
#define SMN_ACQUIRE(...) SMN_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Function releases the listed capabilities (no argument: `this`).
#define SMN_RELEASE(...) SMN_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Function acquires the capability iff it returns the given value.
#define SMN_TRY_ACQUIRE(...) SMN_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/// Returns a reference to the annotated capability (for wrapper types).
#define SMN_RETURN_CAPABILITY(x) SMN_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch for functions the analysis cannot follow (e.g. adopting a
/// lock through a std primitive). Use sparingly, with a comment.
#define SMN_NO_THREAD_SAFETY_ANALYSIS SMN_THREAD_ANNOTATION(no_thread_safety_analysis)
