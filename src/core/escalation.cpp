#include "core/escalation.h"

namespace smn::core {

using maintenance::RepairActionKind;

int EscalationPolicy::stage_of(const maintenance::TicketSystem& tickets,
                               const maintenance::Ticket& ticket) const {
  int prior = 0;
  for (const maintenance::Ticket* t : tickets.history_for(ticket.link)) {
    if (ticket.opened - t->resolved <= cfg_.repeat_window && t->resolved <= ticket.opened) {
      ++prior;
    }
  }
  return prior + ticket.actions_taken;
}

EscalationDecision EscalationPolicy::decide(const net::Network& net,
                                            const maintenance::TicketSystem& tickets,
                                            const maintenance::Ticket& ticket) const {
  const net::Link& l = net.link(ticket.link);

  // Hard evidence first: no point reseating a dead switch.
  if (!net.device(l.end_a.device).healthy || !net.device(l.end_b.device).healthy) {
    return {RepairActionKind::kReplaceDevice, 0};
  }
  // A dead line card is cheaper to swap than the whole chassis (§3.2 lists
  // "NIC, line card, or switch" as distinct final-stage replacements).
  if (!net.device(l.end_a.device).card_healthy(l.end_a.port)) {
    return {RepairActionKind::kReplaceLineCard, 0};
  }
  if (!net.device(l.end_b.device).card_healthy(l.end_b.port)) {
    return {RepairActionKind::kReplaceLineCard, 1};
  }
  if (!l.cable.intact) {
    return {RepairActionKind::kReplaceCable, 0};
  }
  if (!l.end_a.condition.transceiver_healthy || !l.end_a.condition.transceiver_present) {
    return {RepairActionKind::kReplaceTransceiver, 0};
  }
  if (!l.end_b.condition.transceiver_healthy || !l.end_b.condition.transceiver_present) {
    return {RepairActionKind::kReplaceTransceiver, 1};
  }
  if (!l.end_a.condition.transceiver_seated) return {RepairActionKind::kReseat, 0};
  if (!l.end_b.condition.transceiver_seated) return {RepairActionKind::kReseat, 1};

  // Soft symptoms (flapping / degraded / transient / false positive):
  // walk the ladder. Ends alternate rung to rung, starting from the switch
  // faceplate — that is where field hands (and grippers) work first; the
  // server-NIC end is the fallback.
  const int stage = stage_of(tickets, ticket);
  const bool a_is_switch = topology::is_switch(net.device(l.end_a.device).role);
  const bool b_is_switch = topology::is_switch(net.device(l.end_b.device).role);
  const int primary = (!a_is_switch && b_is_switch) ? 1 : 0;
  const int end = stage % 2 == 0 ? primary : 1 - primary;
  if (!cfg_.ladder_enabled) {
    // Ablation: skip straight to module replacement.
    return {RepairActionKind::kReplaceTransceiver, end};
  }
  const bool cleanable = net::is_cleanable(l.medium);
  switch (stage) {
    case 0:
    case 1:
      return {RepairActionKind::kReseat, end};
    case 2:
    case 3:
      if (cleanable) return {RepairActionKind::kClean, end};
      return {RepairActionKind::kReplaceTransceiver, end};
    case 4:
    case 5:
      return {RepairActionKind::kReplaceTransceiver, end};
    case 6:
      return {RepairActionKind::kReplaceCable, 0};
    default:
      return {RepairActionKind::kReplaceDevice, 0};
  }
}

}  // namespace smn::core
