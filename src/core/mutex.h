// Annotated locking primitives: Mutex, MutexLock, CondVar.
//
// std::mutex carries no thread-safety attributes on libstdc++, so
// SMN_GUARDED_BY(some_std_mutex) would be invisible to clang's analysis.
// These thin wrappers attach the capability attributes (and nothing else:
// Mutex *is* a std::mutex, CondVar *is* a std::condition_variable — zero
// added state, zero added cost) so every mutex-protected member in the tree
// can be machine-checked. Policy (DESIGN.md "Static analysis"): new
// cross-thread state uses these types, members are annotated SMN_GUARDED_BY,
// and the clang CI build fails on any access outside the lock.
//
// CondVar waits on the already-held Mutex via a temporarily-adopted
// std::unique_lock — plain std::condition_variable underneath, not the
// heavier condition_variable_any. Use while-loop predicates at the call site
// (not wait(lock, pred)): the analysis cannot see through a predicate lambda,
// and the explicit loop keeps the guarded reads inside the annotated scope.
#pragma once

#include <condition_variable>
#include <mutex>

#include "core/thread_annotations.h"

namespace smn::core {

/// std::mutex with clang capability attributes.
class SMN_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() SMN_ACQUIRE() { mu_.lock(); }
  void unlock() SMN_RELEASE() { mu_.unlock(); }
  [[nodiscard]] bool try_lock() SMN_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// RAII scope lock over Mutex, visible to the analysis as a scoped
/// capability: members guarded by the locked mutex are accessible for exactly
/// the lifetime of the MutexLock.
class SMN_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) SMN_ACQUIRE(mu) : mu_{mu} { mu_.lock(); }
  ~MutexLock() SMN_RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable bound to Mutex. wait() atomically releases and
/// reacquires the mutex, which the SMN_REQUIRES annotation makes sound for
/// the analysis: the capability is held on entry and on return.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Caller must hold `mu` (enforced under clang). Spurious wakeups happen;
  /// always wait in a while loop re-checking the guarded condition.
  void wait(Mutex& mu) SMN_REQUIRES(mu) {
    // Adopt the already-held native mutex for the duration of the wait, then
    // release the unique_lock's ownership claim without unlocking — the
    // caller's MutexLock still owns the critical section.
    std::unique_lock<std::mutex> native{mu.mu_, std::adopt_lock};
    cv_.wait(native);
    native.release();
  }

  void notify_one() { cv_.notify_one(); }
  void notify_all() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace smn::core
