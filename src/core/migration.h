// Load migration around maintenance (§2).
//
// "Proactive measures can be taken, such as temporarily migrating loads from
// physical hardware adjacent to the hardware being repaired." Given the
// pre-announced cable-contact list from the cascade model, the migrator
// drains (admin-downs) contacts whose traffic has somewhere else to go, so
// that induced transients hit links that are not carrying traffic. Links
// whose removal would disconnect their endpoints are left up — correctness
// over caution — and counted as refusals.
#pragma once

#include <vector>

#include "net/network.h"
#include "net/routing.h"

namespace smn::core {

class LoadMigrator {
 public:
  explicit LoadMigrator(net::Network& net) : net_{net} {}

  /// Drains every link in `contacts` that is currently carrying traffic and
  /// has a redundant path between its endpoints. Returns the drained set
  /// (pass to `restore` when the work completes).
  [[nodiscard]] std::vector<net::LinkId> drain_for_work(
      const std::vector<net::LinkId>& contacts);

  /// Lifts the admin-down on previously drained links.
  void restore(const std::vector<net::LinkId>& drained);

  [[nodiscard]] std::size_t drains() const { return drains_; }
  [[nodiscard]] std::size_t refusals() const { return refusals_; }

 private:
  net::Network& net_;
  std::size_t drains_ = 0;
  std::size_t refusals_ = 0;
};

}  // namespace smn::core
