#include "core/automation.h"

namespace smn::core {

const char* to_string(AutomationLevel l) {
  switch (l) {
    case AutomationLevel::kL0_Manual: return "L0-manual";
    case AutomationLevel::kL1_OperatorAssist: return "L1-assist";
    case AutomationLevel::kL2_PartialAutomation: return "L2-partial";
    case AutomationLevel::kL3_HighAutomation: return "L3-high";
    case AutomationLevel::kL4_FullAutomation: return "L4-full";
  }
  return "?";
}

LevelTraits traits(AutomationLevel l) {
  LevelTraits t;
  switch (l) {
    case AutomationLevel::kL0_Manual:
      break;
    case AutomationLevel::kL1_OperatorAssist:
      t.tool_assist_factor = 0.7;
      break;
    case AutomationLevel::kL2_PartialAutomation:
      t.robots_allowed = true;
      t.supervision_blocking = true;
      t.supervision_fraction = 1.0;
      break;
    case AutomationLevel::kL3_HighAutomation:
      t.robots_allowed = true;
      t.supervision_fraction = 0.15;
      t.verify_before_dispatch = true;
      break;
    case AutomationLevel::kL4_FullAutomation:
      t.robots_allowed = true;
      t.supervision_fraction = 0.0;
      t.verify_before_dispatch = true;
      t.humans_available = false;
      break;
  }
  return t;
}

}  // namespace smn::core
