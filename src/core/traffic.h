// Diurnal utilization profile.
//
// §4 (predictive maintenance): "During periods of low utilization, automation
// hardware can be used for proactive maintenance at little to no additional
// cost." The controller uses this profile to find those periods and to defer
// non-urgent disruptive work, and the cost model uses it to weight the
// traffic impact of downtime.
#pragma once

#include "sim/time.h"

namespace smn::core {

struct TrafficProfile {
  double base = 0.55;        // mean utilization
  double amplitude = 0.25;   // diurnal swing
  double peak_hour = 15.0;   // local hour of peak load

  /// Fabric utilization in [0,1] at time t.
  [[nodiscard]] double utilization(sim::TimePoint t) const;

  /// True when utilization is below `threshold` (a maintenance window).
  [[nodiscard]] bool is_low(sim::TimePoint t, double threshold) const {
    return utilization(t) < threshold;
  }

  /// Earliest time >= `from` at which utilization drops below `threshold`,
  /// searched on a 15-minute grid up to 48 h out (falls back to `from` if
  /// the threshold is never reached — better to act than wait forever).
  [[nodiscard]] sim::TimePoint next_low_window(sim::TimePoint from, double threshold) const;
};

}  // namespace smn::core
