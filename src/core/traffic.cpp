#include "core/traffic.h"

#include <cmath>
#include <numbers>

namespace smn::core {

double TrafficProfile::utilization(sim::TimePoint t) const {
  const double hour = std::fmod(t.to_hours(), 24.0);
  const double phase = 2.0 * std::numbers::pi * (hour - peak_hour) / 24.0;
  const double u = base + amplitude * std::cos(phase);
  return u < 0.0 ? 0.0 : (u > 1.0 ? 1.0 : u);
}

sim::TimePoint TrafficProfile::next_low_window(sim::TimePoint from, double threshold) const {
  const sim::Duration grid = sim::Duration::minutes(15);
  sim::TimePoint t = from;
  const sim::TimePoint horizon = from + sim::Duration::hours(48);
  while (t <= horizon) {
    if (is_low(t, threshold)) return t;
    t = t + grid;
  }
  return from;
}

}  // namespace smn::core
