// Campus-level shared spare inventory with deterministic arbitration.
//
// Halls of a campus draw replacement stock (optics, cables, line cards) from
// one shared depot instead of per-hall inventories — a real multi-hall
// operations pattern and the concrete "campus-level controller decision" of
// the sharded simulation: spare *requests* travel as cross-domain messages,
// and the campus coordinator arbitrates them at epoch barriers in the
// canonical exchange order (sim/epoch.h ExchangeKey), so grants are
// byte-identical at any shard count.
//
// The pool itself is plain single-owner state: it is touched only by the
// barrier coordinator, between epochs, when no domain worker is running.
// Restocking is a deterministic function of simulated time (units per day,
// fractional carry kept exactly), never of wall clock or arrival order.
#pragma once

#include <cstdint>

#include "sim/time.h"

namespace smn::core {

class SparePool {
 public:
  struct Config {
    /// Depot stock at t=0.
    int initial_stock = 64;
    /// Restock rate from the supply chain, units per simulated day.
    double restock_per_day = 8.0;
    /// Depot shelf capacity; restock saturates here.
    int max_stock = 128;
  };

  explicit SparePool(const Config& cfg)
      : cfg_{cfg}, stock_{cfg.initial_stock < 0 ? 0 : cfg.initial_stock} {}

  /// Advances restocking to `now`. Idempotent for equal `now`; `now` must
  /// not move backwards (barrier times are monotone).
  void restock_to(sim::TimePoint now);

  /// Grants up to `requested` units from stock. Callers must present
  /// requests in the canonical exchange order for shard invariance.
  [[nodiscard]] int grant(int requested);

  [[nodiscard]] int stock() const { return stock_; }
  [[nodiscard]] std::uint64_t granted_total() const { return granted_total_; }
  [[nodiscard]] std::uint64_t denied_total() const { return denied_total_; }

 private:
  Config cfg_;
  int stock_ = 0;
  double restock_carry_ = 0.0;  // fractional units accrued but not yet whole
  sim::TimePoint restocked_to_;
  std::uint64_t granted_total_ = 0;
  std::uint64_t denied_total_ = 0;
};

}  // namespace smn::core
