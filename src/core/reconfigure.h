// Robotic topology reconfiguration (§4).
//
// "As an extension of this, it is interesting to explore reconfigurable
// network topologies to dynamically adapt to changing traffic patterns and
// optimize resource utilization. The robotics that enables a self-maintaining
// network will also be able to deploy arbitrary topologies potentially."
//
// The planner works in composite *path-reinforcement* moves: it attributes
// demand to (source ToR, destination ToR) pairs, takes the hottest pair
// whose flows are clipped, and reinforces every fabric segment of that
// pair's current route with one donor cable each (donors = least-loaded
// switch-switch links whose removal keeps their endpoints connected).
// Single-cable moves are not generally improving under ECMP shortest-path
// routing — adding one link shifts hashing without widening the whole
// channel — which is why moves are composite. Each candidate is evaluated by
// trial-rewiring the live network and measuring delivered goodput with the
// traffic engine, then reverting; accepted plans execute through the
// (cable-capable, i.e. L4) robot fleet.
#pragma once

#include <functional>
#include <vector>

#include "net/network.h"
#include "net/traffic.h"
#include "robotics/fleet.h"

namespace smn::core {

class TopologyReconfigurer {
 public:
  struct Config {
    /// Maximum composite moves per optimization round.
    int max_moves = 4;
    /// Required relative improvement in delivered goodput per accepted move.
    double min_relative_gain = 0.01;
    /// Donor links examined per segment.
    int donor_pool = 12;
  };

  struct Rewire {
    net::LinkId link;
    net::DeviceId from_a, from_b;
    net::DeviceId to_a, to_b;
  };

  struct Move {
    std::vector<Rewire> rewires;  // applied together (one reinforced path)
    double delivered_before = 0;
    double delivered_after = 0;
  };

  struct Plan {
    std::vector<Move> moves;
    double delivered_before_gbps = 0;
    double delivered_after_gbps = 0;
  };

  TopologyReconfigurer(net::Network& net, robotics::RobotFleet* fleet)
      : TopologyReconfigurer(net, fleet, Config{}) {}
  TopologyReconfigurer(net::Network& net, robotics::RobotFleet* fleet, Config cfg)
      : net_{net}, fleet_{fleet}, cfg_{cfg} {}

  /// Greedy plan against a demand matrix. Pure what-if: the network is
  /// returned to its original wiring before this returns.
  [[nodiscard]] Plan plan(const net::TrafficMatrix& tm);

  /// Executes a plan through the robot fleet (requires a cable-capable
  /// fleet). Each donor is drained for the duration of its re-lay; the
  /// logical rewire lands when the robot job finishes. Returns the number of
  /// cable moves dispatched; `on_done` fires after the last one.
  int apply(const Plan& plan, std::function<void()> on_done);

  /// Executes a plan instantaneously (planning studies / tests).
  void apply_instantly(const Plan& plan);

 private:
  /// Least-utilized switch-switch links whose removal keeps their endpoints
  /// mutually reachable, excluding `exclude`.
  [[nodiscard]] std::vector<net::LinkId> donor_candidates(
      const net::LoadReport& report, const std::vector<net::LinkId>& exclude) const;

  /// The ToR a server hangs off (its first live switch neighbour).
  [[nodiscard]] net::DeviceId attachment_switch(net::DeviceId server) const;

  net::Network& net_;
  robotics::RobotFleet* fleet_;
  Config cfg_;
};

}  // namespace smn::core
