// The maintenance control plane — the paper's primary contribution (§2).
//
// "A fully self-maintaining system will not require the service to create a
// ticket describing a hardware failure; instead, it will schedule and monitor
// repair operations autonomously without requiring any technician
// intervention."
//
// The MaintenanceController closes the loop: detections -> tickets ->
// escalation-ladder planning -> performer selection by automation level ->
// impact-aware scheduling (pre-announced contact lists, load migration,
// low-utilization deferral) -> outcome evaluation -> re-plan or resolve.
// It also runs the proactive policies of §4 (switch-wide reseat heuristics
// and predictor-driven maintenance) when robots make them cheap.
#pragma once

#include <deque>
#include <memory>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/automation.h"
#include "core/escalation.h"
#include "core/migration.h"
#include "core/traffic.h"
#include "fault/cascade.h"
#include "maintenance/technician.h"
#include "maintenance/ticket.h"
#include "obs/obs.h"
#include "robotics/fleet.h"
#include "sim/fom.h"
#include "telemetry/monitor.h"
#include "telemetry/predictor.h"

namespace smn::core {

struct ProactiveConfig {
  bool enabled = false;
  sim::Duration scan_interval = sim::Duration::hours(6);
  /// Proactive work only runs in low-utilization windows (§4).
  double low_utilization_threshold = 0.40;
  /// §4: "if several links on a switch have been fixed by reseating
  /// transceivers, the system could proactively reseat all transceivers on
  /// that switch".
  bool switch_wide_reseat = true;
  int switch_reseat_trigger = 3;
  sim::Duration trigger_window = sim::Duration::days(7);
  /// Minimum gap between proactive actions on the same link.
  sim::Duration per_link_cooldown = sim::Duration::days(21);
  /// Predictor-driven proactive cleaning/reseating (wired via set_predictor).
  bool use_predictor = false;
  double predictor_threshold = 0.70;
};

class MaintenanceController {
 public:
  struct Config {
    AutomationLevel level = AutomationLevel::kL3_HighAutomation;
    EscalationPolicy::Config escalation;
    /// Drain pre-announced contacts and defer non-urgent work to
    /// low-utilization windows (ablated in E3).
    bool impact_aware = true;
    double defer_utilization_threshold = 0.45;
    sim::Duration max_deferral = sim::Duration::hours(12);
    /// L3+ transient verification: wait before acting on a non-Down issue;
    /// if the link is healthy again, close without rolling hardware.
    sim::Duration verify_delay = sim::Duration::minutes(20);
    int max_attempts_per_ticket = 8;
    /// Human supervisor slots gating robot work at L2.
    int supervisors = 4;
    TrafficProfile traffic;
    ProactiveConfig proactive;
    sim::Duration prediction_window = sim::Duration::days(7);
  };

  MaintenanceController(net::Network& net, telemetry::DetectionEngine& detection,
                        maintenance::TicketSystem& tickets, fault::CascadeModel& cascade,
                        maintenance::TechnicianPool& technicians,
                        robotics::RobotFleet* fleet, sim::RngStream rng, Config cfg);

  /// Subscribes to detections and starts the proactive scan loop.
  void start();

  /// Attaches a trained failure predictor (enables predictor-driven
  /// proactive maintenance when cfg.proactive.use_predictor).
  void set_predictor(const telemetry::LogisticPredictor* predictor) {
    predictor_ = predictor;
    arm_scan();
  }

  /// Cross-layer co-design (abstract: "the core cloud services are
  /// co-designed with the robotic systems"; §2 "more information sharing
  /// between stack layers"): a service marks the links its workload depends
  /// on as critical. Detections on critical links are treated as high
  /// priority — no low-utilization deferral — and transient verification is
  /// shortened to a quarter of the normal delay.
  void set_critical(net::LinkId id, bool critical);
  [[nodiscard]] bool is_critical(net::LinkId id) const {
    return critical_.contains(id.value());
  }

  /// Builds the observable feature vector for a link (used both for
  /// training-set generation in E8 and for live proactive scoring).
  [[nodiscard]] telemetry::FeatureVector features_for(net::LinkId id) const;

  // --- statistics ---
  [[nodiscard]] double supervision_hours() const { return supervision_hours_; }
  [[nodiscard]] std::size_t proactive_actions() const { return proactive_actions_; }
  [[nodiscard]] std::size_t deferred_repairs() const { return deferred_; }
  [[nodiscard]] std::size_t verified_transients() const { return verified_transients_; }
  [[nodiscard]] std::size_t human_escalations() const { return human_escalations_; }
  [[nodiscard]] std::size_t robot_jobs() const { return robot_jobs_; }
  [[nodiscard]] std::size_t technician_jobs() const { return technician_jobs_; }
  [[nodiscard]] LoadMigrator& migrator() { return migrator_; }
  [[nodiscard]] const Config& config() const { return cfg_; }
  /// Last robot-measured end-face contamination, 0 if never inspected.
  [[nodiscard]] double last_inspection_grade(net::LinkId id) const;

  /// Wires observability: controller_* decision counters, trace instants for
  /// each control-plane decision, and flight-recorder entries that give an
  /// SMN_ASSERT dump the controller's recent choices.
  void set_obs(obs::Obs* o);

 private:
  /// One pending control-plane timer for a ticket: transient verification,
  /// deferred dispatch at the next low-utilization window, or an L4
  /// autonomous retry. Pooled and recycled, so each hop is a single
  /// 16-byte inline-capture wakeup instead of a heap-allocated closure.
  class HopFom final : public sim::Fom {
   public:
    enum Phase : int { kVerify = 0, kDeferredDispatch = 1, kRetryPlan = 2 };
    explicit HopFom(MaintenanceController& ctl) : sim::Fom(ctl.fom_engine_), ctl_(ctl) {}
    void begin_verify(int ticket_id, sim::TimePoint at);
    void begin_deferred(int ticket_id, const EscalationDecision& decision, sim::TimePoint at);
    void begin_retry(int ticket_id, sim::TimePoint at);

   private:
    Tick tick() override;
    void on_done() override;

    MaintenanceController& ctl_;
    int ticket_id_ = -1;
    EscalationDecision decision_{};
    friend class MaintenanceController;
  };

  /// The proactive scan loop as a fom: armed on the `scan_interval` grid
  /// only while a trigger source exists (recent reseat fixes, or an attached
  /// predictor) — idle worlds schedule no scan events at all. Skipped grid
  /// ticks are behavior-identical to free-running ones: a scan with no
  /// trigger sources mutates nothing and draws no randomness.
  class ScanFom final : public sim::Fom {
   public:
    explicit ScanFom(MaintenanceController& ctl) : sim::Fom(ctl.fom_engine_), ctl_(ctl) {}

   private:
    Tick tick() override;
    MaintenanceController& ctl_;
  };

  void on_detection(const telemetry::Detection& d);
  /// Chooses the next rung and performer for a ticket and dispatches it.
  void plan(int ticket_id);
  void dispatch(int ticket_id, const EscalationDecision& decision);
  void execute(int ticket_id, const maintenance::Job& job, bool via_robot);
  void on_report(int ticket_id, const maintenance::JobReport& report,
                 const std::vector<net::LinkId>& drained, bool via_robot);
  void resolve_or_replan(int ticket_id, const maintenance::JobReport& report);
  [[nodiscard]] bool link_recovered(net::LinkId id) const;
  void proactive_scan();
  /// Arms the next grid-aligned proactive scan iff a trigger source exists.
  void arm_scan();
  void open_proactive(net::LinkId link, maintenance::RepairActionKind kind, int end);
  void acquire_supervisor(std::function<void()> then);
  void release_supervisor();
  [[nodiscard]] HopFom& acquire_hop();
  void verify_ticket(int ticket_id);

  net::Network& net_;
  telemetry::DetectionEngine& detection_;
  maintenance::TicketSystem& tickets_;
  fault::CascadeModel& cascade_;
  maintenance::TechnicianPool& technicians_;
  robotics::RobotFleet* fleet_;
  sim::RngStream rng_;
  Config cfg_;
  LevelTraits traits_;
  EscalationPolicy escalation_;
  LoadMigrator migrator_;
  sim::FomEngine fom_engine_;
  std::vector<std::unique_ptr<HopFom>> hop_foms_;  // all hop foms ever created
  std::vector<HopFom*> hop_free_;                  // recycled, ready for reuse
  ScanFom scan_fom_;
  sim::TimePoint scan_anchor_;  // proactive grid origin (time of start())
  const telemetry::LogisticPredictor* predictor_ = nullptr;

  /// Reseat-resolutions per switch, for the §4 switch-wide heuristic.
  std::unordered_map<net::DeviceId, std::vector<sim::TimePoint>, net::IdHash> reseat_fixes_;
  std::unordered_map<net::LinkId, sim::TimePoint, net::IdHash> last_proactive_;
  std::unordered_map<net::LinkId, double, net::IdHash> last_inspection_;
  std::unordered_map<net::LinkId, int, net::IdHash> resolved_count_;
  std::unordered_set<std::int32_t> critical_;

  int supervisors_free_;
  std::deque<std::function<void()>> supervision_waitlist_;

  double supervision_hours_ = 0.0;
  std::size_t proactive_actions_ = 0;
  std::size_t deferred_ = 0;
  std::size_t verified_transients_ = 0;
  std::size_t human_escalations_ = 0;
  std::size_t robot_jobs_ = 0;
  std::size_t technician_jobs_ = 0;
  bool started_ = false;

  // Observability handles (null until set_obs).
  obs::Counter* obs_detections_ = nullptr;
  obs::Counter* obs_deferred_ = nullptr;
  obs::Counter* obs_verified_transients_ = nullptr;
  obs::Counter* obs_proactive_ = nullptr;
  obs::Counter* obs_human_escalations_ = nullptr;
  obs::Counter* obs_robot_dispatch_ = nullptr;
  obs::Counter* obs_technician_dispatch_ = nullptr;
  obs::TraceBuffer* obs_trace_ = nullptr;
  obs::FlightRecorder* obs_recorder_ = nullptr;
};

}  // namespace smn::core
