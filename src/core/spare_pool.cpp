#include "core/spare_pool.h"

#include "core/check.h"

namespace smn::core {

void SparePool::restock_to(sim::TimePoint now) {
  SMN_ASSERT(now >= restocked_to_, "SparePool::restock_to moved backwards");
  const sim::Duration dt = now - restocked_to_;
  restocked_to_ = now;
  if (cfg_.restock_per_day <= 0.0 || dt <= sim::Duration::zero()) return;
  restock_carry_ += cfg_.restock_per_day * dt.to_days();
  const int whole = static_cast<int>(restock_carry_);
  if (whole > 0) {
    restock_carry_ -= whole;
    stock_ += whole;
    if (stock_ > cfg_.max_stock) {
      stock_ = cfg_.max_stock;
      restock_carry_ = 0.0;  // shelf full: surplus is returned, not banked
    }
  }
}

int SparePool::grant(int requested) {
  if (requested <= 0) return 0;
  const int g = requested <= stock_ ? requested : stock_;
  stock_ -= g;
  granted_total_ += static_cast<std::uint64_t>(g);
  denied_total_ += static_cast<std::uint64_t>(requested - g);
  return g;
}

}  // namespace smn::core
