#include "core/migration.h"

namespace smn::core {

std::vector<net::LinkId> LoadMigrator::drain_for_work(
    const std::vector<net::LinkId>& contacts) {
  std::vector<net::LinkId> drained;
  for (const net::LinkId lid : contacts) {
    net::Link& l = net_.link_mut(lid);
    if (l.admin_down || l.state == net::LinkState::kDown) continue;

    // Never drain the last live member of a parallel link group (LAG): the
    // point of migration is to move traffic, not to brown out the adjacency.
    const std::vector<net::LinkId>& group =  // smn-lint: allow(hot-copy)
        net_.links_between(l.end_a.device, l.end_b.device);
    int live_siblings = 0;
    for (const net::LinkId sibling : group) {
      if (sibling != lid && net_.link(sibling).state != net::LinkState::kDown) {
        ++live_siblings;
      }
    }
    if (group.size() > 1 && live_siblings == 0) {
      ++refusals_;
      continue;
    }

    // Trial-drain, then check the endpoints still reach each other.
    l.admin_down = true;
    net_.refresh_link(lid);
    const bool still_connected =
        net::path_available(net_, l.end_a.device, l.end_b.device);
    if (still_connected) {
      drained.push_back(lid);
      ++drains_;
    } else {
      l.admin_down = false;
      net_.refresh_link(lid);
      ++refusals_;
    }
  }
  return drained;
}

void LoadMigrator::restore(const std::vector<net::LinkId>& drained) {
  for (const net::LinkId lid : drained) {
    net_.link_mut(lid).admin_down = false;
    net_.refresh_link(lid);
  }
}

}  // namespace smn::core
