#include "core/reconfigure.h"

#include <algorithm>
#include <map>
#include <memory>

#include "net/routing.h"
#include "topology/blueprint.h"

namespace smn::core {

std::vector<net::LinkId> TopologyReconfigurer::donor_candidates(
    const net::LoadReport& report, const std::vector<net::LinkId>& exclude) const {
  std::vector<std::pair<double, net::LinkId>> scored;
  for (const net::Link& l : net_.links()) {
    if (l.state == net::LinkState::kDown || l.admin_down) continue;
    if (std::find(exclude.begin(), exclude.end(), l.id) != exclude.end()) continue;
    const bool a_switch = topology::is_switch(net_.device(l.end_a.device).role);
    const bool b_switch = topology::is_switch(net_.device(l.end_b.device).role);
    if (!a_switch || !b_switch) continue;  // never steal a server's access link
    const double load = report.link_load_gbps[static_cast<size_t>(l.id.value())];
    scored.emplace_back(load / l.capacity_gbps, l.id);
  }
  std::sort(scored.begin(), scored.end());
  std::vector<net::LinkId> out;
  for (const auto& [util, lid] : scored) {
    // Removal must keep the old endpoints mutually reachable.
    net::Link& l = net_.link_mut(lid);
    l.admin_down = true;
    net_.refresh_link(lid);
    const bool ok = net::path_available(net_, l.end_a.device, l.end_b.device);
    l.admin_down = false;
    net_.refresh_link(lid);
    if (ok) out.push_back(lid);
    if (static_cast<int>(out.size()) >= cfg_.donor_pool) break;
  }
  return out;
}

net::DeviceId TopologyReconfigurer::attachment_switch(net::DeviceId server) const {
  for (const net::LinkId lid : net_.links_at(server)) {
    const net::Link& l = net_.link(lid);
    const net::DeviceId peer = l.end_a.device == server ? l.end_b.device : l.end_a.device;
    if (topology::is_switch(net_.device(peer).role)) return peer;
  }
  return server;
}

TopologyReconfigurer::Plan TopologyReconfigurer::plan(const net::TrafficMatrix& tm) {
  Plan result;
  net::LoadReport current = net::route_and_load(net_, tm);
  result.delivered_before_gbps = current.delivered_gbps;
  result.delivered_after_gbps = current.delivered_gbps;

  std::vector<Rewire> all_committed;

  for (int round = 0; round < cfg_.max_moves; ++round) {
    // Demand attribution: gbps per (src ToR, dst ToR) pair, hottest first.
    std::map<std::pair<std::int32_t, std::int32_t>, double> pair_demand;
    for (const net::Flow& f : tm.flows) {
      const net::DeviceId a = attachment_switch(f.src);
      const net::DeviceId b = attachment_switch(f.dst);
      if (a == b) continue;
      pair_demand[{std::min(a.value(), b.value()), std::max(a.value(), b.value())}] +=
          f.gbps;
    }
    std::vector<std::pair<double, std::pair<std::int32_t, std::int32_t>>> hot;
    for (const auto& [pair, gbps] : pair_demand) hot.emplace_back(gbps, pair);
    std::sort(hot.rbegin(), hot.rend());

    Move best;
    double best_delivered = current.delivered_gbps;
    // Links already moved must not be treated as donors again.
    std::vector<net::LinkId> exclude;
    for (const Rewire& r : all_committed) exclude.push_back(r.link);

    // Shared trial-evaluate-revert helper.
    auto consider = [&](Move candidate) {
      if (candidate.rewires.empty()) return;
      for (const Rewire& r : candidate.rewires) net_.rewire(r.link, r.to_a, r.to_b);
      const net::LoadReport trial = net::route_and_load(net_, tm);
      for (auto it = candidate.rewires.rbegin(); it != candidate.rewires.rend(); ++it) {
        net_.rewire(it->link, it->from_a, it->from_b);
      }
      if (trial.delivered_gbps > best_delivered) {
        best_delivered = trial.delivered_gbps;
        candidate.delivered_before = current.delivered_gbps;
        candidate.delivered_after = trial.delivered_gbps;
        best = std::move(candidate);
      }
    };

    // Move type B: column reinforcement for an all-to-all hot group. Under
    // ECMP, adding capacity from one ToR skews hashing onto unreinforced
    // downstream segments; reinforcing one intermediate switch's links to
    // *every* hot ToR keeps the split balanced end-to-end.
    {
      // Hot ToRs: those appearing in the top pair demands.
      std::vector<net::DeviceId> hot_tors;
      double covered = 0;
      const double total_pair_demand = [&] {
        double t = 0;
        for (const auto& [g, p] : hot) t += g;
        return t;
      }();
      for (const auto& [gbps, pair] : hot) {
        for (const std::int32_t v : {pair.first, pair.second}) {
          const net::DeviceId d{v};
          if (std::find(hot_tors.begin(), hot_tors.end(), d) == hot_tors.end()) {
            hot_tors.push_back(d);
          }
        }
        covered += gbps;
        if (covered > 0.7 * total_pair_demand || hot_tors.size() >= 4) break;
      }
      if (hot_tors.size() >= 2) {
        // Candidate intermediates: switches adjacent to every hot ToR.
        // smn-lint: allow(hot-copy) — links_between returns a cached reference.
        std::vector<net::DeviceId> columns;
        for (const auto& [peer, lid] : net_.live_neighbors(hot_tors[0])) {
          if (!topology::is_switch(net_.device(peer).role)) continue;
          const bool common = std::all_of(
              hot_tors.begin() + 1, hot_tors.end(), [&](net::DeviceId tor) {
                return !net_.links_between(tor, peer).empty();
              });
          if (common) columns.push_back(peer);
        }
        for (std::size_t c = 0; c < std::min<std::size_t>(2, columns.size()); ++c) {
          std::vector<net::LinkId> col_exclude = exclude;
          for (const net::DeviceId tor : hot_tors) {
            for (const net::LinkId lid : net_.links_between(tor, columns[c])) {
              col_exclude.push_back(lid);
            }
          }
          const std::vector<net::LinkId> donors = donor_candidates(current, col_exclude);
          if (donors.size() < hot_tors.size()) continue;
          Move candidate;
          for (std::size_t i = 0; i < hot_tors.size(); ++i) {
            const net::Link& l = net_.link(donors[i]);
            candidate.rewires.push_back(Rewire{donors[i], l.end_a.device, l.end_b.device,
                                               hot_tors[i], columns[c]});
          }
          consider(std::move(candidate));
        }
      }
    }

    const int pairs_to_try = std::min<std::size_t>(3, hot.size());
    for (int h = 0; h < pairs_to_try; ++h) {
      const net::DeviceId tor_a{hot[static_cast<size_t>(h)].second.first};
      const net::DeviceId tor_b{hot[static_cast<size_t>(h)].second.second};
      const std::vector<net::DeviceId> path = net::shortest_path(net_, tor_a, tor_b);
      if (path.size() < 2) continue;

      // Reinforce each fabric segment of the hot pair's route with one donor.
      std::vector<net::LinkId> seg_exclude = exclude;
      for (std::size_t i = 0; i + 1 < path.size(); ++i) {
        for (const net::LinkId lid : net_.links_between(path[i], path[i + 1])) {
          seg_exclude.push_back(lid);  // don't steal from the path itself
        }
      }
      const std::vector<net::LinkId> donors = donor_candidates(current, seg_exclude);
      if (donors.size() < path.size() - 1) continue;

      Move candidate;
      for (std::size_t i = 0; i + 1 < path.size(); ++i) {
        const net::LinkId donor = donors[i];
        const net::Link& l = net_.link(donor);
        candidate.rewires.push_back(
            Rewire{donor, l.end_a.device, l.end_b.device, path[i], path[i + 1]});
      }
      consider(std::move(candidate));
    }

    const double gain = best_delivered - current.delivered_gbps;
    if (best.rewires.empty() ||
        gain < cfg_.min_relative_gain * std::max(1.0, current.delivered_gbps)) {
      break;
    }
    // Commit in the working state so subsequent moves compose.
    for (const Rewire& r : best.rewires) net_.rewire(r.link, r.to_a, r.to_b);
    for (const Rewire& r : best.rewires) all_committed.push_back(r);
    current = net::route_and_load(net_, tm);
    result.delivered_after_gbps = current.delivered_gbps;
    result.moves.push_back(std::move(best));
  }

  // Restore the original wiring: plan() is a pure what-if.
  for (auto mit = result.moves.rbegin(); mit != result.moves.rend(); ++mit) {
    for (auto rit = mit->rewires.rbegin(); rit != mit->rewires.rend(); ++rit) {
      net_.rewire(rit->link, rit->from_a, rit->from_b);
    }
  }
  return result;
}

void TopologyReconfigurer::apply_instantly(const Plan& plan) {
  for (const Move& m : plan.moves) {
    for (const Rewire& r : m.rewires) net_.rewire(r.link, r.to_a, r.to_b);
  }
}

int TopologyReconfigurer::apply(const Plan& plan, std::function<void()> on_done) {
  if (fleet_ == nullptr || !fleet_->capable(maintenance::RepairActionKind::kReplaceCable)) {
    return 0;  // needs the L4 cable-laying unit
  }
  std::vector<Rewire> rewires;
  for (const Move& m : plan.moves) {
    for (const Rewire& r : m.rewires) rewires.push_back(r);
  }
  auto remaining = std::make_shared<int>(static_cast<int>(rewires.size()));
  auto done = std::make_shared<std::function<void()>>(std::move(on_done));
  if (*remaining == 0) {
    if (*done) (*done)();
    return 0;
  }
  for (const Rewire& r : rewires) {
    // Drain the donor while the robot re-lays it; the logical rewire lands
    // when the job completes.
    net_.link_mut(r.link).admin_down = true;
    net_.refresh_link(r.link);
    maintenance::Job job;
    job.link = r.link;
    job.kind = maintenance::RepairActionKind::kReplaceCable;
    fleet_->submit(job, [this, r, remaining, done](const maintenance::JobReport&) {
      net_.rewire(r.link, r.to_a, r.to_b);
      net_.link_mut(r.link).admin_down = false;
      net_.refresh_link(r.link);
      if (--*remaining == 0 && *done) (*done)();
    });
  }
  return static_cast<int>(rewires.size());
}

}  // namespace smn::core
