// The repair escalation ladder (§3.2).
//
// "when a network link fails or flaps the first time a ticket is created for
// that link, the usual first step is to reseat the transceiver. ... If a link
// has failed, and a reseating of the transceiver has not solved the problem
// ... a technician [performs] a cleaning ... the next common action is then
// to replace the transceivers and ultimately the cable. ... the final stage
// is to replace the NIC, line card, or switch."
//
// The policy maps (link condition, ticket history within the repeat window,
// attempts already burned on this ticket) to the next action. Hard evidence
// (dead device, broken cable, dead module) short-circuits the ladder; soft
// symptoms (flapping/degraded) walk it rung by rung.
#pragma once

#include "maintenance/actions.h"
#include "maintenance/ticket.h"
#include "net/network.h"

namespace smn::core {

struct EscalationDecision {
  maintenance::RepairActionKind kind = maintenance::RepairActionKind::kReseat;
  int end = 0;  // which link end to work on, for end-scoped actions
};

class EscalationPolicy {
 public:
  struct Config {
    /// §3.2: "another ticket is generated for the same link within a time
    /// window" — how far back resolved tickets count toward the ladder stage.
    sim::Duration repeat_window = sim::Duration::days(14);
    /// Ablation (E6): when false, soft symptoms jump straight to
    /// transceiver replacement (no reseat-first, no cleaning).
    bool ladder_enabled = true;
  };

  EscalationPolicy() : EscalationPolicy(Config{}) {}
  explicit EscalationPolicy(Config cfg) : cfg_{cfg} {}

  [[nodiscard]] EscalationDecision decide(const net::Network& net,
                                          const maintenance::TicketSystem& tickets,
                                          const maintenance::Ticket& ticket) const;

  /// The ladder stage (0-based) this ticket is at: prior resolved tickets in
  /// the window plus attempts consumed on this ticket.
  [[nodiscard]] int stage_of(const maintenance::TicketSystem& tickets,
                             const maintenance::Ticket& ticket) const;

  [[nodiscard]] const Config& config() const { return cfg_; }

 private:
  Config cfg_;
};

}  // namespace smn::core
