// The five automation levels (§2.1), adapted from the SAE driving taxonomy.
//
// Each level maps to concrete controller behaviour: who performs repairs,
// whether a human must supervise each robot action (and therefore whether
// robot throughput is gated on technician availability), and how much human
// attention each robot-hour consumes.
#pragma once

#include <cstdint>

namespace smn::core {

enum class AutomationLevel : std::uint8_t {
  kL0_Manual = 0,           // all tasks performed by technicians
  kL1_OperatorAssist = 1,   // technicians with powered/assistive tooling
  kL2_PartialAutomation = 2,// robots act under blocking human supervision
  kL3_HighAutomation = 3,   // robots act end-to-end; humans handle escalations
  kL4_FullAutomation = 4,   // no human presence; robots handle everything
};
[[nodiscard]] const char* to_string(AutomationLevel l);

struct LevelTraits {
  bool robots_allowed = false;
  /// L2: every robot action must hold a human supervisor slot for its whole
  /// duration (teleoperation / human-in-the-loop), capping robot concurrency
  /// at the technician head-count.
  bool supervision_blocking = false;
  /// Human attention consumed per robot work hour: L2 watches everything,
  /// L3 samples/reviews, L4 none.
  double supervision_fraction = 0.0;
  /// Multiplier on technician hands-on time (L1 assistive tooling, < 1).
  double tool_assist_factor = 1.0;
  /// L3+: the controller verifies suspected transients before rolling any
  /// hardware action (cheap for a robot, a wasted truck roll for a human).
  bool verify_before_dispatch = false;
  /// L4: escalations that would "request human support" are retried by a
  /// second robot unit instead (§3.3.2's spare-carrying future).
  bool humans_available = true;
};

[[nodiscard]] LevelTraits traits(AutomationLevel l);

}  // namespace smn::core
