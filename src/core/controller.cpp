#include "core/controller.h"

#include <algorithm>
#include <memory>
#include <utility>

namespace smn::core {

using maintenance::Job;
using maintenance::JobReport;
using maintenance::RepairActionKind;
using maintenance::Ticket;
using maintenance::TicketPriority;
using maintenance::TicketState;

MaintenanceController::MaintenanceController(net::Network& net,
                                             telemetry::DetectionEngine& detection,
                                             maintenance::TicketSystem& tickets,
                                             fault::CascadeModel& cascade,
                                             maintenance::TechnicianPool& technicians,
                                             robotics::RobotFleet* fleet,
                                             sim::RngStream rng, Config cfg)
    : net_{net},
      detection_{detection},
      tickets_{tickets},
      cascade_{cascade},
      technicians_{technicians},
      fleet_{fleet},
      rng_{std::move(rng)},
      cfg_{cfg},
      traits_{traits(cfg.level)},
      escalation_{cfg.escalation},
      migrator_{net},
      fom_engine_{net.simulator()},
      scan_fom_{*this},
      supervisors_free_{cfg.supervisors} {}

MaintenanceController::HopFom& MaintenanceController::acquire_hop() {
  if (!hop_free_.empty()) {
    HopFom* f = hop_free_.back();
    hop_free_.pop_back();
    return *f;
  }
  hop_foms_.push_back(std::make_unique<HopFom>(*this));
  return *hop_foms_.back();
}

void MaintenanceController::HopFom::begin_verify(int ticket_id, sim::TimePoint at) {
  ticket_id_ = ticket_id;
  set_phase(kVerify);
  engine().wake_at(*this, at);
}

void MaintenanceController::HopFom::begin_deferred(int ticket_id,
                                                   const EscalationDecision& decision,
                                                   sim::TimePoint at) {
  ticket_id_ = ticket_id;
  decision_ = decision;
  set_phase(kDeferredDispatch);
  engine().wake_at(*this, at);
}

void MaintenanceController::HopFom::begin_retry(int ticket_id, sim::TimePoint at) {
  ticket_id_ = ticket_id;
  set_phase(kRetryPlan);
  engine().wake_at(*this, at);
}

sim::Fom::Tick MaintenanceController::HopFom::tick() {
  switch (phase()) {
    case kVerify: ctl_.verify_ticket(ticket_id_); break;
    case kDeferredDispatch: ctl_.dispatch(ticket_id_, decision_); break;
    case kRetryPlan: ctl_.plan(ticket_id_); break;
    default: break;
  }
  return Tick::kDone;
}

void MaintenanceController::HopFom::on_done() {
  ticket_id_ = -1;
  ctl_.hop_free_.push_back(this);
}

void MaintenanceController::start() {
  if (started_) return;
  started_ = true;
  scan_anchor_ = net_.now();
  detection_.subscribe([this](const telemetry::Detection& d) { on_detection(d); });
  arm_scan();
}

void MaintenanceController::set_obs(obs::Obs* o) {
  if (o == nullptr) return;
  if (obs::Registry* reg = o->metrics()) {
    obs_detections_ = reg->counter("controller_detections_total");
    obs_deferred_ = reg->counter("controller_deferred_total");
    obs_verified_transients_ = reg->counter("controller_verified_transients_total");
    obs_proactive_ = reg->counter("controller_proactive_total");
    obs_human_escalations_ = reg->counter("controller_human_escalations_total");
    obs_robot_dispatch_ = reg->counter("controller_robot_dispatch_total");
    obs_technician_dispatch_ = reg->counter("controller_technician_dispatch_total");
    fom_engine_.set_obs(reg->counter("sim_wakeups_ticket_total"));
  }
  obs_trace_ = o->trace();
  obs_recorder_ = o->recorder();
}

void MaintenanceController::set_critical(net::LinkId id, bool critical) {
  if (critical) {
    critical_.insert(id.value());
  } else {
    critical_.erase(id.value());
  }
}

void MaintenanceController::on_detection(const telemetry::Detection& d) {
  const bool critical = is_critical(d.link);
  const TicketPriority prio =
      d.kind == telemetry::IssueKind::kDown || critical ? TicketPriority::kHigh
                                                        : TicketPriority::kNormal;
  const auto id = tickets_.open(net_.now(), d.link, d.kind, d.genuine, prio);
  if (!id.has_value()) return;  // deduplicated onto an in-flight ticket

  if (obs_detections_ != nullptr) obs_detections_->inc();
  SMN_TRACE_STMT(if (obs_trace_ != nullptr) obs_trace_->instant(
      "detection", "controller", net_.now(), "link", d.link.value(), "ticket", *id));
  if (obs_recorder_ != nullptr) {
    obs_recorder_->record(net_.now().count_us(), "detection", d.link.value(), *id);
  }

  // L3+ transient verification: for soft symptoms, give the link a beat to
  // prove the episode is over before rolling hardware. Critical links get a
  // quarter of the normal delay — the workload is stalled while we wait.
  if (traits_.verify_before_dispatch && d.kind != telemetry::IssueKind::kDown) {
    const sim::Duration delay = critical ? cfg_.verify_delay / 4.0 : cfg_.verify_delay;
    acquire_hop().begin_verify(*id, net_.now() + delay);
    return;
  }
  plan(*id);
}

void MaintenanceController::verify_ticket(int ticket_id) {
  const Ticket& t = tickets_.ticket(ticket_id);
  if (t.state != TicketState::kOpen) return;
  if (link_recovered(t.link)) {
    tickets_.mark_cancelled(ticket_id, net_.now(), "verified transient");
    detection_.clear(t.link);
    ++verified_transients_;
    if (obs_verified_transients_ != nullptr) obs_verified_transients_->inc();
    SMN_TRACE_STMT(if (obs_trace_ != nullptr) obs_trace_->instant(
        "verified-transient", "controller", net_.now(), "ticket", ticket_id));
    return;
  }
  plan(ticket_id);
}

bool MaintenanceController::link_recovered(net::LinkId id) const {
  const net::Link& l = net_.link(id);
  return l.state == net::LinkState::kUp &&
         detection_.recent_flaps(id, cfg_.verify_delay) == 0;
}

void MaintenanceController::plan(int ticket_id) {
  const Ticket& t = tickets_.ticket(ticket_id);
  if (t.state == TicketState::kResolved || t.state == TicketState::kCancelled) return;

  if (t.actions_taken >= cfg_.max_attempts_per_ticket) {
    tickets_.mark_cancelled(ticket_id, net_.now(), "attempt budget exhausted");
    detection_.clear(t.link);
    return;
  }

  const EscalationDecision decision = escalation_.decide(net_, tickets_, t);

  // Impact-aware deferral: non-urgent disruptive work waits for the next
  // low-utilization window (bounded), so induced transients hit idle hours.
  if (cfg_.impact_aware && t.priority != TicketPriority::kHigh &&
      !cfg_.traffic.is_low(net_.now(), cfg_.defer_utilization_threshold)) {
    const sim::TimePoint window =
        cfg_.traffic.next_low_window(net_.now(), cfg_.defer_utilization_threshold);
    const sim::TimePoint bounded =
        std::min(window, net_.now() + cfg_.max_deferral);
    if (bounded > net_.now()) {
      ++deferred_;
      if (obs_deferred_ != nullptr) obs_deferred_->inc();
      SMN_TRACE_STMT(if (obs_trace_ != nullptr) obs_trace_->instant(
          "defer", "controller", net_.now(), "ticket", ticket_id, "until_us",
          bounded.count_us()));
      if (obs_recorder_ != nullptr) {
        obs_recorder_->record(net_.now().count_us(), "defer", ticket_id, bounded.count_us());
      }
      acquire_hop().begin_deferred(ticket_id, decision, bounded);
      return;
    }
  }
  dispatch(ticket_id, decision);
}

void MaintenanceController::dispatch(int ticket_id, const EscalationDecision& decision) {
  const Ticket& t = tickets_.ticket(ticket_id);
  if (t.state == TicketState::kResolved || t.state == TicketState::kCancelled) return;

  Job job;
  job.ticket_id = ticket_id;
  job.link = t.link;
  job.end = decision.end;
  job.kind = decision.kind;
  job.high_priority = t.priority == TicketPriority::kHigh;

  const bool via_robot = traits_.robots_allowed && fleet_ != nullptr &&
                         fleet_->capable(job.kind) && fleet_->reachable(job.link, job.end);

  if (t.state == TicketState::kOpen) tickets_.mark_dispatched(ticket_id, net_.now());

  if (via_robot && traits_.supervision_blocking) {
    // L2: a human must watch; wait for a supervisor slot.
    acquire_supervisor([this, ticket_id, job] { execute(ticket_id, job, true); });
  } else {
    execute(ticket_id, job, via_robot);
  }
}

void MaintenanceController::execute(int ticket_id, const Job& job, bool via_robot) {
  Job dispatched = job;
  // Pre-announce the contact list (§2). The drain itself is deferred to the
  // performer's work-start hook so links are only admin-down while hands are
  // physically on the hardware, not for the whole dispatch latency.
  auto drained = std::make_shared<std::vector<net::LinkId>>();
  if (cfg_.impact_aware) {
    fault::Disturbance d;
    d.target = job.link;
    const net::Link& l = net_.link(job.link);
    d.at_device = job.end == 0 ? l.end_a.device : l.end_b.device;
    d.full_route = job.kind == RepairActionKind::kReplaceCable;
    std::vector<net::LinkId> contacts = cascade_.predicted_contacts(d);
    dispatched.on_work_start = [this, contacts = std::move(contacts), drained] {
      *drained = migrator_.drain_for_work(contacts);
    };
  }

  auto cb = [this, ticket_id, drained, via_robot](const JobReport& report) {
    on_report(ticket_id, report, *drained, via_robot);
  };

  if (via_robot) {
    ++robot_jobs_;
    if (obs_robot_dispatch_ != nullptr) obs_robot_dispatch_->inc();
  } else {
    ++technician_jobs_;
    if (obs_technician_dispatch_ != nullptr) obs_technician_dispatch_->inc();
  }
  SMN_TRACE_STMT(if (obs_trace_ != nullptr) obs_trace_->instant(
      via_robot ? "dispatch-robot" : "dispatch-technician", "controller", net_.now(), "ticket",
      ticket_id, "kind", static_cast<int>(job.kind)));
  if (obs_recorder_ != nullptr) {
    obs_recorder_->record(net_.now().count_us(), via_robot ? "dispatch-robot" : "dispatch-tech",
                          ticket_id, static_cast<std::int64_t>(job.kind));
  }
  if (via_robot) {
    fleet_->submit(dispatched, std::move(cb));
  } else {
    technicians_.submit(dispatched, std::move(cb));
  }
}

void MaintenanceController::on_report(int ticket_id, const JobReport& report,
                                      const std::vector<net::LinkId>& drained,
                                      bool via_robot) {
  migrator_.restore(drained);

  const Ticket& t = tickets_.ticket(ticket_id);
  if (t.state == TicketState::kDispatched) tickets_.mark_started(ticket_id, report.started);
  tickets_.count_action(ticket_id);

  const double work_hours = (report.finished - report.started).to_hours();
  if (via_robot) {
    supervision_hours_ += traits_.supervision_fraction * work_hours;
    if (traits_.supervision_blocking) release_supervisor();
  }

  if (report.measured_contamination > 0.0) {
    last_inspection_[report.job.link] = report.measured_contamination;
  }

  // Robot could not finish (grasp/verify failure, no spare, out of scope):
  // route the same rung to humans — unless this is L4, where a second robot
  // attempt is made instead.
  if (!report.performed && via_robot) {
    if (traits_.humans_available) {
      ++human_escalations_;
      if (obs_human_escalations_ != nullptr) obs_human_escalations_->inc();
      SMN_TRACE_STMT(if (obs_trace_ != nullptr) obs_trace_->instant(
          "human-escalation", "controller", net_.now(), "ticket", ticket_id));
      execute(ticket_id, report.job, false);
    } else {
      // L4: retry autonomously after a short reposition delay.
      acquire_hop().begin_retry(ticket_id, net_.now() + sim::Duration::minutes(10));
    }
    return;
  }

  resolve_or_replan(ticket_id, report);
}

void MaintenanceController::resolve_or_replan(int ticket_id, const JobReport& report) {
  const Ticket& t = tickets_.ticket(ticket_id);
  if (t.state == TicketState::kResolved || t.state == TicketState::kCancelled) return;

  net_.refresh_link(t.link);
  const net::Link& l = net_.link(t.link);
  // A link drained by some other concurrent repair's migration counts as
  // healthy if its hardware would come up clean.
  bool healthy = l.state == net::LinkState::kUp;
  if (!healthy && l.admin_down) {
    net::Link probe = l;
    probe.admin_down = false;
    const bool devices_ok =
        net_.device(l.end_a.device).healthy && net_.device(l.end_b.device).healthy;
    healthy = probe.derive_state(net_.now(), devices_ok) == net::LinkState::kUp;
  }
  if (healthy) {
    tickets_.mark_resolved(ticket_id, net_.now(), report.performer);
    detection_.clear(t.link);
    resolved_count_[t.link] += 1;
    if (report.job.kind == RepairActionKind::kReseat) {
      const net::DeviceId sw =
          report.job.end == 0 ? l.end_a.device : l.end_b.device;
      reseat_fixes_[sw].push_back(net_.now());
      arm_scan();  // a fresh reseat fix is a proactive-scan trigger source
    }
    return;
  }
  // Still sick: climb to the next rung.
  plan(ticket_id);
}

// --- supervision slots (L2) ---

void MaintenanceController::acquire_supervisor(std::function<void()> then) {
  if (supervisors_free_ > 0) {
    --supervisors_free_;
    then();
  } else {
    supervision_waitlist_.push_back(std::move(then));
  }
}

void MaintenanceController::release_supervisor() {
  if (!supervision_waitlist_.empty()) {
    auto next = std::move(supervision_waitlist_.front());
    supervision_waitlist_.pop_front();
    next();  // slot transfers directly to the next waiting job
  } else {
    ++supervisors_free_;
  }
}

// --- proactive maintenance (§4) ---

telemetry::FeatureVector MaintenanceController::features_for(net::LinkId id) const {
  telemetry::FeatureVector f;
  f.flaps_recent =
      std::min(1.0, detection_.recent_flaps(id, cfg_.prediction_window) / 10.0);
  const double lifetime_h = std::max(1.0, net_.now().to_hours());
  f.degraded_fraction = std::min(
      1.0, detection_.time_in(id, net::LinkState::kDegraded).to_hours() / lifetime_h +
               detection_.time_in(id, net::LinkState::kFlapping).to_hours() / lifetime_h);
  int recent_tickets = 0;
  for (const Ticket* prev : tickets_.history_for(id)) {
    if (net_.now() - prev->resolved <= cfg_.prediction_window) ++recent_tickets;
  }
  f.detections_recent = std::min(1.0, recent_tickets / 5.0);
  const auto it = resolved_count_.find(id);
  f.repair_count = std::min(1.0, (it == resolved_count_.end() ? 0 : it->second) / 10.0);
  f.age = std::min(1.0, net_.now().to_days() / (5.0 * 365.0));
  f.inspection_grade = last_inspection_grade(id);
  return f;
}

double MaintenanceController::last_inspection_grade(net::LinkId id) const {
  const auto it = last_inspection_.find(id);
  return it == last_inspection_.end() ? 0.0 : it->second;
}

void MaintenanceController::open_proactive(net::LinkId link, RepairActionKind kind,
                                           int end) {
  const auto id = tickets_.open(net_.now(), link, telemetry::IssueKind::kDegraded,
                                /*genuine=*/true, TicketPriority::kNormal,
                                /*proactive=*/true);
  if (!id.has_value()) return;
  last_proactive_[link] = net_.now();
  ++proactive_actions_;
  if (obs_proactive_ != nullptr) obs_proactive_->inc();
  SMN_TRACE_STMT(if (obs_trace_ != nullptr) obs_trace_->instant(
      "proactive", "controller", net_.now(), "link", link.value(), "kind",
      static_cast<int>(kind)));
  if (obs_recorder_ != nullptr) {
    obs_recorder_->record(net_.now().count_us(), "proactive", link.value(),
                          static_cast<std::int64_t>(kind));
  }
  tickets_.mark_dispatched(*id, net_.now());

  Job job;
  job.ticket_id = *id;
  job.link = link;
  job.end = end;
  job.kind = kind;
  const int ticket_id = *id;
  auto cb = [this, ticket_id](const JobReport& report) {
    tickets_.count_action(ticket_id);
    if (report.measured_contamination > 0.0) {
      last_inspection_[report.job.link] = report.measured_contamination;
    }
    const Ticket& t = tickets_.ticket(ticket_id);
    if (t.state == TicketState::kResolved || t.state == TicketState::kCancelled) return;
    // Proactive work closes regardless of outcome; it was not fixing a
    // detected failure. Escalation-to-human for proactive work is skipped —
    // the whole point is that it rides free robot hours (§4).
    tickets_.mark_resolved(ticket_id, net_.now(),
                           report.performed ? "robot-proactive" : "robot-abandoned");
    detection_.clear(report.job.link);
  };
  ++robot_jobs_;
  fleet_->submit(job, std::move(cb));
}

void MaintenanceController::proactive_scan() {
  if (!traits_.robots_allowed || fleet_ == nullptr) return;
  if (!cfg_.traffic.is_low(net_.now(), cfg_.proactive.low_utilization_threshold)) return;
  const sim::TimePoint now = net_.now();

  auto cooled_down = [&](net::LinkId id) {
    const auto it = last_proactive_.find(id);
    return it == last_proactive_.end() ||
           now - it->second >= cfg_.proactive.per_link_cooldown;
  };
  auto idle_and_clear = [&](const net::Link& l) {
    return l.state == net::LinkState::kUp && !l.admin_down &&
           !tickets_.open_ticket_for(l.id).has_value() && cooled_down(l.id);
  };

  // §4 switch-wide heuristic: several reseat-fixes on one switch recently =>
  // reseat everything on it during the low window.
  if (cfg_.proactive.switch_wide_reseat) {
    for (auto& [device, times] : reseat_fixes_) {
      std::erase_if(times, [&](sim::TimePoint t) {
        return now - t > cfg_.proactive.trigger_window;
      });
      if (static_cast<int>(times.size()) < cfg_.proactive.switch_reseat_trigger) continue;
      for (const net::LinkId lid : net_.links_at(device)) {
        const net::Link& l = net_.link(lid);
        if (!idle_and_clear(l)) continue;
        const int end = l.end_a.device == device ? 0 : 1;
        open_proactive(lid, RepairActionKind::kReseat, end);
      }
      times.clear();  // trigger consumed
    }
  }

  // Predictor-driven: score every link; clean (or reseat) the likely-to-fail.
  if (cfg_.proactive.use_predictor && predictor_ != nullptr) {
    for (const net::Link& l : net_.links()) {
      if (!idle_and_clear(l)) continue;
      if (predictor_->predict(features_for(l.id)) < cfg_.proactive.predictor_threshold) {
        continue;
      }
      const RepairActionKind kind = net::is_cleanable(l.medium)
                                        ? RepairActionKind::kClean
                                        : RepairActionKind::kReseat;
      open_proactive(l.id, kind, 0);
    }
  }
}

void MaintenanceController::arm_scan() {
  if (!started_ || !cfg_.proactive.enabled) return;
  if (!traits_.robots_allowed || fleet_ == nullptr) return;
  // A scan with no trigger source is a pure no-op (is_low() is const, the
  // reseat loop only prunes empty vectors, the predictor branch is skipped,
  // and nothing draws randomness), so the grid ticks it would have consumed
  // can be skipped wholesale. An attached predictor keeps the loop
  // free-running (every link is a candidate); otherwise only unconsumed
  // reseat fixes justify waking up. Stale fixes outside the trigger window
  // still count here — the scan itself prunes them (under is_low), and the
  // re-arm below stops once the vectors drain.
  const bool predictor_work = cfg_.proactive.use_predictor && predictor_ != nullptr;
  bool reseat_work = false;
  if (!predictor_work && cfg_.proactive.switch_wide_reseat) {
    for (const auto& [device, times] : reseat_fixes_) {
      if (!times.empty()) {
        reseat_work = true;
        break;
      }
    }
  }
  if (!predictor_work && !reseat_work) return;
  // Strictly-next grid point (anchor = start time), so the fom fires exactly
  // where schedule_every's ticks used to land; wakeup coalescing makes the
  // redundant re-arms from each reseat fix free.
  const std::int64_t us = cfg_.proactive.scan_interval.count_us();
  const std::int64_t k = (net_.now() - scan_anchor_).count_us() / us + 1;
  fom_engine_.wake_at(scan_fom_, scan_anchor_ + sim::Duration::microseconds(k * us));
}

sim::Fom::Tick MaintenanceController::ScanFom::tick() {
  ctl_.proactive_scan();
  ctl_.arm_scan();  // re-armed only while a trigger source remains
  return Tick::kWait;
}

}  // namespace smn::core
