// Probe-based fault localization (§4): "Fault detection and isolation:
// Integrating robotics with network monitoring tools and developing
// algorithms for precise fault localization is another area of interest."
//
// Services see end-to-end symptoms, not per-end-face dirt. The localizer
// sends synthetic probes between random server pairs (each probe hashes onto
// one member of every parallel group, like a real 5-tuple), marks probes
// lossy from the real loss of the links they traversed, and runs a
// tomography-style scoring pass: links on lossy paths gain suspicion, links
// on clean paths are exonerated. The ranked suspect list is what a robot
// then confirms with end-face inspections — turning "somewhere on this path"
// into "this connector" (experiment E16).
#pragma once

#include <vector>

#include "net/network.h"
#include "net/routing.h"
#include "sim/rng.h"

namespace smn::telemetry {

struct ProbeResult {
  net::DeviceId src;
  net::DeviceId dst;
  bool lossy = false;
  std::vector<net::LinkId> path_links;  // the exact members the probe rode
};

struct Suspicion {
  net::LinkId link;
  double score = 0;  // higher = more suspect
  int lossy_hits = 0;
  int clean_hits = 0;
};

class FaultLocalizer {
 public:
  struct Config {
    /// A probe counts as lossy when any traversed link's loss rate reaches
    /// this (catches Degraded and worse; Up links are ~1e-9).
    double loss_threshold = 1e-6;
    /// Measurement noise: probability a clean probe still reports lossy.
    double false_positive = 0.002;
    /// How much a clean traversal exonerates a link in the score.
    double exoneration_weight = 2.0;
  };

  FaultLocalizer(net::Network& net, sim::RngStream rng)
      : FaultLocalizer(net, std::move(rng), Config{}) {}
  FaultLocalizer(net::Network& net, sim::RngStream rng, Config cfg)
      : net_{net}, rng_{std::move(rng)}, cfg_{cfg} {}

  /// Sends `count` probes between random server pairs over the live network.
  [[nodiscard]] std::vector<ProbeResult> run_probes(int count);

  /// One probe between a specific pair (ECMP member chosen per hop).
  [[nodiscard]] ProbeResult probe(net::DeviceId src, net::DeviceId dst);

  /// Tomography: ranks links by lossy-coverage minus clean-exoneration.
  /// Only links that appeared on at least one lossy probe are returned,
  /// sorted most-suspect first.
  [[nodiscard]] std::vector<Suspicion> localize(
      const std::vector<ProbeResult>& probes) const;

  /// Walks the suspect list confirming each by (simulated) end-face
  /// inspection until a genuinely impaired link is found; returns the number
  /// of inspections spent, or -1 if the list is exhausted. This is the
  /// robot-in-the-loop step: each inspection is minutes of robot time rather
  /// than a human dispatch.
  [[nodiscard]] int inspections_to_pinpoint(const std::vector<Suspicion>& suspects) const;

 private:
  net::Network& net_;
  sim::RngStream rng_;
  Config cfg_;
  /// Scratch distance table reused across probes (one BFS per probe was the
  /// localizer's dominant allocation).
  std::vector<int> dist_scratch_;
};

}  // namespace smn::telemetry
