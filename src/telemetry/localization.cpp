#include "telemetry/localization.h"

#include <algorithm>
#include <unordered_map>

namespace smn::telemetry {

ProbeResult FaultLocalizer::probe(net::DeviceId src, net::DeviceId dst) {
  ProbeResult result;
  result.src = src;
  result.dst = dst;
  // A probe's 5-tuple hashes onto one equal-cost next hop at every switch —
  // a uniform random walk down the shortest-path DAG, choosing both the next
  // device and the parallel-group member. The default PathPolicy (anything
  // not Down carries probes) matches the localizer's pre-engine BFS.
  net_.connectivity().bfs_distances(dst, {}, dist_scratch_);
  const std::vector<int>& dist = dist_scratch_;
  if (dist[static_cast<size_t>(src.value())] < 0) {
    result.lossy = true;  // unreachable: maximally lossy
    return result;
  }
  double worst_loss = 0;
  net::DeviceId cur = src;
  while (cur != dst) {
    const int d = dist[static_cast<size_t>(cur.value())];
    std::vector<net::LinkId> next_links;
    for (const net::LinkId lid : net_.links_at(cur)) {
      const net::Link& l = net_.link(lid);
      if (l.state == net::LinkState::kDown) continue;
      const net::DeviceId peer = l.end_a.device == cur ? l.end_b.device : l.end_a.device;
      if (dist[static_cast<size_t>(peer.value())] == d - 1) next_links.push_back(lid);
    }
    if (next_links.empty()) {
      result.lossy = true;
      return result;
    }
    const net::LinkId chosen = next_links[rng_.index(next_links.size())];
    result.path_links.push_back(chosen);
    const net::Link& l = net_.link(chosen);
    worst_loss = std::max(worst_loss, net::Link::loss_rate(l.state));
    cur = l.end_a.device == cur ? l.end_b.device : l.end_a.device;
  }
  result.lossy = worst_loss >= cfg_.loss_threshold || rng_.bernoulli(cfg_.false_positive);
  return result;
}

std::vector<ProbeResult> FaultLocalizer::run_probes(int count) {
  std::vector<ProbeResult> out;
  const std::vector<net::DeviceId>& servers = net_.servers();
  if (servers.size() < 2) return out;
  out.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    const net::DeviceId src = servers[rng_.index(servers.size())];
    net::DeviceId dst = src;
    while (dst == src) dst = servers[rng_.index(servers.size())];
    out.push_back(probe(src, dst));
  }
  return out;
}

std::vector<Suspicion> FaultLocalizer::localize(
    const std::vector<ProbeResult>& probes) const {
  std::unordered_map<std::int32_t, Suspicion> table;
  for (const ProbeResult& p : probes) {
    for (const net::LinkId lid : p.path_links) {
      Suspicion& s = table[lid.value()];
      s.link = lid;
      if (p.lossy) {
        ++s.lossy_hits;
      } else {
        ++s.clean_hits;
      }
    }
  }
  std::vector<Suspicion> out;
  for (auto& [id, s] : table) {
    if (s.lossy_hits == 0) continue;
    s.score = static_cast<double>(s.lossy_hits) -
              cfg_.exoneration_weight * static_cast<double>(s.clean_hits);
    out.push_back(s);
  }
  std::sort(out.begin(), out.end(), [](const Suspicion& a, const Suspicion& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.link < b.link;  // deterministic tie-break
  });
  return out;
}

int FaultLocalizer::inspections_to_pinpoint(
    const std::vector<Suspicion>& suspects) const {
  int inspections = 0;
  for (const Suspicion& s : suspects) {
    ++inspections;
    const net::Link& l = net_.link(s.link);
    // The inspection sees the truth (free-space imaging, §3.3.3): impaired
    // state or visible end-face contamination confirms the culprit.
    const bool impaired = l.state == net::LinkState::kDegraded ||
                          l.state == net::LinkState::kFlapping ||
                          std::max(l.end_a.condition.contamination,
                                   l.end_b.condition.contamination) > 0.3;
    if (impaired) return inspections;
  }
  return -1;
}

}  // namespace smn::telemetry
