// Predictive maintenance (§4): "new opportunities to use machine learning
// techniques to predict failures and detect related network behavior
// patterns, potentially leveraging data collected by robotic systems."
//
// A self-contained logistic-regression failure predictor trained by SGD on
// per-link feature snapshots. Features use only operator-observable signals
// (flap history, degraded time, repair history, age) plus — when robots are
// deployed — the end-face inspection grade collected during cleaning visits,
// the "data collected by robotic systems" the paper highlights.
#pragma once

#include <array>
#include <cstddef>
#include <span>
#include <vector>

#include "sim/rng.h"

namespace smn::telemetry {

inline constexpr std::size_t kFeatureCount = 6;

/// One per-link snapshot. All features are normalized to roughly [0, 1].
struct FeatureVector {
  double flaps_recent = 0;        // flap transitions in the last window / 10
  double degraded_fraction = 0;   // fraction of the window spent degraded
  double detections_recent = 0;   // detections in the window / 5
  double repair_count = 0;        // lifetime repairs on this link / 10
  double age = 0;                 // link age / 5 years
  double inspection_grade = 0;    // last robot-measured contamination, 0 if never

  [[nodiscard]] std::array<double, kFeatureCount> as_array() const {
    return {flaps_recent, degraded_fraction, detections_recent,
            repair_count, age, inspection_grade};
  }
};

struct TrainingExample {
  FeatureVector features;
  bool failed_within_horizon = false;
};

struct EvaluationResult {
  double precision = 0;
  double recall = 0;
  double f1 = 0;
  std::size_t positives = 0;
  std::size_t predicted_positive = 0;
  std::size_t true_positive = 0;
};

class LogisticPredictor {
 public:
  struct Config {
    int epochs = 200;
    double learning_rate = 0.1;
    double l2 = 1e-4;
  };

  /// Trains with SGD; examples are shuffled each epoch with `rng`.
  void train(std::span<const TrainingExample> examples, sim::RngStream& rng) {
    train(examples, rng, Config{});
  }
  void train(std::span<const TrainingExample> examples, sim::RngStream& rng, Config cfg);

  /// Failure probability within the horizon.
  [[nodiscard]] double predict(const FeatureVector& f) const;

  [[nodiscard]] EvaluationResult evaluate(std::span<const TrainingExample> examples,
                                          double threshold) const;

  [[nodiscard]] const std::array<double, kFeatureCount + 1>& weights() const {
    return weights_;  // weights_[kFeatureCount] is the bias
  }

 private:
  std::array<double, kFeatureCount + 1> weights_{};
};

}  // namespace smn::telemetry
