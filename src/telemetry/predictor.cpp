#include "telemetry/predictor.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace smn::telemetry {
namespace {

double sigmoid(double z) { return 1.0 / (1.0 + std::exp(-z)); }

}  // namespace

void LogisticPredictor::train(std::span<const TrainingExample> examples,
                              sim::RngStream& rng, Config cfg) {
  weights_.fill(0.0);
  if (examples.empty()) return;

  std::vector<std::size_t> order(examples.size());
  std::iota(order.begin(), order.end(), 0u);

  for (int epoch = 0; epoch < cfg.epochs; ++epoch) {
    rng.shuffle(order);
    // Decaying step size keeps late epochs from oscillating.
    const double lr = cfg.learning_rate / (1.0 + 0.01 * epoch);
    for (const std::size_t idx : order) {
      const TrainingExample& ex = examples[idx];
      const auto x = ex.features.as_array();
      double z = weights_[kFeatureCount];
      for (std::size_t i = 0; i < kFeatureCount; ++i) z += weights_[i] * x[i];
      const double err = sigmoid(z) - (ex.failed_within_horizon ? 1.0 : 0.0);
      for (std::size_t i = 0; i < kFeatureCount; ++i) {
        weights_[i] -= lr * (err * x[i] + cfg.l2 * weights_[i]);
      }
      weights_[kFeatureCount] -= lr * err;
    }
  }
}

double LogisticPredictor::predict(const FeatureVector& f) const {
  const auto x = f.as_array();
  double z = weights_[kFeatureCount];
  for (std::size_t i = 0; i < kFeatureCount; ++i) z += weights_[i] * x[i];
  return sigmoid(z);
}

EvaluationResult LogisticPredictor::evaluate(std::span<const TrainingExample> examples,
                                             double threshold) const {
  EvaluationResult r;
  for (const TrainingExample& ex : examples) {
    const bool predicted = predict(ex.features) >= threshold;
    if (ex.failed_within_horizon) ++r.positives;
    if (predicted) ++r.predicted_positive;
    if (predicted && ex.failed_within_horizon) ++r.true_positive;
  }
  r.precision = r.predicted_positive == 0
                    ? 0.0
                    : static_cast<double>(r.true_positive) / static_cast<double>(r.predicted_positive);
  r.recall = r.positives == 0
                 ? 0.0
                 : static_cast<double>(r.true_positive) / static_cast<double>(r.positives);
  r.f1 = (r.precision + r.recall) == 0.0
             ? 0.0
             : 2.0 * r.precision * r.recall / (r.precision + r.recall);
  return r;
}

}  // namespace smn::telemetry
