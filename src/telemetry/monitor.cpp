#include "telemetry/monitor.h"

#include <algorithm>
#include <functional>

namespace smn::telemetry {

const char* to_string(IssueKind k) {
  switch (k) {
    case IssueKind::kDown: return "down";
    case IssueKind::kFlapping: return "flapping";
    case IssueKind::kDegraded: return "degraded";
    case IssueKind::kFalsePositive: return "false-positive";
  }
  return "?";
}

DetectionEngine::DetectionEngine(net::Network& net, sim::RngStream rng, Config cfg)
    : net_{net},
      rng_{std::move(rng)},
      cfg_{cfg},
      fom_engine_{net.simulator()},
      poll_fom_{*this},
      fp_fom_{*this} {
  state_.resize(net_.links().size());
  const sim::TimePoint now = net_.now();
  for (std::size_t i = 0; i < state_.size(); ++i) {
    state_[i].last_state = net_.links()[i].state;
    state_[i].state_since = now;
    state_[i].up_since = now;
    update_watch(i);
  }
  net_.subscribe([this](const net::Link& l, net::LinkState from, net::LinkState to) {
    on_transition(l, from, to);
  });
}

void DetectionEngine::start() {
  if (running_) return;
  running_ = true;
  anchor_ = net_.now();
  if (cfg_.false_positive_per_year > 0.0) {
    fp_heap_.reserve(state_.size());
    // Per-link draws in link order, same as the old per-link timer arming.
    for (std::size_t i = 0; i < state_.size(); ++i) push_false_positive(i);
    if (!fp_heap_.empty()) fom_engine_.wake_at(fp_fom_, fp_heap_.front().first);
  }
  arm_poll();
}

void DetectionEngine::stop() {
  if (!running_) return;
  running_ = false;
  fom_engine_.cancel_wakeup(poll_fom_);
  fom_engine_.cancel_wakeup(fp_fom_);
  fp_heap_.clear();
}

void DetectionEngine::set_obs(obs::Obs* o) {
  if (o == nullptr || o->metrics() == nullptr) return;
  fom_engine_.set_obs(o->metrics()->counter("sim_wakeups_telemetry_total"));
}

void DetectionEngine::on_transition(const net::Link& l, net::LinkState from,
                                    net::LinkState to) {
  const std::size_t i = static_cast<size_t>(l.id.value());
  LinkWatch& w = state_.at(i);
  const sim::TimePoint now = net_.now();
  w.time_in_state[static_cast<int>(from)] += now - w.state_since;
  w.last_state = to;
  w.state_since = now;
  if (to == net::LinkState::kUp) w.up_since = now;
  if (to == net::LinkState::kFlapping) {
    w.flap_times.push_back(now);
    ++w.lifetime_flaps;
    while (!w.flap_times.empty() && now - w.flap_times.front() > cfg_.flap_window) {
      w.flap_times.pop_front();
    }
  }
  update_watch(i);
}

void DetectionEngine::update_watch(std::size_t i) {
  LinkWatch& w = state_[i];
  const bool should = w.open || net_.links()[i].state != net::LinkState::kUp;
  if (should == w.watched) return;
  w.watched = should;
  const std::uint32_t v = static_cast<std::uint32_t>(i);
  const auto it = std::lower_bound(watch_.begin(), watch_.end(), v);
  if (should) {
    watch_.insert(it, v);
    arm_poll();
  } else {
    watch_.erase(it);
  }
}

void DetectionEngine::arm_poll() {
  if (!running_ || watch_.empty()) return;
  // Strictly-next grid point, so a transition landing exactly on the grid is
  // evaluated one full poll later — the same thing the free-running scan did
  // when its tick at that instant had already run. Wakeup coalescing makes
  // redundant re-arms (every watchlist insert) free.
  const std::int64_t poll_us = cfg_.poll.count_us();
  const std::int64_t k = (net_.now() - anchor_).count_us() / poll_us + 1;
  const sim::TimePoint next = anchor_ + sim::Duration::microseconds(k * poll_us);
  fom_engine_.wake_at(poll_fom_, next);
}

void DetectionEngine::poll_tick() {
  const sim::TimePoint now = net_.now();
  // Snapshot: raise() listeners run synchronously and may drain links or
  // resolve tickets, editing the watchlist mid-scan.
  scratch_ = watch_;
  for (const std::uint32_t i : scratch_) scan_link(i, now);
  arm_poll();
}

sim::Fom::Tick DetectionEngine::PollFom::tick() {
  eng_.poll_tick();
  return Tick::kWait;  // re-armed inside poll_tick iff still watching links
}

sim::Fom::Tick DetectionEngine::FpFom::tick() {
  const sim::TimePoint now = eng_.net_.now();
  while (!eng_.fp_heap_.empty() && eng_.fp_heap_.front().first <= now) {
    const std::size_t i = eng_.fp_heap_.front().second;
    std::pop_heap(eng_.fp_heap_.begin(), eng_.fp_heap_.end(),
                  std::greater<std::pair<sim::TimePoint, std::uint32_t>>{});
    eng_.fp_heap_.pop_back();
    eng_.fire_false_positive(i);  // redraws and re-pushes link i's arrival
  }
  if (!eng_.fp_heap_.empty()) {
    engine().wake_at(*this, eng_.fp_heap_.front().first);
  }
  return Tick::kWait;
}

void DetectionEngine::scan_link(std::size_t i, sim::TimePoint now) {
  const net::Link& l = net_.links()[i];
  LinkWatch& w = state_[i];

  // Self-clear: link has been healthy long enough; re-arm detection.
  if (w.open && l.state == net::LinkState::kUp && now - w.up_since >= cfg_.self_clear) {
    w.open = false;
    update_watch(i);
  }
  if (w.open) return;

  // Admin-drained links are intentionally down; not a failure to detect.
  if (l.admin_down) return;

  const sim::Duration in_state = now - w.state_since;
  switch (l.state) {
    case net::LinkState::kDown:
      if (in_state >= cfg_.down_debounce) raise(l.id, IssueKind::kDown, true);
      break;
    case net::LinkState::kFlapping:
      if (static_cast<int>(w.flap_times.size()) >= cfg_.flap_threshold ||
          in_state >= cfg_.down_debounce) {
        raise(l.id, IssueKind::kFlapping, true);
      }
      break;
    case net::LinkState::kDegraded:
      if (in_state >= cfg_.degraded_debounce) raise(l.id, IssueKind::kDegraded, true);
      break;
    case net::LinkState::kUp:
      break;  // false positives come from the per-link exponential timers
  }
}

void DetectionEngine::step_once() {
  const sim::TimePoint now = net_.now();
  const double fp_per_poll = cfg_.false_positive_per_year * cfg_.poll.to_days() / 365.0;
  for (const net::Link& l : net_.links()) {
    const std::size_t i = static_cast<size_t>(l.id.value());
    scan_link(i, now);
    const LinkWatch& w = state_[i];
    if (!w.open && !l.admin_down && l.state == net::LinkState::kUp &&
        rng_.bernoulli(fp_per_poll)) {
      raise(l.id, IssueKind::kFalsePositive, false);
      ++false_positives_;
    }
  }
}

void DetectionEngine::push_false_positive(std::size_t i) {
  const double mean_days = 365.0 / cfg_.false_positive_per_year;
  const sim::TimePoint at =
      net_.now() + sim::Duration::days(rng_.exponential(mean_days));
  fp_heap_.emplace_back(at, static_cast<std::uint32_t>(i));
  std::push_heap(fp_heap_.begin(), fp_heap_.end(),
                 std::greater<std::pair<sim::TimePoint, std::uint32_t>>{});
}

void DetectionEngine::fire_false_positive(std::size_t i) {
  const net::Link& l = net_.links()[i];
  const LinkWatch& w = state_[i];
  // The Poisson process keeps running either way; an arrival on an impaired,
  // drained, or already-flagged link is simply absorbed (the per-poll
  // Bernoulli draw skipped those links the same way).
  if (!w.open && !l.admin_down && l.state == net::LinkState::kUp) {
    raise(l.id, IssueKind::kFalsePositive, false);
    ++false_positives_;
  }
  push_false_positive(i);
}

void DetectionEngine::raise(net::LinkId id, IssueKind kind, bool genuine) {
  LinkWatch& w = state_.at(static_cast<size_t>(id.value()));
  w.open = true;
  update_watch(static_cast<size_t>(id.value()));
  ++detections_;
  const Detection d{net_.now(), id, kind, genuine};
  for (const Listener& l : listeners_) l(d);
}

void DetectionEngine::clear(net::LinkId id) {
  const std::size_t i = static_cast<size_t>(id.value());
  state_.at(i).open = false;
  update_watch(i);
}

int DetectionEngine::recent_flaps(net::LinkId id, sim::Duration window) const {
  const LinkWatch& w = state_.at(static_cast<size_t>(id.value()));
  const sim::TimePoint now = net_.now();
  int n = 0;
  for (const sim::TimePoint t : w.flap_times) {
    if (now - t <= window) ++n;
  }
  return n;
}

int DetectionEngine::total_flap_transitions(net::LinkId id) const {
  return state_.at(static_cast<size_t>(id.value())).lifetime_flaps;
}

sim::Duration DetectionEngine::time_in(net::LinkId id, net::LinkState s) const {
  const LinkWatch& w = state_.at(static_cast<size_t>(id.value()));
  sim::Duration total = w.time_in_state[static_cast<int>(s)];
  if (w.last_state == s) total += net_.now() - w.state_since;
  return total;
}

}  // namespace smn::telemetry
