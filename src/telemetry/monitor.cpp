#include "telemetry/monitor.h"

namespace smn::telemetry {

const char* to_string(IssueKind k) {
  switch (k) {
    case IssueKind::kDown: return "down";
    case IssueKind::kFlapping: return "flapping";
    case IssueKind::kDegraded: return "degraded";
    case IssueKind::kFalsePositive: return "false-positive";
  }
  return "?";
}

DetectionEngine::DetectionEngine(net::Network& net, sim::RngStream rng, Config cfg)
    : net_{net}, rng_{std::move(rng)}, cfg_{cfg} {
  state_.resize(net_.links().size());
  const sim::TimePoint now = net_.now();
  for (std::size_t i = 0; i < state_.size(); ++i) {
    state_[i].last_state = net_.links()[i].state;
    state_[i].state_since = now;
    state_[i].up_since = now;
  }
  net_.subscribe([this](const net::Link& l, net::LinkState from, net::LinkState to) {
    on_transition(l, from, to);
  });
}

void DetectionEngine::start() {
  if (periodic_ != sim::kInvalidEvent) return;
  periodic_ = net_.simulator().schedule_every(cfg_.poll, [this] { step_once(); });
}

void DetectionEngine::stop() {
  if (periodic_ == sim::kInvalidEvent) return;
  net_.simulator().cancel_periodic(periodic_);
  periodic_ = sim::kInvalidEvent;
}

void DetectionEngine::on_transition(const net::Link& l, net::LinkState from,
                                    net::LinkState to) {
  LinkWatch& w = state_.at(static_cast<size_t>(l.id.value()));
  const sim::TimePoint now = net_.now();
  w.time_in_state[static_cast<int>(from)] += now - w.state_since;
  w.last_state = to;
  w.state_since = now;
  if (to == net::LinkState::kUp) w.up_since = now;
  if (to == net::LinkState::kFlapping) {
    w.flap_times.push_back(now);
    ++w.lifetime_flaps;
    while (!w.flap_times.empty() && now - w.flap_times.front() > cfg_.flap_window) {
      w.flap_times.pop_front();
    }
  }
}

void DetectionEngine::step_once() {
  const sim::TimePoint now = net_.now();
  const double fp_per_poll = cfg_.false_positive_per_year * cfg_.poll.to_days() / 365.0;

  for (const net::Link& l : net_.links()) {
    LinkWatch& w = state_.at(static_cast<size_t>(l.id.value()));

    // Self-clear: link has been healthy long enough; re-arm detection.
    if (w.open && l.state == net::LinkState::kUp && now - w.up_since >= cfg_.self_clear) {
      w.open = false;
    }
    if (w.open) continue;

    // Admin-drained links are intentionally down; not a failure to detect.
    if (l.admin_down) continue;

    const sim::Duration in_state = now - w.state_since;
    switch (l.state) {
      case net::LinkState::kDown:
        if (in_state >= cfg_.down_debounce) raise(l.id, IssueKind::kDown, true);
        break;
      case net::LinkState::kFlapping:
        if (static_cast<int>(w.flap_times.size()) >= cfg_.flap_threshold ||
            in_state >= cfg_.down_debounce) {
          raise(l.id, IssueKind::kFlapping, true);
        }
        break;
      case net::LinkState::kDegraded:
        if (in_state >= cfg_.degraded_debounce) raise(l.id, IssueKind::kDegraded, true);
        break;
      case net::LinkState::kUp:
        if (rng_.bernoulli(fp_per_poll)) {
          raise(l.id, IssueKind::kFalsePositive, false);
          ++false_positives_;
        }
        break;
    }
  }
}

void DetectionEngine::raise(net::LinkId id, IssueKind kind, bool genuine) {
  LinkWatch& w = state_.at(static_cast<size_t>(id.value()));
  w.open = true;
  ++detections_;
  const Detection d{net_.now(), id, kind, genuine};
  for (const Listener& l : listeners_) l(d);
}

void DetectionEngine::clear(net::LinkId id) {
  state_.at(static_cast<size_t>(id.value())).open = false;
}

int DetectionEngine::recent_flaps(net::LinkId id, sim::Duration window) const {
  const LinkWatch& w = state_.at(static_cast<size_t>(id.value()));
  const sim::TimePoint now = net_.now();
  int n = 0;
  for (const sim::TimePoint t : w.flap_times) {
    if (now - t <= window) ++n;
  }
  return n;
}

int DetectionEngine::total_flap_transitions(net::LinkId id) const {
  return state_.at(static_cast<size_t>(id.value())).lifetime_flaps;
}

sim::Duration DetectionEngine::time_in(net::LinkId id, net::LinkState s) const {
  const LinkWatch& w = state_.at(static_cast<size_t>(id.value()));
  sim::Duration total = w.time_in_state[static_cast<int>(s)];
  if (w.last_state == s) total += net_.now() - w.state_since;
  return total;
}

}  // namespace smn::telemetry
