// Failure detection: what today's services are already good at (§2: "Today's
// services are already good at detecting hardware failures").
//
// The DetectionEngine watches link state transitions, applies debounce so
// momentary blips don't page, counts flap transitions in a sliding window,
// and raises Detections — the events that open tickets. It also injects
// false positives at a configurable rate, because §2 argues tight robot
// control "helps manage the impact of ... false positives on repairs".
//
// Detection is wakeup-on-event, not free-running polling: links in steady
// state (Up, no open issue) cost nothing. A sorted watchlist tracks the
// links that need debounce/self-clear evaluation, and the poll loop — still
// aligned to the `poll` grid so debounce timing matches the classic
// poll-scan semantics — is only armed while the watchlist is non-empty.
// False positives fire from per-link exponential timers (the Poisson process
// the per-poll Bernoulli draw approximated) instead of a coin flip per link
// per minute.
//
// Both timers run as FOMs on the engine's own FomEngine (sim/fom.h): the
// poll loop is one fom re-armed at grid points while the watchlist is
// non-empty, and the whole false-positive Poisson ensemble is one fom over a
// min-heap of per-link arrival times — one pending simulator event for the
// entire fleet instead of one per link. Wakeups are counted in
// `sim_wakeups_telemetry_total`.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <utility>
#include <vector>

#include "net/network.h"
#include "obs/obs.h"
#include "sim/event_queue.h"
#include "sim/fom.h"
#include "sim/rng.h"

namespace smn::telemetry {

enum class IssueKind : std::uint8_t { kDown, kFlapping, kDegraded, kFalsePositive };
[[nodiscard]] const char* to_string(IssueKind k);

struct Detection {
  sim::TimePoint time;
  net::LinkId link;
  IssueKind kind = IssueKind::kDown;
  /// True when the underlying link was genuinely impaired at detection time.
  bool genuine = true;
};

class DetectionEngine {
 public:
  struct Config {
    /// Debounce evaluation grid. Watched links are re-checked on this grid
    /// (matching the classic poll-scan cadence); unwatched links are never
    /// visited.
    sim::Duration poll = sim::Duration::minutes(1);
    /// A Down link is detected after this much continuous downtime.
    sim::Duration down_debounce = sim::Duration::seconds(30);
    /// A Degraded link is detected after this much continuous degradation.
    sim::Duration degraded_debounce = sim::Duration::minutes(15);
    /// Flapping is detected when transitions into kFlapping within
    /// `flap_window` reach `flap_threshold`, or immediately if the link sits
    /// in kFlapping continuously past `down_debounce`.
    int flap_threshold = 3;
    sim::Duration flap_window = sim::Duration::minutes(30);
    /// Spurious detections per healthy link per year (Poisson rate; each
    /// link runs an exponential inter-arrival timer).
    double false_positive_per_year = 0.25;
    /// An open issue self-clears if the link stays Up this long (transient
    /// resolved on its own; the ticket may already be in flight, though).
    sim::Duration self_clear = sim::Duration::minutes(60);
  };

  using Listener = std::function<void(const Detection&)>;

  DetectionEngine(net::Network& net, sim::RngStream rng)
      : DetectionEngine(net, std::move(rng), Config{}) {}
  DetectionEngine(net::Network& net, sim::RngStream rng, Config cfg);

  void start();
  void stop();

  /// Wires the `sim_wakeups_telemetry_total` counter (pure observer).
  void set_obs(obs::Obs* o);

  /// Manually evaluates every link once (the classic full poll scan,
  /// including the per-poll false-positive draw) — test/diagnostic entry
  /// point; the running engine only ever scans its watchlist.
  void step_once();

  void subscribe(Listener l) { listeners_.push_back(std::move(l)); }

  /// The repair workflow closes the issue when work on the link completes,
  /// re-arming detection for it.
  void clear(net::LinkId id);

  /// Whether a detection is currently open (raised, not yet cleared).
  [[nodiscard]] bool open(net::LinkId id) const {
    return state_.at(static_cast<size_t>(id.value())).open;
  }

  /// Flap transitions observed on this link within the window ending now —
  /// a predictor feature.
  [[nodiscard]] int recent_flaps(net::LinkId id, sim::Duration window) const;
  /// Lifetime counters, predictor features and experiment statistics.
  [[nodiscard]] int total_flap_transitions(net::LinkId id) const;
  /// Total observed time the link has spent in `s` (including the current
  /// dwell) — predictor feature and availability statistic.
  [[nodiscard]] sim::Duration time_in(net::LinkId id, net::LinkState s) const;
  [[nodiscard]] std::size_t detection_count() const { return detections_; }
  [[nodiscard]] std::size_t false_positive_count() const { return false_positives_; }

  /// Links currently needing debounce/self-clear evaluation. Empty in steady
  /// state — the property that makes the day-step cheap.
  [[nodiscard]] std::size_t watchlist_size() const { return watch_.size(); }

 private:
  struct LinkWatch {
    net::LinkState last_state = net::LinkState::kUp;
    sim::TimePoint state_since;
    sim::TimePoint up_since;
    std::deque<sim::TimePoint> flap_times;  // transitions into kFlapping
    int lifetime_flaps = 0;
    bool open = false;
    bool watched = false;
    sim::Duration time_in_state[4] = {};  // indexed by LinkState, past dwells
  };

  /// The grid-aligned debounce loop: one fom, armed only while the
  /// watchlist is non-empty.
  class PollFom final : public sim::Fom {
   public:
    explicit PollFom(DetectionEngine& eng) : sim::Fom(eng.fom_engine_), eng_(eng) {}

   protected:
    Tick tick() override;

   private:
    DetectionEngine& eng_;
  };

  /// The fleet-wide false-positive Poisson ensemble: a min-heap of per-link
  /// arrival times drained by one fom (each fired link redraws its next
  /// exponential inter-arrival, exactly as the per-link timer chains did).
  class FpFom final : public sim::Fom {
   public:
    explicit FpFom(DetectionEngine& eng) : sim::Fom(eng.fom_engine_), eng_(eng) {}

   protected:
    Tick tick() override;

   private:
    DetectionEngine& eng_;
  };

  void on_transition(const net::Link& l, net::LinkState from, net::LinkState to);
  void raise(net::LinkId id, IssueKind kind, bool genuine);

  // Debounce/self-clear evaluation for one link (the per-link poll body,
  // minus the false-positive draw).
  void scan_link(std::size_t i, sim::TimePoint now);
  // Inserts/removes link i from the sorted watchlist to match its state.
  void update_watch(std::size_t i);
  // Arms the next grid-aligned poll if the watchlist needs one.
  void arm_poll();
  void poll_tick();
  // Draws link i's next arrival and pushes it onto the heap.
  void push_false_positive(std::size_t i);
  void fire_false_positive(std::size_t i);

  net::Network& net_;
  sim::RngStream rng_;
  Config cfg_;
  sim::FomEngine fom_engine_;
  std::vector<LinkWatch> state_;
  std::vector<Listener> listeners_;
  std::size_t detections_ = 0;
  std::size_t false_positives_ = 0;

  bool running_ = false;
  sim::TimePoint anchor_;             // poll grid origin (time of start())
  PollFom poll_fom_;
  FpFom fp_fom_;
  std::vector<std::uint32_t> watch_;  // sorted link indices needing evaluation
  std::vector<std::uint32_t> scratch_;
  /// Min-heap (std::greater over (time, link)) of pending FP arrivals; ties
  /// resolve by link index — deterministic at any heap history.
  std::vector<std::pair<sim::TimePoint, std::uint32_t>> fp_heap_;
};

}  // namespace smn::telemetry
