#include "robotics/fleet.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <set>

#include "core/check.h"

namespace smn::robotics {

using maintenance::Job;
using maintenance::JobCallback;
using maintenance::JobReport;
using maintenance::RepairActionKind;

const char* to_string(MobilityScope s) {
  switch (s) {
    case MobilityScope::kRack: return "rack";
    case MobilityScope::kRow: return "row";
    case MobilityScope::kHall: return "hall";
  }
  return "?";
}

RobotFleet::RobotFleet(net::Network& net, fault::CascadeModel& cascade,
                       fault::ContaminationProcess* contamination, sim::RngStream rng,
                       Config cfg)
    : net_{net},
      cascade_{cascade},
      contamination_{contamination},
      rng_{std::move(rng)},
      cfg_{std::move(cfg)},
      manipulator_{cfg_.manipulator},
      cleaner_{cfg_.cleaner},
      fom_engine_{net.simulator()},
      restock_fom_{*this},
      restock_anchor_{net.now()} {
  for (const RobotUnitSpec& spec : cfg_.units) {
    units_.push_back(Unit{spec, spec.home, false, true});
  }
  for (const net::FormFactor ff :
       {net::FormFactor::kSfp28, net::FormFactor::kQsfp28, net::FormFactor::kQsfpDd,
        net::FormFactor::kOsfp}) {
    spares_[ff] = cfg_.spares_per_form_factor;
  }
}

bool RobotFleet::capable(RepairActionKind kind) const {
  switch (kind) {
    case RepairActionKind::kReseat:
    case RepairActionKind::kInspect:
    case RepairActionKind::kClean:
    case RepairActionKind::kReplaceTransceiver:
      return true;
    case RepairActionKind::kReplaceCable:
      return cfg_.can_replace_cable;
    case RepairActionKind::kReplaceLineCard:
    case RepairActionKind::kReplaceDevice:
      return cfg_.can_replace_device;
  }
  return false;
}

bool RobotFleet::unit_covers(const Unit& u, const topology::RackLocation& loc) const {
  switch (u.spec.scope) {
    case MobilityScope::kRack: return u.spec.home.same_rack(loc);
    case MobilityScope::kRow: return u.spec.home.same_row(loc);
    case MobilityScope::kHall: return u.spec.home.same_hall(loc);
  }
  return false;
}

bool RobotFleet::reachable(net::LinkId link, int end) const {
  const net::Link& l = net_.link(link);
  const net::DeviceId dev = end == 0 ? l.end_a.device : l.end_b.device;
  const topology::RackLocation& loc = net_.device(dev).location;
  return std::any_of(units_.begin(), units_.end(),
                     [&](const Unit& u) { return unit_covers(u, loc); });
}

sim::Duration RobotFleet::travel_time(const Unit& u, const topology::RackLocation& to) const {
  switch (u.spec.scope) {
    case MobilityScope::kRack:
      // Fixed in-rack frame: just reposition the arm along the rack.
      return sim::Duration::seconds(30.0);
    case MobilityScope::kRow: {
      const double dx = std::abs(u.position.rack - to.rack) *
                        net_.blueprint().layout().config().rack_pitch_m;
      return sim::Duration::seconds(dx / u.spec.travel_speed_mps + 30.0);
    }
    case MobilityScope::kHall: {
      const double d = net_.blueprint().layout().walking_distance_m(u.position, to);
      return sim::Duration::seconds(d / u.spec.travel_speed_mps + 60.0);
    }
  }
  return sim::Duration::zero();
}

topology::RackLocation RobotFleet::site_of(const Job& job) const {
  const net::Link& l = net_.link(job.link);
  const net::DeviceId dev = job.end == 0 ? l.end_a.device : l.end_b.device;
  return net_.device(dev).location;
}

int RobotFleet::faceplate_neighbors(net::LinkId link, int end) const {
  const net::Link& l = net_.link(link);
  const net::DeviceId dev = end == 0 ? l.end_a.device : l.end_b.device;
  const int my_port = end == 0 ? l.end_a.port : l.end_b.port;
  int n = 0;
  for (const net::LinkId other : net_.links_at(dev)) {
    if (other == link) continue;
    const net::Link& o = net_.link(other);
    const int port = o.end_a.device == dev ? o.end_a.port : o.end_b.port;
    if (std::abs(port - my_port) <= 2) ++n;
  }
  return n;
}

std::optional<std::size_t> RobotFleet::pick_unit(const topology::RackLocation& site) const {
  // Prefer the tightest scope that covers the site (rack < row < hall): small
  // units are cheaper to tie up and closer to the work.
  std::optional<std::size_t> best;
  int best_rank = 99;
  for (std::size_t i = 0; i < units_.size(); ++i) {
    const Unit& u = units_[i];
    if (u.busy || !u.operational || !unit_covers(u, site)) continue;
    const int rank = static_cast<int>(u.spec.scope);
    if (rank < best_rank) {
      best = i;
      best_rank = rank;
    }
  }
  return best;
}

void RobotFleet::set_obs(obs::Obs* o) {
  if (o == nullptr) return;
  if (obs::Registry* reg = o->metrics()) {
    obs_jobs_ = reg->counter("robot_jobs_total");
    obs_escalations_ = reg->counter("robot_escalations_total");
    obs_breakdowns_ = reg->counter("robot_breakdowns_total");
    // Robot jobs are minutes-to-hours: travel along the gantry plus the
    // §3.2/§3.3 manipulation sequence.
    obs_job_hours_ = reg->histogram("robot_job_hours", {0.25, 0.5, 1.0, 2.0, 4.0, 12.0});
    fom_engine_.set_obs(reg->counter("sim_wakeups_robot_total"));
  }
  obs_trace_ = o->trace();
  obs_recorder_ = o->recorder();
}

void RobotFleet::report_immediate(const Pending& p, const char* performer) {
  JobReport r;
  r.job = p.job;
  r.performed = false;
  r.enqueued = p.enqueued;
  r.started = net_.now();
  r.finished = net_.now();
  r.performer = performer;
  ++escalations_;
  if (obs_escalations_ != nullptr) obs_escalations_->inc();
  SMN_TRACE_STMT(if (obs_trace_ != nullptr) obs_trace_->instant(
      performer, "robot", net_.now(), "ticket", p.job.ticket_id));
  if (obs_recorder_ != nullptr) {
    obs_recorder_->record(net_.now().count_us(), "robot-escalate", p.job.ticket_id,
                          static_cast<std::int64_t>(p.job.kind));
  }
  if (p.cb) p.cb(r);
}

void RobotFleet::submit(const Job& job, JobCallback cb) {
  Pending p{job, std::move(cb), net_.now()};
  if (!capable(job.kind)) {
    report_immediate(p, "robot-incapable");
    return;
  }
  if (!reachable(job.link, job.end)) {
    report_immediate(p, "robot-unreachable");
    return;
  }
  if (job.high_priority) {
    auto it = std::find_if(queue_.begin(), queue_.end(),
                           [](const Pending& q) { return !q.job.high_priority; });
    queue_.insert(it, std::move(p));
  } else {
    queue_.push_back(std::move(p));
  }
  try_dispatch();
}

void RobotFleet::lock_row(const topology::RackLocation& row, sim::Duration duration) {
  const std::int64_t key = (static_cast<std::int64_t>(row.hall) << 20) | row.row;
  const sim::TimePoint until = net_.now() + duration;
  auto& expiry = row_locks_[key];
  if (until > expiry) expiry = until;
  if (!cfg_.use_fom) {
    // Reference semantics: one re-check per lock_row call. Superseded checks
    // fire while the row is still locked and find nothing new to dispatch.
    net_.simulator().schedule_at(until, [this] { try_dispatch(); });
    return;
  }
  // One armed re-check per row, at the latest expiry. Extending the lockout
  // cancels the superseded event (its captured state is reclaimed eagerly)
  // instead of leaving a trail of no-op wakeups.
  RowRecheck& arm = row_rechecks_[key];
  if (arm.event != sim::kInvalidEvent && arm.at >= until) return;
  if (arm.event != sim::kInvalidEvent) net_.simulator().cancel(arm.event);
  arm.at = until;
  arm.event = net_.simulator().schedule_at(until, [this, key] {
    row_rechecks_[key].event = sim::kInvalidEvent;
    try_dispatch();
  });
}

bool RobotFleet::row_locked(const topology::RackLocation& loc) const {
  const std::int64_t key = (static_cast<std::int64_t>(loc.hall) << 20) | loc.row;
  const auto it = row_locks_.find(key);
  return it != row_locks_.end() && net_.now() < it->second;
}

void RobotFleet::try_dispatch() {
  // Scan the whole queue: a job for a busy row must not block a job for an
  // idle one (no head-of-line blocking across scopes).
  for (auto it = queue_.begin(); it != queue_.end();) {
    if (row_locked(site_of(it->job))) {
      ++it;  // a human is working in that row; hold the robot back (§3.4)
      continue;
    }
    const auto unit = pick_unit(site_of(it->job));
    if (unit.has_value()) {
      Pending p = std::move(*it);
      it = queue_.erase(it);
      units_[*unit].busy = true;
      run(*unit, std::move(p));
    } else {
      ++it;
    }
  }
}

void RobotFleet::run(std::size_t unit_index, Pending p) {
  Unit& unit = units_[unit_index];
  const topology::RackLocation site = site_of(p.job);
  const sim::Duration travel = travel_time(unit, site);
  unit.position = site;

  const net::Link& l = net_.link(p.job.link);
  const net::TransceiverModel& sku = p.job.end == 0 ? l.end_a.model : l.end_b.model;
  const int clutter = faceplate_neighbors(p.job.link, p.job.end);
  const int cores = l.cores_per_end();

  // Sample the action timeline up front (deterministic given the rng state).
  sim::Duration work = sim::Duration::zero();
  bool success = true;        // robot completed the action autonomously
  bool nospare = false;
  // §3.3.2: the unit "reassembles the transceiver and cable to minimize the
  // risk of recontamination" — robotic re-mating exposes end-faces far less
  // than human handling.
  maintenance::WorkQuality quality{.clean_effectiveness = 0.0,
                                   .clean_verify_pass = 1.0,
                                   .botch_probability = 0.003,
                                   .exposure_risk = 0.2};
  switch (p.job.kind) {
    case RepairActionKind::kReseat: {
      const auto a = manipulator_.reseat(rng_, sku, clutter);
      work = a.duration;
      success = a.success;
      break;
    }
    case RepairActionKind::kInspect: {
      const auto u1 = manipulator_.unplug(rng_, sku, clutter);
      const auto u2 = manipulator_.plug(rng_, sku, clutter);
      work = u1.duration + sim::Duration::seconds(2.0 * cfg_.transfer_s) +
             cleaner_.inspect_only(cores) + u2.duration;
      success = u1.success && u2.success;
      break;
    }
    case RepairActionKind::kClean: {
      const auto u1 = manipulator_.unplug(rng_, sku, clutter);
      // Graded verification: the cleaning unit images the actual residual
      // after each wet/dry cycle against the IEC-style spec.
      const double dirt =
          (p.job.end == 0 ? l.end_a.condition : l.end_b.condition).contamination;
      const auto cl = cleaner_.clean_sequence_graded(rng_, cores, dirt);
      const auto u2 = manipulator_.plug(rng_, sku, clutter);
      work = u1.duration + sim::Duration::seconds(2.0 * cfg_.transfer_s) + cl.duration +
             u2.duration;
      success = u1.success && u2.success && cl.verified;
      quality.clean_effectiveness = cl.total_effectiveness;
      break;
    }
    case RepairActionKind::kReplaceTransceiver: {
      if (spares_[sku.form_factor] <= 0) {
        nospare = true;
        break;
      }
      spares_[sku.form_factor] -= 1;
      arm_restock();  // inventory below cap: the next weekly top-up matters
      const auto u1 = manipulator_.unplug(rng_, sku, clutter);
      const auto u2 = manipulator_.plug(rng_, sku, clutter);
      work = u1.duration + u2.duration + sim::Duration::seconds(30.0);  // POST check
      success = u1.success && u2.success;
      break;
    }
    case RepairActionKind::kReplaceCable:
      work = sim::Duration::hours(1.5);  // future-work fiber-laying unit
      break;
    case RepairActionKind::kReplaceLineCard:
      work = sim::Duration::minutes(40.0);  // card cassette swap + POST
      break;
    case RepairActionKind::kReplaceDevice:
      work = sim::Duration::hours(2.0);
      break;
  }

  if (nospare) {
    ++stockouts_;
    unit.busy = false;
    report_immediate(p, "robot-nospare");
    try_dispatch();
    return;
  }

  const sim::TimePoint start = net_.now() + travel;
  const sim::TimePoint finish = start + work;

  if (!cfg_.use_fom) {
    run_legacy(unit_index, std::move(p), start, finish, travel, work, success, quality);
    return;
  }
  JobFom& f = acquire_fom();
  f.begin(unit_index, std::move(p), start, finish, travel, work, success, quality);
}

RobotFleet::JobFom& RobotFleet::acquire_fom() {
  if (!fom_free_.empty()) {
    JobFom* f = fom_free_.back();
    fom_free_.pop_back();
    return *f;
  }
  foms_.push_back(std::make_unique<JobFom>(*this));
  return *foms_.back();
}

void RobotFleet::JobFom::begin(std::size_t unit_index, Pending p, sim::TimePoint start,
                               sim::TimePoint finish, sim::Duration travel, sim::Duration work,
                               bool success, maintenance::WorkQuality quality) {
  unit_index_ = unit_index;
  p_ = std::move(p);
  start_ = start;
  finish_ = finish;
  travel_ = travel;
  work_ = work;
  success_ = success;
  quality_ = quality;
  induced_ = 0;
  set_phase(kStart);
  engine().wake_at(*this, start_);
}

sim::Fom::Tick RobotFleet::JobFom::tick() {
  switch (phase()) {
    case kStart: {
      // Arm the finish wakeup before any side effect so it keeps the
      // insertion order it had when both events were scheduled at dispatch.
      set_phase(kFinish);
      engine().wake_at(*this, finish_);
      if (p_.job.on_work_start) p_.job.on_work_start();
      const net::Link& link = fleet_.net_.link(p_.job.link);
      fault::Disturbance d;
      d.target = p_.job.link;
      d.at_device = p_.job.end == 0 ? link.end_a.device : link.end_b.device;
      d.magnitude = fleet_.cfg_.disturbance;
      d.full_route = p_.job.kind == RepairActionKind::kReplaceCable;
      induced_ = fleet_.cascade_.apply(d).size();
      return Tick::kWait;
    }
    case kFinish:
      fleet_.finish_job(*this);
      return Tick::kDone;
    default: break;
  }
  return Tick::kDone;
}

void RobotFleet::JobFom::on_done() {
  p_ = Pending{};  // release the captured callback/job state eagerly
  fleet_.fom_free_.push_back(this);
}

void RobotFleet::finish_job(JobFom& f) {
  JobReport report;
  report.job = f.p_.job;
  report.enqueued = f.p_.enqueued;
  report.started = f.start_;
  report.finished = f.finish_;
  report.induced_faults = f.induced_;
  if (f.success_) {
    const maintenance::ActionResult r = apply_action(net_, contamination_, rng_, f.p_.job.link,
                                                     f.p_.job.end, f.p_.job.kind, f.quality_);
    report.performed = r.performed;
    report.botched = r.botched;
    report.measured_contamination = r.measured_contamination;
    report.performer = "robot";
  } else {
    // Grasp or verification failure: partial cleaning still counts, then
    // the unit "requests human support" (§3.3.2).
    if (f.p_.job.kind == RepairActionKind::kClean && f.quality_.clean_effectiveness > 0.0) {
      (void)apply_action(net_, contamination_, rng_, f.p_.job.link, f.p_.job.end,
                         RepairActionKind::kClean, f.quality_);
    }
    report.performed = false;
    report.performer = "robot-escalate";
    ++escalations_;
    if (obs_escalations_ != nullptr) obs_escalations_->inc();
  }
  busy_hours_ += (f.travel_ + f.work_).to_hours();
  ++completed_;
  if (report.performed) ++by_kind_[static_cast<int>(f.p_.job.kind)];
  if (obs_jobs_ != nullptr) {
    obs_jobs_->inc();
    obs_job_hours_->observe((f.travel_ + f.work_).to_hours());
  }
  SMN_TRACE_STMT(if (obs_trace_ != nullptr) obs_trace_->complete(
      to_string(f.p_.job.kind), "robot", f.start_, f.finish_, "ticket", f.p_.job.ticket_id,
      "performed", report.performed ? 1 : 0));
  if (obs_recorder_ != nullptr) {
    obs_recorder_->record(f.finish_.count_us(), "robot-job", f.p_.job.ticket_id,
                          static_cast<std::int64_t>(f.p_.job.kind));
  }
  release_unit(f.unit_index_);
  if (f.p_.cb) f.p_.cb(report);
  try_dispatch();
}

void RobotFleet::run_legacy(std::size_t unit_index, Pending p, sim::TimePoint start,
                            sim::TimePoint finish, sim::Duration travel, sim::Duration work,
                            bool success, maintenance::WorkQuality quality) {
  // Reference semantics for the differential oracle: both job events are
  // scheduled at dispatch time, capturing the whole job state by value.
  auto induced = std::make_shared<std::size_t>(0);
  net_.simulator().schedule_at(start, [this, job = p.job, induced] {
    if (job.on_work_start) job.on_work_start();
    const net::Link& link = net_.link(job.link);
    fault::Disturbance d;
    d.target = job.link;
    d.at_device = job.end == 0 ? link.end_a.device : link.end_b.device;
    d.magnitude = cfg_.disturbance;
    d.full_route = job.kind == RepairActionKind::kReplaceCable;
    *induced = cascade_.apply(d).size();
  });

  net_.simulator().schedule_at(finish, [this, unit_index, p = std::move(p), start, finish,
                                        travel, work, success, quality, induced]() mutable {
    JobReport report;
    report.job = p.job;
    report.enqueued = p.enqueued;
    report.started = start;
    report.finished = finish;
    report.induced_faults = *induced;
    if (success) {
      const maintenance::ActionResult r = apply_action(
          net_, contamination_, rng_, p.job.link, p.job.end, p.job.kind, quality);
      report.performed = r.performed;
      report.botched = r.botched;
      report.measured_contamination = r.measured_contamination;
      report.performer = "robot";
    } else {
      // Grasp or verification failure: partial cleaning still counts, then
      // the unit "requests human support" (§3.3.2).
      if (p.job.kind == RepairActionKind::kClean && quality.clean_effectiveness > 0.0) {
        (void)apply_action(net_, contamination_, rng_, p.job.link, p.job.end,
                           RepairActionKind::kClean, quality);
      }
      report.performed = false;
      report.performer = "robot-escalate";
      ++escalations_;
      if (obs_escalations_ != nullptr) obs_escalations_->inc();
    }
    busy_hours_ += (travel + work).to_hours();
    ++completed_;
    if (report.performed) ++by_kind_[static_cast<int>(p.job.kind)];
    if (obs_jobs_ != nullptr) {
      obs_jobs_->inc();
      obs_job_hours_->observe((travel + work).to_hours());
    }
    SMN_TRACE_STMT(if (obs_trace_ != nullptr) obs_trace_->complete(
        to_string(p.job.kind), "robot", start, finish, "ticket", p.job.ticket_id, "performed",
        report.performed ? 1 : 0));
    if (obs_recorder_ != nullptr) {
      obs_recorder_->record(finish.count_us(), "robot-job", p.job.ticket_id,
                            static_cast<std::int64_t>(p.job.kind));
    }
    release_unit(unit_index);
    if (p.cb) p.cb(report);
    try_dispatch();
  });
}

void RobotFleet::release_unit(std::size_t unit_index) {
  Unit& unit = units_[unit_index];
  unit.busy = false;
  // Robots are hardware too: occasionally one breaks after a job and goes
  // offline for its own repair window.
  if (rng_.bernoulli(cfg_.failure_per_job)) {
    unit.operational = false;
    ++breakdowns_;
    if (obs_breakdowns_ != nullptr) obs_breakdowns_->inc();
    net_.simulator().schedule_after(cfg_.robot_repair_time, [this, unit_index] {
      units_[unit_index].operational = true;
      try_dispatch();
    });
  }
}

int RobotFleet::units_online() const {
  return static_cast<int>(std::count_if(units_.begin(), units_.end(), [](const Unit& u) {
    return u.operational;
  }));
}

int RobotFleet::spares_available(net::FormFactor ff) const {
  const auto it = spares_.find(ff);
  return it == spares_.end() ? 0 : it->second;
}

void RobotFleet::arm_restock() {
  // Strictly-next grid point on the old weekly timer's schedule (anchor =
  // construction time). Wakeup coalescing makes repeated consumptions within
  // one interval free, and restock() tops every form factor back to cap, so
  // no re-arm is needed on fire — the next consumption arms the next one.
  const std::int64_t us = cfg_.restock_interval.count_us();
  const std::int64_t k = (net_.now() - restock_anchor_).count_us() / us + 1;
  fom_engine_.wake_at(restock_fom_,
                      restock_anchor_ + sim::Duration::microseconds(k * us));
}

sim::Fom::Tick RobotFleet::RestockFom::tick() {
  fleet_.restock();
  return Tick::kWait;
}

void RobotFleet::restock() {
  for (auto& [ff, count] : spares_) {
    count = std::max(count, cfg_.spares_per_form_factor);
  }
}

void RobotFleet::check_invariants() const {
  for (std::size_t i = 0; i < units_.size(); ++i) {
    const Unit& u = units_[i];
    // Dispatch only picks operational units and breakdowns are decided after
    // the job releases the unit, so a busy broken unit means lost bookkeeping.
    SMN_ASSERT(!u.busy || u.operational, "unit %zu (%s) busy while broken", i,
               u.spec.name.c_str());
    SMN_ASSERT(u.spec.travel_speed_mps > 0.0, "unit %zu (%s) cannot move", i,
               u.spec.name.c_str());
  }
  for (const auto& [ff, count] : spares_) {
    SMN_ASSERT(count >= 0, "negative spares (%d) for form factor %d", count,
               static_cast<int>(ff));
  }
  const sim::TimePoint now = net_.now();
  for (const Pending& p : queue_) {
    SMN_ASSERT(static_cast<bool>(p.cb), "queued job for ticket %d has no callback",
               p.job.ticket_id);
    SMN_ASSERT(p.job.link.valid(), "queued job for ticket %d has no link", p.job.ticket_id);
    SMN_ASSERT(p.enqueued <= now, "job for ticket %d enqueued in the future", p.job.ticket_id);
  }
  std::size_t by_kind_total = 0;
  for (const std::size_t n : by_kind_) by_kind_total += n;
  SMN_ASSERT(by_kind_total <= completed_, "per-kind tally %zu exceeds completions %zu",
             by_kind_total, completed_);
  SMN_ASSERT(busy_hours_ >= 0.0 && std::isfinite(busy_hours_), "busy hours corrupt: %f",
             busy_hours_);
}

RobotFleet::Config RobotFleet::row_coverage(const topology::Blueprint& bp, int hall_rovers) {
  Config cfg;
  // One gantry per row that contains any cabled device — server NICs need
  // service too (a GPU server's rail transceivers live in its own rack).
  std::set<std::pair<int, int>> cabled_rows;  // (hall, row)
  for (const topology::NodeSpec& n : bp.nodes()) {
    if (n.ports_used > 0) cabled_rows.insert({n.location.hall, n.location.row});
  }
  for (const auto& [hall, row] : cabled_rows) {
    RobotUnitSpec spec;
    spec.name = "gantry-h" + std::to_string(hall) + "r" + std::to_string(row);
    spec.scope = MobilityScope::kRow;
    spec.home = topology::RackLocation{hall, row, 0, 0};
    cfg.units.push_back(std::move(spec));
  }
  for (int i = 0; i < hall_rovers; ++i) {
    RobotUnitSpec spec;
    spec.name = "rover-" + std::to_string(i);
    spec.scope = MobilityScope::kHall;
    spec.home = topology::RackLocation{0, 0, 0, 0};
    cfg.units.push_back(std::move(spec));
  }
  return cfg;
}

}  // namespace smn::robotics
