#include "robotics/grading.h"

#include <algorithm>

namespace smn::robotics {

const char* to_string(CleanlinessGrade g) {
  switch (g) {
    case CleanlinessGrade::kA: return "A";
    case CleanlinessGrade::kB: return "B";
    case CleanlinessGrade::kC: return "C";
    case CleanlinessGrade::kD: return "D";
  }
  return "?";
}

bool EndFaceScan::passes(bool single_mode) const {
  return EndFaceImager::grade_passes(worst_grade, single_mode);
}

CleanlinessGrade EndFaceImager::grade_core(const CoreScan& core) {
  // Simplified IEC-61300-3-35: the core zone is sacred, cladding tolerates
  // small counts, scratches through the core are an automatic reject.
  if (core.worst_scratch_um > 3.0 && core.core_zone_defects > 0) {
    return CleanlinessGrade::kD;
  }
  if (core.core_zone_defects == 0 && core.cladding_defects <= 2) {
    return CleanlinessGrade::kA;
  }
  if (core.core_zone_defects <= 1 && core.cladding_defects <= 5) {
    return CleanlinessGrade::kB;
  }
  if (core.core_zone_defects <= 3 && core.cladding_defects <= 12) {
    return CleanlinessGrade::kC;
  }
  return CleanlinessGrade::kD;
}

bool EndFaceImager::grade_passes(CleanlinessGrade g, bool single_mode) {
  return single_mode ? g <= CleanlinessGrade::kB : g <= CleanlinessGrade::kC;
}

EndFaceScan EndFaceImager::scan(sim::RngStream& rng, double contamination,
                                int core_count) const {
  EndFaceScan result;
  const double c = std::clamp(contamination, 0.0, 1.0);
  result.cores.reserve(static_cast<size_t>(std::max(1, core_count)));
  int total_core_defects = 0;
  for (int i = 0; i < std::max(1, core_count); ++i) {
    CoreScan core;
    core.core_zone_defects = rng.poisson(cfg_.core_defect_rate * c);
    core.cladding_defects = rng.poisson(cfg_.cladding_defect_rate * c);
    core.adhesive_defects = rng.poisson(cfg_.adhesive_defect_rate * c);
    core.contact_defects = rng.poisson(cfg_.contact_defect_rate * c);
    if (rng.bernoulli(cfg_.scratch_probability * c)) {
      core.worst_scratch_um = rng.lognormal(std::log(2.0), 0.7);
    }
    core.grade = grade_core(core);
    result.worst_grade = std::max(result.worst_grade, core.grade);
    total_core_defects += core.core_zone_defects + core.cladding_defects;
    result.cores.push_back(core);
  }
  // Back-estimate: invert the expected defect count per core.
  const double expected_at_one =
      (cfg_.core_defect_rate + cfg_.cladding_defect_rate) *
      static_cast<double>(result.cores.size());
  result.contamination_estimate =
      std::clamp(static_cast<double>(total_core_defects) / std::max(1.0, expected_at_one),
                 0.0, 1.0);
  return result;
}

}  // namespace smn::robotics
