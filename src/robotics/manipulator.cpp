#include "robotics/manipulator.h"

#include <algorithm>

namespace smn::robotics {

double ManipulatorModel::grasp_success_probability(const net::TransceiverModel& sku,
                                                   int faceplate_neighbors) const {
  double p = profile_.base_grasp_success;
  if (sku.tab == net::TabStyle::kRecessed || sku.tab == net::TabStyle::kRigidTab) {
    p -= profile_.hard_tab_penalty;
  }
  p -= profile_.clutter_penalty_per_neighbor * faceplate_neighbors;
  return std::clamp(p, 0.05, 1.0);
}

ManipulatorModel::Attempt ManipulatorModel::grasp_loop(sim::RngStream& rng,
                                                       const net::TransceiverModel& sku,
                                                       int faceplate_neighbors,
                                                       double post_grasp_s) const {
  Attempt a;
  double seconds = profile_.vision_scan_s + profile_.approach_s;
  const double p = grasp_success_probability(sku, faceplate_neighbors);
  for (int attempt = 1; attempt <= profile_.max_grasp_retries; ++attempt) {
    a.grasp_attempts = attempt;
    seconds += profile_.grasp_s;
    if (rng.bernoulli(p)) {
      a.success = true;
      break;
    }
    // Re-scan before retrying; the gripper may have shifted cables.
    seconds += profile_.vision_scan_s * 0.5;
  }
  if (a.success) seconds += post_grasp_s;
  a.duration = sim::Duration::seconds(seconds);
  return a;
}

ManipulatorModel::Attempt ManipulatorModel::reseat(sim::RngStream& rng,
                                                   const net::TransceiverModel& sku,
                                                   int faceplate_neighbors) const {
  return grasp_loop(rng, sku, faceplate_neighbors,
                    profile_.extract_s + profile_.reseat_pause_s + profile_.insert_s +
                        profile_.verify_s);
}

ManipulatorModel::Attempt ManipulatorModel::unplug(sim::RngStream& rng,
                                                   const net::TransceiverModel& sku,
                                                   int faceplate_neighbors) const {
  return grasp_loop(rng, sku, faceplate_neighbors, profile_.extract_s);
}

ManipulatorModel::Attempt ManipulatorModel::plug(sim::RngStream& rng,
                                                 const net::TransceiverModel& sku,
                                                 int faceplate_neighbors) const {
  return grasp_loop(rng, sku, faceplate_neighbors,
                    profile_.insert_s + profile_.verify_s);
}

}  // namespace smn::robotics
