// The fiber end-face and transceiver cleaning robot (paper Figure 2, §3.3.2).
//
// "The cleaning unit robot automatically detaches the cable from the
// transceiver, visually inspects the fiber end-face cores and the transceiver
// and then cleans any parts needed to pass inspection, before reassembling."
//
// Modeled as the explicit state machine the paper describes: Detach ->
// Inspect(cores) -> [Clean wet/dry -> Rotate -> Re-inspect]* -> Reassemble,
// with the paper's calibration point baked in: "the end-face inspection for
// 8 cores takes less than 30 seconds" => 3.5 s/core. Verification failures
// re-clean up to a cycle limit, then "it requests human support".
#pragma once

#include <vector>

#include "robotics/grading.h"
#include "sim/rng.h"
#include "sim/time.h"

namespace smn::robotics {

enum class CleaningStep : std::uint8_t {
  kDetach,
  kInspect,
  kWetClean,
  kDryClean,
  kRotate,
  kReinspect,
  kReassemble,
  kEscalate,
};
[[nodiscard]] const char* to_string(CleaningStep s);

struct CleaningProfile {
  double detach_s = 20.0;
  /// Per-core free-space imaging; 8 cores in < 30 s (§3.3.2).
  double per_core_inspect_s = 3.5;
  double rotate_s = 10.0;
  double wet_clean_s = 45.0;
  double dry_clean_s = 30.0;
  double reassemble_s = 25.0;
  /// Contamination fraction removed per wet+dry cycle.
  double cycle_effectiveness = 0.92;
  /// Probability a cycle's result passes the per-core inspection spec when
  /// no initial-contamination ground truth is supplied (legacy single-knob
  /// mode; the graded overload images the actual residual instead).
  double verify_pass = 0.85;
  /// After this many failed cycles the unit requests human support.
  int max_cycles = 3;
  /// Imaging model used by the graded verification overload.
  EndFaceImager::Config imager;
};

class CleaningModel {
 public:
  explicit CleaningModel(CleaningProfile profile = {}) : profile_{profile} {}

  struct Run {
    sim::Duration duration;         // total machine time
    int cycles = 0;                 // clean cycles performed
    bool verified = false;          // false => escalate to human (§3.3.2)
    double total_effectiveness = 0; // cumulative contamination removal
    std::vector<CleaningStep> trace;  // the step sequence, for demos/logs
  };

  /// Simulates a full clean-and-verify session on a connector with `cores`
  /// fiber cores (1 for LC, N for MPO). Verification uses the configured
  /// pass probability (legacy mode).
  [[nodiscard]] Run clean_sequence(sim::RngStream& rng, int cores) const;

  /// Graded variant: verification images the *actual residual* after each
  /// cycle with the IEC-style grading rules (§3.2 "cleaned according to
  /// industry specifications"). `initial_contamination` is the ground truth
  /// before the first cycle; the final scan is returned in `last_scan`.
  struct GradedRun : Run {
    EndFaceScan last_scan;
  };
  [[nodiscard]] GradedRun clean_sequence_graded(sim::RngStream& rng, int cores,
                                                double initial_contamination,
                                                bool single_mode = true) const;

  /// Inspection-only visit duration (proactive surveys, predictor data).
  [[nodiscard]] sim::Duration inspect_only(int cores) const;

  [[nodiscard]] const CleaningProfile& profile() const { return profile_; }

 private:
  CleaningProfile profile_;
};

}  // namespace smn::robotics
