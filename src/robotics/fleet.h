// The modular robot fleet and its dispatcher (§3.4).
//
// "rather than a small number of large robots (e.g., humanoids), there will
// be many small robotic units that will need to collaborate ... deployed at
// the granularity of a hall or row of racks."
//
// A RobotFleet is a roster of units, each with a mobility scope (rack-fixed,
// row gantry, or hall rover), executing repair Jobs through the manipulator
// and cleaning-unit models. It mirrors TechnicianPool's submit/callback
// interface so the controller can swap performers per automation level.
// Robots escalate to humans when grasps fail, cleaning cannot be verified,
// spares run out, or the job kind is out of scope (fiber re-laying, §3.3).
#pragma once

#include <deque>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "fault/cascade.h"
#include "fault/contamination.h"
#include "maintenance/actions.h"
#include "net/network.h"
#include "obs/obs.h"
#include "robotics/cleaner.h"
#include "robotics/manipulator.h"
#include "sim/fom.h"
#include "sim/rng.h"

namespace smn::robotics {

/// Deployment scope of a unit (§3.4 "several potential deployment scopes").
enum class MobilityScope : std::uint8_t { kRack, kRow, kHall };
[[nodiscard]] const char* to_string(MobilityScope s);

struct RobotUnitSpec {
  std::string name;
  MobilityScope scope = MobilityScope::kRow;
  topology::RackLocation home;
  /// Gantry / rover translation speed. Deliberately slower than a walking
  /// human; robots win on dispatch latency, not ground speed.
  double travel_speed_mps = 0.5;
};

/// Extended job outcome carried in JobReport::performer strings:
///   "robot"             — completed autonomously
///   "robot-escalate"    — §3.3.2 "requests human support" (verify/grasp fail)
///   "robot-nospare"     — spares inventory empty for the needed form factor
///   "robot-unreachable" — no unit's scope covers the work site
///   "robot-incapable"   — action kind outside robot capability
class RobotFleet {
 public:
  struct Config {
    std::vector<RobotUnitSpec> units;
    ManipulatorProfile manipulator;
    CleaningProfile cleaner;
    /// Spare transceivers stocked per form factor ("the robots can carry
    /// spares", §3.3.2).
    int spares_per_form_factor = 8;
    sim::Duration restock_interval = sim::Duration::days(7);
    /// Disturbance magnitude of the minimal-contact gripper (vs 1.0 human).
    double disturbance = 0.25;
    /// Robot breakdown probability per completed job; broken units go
    /// offline for `robot_repair_time` (robots need maintenance too).
    double failure_per_job = 0.01;
    sim::Duration robot_repair_time = sim::Duration::hours(8);
    /// §3.3: "Currently, we are not focusing on the replacement of fibers."
    /// Flipping this models the paper's future-work robots that can re-lay
    /// cables (ablated in the E7-extension bench).
    bool can_replace_cable = false;
    bool can_replace_device = false;
    /// Fixed seconds to hand a module between manipulator and cleaning unit.
    double transfer_s = 20.0;
    /// Run jobs as pooled state machines with one coalesced row-unlock
    /// recheck per row (allocation-free wakeups). The legacy callback
    /// scheduling is retained as the oracle reference.
    bool use_fom = true;
  };

  RobotFleet(net::Network& net, fault::CascadeModel& cascade,
             fault::ContaminationProcess* contamination, sim::RngStream rng, Config cfg);

  /// Whether the fleet can ever perform this action kind.
  [[nodiscard]] bool capable(maintenance::RepairActionKind kind) const;
  /// Whether some unit's scope covers this link end's rack.
  [[nodiscard]] bool reachable(net::LinkId link, int end) const;

  void submit(const maintenance::Job& job, maintenance::JobCallback cb);

  /// Safety interlock (§3.4: "safety is a major concern when humans and
  /// robots need to co-exist"). While a human is working in a row, robots
  /// neither start nor travel through work there; jobs for that row queue
  /// until the lockout lifts.
  void lock_row(const topology::RackLocation& row, sim::Duration duration);
  [[nodiscard]] bool row_locked(const topology::RackLocation& loc) const;

  [[nodiscard]] std::size_t queued() const { return queue_.size(); }
  [[nodiscard]] std::size_t completed() const { return completed_; }
  [[nodiscard]] std::size_t completed_of(maintenance::RepairActionKind kind) const {
    return by_kind_[static_cast<int>(kind)];
  }
  [[nodiscard]] std::size_t escalations() const { return escalations_; }
  [[nodiscard]] std::size_t stockouts() const { return stockouts_; }
  [[nodiscard]] std::size_t breakdowns() const { return breakdowns_; }
  [[nodiscard]] double busy_hours() const { return busy_hours_; }
  [[nodiscard]] int units_online() const;
  [[nodiscard]] int spares_available(net::FormFactor ff) const;

  /// Builds a roster with one row-gantry per row that contains switches,
  /// plus `hall_rovers` hall-scope rovers — the deployment §3.4 sketches.
  [[nodiscard]] static Config row_coverage(const topology::Blueprint& bp, int hall_rovers = 1);

  /// Wires observability: robot job/escalation counters, job-hours histogram,
  /// and per-job trace spans. Never reads or perturbs the fleet RNG.
  void set_obs(obs::Obs* o);

  /// Aborts (via SMN_ASSERT) on dispatcher-state violations: busy units must
  /// be operational, spares counts non-negative, queued jobs well-formed and
  /// not enqueued in the future, and per-kind completion tallies must not
  /// exceed the overall completion count.
  void check_invariants() const;

 private:
  struct Unit {
    RobotUnitSpec spec;
    topology::RackLocation position;
    bool busy = false;
    bool operational = true;
  };
  struct Pending {
    maintenance::Job job;
    maintenance::JobCallback cb;
    sim::TimePoint enqueued;
  };

  /// One in-flight robot job: dispatched -> working (wakeup at start,
  /// disturbance) -> finished (wakeup at finish, apply/escalate and report).
  /// The sampled action timeline lives in the recycled fom object, so each
  /// wakeup is a 16-byte inline-capture queue entry.
  class JobFom final : public sim::Fom {
   public:
    enum Phase : int { kStart = 0, kFinish = 1 };
    explicit JobFom(RobotFleet& fleet) : sim::Fom(fleet.fom_engine_), fleet_(fleet) {}
    void begin(std::size_t unit_index, Pending p, sim::TimePoint start, sim::TimePoint finish,
               sim::Duration travel, sim::Duration work, bool success,
               maintenance::WorkQuality quality);

   private:
    Tick tick() override;
    void on_done() override;

    RobotFleet& fleet_;
    std::size_t unit_index_ = 0;
    Pending p_;
    sim::TimePoint start_;
    sim::TimePoint finish_;
    sim::Duration travel_{};
    sim::Duration work_{};
    bool success_ = true;
    maintenance::WorkQuality quality_{};
    std::size_t induced_ = 0;
    friend class RobotFleet;
  };

  /// Weekly spares restock as a fom: armed at the next `restock_interval`
  /// grid point only when a spare is actually consumed — a fleet that never
  /// replaces a transceiver schedules no restock events at all. Behavior
  /// matches the old free-running weekly timer: restock() is an idempotent
  /// top-up, so the skipped grid ticks were pure no-ops.
  class RestockFom final : public sim::Fom {
   public:
    explicit RestockFom(RobotFleet& fleet) : sim::Fom(fleet.fom_engine_), fleet_(fleet) {}

   private:
    Tick tick() override;
    RobotFleet& fleet_;
  };

  struct RowRecheck {
    sim::EventId event = sim::kInvalidEvent;
    sim::TimePoint at;
  };

  [[nodiscard]] bool unit_covers(const Unit& u, const topology::RackLocation& loc) const;
  [[nodiscard]] sim::Duration travel_time(const Unit& u,
                                          const topology::RackLocation& to) const;
  [[nodiscard]] std::optional<std::size_t> pick_unit(const topology::RackLocation& site) const;
  [[nodiscard]] topology::RackLocation site_of(const maintenance::Job& job) const;
  [[nodiscard]] int faceplate_neighbors(net::LinkId link, int end) const;

  void try_dispatch();
  void run(std::size_t unit_index, Pending p);
  void run_legacy(std::size_t unit_index, Pending p, sim::TimePoint start,
                  sim::TimePoint finish, sim::Duration travel, sim::Duration work,
                  bool success, maintenance::WorkQuality quality);
  void finish_job(JobFom& f);
  [[nodiscard]] JobFom& acquire_fom();
  void release_unit(std::size_t unit_index);
  void report_immediate(const Pending& p, const char* performer);
  void restock();
  /// Arms the next grid-aligned restock (called when a spare is consumed).
  void arm_restock();

  net::Network& net_;
  fault::CascadeModel& cascade_;
  fault::ContaminationProcess* contamination_;
  sim::RngStream rng_;
  Config cfg_;
  ManipulatorModel manipulator_;
  CleaningModel cleaner_;
  sim::FomEngine fom_engine_;
  std::vector<std::unique_ptr<JobFom>> foms_;  // all job foms ever created
  std::vector<JobFom*> fom_free_;              // recycled, ready for reuse
  RestockFom restock_fom_;
  sim::TimePoint restock_anchor_;  // restock grid origin (construction time)
  std::vector<Unit> units_;
  std::deque<Pending> queue_;
  /// (hall<<20 | row) -> lockout expiry.
  std::unordered_map<std::int64_t, sim::TimePoint> row_locks_;
  /// (hall<<20 | row) -> the single armed unlock-recheck (fom mode): re-arming
  /// an extended lockout cancels the superseded event instead of piling up
  /// one no-op recheck per lock_row call.
  std::unordered_map<std::int64_t, RowRecheck> row_rechecks_;
  std::unordered_map<net::FormFactor, int> spares_;
  std::size_t completed_ = 0;
  std::size_t by_kind_[maintenance::kRepairActionKinds] = {};
  std::size_t escalations_ = 0;
  std::size_t stockouts_ = 0;
  std::size_t breakdowns_ = 0;
  double busy_hours_ = 0.0;

  // Observability handles (null until set_obs).
  obs::Counter* obs_jobs_ = nullptr;
  obs::Counter* obs_escalations_ = nullptr;
  obs::Counter* obs_breakdowns_ = nullptr;
  obs::Histogram* obs_job_hours_ = nullptr;
  obs::TraceBuffer* obs_trace_ = nullptr;
  obs::FlightRecorder* obs_recorder_ = nullptr;
};

}  // namespace smn::robotics
