#include "robotics/cleaner.h"

namespace smn::robotics {

const char* to_string(CleaningStep s) {
  switch (s) {
    case CleaningStep::kDetach: return "detach";
    case CleaningStep::kInspect: return "inspect";
    case CleaningStep::kWetClean: return "wet-clean";
    case CleaningStep::kDryClean: return "dry-clean";
    case CleaningStep::kRotate: return "rotate";
    case CleaningStep::kReinspect: return "re-inspect";
    case CleaningStep::kReassemble: return "reassemble";
    case CleaningStep::kEscalate: return "escalate";
  }
  return "?";
}

CleaningModel::Run CleaningModel::clean_sequence(sim::RngStream& rng, int cores) const {
  Run run;
  double seconds = 0.0;
  const double inspect_s = profile_.per_core_inspect_s * cores;

  auto step = [&](CleaningStep s, double secs) {
    run.trace.push_back(s);
    seconds += secs;
  };

  step(CleaningStep::kDetach, profile_.detach_s);
  step(CleaningStep::kInspect, inspect_s);

  double remaining = 1.0;  // fraction of initial contamination still present
  for (int cycle = 1; cycle <= profile_.max_cycles; ++cycle) {
    run.cycles = cycle;
    step(CleaningStep::kWetClean, profile_.wet_clean_s);
    step(CleaningStep::kDryClean, profile_.dry_clean_s);
    step(CleaningStep::kRotate, profile_.rotate_s);
    step(CleaningStep::kReinspect, inspect_s);
    remaining *= (1.0 - profile_.cycle_effectiveness);
    if (rng.bernoulli(profile_.verify_pass)) {
      run.verified = true;
      break;
    }
  }

  if (run.verified) {
    step(CleaningStep::kReassemble, profile_.reassemble_s);
  } else {
    step(CleaningStep::kEscalate, 0.0);
  }

  run.total_effectiveness = 1.0 - remaining;
  run.duration = sim::Duration::seconds(seconds);
  return run;
}

CleaningModel::GradedRun CleaningModel::clean_sequence_graded(
    sim::RngStream& rng, int cores, double initial_contamination,
    bool single_mode) const {
  GradedRun run;
  const EndFaceImager imager{profile_.imager};
  double seconds = 0.0;
  const double inspect_s = profile_.per_core_inspect_s * cores;

  auto step = [&](CleaningStep s, double secs) {
    run.trace.push_back(s);
    seconds += secs;
  };

  step(CleaningStep::kDetach, profile_.detach_s);
  step(CleaningStep::kInspect, inspect_s);

  double residual = initial_contamination;
  for (int cycle = 1; cycle <= profile_.max_cycles; ++cycle) {
    run.cycles = cycle;
    step(CleaningStep::kWetClean, profile_.wet_clean_s);
    step(CleaningStep::kDryClean, profile_.dry_clean_s);
    step(CleaningStep::kRotate, profile_.rotate_s);
    step(CleaningStep::kReinspect, inspect_s);
    residual *= (1.0 - profile_.cycle_effectiveness);
    run.last_scan = imager.scan(rng, residual, cores);
    if (run.last_scan.passes(single_mode)) {
      run.verified = true;
      break;
    }
  }

  if (run.verified) {
    step(CleaningStep::kReassemble, profile_.reassemble_s);
  } else {
    step(CleaningStep::kEscalate, 0.0);
  }
  run.total_effectiveness =
      initial_contamination <= 0.0 ? 1.0 : 1.0 - residual / initial_contamination;
  run.duration = sim::Duration::seconds(seconds);
  return run;
}

sim::Duration CleaningModel::inspect_only(int cores) const {
  return sim::Duration::seconds(profile_.detach_s + profile_.per_core_inspect_s * cores +
                                profile_.reassemble_s);
}

}  // namespace smn::robotics
