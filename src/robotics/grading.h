// End-face imaging and cleanliness grading.
//
// §3.2: "The technician needs to inspect the transceiver and the end-face of
// the optical cable to ensure that they are cleaned according to industry
// specifications." §3.3.3: the robot's "imaging inspection is free
// space-based ... it allows us to do detailed 3D scans of the end-face".
//
// This module models the industry inspection standard (IEC-61300-3-35
// style): per-core defect counts by zone (core / cladding / adhesive /
// contact), a letter grade per core, and pass/fail for single- vs
// multi-mode. The imager maps hidden contamination to observed defects with
// sensor noise — what a cleaning robot's verification step actually sees.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/rng.h"

namespace smn::robotics {

/// IEC-style cleanliness grade; A pristine, D reject.
enum class CleanlinessGrade : std::uint8_t { kA, kB, kC, kD };
[[nodiscard]] const char* to_string(CleanlinessGrade g);

struct CoreScan {
  int core_zone_defects = 0;      // defects in the critical core zone
  int cladding_defects = 0;
  int adhesive_defects = 0;       // epoxy ring region (mostly cosmetic)
  int contact_defects = 0;        // outer contact zone
  double worst_scratch_um = 0.0;  // longest scratch seen, micrometers
  CleanlinessGrade grade = CleanlinessGrade::kA;
};

struct EndFaceScan {
  std::vector<CoreScan> cores;
  CleanlinessGrade worst_grade = CleanlinessGrade::kA;
  /// Back-estimate of contamination in [0,1] from observed defects (what
  /// feeds the failure predictor's inspection feature).
  double contamination_estimate = 0.0;
  [[nodiscard]] bool passes(bool single_mode) const;
};

class EndFaceImager {
 public:
  struct Config {
    /// Expected core-zone defects at contamination 1.0.
    double core_defect_rate = 4.0;
    double cladding_defect_rate = 10.0;
    double adhesive_defect_rate = 6.0;
    double contact_defect_rate = 12.0;
    /// Probability a scratch is present at contamination 1.0.
    double scratch_probability = 0.35;
  };

  EndFaceImager() : EndFaceImager(Config{}) {}
  explicit EndFaceImager(Config cfg) : cfg_{cfg} {}

  /// Images an end-face with hidden contamination level `contamination` and
  /// `core_count` fiber cores (1 LC, N MPO).
  [[nodiscard]] EndFaceScan scan(sim::RngStream& rng, double contamination,
                                 int core_count) const;

  /// The IEC-style grading rule for one core's defect counts.
  [[nodiscard]] static CleanlinessGrade grade_core(const CoreScan& core);

  /// Pass thresholds: single-mode links require grade B or better in the
  /// core zone; multimode tolerates C.
  [[nodiscard]] static bool grade_passes(CleanlinessGrade g, bool single_mode);

 private:
  Config cfg_;
};

}  // namespace smn::robotics
