// The transceiver-manipulation robot (paper Figure 1, §3.3.1).
//
// "designed to grip and manipulate a single transceiver while minimizing
// accidental interaction with physically close cables ... uses a vision
// system to understand the complex environment and ... navigate through
// cluttered cabling to the target port to reseat, plug or unplug the
// transceiver."
//
// The model is a timed action sequence (vision scan -> approach -> grasp ->
// extract -> pause -> insert -> verify) whose grasp-success probability
// degrades with transceiver-SKU unfamiliarity and faceplate clutter — the
// §3.3.3 learnings. Failed grasps retry; exhausted retries escalate.
#pragma once

#include "net/link.h"
#include "sim/rng.h"
#include "sim/time.h"

namespace smn::robotics {

struct ManipulatorProfile {
  // Per-step durations, seconds.
  double vision_scan_s = 12.0;
  double approach_s = 15.0;
  double grasp_s = 8.0;
  double extract_s = 6.0;
  double reseat_pause_s = 5.0;  // §3.2: "waiting a few seconds"
  double insert_s = 12.0;
  double verify_s = 8.0;

  /// Grasp success for a well-known SKU on an uncluttered faceplate.
  double base_grasp_success = 0.97;
  /// Penalty for SKUs with hard tab styles (recessed/rigid, §3.3.3).
  double hard_tab_penalty = 0.10;
  /// Penalty per neighbouring cable within the gripper's approach cone.
  double clutter_penalty_per_neighbor = 0.015;
  int max_grasp_retries = 3;
};

class ManipulatorModel {
 public:
  explicit ManipulatorModel(ManipulatorProfile profile = {}) : profile_{profile} {}

  struct Attempt {
    sim::Duration duration;  // total wall time including retries
    bool success = false;    // false => escalate to a human (§3.3.2)
    int grasp_attempts = 0;
  };

  /// Probability one grasp attempt succeeds given the SKU and clutter.
  [[nodiscard]] double grasp_success_probability(const net::TransceiverModel& sku,
                                                 int faceplate_neighbors) const;

  /// Full unplug-pause-replug at the port: the reseat primitive.
  [[nodiscard]] Attempt reseat(sim::RngStream& rng, const net::TransceiverModel& sku,
                               int faceplate_neighbors) const;

  /// Extraction only (e.g. to hand the module to the cleaning unit).
  [[nodiscard]] Attempt unplug(sim::RngStream& rng, const net::TransceiverModel& sku,
                               int faceplate_neighbors) const;

  /// Insertion only (return from the cleaning unit, or install a spare).
  [[nodiscard]] Attempt plug(sim::RngStream& rng, const net::TransceiverModel& sku,
                             int faceplate_neighbors) const;

  [[nodiscard]] const ManipulatorProfile& profile() const { return profile_; }

 private:
  /// Runs the grasp-retry loop shared by all primitives; returns attempts
  /// used (0 retries left => failure) and accumulates retry time.
  [[nodiscard]] Attempt grasp_loop(sim::RngStream& rng, const net::TransceiverModel& sku,
                                   int faceplate_neighbors, double post_grasp_s) const;

  ManipulatorProfile profile_;
};

}  // namespace smn::robotics
