// bench_diff: the perf-regression gate for CI's bench-smoke job.
//
// Compares throughput numbers between two bench JSON reports (the previous
// CI run's artifact vs the one just produced) and flags any tracked key
// whose current value fell more than `tolerance` below the baseline.
// Deliberately a flat scan, not a JSON parser: the bench reports are emitted
// by runner::JsonWriter with unique key names, so the first occurrence of
// `"key":<number>` is the value — and the tool keeps zero dependencies.
//
// Policy (mirrored by tests/bench_diff_test.cpp):
//   - key missing from the CURRENT report  -> hard failure (the bench broke);
//   - key missing from the BASELINE report -> skipped (new metric, no
//     history yet), reported as such;
//   - current < baseline * (1 - tolerance) -> regression, hard failure;
//   - everything else                      -> ok (improvements always pass).
#pragma once

#include <cstdlib>
#include <optional>
#include <string>
#include <vector>

namespace smn::benchdiff {

/// First occurrence of `"key"` followed by `:` and a number, anywhere in the
/// document (whitespace around the colon tolerated). Nested objects are fine
/// as long as tracked key names are globally unique in the report.
inline std::optional<double> find_number(const std::string& json, const std::string& key) {
  const std::string needle = "\"" + key + "\"";
  std::size_t pos = json.find(needle);
  while (pos != std::string::npos) {
    std::size_t p = pos + needle.size();
    while (p < json.size() && (json[p] == ' ' || json[p] == '\t' || json[p] == '\n')) ++p;
    if (p < json.size() && json[p] == ':') {
      ++p;
      while (p < json.size() && (json[p] == ' ' || json[p] == '\t' || json[p] == '\n')) ++p;
      const char* start = json.c_str() + p;
      char* end = nullptr;
      const double v = std::strtod(start, &end);
      if (end != start) return v;
      return std::nullopt;  // key exists but value is not a number
    }
    pos = json.find(needle, pos + 1);
  }
  return std::nullopt;
}

struct KeyDiff {
  std::string key;
  std::optional<double> baseline;
  std::optional<double> current;
  /// current / baseline; 0 when either side is missing or baseline is 0.
  double ratio = 0;
  bool regression = false;      // current fell below baseline * (1 - tolerance)
  bool missing_current = false;  // bench stopped emitting the key: hard failure
  bool skipped = false;          // no baseline yet: informational only
};

struct DiffResult {
  std::vector<KeyDiff> keys;
  bool ok = true;  // false on any regression or missing-current key
};

inline DiffResult diff(const std::string& baseline_json, const std::string& current_json,
                       const std::vector<std::string>& keys, double tolerance) {
  DiffResult out;
  out.keys.reserve(keys.size());
  for (const std::string& k : keys) {
    KeyDiff d;
    d.key = k;
    d.baseline = find_number(baseline_json, k);
    d.current = find_number(current_json, k);
    if (!d.current.has_value()) {
      d.missing_current = true;
      out.ok = false;
    } else if (!d.baseline.has_value()) {
      d.skipped = true;
    } else {
      d.ratio = *d.baseline != 0.0 ? *d.current / *d.baseline : 0.0;
      if (*d.current < *d.baseline * (1.0 - tolerance)) {
        d.regression = true;
        out.ok = false;
      }
    }
    out.keys.push_back(std::move(d));
  }
  return out;
}

}  // namespace smn::benchdiff
