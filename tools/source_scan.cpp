#include "source_scan.h"

#include <algorithm>
#include <cctype>

namespace smn::scan {
namespace {

// One pass over the source, blanking comments and (optionally) literal
// contents. String/char state is always tracked — even when literals are kept
// — so comment markers inside literals never start a comment.
std::string strip_impl(const std::string& in, bool blank_strings) {
  std::string out = in;
  enum class Mode { kCode, kLine, kBlock, kString, kChar, kRaw };
  Mode mode = Mode::kCode;
  std::string raw_delim;
  for (std::size_t i = 0; i < in.size(); ++i) {
    const char c = in[i];
    const char next = i + 1 < in.size() ? in[i + 1] : '\0';
    switch (mode) {
      case Mode::kCode:
        if (c == '/' && next == '/') {
          mode = Mode::kLine;
          out[i] = out[i + 1] = ' ';
          ++i;
        } else if (c == '/' && next == '*') {
          mode = Mode::kBlock;
          out[i] = out[i + 1] = ' ';
          ++i;
        } else if (c == 'R' && next == '"' && (i == 0 || !is_ident(in[i - 1]))) {
          raw_delim = ")";
          for (std::size_t j = i + 2; j < in.size() && in[j] != '('; ++j) raw_delim += in[j];
          raw_delim += '"';
          mode = Mode::kRaw;
        } else if (c == '"') {
          mode = Mode::kString;
        } else if (c == '\'' && (i == 0 || !is_ident(in[i - 1]))) {
          // Ident check keeps digit separators (1'000'000) out of char mode.
          mode = Mode::kChar;
        }
        break;
      case Mode::kLine:
        if (c == '\n') mode = Mode::kCode;
        else out[i] = ' ';
        break;
      case Mode::kBlock:
        if (c == '*' && next == '/') {
          out[i] = out[i + 1] = ' ';
          mode = Mode::kCode;
          ++i;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case Mode::kString:
        if (c == '\\' && next != '\0') {
          if (blank_strings) out[i] = out[i + 1] = ' ';
          ++i;
        } else if (c == '"') {
          mode = Mode::kCode;
        } else if (c != '\n' && blank_strings) {
          out[i] = ' ';
        }
        break;
      case Mode::kChar:
        if (c == '\\' && next != '\0') {
          if (blank_strings) out[i] = out[i + 1] = ' ';
          ++i;
        } else if (c == '\'') {
          mode = Mode::kCode;
        } else if (blank_strings) {
          out[i] = ' ';
        }
        break;
      case Mode::kRaw:
        if (in.compare(i, raw_delim.size(), raw_delim) == 0) {
          mode = Mode::kCode;
          i += raw_delim.size() - 1;
        } else if (c != '\n' && blank_strings) {
          out[i] = ' ';
        }
        break;
    }
  }
  return out;
}

}  // namespace

bool is_ident(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

std::string strip_comments_and_strings(const std::string& in) {
  return strip_impl(in, /*blank_strings=*/true);
}

std::string strip_comments(const std::string& in) {
  return strip_impl(in, /*blank_strings=*/false);
}

int line_of(const std::string& text, std::size_t pos) {
  return 1 + static_cast<int>(
                 std::count(text.begin(), text.begin() + static_cast<long>(pos), '\n'));
}

std::size_t find_token(const std::string& code, const std::string& token, std::size_t from) {
  for (std::size_t pos = code.find(token, from); pos != std::string::npos;
       pos = code.find(token, pos + 1)) {
    const bool left_ok = pos == 0 || !is_ident(code[pos - 1]);
    const std::size_t end = pos + token.size();
    const char last = token.back();
    const bool right_ok = !is_ident(last) || end >= code.size() || !is_ident(code[end]);
    if (left_ok && right_ok) return pos;
  }
  return std::string::npos;
}

std::set<std::string> suppressed_rules(const std::string& raw, const std::string& marker) {
  std::set<std::string> out;
  const std::string full = marker + "(";
  for (std::size_t pos = raw.find(full); pos != std::string::npos;
       pos = raw.find(full, pos + 1)) {
    const std::size_t start = pos + full.size();
    const std::size_t close = raw.find(')', start);
    if (close != std::string::npos) out.insert(raw.substr(start, close - start));
  }
  return out;
}

}  // namespace smn::scan
