#include "analyze_core.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <functional>
#include <set>
#include <sstream>
#include <utility>

#include "source_scan.h"

namespace smn::analyze {
namespace {

using scan::find_token;
using scan::line_of;

// ---------------------------------------------------------------------------
// The module-layer DAG — the machine-checked source of truth (mirrored as a
// diagram in DESIGN.md "Static analysis"). Layer indices grow upward; a file
// may include its own layer or below. Three foundational headers are pulled
// out of their directories into layer 0: core/check.h (SMN_ASSERT, included
// by everything), core/thread_annotations.h + core/mutex.h (annotated locking
// primitives), and sim/time.h (pure value types, consumed by obs below sim).
// The rest of src/core is the maintenance *control plane* and sits near the
// top, exactly as DESIGN.md's dependency order describes.
// ---------------------------------------------------------------------------

struct FileLayer {
  const char* path;
  int layer;
};
inline constexpr FileLayer kFileLayers[] = {
    {"core/check.h", 0},
    {"core/thread_annotations.h", 0},
    {"core/mutex.h", 0},
    {"sim/time.h", 0},
};

struct DirLayer {
  const char* prefix;  // directory prefix, with trailing '/'
  int layer;
};
inline constexpr DirLayer kDirLayers[] = {
    {"obs/", 1},      {"sim/", 2},         {"net/", 3},      {"topology/", 3},
    {"fault/", 4},    {"telemetry/", 4},   {"workload/", 5}, {"maintenance/", 5},
    {"robotics/", 5}, {"analysis/", 5},    {"storage/", 5},  {"core/", 6},
    {"scenario/", 7}, {"runner/", 8},
};

inline constexpr const char* kLayerNames[] = {
    "base",     // 0: core/check.h, core/thread_annotations.h, core/mutex.h, sim/time.h
    "obs",      // 1
    "sim",      // 2
    "fabric",   // 3: net, topology
    "sensing",  // 4: fault, telemetry
    "services", // 5: workload, maintenance, robotics, analysis, storage
    "control",  // 6: core (the maintenance control plane)
    "scenario", // 7
    "runner",   // 8
};

// Normalizes a path to the src-relative form project includes use:
// strips a leading "./", and everything up to the last "/src/" (or a leading
// "src/") so absolute paths and repo-relative paths compare equal.
[[nodiscard]] std::string src_relative(const std::string& path) {
  std::string p = path;
  std::replace(p.begin(), p.end(), '\\', '/');
  if (p.rfind("./", 0) == 0) p = p.substr(2);
  const std::size_t marker = p.rfind("/src/");
  if (marker != std::string::npos) {
    p = p.substr(marker + 5);
  } else if (p.rfind("src/", 0) == 0) {
    p = p.substr(4);
  }
  return p;
}

// ---------------------------------------------------------------------------
// Shared-mutable-state audit.
// ---------------------------------------------------------------------------

// Tokens that mark a declaration prefix as not-a-mutable-variable: const
// qualification, compile-time constants, and declaration kinds the rule does
// not target (templates, operators, aliases, extern "C" blocks reach here as
// an empty prefix).
[[nodiscard]] bool prefix_is_exempt(const std::string& prefix) {
  static const char* const kExempt[] = {"const",    "constexpr", "operator",
                                        "template", "namespace", "using",
                                        "typedef",  "friend"};
  for (const char* tok : kExempt) {
    if (find_token(prefix, tok, 0) != std::string::npos) return true;
  }
  return false;
}

// Collapses whitespace runs so a multi-line declaration prints on one line.
[[nodiscard]] std::string collapse_ws(const std::string& s) {
  std::string out;
  bool in_ws = true;  // also trims leading whitespace
  for (char c : s) {
    if (std::isspace(static_cast<unsigned char>(c)) != 0) {
      if (!in_ws) out += ' ';
      in_ws = true;
    } else {
      out += c;
      in_ws = false;
    }
  }
  while (!out.empty() && out.back() == ' ') out.pop_back();
  if (out.size() > 48) out = out.substr(0, 45) + "...";
  return out;
}

void scan_keyword(const std::string& path, const std::string& code, const std::string& kw,
                  std::vector<Finding>& out, std::set<int>& reported_lines) {
  for (std::size_t pos = find_token(code, kw, 0); pos != std::string::npos;
       pos = find_token(code, kw, pos + 1)) {
    const std::size_t start = pos + kw.size();
    // Walk to the first structural character at bracket depth 0. Template
    // argument lists and array extents are skipped balanced so a '(' inside
    // std::function<void(int)> or int[f(3)] does not read as a function
    // declarator.
    int angle = 0;
    int square = 0;
    std::size_t decision = std::string::npos;
    char decision_char = '\0';
    for (std::size_t j = start; j < code.size(); ++j) {
      const char c = code[j];
      if (c == '<') ++angle;
      else if (c == '>') angle = std::max(0, angle - 1);
      else if (c == '[') ++square;
      else if (c == ']') square = std::max(0, square - 1);
      if (angle > 0 || square > 0) continue;
      if (c == ';' || c == '=' || c == '(' || c == '{' || c == '}') {
        decision = j;
        decision_char = c;
        break;
      }
    }
    if (decision == std::string::npos) continue;
    if (decision_char == '(' || decision_char == '}') continue;  // function-like / end of scope
    const std::string prefix = code.substr(start, decision - start);
    // extern "C" { ... } / extern "C++" { ... }: literal contents are blanked
    // but the quotes survive stripping, so "no identifier chars" is the test.
    const bool prefix_has_ident =
        std::any_of(prefix.begin(), prefix.end(), [](char c) { return scan::is_ident(c); });
    if (decision_char == '{' && !prefix_has_ident) continue;
    if (prefix_is_exempt(prefix)) continue;
    const int line = line_of(code, pos);
    if (!reported_lines.insert(line).second) continue;  // static thread_local combos
    out.push_back(
        {path, line, "shared-mutable-state",
         "mutable " + kw + " state `" + collapse_ws(prefix) +
             "` is shared across Worlds: one-World-per-replicate (and the coming "
             "one-domain-per-shard) isolation requires mutable state to live in the World — "
             "make it per-World/per-Registry, or justify with // smn-analyze: "
             "allow(shared-mutable-state)"});
  }
}

// ---------------------------------------------------------------------------
// Include-graph helpers.
// ---------------------------------------------------------------------------

[[nodiscard]] std::vector<std::string> project_deps(const FileMap& files,
                                                    const std::string& file,
                                                    const std::string& content) {
  std::vector<std::string> deps;
  for (const IncludeDirective& inc : parse_includes(content)) {
    if (inc.angled) continue;
    const std::string target = src_relative(inc.path);
    if (target == file) continue;
    if (files.contains(target)) deps.push_back(target);
  }
  return deps;
}

}  // namespace

std::vector<IncludeDirective> parse_includes(const std::string& content) {
  // Comments blanked, strings kept: the include payload *is* a string-ish
  // token, and a commented-out include must not become an edge.
  const std::string code = scan::strip_comments(content);
  std::vector<IncludeDirective> out;
  int line = 1;
  std::size_t i = 0;
  while (i <= code.size()) {
    std::size_t eol = code.find('\n', i);
    if (eol == std::string::npos) eol = code.size();
    std::size_t k = i;
    auto skip_ws = [&] {
      while (k < eol && (code[k] == ' ' || code[k] == '\t')) ++k;
    };
    skip_ws();
    if (k < eol && code[k] == '#') {
      ++k;
      skip_ws();
      if (code.compare(k, 7, "include") == 0) {
        k += 7;
        skip_ws();
        if (k < eol && code[k] == '"') {
          const std::size_t close = code.find('"', k + 1);
          if (close != std::string::npos && close < eol) {
            out.push_back({line, code.substr(k + 1, close - k - 1), /*angled=*/false});
          }
        } else if (k < eol && code[k] == '<') {
          const std::size_t close = code.find('>', k + 1);
          if (close != std::string::npos && close < eol) {
            out.push_back({line, code.substr(k + 1, close - k - 1), /*angled=*/true});
          }
        }
      }
    }
    if (eol == code.size()) break;
    i = eol + 1;
    ++line;
  }
  return out;
}

int layer_of(const std::string& path) {
  const std::string rel = src_relative(path);
  for (const FileLayer& f : kFileLayers) {
    if (rel == f.path) return f.layer;
  }
  for (const DirLayer& d : kDirLayers) {
    if (rel.rfind(d.prefix, 0) == 0) return d.layer;
  }
  return -1;
}

const char* layer_name(int layer) {
  constexpr int kCount = static_cast<int>(std::size(kLayerNames));
  return layer >= 0 && layer < kCount ? kLayerNames[layer] : "?";
}

bool in_layer_model(const std::string& path) { return layer_of(path) >= 0; }

std::vector<Finding> check_shared_state(const std::string& path, const std::string& content) {
  const std::string code = scan::strip_comments_and_strings(content);
  std::vector<Finding> out;
  std::set<int> reported_lines;
  for (const char* kw : {"static", "thread_local", "extern"}) {
    scan_keyword(path, code, kw, out, reported_lines);
  }
  std::sort(out.begin(), out.end(),
            [](const Finding& a, const Finding& b) { return a.line < b.line; });
  return out;
}

std::vector<Finding> check_layering(const FileMap& files) {
  std::vector<Finding> out;
  for (const auto& [file, content] : files) {
    const int file_layer = layer_of(file);
    if (file_layer < 0) {
      out.push_back({file, 0, "layering",
                     "file is not assigned to any module layer — add its directory to the "
                     "DAG in tools/analyze_core.cpp and DESIGN.md \"Static analysis\""});
      continue;
    }
    for (const IncludeDirective& inc : parse_includes(content)) {
      if (inc.angled) continue;
      const int inc_layer = layer_of(inc.path);
      if (inc_layer < 0) continue;  // non-src include (tools/, third-party)
      if (inc_layer > file_layer) {
        out.push_back(
            {file, inc.line, "layering",
             "layer violation: " + src_relative(file) + " (" + layer_name(file_layer) +
                 ") includes " + src_relative(inc.path) + " (" + layer_name(inc_layer) +
                 ") — modules may include only their own layer or below; see the DAG in "
                 "DESIGN.md \"Static analysis\""});
      }
    }
  }
  return out;
}

std::vector<Finding> check_include_cycles(const FileMap& files) {
  // Tri-color DFS in sorted file order: deterministic traversal, every cycle
  // reported exactly once under its canonical rotation.
  enum class Color { kWhite, kGray, kBlack };
  std::map<std::string, Color> color;
  std::map<std::string, std::vector<std::string>> deps;
  for (const auto& [file, content] : files) {
    color[file] = Color::kWhite;
    deps[file] = project_deps(files, file, content);
  }

  std::vector<Finding> out;
  std::set<std::string> seen_cycles;
  std::vector<std::string> stack;

  const std::function<void(const std::string&)> dfs = [&](const std::string& file) {
    color[file] = Color::kGray;
    stack.push_back(file);
    for (const std::string& dep : deps[file]) {
      if (color[dep] == Color::kGray) {
        const auto begin = std::find(stack.begin(), stack.end(), dep);
        std::vector<std::string> cycle(begin, stack.end());
        // Canonical rotation: smallest member first, so the same cycle found
        // from different entry points dedupes.
        const auto smallest = std::min_element(cycle.begin(), cycle.end());
        std::rotate(cycle.begin(), smallest, cycle.end());
        std::string desc = cycle.front();
        for (std::size_t i = 1; i < cycle.size(); ++i) desc += " -> " + cycle[i];
        desc += " -> " + cycle.front();
        if (seen_cycles.insert(desc).second) {
          out.push_back({cycle.front(), 0, "include-cycle",
                         "#include cycle: " + desc +
                             " — break it with a forward declaration or by moving the "
                             "shared piece down a layer"});
        }
      } else if (color[dep] == Color::kWhite) {
        dfs(dep);
      }
    }
    stack.pop_back();
    color[file] = Color::kBlack;
  };

  for (const auto& [file, _] : files) {
    if (color[file] == Color::kWhite) dfs(file);
  }
  std::sort(out.begin(), out.end(),
            [](const Finding& a, const Finding& b) { return a.message < b.message; });
  return out;
}

std::vector<Finding> analyze_files(const FileMap& files) {
  std::vector<Finding> all;
  for (const auto& [file, content] : files) {
    std::vector<Finding> fs = check_shared_state(file, content);
    all.insert(all.end(), std::make_move_iterator(fs.begin()), std::make_move_iterator(fs.end()));
  }
  {
    std::vector<Finding> fs = check_layering(files);
    all.insert(all.end(), std::make_move_iterator(fs.begin()), std::make_move_iterator(fs.end()));
    fs = check_include_cycles(files);
    all.insert(all.end(), std::make_move_iterator(fs.begin()), std::make_move_iterator(fs.end()));
  }

  std::vector<Finding> out;
  std::set<std::pair<std::string, std::pair<int, std::string>>> reported;
  for (Finding& f : all) {
    const auto it = files.find(f.file);
    if (it != files.end() &&
        scan::suppressed_rules(it->second, "smn-analyze: allow").contains(f.rule)) {
      continue;
    }
    if (!reported.insert({f.file, {f.line, f.rule}}).second) continue;
    out.push_back(std::move(f));
  }
  std::sort(out.begin(), out.end(), [](const Finding& a, const Finding& b) {
    if (a.file != b.file) return a.file < b.file;
    if (a.line != b.line) return a.line < b.line;
    return a.rule < b.rule;
  });
  return out;
}

std::vector<Finding> analyze_tree(const std::string& src_root) {
  namespace fs = std::filesystem;
  const fs::path root{src_root};
  FileMap files;
  std::vector<fs::path> paths;
  for (const fs::directory_entry& e : fs::recursive_directory_iterator(root)) {
    if (!e.is_regular_file()) continue;
    const std::string ext = e.path().extension().string();
    if (ext == ".h" || ext == ".hpp" || ext == ".cpp" || ext == ".cc") {
      paths.push_back(e.path());
    }
  }
  std::sort(paths.begin(), paths.end());
  for (const fs::path& p : paths) {
    std::ifstream f{p};
    std::stringstream buf;
    buf << f.rdbuf();
    files.emplace(fs::relative(p, root).generic_string(), buf.str());
  }
  std::vector<Finding> out = analyze_files(files);
  // Re-prefix with the caller's root so findings are clickable from the repo
  // root (the map keys stay src-relative for layer/include resolution).
  std::string prefix = root.generic_string();
  if (!prefix.empty() && prefix.back() != '/') prefix += '/';
  for (Finding& f : out) f.file = prefix + f.file;
  return out;
}

std::string format(const Finding& f) {
  std::stringstream s;
  s << f.file << ':';
  if (f.line > 0) s << f.line << ':';
  s << ' ' << f.rule << ": " << f.message;
  return s.str();
}

}  // namespace smn::analyze
