// smn_sim — command-line scenario runner.
//
// Builds a topology, runs a self-maintaining world at a chosen automation
// level for N simulated days, prints a summary, and optionally dumps a
// time-series CSV for plotting.
//
//   smn_sim --topology leaf-spine --level L3 --days 60 --seed 7
//   smn_sim --topology gpu --level L0 --days 30 --csv run.csv
//   smn_sim --topology fat-tree --k 8 --level L4 --proactive off
//
// Flags (defaults in brackets):
//   --topology leaf-spine|fat-tree|jellyfish|xpander|gpu|hybrid [leaf-spine]
//   --level L0|L1|L2|L3|L4                                 [L3]
//   --days N                                               [60]
//   --seed N                                               [1]
//   --leaves N --spines N --servers N --uplinks N          [12 4 8 1]
//   --k N                 (fat-tree)                       [8]
//   --switches N --degree N (jellyfish/xpander)            [32 8]
//   --gpus N --rails N    (gpu)                            [16 8]
//   --neighbors N --rewire F (hybrid ring-lattice: Watts-Strogatz
//                         lattice degree and rewiring beta)    [4 0.1]
//   --proactive on|off                                     [per level]
//   --impact-aware on|off                                  [per level]
//   --storage on|off      enable the SNS-repair storage data plane
//                         (striped objects, degraded reads, fabric-
//                         throttled background reconstruction)   [off]
//   --csv FILE            write hourly time series
//   --metrics FILE        write the obs metrics registry in Prometheus text
//                         exposition format after the run
//   --trace FILE          enable structured tracing and write Chrome
//                         trace_event JSON (load in Perfetto / chrome://tracing)
//   --audit-determinism   run every topology preset three times with the same
//                         seed — twice with observability on, once with it
//                         off — and fail (exit 1) if any executed-event trace
//                         hash diverges or the two obs-on metrics-snapshot
//                         hashes differ; every preset is audited both plain
//                         and with the storage data plane enabled, and a
//                         survivability dimension runs each fabric twice
//                         plain and twice with the frontier computed — the
//                         four trace hashes must agree (the frontier is a
//                         pure observer) and the two frontier curve hashes
//                         must reproduce bit-for-bit; honors
//                         --level/--seed/--days (days defaults to 10 in
//                         audit mode)
//
// Subcommand: `smnctl analyze` — static fabric analysis, no simulation.
// `--survivability` computes Couto-style progressive-failure frontiers
// (largest-component, server-reachability, and bisection-proxy curves vs %
// elements failed, mean over seeded orderings) via the incremental
// reverse-replay union-find engine in src/analysis/survivability.h:
//
//   smnctl analyze --survivability                      # all preset fabrics
//   smnctl analyze --survivability --topology fat-tree --mode links
//   smnctl analyze --survivability --orderings 64 --json frontier.json
//
// Analyze flags (defaults in brackets):
//   --survivability       compute progressive-failure frontier curves
//   --topology X          one fabric (accepts the same topology flags as the
//                         runner, plus hybrid); default: the five audit
//                         fabrics + hybrid beta=0.1/0.5
//   --mode links|switches|both   which elements fail           [both]
//   --orderings N         seeded failure orderings per curve   [32]
//   --seed N              ordering seed base                   [1]
//   --json FILE           write smn-survivability-v1 JSON with the full
//                         mean/ci95 curve arrays per fabric x mode
//
// Subcommand: `smnctl sweep` — the parallel Monte-Carlo sweep engine
// (src/runner). Runs a named grid of worlds across a seed range on all
// cores and emits the machine-readable smn-sweep-v1 JSON report:
//
//   smnctl sweep --preset availability --seeds 32 --days 45 --jobs 8
//                --json BENCH_sweep.json
//
// Sweep flags (defaults in brackets):
//   --preset availability|topologies|quick|campus|storage|
//            storage-quick|storage-campus|survivability  [availability]
//   --seeds N             replicates per cell                [8]
//   --first-seed N                                           [1]
//   --days N              simulated days per replicate       [30]
//   --jobs J              worker threads, 0 = all cores      [0]
//   --shards N            worker threads per campus replicate (one per hall
//                         domain, epoch-barrier synchronized); results are
//                         byte-identical at any value        [1]
//   --json FILE           write the JSON report
//   --no-timing           omit timing fields from the JSON so byte-level
//                         diffs across jobs and shards counts are meaningful
//   --sample-traces       trace one replicate per cell (the lowest seed) and
//                         embed its trace hash + file name in the JSON
//   --trace-dir DIR       where --sample-traces writes the trace files  [.]
//   --quiet               suppress per-replicate progress
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <string>

#include "analysis/cost.h"
#include "analysis/report.h"
#include "analysis/stats.h"
#include "analysis/survivability.h"
#include "analysis/timeseries.h"
#include "runner/json_writer.h"
#include "runner/presets.h"
#include "runner/sweep.h"
#include "scenario/world.h"
#include "storage/data_plane.h"
#include "topology/builders.h"

namespace {

using namespace smn;

struct Args {
  std::map<std::string, std::string> kv;

  [[nodiscard]] std::string get(const std::string& key, const std::string& dflt) const {
    const auto it = kv.find(key);
    return it == kv.end() ? dflt : it->second;
  }
  [[nodiscard]] int geti(const std::string& key, int dflt) const {
    const auto it = kv.find(key);
    return it == kv.end() ? dflt : std::atoi(it->second.c_str());
  }
  [[nodiscard]] double getd(const std::string& key, double dflt) const {
    const auto it = kv.find(key);
    return it == kv.end() ? dflt : std::atof(it->second.c_str());
  }
  [[nodiscard]] bool onoff(const std::string& key, bool dflt) const {
    const auto it = kv.find(key);
    if (it == kv.end()) return dflt;
    return it->second == "on" || it->second == "true" || it->second == "1";
  }
  [[nodiscard]] bool has(const std::string& key) const { return kv.contains(key); }
};

topology::Blueprint build_topology(const Args& args) {
  const std::string kind = args.get("topology", "leaf-spine");
  if (kind == "leaf-spine") {
    return topology::build_leaf_spine({.leaves = args.geti("leaves", 12),
                                       .spines = args.geti("spines", 4),
                                       .servers_per_leaf = args.geti("servers", 8),
                                       .uplinks_per_spine = args.geti("uplinks", 1)});
  }
  if (kind == "fat-tree") {
    return topology::build_fat_tree({.k = args.geti("k", 8)});
  }
  if (kind == "jellyfish") {
    return topology::build_jellyfish(
        {.switches = args.geti("switches", 32),
         .network_degree = args.geti("degree", 8),
         .servers_per_switch = args.geti("servers", 4),
         .seed = static_cast<std::uint64_t>(args.geti("seed", 1))});
  }
  if (kind == "xpander") {
    return topology::build_xpander(
        {.network_degree = args.geti("degree", 7),
         .lift = args.geti("lift", 4),
         .servers_per_switch = args.geti("servers", 4),
         .seed = static_cast<std::uint64_t>(args.geti("seed", 1))});
  }
  if (kind == "gpu") {
    return topology::build_gpu_cluster({.gpu_servers = args.geti("gpus", 16),
                                        .rails = args.geti("rails", 8),
                                        .spines = args.geti("spines", 2)});
  }
  if (kind == "hybrid") {
    return topology::build_hybrid(
        {.switches = args.geti("switches", 32),
         .lattice_neighbors = args.geti("neighbors", 4),
         .rewire_fraction = args.getd("rewire", 0.1),
         .servers_per_switch = args.geti("servers", 4),
         .seed = static_cast<std::uint64_t>(args.geti("seed", 1))});
  }
  throw std::invalid_argument{"unknown --topology " + kind};
}

core::AutomationLevel parse_level(const std::string& s) {
  if (s == "L0") return core::AutomationLevel::kL0_Manual;
  if (s == "L1") return core::AutomationLevel::kL1_OperatorAssist;
  if (s == "L2") return core::AutomationLevel::kL2_PartialAutomation;
  if (s == "L3") return core::AutomationLevel::kL3_HighAutomation;
  if (s == "L4") return core::AutomationLevel::kL4_FullAutomation;
  throw std::invalid_argument{"unknown --level " + s + " (use L0..L4)"};
}

scenario::WorldConfig world_config(const Args& args, core::AutomationLevel level) {
  scenario::WorldConfig cfg = scenario::WorldConfig::for_level(level);
  cfg.seed = static_cast<std::uint64_t>(args.geti("seed", 1));
  cfg.network.aoc_max_m = 5.0;
  if (args.has("proactive")) {
    cfg.controller.proactive.enabled = args.onoff("proactive", false);
  }
  if (args.has("impact-aware")) {
    cfg.controller.impact_aware = args.onoff("impact-aware", true);
  }
  // `--storage on`: the SNS-repair data plane with the E19 layout (8+2
  // groups, fabric-throttled background reconstruction).
  if (args.onoff("storage", false)) {
    cfg.storage = runner::storage_world(level, cfg.seed).storage;
  }
  // Tracing is opt-in per run: the buffer is only allocated (and the trace
  // instrumentation only records) when the caller asked for an output file.
  if (args.has("trace")) cfg.obs.trace = true;
  return cfg;
}

// The determinism audit (DESIGN.md "deterministic by construction"): every
// topology preset is simulated three times from identical configs — twice
// with observability on, once with it off entirely. All three per-event trace
// hashes must match bit-for-bit (instrumentation observes the event stream,
// never perturbs it), and the two obs-on runs must produce bit-identical
// metrics-snapshot hashes (the instrumentation itself is reproducible). Any
// divergence — hash-order iteration, an uninitialized read, a wall-clock
// leak, a metric fed from nondeterministic state — fails the audit.
int run_determinism_audit(const Args& args) {
  const core::AutomationLevel level = parse_level(args.get("level", "L3"));
  const int days = args.geti("days", 10);
  static const char* const kPresets[] = {"leaf-spine", "fat-tree", "jellyfish", "xpander",
                                         "gpu"};
  std::printf("determinism audit: level %s, %d days, seed %d\n", core::to_string(level), days,
              args.geti("seed", 1));
  bool ok = true;
  // Every preset runs twice over: plain, and with the SNS-repair storage
  // data plane enabled — the subsystem's reads, repairs, and throttle
  // updates must be as reproducible as everything else.
  for (const bool with_storage : {false, true}) {
    for (const char* preset : kPresets) {
      Args preset_args = args;
      preset_args.kv["topology"] = preset;
      preset_args.kv["storage"] = with_storage ? "on" : "off";
      const topology::Blueprint bp = build_topology(preset_args);
      std::uint64_t hash[3] = {};
      std::uint64_t events[3] = {};
      std::uint64_t metrics[3] = {};
      for (int run = 0; run < 3; ++run) {
        scenario::WorldConfig cfg = world_config(preset_args, level);
        // Runs 0/1: full observability. Run 2: everything off, proving the
        // instrumentation never feeds back into RNG draws or event order.
        cfg.obs = run < 2 ? obs::Options{} : obs::Options::disabled();
        scenario::World world{bp, cfg};
        world.run_for(sim::Duration::days(days));
        world.check_invariants();
        hash[run] = world.simulator().trace_hash();
        events[run] = world.simulator().events_processed();
        metrics[run] = world.obs().metrics_hash();
      }
      const bool trace_match = hash[0] == hash[1] && hash[1] == hash[2] &&
                               events[0] == events[1] && events[1] == events[2];
      const bool metrics_match = metrics[0] == metrics[1];
      ok = ok && trace_match && metrics_match;
      const std::string label = std::string{preset} + (with_storage ? "+storage" : "");
      std::printf("  %-19s %10llu events  trace %016llx/%016llx/%016llx %s  metrics %016llx/%016llx %s\n",
                  label.c_str(), static_cast<unsigned long long>(events[0]),
                  static_cast<unsigned long long>(hash[0]),
                  static_cast<unsigned long long>(hash[1]),
                  static_cast<unsigned long long>(hash[2]), trace_match ? "OK" : "DIVERGED",
                  static_cast<unsigned long long>(metrics[0]),
                  static_cast<unsigned long long>(metrics[1]), metrics_match ? "OK" : "DIVERGED");
    }
  }
  // Survivability dimension: each fabric runs twice plain and twice with the
  // frontier computed (exactly what the sweep runner does post-run). All four
  // trace hashes must agree — computing curves is a pure observation of the
  // blueprint, never of the simulation — and the two frontier computations
  // must reproduce identical curve hashes in both failure modes.
  std::printf("  survivability frontier (pure observer + curve reproducibility):\n");
  for (const char* preset : kPresets) {
    Args preset_args = args;
    preset_args.kv["topology"] = preset;
    const topology::Blueprint bp = build_topology(preset_args);
    std::uint64_t trace[4] = {};
    std::uint64_t links_hash[2] = {};
    std::uint64_t switches_hash[2] = {};
    for (int run = 0; run < 4; ++run) {
      scenario::WorldConfig cfg = world_config(preset_args, level);
      const bool with_frontier = run >= 2;
      cfg.survivability.enabled = with_frontier;
      scenario::World world{bp, cfg};
      world.run_for(sim::Duration::days(days));
      world.check_invariants();
      trace[run] = world.simulator().trace_hash();
      if (with_frontier) {
        analysis::SurvivabilityFrontier frontier{bp};
        analysis::SurvivabilityConfig scfg = cfg.survivability;
        scfg.mode = analysis::FailureMode::kLinks;
        links_hash[run - 2] = frontier.compute(scfg).hash;
        scfg.mode = analysis::FailureMode::kSwitches;
        switches_hash[run - 2] = frontier.compute(scfg).hash;
      }
    }
    const bool trace_match = trace[0] == trace[1] && trace[1] == trace[2] &&
                             trace[2] == trace[3];
    const bool curve_match =
        links_hash[0] == links_hash[1] && switches_hash[0] == switches_hash[1];
    ok = ok && trace_match && curve_match;
    std::printf("  %-19s trace %016llx x4 %s  curves links %016llx/%016llx switches "
                "%016llx/%016llx %s\n",
                preset, static_cast<unsigned long long>(trace[0]),
                trace_match ? "OK" : "DIVERGED",
                static_cast<unsigned long long>(links_hash[0]),
                static_cast<unsigned long long>(links_hash[1]),
                static_cast<unsigned long long>(switches_hash[0]),
                static_cast<unsigned long long>(switches_hash[1]),
                curve_match ? "OK" : "DIVERGED");
  }
  if (!ok) {
    std::fprintf(stderr, "determinism audit FAILED: trace or metrics hashes diverged\n");
    return 1;
  }
  std::printf(
      "determinism audit passed: traces identical with obs on/off, metrics and "
      "survivability curves reproduce\n");
  return 0;
}

/// Flags that take no value.
[[nodiscard]] bool is_boolean_flag(const std::string& key) {
  return key == "audit-determinism" || key == "quiet" || key == "no-timing" ||
         key == "sample-traces" || key == "survivability";
}

// Parses `--key value` pairs (and bare boolean flags) from argv[start..).
// Returns 0 on success, 2 on a usage error, and sets `args.kv["help"]` when
// --help was requested.
int parse_flags(int argc, char** argv, int start, Args& args) {
  for (int i = start; i < argc; ++i) {
    if (std::strncmp(argv[i], "--", 2) != 0) {
      std::fprintf(stderr, "unexpected argument: %s\n", argv[i]);
      return 2;
    }
    const std::string key = argv[i] + 2;
    if (key == "help") {
      args.kv["help"] = "on";
      return 0;
    }
    if (is_boolean_flag(key)) {
      args.kv[key] = "on";
      continue;
    }
    if (i + 1 >= argc) {
      std::fprintf(stderr, "missing value for --%s\n", key.c_str());
      return 2;
    }
    args.kv[key] = argv[++i];
  }
  return 0;
}

// `smnctl sweep`: run a preset Monte-Carlo grid on the worker pool and emit
// the smn-sweep-v1 JSON report.
int run_sweep(const Args& args) {
  const std::string preset = args.get("preset", "availability");
  const int days = args.geti("days", 30);
  const auto seeds = static_cast<std::uint64_t>(args.geti("seeds", 8));
  const auto first_seed = static_cast<std::uint64_t>(args.geti("first-seed", 1));
  const int jobs = args.geti("jobs", 0);
  const int shards = args.geti("shards", 1);
  const bool quiet = args.onoff("quiet", false);

  const runner::SweepSpec spec =
      runner::make_sweep(preset, sim::Duration::days(days), first_seed, seeds);
  std::printf("sweep: preset %s, %zu cells x %llu seeds, %d days, jobs %s, shards %d\n",
              preset.c_str(), spec.cells.size(), static_cast<unsigned long long>(seeds), days,
              jobs == 0 ? "auto" : std::to_string(jobs).c_str(), shards < 1 ? 1 : shards);

  runner::SweepRunner sweeper;
  runner::SweepRunner::Options opts;
  opts.jobs = jobs;
  opts.shards = shards;
  opts.sample_traces = args.onoff("sample-traces", false);
  if (!quiet) {
    opts.on_result = [&](const runner::ReplicateResult& r, std::size_t done,
                         std::size_t total) {
      std::printf("  [%zu/%zu] %s seed %llu  trace %s\n", done, total,
                  spec.cells[r.cell].name.c_str(), static_cast<unsigned long long>(r.seed),
                  runner::JsonWriter::hex64(r.trace_hash).c_str());
    };
  }
  const runner::SweepReport report = sweeper.run(spec, opts);

  using analysis::Table;
  Table table{{"cell", "n", "avail mean", "ci95", "down lh", "backlog", "cost $/yr"}};
  for (const runner::CellReport& cell : report.cells) {
    table.add_row({cell.name, Table::num(cell.replicates.size()),
                   Table::num(cell.stats[runner::kAvailability].mean, 6),
                   Table::num(cell.stats[runner::kAvailability].ci95, 6),
                   Table::num(cell.stats[runner::kDowntimeLinkHours].mean, 1),
                   Table::num(cell.stats[runner::kOpenBacklog].mean, 1),
                   Table::num(cell.stats[runner::kAnnualCostUsd].mean, 0)});
  }
  table.print(std::cout);
  std::printf("%zu/%zu replicates in %.2fs (%.2f replicates/sec, jobs=%d)\n",
              report.replicates_done, report.replicates_total, report.wall_seconds,
              report.replicates_per_sec, report.jobs);

  if (args.has("json")) {
    const std::string path = args.get("json", "sweep.json");
    std::ofstream out{path};
    if (!out) {
      std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
      return 1;
    }
    runner::JsonOptions jopts;
    jopts.include_timing = !args.onoff("no-timing", false);
    out << runner::to_json(report, jopts) << '\n';
    std::printf("report written to %s\n", path.c_str());
  }
  if (opts.sample_traces) {
    const std::string dir = args.get("trace-dir", ".");
    if (!runner::write_sampled_traces(report, dir)) return 1;
    for (const runner::CellReport& cell : report.cells) {
      for (const runner::ReplicateResult& r : cell.replicates) {
        if (r.sampled_trace_json.empty()) continue;
        std::printf("sampled trace %s/%s (hash %s)\n", dir.c_str(),
                    runner::sampled_trace_filename(cell.name, r.seed).c_str(),
                    runner::JsonWriter::hex64(r.sampled_trace_hash).c_str());
      }
    }
  }
  return 0;
}

// `smnctl analyze --survivability`: progressive-failure frontier summary rows
// for one fabric or the whole preset family — static analysis of the
// blueprint, no simulation involved.
int run_analyze(const Args& args) {
  if (!args.onoff("survivability", false)) {
    std::fprintf(stderr, "analyze: nothing to analyze (pass --survivability)\n");
    return 2;
  }
  analysis::SurvivabilityConfig scfg;
  scfg.enabled = true;
  scfg.orderings = args.geti("orderings", 32);
  scfg.seed = static_cast<std::uint64_t>(args.geti("seed", 1));

  std::vector<analysis::FailureMode> modes;
  const std::string mode_arg = args.get("mode", "both");
  if (mode_arg == "links") {
    modes = {analysis::FailureMode::kLinks};
  } else if (mode_arg == "switches" || mode_arg == "devices") {
    modes = {analysis::FailureMode::kSwitches};
  } else if (mode_arg == "both") {
    modes = {analysis::FailureMode::kLinks, analysis::FailureMode::kSwitches};
  } else {
    std::fprintf(stderr, "unknown --mode %s (use links|switches|both)\n", mode_arg.c_str());
    return 2;
  }

  struct Fabric {
    std::string name;
    topology::Blueprint bp;
  };
  std::vector<Fabric> fabrics;
  if (args.has("topology")) {
    fabrics.push_back({args.get("topology", "leaf-spine"), build_topology(args)});
  } else {
    // The five audit fabrics plus the two hybrid dials — the E20 family.
    for (const char* preset : {"leaf-spine", "fat-tree", "jellyfish", "xpander", "gpu"}) {
      Args preset_args = args;
      preset_args.kv["topology"] = preset;
      fabrics.push_back({preset, build_topology(preset_args)});
    }
    for (const double beta : {0.1, 0.5}) {
      Args hybrid_args = args;
      hybrid_args.kv["topology"] = "hybrid";
      hybrid_args.kv["rewire"] = beta == 0.1 ? "0.1" : "0.5";
      fabrics.push_back({"hybrid-" + hybrid_args.kv["rewire"], build_topology(hybrid_args)});
    }
  }

  using analysis::Table;
  Table table{{"fabric", "mode", "elem", "conn@25%", "conn@50%", "reach@25%", "reach@50%",
               "bisec@50%", "auc conn", "auc reach", "auc bisec", "curve hash"}};
  runner::JsonWriter w;
  w.begin_object();
  w.kv("schema", "smn-survivability-v1");
  w.kv("orderings", static_cast<std::int64_t>(scfg.orderings));
  w.kv("seed", scfg.seed);
  w.key("fabrics");
  w.begin_array();
  for (Fabric& f : fabrics) {
    analysis::SurvivabilityFrontier frontier{f.bp};
    for (const analysis::FailureMode mode : modes) {
      analysis::SurvivabilityConfig cfg = scfg;
      cfg.mode = mode;
      const analysis::FrontierResult r = frontier.compute(cfg);
      table.add_row({f.name, analysis::to_string(mode), Table::num(r.elements),
                     Table::num(analysis::curve_value_at(r.largest_component, 0.25), 4),
                     Table::num(analysis::curve_value_at(r.largest_component, 0.50), 4),
                     Table::num(analysis::curve_value_at(r.server_reachability, 0.25), 4),
                     Table::num(analysis::curve_value_at(r.server_reachability, 0.50), 4),
                     Table::num(analysis::curve_value_at(r.bisection, 0.50), 4),
                     Table::num(r.auc_connectivity, 4), Table::num(r.auc_reachability, 4),
                     Table::num(r.auc_bisection, 4), runner::JsonWriter::hex64(r.hash)});
      w.begin_object();
      w.kv("fabric", f.name);
      w.kv("mode", analysis::to_string(mode));
      w.kv("elements", r.elements);
      w.kv("devices", r.devices);
      w.kv("servers", r.servers);
      w.kv("auc_connectivity", r.auc_connectivity);
      w.kv("auc_reachability", r.auc_reachability);
      w.kv("auc_bisection", r.auc_bisection);
      w.kv("hash", runner::JsonWriter::hex64(r.hash));
      w.key("curves");
      w.begin_object();
      const auto emit_curve = [&w](const char* name, const analysis::CurveSummary& c) {
        w.key(name);
        w.begin_object();
        w.key("mean");
        w.begin_array();
        for (const double v : c.mean) w.value(v);
        w.end_array();
        w.key("ci95");
        w.begin_array();
        for (const double v : c.ci95) w.value(v);
        w.end_array();
        w.end_object();
      };
      emit_curve("largest_component", r.largest_component);
      emit_curve("server_reachability", r.server_reachability);
      emit_curve("bisection", r.bisection);
      w.end_object();
      w.end_object();
    }
  }
  w.end_array();
  w.end_object();
  table.print(std::cout);

  if (args.has("json")) {
    const std::string path = args.get("json", "survivability.json");
    std::ofstream out{path};
    if (!out) {
      std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
      return 1;
    }
    out << w.str() << '\n';
    std::printf("frontier curves written to %s\n", path.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  const bool is_sweep = argc > 1 && std::strcmp(argv[1], "sweep") == 0;
  const bool is_analyze = argc > 1 && std::strcmp(argv[1], "analyze") == 0;
  if (parse_flags(argc, argv, (is_sweep || is_analyze) ? 2 : 1, args) != 0) return 2;
  if (args.has("help")) {
    std::printf("see the header of tools/smn_sim.cpp for flags\n");
    return 0;
  }
  if (is_sweep || is_analyze) {
    try {
      return is_sweep ? run_sweep(args) : run_analyze(args);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return 1;
    }
  }

  try {
    if (args.onoff("audit-determinism", false)) {
      return run_determinism_audit(args);
    }
    const topology::Blueprint bp = build_topology(args);
    const core::AutomationLevel level = parse_level(args.get("level", "L3"));
    const int days = args.geti("days", 60);

    scenario::World world{bp, world_config(args, level)};

    analysis::TimeSeriesRecorder recorder{world.simulator(), sim::Duration::hours(1)};
    const bool want_csv = args.has("csv");
    if (want_csv) {
      recorder.add_column("availability",
                          [&] { return world.availability().fleet_availability(); });
      recorder.add_column("links_down", [&] {
        return static_cast<double>(world.network().count_links(net::LinkState::kDown));
      });
      recorder.add_column("links_flapping", [&] {
        return static_cast<double>(
            world.network().count_links(net::LinkState::kFlapping));
      });
      recorder.add_column("open_tickets", [&] {
        return static_cast<double>(
            world.tickets().count(maintenance::TicketState::kOpen) +
            world.tickets().count(maintenance::TicketState::kDispatched) +
            world.tickets().count(maintenance::TicketState::kInProgress));
      });
      recorder.add_column("robot_busy_hours", [&] {
        return world.has_fleet() ? world.fleet().busy_hours() : 0.0;
      });
      recorder.add_column("technician_hours",
                          [&] { return world.technicians().labor_hours(); });
      recorder.start();
    }

    std::printf("smn_sim: %s, %zu devices, %zu links, %s, %d days, seed %d\n",
                bp.name().c_str(), bp.nodes().size(), bp.links().size(),
                core::to_string(level), days, args.geti("seed", 1));
    world.run_for(sim::Duration::days(days));

    // Summary.
    using analysis::Table;
    std::size_t resolved = 0, cancelled = 0, proactive = 0;
    analysis::SampleStats resolve_hours;
    for (const maintenance::Ticket& t : world.tickets().all()) {
      if (t.proactive) ++proactive;
      if (t.state == maintenance::TicketState::kResolved) {
        ++resolved;
        if (t.genuine && !t.proactive) {
          resolve_hours.push((t.resolved - t.opened).to_hours());
        }
      }
      if (t.state == maintenance::TicketState::kCancelled) ++cancelled;
    }

    Table summary{{"metric", "value"}};
    summary.add_row({"fleet availability",
                     Table::num(world.availability().fleet_availability(), 6)});
    summary.add_row(
        {"downtime link-hours", Table::num(world.availability().downtime_link_hours(), 1)});
    summary.add_row(
        {"impaired link-hours", Table::num(world.availability().impaired_link_hours(), 1)});
    summary.add_row({"faults injected", Table::num(world.injector().log().size())});
    summary.add_row({"tickets resolved", Table::num(resolved)});
    summary.add_row({"tickets cancelled (verified transients)", Table::num(cancelled)});
    summary.add_row({"proactive tickets", Table::num(proactive)});
    summary.add_row({"median ticket (h)", Table::num(resolve_hours.median())});
    summary.add_row({"p95 ticket (h)", Table::num(resolve_hours.percentile(95))});
    summary.add_row({"technician labor (h)", Table::num(world.technicians().labor_hours(), 1)});
    if (world.has_fleet()) {
      summary.add_row({"robot jobs", Table::num(world.fleet().completed())});
      summary.add_row({"robot busy (h)", Table::num(world.fleet().busy_hours(), 1)});
      summary.add_row({"robot escalations", Table::num(world.fleet().escalations())});
      summary.add_row({"robot breakdowns", Table::num(world.fleet().breakdowns())});
    }
    summary.add_row({"cascade collateral", Table::num(world.cascade().induced_count())});
    summary.add_row(
        {"supervision hours", Table::num(world.controller().supervision_hours(), 1)});
    if (world.has_storage()) {
      const storage::DataPlane& dp = world.storage();
      summary.add_row({"storage reads (degraded)",
                       Table::num(dp.reads()) + " (" + Table::num(dp.degraded_reads()) + ")"});
      summary.add_row({"storage repairs", Table::num(dp.repairs_completed())});
      summary.add_row(
          {"storage mean repair window (h)", Table::num(dp.mean_repair_window_hours(), 2)});
      summary.add_row({"storage data-loss fraction", Table::num(dp.data_loss_fraction(), 6)});
    }

    analysis::CostInputs costs;
    costs.technician_hours = world.technicians().labor_hours();
    costs.robot_busy_hours = world.has_fleet() ? world.fleet().busy_hours() : 0;
    costs.robot_units = world.has_fleet() ? world.fleet().units_online() : 0;
    costs.elapsed_years = days / 365.0;
    costs.downtime_link_hours = world.availability().downtime_link_hours();
    costs.impaired_link_hours = world.availability().impaired_link_hours();
    const analysis::CostBreakdown cost = analysis::compute_cost({}, costs);
    summary.add_row({"run cost ($)", Table::num(cost.total_usd, 0)});
    summary.print(std::cout);

    if (want_csv) {
      recorder.sample_now();
      std::ofstream csv{args.get("csv", "run.csv")};
      recorder.write_csv(csv);
      std::printf("time series written to %s (%zu rows)\n",
                  args.get("csv", "run.csv").c_str(), recorder.rows());
    }
    if (args.has("metrics")) {
      const std::string path = args.get("metrics", "metrics.prom");
      if (!world.obs().write_metrics_prom(path)) {
        std::fprintf(stderr, "cannot write metrics to %s\n", path.c_str());
        return 1;
      }
      std::printf("metrics written to %s (%zu instruments)\n", path.c_str(),
                  world.obs().metrics() != nullptr ? world.obs().metrics()->size() : 0);
    }
    if (args.has("trace")) {
      const std::string path = args.get("trace", "trace.json");
      if (!world.obs().write_trace_json(path)) {
        std::fprintf(stderr, "cannot write trace to %s\n", path.c_str());
        return 1;
      }
      const obs::TraceBuffer* tb = world.obs().trace();
      std::printf("trace written to %s (%zu events, %llu dropped)\n", path.c_str(),
                  tb != nullptr ? tb->size() : 0,
                  static_cast<unsigned long long>(tb != nullptr ? tb->dropped() : 0));
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
