// Shared lexical utilities for the repo's source-scanning tools.
//
// Both smn_lint (single-file determinism/hygiene rules) and smn_analyze
// (cross-TU shard-isolation and layering rules) scan C++ sources with plain
// token scanning — deliberately not libclang, so the tools build anywhere the
// simulator builds and run in milliseconds under ctest. The scanning
// primitives they share live here: comment/string stripping, token search at
// identifier boundaries, line mapping, and the `// <tool>: allow(<rule>)`
// suppression idiom.
#pragma once

#include <cstddef>
#include <set>
#include <string>

namespace smn::scan {

/// True for [A-Za-z0-9_] — the identifier alphabet token search respects.
[[nodiscard]] bool is_ident(char c);

/// Blanks comments and string/char literal contents (newlines preserved), so
/// token scans never fire on documentation or test fixtures embedded in
/// strings. Handles //, /* */, "..." with escapes, '...', and
/// R"delim(...)delim".
[[nodiscard]] std::string strip_comments_and_strings(const std::string& in);

/// Blanks comments only, keeping string literals intact. Used by include
/// parsing, where the payload *is* a quoted string; comment state still
/// tracks strings so a `//` inside a literal is not treated as a comment.
[[nodiscard]] std::string strip_comments(const std::string& in);

/// 1-based line number of byte offset `pos` in `text`.
[[nodiscard]] int line_of(const std::string& text, std::size_t pos);

/// Finds `token` at identifier boundaries, starting at `from`; npos if
/// absent.
[[nodiscard]] std::size_t find_token(const std::string& code, const std::string& token,
                                     std::size_t from);

/// Rules named by `// <marker>(<rule>)` comments anywhere in the raw file,
/// e.g. marker "smn-lint: allow" or "smn-analyze: allow". File-granular on
/// purpose: a suppression is a reviewed, greppable decision, not a per-line
/// pragma that silently accumulates.
[[nodiscard]] std::set<std::string> suppressed_rules(const std::string& raw,
                                                     const std::string& marker);

}  // namespace smn::scan
