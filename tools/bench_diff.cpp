// CLI wrapper around bench_diff_core.h. CI usage:
//
//   bench_diff --baseline prev/BENCH_sweep.json --current BENCH_sweep.json
//              --keys rps_serial,rps_parallel [--tolerance 0.05]
//              [--allow-missing-baseline]
//
// Exit codes: 0 ok (including --allow-missing-baseline with no baseline
// file), 1 regression or key missing from the current report, 2 usage /
// I/O error. One line per tracked key so the CI log is the report.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_diff_core.h"

namespace {

bool read_file(const std::string& path, std::string& out) {
  std::ifstream in{path, std::ios::binary};
  if (!in.good()) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  out = ss.str();
  return true;
}

std::vector<std::string> split_keys(const std::string& csv) {
  std::vector<std::string> out;
  std::string cur;
  for (const char c : csv) {
    if (c == ',') {
      if (!cur.empty()) out.push_back(cur);
      cur.clear();
    } else {
      cur += c;
    }
  }
  if (!cur.empty()) out.push_back(cur);
  return out;
}

int usage() {
  std::fprintf(stderr,
               "usage: bench_diff --baseline FILE --current FILE --keys k1,k2[,...]\n"
               "                  [--tolerance 0.05] [--allow-missing-baseline]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string baseline_path, current_path, keys_csv;
  double tolerance = 0.05;
  bool allow_missing_baseline = false;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    const bool has_next = i + 1 < argc;
    if (a == "--baseline" && has_next) {
      baseline_path = argv[++i];
    } else if (a == "--current" && has_next) {
      current_path = argv[++i];
    } else if (a == "--keys" && has_next) {
      keys_csv = argv[++i];
    } else if (a == "--tolerance" && has_next) {
      tolerance = std::strtod(argv[++i], nullptr);
    } else if (a == "--allow-missing-baseline") {
      allow_missing_baseline = true;
    } else {
      std::fprintf(stderr, "bench_diff: unknown argument '%s'\n", a.c_str());
      return usage();
    }
  }
  const std::vector<std::string> keys = split_keys(keys_csv);
  if (baseline_path.empty() || current_path.empty() || keys.empty()) return usage();

  std::string current_json;
  if (!read_file(current_path, current_json)) {
    std::fprintf(stderr, "bench_diff: cannot read current report %s\n", current_path.c_str());
    return 2;
  }
  std::string baseline_json;
  if (!read_file(baseline_path, baseline_json)) {
    if (allow_missing_baseline) {
      std::printf("bench_diff: no baseline at %s — first run, nothing to compare\n",
                  baseline_path.c_str());
      return 0;
    }
    std::fprintf(stderr, "bench_diff: cannot read baseline report %s\n", baseline_path.c_str());
    return 2;
  }

  const smn::benchdiff::DiffResult result =
      smn::benchdiff::diff(baseline_json, current_json, keys, tolerance);
  for (const smn::benchdiff::KeyDiff& d : result.keys) {
    if (d.missing_current) {
      std::printf("FAIL %-32s missing from current report\n", d.key.c_str());
    } else if (d.skipped) {
      std::printf("skip %-32s %12.2f (no baseline)\n", d.key.c_str(), *d.current);
    } else if (d.regression) {
      std::printf("FAIL %-32s %12.2f -> %12.2f (%.1f%%, tolerance %.1f%%)\n", d.key.c_str(),
                  *d.baseline, *d.current, (d.ratio - 1.0) * 100.0, tolerance * 100.0);
    } else {
      std::printf("ok   %-32s %12.2f -> %12.2f (%+.1f%%)\n", d.key.c_str(), *d.baseline,
                  *d.current, (d.ratio - 1.0) * 100.0);
    }
  }
  if (!result.ok) {
    std::fprintf(stderr, "bench_diff: performance regression beyond %.1f%% tolerance\n",
                 tolerance * 100.0);
    return 1;
  }
  return 0;
}
