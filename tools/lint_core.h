// smn-lint: the repo-specific determinism and hygiene linter.
//
// Plain token/structure scanning over C++ sources — deliberately not a
// libclang tool, so it builds anywhere the simulator builds and runs in
// milliseconds as a ctest test. Rules (see DESIGN.md "Determinism lint"):
//
//   banned-random        (src/ only)  std::rand / srand / std::random_device —
//                                     all randomness must flow through
//                                     sim::RngStream so seeds reproduce runs.
//   wall-clock           (src/ only)  time(nullptr) / std::chrono::system_clock —
//                                     simulated time only; wall clocks make
//                                     traces diverge between runs.
//   unordered-iteration  (everywhere) range-for over an unordered_{map,set}
//                                     whose body draws from an RngStream or
//                                     schedules simulator events: iteration
//                                     order is hash-dependent, so draws/events
//                                     land in different orders across
//                                     platforms and libstdc++ versions.
//   hot-copy             (src/ only)  net.servers() / net.links_between() /
//                                     net.devices_with_role() called inside a
//                                     for/while loop body: all return cached
//                                     const references — hoist the call (and
//                                     bind by reference) so the hot path does
//                                     not re-hash or re-copy per iteration.
//                                     Also flags bfs_distances() in loop
//                                     bodies: each call recomputes a full BFS.
//   hot-schedule         (src/ only)  schedule_every with a sub-minute literal
//                                     period (floods the queue on month-scale
//                                     runs), and schedule_* calls in for/while
//                                     bodies whose lambda captures exceed the
//                                     event queue's 48-byte inline buffer
//                                     ([=] capture-default or > 5 by-value
//                                     captures): each call heap-allocates —
//                                     capture indices or use a pooled fom.
//   pragma-once          (headers)    every header starts with #pragma once.
//   namespace            (src/ headers) public headers declare namespace smn.
//
// A file opts out of a rule with a suppression comment anywhere in the file:
//   // smn-lint: allow(unordered-iteration)
// Output is machine-readable `file:line: rule: message`.
#pragma once

#include <string>
#include <vector>

namespace smn::lint {

struct Finding {
  std::string file;
  int line = 0;  // 1-based; 0 for whole-file rules
  std::string rule;
  std::string message;
};

/// Lints a single translation unit given its contents. `in_src` enables the
/// src/-only rules (banned-random, wall-clock, namespace).
[[nodiscard]] std::vector<Finding> lint_source(const std::string& path,
                                               const std::string& content, bool in_src);

/// Recursively lints *.h / *.hpp / *.cpp / *.cc under each root, in sorted
/// path order. Files under a `src` root (or any path containing "/src/") get
/// the src/-only rules.
[[nodiscard]] std::vector<Finding> lint_tree(const std::vector<std::string>& roots);

/// `file:line: rule: message` (line omitted for whole-file rules).
[[nodiscard]] std::string format(const Finding& f);

}  // namespace smn::lint
