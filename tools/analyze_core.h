// smn-analyze: the repo-specific cross-translation-unit static analyzer.
//
// Where smn_lint checks each file in isolation, smn_analyze proves *structural*
// invariants of the whole src/ tree — the invariants the sharded multi-fabric
// refactor (ROADMAP) depends on. Plain token/structure scanning over C++
// sources, deliberately not a libclang tool, so it builds anywhere the
// simulator builds and runs in milliseconds as a ctest test (label `lint`).
//
// Rule families (see DESIGN.md "Static analysis"):
//
//   shared-mutable-state   Indexes every `static` / `thread_local` / `extern`
//                          declaration in src/ and flags the mutable ones
//                          (no `const`/`constexpr` in the declaration prefix,
//                          not function-like). Mutable statics are exactly the
//                          state that silently escapes one-World-per-replicate
//                          isolation today and one-domain-per-shard tomorrow:
//                          two replicates on different threads would observe
//                          each other through it, breaking the byte-identical
//                          trace-hash guarantee. Known limitation (documented,
//                          tested): a namespace-scope definition spelled with
//                          none of the three keywords evades the token scan —
//                          but such a global is only reachable from another TU
//                          via an `extern` declaration, which is caught.
//
//   layering               Parses quoted #include edges and enforces the
//                          module-layer DAG in DESIGN.md: a file may include
//                          only its own layer or below. Catches the "quick
//                          upward include" that turns the library into a ball
//                          of mud and makes per-shard builds impossible.
//                          Files in src/ that map to no layer are also flagged
//                          (new directories must be added to the DAG here and
//                          in DESIGN.md — this table is the machine-checked
//                          source of truth).
//
//   include-cycle          File-granularity cycle detection over the same
//                          include graph. The layer check alone allows cycles
//                          within a layer (e.g. net/ ↔ net/); this closes that
//                          hole.
//
// A file opts out of a rule with a suppression comment anywhere in the file:
//   // smn-analyze: allow(<rule>)
// matching the smn-lint idiom. For layering and include-cycle findings the
// suppression is honored on the *including* file. Output is machine-readable
// `file:line: rule: message`.
#pragma once

#include <map>
#include <string>
#include <vector>

namespace smn::analyze {

struct Finding {
  std::string file;
  int line = 0;  // 1-based; 0 for whole-file rules
  std::string rule;
  std::string message;
};

/// One #include directive. `path` is the payload between the delimiters;
/// `angled` distinguishes <system> from "project" includes. Includes inside
/// preprocessor conditionals are still recorded — an edge that exists in any
/// configuration is an edge the layering must permit.
struct IncludeDirective {
  int line = 0;
  std::string path;
  bool angled = false;
};

/// Parses every #include in `content`, tolerating leading whitespace, spaces
/// after '#', and trailing comments. Comment-blanked before parsing so
/// commented-out includes are not edges.
[[nodiscard]] std::vector<IncludeDirective> parse_includes(const std::string& content);

/// The module-layer DAG. Layer indices grow upward: a file at layer L may
/// include files at layers <= L. `layer_of` normalizes "src/"-prefixed and
/// absolute paths to the src-relative form used by project includes and
/// returns -1 for files outside the model (non-src paths, unknown layers).
[[nodiscard]] int layer_of(const std::string& path);
/// Human-readable name of a layer index ("base", "obs", ..., "runner").
[[nodiscard]] const char* layer_name(int layer);
/// True when `path` (normalized) lies under src/ and should have a layer.
[[nodiscard]] bool in_layer_model(const std::string& path);

/// src-relative path -> file content. The unit the whole-tree checks consume;
/// tests feed synthetic trees directly.
using FileMap = std::map<std::string, std::string>;

/// Shared-mutable-state audit for one file. Raw findings, no suppression
/// filtering (analyze_files applies suppressions).
[[nodiscard]] std::vector<Finding> check_shared_state(const std::string& path,
                                                      const std::string& content);

/// Layering audit over the whole tree: upward includes + unknown-layer files.
[[nodiscard]] std::vector<Finding> check_layering(const FileMap& files);

/// File-granularity include-cycle detection over the whole tree.
[[nodiscard]] std::vector<Finding> check_include_cycles(const FileMap& files);

/// All rules over an in-memory tree, with `// smn-analyze: allow(<rule>)`
/// suppressions applied and findings deduplicated + sorted by (file, line).
[[nodiscard]] std::vector<Finding> analyze_files(const FileMap& files);

/// Loads *.h / *.hpp / *.cpp / *.cc under `src_root` (recursively, sorted)
/// and runs analyze_files. Finding paths are prefixed with `src_root` so
/// output is clickable from the repo root.
[[nodiscard]] std::vector<Finding> analyze_tree(const std::string& src_root);

/// `file:line: rule: message` (line omitted for whole-file rules).
[[nodiscard]] std::string format(const Finding& f);

}  // namespace smn::analyze
