// smn_analyze — cross-TU shard-isolation / layering static analyzer CLI.
//
//   smn_analyze <src-root>
//   smn_analyze src
//
// Runs the three rule families in analyze_core.h (shared-mutable-state,
// layering, include-cycle) over the source tree, prints
// `file:line: rule: message` per violation, and exits 1 if any were found.
// Registered as the `smn_analyze` ctest test (label `lint`) and run in CI's
// lint job: the sharded-domain refactor (ROADMAP) must keep this gate green.
#include <cstdio>
#include <string>
#include <vector>

#include "analyze_core.h"

int main(int argc, char** argv) {
  std::vector<std::string> roots;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::printf("usage: smn_analyze <src-root>\n");
      return 0;
    }
    roots.push_back(arg);
  }
  if (roots.empty()) {
    std::fprintf(stderr, "smn_analyze: no source root given (try: smn_analyze src)\n");
    return 2;
  }
  try {
    std::size_t total = 0;
    for (const std::string& root : roots) {
      const std::vector<smn::analyze::Finding> findings = smn::analyze::analyze_tree(root);
      for (const smn::analyze::Finding& f : findings) {
        std::printf("%s\n", smn::analyze::format(f).c_str());
      }
      total += findings.size();
    }
    if (total > 0) {
      std::fprintf(stderr, "smn_analyze: %zu violation(s)\n", total);
      return 1;
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "smn_analyze: error: %s\n", e.what());
    return 2;
  }
  return 0;
}
