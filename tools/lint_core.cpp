#include "lint_core.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <utility>

#include "source_scan.h"

namespace smn::lint {
namespace {

using scan::find_token;
using scan::is_ident;
using scan::line_of;

// Names of variables declared as unordered_{map,set} in this file. A token
// heuristic: after the balanced template argument list, the next identifier
// (past &, *, whitespace) is taken as the variable name. Misses aliases on
// purpose — an alias is already a deliberate act the reviewer sees.
std::set<std::string> unordered_names(const std::string& code) {
  std::set<std::string> names;
  for (const std::string& kind : {std::string{"unordered_map"}, std::string{"unordered_set"}}) {
    for (std::size_t pos = find_token(code, kind, 0); pos != std::string::npos;
         pos = find_token(code, kind, pos + 1)) {
      std::size_t i = pos + kind.size();
      while (i < code.size() && std::isspace(static_cast<unsigned char>(code[i])) != 0) ++i;
      if (i >= code.size() || code[i] != '<') continue;
      int depth = 0;
      for (; i < code.size(); ++i) {
        if (code[i] == '<') ++depth;
        if (code[i] == '>') {
          --depth;
          if (depth == 0) {
            ++i;
            break;
          }
        }
      }
      while (i < code.size() && (std::isspace(static_cast<unsigned char>(code[i])) != 0 ||
                                 code[i] == '&' || code[i] == '*')) {
        ++i;
      }
      std::string name;
      while (i < code.size() && is_ident(code[i])) name += code[i++];
      if (!name.empty()) names.insert(name);
    }
  }
  return names;
}

// Hazards inside an unordered-container loop body: anything that draws from
// an RngStream or schedules simulator events makes hash order observable.
[[nodiscard]] bool body_has_ordering_hazard(const std::string& body) {
  static const char* const kHazards[] = {
      "rng",          "Rng",          ".uniform",  ".bernoulli", ".exponential",
      ".normal",      ".lognormal",   ".weibull",  ".poisson",   ".weighted_index",
      ".shuffle",     "schedule_at",  "schedule_after", "schedule_every",
  };
  for (const char* h : kHazards) {
    if (body.find(h) != std::string::npos) return true;
  }
  return false;
}

void check_unordered_iteration(const std::string& path, const std::string& code,
                               std::vector<Finding>& out) {
  const std::set<std::string> names = unordered_names(code);
  for (std::size_t pos = find_token(code, "for", 0); pos != std::string::npos;
       pos = find_token(code, "for", pos + 1)) {
    std::size_t i = pos + 3;
    while (i < code.size() && std::isspace(static_cast<unsigned char>(code[i])) != 0) ++i;
    if (i >= code.size() || code[i] != '(') continue;
    // Find the matching ')' and a range-for ':' at paren depth 1.
    int depth = 0;
    std::size_t colon = std::string::npos;
    std::size_t close = std::string::npos;
    for (std::size_t j = i; j < code.size(); ++j) {
      const char c = code[j];
      if (c == '(' || c == '[' || c == '{') ++depth;
      if (c == ')' || c == ']' || c == '}') {
        --depth;
        if (depth == 0 && c == ')') {
          close = j;
          break;
        }
      }
      if (c == ':' && depth == 1 && colon == std::string::npos) {
        if (j > 0 && (code[j - 1] == ':' || (j + 1 < code.size() && code[j + 1] == ':'))) {
          continue;  // `::` qualifier, not the range-for separator
        }
        colon = j;
      }
    }
    if (close == std::string::npos || colon == std::string::npos || colon > close) continue;
    const std::string range = code.substr(colon + 1, close - colon - 1);

    bool over_unordered = range.find("unordered") != std::string::npos;
    for (const std::string& name : names) {
      if (over_unordered) break;
      if (find_token(range, name, 0) != std::string::npos) over_unordered = true;
    }
    if (!over_unordered) continue;

    // Body: balanced braces, or a single statement up to ';'.
    std::size_t b = close + 1;
    while (b < code.size() && std::isspace(static_cast<unsigned char>(code[b])) != 0) ++b;
    std::string body;
    if (b < code.size() && code[b] == '{') {
      int bd = 0;
      std::size_t j = b;
      for (; j < code.size(); ++j) {
        if (code[j] == '{') ++bd;
        if (code[j] == '}') {
          --bd;
          if (bd == 0) break;
        }
      }
      body = code.substr(b, j - b + 1);
    } else {
      const std::size_t semi = code.find(';', b);
      body = code.substr(b, semi == std::string::npos ? std::string::npos : semi - b + 1);
    }
    if (body_has_ordering_hazard(body)) {
      out.push_back({path, line_of(code, pos), "unordered-iteration",
                     "range-for over an unordered container draws randomness or schedules "
                     "events; iteration order is hash-dependent — iterate a sorted copy or "
                     "an index vector instead"});
    }
  }
}

// [start, end) of a loop's body given the position just past its head's
// closing ')': balanced braces, or a single statement up to ';'.
[[nodiscard]] std::pair<std::size_t, std::size_t> loop_body_span(const std::string& code,
                                                                 std::size_t after_close) {
  std::size_t b = after_close;
  while (b < code.size() && std::isspace(static_cast<unsigned char>(code[b])) != 0) ++b;
  if (b < code.size() && code[b] == '{') {
    int bd = 0;
    std::size_t j = b;
    for (; j < code.size(); ++j) {
      if (code[j] == '{') ++bd;
      if (code[j] == '}') {
        --bd;
        if (bd == 0) return {b, j + 1};
      }
    }
    return {b, code.size()};
  }
  const std::size_t semi = code.find(';', b);
  return {b, semi == std::string::npos ? code.size() : semi + 1};
}

// Accessors that are wasteful when re-invoked per loop iteration. The roster
// calls (`servers`, `devices_with_role`, `links_between`) return cached const
// references — re-calling re-hashes or at best wastes a call, and the common
// mistake is binding the result by value, copying a vector per pass.
// `bfs_distances` is worse: each call recomputes a full breadth-first sweep
// into its out-parameter.
struct HotAccessor {
  const char* name;
  const char* message;
};

inline constexpr HotAccessor kHotAccessors[] = {
    {"servers",
     "servers() called inside a loop body: it returns a cached const reference — hoist the "
     "call before the loop and bind it by reference"},
    {"links_between",
     "links_between() called inside a loop body: it returns a cached const reference — hoist "
     "the call before the loop and bind it by reference"},
    {"devices_with_role",
     "devices_with_role() called inside a loop body: it returns a cached const reference — "
     "hoist the call before the loop and bind it by reference"},
    {"bfs_distances",
     "bfs_distances() called inside a loop body: each call recomputes a full BFS — hoist the "
     "call (or cache per root) outside the loop"},
};

void check_hot_copy(const std::string& path, const std::string& code,
                    std::vector<Finding>& out) {
  for (const std::string& kw : {std::string{"for"}, std::string{"while"}}) {
    for (std::size_t pos = find_token(code, kw, 0); pos != std::string::npos;
         pos = find_token(code, kw, pos + 1)) {
      std::size_t i = pos + kw.size();
      while (i < code.size() && std::isspace(static_cast<unsigned char>(code[i])) != 0) ++i;
      if (i >= code.size() || code[i] != '(') continue;
      int depth = 0;
      std::size_t close = std::string::npos;
      for (std::size_t j = i; j < code.size(); ++j) {
        const char c = code[j];
        if (c == '(' || c == '[' || c == '{') ++depth;
        if (c == ')' || c == ']' || c == '}') {
          --depth;
          if (depth == 0 && c == ')') {
            close = j;
            break;
          }
        }
      }
      if (close == std::string::npos) continue;
      const auto [body_begin, body_end] = loop_body_span(code, close + 1);

      for (const HotAccessor& accessor : kHotAccessors) {
        const std::string name{accessor.name};
        for (std::size_t hit = find_token(code, name, body_begin);
             hit != std::string::npos && hit < body_end;
             hit = find_token(code, name, hit + 1)) {
          // Must be a member call: `.accessor(` or `->accessor(`.
          const bool member = (hit >= 1 && code[hit - 1] == '.') ||
                              (hit >= 2 && code[hit - 2] == '-' && code[hit - 1] == '>');
          std::size_t after = hit + name.size();
          while (after < code.size() &&
                 std::isspace(static_cast<unsigned char>(code[after])) != 0) {
            ++after;
          }
          if (!member || after >= code.size() || code[after] != '(') continue;
          out.push_back({path, line_of(code, hit), "hot-copy", accessor.message});
        }
      }
    }
  }
}

// --- hot-schedule -----------------------------------------------------------
//
// The event queue stores callbacks in a 48-byte small-buffer; a capture list
// that blows that budget heap-allocates on every schedule call, and a
// sub-minute periodic multiplies queue pressure by orders of magnitude over a
// month-scale run. Both are legal, but in this codebase they are almost
// always a sign the code should be a state machine (sim/fom.h) or an
// event-driven wakeup instead.

/// Parses the first argument of a call whose '(' is at `open`; returns the
/// argument text (up to the depth-1 comma or the closing paren).
[[nodiscard]] std::string first_argument(const std::string& code, std::size_t open) {
  int depth = 0;
  for (std::size_t j = open; j < code.size(); ++j) {
    const char c = code[j];
    if (c == '(' || c == '[' || c == '{') ++depth;
    if (c == ')' || c == ']' || c == '}') {
      --depth;
      if (depth == 0) return code.substr(open + 1, j - open - 1);
    }
    if (c == ',' && depth == 1) return code.substr(open + 1, j - open - 1);
  }
  return {};
}

/// True when a duration expression is a literal below one minute:
/// microseconds(...)/milliseconds(...) always, seconds(x)/minutes(x) when the
/// literal parses below the threshold. Config fields and variables are not
/// flagged — only literals visible at the call site.
[[nodiscard]] bool is_subminute_literal(const std::string& arg) {
  for (const std::string& unit :
       {std::string{"microseconds"}, std::string{"milliseconds"}, std::string{"seconds"},
        std::string{"minutes"}}) {
    const std::size_t pos = find_token(arg, unit, 0);
    if (pos == std::string::npos) continue;
    if (unit == "microseconds" || unit == "milliseconds") return true;
    std::size_t i = pos + unit.size();
    while (i < arg.size() && (std::isspace(static_cast<unsigned char>(arg[i])) != 0)) ++i;
    if (i >= arg.size() || arg[i] != '(') continue;
    ++i;
    std::string num;
    while (i < arg.size() &&
           (std::isdigit(static_cast<unsigned char>(arg[i])) != 0 || arg[i] == '.')) {
      num += arg[i++];
    }
    while (i < arg.size() && std::isspace(static_cast<unsigned char>(arg[i])) != 0) ++i;
    if (num.empty() || i >= arg.size() || arg[i] != ')') continue;  // not a literal
    const double v = std::stod(num);
    if (unit == "seconds" ? v < 60.0 : v < 1.0) return true;
  }
  return false;
}

/// Extracts the first lambda capture list (text between '[' and its matching
/// ']') in the arguments of the call whose '(' is at `open`; npos-empty when
/// there is none.
[[nodiscard]] std::string lambda_captures(const std::string& code, std::size_t open) {
  int depth = 0;
  for (std::size_t j = open; j < code.size(); ++j) {
    const char c = code[j];
    if (c == '(' || c == '{') ++depth;
    if (c == ')' || c == '}') {
      --depth;
      if (depth == 0) return {};
    }
    if (c == '[' && depth >= 1) {
      const std::size_t end = code.find(']', j);
      if (end == std::string::npos) return {};
      return code.substr(j + 1, end - j - 1);
    }
  }
  return {};
}

/// Counts by-value captures (anything not starting with '&'); `cap_default`
/// is set when the list is a bare `=` capture-default.
[[nodiscard]] int count_by_value_captures(const std::string& caps, bool& cap_default) {
  cap_default = false;
  int by_value = 0;
  std::size_t start = 0;
  int depth = 0;
  auto consume = [&](std::size_t from, std::size_t to) {
    std::string item = caps.substr(from, to - from);
    const auto first = item.find_first_not_of(" \t\n");
    if (first == std::string::npos) return;
    item = item.substr(first);
    if (item[0] == '=') {
      cap_default = true;
    } else if (item[0] != '&') {
      ++by_value;
    }
  };
  for (std::size_t i = 0; i < caps.size(); ++i) {
    const char c = caps[i];
    if (c == '(' || c == '{' || c == '<') ++depth;
    if (c == ')' || c == '}' || c == '>') --depth;
    if (c == ',' && depth == 0) {
      consume(start, i);
      start = i + 1;
    }
  }
  consume(start, caps.size());
  return by_value;
}

void check_hot_schedule(const std::string& path, const std::string& code,
                        std::vector<Finding>& out) {
  // (a) sub-minute periodic literals.
  for (std::size_t pos = find_token(code, "schedule_every", 0); pos != std::string::npos;
       pos = find_token(code, "schedule_every", pos + 1)) {
    std::size_t open = pos + std::string{"schedule_every"}.size();
    while (open < code.size() && std::isspace(static_cast<unsigned char>(code[open])) != 0) {
      ++open;
    }
    if (open >= code.size() || code[open] != '(') continue;
    if (is_subminute_literal(first_argument(code, open))) {
      out.push_back({path, line_of(code, pos), "hot-schedule",
                     "schedule_every with a sub-minute literal period floods the event queue "
                     "over month-scale runs — poll lazily (arm only while there is something "
                     "to watch) or use an event-driven wakeup (sim/fom.h)"});
    }
  }

  // (b) schedule calls in loop bodies whose lambda captures exceed the
  // small-buffer budget (capture-default `=` or more than 5 by-value items).
  for (const std::string& kw : {std::string{"for"}, std::string{"while"}}) {
    for (std::size_t pos = find_token(code, kw, 0); pos != std::string::npos;
         pos = find_token(code, kw, pos + 1)) {
      std::size_t i = pos + kw.size();
      while (i < code.size() && std::isspace(static_cast<unsigned char>(code[i])) != 0) ++i;
      if (i >= code.size() || code[i] != '(') continue;
      int depth = 0;
      std::size_t close = std::string::npos;
      for (std::size_t j = i; j < code.size(); ++j) {
        const char c = code[j];
        if (c == '(' || c == '[' || c == '{') ++depth;
        if (c == ')' || c == ']' || c == '}') {
          --depth;
          if (depth == 0 && c == ')') {
            close = j;
            break;
          }
        }
      }
      if (close == std::string::npos) continue;
      const auto [body_begin, body_end] = loop_body_span(code, close + 1);

      for (const std::string& call :
           {std::string{"schedule_at"}, std::string{"schedule_after"},
            std::string{"schedule_every"}}) {
        for (std::size_t hit = find_token(code, call, body_begin);
             hit != std::string::npos && hit < body_end;
             hit = find_token(code, call, hit + 1)) {
          std::size_t open = hit + call.size();
          while (open < code.size() &&
                 std::isspace(static_cast<unsigned char>(code[open])) != 0) {
            ++open;
          }
          if (open >= code.size() || code[open] != '(') continue;
          bool cap_default = false;
          const int by_value = count_by_value_captures(lambda_captures(code, open), cap_default);
          if (cap_default || by_value > 5) {
            out.push_back(
                {path, line_of(code, hit), "hot-schedule",
                 call + " in a loop body with " +
                     (cap_default ? std::string{"a [=] capture-default"}
                                  : std::to_string(by_value) + " by-value captures") +
                     ": the closure likely exceeds the event queue's 48-byte inline buffer, "
                     "heap-allocating per iteration — capture pointers/indices or move the "
                     "state into a pooled fom (sim/fom.h)"});
          }
        }
      }
    }
  }
}

void check_banned_tokens(const std::string& path, const std::string& code, const char* rule,
                         const std::vector<std::string>& tokens, const std::string& why,
                         std::vector<Finding>& out) {
  for (const std::string& tok : tokens) {
    for (std::size_t pos = find_token(code, tok, 0); pos != std::string::npos;
         pos = find_token(code, tok, pos + 1)) {
      out.push_back({path, line_of(code, pos), rule, tok + " is banned in src/: " + why});
    }
  }
}

[[nodiscard]] bool is_header(const std::string& path) {
  return path.ends_with(".h") || path.ends_with(".hpp");
}

}  // namespace

std::vector<Finding> lint_source(const std::string& path, const std::string& content,
                                 bool in_src) {
  std::vector<Finding> all;
  const std::string code = scan::strip_comments_and_strings(content);

  if (in_src) {
    check_banned_tokens(path, code, "banned-random",
                        {"std::rand", "srand", "std::random_device", "random_device"},
                        "draw from a seeded sim::RngStream so runs reproduce", all);
    // steady_clock is banned in src/ too: it cannot leak into simulation
    // state, but timing belongs in bench/, not instrumented library code —
    // the obs subsystem keys everything to Simulator::now() instead.
    check_banned_tokens(path, code, "wall-clock",
                        {"time(nullptr)", "time(NULL)", "std::chrono::system_clock",
                         "system_clock", "std::chrono::steady_clock", "steady_clock"},
                        "use sim::TimePoint / Simulator::now(); wall clocks break trace "
                        "reproducibility",
                        all);
    check_hot_copy(path, code, all);
    check_hot_schedule(path, code, all);
  }
  check_unordered_iteration(path, code, all);
  if (is_header(path)) {
    if (content.find("#pragma once") == std::string::npos) {
      all.push_back({path, 0, "pragma-once", "header lacks #pragma once"});
    }
    if (in_src && code.find("namespace smn") == std::string::npos) {
      all.push_back({path, 0, "namespace",
                     "public header does not declare anything in namespace smn"});
    }
  }

  const std::set<std::string> allowed = scan::suppressed_rules(content, "smn-lint: allow");
  std::vector<Finding> out;
  std::set<std::pair<int, std::string>> reported;  // dedupe overlapping tokens
  for (Finding& f : all) {
    if (allowed.contains(f.rule)) continue;
    if (!reported.insert({f.line, f.rule}).second) continue;
    out.push_back(std::move(f));
  }
  return out;
}

std::vector<Finding> lint_tree(const std::vector<std::string>& roots) {
  namespace fs = std::filesystem;
  std::vector<Finding> out;
  for (const std::string& root : roots) {
    const fs::path root_path{root};
    const bool root_is_src = root_path.filename() == "src";
    // Directory iteration order is filesystem-dependent; sort so lint output
    // (and any downstream diffing of it) is itself deterministic.
    std::vector<fs::path> files;
    if (fs::is_regular_file(root_path)) {
      files.push_back(root_path);
    } else {
      for (const fs::directory_entry& e : fs::recursive_directory_iterator(root_path)) {
        if (!e.is_regular_file()) continue;
        const std::string ext = e.path().extension().string();
        if (ext == ".h" || ext == ".hpp" || ext == ".cpp" || ext == ".cc") {
          files.push_back(e.path());
        }
      }
    }
    std::sort(files.begin(), files.end());
    for (const fs::path& p : files) {
      std::ifstream f{p};
      std::stringstream buf;
      buf << f.rdbuf();
      const std::string generic = p.generic_string();
      const bool in_src = root_is_src || generic.find("/src/") != std::string::npos;
      std::vector<Finding> found = lint_source(generic, buf.str(), in_src);
      out.insert(out.end(), std::make_move_iterator(found.begin()),
                 std::make_move_iterator(found.end()));
    }
  }
  return out;
}

std::string format(const Finding& f) {
  std::stringstream s;
  s << f.file << ':';
  if (f.line > 0) s << f.line << ':';
  s << ' ' << f.rule << ": " << f.message;
  return s.str();
}

}  // namespace smn::lint
