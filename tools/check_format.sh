#!/usr/bin/env bash
# Dry-run clang-format check over the tree (registered as the `check_format`
# ctest test). Informational by design: it prints would-be edits but always
# exits 0, so an unformatted fragment never blocks tier-1 while the tooling
# matures. Skips cleanly when clang-format is not installed.
set -u
cd "$(dirname "$0")/.."

if ! command -v clang-format >/dev/null 2>&1; then
  echo "check_format: clang-format not installed; skipping"
  exit 0
fi

echo "check_format: $(clang-format --version) (dry run, informational)"
find src tests bench examples tools \( -name '*.h' -o -name '*.cpp' \) -print0 |
  sort -z |
  xargs -0 clang-format --dry-run 2>&1 | head -200
exit 0
