// smn_lint — repo-specific determinism/hygiene linter CLI.
//
//   smn_lint <root-dir-or-file>...
//   smn_lint src tests bench examples
//
// Prints `file:line: rule: message` per violation and exits 1 if any were
// found. Rules and the suppression syntax are documented in lint_core.h and
// DESIGN.md; registered as the `smn_lint` ctest test so tier-1 fails on
// violations.
#include <cstdio>
#include <string>
#include <vector>

#include "lint_core.h"

int main(int argc, char** argv) {
  std::vector<std::string> roots;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::printf("usage: smn_lint <root-dir-or-file>...\n");
      return 0;
    }
    roots.push_back(arg);
  }
  if (roots.empty()) {
    std::fprintf(stderr, "smn_lint: no roots given (try: smn_lint src tests bench examples)\n");
    return 2;
  }
  try {
    const std::vector<smn::lint::Finding> findings = smn::lint::lint_tree(roots);
    for (const smn::lint::Finding& f : findings) {
      std::printf("%s\n", smn::lint::format(f).c_str());
    }
    if (!findings.empty()) {
      std::fprintf(stderr, "smn_lint: %zu violation(s)\n", findings.size());
      return 1;
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "smn_lint: error: %s\n", e.what());
    return 2;
  }
  return 0;
}
