// E7 — Self-maintainability across topologies, and whether robots reopen the
// door to expander fabrics.
//
// §4: "the reason why these more efficient topologies are not deployed is due
// to the complexity to manually deploy the complex wiring looms. ... perhaps
// we can create a metric for self-maintainability of a network design?"
//
// Part 1: the static metric over the fabrics at matched server count.
// Part 2: dynamic — a Monte-Carlo sweep (runner::topology_sweep) runs each
// fabric under L0 humans and under an L4 fleet with the future-work
// cable-laying unit across `seeds` replicates on all cores, and compares
// mean annual maintenance cost and availability. The paper's optimism is the
// claim that the L4 gap between tree and expander shrinks.
// `bench_e7_topologies [days] [seeds] [jobs] [json_out]`.
#include <cstdlib>
#include <fstream>
#include <iostream>

#include "bench/common.h"
#include "runner/sweep.h"
#include "topology/metrics.h"

int main(int argc, char** argv) {
  using namespace smn;
  using analysis::Table;
  const int days = argc > 1 ? std::atoi(argv[1]) : 45;
  const auto seeds = static_cast<std::uint64_t>(argc > 2 ? std::atoi(argv[2]) : 8);
  const int jobs = argc > 3 ? std::atoi(argv[3]) : 0;

  bench::print_header("E7: topology self-maintainability",
                      "\"a metric for self-maintainability of a network design\" (S4)");

  const runner::SweepSpec spec =
      runner::topology_sweep(sim::Duration::days(days), /*first_seed=*/7, seeds);

  Table metric{{"topology", "links", "cable km", "bundling", "reach", "blast",
                "SM score"}};
  // Cells come fabric-major, level-minor (L0 then L4); the even cells carry
  // one blueprint per fabric for the static metric.
  for (std::size_t i = 0; i + 1 < spec.cells.size(); i += 2) {
    const topology::Blueprint& bp = spec.cells[i].blueprint;
    const std::string name = spec.cells[i].name.substr(0, spec.cells[i].name.rfind('/'));
    const topology::WiringStats w = topology::compute_wiring_stats(bp);
    const topology::SelfMaintainability m = topology::compute_self_maintainability(bp);
    metric.add_row({name, Table::num(w.links), Table::num(w.total_length_m / 1000.0, 2),
                    Table::num(m.bundling), Table::num(m.reachability),
                    Table::num(m.blast_radius), Table::num(m.score, 1)});
  }
  std::cout << "static metric:\n";
  metric.print(std::cout);

  runner::SweepRunner sweeper;
  runner::SweepRunner::Options opts;
  opts.jobs = jobs;
  const runner::SweepReport report = sweeper.run(spec, opts);

  Table dyn{{"topology", "L0 avail", "L0 $/yr", "L4 avail", "L4 $/yr", "L4/L0 cost"}};
  for (std::size_t i = 0; i + 1 < report.cells.size(); i += 2) {
    const runner::CellReport& l0 = report.cells[i];
    const runner::CellReport& l4 = report.cells[i + 1];
    const std::string name = l0.name.substr(0, l0.name.rfind('/'));
    const double l0_cost = l0.stats[runner::kAnnualCostUsd].mean;
    const double l4_cost = l4.stats[runner::kAnnualCostUsd].mean;
    dyn.add_row({name, Table::num(l0.stats[runner::kAvailability].mean, 6),
                 Table::num(l0_cost, 0), Table::num(l4.stats[runner::kAvailability].mean, 6),
                 Table::num(l4_cost, 0),
                 Table::num(l0_cost == 0 ? 0 : l4_cost / l0_cost, 2)});
  }
  std::cout << "\ndynamic (" << days << "-day runs, annualized, mean over " << seeds
            << " seeds):\n";
  dyn.print(std::cout);
  std::printf("\n%zu replicates in %.2fs, %.2f replicates/sec, jobs=%d\n",
              report.replicates_done, report.wall_seconds, report.replicates_per_sec,
              report.jobs);
  if (argc > 4) {
    std::ofstream out{argv[4]};
    out << runner::to_json(report) << '\n';
    std::printf("report written to %s\n", argv[4]);
  }
  std::cout << "\nexpected shape: expanders score lowest on the static metric (no\n"
               "bundling), but full automation lifts every fabric's availability and\n"
               "narrows the tree-vs-expander maintenance gap — the paper's argument\n"
               "that self-maintaining systems could make complex topologies viable.\n";
  return 0;
}
