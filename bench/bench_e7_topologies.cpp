// E7 — Self-maintainability across topologies, and whether robots reopen the
// door to expander fabrics.
//
// §4: "the reason why these more efficient topologies are not deployed is due
// to the complexity to manually deploy the complex wiring looms. ... perhaps
// we can create a metric for self-maintainability of a network design?"
//
// Part 1: the static metric over four fabrics at matched server count.
// Part 2: dynamic — run each fabric under L0 humans and under an L4 fleet
// with the future-work cable-laying unit, and compare annual maintenance
// cost and availability. The paper's optimism is the claim that the L4
// gap between tree and expander shrinks.
#include <iostream>

#include "analysis/cost.h"
#include "bench/common.h"
#include "topology/metrics.h"

namespace {

using namespace smn;

struct Fabric {
  const char* name;
  topology::Blueprint bp;
};

struct DynRow {
  double availability = 0;
  double cost_usd = 0;
};

DynRow run(const topology::Blueprint& bp, core::AutomationLevel level, int days,
           std::uint64_t seed) {
  scenario::WorldConfig cfg = bench::standard_world(level, seed);
  cfg.controller.proactive.enabled = false;
  scenario::World world{bp, cfg};
  world.run_for(sim::Duration::days(days));

  DynRow r;
  r.availability = world.availability().fleet_availability();
  analysis::CostInputs in;
  in.technician_hours = world.technicians().labor_hours();
  in.robot_busy_hours = world.has_fleet() ? world.fleet().busy_hours() : 0.0;
  in.robot_units = world.has_fleet() ? world.fleet().units_online() : 0;
  in.elapsed_years = days / 365.0;
  in.downtime_link_hours = world.availability().downtime_link_hours();
  in.impaired_link_hours = world.availability().impaired_link_hours();
  r.cost_usd = analysis::compute_cost(analysis::CostConfig{}, in).total_usd * 365.0 / days;
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace smn;
  using analysis::Table;
  const int days = argc > 1 ? std::atoi(argv[1]) : 45;
  const std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 7;

  bench::print_header("E7: topology self-maintainability",
                      "\"a metric for self-maintainability of a network design\" (S4)");

  std::vector<Fabric> fabrics;
  fabrics.push_back({"fat-tree k=8", topology::build_fat_tree({.k = 8})});
  fabrics.push_back({"leaf-spine 32x8",
                     topology::build_leaf_spine(
                         {.leaves = 32, .spines = 8, .servers_per_leaf = 4})});
  fabrics.push_back({"jellyfish d=10",
                     topology::build_jellyfish({.switches = 32,
                                                .network_degree = 10,
                                                .servers_per_switch = 4,
                                                .seed = 7})});
  fabrics.push_back({"xpander d=7 L=4",
                     topology::build_xpander({.network_degree = 7,
                                              .lift = 4,
                                              .servers_per_switch = 4,
                                              .seed = 7})});
  fabrics.push_back({"dragonfly a=4 h=2",
                     topology::build_dragonfly({.routers_per_group = 4,
                                                .servers_per_router = 4,
                                                .global_per_router = 2})});
  fabrics.push_back({"torus 8x8",
                     topology::build_torus2d({.x = 8, .y = 8, .servers_per_node = 4})});

  Table metric{{"topology", "links", "cable km", "bundling", "reach", "blast",
                "SM score"}};
  for (const Fabric& f : fabrics) {
    const topology::WiringStats w = topology::compute_wiring_stats(f.bp);
    const topology::SelfMaintainability m = topology::compute_self_maintainability(f.bp);
    metric.add_row({f.name, Table::num(w.links), Table::num(w.total_length_m / 1000.0, 2),
                    Table::num(m.bundling), Table::num(m.reachability),
                    Table::num(m.blast_radius), Table::num(m.score, 1)});
  }
  std::cout << "static metric:\n";
  metric.print(std::cout);

  Table dyn{{"topology", "L0 avail", "L0 $/yr", "L4 avail", "L4 $/yr", "L4/L0 cost"}};
  for (const Fabric& f : fabrics) {
    const DynRow l0 = run(f.bp, core::AutomationLevel::kL0_Manual, days, seed);
    const DynRow l4 = run(f.bp, core::AutomationLevel::kL4_FullAutomation, days, seed);
    dyn.add_row({f.name, Table::num(l0.availability, 6), Table::num(l0.cost_usd, 0),
                 Table::num(l4.availability, 6), Table::num(l4.cost_usd, 0),
                 Table::num(l0.cost_usd == 0 ? 0 : l4.cost_usd / l0.cost_usd, 2)});
  }
  std::cout << "\ndynamic (45-day runs, annualized):\n";
  dyn.print(std::cout);
  std::cout << "\nexpected shape: expanders score lowest on the static metric (no\n"
               "bundling), but full automation lifts every fabric's availability and\n"
               "narrows the tree-vs-expander maintenance gap — the paper's argument\n"
               "that self-maintaining systems could make complex topologies viable.\n";
  return 0;
}
