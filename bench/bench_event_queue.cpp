// Event-engine micro-bench: the tracked perf numbers for the slot-arena
// Simulator (sim/event_queue.h) and its SmallFn callback vehicle.
//
// Measures schedule->pop throughput, schedule->cancel churn (eager slot
// reclaim), periodic-task tick rate, and the inline-vs-heap capture gap.
// The hard gate is the allocation counter: after warm-up, scheduling and
// executing workflow-style wakeups (16-byte captures, the fom pattern) must
// perform ZERO heap allocations per event — that is the contract the
// continuation scheduler is built on. A nonzero steady state exits 1 and
// fails CI's bench-smoke job.
//
// Usage: bench_event_queue [events] [json_out=BENCH_event.json]
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <new>
#include <string>
#include <vector>

#include "analysis/report.h"
#include "runner/json_writer.h"
#include "sim/callback.h"
#include "sim/event_queue.h"

namespace {
std::atomic<std::uint64_t> g_allocs{0};
}  // namespace

// Program-wide replacement so every heap allocation in the process is
// counted; the gate measures deltas around the hot loops.
void* operator new(std::size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size == 0 ? 1 : size)) return p;
  throw std::bad_alloc{};
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

using namespace smn;

[[nodiscard]] double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

/// Schedule `n` events with fom-sized (16-byte) captures and run them all;
/// returns events/sec over the schedule+pop round trip.
[[nodiscard]] double bench_schedule_pop(int n) {
  sim::Simulator sim;
  std::uint64_t sink = 0;
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < n; ++i) {
    sim.schedule_after(sim::Duration::seconds(1.0 + i % 977), [&sink, i] {
      sink += static_cast<std::uint64_t>(i);
    });
  }
  sim.run();
  const double dt = seconds_since(t0);
  if (sink == 0xdeadbeef) std::abort();  // keep the work observable
  return static_cast<double>(n) / dt;
}

/// Schedule-then-cancel churn: every slot is acquired, tombstoned, and
/// eagerly reclaimed. Returns (schedule+cancel) pairs/sec.
[[nodiscard]] double bench_schedule_cancel(int n) {
  sim::Simulator sim;
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < n; ++i) {
    const sim::EventId id =
        sim.schedule_after(sim::Duration::seconds(1.0 + i % 977), [] {});
    sim.cancel(id);
  }
  const double dt = seconds_since(t0);
  sim.run();
  return static_cast<double>(n) / dt;
}

/// `tasks` periodic timers ticking through `sim_hours` of simulated time —
/// the telemetry/injector cadence pattern. Returns ticks/sec of wall time.
[[nodiscard]] double bench_periodic_churn(int tasks, double sim_hours) {
  sim::Simulator sim;
  std::uint64_t ticks = 0;
  std::vector<sim::EventId> ids;
  ids.reserve(static_cast<std::size_t>(tasks));
  for (int i = 0; i < tasks; ++i) {
    ids.push_back(sim.schedule_every(sim::Duration::minutes(1.0 + i % 7),
                                     [&ticks] { ++ticks; }));
  }
  const auto t0 = std::chrono::steady_clock::now();
  sim.run_until(sim::TimePoint{} + sim::Duration::hours(sim_hours));
  const double dt = seconds_since(t0);
  for (const sim::EventId id : ids) sim.cancel_periodic(id);
  sim.run();
  return static_cast<double>(ticks) / dt;
}

/// Events/sec when every capture exceeds the inline budget (forced heap
/// fallback) — the gap against bench_schedule_pop is what the SBO buys.
[[nodiscard]] double bench_heap_capture(int n) {
  struct Fat {
    char bytes[sim::kSmallFnInlineBytes + 8] = {};
  };
  sim::Simulator sim;
  std::uint64_t sink = 0;
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < n; ++i) {
    sim.schedule_after(sim::Duration::seconds(1.0 + i % 977),
                       [&sink, fat = Fat{}] { sink += fat.bytes[0] + 1; });
  }
  sim.run();
  const double dt = seconds_since(t0);
  if (sink == 0xdeadbeef) std::abort();
  return static_cast<double>(n) / dt;
}

/// The gate: steady-state allocations per workflow wakeup. Warm-up grows the
/// arena and heap to their working size; afterwards, schedule/execute and
/// schedule/cancel cycles with fom-sized captures must not touch the heap.
struct AllocProbe {
  double allocs_per_event = -1.0;
  std::uint64_t total_allocs = 0;
  std::uint64_t events = 0;
};

[[nodiscard]] AllocProbe bench_steady_state_allocs(int rounds, int batch) {
  sim::Simulator sim;
  std::uint64_t sink = 0;
  std::vector<sim::EventId> cancels;  // capacity reached in warm-up, then reused
  auto one_round = [&] {
    cancels.clear();
    for (int i = 0; i < batch; ++i) {
      // The fom wakeup shape: one pointer + one index, well inside the
      // inline budget.
      sim.schedule_after(sim::Duration::seconds(60.0 + i), [&sink, i] {
        sink += static_cast<std::uint64_t>(i);
      });
      cancels.push_back(
          sim.schedule_after(sim::Duration::seconds(90.0 + i), [&sink, i] {
            sink += static_cast<std::uint64_t>(i) * 3;
          }));
    }
    // Half the pending work is cancelled (re-armed wakeups), half executes —
    // then the round drains fully so every round sees the same working set.
    for (const sim::EventId id : cancels) sim.cancel(id);
    sim.run_until(sim.now() + sim::Duration::hours(2.0));
  };
  one_round();  // warm-up: arena, heap, and cancels vector reach working size

  AllocProbe probe;
  const std::uint64_t before = g_allocs.load(std::memory_order_relaxed);
  for (int r = 0; r < rounds; ++r) one_round();
  probe.total_allocs = g_allocs.load(std::memory_order_relaxed) - before;
  probe.events = static_cast<std::uint64_t>(rounds) * 2 * static_cast<std::uint64_t>(batch);
  probe.allocs_per_event =
      static_cast<double>(probe.total_allocs) / static_cast<double>(probe.events);
  if (sink == 0xdeadbeef) std::abort();
  return probe;
}

}  // namespace

int main(int argc, char** argv) {
  using analysis::Table;
  const int events = argc > 1 ? std::atoi(argv[1]) : 2000000;
  const char* json_path = argc > 2 ? argv[2] : "BENCH_event.json";

  std::printf("EVENT ENGINE: slot-arena simulator micro-bench\n");
  std::printf("  every workflow wakeup in every experiment goes through this queue;\n");
  std::printf("  CI tracks events/sec and gates on zero steady-state allocations\n\n");

  const double pop_eps = bench_schedule_pop(events);
  const double cancel_ops = bench_schedule_cancel(events);
  const double periodic_tps = bench_periodic_churn(64, 48.0);
  const double heap_eps = bench_heap_capture(events);
  const AllocProbe probe = bench_steady_state_allocs(32, 4096);

  Table table{{"benchmark", "rate", "unit"}};
  table.add_row({"schedule+pop (16B capture)", Table::num(pop_eps, 0), "events/s"});
  table.add_row({"schedule+cancel churn", Table::num(cancel_ops, 0), "pairs/s"});
  table.add_row({"periodic ticks (64 timers)", Table::num(periodic_tps, 0), "ticks/s"});
  table.add_row({"schedule+pop (heap capture)", Table::num(heap_eps, 0), "events/s"});
  table.add_row({"SBO speedup", Table::num(heap_eps > 0 ? pop_eps / heap_eps : 0.0, 2), "x"});
  table.add_row({"steady-state allocations", Table::num(probe.allocs_per_event, 6),
                 "allocs/event"});
  table.print(std::cout);
  std::printf("\nSmallFn: %zu bytes total, %zu-byte inline buffer\n", sizeof(sim::SmallFn),
              sim::kSmallFnInlineBytes);

  {
    runner::JsonWriter w;
    w.begin_object();
    w.kv("schema", "smn-bench-event-v1");
    w.kv("events", events);
    w.kv("schedule_pop_events_per_sec", pop_eps);
    w.kv("schedule_cancel_pairs_per_sec", cancel_ops);
    w.kv("periodic_ticks_per_sec", periodic_tps);
    w.kv("heap_capture_events_per_sec", heap_eps);
    w.kv("sbo_speedup", heap_eps > 0 ? pop_eps / heap_eps : 0.0);
    w.kv("steady_state_allocs_per_event", probe.allocs_per_event);
    w.kv("steady_state_alloc_total", static_cast<double>(probe.total_allocs));
    w.kv("steady_state_events", static_cast<double>(probe.events));
    w.kv("smallfn_bytes", static_cast<double>(sizeof(sim::SmallFn)));
    w.kv("smallfn_inline_budget", static_cast<double>(sim::kSmallFnInlineBytes));
    w.end_object();
    std::ofstream out{json_path};
    out << w.str() << "\n";
    std::printf("report written to %s\n", json_path);
  }

  if (probe.total_allocs != 0) {
    std::fprintf(stderr,
                 "FAIL: %llu heap allocations across %llu steady-state events — workflow "
                 "wakeups must be allocation-free\n",
                 static_cast<unsigned long long>(probe.total_allocs),
                 static_cast<unsigned long long>(probe.events));
    return 1;
  }
  return 0;
}
