// E2 — Availability and reliability by automation level.
//
// §2: "This will enhance datacenter reliability, availability, and
// efficiency." Same workload as E1; reports fleet availability (and nines),
// impaired time, downtime link-hours, and open-ticket backlog.
#include <iostream>

#include "bench/common.h"

int main(int argc, char** argv) {
  using namespace smn;
  using analysis::Table;
  const int days = argc > 1 ? std::atoi(argv[1]) : 60;
  const std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 2;

  bench::print_header("E2: availability by automation level",
                      "\"enhance datacenter reliability, availability, and efficiency\" (S2)");

  Table table{{"level", "availability", "nines", "impaired%", "down lh", "planned lh",
               "impaired lh", "backlog", "faults"}};
  for (const core::AutomationLevel level : bench::kAllLevels) {
    const topology::Blueprint bp = bench::standard_fabric();
    scenario::World world{bp, bench::standard_world(level, seed)};
    world.run_for(sim::Duration::days(days));

    const auto& avail = world.availability();
    const std::size_t backlog =
        world.tickets().count(maintenance::TicketState::kOpen) +
        world.tickets().count(maintenance::TicketState::kDispatched) +
        world.tickets().count(maintenance::TicketState::kInProgress);
    table.add_row({core::to_string(level), Table::num(avail.fleet_availability(), 6),
                   Table::num(analysis::AvailabilityTracker::nines(avail.fleet_availability()), 2),
                   Table::num(100.0 * avail.fleet_impairment(), 3),
                   Table::num(avail.downtime_link_hours(), 1),
                   Table::num(avail.planned_maintenance_link_hours(), 1),
                   Table::num(avail.impaired_link_hours(), 1), Table::num(backlog),
                   Table::num(world.injector().log().size())});
  }
  table.print(std::cout);
  std::cout << "\nexpected shape: impaired time collapses (~25x) as soon as robots\n"
               "repair in minutes (L2+); unplanned downtime and nines peak at L3/L4,\n"
               "where transient verification also stops the controller from rolling\n"
               "(and occasionally botching) hardware for episodes that self-clear.\n"
               "Planned link-hours (deliberate drains around maintenance, mostly in\n"
               "low-utilization windows) are the price of cascade protection and are\n"
               "accounted separately from failures.\n";
  return 0;
}
