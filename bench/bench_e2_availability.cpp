// E2 — Availability and reliability by automation level.
//
// §2: "This will enhance datacenter reliability, availability, and
// efficiency." Same workload as E1; reports fleet availability (and nines),
// impaired time, downtime link-hours, and open-ticket backlog.
//
// A Monte-Carlo sweep (runner::SweepRunner): every number is a mean over
// `seeds` replicates executed on all cores, with a 95% CI on availability —
// not a single-seed anecdote. `bench_e2_availability [days] [seeds] [jobs]
// [json_out]`.
#include <cstdlib>
#include <fstream>
#include <iostream>

#include "bench/common.h"
#include "runner/sweep.h"

int main(int argc, char** argv) {
  using namespace smn;
  using analysis::Table;
  const int days = argc > 1 ? std::atoi(argv[1]) : 60;
  const auto seeds = static_cast<std::uint64_t>(argc > 2 ? std::atoi(argv[2]) : 8);
  const int jobs = argc > 3 ? std::atoi(argv[3]) : 0;

  bench::print_header("E2: availability by automation level",
                      "\"enhance datacenter reliability, availability, and efficiency\" (S2)");

  const runner::SweepSpec spec =
      runner::availability_sweep(sim::Duration::days(days), /*first_seed=*/2, seeds);
  runner::SweepRunner sweeper;
  runner::SweepRunner::Options opts;
  opts.jobs = jobs;
  const runner::SweepReport report = sweeper.run(spec, opts);

  Table table{{"level", "availability", "ci95", "nines", "impaired%", "down lh",
               "planned lh", "impaired lh", "backlog", "faults"}};
  for (const runner::CellReport& cell : report.cells) {
    table.add_row({cell.name, Table::num(cell.stats[runner::kAvailability].mean, 6),
                   Table::num(cell.stats[runner::kAvailability].ci95, 6),
                   Table::num(cell.stats[runner::kNines].mean, 2),
                   Table::num(100.0 * cell.stats[runner::kImpairedFraction].mean, 3),
                   Table::num(cell.stats[runner::kDowntimeLinkHours].mean, 1),
                   Table::num(cell.stats[runner::kPlannedLinkHours].mean, 1),
                   Table::num(cell.stats[runner::kImpairedLinkHours].mean, 1),
                   Table::num(cell.stats[runner::kOpenBacklog].mean, 1),
                   Table::num(cell.stats[runner::kFaultsInjected].mean, 0)});
  }
  table.print(std::cout);
  std::printf("\n%zu replicates (%llu seeds x %zu levels) in %.2fs, %.2f replicates/sec, "
              "jobs=%d\n",
              report.replicates_done, static_cast<unsigned long long>(report.seeds),
              report.cells.size(), report.wall_seconds, report.replicates_per_sec,
              report.jobs);
  if (argc > 4) {
    std::ofstream out{argv[4]};
    out << runner::to_json(report) << '\n';
    std::printf("report written to %s\n", argv[4]);
  }
  std::cout << "\nexpected shape: impaired time collapses (~25x) as soon as robots\n"
               "repair in minutes (L2+); unplanned downtime and nines peak at L3/L4,\n"
               "where transient verification also stops the controller from rolling\n"
               "(and occasionally botching) hardware for episodes that self-clear.\n"
               "Planned link-hours (deliberate drains around maintenance, mostly in\n"
               "low-utilization windows) are the price of cascade protection and are\n"
               "accounted separately from failures.\n";
  return 0;
}
