// E16 — Probe-based fault localization with robot confirmation.
//
// §4: "Fault detection and isolation: Integrating robotics with network
// monitoring tools and developing algorithms for precise fault localization
// is another area of interest."
//
// Sweeps probe budgets: for each trial a random optical uplink end-face is
// contaminated into Degraded, tomography ranks suspects from end-to-end
// probe losses, and a robot confirms suspects by end-face inspection in rank
// order. Reports top-1 accuracy, median inspections-to-pinpoint, and the
// confirmation time: minutes of robot inspection vs a technician truck roll
// per suspect.
#include <iostream>

#include "bench/common.h"
#include "robotics/cleaner.h"
#include "telemetry/localization.h"

int main(int argc, char** argv) {
  using namespace smn;
  using analysis::Table;
  const int trials = argc > 1 ? std::atoi(argv[1]) : 40;
  const std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 16;

  bench::print_header("E16: fault localization",
                      "\"algorithms for precise fault localization\" (S4)");

  const topology::Blueprint bp = bench::standard_fabric();
  sim::RngFactory rngs{seed};
  sim::RngStream pick = rngs.stream("pick");

  Table table{{"probes", "top-1 acc", "top-3 acc", "found", "median inspections",
               "robot confirm (min)", "tech confirm (h)"}};
  robotics::CleaningModel cleaner;

  for (const int probes : {25, 50, 100, 200, 400, 800}) {
    int top1 = 0, top3 = 0, found = 0;
    analysis::SampleStats inspections;
    for (int t = 0; t < trials; ++t) {
      sim::Simulator sim;
      net::Network::Config ncfg;
      ncfg.aoc_max_m = 5.0;
      ncfg.seed = seed + static_cast<unsigned>(t);
      net::Network net{bp, ncfg, sim};

      // Contaminate one random cleanable uplink into Degraded.
      std::vector<net::LinkId> optical;
      for (const net::Link& l : net.links()) {
        if (net::is_cleanable(l.medium)) optical.push_back(l.id);
      }
      const net::LinkId culprit = optical[pick.index(optical.size())];
      net.link_mut(culprit).end_a.condition.contamination = 0.45;
      net.refresh_link(culprit);

      telemetry::FaultLocalizer::Config lcfg;
      lcfg.false_positive = 0.002;
      telemetry::FaultLocalizer loc{
          net, rngs.stream("probe" + std::to_string(probes) + "_" + std::to_string(t)),
          lcfg};
      const auto suspects = loc.localize(loc.run_probes(probes));
      if (!suspects.empty() && suspects[0].link == culprit) ++top1;
      for (std::size_t i = 0; i < std::min<std::size_t>(3, suspects.size()); ++i) {
        if (suspects[i].link == culprit) {
          ++top3;
          break;
        }
      }
      const int visits = loc.inspections_to_pinpoint(suspects);
      if (visits > 0) {
        ++found;
        inspections.push(visits);
      }
    }
    const double med_inspections = inspections.median();
    // Robot confirmation: each inspection is an in-place end-face imaging
    // visit (~inspect_only for 4 cores + short travel). Technician: each
    // suspect is a dispatch + manual scope inspection (~2 h median).
    const double robot_minutes =
        med_inspections * (cleaner.inspect_only(4).to_minutes() + 3.0);
    const double tech_hours = med_inspections * 2.0;
    table.add_row({Table::num(probes), Table::num(100.0 * top1 / trials, 1),
                   Table::num(100.0 * top3 / trials, 1),
                   Table::num(100.0 * found / trials, 1), Table::num(med_inspections, 1),
                   Table::num(robot_minutes, 1), Table::num(tech_hours, 1)});
  }
  table.print(std::cout);
  std::cout << "\nexpected shape: top-1 accuracy climbs with probe budget toward\n"
               "~90+%, and the median robot confirmation is a handful of minutes of\n"
               "imaging — versus hours of technician truck rolls to walk the same\n"
               "suspect list. Localization precision is what §3.2 says reactive\n"
               "repair lacks (\"hard to pin point the cause of errors\").\n";
  return 0;
}
