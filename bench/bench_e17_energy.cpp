// E17 — Energy efficiency through link parking.
//
// §4: "Energy efficiency: The community could also rethink how to enhance
// energy efficiency through optimized resource management facilitated by
// robotic systems."
//
// A leaf-spine with 3x-redundant uplinks runs 60 days under background
// faults. The EnergyManager parks surplus parallel members overnight (lasers
// off) and wakes them at peak or when a live sibling dies. We report energy
// saved, the emergency-unpark count, and whether capacity availability paid
// for it — under human-speed and robot-speed repair (parking while repairs
// take days leans much harder on the remaining member).
#include <iostream>

#include "bench/common.h"
#include "core/energy.h"
#include "net/routing.h"

namespace {

using namespace smn;

struct Row {
  std::string name;
  double energy_kwh = 0;
  double saved_pct = 0;  // of total fabric transceiver energy
  std::size_t emergency_unparks = 0;
  double capacity_availability = 0;
};

Row run(const char* name, core::AutomationLevel level, bool parking, int days,
        std::uint64_t seed) {
  const topology::LeafSpineParams params{
      .leaves = 12, .spines = 4, .servers_per_leaf = 8, .uplinks_per_spine = 3};
  const topology::Blueprint bp = topology::build_leaf_spine(params);
  scenario::WorldConfig cfg = bench::standard_world(level, seed);
  cfg.controller.proactive.enabled = false;
  cfg.faults.transceiver_afr = 0.15;
  scenario::World world{bp, cfg};

  core::EnergyManager::Config ecfg;
  ecfg.enabled = parking;
  core::EnergyManager energy{world.network(), ecfg};
  energy.start();

  // Capacity SLO sampling: every leaf reaches every spine on >= 1 live link.
  const auto leaves = world.network().devices_with_role(topology::NodeRole::kTorSwitch);
  const auto spines = world.network().devices_with_role(topology::NodeRole::kSpineSwitch);
  std::size_t samples = 0, good = 0;
  world.simulator().schedule_every(sim::Duration::minutes(30), [&] {
    for (const net::DeviceId leaf : leaves) {
      bool full = true;
      for (const net::DeviceId spine : spines) {
        if (net::live_parallel_links(world.network(), leaf, spine) < 1) {
          full = false;
          break;
        }
      }
      ++samples;
      if (full) ++good;
    }
  });
  world.run_for(sim::Duration::days(days));

  Row r;
  r.name = name;
  r.energy_kwh = energy.energy_saved_kwh();
  const double fabric_links = params.leaves * params.spines * params.uplinks_per_spine;
  const double total_kwh = fabric_links * 24.0 /*W*/ * days * 24.0 / 1000.0;
  r.saved_pct = 100.0 * r.energy_kwh / total_kwh;
  r.emergency_unparks = energy.emergency_unparks();
  r.capacity_availability =
      samples == 0 ? 1.0 : static_cast<double>(good) / static_cast<double>(samples);
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace smn;
  using analysis::Table;
  const int days = argc > 1 ? std::atoi(argv[1]) : 60;
  const std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 17;

  bench::print_header("E17: energy via link parking",
                      "\"enhance energy efficiency through optimized resource management "
                      "facilitated by robotic systems\" (S4)");

  Table table{{"configuration", "fabric energy saved", "saved kWh", "emergency unparks",
               "capacity availability"}};
  const Row rows[] = {
      run("L0, no parking", core::AutomationLevel::kL0_Manual, false, days, seed),
      run("L0 + parking", core::AutomationLevel::kL0_Manual, true, days, seed),
      run("L3, no parking", core::AutomationLevel::kL3_HighAutomation, false, days, seed),
      run("L3 + parking", core::AutomationLevel::kL3_HighAutomation, true, days, seed),
  };
  for (const Row& r : rows) {
    table.add_row({r.name, analysis::Table::num(r.saved_pct, 1) + "%",
                   Table::num(r.energy_kwh, 0), Table::num(r.emergency_unparks),
                   Table::num(r.capacity_availability, 6)});
  }
  table.print(std::cout);
  std::cout << "\nexpected shape: parking de-energizes roughly the overnight share of\n"
               "the redundant fabric (~20-30% of transceiver energy) at negligible\n"
               "capacity cost when repair is robot-fast; under human-speed repair the\n"
               "same policy leans on lone surviving members for days at a time, so\n"
               "emergency unparks carry real risk — energy savings are another\n"
               "dividend of a fast repair loop.\n";
  return 0;
}
