// E5 — Right-provisioning: redundancy needed vs repair speed.
//
// §2: "there is real potential for right-provisioning redundant hardware
// components, thus reducing the need for excessive overprovisioned online
// redundancy due to greater control over the window of vulnerability during
// hardware failures."
//
// Sweeps the number of parallel leaf->spine uplinks (the overprovisioning
// knob) against human-speed vs robot-speed repair, measuring how often a
// leaf keeps its required fabric capacity (>= one live uplink per spine),
// and prices each configuration with the cost model.
#include <iostream>

#include "analysis/cost.h"
#include "bench/common.h"
#include "net/routing.h"

namespace {

using namespace smn;

struct Row {
  int uplinks;
  std::string level;
  double capacity_availability = 0;  // fraction of leaf-samples at full service
  double cost_usd = 0;
};

Row run(int uplinks, core::AutomationLevel level, int days, std::uint64_t seed) {
  const topology::LeafSpineParams params{.leaves = 12,
                                         .spines = 4,
                                         .servers_per_leaf = 8,
                                         .uplinks_per_spine = uplinks};
  const topology::Blueprint bp = topology::build_leaf_spine(params);
  scenario::WorldConfig cfg = bench::standard_world(level, seed);
  cfg.controller.proactive.enabled = false;
  // Fault pressure high enough that several uplinks die during the run —
  // the regime in which redundancy-vs-MTTR trades exist at all.
  cfg.faults.transceiver_afr = 0.20;
  cfg.faults.cable_afr = 0.03;
  scenario::World world{bp, cfg};

  // Sample every 30 minutes: a leaf is at full service when every spine is
  // reachable over at least one live parallel uplink.
  std::size_t samples = 0, good = 0;
  const auto leaves = world.network().devices_with_role(topology::NodeRole::kTorSwitch);
  const auto spines = world.network().devices_with_role(topology::NodeRole::kSpineSwitch);
  world.simulator().schedule_every(sim::Duration::minutes(30), [&] {
    for (const net::DeviceId leaf : leaves) {
      bool full = true;
      for (const net::DeviceId spine : spines) {
        if (net::live_parallel_links(world.network(), leaf, spine) < 1) {
          full = false;
          break;
        }
      }
      ++samples;
      if (full) ++good;
    }
  });
  world.run_for(sim::Duration::days(days));

  Row r;
  r.uplinks = uplinks;
  r.level = core::to_string(level);
  r.capacity_availability =
      samples == 0 ? 1.0 : static_cast<double>(good) / static_cast<double>(samples);

  analysis::CostInputs in;
  in.technician_hours = world.technicians().labor_hours();
  in.robot_busy_hours = world.has_fleet() ? world.fleet().busy_hours() : 0.0;
  in.robot_units = world.has_fleet() ? world.fleet().units_online() : 0;
  in.elapsed_years = days / 365.0;
  in.downtime_link_hours = world.availability().downtime_link_hours();
  in.impaired_link_hours = world.availability().impaired_link_hours();
  in.transceivers_replaced =
      world.technicians().completed_of(maintenance::RepairActionKind::kReplaceTransceiver) +
      (world.has_fleet()
           ? world.fleet().completed_of(maintenance::RepairActionKind::kReplaceTransceiver)
           : 0);
  in.cables_replaced =
      world.technicians().completed_of(maintenance::RepairActionKind::kReplaceCable);
  in.overprovisioned_links = params.leaves * params.spines * (uplinks - 1);
  r.cost_usd = analysis::compute_cost(analysis::CostConfig{}, in).total_usd;
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace smn;
  using analysis::Table;
  const int days = argc > 1 ? std::atoi(argv[1]) : 60;
  const std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 5;

  bench::print_header("E5: right-provisioning",
                      "\"reducing the need for excessive overprovisioned online redundancy\" (S2)");

  Table table{{"uplinks/spine", "level", "capacity availability", "nines", "60d cost ($)"}};
  for (const int uplinks : {1, 2, 3}) {
    for (const core::AutomationLevel level :
         {core::AutomationLevel::kL0_Manual, core::AutomationLevel::kL3_HighAutomation}) {
      const Row r = run(uplinks, level, days, seed);
      table.add_row({Table::num(r.uplinks), r.level,
                     Table::num(r.capacity_availability, 6),
                     Table::num(analysis::AvailabilityTracker::nines(r.capacity_availability), 2),
                     Table::num(r.cost_usd, 0)});
    }
  }
  table.print(std::cout);
  std::cout << "\nexpected shape: at human repair speed you buy availability with\n"
               "redundant uplinks; at robot repair speed 1 uplink/spine already meets\n"
               "the target the human world needs 2-3 for — the right-provisioning\n"
               "crossover the paper predicts.\n";
  return 0;
}
