// E14 — Robotic topology reconfiguration under a skewed traffic matrix.
//
// §4: "it is interesting to explore reconfigurable network topologies to
// dynamically adapt to changing traffic patterns and optimize resource
// utilization. The robotics that enables a self-maintaining network will
// also be able to deploy arbitrary topologies potentially. Is this useful,
// and if so what additional robotic functionality may we need?"
//
// A thin-uplink leaf-spine serves an elephant-pair matrix it was not wired
// for. The reconfigurer plans composite path reinforcements and executes
// them through an L4 cable-laying fleet; we report delivered goodput before
// and after, the number of cable moves, and the wall-clock the robots took.
#include <iostream>

#include "bench/common.h"
#include "core/reconfigure.h"
#include "net/traffic.h"

int main(int argc, char** argv) {
  using namespace smn;
  using analysis::Table;
  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 14;

  bench::print_header("E14: robotic topology reconfiguration",
                      "\"reconfigurable network topologies to dynamically adapt to "
                      "changing traffic patterns\" (S4)");

  // 8 servers x 100G behind 4 x 100G uplinks: the fabric (not the NICs) is
  // the bottleneck, which is the regime rewiring can fix.
  const topology::Blueprint bp = topology::build_leaf_spine({.leaves = 8,
                                                             .spines = 4,
                                                             .servers_per_leaf = 8,
                                                             .uplinks_per_spine = 1,
                                                             .server_gbps = 100.0,
                                                             .uplink_gbps = 100.0});
  scenario::WorldConfig cfg =
      bench::standard_world(core::AutomationLevel::kL4_FullAutomation, seed);
  // Quiet faults: this experiment is about traffic adaptation, not repair.
  cfg.faults.transceiver_afr = 0;
  cfg.faults.cable_afr = 0;
  cfg.faults.switch_afr = 0;
  cfg.faults.server_nic_afr = 0;
  cfg.faults.gray_rate_per_year = 0;
  cfg.contamination.mean_accumulation_per_day = 0;
  cfg.detection.false_positive_per_year = 0;
  cfg.fleet.failure_per_job = 0;
  scenario::World world{bp, cfg};
  world.start();

  sim::RngFactory rngs{seed};
  sim::RngStream tm_rng = rngs.stream("matrix");
  // A training-job-style pattern: heavy all-to-all among the servers of
  // leaves 0-2, light uniform background elsewhere. The job's leaves
  // saturate their thin uplinks while leaves 3-7 sit nearly idle — skew the
  // static wiring cannot serve but a rewired one can.
  net::TrafficMatrix tm;
  {
    const auto servers = world.network().servers();
    std::vector<net::DeviceId> hot(servers.begin(), servers.begin() + 24);
    for (int i = 0; i < 400; ++i) {
      const net::DeviceId src = hot[tm_rng.index(hot.size())];
      net::DeviceId dst = src;
      while (dst == src) dst = hot[tm_rng.index(hot.size())];
      tm.flows.push_back(net::Flow{src, dst, 4.0});
    }
    const net::TrafficMatrix background =
        net::TrafficMatrix::uniform(world.network(), 200, 0.5, tm_rng);
    tm.flows.insert(tm.flows.end(), background.flows.begin(), background.flows.end());
  }

  const net::LoadReport before = net::route_and_load(world.network(), tm);

  core::TopologyReconfigurer::Config rcfg;
  rcfg.max_moves = 6;
  rcfg.min_relative_gain = 0.002;
  core::TopologyReconfigurer rec{world.network(), &world.fleet(), rcfg};
  const auto plan = rec.plan(tm);

  const sim::TimePoint t0 = world.now();
  bool finished = plan.moves.empty();
  const int dispatched = rec.apply(plan, [&] { finished = true; });
  while (!finished) world.run_for(sim::Duration::minutes(10));
  const double rewire_hours = (world.now() - t0).to_hours();

  const net::LoadReport after = net::route_and_load(world.network(), tm);

  Table table{{"stage", "delivered (G)", "demand (G)", "max util", "p99 tail"}};
  table.add_row({"static wiring", Table::num(before.delivered_gbps, 1),
                 Table::num(before.demand_gbps, 1),
                 Table::num(before.max_link_utilization, 2),
                 Table::num(before.p99_tail_factor, 2)});
  table.add_row({"after robotic rewire", Table::num(after.delivered_gbps, 1),
                 Table::num(after.demand_gbps, 1),
                 Table::num(after.max_link_utilization, 2),
                 Table::num(after.p99_tail_factor, 2)});
  table.print(std::cout);

  std::size_t cable_moves = 0;
  for (const auto& m : plan.moves) cable_moves += m.rewires.size();
  std::cout << "\ncomposite moves: " << plan.moves.size() << " (" << cable_moves
            << " cable re-terminations, " << dispatched << " dispatched), completed in "
            << analysis::Table::num(rewire_hours, 1) << " robot-hours of wall clock\n";
  std::cout << "goodput gain: "
            << analysis::Table::num(
                   100.0 * (after.delivered_gbps - before.delivered_gbps) /
                       std::max(1.0, before.delivered_gbps),
                   1)
            << "%\n";
  std::cout << "\nexpected shape: the planner finds several hot ToR pairs whose routes\n"
               "can be reinforced with idle fabric cables, lifting delivered goodput\n"
               "by a double-digit percentage within hours — the capability that makes\n"
               "demand-adaptive topologies plausible once robots can re-lay cables.\n";
  return 0;
}
