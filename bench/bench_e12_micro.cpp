// E12 — Microbenchmarks (google-benchmark): simulator event throughput,
// topology construction, routing queries, cascade prediction, and a full
// world-day step. These bound how large a plant the simulator can study.
#include <benchmark/benchmark.h>

#include "bench/common.h"
#include "fault/cascade.h"
#include "net/routing.h"
#include "topology/metrics.h"

namespace {

using namespace smn;

void BM_SimulatorEventThroughput(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    const int n = static_cast<int>(state.range(0));
    for (int i = 0; i < n; ++i) {
      sim.schedule_after(sim::Duration::microseconds(i), [] {});
    }
    sim.run();
    benchmark::DoNotOptimize(sim.events_processed());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SimulatorEventThroughput)->Arg(1000)->Arg(100000);

void BM_PeriodicCancellation(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    for (int i = 0; i < 64; ++i) {
      const sim::EventId h =
          sim.schedule_every(sim::Duration::seconds(1 + i), [] {});
      if (i % 2 == 0) sim.cancel_periodic(h);
    }
    sim.run_until(sim::TimePoint::origin() + sim::Duration::minutes(10));
    benchmark::DoNotOptimize(sim.events_processed());
  }
}
BENCHMARK(BM_PeriodicCancellation);

void BM_BuildFatTree(benchmark::State& state) {
  for (auto _ : state) {
    const topology::Blueprint bp =
        topology::build_fat_tree({.k = static_cast<int>(state.range(0))});
    benchmark::DoNotOptimize(bp.links().size());
  }
}
BENCHMARK(BM_BuildFatTree)->Arg(4)->Arg(8)->Arg(16);

void BM_BuildJellyfish(benchmark::State& state) {
  for (auto _ : state) {
    const topology::Blueprint bp = topology::build_jellyfish(
        {.switches = static_cast<int>(state.range(0)), .network_degree = 8, .seed = 1});
    benchmark::DoNotOptimize(bp.links().size());
  }
}
BENCHMARK(BM_BuildJellyfish)->Arg(64)->Arg(256);

void BM_WiringStats(benchmark::State& state) {
  const topology::Blueprint bp = topology::build_fat_tree({.k = 8});
  for (auto _ : state) {
    benchmark::DoNotOptimize(topology::compute_wiring_stats(bp).total_length_m);
  }
}
BENCHMARK(BM_WiringStats);

void BM_SelfMaintainability(benchmark::State& state) {
  const topology::Blueprint bp = topology::build_leaf_spine(
      {.leaves = 64, .spines = 16, .servers_per_leaf = 4});
  for (auto _ : state) {
    benchmark::DoNotOptimize(topology::compute_self_maintainability(bp).score);
  }
}
BENCHMARK(BM_SelfMaintainability);

void BM_ShortestPath(benchmark::State& state) {
  sim::Simulator sim;
  const topology::Blueprint bp = topology::build_fat_tree({.k = 8});
  net::Network net{bp, net::Network::Config{}, sim};
  const auto servers = net.servers();
  std::size_t i = 0;
  for (auto _ : state) {
    const net::DeviceId a = servers[i % servers.size()];
    const net::DeviceId b = servers[(i * 7 + 13) % servers.size()];
    benchmark::DoNotOptimize(net::shortest_path(net, a, b).size());
    ++i;
  }
}
BENCHMARK(BM_ShortestPath);

void BM_PairConnectivitySample(benchmark::State& state) {
  sim::Simulator sim;
  const topology::Blueprint bp = topology::build_fat_tree({.k = 8});
  net::Network net{bp, net::Network::Config{}, sim};
  sim::RngFactory rngs{1};
  sim::RngStream rng = rngs.stream("bench");
  for (auto _ : state) {
    benchmark::DoNotOptimize(net::sampled_pair_connectivity(net, rng, 64));
  }
}
BENCHMARK(BM_PairConnectivitySample);

// Downs every 7th link of the standard fabric, so reachability queries see a
// realistic degraded plant (and the no-path early-out actually fires).
void down_some_links(net::Network& net) {
  for (std::size_t i = 0; i < net.links().size(); i += 7) {
    net.link_mut(net::LinkId{static_cast<std::int32_t>(i)}).cable.intact = false;
  }
  net.refresh_all();
}

void BM_PathAvailable(benchmark::State& state) {
  sim::Simulator sim;
  const topology::Blueprint bp = bench::standard_fabric();
  net::Network net{bp, net::Network::Config{}, sim};
  down_some_links(net);
  const auto& servers = net.servers();
  std::size_t i = 0;
  for (auto _ : state) {
    const net::DeviceId a = servers[i % servers.size()];
    const net::DeviceId b = servers[(i * 7 + 13) % servers.size()];
    benchmark::DoNotOptimize(net::path_available(net, a, b));
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PathAvailable);

void BM_PathAvailableBfs(benchmark::State& state) {
  sim::Simulator sim;
  const topology::Blueprint bp = bench::standard_fabric();
  net::Network net{bp, net::Network::Config{}, sim};
  down_some_links(net);
  const auto& servers = net.servers();
  std::size_t i = 0;
  for (auto _ : state) {
    const net::DeviceId a = servers[i % servers.size()];
    const net::DeviceId b = servers[(i * 7 + 13) % servers.size()];
    benchmark::DoNotOptimize(net::path_available_bfs(net, a, b));
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PathAvailableBfs);

void BM_SampledPairConnectivity(benchmark::State& state) {
  sim::Simulator sim;
  const topology::Blueprint bp = bench::standard_fabric();
  net::Network net{bp, net::Network::Config{}, sim};
  down_some_links(net);
  sim::RngFactory rngs{1};
  sim::RngStream rng = rngs.stream("bench");
  for (auto _ : state) {
    benchmark::DoNotOptimize(net::sampled_pair_connectivity(net, rng, 64));
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_SampledPairConnectivity);

void BM_SampledPairConnectivityBfs(benchmark::State& state) {
  sim::Simulator sim;
  const topology::Blueprint bp = bench::standard_fabric();
  net::Network net{bp, net::Network::Config{}, sim};
  down_some_links(net);
  sim::RngFactory rngs{1};
  sim::RngStream rng = rngs.stream("bench");
  for (auto _ : state) {
    benchmark::DoNotOptimize(net::sampled_pair_connectivity_bfs(net, rng, 64));
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_SampledPairConnectivityBfs);

void BM_CascadePrediction(benchmark::State& state) {
  sim::Simulator sim;
  const topology::Blueprint bp = bench::standard_fabric();
  net::Network::Config ncfg;
  ncfg.aoc_max_m = 5.0;
  net::Network net{bp, ncfg, sim};
  fault::Environment env;
  sim::RngFactory rngs{1};
  fault::FaultInjector injector{net, env, rngs.stream("inj")};
  fault::CascadeModel cascade{net, env, injector, rngs.stream("c")};
  const net::DeviceId leaf = net.devices_with_role(topology::NodeRole::kTorSwitch)[0];
  const net::LinkId target = net.links_at(leaf)[0];
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        cascade.predicted_contacts(fault::Disturbance{target, leaf, 1.0, true}).size());
  }
}
BENCHMARK(BM_CascadePrediction);

void BM_WorldDay(benchmark::State& state) {
  // One simulated day of the standard experiment hall at L3.
  for (auto _ : state) {
    state.PauseTiming();
    const topology::Blueprint bp = bench::standard_fabric();
    scenario::World world{
        bp, bench::standard_world(core::AutomationLevel::kL3_HighAutomation, 1)};
    state.ResumeTiming();
    world.run_for(sim::Duration::days(1));
    benchmark::DoNotOptimize(world.tickets().total());
  }
}
BENCHMARK(BM_WorldDay)->Unit(benchmark::kMillisecond);

void BM_WorldDayStep(benchmark::State& state) {
  // Marginal cost of one more simulated day on a long-lived world — the
  // quantity the sweep engine's replicates/sec is made of (BM_WorldDay
  // measures day 1 of a fresh world; this measures day N).
  const topology::Blueprint bp = bench::standard_fabric();
  scenario::World world{
      bp, bench::standard_world(core::AutomationLevel::kL3_HighAutomation, 1)};
  for (auto _ : state) {
    world.run_for(sim::Duration::days(1));
    benchmark::DoNotOptimize(world.tickets().total());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_WorldDayStep)->Unit(benchmark::kMillisecond);

void BM_WorldDayStepNoObs(benchmark::State& state) {
  // Same marginal-day cost with the entire observability bundle disabled —
  // the delta against BM_WorldDayStep is the all-in metrics+recorder overhead
  // (ISSUE 4 bounds it at <2%).
  const topology::Blueprint bp = bench::standard_fabric();
  scenario::WorldConfig cfg =
      bench::standard_world(core::AutomationLevel::kL3_HighAutomation, 1);
  cfg.obs = obs::Options::disabled();
  scenario::World world{bp, cfg};
  for (auto _ : state) {
    world.run_for(sim::Duration::days(1));
    benchmark::DoNotOptimize(world.tickets().total());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_WorldDayStepNoObs)->Unit(benchmark::kMillisecond);

void BM_ObsCounterInc(benchmark::State& state) {
  // The instrumented hot path: one null check plus one counter add.
  obs::Registry reg;
  obs::Counter* c = reg.counter("bench_total");
  for (auto _ : state) {
    if (c != nullptr) c->inc();
    benchmark::DoNotOptimize(c);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ObsCounterInc);

void BM_ObsHistogramObserve(benchmark::State& state) {
  obs::Registry reg;
  obs::Histogram* h = reg.histogram("bench_hours", {1, 4, 12, 24, 48, 96, 168});
  double v = 0.0;
  for (auto _ : state) {
    h->observe(v);
    v = v > 200.0 ? 0.0 : v + 3.7;
    benchmark::DoNotOptimize(h);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ObsHistogramObserve);

void BM_FlightRecorderRecord(benchmark::State& state) {
  obs::FlightRecorder rec{256};
  std::int64_t t = 0;
  for (auto _ : state) {
    ++t;
    rec.record(t, "bench-event", t, t & 7);
    benchmark::DoNotOptimize(rec.total_recorded());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FlightRecorderRecord);

}  // namespace

BENCHMARK_MAIN();
