// Shared scaffolding for the experiment harnesses (E1-E11).
//
// Each bench binary regenerates one "table/figure": the paper is a vision
// paper with prose claims rather than numbered result tables, so every
// experiment id is anchored to the section and sentence it quantifies (see
// DESIGN.md's experiment index and EXPERIMENTS.md for paper-vs-measured).
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>

#include "analysis/report.h"
#include "analysis/stats.h"
#include "core/automation.h"
#include "maintenance/ticket.h"
#include "runner/presets.h"
#include "scenario/world.h"
#include "topology/builders.h"

namespace smn::bench {

/// The standard hall used across experiments: 12 leaves x 4 spines with 8
/// servers per leaf (144 links), long uplinks on separate MPO optics.
/// (Canonical definition lives in runner::presets so `smnctl sweep`, the
/// benches, and CI all mean the same world.)
[[nodiscard]] inline topology::Blueprint standard_fabric() {
  return runner::standard_fabric();
}

/// World preset for a level with the standard fault environment: accelerated
/// aging so a 60-day run yields statistically useful event counts.
[[nodiscard]] inline scenario::WorldConfig standard_world(core::AutomationLevel level,
                                                          std::uint64_t seed) {
  return runner::standard_world(level, seed);
}

struct TicketSummary {
  analysis::SampleStats resolve_hours;   // open -> resolved, genuine reactive only
  std::size_t resolved = 0;
  std::size_t cancelled = 0;
  std::size_t proactive = 0;
  std::size_t false_positive = 0;
  std::size_t repeats = 0;
};

[[nodiscard]] inline TicketSummary summarize_tickets(
    const maintenance::TicketSystem& tickets,
    sim::Duration repeat_window = sim::Duration::days(14)) {
  TicketSummary s;
  for (const maintenance::Ticket& t : tickets.all()) {
    if (t.proactive) {
      ++s.proactive;
      continue;
    }
    if (!t.genuine) ++s.false_positive;
    switch (t.state) {
      case maintenance::TicketState::kResolved:
        ++s.resolved;
        if (t.genuine) s.resolve_hours.push((t.resolved - t.opened).to_hours());
        break;
      case maintenance::TicketState::kCancelled:
        ++s.cancelled;
        break;
      default:
        break;
    }
  }
  s.repeats = tickets.repeat_ticket_count(repeat_window);
  return s;
}

inline const core::AutomationLevel kAllLevels[] = {
    core::AutomationLevel::kL0_Manual,        core::AutomationLevel::kL1_OperatorAssist,
    core::AutomationLevel::kL2_PartialAutomation,
    core::AutomationLevel::kL3_HighAutomation, core::AutomationLevel::kL4_FullAutomation,
};

inline void print_header(const char* id, const char* claim) {
  std::printf("==============================================================\n");
  std::printf("%s\n", id);
  std::printf("paper hook: %s\n", claim);
  std::printf("==============================================================\n");
}

}  // namespace smn::bench
