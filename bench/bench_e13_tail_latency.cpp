// E13 — Tail latency under flapping links.
//
// §1: "Layers in the network stack will ensure retransmission of lost
// packets, the curse of a flapping link is the associated increase in tail
// latency for the network."
//
// Runs the standard hall under a contamination/oxidation-heavy regime and
// samples the demand-weighted p99 flow-completion-time inflation of a fixed
// traffic matrix every 4 hours. Human-speed repair leaves flapping links in
// the fabric for days; robot-speed repair removes them in minutes — the
// difference shows up exactly where the paper says: the tail.
#include <iostream>

#include "bench/common.h"
#include "net/traffic.h"

namespace {

using namespace smn;

struct Row {
  std::string level;
  double mean_p99 = 0;
  double worst_p99 = 0;
  double pct_samples_2x = 0;   // % of samples with p99 factor >= 2
  double pct_samples_10x = 0;
  double mean_flapping_links = 0;
  // Per-link-state attribution, accumulated over every sample: which link
  // state each flow's tail factor was attributed to (worst state on its
  // routed DAG). This is the drill-down behind the p99 numbers above.
  std::array<net::TailBucket, net::kTailStateCount> by_state{};
  std::size_t flows_total = 0;
  double demand_total = 0;
  // The tail bucket of the `net_fct_factor_{state}` histograms (>= 10x):
  // what a metrics scrape of the same run would report.
  std::array<std::uint64_t, net::kTailStateCount> hist_over_10x{};
};

Row run(core::AutomationLevel level, int days, std::uint64_t seed) {
  const topology::Blueprint bp = bench::standard_fabric();
  scenario::WorldConfig cfg = bench::standard_world(level, seed);
  cfg.faults.gray_rate_per_year = 3.0;
  cfg.faults.gray_duration_log_mean = std::log(2.0 * 3600.0);  // median 2 h
  cfg.contamination.mean_accumulation_per_day = 0.01;
  scenario::World world{bp, cfg};

  sim::RngFactory rngs{seed};
  sim::RngStream tm_rng = rngs.stream("matrix");
  const net::TrafficMatrix tm =
      net::TrafficMatrix::uniform(world.network(), 400, 1.0, tm_rng);

  analysis::SampleStats p99s;
  double flapping_sum = 0;
  std::size_t samples = 0;
  Row row;
  obs::Registry reg;
  net::TrafficInstruments instruments{reg};
  world.simulator().schedule_every(sim::Duration::hours(4), [&] {
    const net::LoadReport r = net::route_and_load(world.network(), tm);
    p99s.push(r.p99_tail_factor);
    flapping_sum +=
        static_cast<double>(world.network().count_links(net::LinkState::kFlapping));
    ++samples;
    instruments.observe(r);
    for (std::size_t s = 0; s < net::kTailStateCount; ++s) {
      const net::TailBucket& b = r.tail_by_state[s];
      row.by_state[s].flows += b.flows;
      row.by_state[s].demand_gbps += b.demand_gbps;
      row.by_state[s].tail_sum += b.tail_sum;
      row.by_state[s].worst_tail = std::max(row.by_state[s].worst_tail, b.worst_tail);
      row.flows_total += b.flows;
      row.demand_total += b.demand_gbps;
    }
  });
  world.run_for(sim::Duration::days(days));

  for (std::size_t s = 0; s < net::kTailStateCount; ++s) {
    const obs::Histogram* h = reg.histogram(
        std::string{"net_fct_factor_"} +
            (s == 0 ? "up" : s == 1 ? "impaired" : s == 2 ? "flapping" : "down_rerouted"),
        net::fct_factor_bounds());
    row.hist_over_10x[s] = 0;
    for (std::size_t b = 0; b < h->counts().size(); ++b) {
      if (b >= net::fct_factor_bounds().size() || net::fct_factor_bounds()[b] > 10.0) {
        row.hist_over_10x[s] += h->counts()[b];
      }
    }
  }
  row.level = core::to_string(level);
  row.mean_p99 = p99s.mean();
  row.worst_p99 = p99s.max();
  int over2 = 0, over10 = 0;
  for (const double v : p99s.samples()) {
    if (v >= 2.0) ++over2;
    if (v >= 10.0) ++over10;
  }
  row.pct_samples_2x = 100.0 * over2 / std::max<std::size_t>(1, p99s.count());
  row.pct_samples_10x = 100.0 * over10 / std::max<std::size_t>(1, p99s.count());
  row.mean_flapping_links = flapping_sum / std::max<std::size_t>(1, samples);
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace smn;
  using analysis::Table;
  const int days = argc > 1 ? std::atoi(argv[1]) : 60;
  const std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 13;

  bench::print_header("E13: tail latency under flapping",
                      "\"the curse of a flapping link is the associated increase in tail "
                      "latency\" (S1)");

  Table table{{"level", "mean p99 factor", "worst p99", "% samples >=2x",
               "% samples >=10x", "mean flapping links"}};
  std::vector<Row> rows;
  for (const core::AutomationLevel level :
       {core::AutomationLevel::kL0_Manual, core::AutomationLevel::kL1_OperatorAssist,
        core::AutomationLevel::kL3_HighAutomation}) {
    const Row r = run(level, days, seed);
    table.add_row({r.level, Table::num(r.mean_p99, 2), Table::num(r.worst_p99, 1),
                   Table::num(r.pct_samples_2x, 1), Table::num(r.pct_samples_10x, 1),
                   Table::num(r.mean_flapping_links, 2)});
    rows.push_back(r);
  }
  table.print(std::cout);

  // Drill-down: each flow's tail factor attributed to the worst link state
  // on its routed DAG, accumulated over all samples. The same decomposition
  // lands in the net_fct_factor_{up,impaired,flapping,down-rerouted}
  // histograms; the last column is their > 10x tail.
  std::cout << "\nper-link-state attribution (all samples pooled):\n";
  Table drill{{"level", "state", "% flows", "% demand", "mean factor", "worst factor",
               "flows > 10x"}};
  for (const Row& r : rows) {
    for (std::size_t s = 0; s < net::kTailStateCount; ++s) {
      const net::TailBucket& b = r.by_state[s];
      const double denom_f = static_cast<double>(std::max<std::size_t>(1, r.flows_total));
      const double denom_d = r.demand_total > 0 ? r.demand_total : 1.0;
      drill.add_row({r.level, net::to_string(static_cast<net::TailState>(s)),
                     Table::num(100.0 * static_cast<double>(b.flows) / denom_f, 2),
                     Table::num(100.0 * b.demand_gbps / denom_d, 2),
                     Table::num(b.flows > 0 ? b.tail_sum / static_cast<double>(b.flows) : 0.0, 2),
                     Table::num(b.worst_tail, 1),
                     std::to_string(r.hist_over_10x[s])});
    }
  }
  drill.print(std::cout);
  std::cout << "\nexpected shape: at human repair speed, flapping links sit in the\n"
               "fabric for days and a large fraction of samples see >=2x (often\n"
               ">=10x) p99 inflation; at robot speed flaps are verified and fixed in\n"
               "minutes, so the tail stays near 1x almost always.\n";
  return 0;
}
