// E13 — Tail latency under flapping links.
//
// §1: "Layers in the network stack will ensure retransmission of lost
// packets, the curse of a flapping link is the associated increase in tail
// latency for the network."
//
// Runs the standard hall under a contamination/oxidation-heavy regime and
// samples the demand-weighted p99 flow-completion-time inflation of a fixed
// traffic matrix every 4 hours. Human-speed repair leaves flapping links in
// the fabric for days; robot-speed repair removes them in minutes — the
// difference shows up exactly where the paper says: the tail.
#include <iostream>

#include "bench/common.h"
#include "net/traffic.h"

namespace {

using namespace smn;

struct Row {
  std::string level;
  double mean_p99 = 0;
  double worst_p99 = 0;
  double pct_samples_2x = 0;   // % of samples with p99 factor >= 2
  double pct_samples_10x = 0;
  double mean_flapping_links = 0;
};

Row run(core::AutomationLevel level, int days, std::uint64_t seed) {
  const topology::Blueprint bp = bench::standard_fabric();
  scenario::WorldConfig cfg = bench::standard_world(level, seed);
  cfg.faults.gray_rate_per_year = 3.0;
  cfg.faults.gray_duration_log_mean = std::log(2.0 * 3600.0);  // median 2 h
  cfg.contamination.mean_accumulation_per_day = 0.01;
  scenario::World world{bp, cfg};

  sim::RngFactory rngs{seed};
  sim::RngStream tm_rng = rngs.stream("matrix");
  const net::TrafficMatrix tm =
      net::TrafficMatrix::uniform(world.network(), 400, 1.0, tm_rng);

  analysis::SampleStats p99s;
  double flapping_sum = 0;
  std::size_t samples = 0;
  world.simulator().schedule_every(sim::Duration::hours(4), [&] {
    const net::LoadReport r = net::route_and_load(world.network(), tm);
    p99s.push(r.p99_tail_factor);
    flapping_sum +=
        static_cast<double>(world.network().count_links(net::LinkState::kFlapping));
    ++samples;
  });
  world.run_for(sim::Duration::days(days));

  Row row;
  row.level = core::to_string(level);
  row.mean_p99 = p99s.mean();
  row.worst_p99 = p99s.max();
  int over2 = 0, over10 = 0;
  for (const double v : p99s.samples()) {
    if (v >= 2.0) ++over2;
    if (v >= 10.0) ++over10;
  }
  row.pct_samples_2x = 100.0 * over2 / std::max<std::size_t>(1, p99s.count());
  row.pct_samples_10x = 100.0 * over10 / std::max<std::size_t>(1, p99s.count());
  row.mean_flapping_links = flapping_sum / std::max<std::size_t>(1, samples);
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace smn;
  using analysis::Table;
  const int days = argc > 1 ? std::atoi(argv[1]) : 60;
  const std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 13;

  bench::print_header("E13: tail latency under flapping",
                      "\"the curse of a flapping link is the associated increase in tail "
                      "latency\" (S1)");

  Table table{{"level", "mean p99 factor", "worst p99", "% samples >=2x",
               "% samples >=10x", "mean flapping links"}};
  for (const core::AutomationLevel level :
       {core::AutomationLevel::kL0_Manual, core::AutomationLevel::kL1_OperatorAssist,
        core::AutomationLevel::kL3_HighAutomation}) {
    const Row r = run(level, days, seed);
    table.add_row({r.level, Table::num(r.mean_p99, 2), Table::num(r.worst_p99, 1),
                   Table::num(r.pct_samples_2x, 1), Table::num(r.pct_samples_10x, 1),
                   Table::num(r.mean_flapping_links, 2)});
  }
  table.print(std::cout);
  std::cout << "\nexpected shape: at human repair speed, flapping links sit in the\n"
               "fabric for days and a large fraction of samples see >=2x (often\n"
               ">=10x) p99 inflation; at robot speed flaps are verified and fixed in\n"
               "minutes, so the tail stays near 1x almost always.\n";
  return 0;
}
