// E3 — Cascading failures during repair: human hands vs robot grippers, and
// the impact-aware scheduling ablation.
//
// §1: "Cascading failures occur when physical motion near or with hardware
// creates vibrations and other physical effects on the co-located hardware."
// §2: "Tight coupling and control will help minimize repair amplification
// caused by cascading failures."
//
// A burst of faults lands on the densest switches; each world repairs them.
// We count induced collateral faults (and the permanent ones) per 100
// completed repairs, with and without the controller's drain-the-contacts
// scheduling.
#include <iostream>

#include "bench/common.h"

namespace {

using namespace smn;

struct Row {
  std::string name;
  std::size_t repairs = 0;
  std::size_t induced = 0;
  std::size_t induced_permanent = 0;
  std::size_t drains = 0;
  std::size_t refusals = 0;
};

Row run(const char* name, core::AutomationLevel level, bool impact_aware, int days,
        std::uint64_t seed) {
  const topology::Blueprint bp = bench::standard_fabric();
  scenario::WorldConfig cfg = bench::standard_world(level, seed);
  cfg.controller.impact_aware = impact_aware;
  cfg.controller.proactive.enabled = false;  // isolate reactive repair cascades
  // Dense burst: elevated oxidation makes many links gray-fail early, pulling
  // maintenance hands onto crowded faceplates.
  cfg.faults.oxidation_rate_per_year = 1.2;
  cfg.faults.transceiver_afr = 0.10;
  scenario::World world{bp, cfg};
  world.run_for(sim::Duration::days(days));

  Row r;
  r.name = name;
  r.repairs = world.technicians().completed() +
              (world.has_fleet() ? world.fleet().completed() : 0);
  r.induced = world.cascade().induced_count();
  r.induced_permanent = world.cascade().induced_permanent_count();
  r.drains = world.controller().migrator().drains();
  r.refusals = world.controller().migrator().refusals();
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace smn;
  using analysis::Table;
  const int days = argc > 1 ? std::atoi(argv[1]) : 60;
  const std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 3;

  bench::print_header("E3: repair-induced cascades",
                      "\"minimize repair amplification caused by cascading failures\" (S2)");

  const Row rows[] = {
      run("L0 human hands", core::AutomationLevel::kL0_Manual, false, days, seed),
      run("L3 robot, naive schedule", core::AutomationLevel::kL3_HighAutomation, false,
          days, seed),
      run("L3 robot, impact-aware", core::AutomationLevel::kL3_HighAutomation, true, days,
          seed),
  };

  Table table{{"configuration", "repairs", "induced", "per 100 repairs", "permanent",
               "drains", "refusals"}};
  for (const Row& r : rows) {
    const double per100 =
        r.repairs == 0 ? 0.0
                       : 100.0 * static_cast<double>(r.induced) / static_cast<double>(r.repairs);
    table.add_row({r.name, Table::num(r.repairs), Table::num(r.induced),
                   Table::num(per100, 1), Table::num(r.induced_permanent),
                   Table::num(r.drains), Table::num(r.refusals)});
  }
  table.print(std::cout);
  std::cout << "\nexpected shape: human hands (magnitude 1.0) induce several times the\n"
               "collateral of the small gripper (0.25); impact-aware draining shifts\n"
               "remaining hits onto links that carry no traffic.\n";
  return 0;
}
