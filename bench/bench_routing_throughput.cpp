// Routing-query throughput: the tracked perf number for the connectivity
// engine (net/connectivity.h).
//
// Measures queries/sec of the engine-backed `path_available` /
// `sampled_pair_connectivity` against the reference BFS
// (`path_available_bfs`) on the standard fabric, in two plant conditions:
// pristine, and ~15% of links failed (the regime availability sweeps live
// in). Then runs a mini Monte-Carlo sweep and reports replicates/sec — the
// end-to-end number the engine exists to move.
//
// Correctness gate: every individual engine answer must equal the BFS answer
// on the same query, and the sampled-connectivity pair must agree
// bit-for-bit when driven by identically-seeded streams. A mismatch exits 1
// and fails CI's bench-smoke job.
//
// Usage: bench_routing_throughput [queries] [json_out=BENCH_routing.json]
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "analysis/report.h"
#include "bench/common.h"
#include "net/routing.h"
#include "runner/json_writer.h"
#include "runner/presets.h"
#include "runner/sweep.h"

namespace {

using namespace smn;

[[nodiscard]] double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

struct ScenarioResult {
  std::string name;
  double engine_qps = 0;
  double bfs_qps = 0;
  double engine_sample_qps = 0;  // sampled_pair_connectivity, pairs/sec
  double bfs_sample_qps = 0;
  bool agree = true;
};

ScenarioResult run_scenario(const std::string& name, double fail_fraction, int queries) {
  sim::Simulator sim;
  const topology::Blueprint bp = bench::standard_fabric();
  net::Network net{bp, net::Network::Config{}, sim};
  if (fail_fraction > 0.0) {
    const auto stride = static_cast<std::size_t>(1.0 / fail_fraction);
    for (std::size_t i = 0; i < net.links().size(); i += stride) {
      net.link_mut(net::LinkId{static_cast<std::int32_t>(i)}).cable.intact = false;
    }
    net.refresh_all();
  }

  ScenarioResult r;
  r.name = name;
  const auto& servers = net.servers();

  // Fixed deterministic query schedule, shared by both implementations.
  std::vector<std::pair<net::DeviceId, net::DeviceId>> schedule;
  schedule.reserve(static_cast<std::size_t>(queries));
  for (int i = 0; i < queries; ++i) {
    const auto ii = static_cast<std::size_t>(i);
    schedule.emplace_back(servers[ii % servers.size()],
                          servers[(ii * 7 + 13) % servers.size()]);
  }

  std::vector<char> engine_answers(schedule.size());
  auto t0 = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < schedule.size(); ++i) {
    engine_answers[i] = net::path_available(net, schedule[i].first, schedule[i].second);
  }
  r.engine_qps = static_cast<double>(schedule.size()) / seconds_since(t0);

  // The BFS is ~two orders slower; a slice of the schedule is plenty.
  const std::size_t bfs_queries = schedule.size() / 10 + 1;
  t0 = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < bfs_queries; ++i) {
    const bool want = net::path_available_bfs(net, schedule[i].first, schedule[i].second);
    if (want != static_cast<bool>(engine_answers[i])) r.agree = false;
  }
  r.bfs_qps = static_cast<double>(bfs_queries) / seconds_since(t0);

  // Sampled pair connectivity: identically-seeded streams must agree exactly.
  const int rounds = 64, samples = 64;
  sim::RngFactory rngs{7};
  {
    sim::RngStream rng = rngs.stream("routing-bench");
    t0 = std::chrono::steady_clock::now();
    double acc = 0;
    for (int i = 0; i < rounds; ++i) {
      acc += net::sampled_pair_connectivity(net, rng, samples);
    }
    r.engine_sample_qps = static_cast<double>(rounds) * samples / seconds_since(t0);
    sim::RngStream rng2 = rngs.stream("routing-bench");
    t0 = std::chrono::steady_clock::now();
    double acc_bfs = 0;
    for (int i = 0; i < rounds; ++i) {
      acc_bfs += net::sampled_pair_connectivity_bfs(net, rng2, samples);
    }
    r.bfs_sample_qps = static_cast<double>(rounds) * samples / seconds_since(t0);
    if (acc != acc_bfs) r.agree = false;
  }
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  using analysis::Table;
  const int queries = argc > 1 ? std::atoi(argv[1]) : 200000;
  const char* json_path = argc > 2 ? argv[2] : "BENCH_routing.json";

  bench::print_header("ROUTING: connectivity-engine query throughput",
                      "reachability answers back every availability number; CI tracks "
                      "queries/sec and sweep replicates/sec");

  const ScenarioResult pristine = run_scenario("pristine", 0.0, queries);
  const ScenarioResult degraded = run_scenario("degraded-15pct", 0.15, queries);

  Table table{{"scenario", "engine q/s", "bfs q/s", "speedup", "engine smp/s",
               "bfs smp/s", "agree"}};
  for (const ScenarioResult& r : {pristine, degraded}) {
    table.add_row({r.name, Table::num(r.engine_qps, 0), Table::num(r.bfs_qps, 0),
                   Table::num(r.bfs_qps > 0 ? r.engine_qps / r.bfs_qps : 0.0, 1),
                   Table::num(r.engine_sample_qps, 0), Table::num(r.bfs_sample_qps, 0),
                   r.agree ? "yes" : "NO"});
  }
  table.print(std::cout);

  // End-to-end: replicates/sec of a mini sweep (the number the engine moves).
  runner::SweepSpec spec;
  spec.duration = sim::Duration::days(4);
  spec.first_seed = 1;
  spec.seeds = 6;
  spec.cells.push_back({"standard/L3", runner::standard_fabric(),
                        runner::standard_world(core::AutomationLevel::kL3_HighAutomation, 1)});
  runner::SweepRunner sweeper;
  runner::SweepRunner::Options opts;
  opts.jobs = 1;
  const runner::SweepReport sweep = sweeper.run(spec, opts);
  std::printf("\nmini sweep: %zu replicates in %.2fs (%.2f replicates/sec, jobs=1)\n",
              sweep.replicates_done, sweep.wall_seconds, sweep.replicates_per_sec);

  const bool agree = pristine.agree && degraded.agree;
  {
    runner::JsonWriter w;
    w.begin_object();
    w.kv("schema", "smn-bench-routing-v1");
    w.kv("queries", queries);
    for (const ScenarioResult* r : {&pristine, &degraded}) {
      w.key(r->name);
      w.begin_object();
      w.kv("engine_queries_per_sec", r->engine_qps);
      w.kv("bfs_queries_per_sec", r->bfs_qps);
      w.kv("speedup", r->bfs_qps > 0 ? r->engine_qps / r->bfs_qps : 0.0);
      w.kv("engine_sampled_pairs_per_sec", r->engine_sample_qps);
      w.kv("bfs_sampled_pairs_per_sec", r->bfs_sample_qps);
      w.kv("agree", r->agree);
      w.end_object();
    }
    w.key("mini_sweep");
    w.begin_object();
    w.kv("replicates", sweep.replicates_done);
    w.kv("wall_seconds", sweep.wall_seconds);
    w.kv("replicates_per_sec", sweep.replicates_per_sec);
    w.end_object();
    w.kv("agree", agree);
    w.end_object();
    std::ofstream out{json_path};
    out << w.str() << "\n";
    std::printf("report written to %s\n", json_path);
  }

  if (!agree) {
    std::fprintf(stderr,
                 "FAIL: connectivity engine disagreed with the reference BFS — the cache "
                 "is not a pure cache\n");
    return 1;
  }
  return 0;
}
