// E6 — The repair escalation ladder: per-rung resolution shares, repeat
// tickets, and the skip-the-ladder ablation.
//
// §3.2: "the usual first step is to reseat the transceiver. This repair
// process is surprisingly effective"; then cleaning on a repeat ticket, then
// replacement. The ladder exists because most soft failures are cheap to fix;
// the ablation replaces modules immediately and pays for it in parts.
#include <iostream>

#include "bench/common.h"

namespace {

using namespace smn;
using maintenance::RepairActionKind;

struct Row {
  std::string name;
  std::size_t actions[maintenance::kRepairActionKinds] = {};
  std::size_t resolved = 0;
  std::size_t repeats = 0;
  double parts_usd = 0;
};

Row run(const char* name, bool ladder, int days, std::uint64_t seed) {
  const topology::Blueprint bp = bench::standard_fabric();
  scenario::WorldConfig cfg =
      bench::standard_world(core::AutomationLevel::kL3_HighAutomation, seed);
  cfg.controller.escalation.ladder_enabled = ladder;
  cfg.controller.proactive.enabled = false;
  cfg.fleet.spares_per_form_factor = 64;  // ablation must not stall on spares
  scenario::World world{bp, cfg};
  world.run_for(sim::Duration::days(days));

  Row r;
  r.name = name;
  for (int k = 0; k < maintenance::kRepairActionKinds; ++k) {
    const auto kind = static_cast<RepairActionKind>(k);
    r.actions[k] = world.technicians().completed_of(kind) + world.fleet().completed_of(kind);
  }
  const bench::TicketSummary s = bench::summarize_tickets(world.tickets());
  r.resolved = s.resolved;
  r.repeats = s.repeats;
  r.parts_usd = 600.0 * static_cast<double>(r.actions[3]) +
                300.0 * static_cast<double>(r.actions[4]) +
                2500.0 * static_cast<double>(r.actions[5]) +   // line cards
                18000.0 * static_cast<double>(r.actions[6]);
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace smn;
  using analysis::Table;
  const int days = argc > 1 ? std::atoi(argv[1]) : 90;
  const std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 6;

  bench::print_header("E6: escalation ladder",
                      "\"the usual first step is to reseat the transceiver\" (S3.2)");

  const Row with = run("ladder (reseat->clean->replace)", true, days, seed);
  const Row without = run("ablation: replace immediately", false, days, seed);

  Table table{{"configuration", "reseat", "clean", "replace-xcvr", "replace-cable",
               "replace-card", "replace-dev", "resolved", "repeats", "parts ($)"}};
  for (const Row& r : {with, without}) {
    table.add_row({r.name, Table::num(r.actions[0]), Table::num(r.actions[2]),
                   Table::num(r.actions[3]), Table::num(r.actions[4]),
                   Table::num(r.actions[5]), Table::num(r.actions[6]),
                   Table::num(r.resolved), Table::num(r.repeats),
                   Table::num(r.parts_usd, 0)});
  }
  table.print(std::cout);

  // Per-rung share for the ladder run — "how effective is reseating?"
  const double total =
      static_cast<double>(with.actions[0] + with.actions[2] + with.actions[3] +
                          with.actions[4] + with.actions[5] + with.actions[6]);
  if (total > 0) {
    std::cout << "\nladder action mix: reseat "
              << analysis::Table::num(100.0 * with.actions[0] / total, 1) << "%, clean "
              << analysis::Table::num(100.0 * with.actions[2] / total, 1)
              << "%, replace-xcvr "
              << analysis::Table::num(100.0 * with.actions[3] / total, 1)
              << "%, cable/device "
              << analysis::Table::num(
                     100.0 * (with.actions[4] + with.actions[5] + with.actions[6]) / total,
                     1)
              << "%\n";
  }
  std::cout << "\nexpected shape: with the ladder, reseats dominate the action mix and\n"
               "parts spend is small; the ablation burns transceivers (and dollars)\n"
               "on failures a reseat would have fixed. Repeat tickets exist in both —\n"
               "contamination that a reseat cannot fix comes back until cleaned.\n";
  return 0;
}
