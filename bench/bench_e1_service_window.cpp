// E1 — Service window by automation level.
//
// §2: "the significant reduction of the service window for failures,
// potentially shrinking the duration from hours and days to literally
// minutes." Runs the standard hall for 60 days under each automation level
// and reports the open->resolved distribution of genuine reactive tickets,
// plus the CDF series (the "figure" form of the same data).
#include <iostream>

#include "bench/common.h"
#include "fault/trace.h"

int main(int argc, char** argv) {
  using namespace smn;
  using analysis::Table;
  const int days = argc > 1 ? std::atoi(argv[1]) : 60;
  const std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 1;

  bench::print_header("E1: time-to-repair by automation level",
                      "\"shrinking the duration from hours and days to literally minutes\" (S2)");

  Table table{{"level", "tickets", "mean (h)", "median (h)", "p95 (h)", "p99 (h)",
               "min (h)", "robot%", "cancelled"}};
  std::vector<std::pair<std::string, analysis::SampleStats>> cdfs;

  for (const core::AutomationLevel level : bench::kAllLevels) {
    const topology::Blueprint bp = bench::standard_fabric();
    scenario::World world{bp, bench::standard_world(level, seed)};
    world.run_for(sim::Duration::days(days));

    const bench::TicketSummary s = bench::summarize_tickets(world.tickets());
    const std::size_t total_jobs =
        world.controller().robot_jobs() + world.controller().technician_jobs();
    const double robot_pct =
        total_jobs == 0 ? 0.0
                        : 100.0 * static_cast<double>(world.controller().robot_jobs()) /
                              static_cast<double>(total_jobs);
    table.add_row({core::to_string(level), Table::num(s.resolve_hours.count()),
                   Table::num(s.resolve_hours.mean()), Table::num(s.resolve_hours.median()),
                   Table::num(s.resolve_hours.percentile(95)),
                   Table::num(s.resolve_hours.percentile(99)),
                   Table::num(s.resolve_hours.min(), 3), Table::num(robot_pct, 1),
                   Table::num(s.cancelled)});
    cdfs.emplace_back(core::to_string(level), s.resolve_hours);
  }
  table.print(std::cout);

  std::cout << "\nCDF series (fraction of tickets resolved within T hours):\n";
  Table cdf{{"level", "<5min", "<30min", "<1h", "<4h", "<12h", "<24h", "<72h"}};
  const double cuts[] = {5.0 / 60, 0.5, 1, 4, 12, 24, 72};
  for (const auto& [name, stats] : cdfs) {
    std::vector<std::string> row{name};
    for (const double cut : cuts) {
      int within = 0;
      for (const double h : stats.samples()) {
        if (h <= cut) ++within;
      }
      row.push_back(Table::num(
          stats.count() == 0 ? 0.0
                             : static_cast<double>(within) / static_cast<double>(stats.count()),
          3));
    }
    cdf.add_row(std::move(row));
  }
  cdf.print(std::cout);

  // --- Trace-driven differential: every level sees the *identical* fault
  // workload, recorded once from a passive (never-repaired) world. This
  // removes the divergence that same-seed comparisons accumulate after the
  // first repair changes downstream hazards.
  fault::FaultTrace trace;
  {
    scenario::WorldConfig passive =
        bench::standard_world(core::AutomationLevel::kL0_Manual, seed);
    passive.technicians.technicians = 0;  // nobody repairs anything
    const topology::Blueprint bp = bench::standard_fabric();
    scenario::World world{bp, passive};
    trace.attach(world.injector());
    world.run_for(sim::Duration::days(days));
  }
  std::cout << "\ntrace-driven (identical workload of " << trace.size()
            << " recorded faults):\n";
  Table traced{{"level", "tickets", "mean (h)", "median (h)", "p95 (h)", "resolved%"}};
  for (const core::AutomationLevel level : bench::kAllLevels) {
    scenario::WorldConfig cfg = bench::standard_world(level, seed);
    // Exogenous-workload mode: stochastic fault processes off.
    cfg.faults.transceiver_afr = 0;
    cfg.faults.cable_afr = 0;
    cfg.faults.switch_afr = 0;
    cfg.faults.server_nic_afr = 0;
    cfg.faults.gray_rate_per_year = 0;
    cfg.contamination.mean_accumulation_per_day = 0;
    cfg.detection.false_positive_per_year = 0;
    const topology::Blueprint bp = bench::standard_fabric();
    scenario::World world{bp, cfg};
    world.start();
    fault::TraceReplayer replayer{world.network(), world.injector()};
    replayer.schedule(trace);
    world.run_for(sim::Duration::days(days));

    const bench::TicketSummary s = bench::summarize_tickets(world.tickets());
    const std::size_t total = s.resolved + s.cancelled;
    traced.add_row({core::to_string(level), Table::num(s.resolve_hours.count()),
                    Table::num(s.resolve_hours.mean()),
                    Table::num(s.resolve_hours.median()),
                    Table::num(s.resolve_hours.percentile(95)),
                    Table::num(total == 0 ? 0.0
                                          : 100.0 * static_cast<double>(s.resolved) /
                                                static_cast<double>(total),
                               1)});
  }
  traced.print(std::cout);

  std::cout << "\nexpected shape: L0/L1 medians in the many-hours range (dispatch\n"
               "latency dominates), L2 gated by supervision, L3/L4 medians in\n"
               "minutes — a 10-100x service-window reduction. The trace-driven table\n"
               "shows the same ordering on a fault-for-fault identical workload.\n";
  return 0;
}
