// Survivability-frontier micro-bench: the tracked perf numbers for the
// reverse-replay union-find engine (src/analysis/survivability.{h,cpp}).
//
// Measures replay throughput in *steps* (one element removal = one curve
// point) per wall second on the standard fabric, against the naive baseline
// that re-runs BFS over the surviving graph after every removal — the same
// oracle the differential tests use. Two hard gates: the engine must agree
// with the naive curves bit-for-bit, and the steady-state replay loop must
// perform ZERO heap allocations (scratch is sized once in the constructor).
// The speedup_vs_naive figure in the JSON is the acceptance number for the
// incremental engine (>= 10x on the standard fabric).
//
// Usage: bench_survivability [orderings] [json_out=BENCH_survivability.json]
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <new>
#include <span>
#include <vector>

#include "analysis/report.h"
#include "analysis/survivability.h"
#include "runner/json_writer.h"
#include "runner/presets.h"
#include "topology/blueprint.h"

namespace {
std::atomic<std::uint64_t> g_allocs{0};
}  // namespace

// Program-wide replacement so every heap allocation in the process is
// counted; the gate measures deltas around the hot loops.
void* operator new(std::size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size == 0 ? 1 : size)) return p;
  throw std::bad_alloc{};
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

using namespace smn;
using analysis::FailureMode;
using analysis::SurvivabilityCurves;
using analysis::SurvivabilityFrontier;

[[nodiscard]] double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

// ---------------------------------------------------------------------------
// Naive baseline: full BFS recompute after every failure step. Mirrors the
// brute-force oracle in tests/survivability_test.cpp (same curve definitions,
// same capacity quantization) so the agreement gate is meaningful.

struct NaiveFrontier {
  explicit NaiveFrontier(const topology::Blueprint& blueprint)
      : bp{blueprint}, adjacency{blueprint.adjacency()} {
    for (std::size_t i = 0; i < bp.nodes().size(); ++i) {
      if (!topology::is_switch(bp.nodes()[i].role)) ++servers;
    }
    node_alive.resize(bp.nodes().size());
    link_failed.resize(bp.links().size());
    visited.resize(bp.nodes().size());
  }

  void replay(std::span<const std::int32_t> order, SurvivabilityCurves& out) {
    const std::size_t m = order.size();
    out.largest_component.resize(m + 1);
    out.server_reachability.resize(m + 1);
    out.bisection.resize(m + 1);
    std::vector<std::int32_t> raw_largest(m + 1);
    std::vector<std::int32_t> raw_servers(m + 1);
    std::vector<std::uint64_t> raw_cut(m + 1);
    for (std::size_t k = 0; k <= m; ++k) {
      std::fill(node_alive.begin(), node_alive.end(), std::uint8_t{1});
      std::fill(link_failed.begin(), link_failed.end(), std::uint8_t{0});
      for (std::size_t i = 0; i < k; ++i) {
        link_failed[static_cast<std::size_t>(order[i])] = 1;
      }
      scan(raw_largest[k], raw_servers[k], raw_cut[k]);
    }
    const double device_den = static_cast<double>(bp.nodes().size());
    const double server_den = static_cast<double>(servers);
    for (std::size_t k = 0; k <= m; ++k) {
      out.largest_component[k] = static_cast<double>(raw_largest[k]) / device_den;
      out.server_reachability[k] =
          servers > 0 ? static_cast<double>(raw_servers[k]) / server_den : 1.0;
      out.bisection[k] = raw_cut[0] > 0 ? static_cast<double>(raw_cut[k]) /
                                              static_cast<double>(raw_cut[0])
                                        : 1.0;
    }
  }

 private:
  void scan(std::int32_t& largest, std::int32_t& max_servers, std::uint64_t& server_cut) {
    largest = 0;
    max_servers = 0;
    server_cut = 0;
    std::fill(visited.begin(), visited.end(), std::uint8_t{0});
    std::vector<int> queue;
    for (std::size_t start = 0; start < bp.nodes().size(); ++start) {
      if (visited[start] != 0 || node_alive[start] == 0) continue;
      std::int32_t size = 0;
      std::int32_t comp_servers = 0;
      std::uint64_t cut = 0;
      queue.clear();
      queue.push_back(static_cast<int>(start));
      visited[start] = 1;
      while (!queue.empty()) {
        const int node = queue.back();
        queue.pop_back();
        ++size;
        if (!topology::is_switch(bp.nodes()[static_cast<std::size_t>(node)].role)) {
          ++comp_servers;
        }
        for (const auto& [peer, link] : adjacency[static_cast<std::size_t>(node)]) {
          if (link_failed[static_cast<std::size_t>(link)] != 0) continue;
          if (node_alive[static_cast<std::size_t>(peer)] == 0) continue;
          const topology::LinkSpec& l = bp.links()[static_cast<std::size_t>(link)];
          if (node == std::min(l.node_a, l.node_b) && (l.node_a & 1) != (l.node_b & 1)) {
            cut += SurvivabilityFrontier::capacity_units(l.capacity_gbps);
          }
          if (visited[static_cast<std::size_t>(peer)] == 0) {
            visited[static_cast<std::size_t>(peer)] = 1;
            queue.push_back(peer);
          }
        }
      }
      largest = std::max(largest, size);
      max_servers = std::max(max_servers, comp_servers);
      if (comp_servers > 0) server_cut += cut;
    }
  }

  const topology::Blueprint& bp;
  std::vector<std::vector<std::pair<int, int>>> adjacency;
  std::size_t servers = 0;
  std::vector<std::uint8_t> node_alive;
  std::vector<std::uint8_t> link_failed;
  std::vector<std::uint8_t> visited;
};

struct EngineRate {
  double steps_per_sec = 0.0;
  std::uint64_t steady_allocs = 0;
  std::uint64_t steps = 0;
};

/// Engine replay throughput + the allocation gate: after one warm-up replay
/// per mode (scratch reaches steady size), the make_ordering + replay loop
/// must never touch the heap.
[[nodiscard]] EngineRate bench_engine(SurvivabilityFrontier& engine, FailureMode mode,
                                      int orderings) {
  const std::size_t m = engine.element_count(mode);
  std::vector<std::int32_t> order;
  SurvivabilityCurves curves;
  engine.make_ordering(mode, 1, order);
  engine.replay(mode, order, curves);  // warm-up: scratch reaches steady size

  EngineRate out;
  const std::uint64_t allocs_before = g_allocs.load(std::memory_order_relaxed);
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < orderings; ++i) {
    engine.make_ordering(mode, static_cast<std::uint64_t>(i + 2), order);
    engine.replay(mode, order, curves);
  }
  const double dt = seconds_since(t0);
  out.steady_allocs = g_allocs.load(std::memory_order_relaxed) - allocs_before;
  out.steps = static_cast<std::uint64_t>(orderings) * m;
  out.steps_per_sec = static_cast<double>(out.steps) / dt;
  return out;
}

/// Naive BFS-per-step throughput on the same orderings (fewer of them — the
/// baseline is quadratic in the element count).
[[nodiscard]] double bench_naive(const topology::Blueprint& bp, SurvivabilityFrontier& engine,
                                 int orderings) {
  NaiveFrontier naive{bp};
  const std::size_t m = engine.element_count(FailureMode::kLinks);
  std::vector<std::int32_t> order;
  SurvivabilityCurves curves;
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < orderings; ++i) {
    engine.make_ordering(FailureMode::kLinks, static_cast<std::uint64_t>(i + 2), order);
    naive.replay(order, curves);
  }
  const double dt = seconds_since(t0);
  return static_cast<double>(static_cast<std::uint64_t>(orderings) * m) / dt;
}

/// The agreement gate: engine curves must equal the naive curves bit-for-bit
/// on a handful of orderings (the full differential suite lives in
/// tests/survivability_test.cpp; this keeps the bench self-validating).
[[nodiscard]] bool verify_agreement(const topology::Blueprint& bp,
                                    SurvivabilityFrontier& engine, int orderings) {
  NaiveFrontier naive{bp};
  std::vector<std::int32_t> order;
  SurvivabilityCurves fast;
  SurvivabilityCurves slow;
  for (int i = 0; i < orderings; ++i) {
    engine.make_ordering(FailureMode::kLinks, static_cast<std::uint64_t>(i + 2), order);
    engine.replay(FailureMode::kLinks, order, fast);
    naive.replay(order, slow);
    if (fast.largest_component != slow.largest_component ||
        fast.server_reachability != slow.server_reachability ||
        fast.bisection != slow.bisection) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using analysis::Table;
  const int orderings = argc > 1 ? std::atoi(argv[1]) : 400;
  const char* json_path = argc > 2 ? argv[2] : "BENCH_survivability.json";

  std::printf("SURVIVABILITY FRONTIER: reverse-replay union-find vs naive BFS\n");
  std::printf("  progressive-failure curve steps/sec on the standard fabric;\n");
  std::printf("  CI gates on engine==naive agreement and zero replay allocations\n\n");

  const topology::Blueprint bp = runner::standard_fabric();
  SurvivabilityFrontier engine{bp};
  const std::size_t m_links = engine.element_count(FailureMode::kLinks);

  const bool agrees = verify_agreement(bp, engine, 4);
  const EngineRate links = bench_engine(engine, FailureMode::kLinks, orderings);
  const EngineRate switches = bench_engine(engine, FailureMode::kSwitches, orderings);
  const int naive_orderings = std::max(4, orderings / 20);
  const double naive_sps = bench_naive(bp, engine, naive_orderings);
  const double speedup = naive_sps > 0.0 ? links.steps_per_sec / naive_sps : 0.0;

  Table table{{"benchmark", "rate", "unit"}};
  table.add_row({"frontier replay (links)", Table::num(links.steps_per_sec, 0), "steps/s"});
  table.add_row(
      {"frontier replay (switches)", Table::num(switches.steps_per_sec, 0), "steps/s"});
  table.add_row({"naive BFS-per-step (links)", Table::num(naive_sps, 0), "steps/s"});
  table.add_row({"speedup vs naive", Table::num(speedup, 1), "x"});
  table.add_row({"steady-state allocations",
                 Table::num(static_cast<double>(links.steady_allocs + switches.steady_allocs), 0),
                 "allocs"});
  table.print(std::cout);

  {
    runner::JsonWriter w;
    w.begin_object();
    w.kv("schema", "smn-bench-survivability-v1");
    w.kv("orderings", static_cast<double>(orderings));
    w.kv("elements_links", static_cast<double>(m_links));
    w.kv("frontier_steps_per_sec", links.steps_per_sec);
    w.kv("frontier_switch_steps_per_sec", switches.steps_per_sec);
    w.kv("naive_steps_per_sec", naive_sps);
    w.kv("speedup_vs_naive", speedup);
    w.kv("steady_state_allocs",
         static_cast<double>(links.steady_allocs + switches.steady_allocs));
    w.end_object();
    std::ofstream out{json_path};
    out << w.str() << "\n";
    std::printf("report written to %s\n", json_path);
  }

  if (!agrees) {
    std::fprintf(stderr, "FAIL: engine curves diverged from the naive BFS baseline\n");
    return 1;
  }
  if (links.steady_allocs + switches.steady_allocs != 0) {
    std::fprintf(stderr,
                 "FAIL: %llu heap allocations across %llu steady-state replay steps — the "
                 "replay loop must be allocation-free\n",
                 static_cast<unsigned long long>(links.steady_allocs + switches.steady_allocs),
                 static_cast<unsigned long long>(links.steps + switches.steps));
    return 1;
  }
  return 0;
}
