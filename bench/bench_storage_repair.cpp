// Storage data-plane micro-bench: the tracked perf numbers for the
// SNS-repair subsystem (src/storage/).
//
// Measures clean-read throughput (the steady-state ReadFom tick), degraded
// reads (fan-out + route_and_load per read — the expensive path), repair
// throughput (pick/rebuild/re-place cycles of the RepairCoordinator), and
// the wall cost of one simulated day on the standard fabric with storage
// enabled. The hard gate is the allocation counter: with a healthy fabric
// and no dirty groups, read ticks must perform ZERO heap allocations — the
// contract that keeps long sweeps flat. A nonzero steady state exits 1 and
// fails CI's bench-smoke job.
//
// Usage: bench_storage_repair [sim_days] [json_out=BENCH_storage.json]
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <new>
#include <string>

#include "analysis/report.h"
#include "runner/json_writer.h"
#include "runner/presets.h"
#include "scenario/world.h"
#include "storage/data_plane.h"
#include "topology/builders.h"

namespace {
std::atomic<std::uint64_t> g_allocs{0};
}  // namespace

// Program-wide replacement so every heap allocation in the process is
// counted; the gate measures deltas around the hot loops.
void* operator new(std::size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size == 0 ? 1 : size)) return p;
  throw std::bad_alloc{};
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

using namespace smn;

[[nodiscard]] double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

struct Plant {
  sim::Simulator sim;
  topology::Blueprint bp = runner::standard_fabric();
  net::Network net{bp, net::Network::Config{}, sim};
  sim::RngFactory rngs{17};

  void kill_server(std::size_t i) {
    for (const net::LinkId lid : net.links_at(net.servers().at(i))) {
      net.link_mut(lid).cable.intact = false;
      net.refresh_link(lid);
    }
  }
};

/// Clean reads on a healthy fabric: the steady-state ReadFom tick rate.
/// Also the allocation gate: after one warm-up window, the read loop must
/// never touch the heap.
struct CleanReads {
  double reads_per_sec = 0.0;
  std::uint64_t steady_allocs = 0;
  std::uint64_t reads = 0;
};

[[nodiscard]] CleanReads bench_clean_reads(double sim_days) {
  Plant plant;
  storage::DataPlane::Config cfg;
  cfg.enabled = true;
  cfg.layout = {.data_units = 8, .parity_units = 2, .stripes = 256};
  cfg.read_interval = sim::Duration::minutes(1);
  cfg.reads_per_tick = 64;
  storage::DataPlane dp{plant.net, plant.rngs.stream("storage"), cfg};
  dp.start();
  plant.sim.run_until(plant.sim.now() + sim::Duration::hours(2.0));  // warm-up

  CleanReads out;
  const std::uint64_t reads_before = dp.reads();
  const std::uint64_t allocs_before = g_allocs.load(std::memory_order_relaxed);
  const auto t0 = std::chrono::steady_clock::now();
  plant.sim.run_until(plant.sim.now() + sim::Duration::days(sim_days));
  const double dt = seconds_since(t0);
  out.steady_allocs = g_allocs.load(std::memory_order_relaxed) - allocs_before;
  out.reads = dp.reads() - reads_before;
  out.reads_per_sec = static_cast<double>(out.reads) / dt;
  dp.check_invariants();
  return out;
}

/// Degraded reads: two dead servers, repair off, so every read of an
/// affected group reconstructs inline (fan-out + route_and_load).
[[nodiscard]] double bench_degraded_reads(double sim_days) {
  Plant plant;
  storage::DataPlane::Config cfg;
  cfg.enabled = true;
  cfg.layout = {.data_units = 8, .parity_units = 2, .stripes = 256};
  cfg.read_interval = sim::Duration::minutes(1);
  cfg.reads_per_tick = 64;
  cfg.repair = false;  // keep the groups degraded for the whole window
  storage::DataPlane dp{plant.net, plant.rngs.stream("storage"), cfg};
  dp.start();
  plant.kill_server(0);
  plant.kill_server(1);
  const auto t0 = std::chrono::steady_clock::now();
  plant.sim.run_until(plant.sim.now() + sim::Duration::days(sim_days));
  const double dt = seconds_since(t0);
  dp.check_invariants();
  return static_cast<double>(dp.degraded_reads()) / dt;
}

/// Repair churn: servers die one after another; the coordinator re-places
/// their units onto survivors. Small units + a fat healthy-rate bucket keep
/// the simulated rebuild delay negligible, so the wall cost measured is the
/// pick/rebuild/re-place work itself.
struct RepairRate {
  double repairs_per_sec = 0.0;
  double mb_per_sec = 0.0;
  std::uint64_t repairs = 0;
};

[[nodiscard]] RepairRate bench_repair(int waves) {
  Plant plant;
  storage::DataPlane::Config cfg;
  cfg.enabled = true;
  cfg.layout = {.data_units = 8, .parity_units = 2, .stripes = 512, .unit_mb = 8.0};
  cfg.read_interval = sim::Duration::zero();  // repair only
  cfg.repair_mbps = 1.0e6;
  storage::DataPlane dp{plant.net, plant.rngs.stream("storage"), cfg};
  dp.start();

  RepairRate out;
  const auto t0 = std::chrono::steady_clock::now();
  for (int w = 0; w < waves; ++w) {
    plant.kill_server(static_cast<std::size_t>(w) % plant.net.servers().size());
    plant.sim.run_until(plant.sim.now() + sim::Duration::hours(6.0));
  }
  const double dt = seconds_since(t0);
  out.repairs = dp.repairs_completed();
  out.repairs_per_sec = static_cast<double>(out.repairs) / dt;
  out.mb_per_sec = dp.repaired_mb() / dt;
  dp.check_invariants();
  return out;
}

/// One simulated day of the full standard world with storage enabled — the
/// end-to-end marginal cost the sweep engine pays per replicate-day.
[[nodiscard]] double bench_world_day(double sim_days) {
  scenario::WorldConfig cfg =
      runner::storage_world(core::AutomationLevel::kL3_HighAutomation, 23);
  scenario::World world{runner::standard_fabric(), cfg};
  world.start();
  world.run_for(sim::Duration::days(1.0));  // warm-up day
  const auto t0 = std::chrono::steady_clock::now();
  world.run_for(sim::Duration::days(sim_days));
  const double dt = seconds_since(t0);
  world.check_invariants();
  return static_cast<double>(sim_days) / dt;  // simulated days per wall second
}

}  // namespace

int main(int argc, char** argv) {
  using analysis::Table;
  const double sim_days = argc > 1 ? std::atof(argv[1]) : 4.0;
  const char* json_path = argc > 2 ? argv[2] : "BENCH_storage.json";

  std::printf("STORAGE DATA PLANE: SNS-repair micro-bench\n");
  std::printf("  clean/degraded read ticks, repair churn, world day-step with storage;\n");
  std::printf("  CI tracks rates and gates on zero steady-state read allocations\n\n");

  const CleanReads clean = bench_clean_reads(sim_days);
  const double degraded_rps = bench_degraded_reads(sim_days);
  const RepairRate repair = bench_repair(24);
  const double world_dps = bench_world_day(2.0);

  Table table{{"benchmark", "rate", "unit"}};
  table.add_row({"clean reads (healthy fabric)", Table::num(clean.reads_per_sec, 0),
                 "reads/s"});
  table.add_row({"degraded reads (2 dead servers)", Table::num(degraded_rps, 0), "reads/s"});
  table.add_row({"repair cycles", Table::num(repair.repairs_per_sec, 0), "repairs/s"});
  table.add_row({"repair volume", Table::num(repair.mb_per_sec, 0), "MB/s"});
  table.add_row({"world day-step w/ storage", Table::num(world_dps, 2), "sim-days/s"});
  table.add_row({"steady-state allocations",
                 Table::num(static_cast<double>(clean.steady_allocs), 0), "allocs"});
  table.print(std::cout);

  {
    runner::JsonWriter w;
    w.begin_object();
    w.kv("schema", "smn-bench-storage-v1");
    w.kv("sim_days", sim_days);
    w.kv("clean_reads_per_sec", clean.reads_per_sec);
    w.kv("degraded_reads_per_sec", degraded_rps);
    w.kv("repairs_per_sec", repair.repairs_per_sec);
    w.kv("repair_mb_per_sec", repair.mb_per_sec);
    w.kv("world_days_per_sec_with_storage", world_dps);
    w.kv("steady_state_allocs", static_cast<double>(clean.steady_allocs));
    w.kv("steady_state_reads", static_cast<double>(clean.reads));
    w.end_object();
    std::ofstream out{json_path};
    out << w.str() << "\n";
    std::printf("report written to %s\n", json_path);
  }

  if (clean.steady_allocs != 0) {
    std::fprintf(stderr,
                 "FAIL: %llu heap allocations across %llu steady-state reads — the "
                 "healthy-fabric read loop must be allocation-free\n",
                 static_cast<unsigned long long>(clean.steady_allocs),
                 static_cast<unsigned long long>(clean.reads));
    return 1;
  }
  return 0;
}
