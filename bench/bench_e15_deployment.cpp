// E15 — Deploying the network: human crews vs robot fleets.
//
// §4: "the reason why these more efficient topologies are not deployed is due
// to the complexity to manually deploy the complex wiring looms. ... if we
// can build self-maintaining systems, these systems may well be able to also
// deploy the network originally not just maintain it."
//
// Prices the initial wiring of four fabrics (matched server count) under a
// human cable crew and a robot fleet. The decisive column is expected
// mis-wirings: human error scales with wiring irregularity (every cable in a
// random fabric is unique), robot terminations are machine-verified and flat.
#include <iostream>

#include "analysis/report.h"
#include "topology/builders.h"
#include "topology/deployment.h"
#include "topology/metrics.h"

int main() {
  using namespace smn;
  using analysis::Table;

  std::printf("==============================================================\n");
  std::printf("E15: robotic network deployment\n");
  std::printf("paper hook: \"these systems may well be able to also deploy the "
              "network originally\" (S4)\n");
  std::printf("==============================================================\n");

  struct Fabric {
    const char* name;
    topology::Blueprint bp;
  };
  std::vector<Fabric> fabrics;
  fabrics.push_back({"fat-tree k=8", topology::build_fat_tree({.k = 8})});
  fabrics.push_back({"leaf-spine 32x8",
                     topology::build_leaf_spine(
                         {.leaves = 32, .spines = 8, .servers_per_leaf = 4})});
  fabrics.push_back({"jellyfish d=10",
                     topology::build_jellyfish({.switches = 32,
                                                .network_degree = 10,
                                                .servers_per_switch = 4,
                                                .seed = 15})});
  fabrics.push_back({"xpander d=7 L=4",
                     topology::build_xpander({.network_degree = 7,
                                              .lift = 4,
                                              .servers_per_switch = 4,
                                              .seed = 15})});
  fabrics.push_back({"dragonfly a=4 h=2",
                     topology::build_dragonfly({.routers_per_group = 4,
                                                .servers_per_router = 4,
                                                .global_per_router = 2})});
  fabrics.push_back({"torus 8x8",
                     topology::build_torus2d({.x = 8, .y = 8, .servers_per_node = 4})});

  const topology::CrewParams human = topology::CrewParams::human_crew(6);
  const topology::CrewParams robots = topology::CrewParams::robot_fleet(6);

  Table table{{"topology", "bundling", "crew", "work h", "days", "miswires",
               "rework h", "cost ($)"}};
  for (const Fabric& f : fabrics) {
    const double bundling = topology::compute_self_maintainability(f.bp).bundling;
    for (const auto& [crew_name, crew] :
         {std::pair{"human x6", human}, std::pair{"robot x6", robots}}) {
      const topology::DeploymentEstimate est = topology::estimate_deployment(f.bp, crew);
      table.add_row({f.name, Table::num(bundling, 2), crew_name,
                     Table::num(est.total_work_hours, 1), Table::num(est.calendar_days, 1),
                     Table::num(est.expected_miswires, 1), Table::num(est.rework_hours, 1),
                     Table::num(est.labor_cost_usd, 0)});
    }
  }
  table.print(std::cout);
  std::cout << "\nexpected shape: for human crews the expander fabrics pay a steep\n"
               "mis-wiring/rework premium on top of unbundled pulling (every cable a\n"
               "unique run); robot deployment flattens the error term to near zero\n"
               "and equalizes cost across topologies — removing the deployability\n"
               "objection the paper says has kept expanders out of datacenters.\n";
  return 0;
}
