// Sweep-engine throughput: the tracked perf number for the parallel runner.
//
// Runs the identical Monte-Carlo grid (standard fabric, L3, `seeds`
// replicates) twice — serial (jobs=1) and on every core (jobs=nproc) — and
// reports replicates/sec for both plus the speedup. The seed dimension is
// embarrassingly parallel, so on an N-core machine the speedup should
// approach min(N, seeds); CI records the trajectory via BENCH_sweep.json.
//
// Correctness gate: the per-(cell, seed) trace hashes of the two runs must
// be bit-identical — thread count must never be simulation-visible. A
// mismatch exits 1 and fails CI.
//
// Usage: bench_sweep_throughput [days] [seeds] [json_out=BENCH_sweep.json]
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <thread>

#include "analysis/report.h"
#include "bench/common.h"
#include "runner/json_writer.h"
#include "runner/presets.h"
#include "runner/sweep.h"

int main(int argc, char** argv) {
  using namespace smn;
  using analysis::Table;
  const int days = argc > 1 ? std::atoi(argv[1]) : 8;
  const unsigned hw = std::thread::hardware_concurrency();
  const int nproc = hw == 0 ? 1 : static_cast<int>(hw);
  // Enough tasks to keep every core busy through the tail of the sweep.
  const auto seeds = static_cast<std::uint64_t>(
      argc > 2 ? std::atoi(argv[2]) : std::max(12, 3 * nproc));
  const char* json_path = argc > 3 ? argv[3] : "BENCH_sweep.json";

  bench::print_header("SWEEP: parallel runner throughput",
                      "seed dimension is embarrassingly parallel; CI tracks replicates/sec");

  runner::SweepSpec spec;
  spec.duration = sim::Duration::days(days);
  spec.first_seed = 1;
  spec.seeds = seeds;
  spec.cells.push_back({"standard/L3", runner::standard_fabric(),
                        runner::standard_world(core::AutomationLevel::kL3_HighAutomation, 1)});

  runner::SweepRunner sweeper;
  runner::SweepRunner::Options serial_opts;
  serial_opts.jobs = 1;
  const runner::SweepReport serial = sweeper.run(spec, serial_opts);
  runner::SweepRunner::Options parallel_opts;
  parallel_opts.jobs = nproc;
  const runner::SweepReport parallel = sweeper.run(spec, parallel_opts);

  // Thread-count invariance: identical (cell, seed) grid => identical traces.
  bool hashes_match = serial.cells.size() == parallel.cells.size();
  for (std::size_t c = 0; hashes_match && c < serial.cells.size(); ++c) {
    const auto& a = serial.cells[c].replicates;
    const auto& b = parallel.cells[c].replicates;
    hashes_match = a.size() == b.size();
    for (std::size_t i = 0; hashes_match && i < a.size(); ++i) {
      hashes_match = a[i].seed == b[i].seed && a[i].trace_hash == b[i].trace_hash &&
                     a[i].events == b[i].events;
    }
  }

  const double speedup = serial.replicates_per_sec > 0.0
                             ? parallel.replicates_per_sec / serial.replicates_per_sec
                             : 0.0;
  Table table{{"jobs", "replicates", "wall s", "replicates/sec"}};
  table.add_row({"1", Table::num(serial.replicates_done),
                 Table::num(serial.wall_seconds, 2),
                 Table::num(serial.replicates_per_sec, 2)});
  table.add_row({std::to_string(nproc), Table::num(parallel.replicates_done),
                 Table::num(parallel.wall_seconds, 2),
                 Table::num(parallel.replicates_per_sec, 2)});
  table.print(std::cout);
  std::printf("\nspeedup at jobs=%d: %.2fx over jobs=1 (%llu seeds x %d days, standard "
              "fabric)\ntrace hashes: %s\n",
              nproc, speedup, static_cast<unsigned long long>(seeds), days,
              hashes_match ? "identical across thread counts" : "DIVERGED");

  {
    runner::JsonWriter w;
    w.begin_object();
    w.kv("schema", "smn-sweep-throughput-v1");
    w.kv("days", days);
    w.kv("seeds", seeds);
    w.kv("jobs_parallel", nproc);
    w.kv("rps_serial", serial.replicates_per_sec);
    w.kv("rps_parallel", parallel.replicates_per_sec);
    w.kv("wall_seconds_serial", serial.wall_seconds);
    w.kv("wall_seconds_parallel", parallel.wall_seconds);
    w.kv("speedup", speedup);
    w.kv("hashes_match", hashes_match);
    w.end_object();
    std::ofstream out{json_path};
    // The sweep report and the throughput record, one JSON document each on
    // its own line would break `json.tool`; emit a single wrapper object.
    std::string sweep_json = runner::to_json(parallel);
    std::string wrapper = w.str();
    wrapper.pop_back();  // strip '}' to splice in the full report
    out << wrapper << ",\"sweep\":" << sweep_json << "}\n";
    std::printf("report written to %s\n", json_path);
  }

  if (!hashes_match) {
    std::fprintf(stderr,
                 "FAIL: trace hashes diverged between jobs=1 and jobs=%d — thread count "
                 "leaked into the simulation\n",
                 nproc);
    return 1;
  }
  return 0;
}
