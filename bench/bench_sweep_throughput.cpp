// Sweep-engine throughput: the tracked perf number for the parallel runner.
//
// Runs the identical Monte-Carlo grid (standard fabric, L3, `seeds`
// replicates) twice — serial (jobs=1) and on every core (jobs=nproc) — and
// reports replicates/sec for both plus the speedup. The seed dimension is
// embarrassingly parallel, so on an N-core machine the speedup should
// approach min(N, seeds); CI records the trajectory via BENCH_sweep.json.
//
// Correctness gate: the per-(cell, seed) trace hashes of the two runs must
// be bit-identical — thread count must never be simulation-visible. A
// mismatch exits 1 and fails CI.
//
// Usage: bench_sweep_throughput [days] [seeds] [json_out=BENCH_sweep.json]
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <thread>

#include "analysis/report.h"
#include "bench/common.h"
#include "runner/json_writer.h"
#include "runner/presets.h"
#include "runner/sweep.h"

int main(int argc, char** argv) {
  using namespace smn;
  using analysis::Table;
  const int days = argc > 1 ? std::atoi(argv[1]) : 8;
  const unsigned hw = std::thread::hardware_concurrency();
  const int nproc = hw == 0 ? 1 : static_cast<int>(hw);
  // Enough tasks to keep every core busy through the tail of the sweep.
  const auto seeds = static_cast<std::uint64_t>(
      argc > 2 ? std::atoi(argv[2]) : std::max(12, 3 * nproc));
  const char* json_path = argc > 3 ? argv[3] : "BENCH_sweep.json";

  bench::print_header("SWEEP: parallel runner throughput",
                      "seed dimension is embarrassingly parallel; CI tracks replicates/sec");

  runner::SweepSpec spec;
  spec.duration = sim::Duration::days(days);
  spec.first_seed = 1;
  spec.seeds = seeds;
  spec.cells.push_back({"standard/L3", runner::standard_fabric(),
                        runner::standard_world(core::AutomationLevel::kL3_HighAutomation, 1)});

  runner::SweepRunner sweeper;
  runner::SweepRunner::Options serial_opts;
  serial_opts.jobs = 1;
  const runner::SweepReport serial = sweeper.run(spec, serial_opts);
  runner::SweepRunner::Options parallel_opts;
  parallel_opts.jobs = nproc;
  const runner::SweepReport parallel = sweeper.run(spec, parallel_opts);

  // Thread-count invariance: identical (cell, seed) grid => identical traces.
  bool hashes_match = serial.cells.size() == parallel.cells.size();
  for (std::size_t c = 0; hashes_match && c < serial.cells.size(); ++c) {
    const auto& a = serial.cells[c].replicates;
    const auto& b = parallel.cells[c].replicates;
    hashes_match = a.size() == b.size();
    for (std::size_t i = 0; hashes_match && i < a.size(); ++i) {
      hashes_match = a[i].seed == b[i].seed && a[i].trace_hash == b[i].trace_hash &&
                     a[i].events == b[i].events;
    }
  }

  // The sharded-campus path: same grid shape, but each replicate is a
  // four-hall Campus stepped through epoch barriers. shards=1 runs the
  // domains sequentially; shards=4 gives every hall its own worker. jobs=1
  // in both so only the shard dimension is measured, and the exchange gate
  // (byte-identical trace hashes) rides along as a correctness check.
  const runner::SweepSpec campus_spec =
      runner::campus_sweep(sim::Duration::days(days), 1, seeds);
  runner::SweepRunner::Options campus_serial_opts;
  campus_serial_opts.jobs = 1;
  campus_serial_opts.shards = 1;
  const runner::SweepReport campus_serial = sweeper.run(campus_spec, campus_serial_opts);
  runner::SweepRunner::Options campus_sharded_opts;
  campus_sharded_opts.jobs = 1;
  campus_sharded_opts.shards = 4;
  const runner::SweepReport campus_sharded = sweeper.run(campus_spec, campus_sharded_opts);

  bool campus_hashes_match =
      campus_serial.cells.size() == campus_sharded.cells.size();
  for (std::size_t c = 0; campus_hashes_match && c < campus_serial.cells.size(); ++c) {
    const auto& a = campus_serial.cells[c].replicates;
    const auto& b = campus_sharded.cells[c].replicates;
    campus_hashes_match = a.size() == b.size();
    for (std::size_t i = 0; campus_hashes_match && i < a.size(); ++i) {
      campus_hashes_match = a[i].seed == b[i].seed && a[i].trace_hash == b[i].trace_hash &&
                            a[i].events == b[i].events;
    }
  }
  hashes_match = hashes_match && campus_hashes_match;

  const double campus_speedup =
      campus_serial.replicates_per_sec > 0.0
          ? campus_sharded.replicates_per_sec / campus_serial.replicates_per_sec
          : 0.0;

  const double speedup = serial.replicates_per_sec > 0.0
                             ? parallel.replicates_per_sec / serial.replicates_per_sec
                             : 0.0;
  Table table{{"jobs", "replicates", "wall s", "replicates/sec"}};
  table.add_row({"1", Table::num(serial.replicates_done),
                 Table::num(serial.wall_seconds, 2),
                 Table::num(serial.replicates_per_sec, 2)});
  table.add_row({std::to_string(nproc), Table::num(parallel.replicates_done),
                 Table::num(parallel.wall_seconds, 2),
                 Table::num(parallel.replicates_per_sec, 2)});
  table.print(std::cout);
  std::printf("\nspeedup at jobs=%d: %.2fx over jobs=1 (%llu seeds x %d days, standard "
              "fabric)\n",
              nproc, speedup, static_cast<unsigned long long>(seeds), days);

  Table campus_table{{"shards", "replicates", "wall s", "replicates/sec"}};
  campus_table.add_row({"1", Table::num(campus_serial.replicates_done),
                        Table::num(campus_serial.wall_seconds, 2),
                        Table::num(campus_serial.replicates_per_sec, 2)});
  campus_table.add_row({"4", Table::num(campus_sharded.replicates_done),
                        Table::num(campus_sharded.wall_seconds, 2),
                        Table::num(campus_sharded.replicates_per_sec, 2)});
  campus_table.print(std::cout);
  std::printf("\ncampus speedup at shards=4: %.2fx over shards=1 (4 halls, epoch-barrier "
              "exchange)\ntrace hashes: %s\n",
              campus_speedup,
              hashes_match ? "identical across thread/shard counts" : "DIVERGED");

  {
    runner::JsonWriter w;
    w.begin_object();
    w.kv("schema", "smn-sweep-throughput-v1");
    w.kv("days", days);
    w.kv("seeds", seeds);
    w.kv("jobs_parallel", nproc);
    w.kv("rps_serial", serial.replicates_per_sec);
    w.kv("rps_parallel", parallel.replicates_per_sec);
    w.kv("wall_seconds_serial", serial.wall_seconds);
    w.kv("wall_seconds_parallel", parallel.wall_seconds);
    w.kv("speedup", speedup);
    w.kv("rps_campus_serial", campus_serial.replicates_per_sec);
    w.kv("rps_campus_sharded", campus_sharded.replicates_per_sec);
    w.kv("campus_speedup", campus_speedup);
    w.kv("hashes_match", hashes_match);
    w.end_object();
    std::ofstream out{json_path};
    // The sweep report and the throughput record, one JSON document each on
    // its own line would break `json.tool`; emit a single wrapper object.
    std::string sweep_json = runner::to_json(parallel);
    std::string wrapper = w.str();
    wrapper.pop_back();  // strip '}' to splice in the full report
    out << wrapper << ",\"sweep\":" << sweep_json << "}\n";
    std::printf("report written to %s\n", json_path);
  }

  if (!hashes_match) {
    std::fprintf(stderr,
                 "FAIL: trace hashes diverged across jobs (1 vs %d) or campus shards "
                 "(1 vs 4) — worker count leaked into the simulation\n",
                 nproc);
    return 1;
  }
  return 0;
}
