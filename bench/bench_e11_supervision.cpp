// E11 — Human supervision cost across automation levels.
//
// §2.1 defines the levels by how much human attention they need: L1
// technicians operate the devices, L2 robots need supervision/teleoperation,
// L3 "limited human supervision", L4 none. This bench measures supervision
// hours consumed per 100 repairs, and L2's throughput collapse when
// supervisors are scarce.
#include <iostream>

#include "bench/common.h"

namespace {

using namespace smn;

/// Burst drain under a given level/supervisor count: a power event unseats
/// three switches' optics; report the makespan. At L2, each robot action
/// holds a supervisor slot for its whole duration, so one supervisor
/// serializes the fleet no matter how many gantries are idle.
double burst_makespan_minutes(core::AutomationLevel level, int supervisors,
                              std::uint64_t seed) {
  const topology::Blueprint bp = bench::standard_fabric();
  scenario::WorldConfig cfg = bench::standard_world(level, seed);
  cfg.controller.supervisors = supervisors;
  cfg.controller.proactive.enabled = false;
  cfg.controller.impact_aware = false;
  cfg.faults.transceiver_afr = 0;
  cfg.faults.cable_afr = 0;
  cfg.faults.switch_afr = 0;
  cfg.faults.server_nic_afr = 0;
  cfg.faults.gray_rate_per_year = 0;
  cfg.contamination.mean_accumulation_per_day = 0;
  cfg.detection.false_positive_per_year = 0;
  cfg.fleet.failure_per_job = 0.0;
  scenario::World world{bp, cfg};
  world.start();
  world.run_for(sim::Duration::hours(1));

  const auto tors = world.network().devices_with_role(topology::NodeRole::kTorSwitch);
  const auto spines = world.network().devices_with_role(topology::NodeRole::kSpineSwitch);
  for (const net::DeviceId dev : {tors[0], tors[6], spines[0]}) {
    for (const net::LinkId lid : world.network().links_at(dev)) {
      net::Link& l = world.network().link_mut(lid);
      net::EndCondition& end =
          l.end_a.device == dev ? l.end_a.condition : l.end_b.condition;
      end.transceiver_seated = false;
      world.network().refresh_link(lid);
    }
  }
  const sim::TimePoint burst_at = world.now();
  while (world.network().count_links(net::LinkState::kDown) > 0 &&
         world.now() - burst_at < sim::Duration::days(14)) {
    world.run_for(sim::Duration::minutes(5));
  }
  return (world.now() - burst_at).to_minutes();
}

struct Row {
  std::string name;
  std::size_t repairs = 0;
  double technician_hours = 0;
  double supervision_hours = 0;
  double mean_ticket_hours = 0;
};

Row run(const char* name, core::AutomationLevel level, int supervisors, int days,
        std::uint64_t seed) {
  const topology::Blueprint bp = bench::standard_fabric();
  scenario::WorldConfig cfg = bench::standard_world(level, seed);
  cfg.controller.supervisors = supervisors;
  cfg.controller.proactive.enabled = false;
  cfg.controller.impact_aware = false;  // measure the human gate, not deferral
  // End-of-life optics cohort: enough concurrent repairs that L2's blocking
  // supervision becomes the bottleneck.
  cfg.faults.transceiver_afr = 0.5;
  cfg.faults.oxidation_rate_per_year = 2.0;
  cfg.faults.gray_rate_per_year = 6.0;
  cfg.faults.gray_duration_log_mean = std::log(4.0 * 3600.0);
  scenario::World world{bp, cfg};
  world.run_for(sim::Duration::days(days));

  Row r;
  r.name = name;
  r.repairs = world.technicians().completed() +
              (world.has_fleet() ? world.fleet().completed() : 0);
  r.technician_hours = world.technicians().labor_hours();
  r.supervision_hours = world.controller().supervision_hours();
  r.mean_ticket_hours = bench::summarize_tickets(world.tickets()).resolve_hours.mean();
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace smn;
  using analysis::Table;
  const int days = argc > 1 ? std::atoi(argv[1]) : 60;
  const std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 11;

  bench::print_header("E11: supervision burden by automation level",
                      "levels defined by human supervision required (S2.1)");

  Table table{{"configuration", "repairs", "tech hours", "supervision h",
               "human h / 100 repairs", "mean ticket (h)"}};
  const struct {
    const char* name;
    core::AutomationLevel level;
    int supervisors;
  } sweeps[] = {
      {"L0 manual", core::AutomationLevel::kL0_Manual, 4},
      {"L1 assistive tooling", core::AutomationLevel::kL1_OperatorAssist, 4},
      {"L2, 4 supervisors", core::AutomationLevel::kL2_PartialAutomation, 4},
      {"L2, 1 supervisor", core::AutomationLevel::kL2_PartialAutomation, 1},
      {"L3 high automation", core::AutomationLevel::kL3_HighAutomation, 4},
      {"L4 full automation", core::AutomationLevel::kL4_FullAutomation, 4},
  };
  for (const auto& s : sweeps) {
    const Row r = run(s.name, s.level, s.supervisors, days, seed);
    const double human = r.technician_hours + r.supervision_hours;
    table.add_row({r.name, Table::num(r.repairs), Table::num(r.technician_hours, 1),
                   Table::num(r.supervision_hours, 1),
                   Table::num(r.repairs == 0 ? 0 : 100.0 * human / r.repairs, 2),
                   Table::num(r.mean_ticket_hours, 2)});
  }
  table.print(std::cout);

  Table burst{{"configuration", "burst makespan (min)"}};
  burst.add_row({"L0 manual (4 techs)",
                 Table::num(burst_makespan_minutes(core::AutomationLevel::kL0_Manual, 4,
                                                   seed), 0)});
  for (const int sup : {1, 2, 4}) {
    burst.add_row(
        {"L2, " + std::to_string(sup) + " supervisor(s)",
         Table::num(burst_makespan_minutes(core::AutomationLevel::kL2_PartialAutomation,
                                           sup, seed), 0)});
  }
  burst.add_row({"L3 (no supervision gate)",
                 Table::num(burst_makespan_minutes(
                                core::AutomationLevel::kL3_HighAutomation, 4, seed), 0)});
  std::cout << "\nburst drain (3 switches' optics unseated at once):\n";
  burst.print(std::cout);

  std::cout << "\nexpected shape: human hours per repair fall monotonically L0 -> L4.\n"
               "In the burst, L2 throughput is capped by supervisor slots — one\n"
               "supervisor serializes an otherwise-parallel fleet — while L3 drains\n"
               "at full fleet parallelism. That is the L2->L3 transition the paper's\n"
               "taxonomy is about.\n";
  return 0;
}
