// E4 — Proactive maintenance policies.
//
// §4: "if several links on a switch have been fixed by reseating
// transceivers, the system could proactively reseat all transceivers on that
// switch, even if no issues have been reported. We believe this proactive
// maintenance could enhance reliability and availability while reducing
// operational costs."
//
// Compares reactive-only, the switch-wide-reseat heuristic, and an aggressive
// variant, on the same contamination/oxidation-heavy 90-day workload.
#include <iostream>

#include "bench/common.h"

namespace {

using namespace smn;

struct Row {
  std::string name;
  std::size_t gray = 0;
  std::size_t reactive_tickets = 0;
  std::size_t proactive_actions = 0;
  double impaired_lh = 0;
  double availability = 0;
  double robot_hours = 0;
};

Row run_one(const char* name, bool proactive, int trigger, int days, std::uint64_t seed) {
  const topology::Blueprint bp = bench::standard_fabric();
  scenario::WorldConfig cfg =
      bench::standard_world(core::AutomationLevel::kL3_HighAutomation, seed);
  cfg.controller.proactive.enabled = proactive;
  cfg.controller.proactive.switch_reseat_trigger = trigger;
  cfg.controller.proactive.scan_interval = sim::Duration::hours(2);
  // Oxidation-heavy plant: gray episodes are frequent, long enough to
  // survive transient verification, and reseat-fixable — the exact regime
  // the paper's switch-wide heuristic targets.
  cfg.faults.oxidation_rate_per_year = 1.5;
  cfg.faults.gray_rate_per_year = 3.0;
  cfg.faults.gray_duration_log_mean = std::log(90.0 * 60.0);  // median 90 min
  cfg.contamination.mean_accumulation_per_day = 0.008;
  scenario::World world{bp, cfg};
  world.run_for(sim::Duration::days(days));

  Row r;
  r.name = name;
  r.gray = world.injector().count(fault::FaultKind::kGrayEpisode);
  const bench::TicketSummary s = bench::summarize_tickets(world.tickets());
  r.reactive_tickets = s.resolved + s.cancelled;
  r.proactive_actions = world.controller().proactive_actions();
  r.impaired_lh = world.availability().impaired_link_hours();
  r.availability = world.availability().fleet_availability();
  r.robot_hours = world.fleet().busy_hours();
  return r;
}

/// Mean over several seeds: individual 90-day runs carry sampling noise of
/// the same order as the proactive effect.
Row run(const char* name, bool proactive, int trigger, int days, std::uint64_t seed) {
  constexpr int kSeeds = 5;
  Row mean;
  mean.name = name;
  for (int i = 0; i < kSeeds; ++i) {
    const Row r = run_one(name, proactive, trigger, days, seed + static_cast<unsigned>(i));
    mean.gray += r.gray;
    mean.reactive_tickets += r.reactive_tickets;
    mean.proactive_actions += r.proactive_actions;
    mean.impaired_lh += r.impaired_lh / kSeeds;
    mean.availability += r.availability / kSeeds;
    mean.robot_hours += r.robot_hours / kSeeds;
  }
  mean.gray /= kSeeds;
  mean.reactive_tickets /= kSeeds;
  mean.proactive_actions /= kSeeds;
  return mean;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace smn;
  using analysis::Table;
  const int days = argc > 1 ? std::atoi(argv[1]) : 90;
  const std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 4;

  bench::print_header("E4: proactive maintenance",
                      "\"proactively reseat all transceivers on that switch\" (S4)");

  const Row rows[] = {
      run("reactive only", false, 3, days, seed),
      run("switch-wide, trigger=3", true, 3, days, seed),
      run("switch-wide, trigger=2", true, 2, days, seed),
  };
  Table table{{"policy", "gray episodes", "reactive tickets", "proactive acts",
               "impaired lh", "availability", "robot h"}};
  for (const Row& r : rows) {
    table.add_row({r.name, Table::num(r.gray), Table::num(r.reactive_tickets),
                   Table::num(r.proactive_actions), Table::num(r.impaired_lh, 1),
                   Table::num(r.availability, 6), Table::num(r.robot_hours, 1)});
  }
  table.print(std::cout);
  std::cout << "\nexpected shape: proactive reseating cuts gray episodes, reactive\n"
               "tickets, and impaired link-hours, paid for with otherwise-idle robot\n"
               "hours and a small hard-downtime tax from the extra physical handling\n"
               "(botched actions and touch collateral) — the paper's cost-benefit\n"
               "equation for proactive maintenance, now with numbers attached.\n";
  return 0;
}
