// E10 — The GPU-cluster dilemma: spare links vs repair speed.
//
// §1: "a single network link failing or an HBM module failing changes the
// resource availability per GPU, potentially causing significant fraction of
// the GPU-cluster to go offline, which is costly. However, providing a spare
// network link for every link in a GPU cluster ... is simply impractical."
//
// A rail-optimized training pod runs for 60 days under background rail-link
// faults. A job step completes only when every server has all rails live;
// we integrate job goodput (fraction of time the collective can run at full
// rate) and GPU-hours lost, sweeping automation level x spare rails.
#include <iostream>

#include "bench/common.h"
#include "net/routing.h"
#include "workload/training_job.h"

namespace {

using namespace smn;

struct Row {
  std::string config;
  double goodput = 0;        // useful GPU-hours / total GPU-hours
  double gpu_hours_lost = 0;
  std::size_t interruptions = 0;
  std::size_t rail_faults = 0;
};

Row run(const char* name, core::AutomationLevel level, int rails, int days,
        std::uint64_t seed, bool codesign = false) {
  const topology::GpuClusterParams params{
      .gpu_servers = 16, .rails = rails, .spines = 2};
  const topology::Blueprint bp = topology::build_gpu_cluster(params);
  scenario::WorldConfig cfg = bench::standard_world(level, seed);
  cfg.controller.proactive.enabled = false;
  cfg.faults.transceiver_afr = 0.15;  // hot, dense optics fail young
  cfg.faults.cable_afr = 0.02;
  // The paper's claim is about *link* failures; switch/NIC deaths are a
  // different (rarer) failure domain and would drown the comparison in a
  // handful of multi-day device-replacement events.
  cfg.faults.switch_afr = 0.0;
  cfg.faults.server_nic_afr = 0.0;
  scenario::World world{bp, cfg};

  // A gang-scheduled training job with real checkpoint/restart semantics: it
  // needs 8 live rails per server (extra rails are spares), loses the work
  // since the last checkpoint on every interruption, and pays a restart
  // overhead when the fabric heals.
  workload::TrainingJob::Config job_cfg;
  job_cfg.servers = world.network().servers();
  job_cfg.required_live_links = 8;
  job_cfg.checkpoint_interval = sim::Duration::minutes(30);
  job_cfg.restart_overhead = sim::Duration::minutes(10);
  workload::TrainingJob job{world.network(), job_cfg};
  world.start();
  job.start();
  if (codesign) {
    // Cross-layer co-design (the paper's abstract): the job registers its
    // rails as critical, so their repairs skip deferral and verify fast.
    for (const net::DeviceId s : job_cfg.servers) {
      for (const net::LinkId lid : world.network().links_at(s)) {
        world.controller().set_critical(lid, true);
      }
    }
  }
  world.run_for(sim::Duration::days(days));

  Row r;
  r.config = name;
  r.goodput = job.goodput();
  r.gpu_hours_lost = job.lost_gpu_hours();
  r.interruptions = job.interruptions();
  r.rail_faults = world.injector().count(fault::FaultKind::kTransceiverFailure) +
                  world.injector().count(fault::FaultKind::kCableBreak);
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace smn;
  using analysis::Table;
  const int days = argc > 1 ? std::atoi(argv[1]) : 60;
  const std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 10;

  bench::print_header("E10: GPU-cluster link failures",
                      "\"a single network link failing ... potentially causing significant "
                      "fraction of the GPU-cluster to go offline\" (S1)");

  Table table{{"configuration", "goodput", "GPU-hours lost", "interruptions",
               "rail faults"}};
  const struct {
    const char* name;
    core::AutomationLevel level;
    int rails;
    bool codesign;
  } sweeps[] = {
      {"L0 humans, 8 rails (no spare)", core::AutomationLevel::kL0_Manual, 8, false},
      {"L0 humans, 9 rails (1 spare)", core::AutomationLevel::kL0_Manual, 9, false},
      {"L0 humans, 10 rails (2 spare)", core::AutomationLevel::kL0_Manual, 10, false},
      {"L3 robots, 8 rails (no spare)", core::AutomationLevel::kL3_HighAutomation, 8,
       false},
      {"L3 robots, 8 rails + co-design", core::AutomationLevel::kL3_HighAutomation, 8,
       true},
      {"L3 robots, 9 rails (1 spare)", core::AutomationLevel::kL3_HighAutomation, 9,
       false},
      {"L3 robots, 9 rails + co-design", core::AutomationLevel::kL3_HighAutomation, 9,
       true},
  };
  // Individual runs see a handful of failures, so average over seeds.
  const int kSeeds = 5;
  for (const auto& s : sweeps) {
    Row mean;
    mean.config = s.name;
    for (int i = 0; i < kSeeds; ++i) {
      const Row r =
          run(s.name, s.level, s.rails, days, seed + static_cast<unsigned>(i), s.codesign);
      mean.goodput += r.goodput / kSeeds;
      mean.gpu_hours_lost += r.gpu_hours_lost / kSeeds;
      mean.interruptions += r.interruptions;
      mean.rail_faults += r.rail_faults;
    }
    table.add_row({mean.config, Table::num(mean.goodput, 5),
                   Table::num(mean.gpu_hours_lost, 0), Table::num(mean.interruptions),
                   Table::num(mean.rail_faults)});
  }
  table.print(std::cout);
  std::cout << "\nexpected shape (gang-scheduled job with checkpoint/restart): without\n"
               "spares, human-speed repair loses ~5-6x the GPU-hours of robot-speed\n"
               "repair — each flap or failure stalls the whole collective, and at L0\n"
               "it stays stalled for days. Spare rails prevent stalls outright while\n"
               "fast repair shortens the residual ones, so the two compose: robots\n"
               "with one spare beat humans with one spare ~2x, and reach near-perfect\n"
               "goodput one spare earlier — the right-provisioning escape from the\n"
               "spare-per-link dilemma, with interruption counts showing why (many\n"
               "short robot-era stalls vs few day-long human-era ones). Cross-layer\n"
               "co-design (the job registers its rails as critical) buys back ~30% of\n"
               "the no-spare losses; with a spare in place it buys nothing — eager\n"
               "repair of links the spare already covers just adds physical touches,\n"
               "so criticality tags should track *residual* slack, not raw membership.\n";
  return 0;
}
