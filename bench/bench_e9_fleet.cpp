// E9 — Robot task timing (the paper's §3.3.2 calibration points) and fleet
// sizing: repair throughput vs roster size and mobility scope.
//
// §3.3.2: "the end-face inspection for 8 cores takes less than 30 seconds
// which is less time than a well-trained human"; "This entire operation
// currently takes a few minutes".
// §3.4: robots deploy "at the granularity of a hall or row of racks".
#include <iostream>

#include "analysis/spares.h"
#include "bench/common.h"
#include "robotics/cleaner.h"
#include "robotics/manipulator.h"

namespace {

using namespace smn;
using maintenance::RepairActionKind;

struct FleetRow {
  std::string roster;
  std::size_t completed = 0;
  std::size_t burst_jobs = 0;
  double makespan_minutes = 0;
  double mean_minutes = 0;
  double p95_minutes = 0;
  std::size_t escalations = 0;
};

/// Burst scenario: a power event unseats every transceiver on three switches
/// at once; the roster drains the backlog. Makespan exposes roster
/// parallelism and travel costs.
FleetRow run_roster(const char* name, robotics::RobotFleet::Config fleet_cfg,
                    std::uint64_t seed) {
  const topology::Blueprint bp = bench::standard_fabric();
  scenario::WorldConfig cfg =
      bench::standard_world(core::AutomationLevel::kL3_HighAutomation, seed);
  cfg.controller.proactive.enabled = false;
  cfg.controller.impact_aware = false;  // pure fleet-capacity measurement
  // Quiet background: only the burst.
  cfg.faults.transceiver_afr = 0;
  cfg.faults.cable_afr = 0;
  cfg.faults.switch_afr = 0;
  cfg.faults.server_nic_afr = 0;
  cfg.faults.gray_rate_per_year = 0;
  cfg.contamination.mean_accumulation_per_day = 0;
  cfg.detection.false_positive_per_year = 0;
  cfg.fleet = std::move(fleet_cfg);
  cfg.fleet.failure_per_job = 0.0;
  scenario::World world{bp, cfg};
  world.start();
  world.run_for(sim::Duration::hours(1));

  std::size_t burst = 0;
  const auto tors = world.network().devices_with_role(topology::NodeRole::kTorSwitch);
  const auto spines = world.network().devices_with_role(topology::NodeRole::kSpineSwitch);
  for (const net::DeviceId dev : {tors[0], tors[6], spines[0]}) {
    for (const net::LinkId lid : world.network().links_at(dev)) {
      net::Link& l = world.network().link_mut(lid);
      net::EndCondition& end =
          l.end_a.device == dev ? l.end_a.condition : l.end_b.condition;
      if (!end.transceiver_seated) continue;  // spine/leaf overlap link
      end.transceiver_seated = false;
      world.network().refresh_link(lid);
      ++burst;
    }
  }
  const sim::TimePoint burst_at = world.now();
  const sim::Duration step = sim::Duration::minutes(5);
  while (world.network().count_links(net::LinkState::kDown) > 0 &&
         world.now() - burst_at < sim::Duration::days(3)) {
    world.run_for(step);
  }

  FleetRow r;
  r.roster = name;
  r.completed = world.fleet().completed();
  r.burst_jobs = burst;
  r.makespan_minutes = (world.now() - burst_at).to_minutes();
  const bench::TicketSummary s = bench::summarize_tickets(world.tickets());
  r.mean_minutes = s.resolve_hours.mean() * 60.0;
  r.p95_minutes = s.resolve_hours.percentile(95) * 60.0;
  r.escalations = world.fleet().escalations();
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace smn;
  using analysis::Table;
  const int days = argc > 1 ? std::atoi(argv[1]) : 45;
  const std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 9;

  bench::print_header("E9: robot task timing and fleet sizing",
                      "\"inspection for 8 cores takes less than 30 seconds\" (S3.3.2)");

  // Part 1: task-time microbenches against the paper's stated numbers.
  sim::RngFactory rngs{seed};
  sim::RngStream rng = rngs.stream("micro");
  robotics::ManipulatorModel arm;
  robotics::CleaningModel cleaner;

  analysis::SampleStats reseat_s, clean8_s, inspect8_s;
  for (int i = 0; i < 2000; ++i) {
    const auto a = arm.reseat(rng, net::TransceiverModel{}, 4);
    if (a.success) reseat_s.push(a.duration.to_seconds());
    const auto c = cleaner.clean_sequence(rng, 8);
    if (c.verified) clean8_s.push(c.duration.to_seconds());
    inspect8_s.push(cleaner.profile().per_core_inspect_s * 8);
  }
  Table micro{{"task", "paper says", "mean (s)", "p95 (s)"}};
  micro.add_row({"8-core end-face inspection", "< 30 s", Table::num(inspect8_s.mean(), 1),
                 Table::num(inspect8_s.percentile(95), 1)});
  micro.add_row({"reseat (vision+grasp+swap)", "a few minutes (whole op)",
                 Table::num(reseat_s.mean(), 1), Table::num(reseat_s.percentile(95), 1)});
  micro.add_row({"full clean cycle, 8 cores", "a few minutes",
                 Table::num(clean8_s.mean(), 1), Table::num(clean8_s.percentile(95), 1)});
  std::cout << "robot task times:\n";
  micro.print(std::cout);

  // Part 2: fleet sizing. Rosters from minimal to generous.
  const topology::Blueprint bp = bench::standard_fabric();
  auto rover_only = [&](int rovers) {
    robotics::RobotFleet::Config cfg;
    for (int i = 0; i < rovers; ++i) {
      cfg.units.push_back({"rover-" + std::to_string(i), robotics::MobilityScope::kHall,
                           topology::RackLocation{0, 0, 0, 0}, 0.5});
    }
    return cfg;
  };

  Table sizing{{"roster", "burst jobs", "makespan (min)", "mean ticket (min)",
                "p95 (min)", "escalations"}};
  for (const auto& [name, cfg] :
       std::vector<std::pair<const char*, robotics::RobotFleet::Config>>{
           {"1 hall rover", rover_only(1)},
           {"2 hall rovers", rover_only(2)},
           {"4 hall rovers", rover_only(4)},
           {"row gantries (default)", robotics::RobotFleet::row_coverage(bp, 0)},
           {"row gantries + rover", robotics::RobotFleet::row_coverage(bp, 1)},
       }) {
    const FleetRow r = run_roster(name, cfg, seed);
    sizing.add_row({r.roster, Table::num(r.burst_jobs), Table::num(r.makespan_minutes, 1),
                    Table::num(r.mean_minutes, 1), Table::num(r.p95_minutes, 1),
                    Table::num(r.escalations)});
  }
  std::cout << "\nburst drain (power event unseats 3 switches' optics at once):\n";
  sizing.print(std::cout);
  // Part 3: how many spares should the fleet carry (§3.3.2 "the robots can
  // carry spares")? Stock for the replacement demand of one restock interval.
  Table spares{{"replacements/week", "restock interval", "stock @10% stockout",
                "@1%", "@0.1%"}};
  for (const double weekly : {0.5, 2.0, 5.0, 15.0}) {
    const double demand = weekly;  // 7-day restock => one week of demand
    spares.add_row({Table::num(weekly, 1), "7 days",
                    Table::num(analysis::recommended_spares(demand, 0.10)),
                    Table::num(analysis::recommended_spares(demand, 0.01)),
                    Table::num(analysis::recommended_spares(demand, 0.001))});
  }
  std::cout << "\nspares-cache sizing (Poisson demand over one restock interval):\n";
  spares.print(std::cout);

  std::cout << "\nexpected shape: task times match the paper's stated budget; under a\n"
               "burst, a single hall rover serializes the backlog while per-row\n"
               "gantries drain it in parallel — the paper's many-small-units argument\n"
               "(S3.4). The spares table is the right-provisioning math for the\n"
               "robot's own cache.\n";
  (void)days;
  return 0;
}
