// E8 — Predictive maintenance with machine learning on operational telemetry.
//
// §4: "This also creates new opportunities to use machine learning
// techniques to predict failures and detect related network behavior
// patterns, potentially leveraging data collected by robotic systems."
//
// Phase 1 generates a labelled dataset from a live simulation (feature
// snapshots per link; label = genuine failure ticket within the next 7
// days), trains the logistic predictor on the chronologically earlier 70%,
// and reports the precision/recall curve on the rest. Phase 2 deploys the
// trained model in a fresh world (predictor-driven proactive cleaning) and
// compares against reactive-only.
#include <iostream>
#include <vector>

#include "bench/common.h"
#include "telemetry/predictor.h"

namespace {

using namespace smn;

struct Snapshot {
  sim::TimePoint at;
  net::LinkId link;
  telemetry::FeatureVector features;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace smn;
  using analysis::Table;
  const int days = argc > 1 ? std::atoi(argv[1]) : 150;
  const std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 8;
  const sim::Duration horizon = sim::Duration::days(7);

  bench::print_header("E8: predictive maintenance",
                      "\"machine learning techniques to predict failures\" (S4)");

  // ---- Phase 1: generate the dataset ----
  const topology::Blueprint bp = bench::standard_fabric();
  scenario::WorldConfig cfg =
      bench::standard_world(core::AutomationLevel::kL3_HighAutomation, seed);
  cfg.controller.proactive.enabled = false;  // observe the natural failure process
  cfg.faults.oxidation_rate_per_year = 0.6;
  cfg.contamination.mean_accumulation_per_day = 0.01;
  scenario::World world{bp, cfg};

  std::vector<Snapshot> snapshots;
  world.simulator().schedule_every(sim::Duration::days(1), [&] {
    for (const net::Link& l : world.network().links()) {
      snapshots.push_back(
          {world.now(), l.id, world.controller().features_for(l.id)});
    }
  });
  world.run_for(sim::Duration::days(days));

  // Label: a genuine, reactive ticket opened on that link within the horizon.
  auto failed_within = [&](net::LinkId link, sim::TimePoint at) {
    for (const maintenance::Ticket& t : world.tickets().all()) {
      if (t.link == link && t.genuine && !t.proactive && t.opened > at &&
          t.opened - at <= horizon) {
        return true;
      }
    }
    return false;
  };

  std::vector<telemetry::TrainingExample> train_set, test_set;
  const sim::TimePoint split =
      sim::TimePoint::origin() + sim::Duration::days(days * 7 / 10);
  std::size_t positives = 0;
  for (const Snapshot& s : snapshots) {
    if (world.now() - s.at < horizon) continue;  // label window incomplete
    telemetry::TrainingExample ex{s.features, failed_within(s.link, s.at)};
    if (ex.failed_within_horizon) ++positives;
    (s.at <= split ? train_set : test_set).push_back(ex);
  }
  std::printf("dataset: %zu train / %zu test examples, %zu positive (%.1f%%)\n\n",
              train_set.size(), test_set.size(), positives,
              100.0 * static_cast<double>(positives) /
                  static_cast<double>(train_set.size() + test_set.size()));

  sim::RngFactory rngs{seed};
  sim::RngStream train_rng = rngs.stream("train");
  telemetry::LogisticPredictor model;
  model.train(train_set, train_rng);

  Table curve{{"threshold", "precision", "recall", "F1", "flagged", "true-pos"}};
  for (const double thr : {0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8}) {
    const telemetry::EvaluationResult r = model.evaluate(test_set, thr);
    curve.add_row({Table::num(thr, 1), Table::num(r.precision), Table::num(r.recall),
                   Table::num(r.f1), Table::num(r.predicted_positive),
                   Table::num(r.true_positive)});
  }
  std::cout << "precision/recall vs threshold (held-out tail of the trace):\n";
  curve.print(std::cout);

  // ---- Phase 2: deploy predict-and-act ----
  auto deploy = [&](bool use_predictor) {
    scenario::WorldConfig dcfg =
        bench::standard_world(core::AutomationLevel::kL3_HighAutomation, seed + 1);
    dcfg.controller.proactive.enabled = use_predictor;
    dcfg.controller.proactive.switch_wide_reseat = false;  // isolate the predictor
    dcfg.controller.proactive.use_predictor = use_predictor;
    dcfg.controller.proactive.predictor_threshold = 0.30;
    dcfg.controller.proactive.scan_interval = sim::Duration::hours(3);
    dcfg.controller.proactive.per_link_cooldown = sim::Duration::days(10);
    dcfg.faults.oxidation_rate_per_year = 0.6;
    dcfg.contamination.mean_accumulation_per_day = 0.01;
    scenario::World w{bp, dcfg};
    if (use_predictor) w.controller().set_predictor(&model);
    // Long enough that links accumulate the history the features are built
    // from — a fresh plant gives the predictor nothing to score.
    w.run_for(sim::Duration::days(150));
    return std::tuple{w.availability().fleet_availability(),
                      w.availability().impaired_link_hours(),
                      bench::summarize_tickets(w.tickets()).resolved,
                      w.controller().proactive_actions()};
  };
  const auto [av_r, imp_r, tick_r, pro_r] = deploy(false);
  const auto [av_p, imp_p, tick_p, pro_p] = deploy(true);

  Table dep{{"policy", "availability", "impaired lh", "reactive tickets",
             "proactive acts"}};
  dep.add_row({"reactive only", Table::num(av_r, 6), Table::num(imp_r, 1),
               Table::num(tick_r), Table::num(pro_r)});
  dep.add_row({"predict-and-act @0.30", Table::num(av_p, 6), Table::num(imp_p, 1),
               Table::num(tick_p), Table::num(pro_p)});
  std::cout << "\n150-day deployment:\n";
  dep.print(std::cout);
  std::cout << "\nexpected shape: operational telemetry gives a precision lift of\n"
               "2-4x over the base failure rate at useful recall (failure processes\n"
               "are genuinely stochastic, so perfect prediction is impossible by\n"
               "construction); acting on predictions buys back a modest slice of\n"
               "impaired time for a small number of targeted robot actions.\n";
  return 0;
}
