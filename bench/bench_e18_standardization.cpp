// E18 — Hardware standardization for robot manipulability.
//
// §4: "There are literally tens of different designs for optical
// transceivers deployed ... the backend of the transceiver, where it is
// grasped by humans, can vary in color, shape, material, stiffness ... Such
// diversity creates significant challenges for automation. To make
// self-maintenance effective, hardware should be redesigned to reduce
// diversity and complexity, making it easier for robots to manipulate."
//
// Sweeps the fleet's transceiver-SKU diversity (vendor count and hard-tab
// prevalence) and measures what the robots feel: grasp-failure escalations,
// mean ticket time, and the share of repairs that fall back to humans.
#include <iostream>

#include "bench/common.h"

namespace {

using namespace smn;

struct Row {
  std::string name;
  std::size_t skus = 0;
  std::size_t robot_jobs = 0;
  std::size_t escalations = 0;
  double escalation_pct = 0;
  double mean_ticket_hours = 0;
  std::size_t human_fallbacks = 0;
};

Row run(const char* name, int vendors, double hard_tab_penalty, int days,
        std::uint64_t seed) {
  const topology::Blueprint bp = bench::standard_fabric();
  scenario::WorldConfig cfg =
      bench::standard_world(core::AutomationLevel::kL3_HighAutomation, seed);
  cfg.controller.proactive.enabled = false;
  cfg.network.vendor_count = vendors;
  cfg.fleet.manipulator.hard_tab_penalty = hard_tab_penalty;
  // Heavy fault volume so escalation percentages are stable (hundreds of
  // robot grasps per run).
  cfg.faults.transceiver_afr = 0.5;
  cfg.faults.oxidation_rate_per_year = 2.0;
  cfg.faults.gray_rate_per_year = 6.0;
  cfg.faults.gray_duration_log_mean = std::log(4.0 * 3600.0);
  scenario::World world{bp, cfg};
  world.run_for(sim::Duration::days(days));

  Row r;
  r.name = name;
  r.skus = world.network().transceiver_sku_count();
  r.robot_jobs = world.controller().robot_jobs();
  r.escalations = world.fleet().escalations();
  r.escalation_pct = r.robot_jobs == 0
                         ? 0.0
                         : 100.0 * static_cast<double>(r.escalations) /
                               static_cast<double>(r.robot_jobs);
  r.mean_ticket_hours = bench::summarize_tickets(world.tickets()).resolve_hours.mean();
  r.human_fallbacks = world.controller().human_escalations();
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace smn;
  using analysis::Table;
  const int days = argc > 1 ? std::atoi(argv[1]) : 60;
  const std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 18;

  bench::print_header("E18: hardware standardization",
                      "\"hardware should be redesigned to reduce diversity and complexity, "
                      "making it easier for robots to manipulate\" (S4)");

  Table table{{"fleet hardware", "SKUs", "robot jobs", "escalations", "escal %",
               "human fallbacks", "mean ticket (h)"}};
  const struct {
    const char* name;
    int vendors;
    double hard_tab;
  } sweeps[] = {
      {"standardized (1 vendor, robot-friendly tabs)", 1, 0.0},
      {"2 vendors, mild tab diversity", 2, 0.05},
      {"5 vendors, today's diversity", 5, 0.10},
      {"8 vendors, hostile tabs", 8, 0.25},
  };
  for (const auto& s : sweeps) {
    const Row r = run(s.name, s.vendors, s.hard_tab, days, seed);
    table.add_row({r.name, Table::num(r.skus), Table::num(r.robot_jobs),
                   Table::num(r.escalations), Table::num(r.escalation_pct, 1),
                   Table::num(r.human_fallbacks), Table::num(r.mean_ticket_hours, 2)});
  }
  table.print(std::cout);
  std::cout << "\nexpected shape: grasp escalations and human fallbacks climb steadily\n"
               "with SKU diversity and hostile tab designs, dragging mean ticket time\n"
               "with them — quantifying the paper's case for redesigning pluggables\n"
               "around robotic manipulability.\n";
  return 0;
}
