// Unit tests for the discrete-event engine, time primitives, and RNG streams.
#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "sim/event_queue.h"
#include "sim/rng.h"
#include "sim/time.h"

namespace smn::sim {
namespace {

TEST(Duration, ConversionsRoundTrip) {
  EXPECT_EQ(Duration::seconds(1.0).count_us(), 1'000'000);
  EXPECT_DOUBLE_EQ(Duration::minutes(2.0).to_seconds(), 120.0);
  EXPECT_DOUBLE_EQ(Duration::hours(1.0).to_minutes(), 60.0);
  EXPECT_DOUBLE_EQ(Duration::days(2.0).to_hours(), 48.0);
  EXPECT_DOUBLE_EQ(Duration::milliseconds(1.5).count_us(), 1500);
}

TEST(Duration, Arithmetic) {
  const Duration d = Duration::seconds(10) + Duration::seconds(5);
  EXPECT_DOUBLE_EQ(d.to_seconds(), 15.0);
  EXPECT_DOUBLE_EQ((d - Duration::seconds(5)).to_seconds(), 10.0);
  EXPECT_DOUBLE_EQ((d * 2.0).to_seconds(), 30.0);
  EXPECT_DOUBLE_EQ((d / 3.0).to_seconds(), 5.0);
  EXPECT_DOUBLE_EQ(d.ratio(Duration::seconds(5)), 3.0);
  EXPECT_LT(Duration::seconds(1), Duration::seconds(2));
  EXPECT_EQ(-Duration::seconds(1), Duration::zero() - Duration::seconds(1));
}

TEST(TimePoint, OffsetsAndDifferences) {
  const TimePoint t0 = TimePoint::origin();
  const TimePoint t1 = t0 + Duration::hours(3);
  EXPECT_DOUBLE_EQ((t1 - t0).to_hours(), 3.0);
  EXPECT_EQ(t1 - Duration::hours(3), t0);
  EXPECT_GT(t1, t0);
}

TEST(FormatDuration, HumanReadable) {
  EXPECT_EQ(format_duration(Duration::microseconds(500)), "500us");
  EXPECT_EQ(format_duration(Duration::milliseconds(2.5)), "2.5ms");
  EXPECT_EQ(format_duration(Duration::seconds(42)), "42.0s");
  EXPECT_EQ(format_duration(Duration::minutes(90)), "01:30:00");
  EXPECT_EQ(format_duration(Duration::days(2) + Duration::hours(3)), "2d 03:00:00");
}

TEST(Simulator, RunsEventsInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(TimePoint::origin() + Duration::seconds(3), [&] { order.push_back(3); });
  sim.schedule_at(TimePoint::origin() + Duration::seconds(1), [&] { order.push_back(1); });
  sim.schedule_at(TimePoint::origin() + Duration::seconds(2), [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.events_processed(), 3u);
  EXPECT_DOUBLE_EQ(sim.now().to_seconds(), 3.0);
}

TEST(Simulator, SimultaneousEventsRunInScheduleOrder) {
  Simulator sim;
  std::vector<int> order;
  const TimePoint t = TimePoint::origin() + Duration::seconds(1);
  for (int i = 0; i < 10; ++i) {
    sim.schedule_at(t, [&order, i] { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator sim;
  bool ran = false;
  const EventId id = sim.schedule_after(Duration::seconds(1), [&] { ran = true; });
  sim.cancel(id);
  sim.run();
  EXPECT_FALSE(ran);
}

TEST(Simulator, CancelUnknownIdIsNoOp) {
  Simulator sim;
  sim.cancel(kInvalidEvent);
  sim.cancel(EventId{9999});
  EXPECT_FALSE(sim.step());
}

TEST(Simulator, RunUntilStopsAtDeadlineAndAdvancesClock) {
  Simulator sim;
  int count = 0;
  sim.schedule_every(Duration::seconds(10), [&] { ++count; });
  sim.run_until(TimePoint::origin() + Duration::seconds(35));
  EXPECT_EQ(count, 3);
  EXPECT_DOUBLE_EQ(sim.now().to_seconds(), 35.0);
}

TEST(Simulator, RunUntilWithEmptyQueueStillAdvancesClock) {
  Simulator sim;
  sim.run_until(TimePoint::origin() + Duration::hours(1));
  EXPECT_DOUBLE_EQ(sim.now().to_hours(), 1.0);
}

TEST(Simulator, PeriodicTaskCancellation) {
  Simulator sim;
  int count = 0;
  const EventId handle = sim.schedule_every(Duration::seconds(1), [&] { ++count; });
  sim.run_until(TimePoint::origin() + Duration::seconds(5));
  sim.cancel_periodic(handle);
  sim.run_until(TimePoint::origin() + Duration::seconds(20));
  EXPECT_EQ(count, 5);
}

TEST(Simulator, PeriodicSelfCancellationFromCallback) {
  Simulator sim;
  int count = 0;
  EventId handle = kInvalidEvent;
  handle = sim.schedule_every(Duration::seconds(1), [&] {
    ++count;
    if (count == 3) sim.cancel_periodic(handle);
  });
  sim.run_until(TimePoint::origin() + Duration::seconds(30));
  EXPECT_EQ(count, 3);
}

TEST(Simulator, SchedulingInThePastThrows) {
  Simulator sim;
  sim.schedule_after(Duration::seconds(5), [] {});
  sim.run();
  EXPECT_THROW(sim.schedule_at(TimePoint::origin() + Duration::seconds(1), [] {}),
               std::invalid_argument);
}

TEST(Simulator, NestedSchedulingFromCallback) {
  Simulator sim;
  std::vector<double> times;
  sim.schedule_after(Duration::seconds(1), [&] {
    times.push_back(sim.now().to_seconds());
    sim.schedule_after(Duration::seconds(1), [&] { times.push_back(sim.now().to_seconds()); });
  });
  sim.run();
  ASSERT_EQ(times.size(), 2u);
  EXPECT_DOUBLE_EQ(times[0], 1.0);
  EXPECT_DOUBLE_EQ(times[1], 2.0);
}

// --- SmallFn (the allocation-free callback vehicle) -------------------------

TEST(SmallFn, SmallCapturesStayInline) {
  int hits = 0;
  int* p = &hits;
  SmallFn f{[p] { ++*p; }};
  EXPECT_TRUE(f.is_inline());
  EXPECT_TRUE(static_cast<bool>(f));
  f();
  f();
  EXPECT_EQ(hits, 2);
  // The documented budget: anything up to kSmallFnInlineBytes stays inline.
  struct AtBudget {
    char bytes[kSmallFnInlineBytes];
  };
  EXPECT_TRUE(SmallFn::fits_inline<decltype([x = AtBudget{}] { (void)x; })>());
}

TEST(SmallFn, OversizedCapturesFallBackToHeap) {
  struct Fat {
    char bytes[kSmallFnInlineBytes + 1] = {};
  };
  int hits = 0;
  int* p = &hits;
  SmallFn f{[p, fat = Fat{}] {
    (void)fat;
    ++*p;
  }};
  EXPECT_FALSE(f.is_inline());
  f();
  EXPECT_EQ(hits, 1);
}

TEST(SmallFn, MovePreservesCallableAndEmptiesSource) {
  int hits = 0;
  int* p = &hits;
  SmallFn a{[p] { ++*p; }};
  SmallFn b{std::move(a)};
  EXPECT_FALSE(static_cast<bool>(a));  // NOLINT(bugprone-use-after-move)
  b();
  EXPECT_EQ(hits, 1);
  SmallFn c;
  c = std::move(b);
  c();
  EXPECT_EQ(hits, 2);
}

TEST(SmallFn, DestroysCaptureOnResetAndDestruction) {
  struct Probe {
    int* live;
    explicit Probe(int* l) : live{l} { ++*live; }
    Probe(const Probe& o) : live{o.live} { ++*live; }
    Probe(Probe&& o) noexcept : live{o.live} { ++*live; }
    ~Probe() { --*live; }
  };
  int live = 0;
  {
    SmallFn f{[probe = Probe{&live}] { (void)probe; }};
    EXPECT_GT(live, 0);
    f.reset();
    EXPECT_EQ(live, 0);
    EXPECT_FALSE(static_cast<bool>(f));
  }
  {
    SmallFn f{[probe = Probe{&live}] { (void)probe; }};
    EXPECT_GT(live, 0);
  }
  EXPECT_EQ(live, 0);
}

// --- slot-arena internals exposed through the public API --------------------

TEST(Simulator, CancelReclaimsCaptureEagerly) {
  // The old queue left cancelled closures alive until their time arrived
  // (the documented lag); the slot arena must destroy them at cancel().
  struct Probe {
    int* live;
    explicit Probe(int* l) : live{l} { ++*live; }
    Probe(const Probe& o) : live{o.live} { ++*live; }
    Probe(Probe&& o) noexcept : live{o.live} { ++*live; }
    ~Probe() { --*live; }
  };
  Simulator sim;
  int live = 0;
  const EventId id = sim.schedule_after(Duration::days(30),
                                        [probe = Probe{&live}] { (void)probe; });
  EXPECT_GT(live, 0);
  sim.cancel(id);
  EXPECT_EQ(live, 0);  // reclaimed now, not 30 simulated days later
  sim.check_invariants();
  sim.run();
}

TEST(Simulator, SlotsAreRecycledAcrossChurn) {
  // Schedule/cancel churn must not grow bookkeeping: pending() returns to
  // zero and invariants hold at every step.
  Simulator sim;
  for (int round = 0; round < 100; ++round) {
    const EventId keep = sim.schedule_after(Duration::hours(1), [] {});
    const EventId drop = sim.schedule_after(Duration::hours(2), [] {});
    sim.cancel(drop);
    sim.cancel(keep);
  }
  EXPECT_EQ(sim.pending(), 0u);
  sim.check_invariants();
}

TEST(Simulator, StaleIdAfterSlotReuseIsNoOp) {
  // Generation tags: an id whose slot was reclaimed and reused must not
  // cancel the new occupant.
  Simulator sim;
  const EventId old_id = sim.schedule_after(Duration::hours(1), [] {});
  sim.cancel(old_id);
  int ran = 0;
  sim.schedule_after(Duration::hours(1), [&ran] { ++ran; });  // reuses the slot
  sim.cancel(old_id);  // stale generation: must be ignored
  sim.run();
  EXPECT_EQ(ran, 1);
}

TEST(Simulator, PeriodicHandleIsNotCancellableAsEvent) {
  // Periodic handles live in a tagged id space; cancel() must ignore them
  // (and cancel_periodic must ignore plain event ids).
  Simulator sim;
  int ticks = 0;
  const EventId periodic = sim.schedule_every(Duration::hours(1), [&ticks] { ++ticks; });
  const EventId plain = sim.schedule_after(Duration::hours(10), [] {});
  sim.cancel(periodic);        // wrong API for a periodic: no-op
  sim.cancel_periodic(plain);  // wrong API for a plain event: no-op
  sim.run_until(TimePoint{} + Duration::hours(3.5));
  EXPECT_EQ(ticks, 3);
  sim.cancel_periodic(periodic);
  sim.cancel(plain);
  sim.run();
  sim.check_invariants();
}

TEST(Simulator, CheckInvariantsHoldsThroughMixedLoad) {
  Simulator sim;
  RngStream rng = RngFactory{42}.stream("mix");
  std::vector<EventId> ids;
  int fired = 0;
  for (int i = 0; i < 200; ++i) {
    ids.push_back(sim.schedule_after(Duration::hours(rng.uniform(0.1, 48.0)),
                                     [&fired] { ++fired; }));
  }
  for (std::size_t i = 0; i < ids.size(); i += 3) sim.cancel(ids[i]);
  sim.check_invariants();
  sim.run_until(TimePoint{} + Duration::hours(24.0));
  sim.check_invariants();
  sim.run();
  sim.check_invariants();
  EXPECT_EQ(sim.pending(), 0u);
  EXPECT_GT(fired, 0);
}

TEST(Rng, SameSeedSameStreamIsReproducible) {
  RngFactory f1{12345};
  RngFactory f2{12345};
  RngStream a = f1.stream("faults");
  RngStream b = f2.stream("faults");
  for (int i = 0; i < 100; ++i) EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
}

TEST(Rng, DifferentStreamsDiffer) {
  RngFactory f{12345};
  RngStream a = f.stream("faults");
  RngStream b = f.stream("robots");
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.uniform() == b.uniform()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(Rng, BernoulliExtremes) {
  RngFactory f{1};
  RngStream s = f.stream("x");
  for (int i = 0; i < 32; ++i) {
    EXPECT_FALSE(s.bernoulli(0.0));
    EXPECT_TRUE(s.bernoulli(1.0));
  }
}

TEST(Rng, ExponentialMeanIsApproximatelyRight) {
  RngFactory f{7};
  RngStream s = f.stream("exp");
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += s.exponential(10.0);
  EXPECT_NEAR(sum / n, 10.0, 0.5);
}

TEST(Rng, WeightedIndexRespectsWeights) {
  RngFactory f{7};
  RngStream s = f.stream("w");
  const std::vector<double> w{1.0, 0.0, 3.0};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 8000; ++i) ++counts[s.weighted_index(w)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[0], 3.0, 0.5);
}

TEST(Rng, WeightedIndexRejectsBadInput) {
  RngFactory f{7};
  RngStream s = f.stream("w");
  EXPECT_THROW((void)s.weighted_index({}), std::invalid_argument);
  const std::vector<double> zeros{0.0, 0.0};
  EXPECT_THROW((void)s.weighted_index(zeros), std::invalid_argument);
}

TEST(Rng, NormalMinTruncates) {
  RngFactory f{9};
  RngStream s = f.stream("nm");
  for (int i = 0; i < 1000; ++i) EXPECT_GE(s.normal_min(1.0, 5.0, 0.0), 0.0);
}

TEST(Rng, IndexOnEmptyThrows) {
  RngFactory f{9};
  RngStream s = f.stream("i");
  EXPECT_THROW((void)s.index(0), std::invalid_argument);
}

TEST(Rng, ShuffleIsPermutation) {
  RngFactory f{11};
  RngStream s = f.stream("sh");
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> orig = v;
  s.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

}  // namespace
}  // namespace smn::sim
