// Tests for the manipulator and cleaning-robot models and the fleet
// dispatcher, including the paper's §3.3.2 timing calibration points.
#include <gtest/gtest.h>

#include <optional>

#include "fault/cascade.h"
#include "fault/contamination.h"
#include "fault/environment.h"
#include "fault/injector.h"
#include "robotics/cleaner.h"
#include "robotics/fleet.h"
#include "robotics/manipulator.h"
#include "test_util.h"
#include "topology/builders.h"

namespace smn::robotics {
namespace {

using maintenance::Job;
using maintenance::JobReport;
using maintenance::RepairActionKind;
using sim::Duration;
using sim::TimePoint;

TEST(Manipulator, GraspSuccessDegradesWithClutterAndHardTabs) {
  ManipulatorModel m;
  net::TransceiverModel easy;
  easy.tab = net::TabStyle::kPullTab;
  net::TransceiverModel hard;
  hard.tab = net::TabStyle::kRecessed;
  EXPECT_GT(m.grasp_success_probability(easy, 0), m.grasp_success_probability(hard, 0));
  EXPECT_GT(m.grasp_success_probability(easy, 0), m.grasp_success_probability(easy, 20));
  EXPECT_GE(m.grasp_success_probability(hard, 1000), 0.05);  // clamped
}

TEST(Manipulator, ReseatTakesUnderAFewMinutes) {
  // §3.3.2: "This entire operation currently takes a few minutes."
  ManipulatorModel m;
  sim::RngFactory rngs{3};
  sim::RngStream rng = rngs.stream("m");
  net::TransceiverModel sku;
  for (int i = 0; i < 50; ++i) {
    const auto a = m.reseat(rng, sku, 4);
    if (!a.success) continue;
    EXPECT_LT(a.duration.to_minutes(), 3.0);
    EXPECT_GT(a.duration.to_seconds(), 30.0);
  }
}

TEST(Manipulator, RetriesAccumulateTime) {
  ManipulatorProfile p;
  p.base_grasp_success = 0.0;  // always fails => max retries burned
  ManipulatorModel m{p};
  sim::RngFactory rngs{3};
  sim::RngStream rng = rngs.stream("m");
  const auto a = m.reseat(rng, net::TransceiverModel{}, 0);
  EXPECT_FALSE(a.success);
  EXPECT_EQ(a.grasp_attempts, p.max_grasp_retries);
  ManipulatorModel good{};
  const auto b = good.reseat(rng, net::TransceiverModel{}, 0);
  if (b.success && b.grasp_attempts == 1) {
    EXPECT_GT(a.duration, b.duration);
  }
}

TEST(Cleaner, EightCoreInspectionUnderThirtySeconds) {
  // §3.3.2: "the end-face inspection for 8 cores takes less than 30 seconds".
  CleaningModel c;
  const double inspect_s = c.profile().per_core_inspect_s * 8;
  EXPECT_LT(inspect_s, 30.0);
}

TEST(Cleaner, SequenceFollowsThePaperStateMachine) {
  CleaningModel c;
  sim::RngFactory rngs{4};
  sim::RngStream rng = rngs.stream("c");
  const auto run = c.clean_sequence(rng, 8);
  ASSERT_GE(run.trace.size(), 6u);
  EXPECT_EQ(run.trace[0], CleaningStep::kDetach);
  EXPECT_EQ(run.trace[1], CleaningStep::kInspect);
  EXPECT_EQ(run.trace[2], CleaningStep::kWetClean);
  EXPECT_EQ(run.trace[3], CleaningStep::kDryClean);
  if (run.verified) {
    EXPECT_EQ(run.trace.back(), CleaningStep::kReassemble);
  } else {
    EXPECT_EQ(run.trace.back(), CleaningStep::kEscalate);
  }
}

TEST(Cleaner, WholeCleanIsMinutesScale) {
  CleaningModel c;
  sim::RngFactory rngs{4};
  sim::RngStream rng = rngs.stream("c");
  for (int i = 0; i < 20; ++i) {
    const auto run = c.clean_sequence(rng, 8);
    EXPECT_GT(run.duration.to_minutes(), 1.0);
    EXPECT_LT(run.duration.to_minutes(), 15.0);
    EXPECT_GT(run.total_effectiveness, 0.5);
    EXPECT_LE(run.total_effectiveness, 1.0);
  }
}

TEST(Cleaner, VerifyFailureEscalatesAfterMaxCycles) {
  CleaningProfile p;
  p.verify_pass = 0.0;
  CleaningModel c{p};
  sim::RngFactory rngs{4};
  sim::RngStream rng = rngs.stream("c");
  const auto run = c.clean_sequence(rng, 2);
  EXPECT_FALSE(run.verified);
  EXPECT_EQ(run.cycles, p.max_cycles);
}

TEST(Cleaner, MoreCoresTakeLonger) {
  CleaningModel c;
  EXPECT_GT(c.inspect_only(8).to_seconds(), c.inspect_only(1).to_seconds());
}

TEST(Cleaner, GradedVerificationTracksActualResidual) {
  CleaningModel c;
  sim::RngFactory rngs{5};
  sim::RngStream rng = rngs.stream("g");
  // Light dirt: one cycle reduces it far below the spec; verification should
  // pass essentially always, with a graded scan attached.
  int verified = 0;
  for (int i = 0; i < 30; ++i) {
    const auto run = c.clean_sequence_graded(rng, 8, 0.3);
    if (run.verified) {
      ++verified;
      EXPECT_TRUE(run.last_scan.passes(true));
      EXPECT_EQ(run.last_scan.cores.size(), 8u);
    }
  }
  EXPECT_GE(verified, 28);
}

TEST(Cleaner, GradedVerificationEscalatesOnImpossibleDirt) {
  CleaningProfile p;
  p.cycle_effectiveness = 0.05;  // barely cleans
  CleaningModel c{p};
  sim::RngFactory rngs{5};
  sim::RngStream rng = rngs.stream("g2");
  int escalated = 0;
  for (int i = 0; i < 20; ++i) {
    const auto run = c.clean_sequence_graded(rng, 8, 1.0);
    if (!run.verified) ++escalated;
  }
  EXPECT_GE(escalated, 15);  // cannot reach spec => requests human support
}

TEST(Cleaner, GradedCleanOfPristineFaceIsTrivial) {
  CleaningModel c;
  sim::RngFactory rngs{6};
  sim::RngStream rng = rngs.stream("g3");
  const auto run = c.clean_sequence_graded(rng, 4, 0.0);
  EXPECT_TRUE(run.verified);
  EXPECT_EQ(run.cycles, 1);
  EXPECT_DOUBLE_EQ(run.total_effectiveness, 1.0);
}

// --- fleet ---

struct FleetFixture : ::testing::Test {
  sim::Simulator sim;
  topology::Blueprint bp = topology::build_leaf_spine(
      {.leaves = 4, .spines = 2, .servers_per_leaf = 2, .uplinks_per_spine = 2});
  net::Network net{bp, testutil::short_aoc(), sim};
  fault::Environment env;
  sim::RngFactory rngs{31};
  fault::FaultInjector injector{net, env, rngs.stream("inj")};
  fault::CascadeModel cascade{net, env, injector, rngs.stream("casc")};
  fault::ContaminationProcess contamination{net, env, rngs.stream("cont")};

  RobotFleet::Config reliable_config() {
    RobotFleet::Config cfg = RobotFleet::row_coverage(bp);
    cfg.failure_per_job = 0.0;
    cfg.manipulator.base_grasp_success = 1.0;
    cfg.manipulator.clutter_penalty_per_neighbor = 0.0;
    cfg.manipulator.hard_tab_penalty = 0.0;
    cfg.cleaner.verify_pass = 1.0;
    return cfg;
  }
};

TEST_F(FleetFixture, RowCoverageCreatesGantriesForSwitchRows) {
  const RobotFleet::Config cfg = RobotFleet::row_coverage(bp, 2);
  int gantries = 0, rovers = 0;
  for (const RobotUnitSpec& u : cfg.units) {
    if (u.scope == MobilityScope::kRow) ++gantries;
    if (u.scope == MobilityScope::kHall) ++rovers;
  }
  EXPECT_EQ(rovers, 2);
  EXPECT_GE(gantries, 2);  // spine row + leaf row(s)
}

TEST_F(FleetFixture, ReseatCompletesInMinutesNotDays) {
  RobotFleet fleet{net, cascade, &contamination, rngs.stream("fleet"), reliable_config()};
  net.link_mut(net::LinkId{0}).end_a.condition.transceiver_seated = false;
  net.refresh_link(net::LinkId{0});
  std::optional<JobReport> report;
  fleet.submit(Job{0, net::LinkId{0}, 0, RepairActionKind::kReseat, true},
               [&](const JobReport& r) { report = r; });
  sim.run_until(TimePoint::origin() + Duration::hours(2));
  ASSERT_TRUE(report.has_value());
  EXPECT_TRUE(report->performed);
  EXPECT_EQ(report->performer, "robot");
  EXPECT_LT((report->finished - report->enqueued).to_minutes(), 30.0);
  EXPECT_EQ(net.link(net::LinkId{0}).state, net::LinkState::kUp);
}

TEST_F(FleetFixture, CleanRemovesContaminationViaCleaningUnit) {
  RobotFleet fleet{net, cascade, &contamination, rngs.stream("fleet"), reliable_config()};
  net::LinkId optical;
  for (const net::Link& l : net.links()) {
    if (net::is_cleanable(l.medium)) {
      optical = l.id;
      break;
    }
  }
  net.link_mut(optical).end_a.condition.contamination = 0.8;
  net.refresh_link(optical);
  std::optional<JobReport> report;
  fleet.submit(Job{0, optical, 0, RepairActionKind::kClean, true},
               [&](const JobReport& r) { report = r; });
  sim.run_until(TimePoint::origin() + Duration::hours(2));
  ASSERT_TRUE(report.has_value());
  EXPECT_TRUE(report->performed);
  EXPECT_LT(net.link(optical).end_a.condition.contamination, 0.2);
}

TEST_F(FleetFixture, CableReplacementIsOutOfScopeByDefault) {
  RobotFleet fleet{net, cascade, &contamination, rngs.stream("fleet"), reliable_config()};
  EXPECT_FALSE(fleet.capable(RepairActionKind::kReplaceCable));
  std::optional<JobReport> report;
  fleet.submit(Job{0, net::LinkId{0}, 0, RepairActionKind::kReplaceCable, false},
               [&](const JobReport& r) { report = r; });
  ASSERT_TRUE(report.has_value());  // immediate rejection
  EXPECT_FALSE(report->performed);
  EXPECT_EQ(report->performer, "robot-incapable");
}

TEST_F(FleetFixture, FutureWorkCableUnitCanBeEnabled) {
  RobotFleet::Config cfg = reliable_config();
  cfg.can_replace_cable = true;
  RobotFleet fleet{net, cascade, &contamination, rngs.stream("fleet"), cfg};
  EXPECT_TRUE(fleet.capable(RepairActionKind::kReplaceCable));
}

TEST_F(FleetFixture, SparesRunOutAndRestock) {
  RobotFleet::Config cfg = reliable_config();
  cfg.spares_per_form_factor = 1;
  cfg.restock_interval = Duration::days(1);
  RobotFleet fleet{net, cascade, &contamination, rngs.stream("fleet"), cfg};

  // Two dead QSFP28 modules, one spare.
  std::vector<net::LinkId> victims;
  for (const net::Link& l : net.links()) {
    if (l.end_a.model.form_factor == net::FormFactor::kQsfp28) {
      victims.push_back(l.id);
      if (victims.size() == 2) break;
    }
  }
  ASSERT_EQ(victims.size(), 2u);
  int nospare = 0, done = 0;
  for (const net::LinkId v : victims) {
    fleet.submit(Job{0, v, 0, RepairActionKind::kReplaceTransceiver, false},
                 [&](const JobReport& r) {
                   if (r.performer == "robot-nospare") ++nospare;
                   if (r.performed) ++done;
                 });
  }
  sim.run_until(TimePoint::origin() + Duration::hours(6));
  EXPECT_EQ(done, 1);
  EXPECT_EQ(nospare, 1);
  EXPECT_EQ(fleet.stockouts(), 1u);
  sim.run_until(TimePoint::origin() + Duration::days(2));
  EXPECT_EQ(fleet.spares_available(net::FormFactor::kQsfp28), 1);  // restocked
}

TEST_F(FleetFixture, GraspFailureEscalatesToHumanSupport) {
  RobotFleet::Config cfg = reliable_config();
  cfg.manipulator.base_grasp_success = 0.0;
  RobotFleet fleet{net, cascade, &contamination, rngs.stream("fleet"), cfg};
  std::optional<JobReport> report;
  fleet.submit(Job{0, net::LinkId{0}, 0, RepairActionKind::kReseat, false},
               [&](const JobReport& r) { report = r; });
  sim.run_until(TimePoint::origin() + Duration::hours(2));
  ASSERT_TRUE(report.has_value());
  EXPECT_FALSE(report->performed);
  EXPECT_EQ(report->performer, "robot-escalate");
  EXPECT_GE(fleet.escalations(), 1u);
}

TEST_F(FleetFixture, BreakdownTakesUnitOfflineAndRecovers) {
  RobotFleet::Config cfg = reliable_config();
  cfg.failure_per_job = 1.0;  // break after every job
  cfg.robot_repair_time = Duration::hours(1);
  RobotFleet fleet{net, cascade, &contamination, rngs.stream("fleet"), cfg};
  const int online_before = fleet.units_online();
  fleet.submit(Job{0, net::LinkId{0}, 0, RepairActionKind::kInspect, false},
               [](const JobReport&) {});
  sim.run_until(TimePoint::origin() + Duration::minutes(30));
  EXPECT_LT(fleet.units_online(), online_before);
  EXPECT_EQ(fleet.breakdowns(), 1u);
  sim.run_until(TimePoint::origin() + Duration::hours(3));
  EXPECT_EQ(fleet.units_online(), online_before);
}

TEST_F(FleetFixture, RobotDisturbanceIsGentlerThanHuman) {
  // Direct consequence of the Disturbance magnitudes; verified end-to-end in
  // E3, sanity-checked here via the cascade model.
  RobotFleet::Config cfg = reliable_config();
  EXPECT_LT(cfg.disturbance, 1.0);
}

TEST_F(FleetFixture, QueueDrainsManyJobs) {
  RobotFleet fleet{net, cascade, &contamination, rngs.stream("fleet"), reliable_config()};
  int done = 0;
  for (int i = 0; i < 12; ++i) {
    fleet.submit(Job{i, net::LinkId{i}, 0, RepairActionKind::kInspect, false},
                 [&](const JobReport& r) {
                   if (r.performed) ++done;
                 });
  }
  sim.run_until(TimePoint::origin() + Duration::days(1));
  EXPECT_EQ(done, 12);
  EXPECT_EQ(fleet.queued(), 0u);
  EXPECT_GT(fleet.busy_hours(), 0.0);
}

}  // namespace
}  // namespace smn::robotics
