// The sharded campus contract: epoch-barrier arithmetic, canonical exchange
// ordering, the shared spare depot, the cross-shard mailbox, and — the
// property everything else exists to deliver — byte-identical results at any
// shard count. The differential suite anchors the sharded path to the plain
// World: an uncoupled campus domain must be event-for-event the same
// simulation as a standalone World at the derived seed.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "core/spare_pool.h"
#include "net/domain.h"
#include "obs/metrics.h"
#include "runner/presets.h"
#include "runner/shard_pool.h"
#include "runner/sweep.h"
#include "scenario/campus.h"
#include "scenario/world.h"
#include "sim/epoch.h"
#include "sim/rng.h"
#include "topology/builders.h"
#include "topology/campus.h"

namespace smn {
namespace {

using scenario::Campus;
using scenario::CampusConfig;
using scenario::CrossMessage;
using scenario::CrossShardMailbox;
using sim::Duration;
using sim::TimePoint;

TEST(EpochSchedule, BarriersAtFixedMultiplesOfLookahead) {
  const sim::EpochSchedule sched{TimePoint{}, Duration::minutes(1)};
  EXPECT_EQ(sched.next_barrier_after(TimePoint{}), TimePoint{} + Duration::minutes(1));
  // Mid-epoch and exactly-on-barrier times both land on the *next* barrier.
  EXPECT_EQ(sched.next_barrier_after(TimePoint{} + Duration::seconds(59)),
            TimePoint{} + Duration::minutes(1));
  EXPECT_EQ(sched.next_barrier_after(TimePoint{} + Duration::minutes(1)),
            TimePoint{} + Duration::minutes(2));
  EXPECT_EQ(sched.next_barrier_after(TimePoint{} + Duration::seconds(61)),
            TimePoint{} + Duration::minutes(2));
}

TEST(EpochSchedule, RejectsNonPositiveLookahead) {
  EXPECT_THROW((sim::EpochSchedule{TimePoint{}, Duration::zero()}), std::invalid_argument);
  EXPECT_THROW((sim::EpochSchedule{TimePoint{}, Duration::microseconds(-1)}),
               std::invalid_argument);
}

TEST(ExchangeKey, OrdersBySentThenSourceThenSequence) {
  const TimePoint t0;
  const TimePoint t1 = t0 + Duration::seconds(1);
  const sim::ExchangeKey early{t0, 5, 99};
  const sim::ExchangeKey late{t1, 0, 0};
  EXPECT_LT(early, late);
  // Simultaneous sends: the lower source hall wins, then the sequence number
  // — the tie-break that makes simultaneous cross-shard events deterministic.
  EXPECT_LT((sim::ExchangeKey{t0, 0, 7}), (sim::ExchangeKey{t0, 1, 2}));
  EXPECT_LT((sim::ExchangeKey{t0, 1, 2}), (sim::ExchangeKey{t0, 1, 3}));
  EXPECT_FALSE((sim::ExchangeKey{t0, 1, 3}) < (sim::ExchangeKey{t0, 1, 3}));
}

TEST(SparePool, RestockAccruesFractionalCarry) {
  core::SparePool pool{{.initial_stock = 0, .restock_per_day = 1.5, .max_stock = 10}};
  pool.restock_to(TimePoint{} + Duration::days(1));
  EXPECT_EQ(pool.stock(), 1);  // 1.5 accrued, 0.5 carried
  pool.restock_to(TimePoint{} + Duration::days(2));
  EXPECT_EQ(pool.stock(), 3);  // carry 0.5 + 1.5 = 2 whole units
}

TEST(SparePool, RestockSaturatesAtShelfCapacity) {
  core::SparePool pool{{.initial_stock = 4, .restock_per_day = 100.0, .max_stock = 8}};
  pool.restock_to(TimePoint{} + Duration::days(5));
  EXPECT_EQ(pool.stock(), 8);
  // The surplus is returned, not banked: another instant of restock cannot
  // exceed the shelf either.
  pool.restock_to(TimePoint{} + Duration::days(5) + Duration::hours(1));
  EXPECT_EQ(pool.stock(), 8);
}

TEST(SparePool, GrantsClampToStockAndTallyTotals) {
  core::SparePool pool{{.initial_stock = 3, .restock_per_day = 0.0, .max_stock = 10}};
  EXPECT_EQ(pool.grant(2), 2);
  EXPECT_EQ(pool.grant(5), 1);  // only one unit left
  EXPECT_EQ(pool.grant(4), 0);
  EXPECT_EQ(pool.grant(-1), 0);  // nonsense requests grant nothing
  EXPECT_EQ(pool.stock(), 0);
  EXPECT_EQ(pool.granted_total(), 3u);
  EXPECT_EQ(pool.denied_total(), 8u);
}

TEST(CrossShardMailboxTest, ConcurrentPostsAllSurviveAndSortCanonically) {
  CrossShardMailbox mailbox;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 50;
  {
    std::vector<std::jthread> posters;
    posters.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      posters.emplace_back([&mailbox, t] {
        for (int i = 0; i < kPerThread; ++i) {
          std::vector<CrossMessage> batch(1);
          batch[0].src = t;
          batch[0].seq = static_cast<std::uint64_t>(i);
          batch[0].sent = TimePoint{} + Duration::seconds(i % 5);
          mailbox.post(std::move(batch));
        }
      });
    }
  }
  std::vector<CrossMessage> all = mailbox.drain();
  ASSERT_EQ(all.size(), static_cast<std::size_t>(kThreads * kPerThread));
  EXPECT_EQ(mailbox.size(), 0u);
  // Sorting by the canonical key yields a strict total order: (src, seq) is
  // unique, so no two keys compare equal and the result is thread-invariant.
  std::sort(all.begin(), all.end(),
            [](const CrossMessage& a, const CrossMessage& b) { return a.key() < b.key(); });
  for (std::size_t i = 1; i < all.size(); ++i) {
    EXPECT_TRUE(all[i - 1].key() < all[i].key());
  }
}

TEST(DomainGraphTest, RingCampusAdjacencyAndLookahead) {
  topology::CampusParams params;
  params.halls = 4;
  params.hall = {.leaves = 2, .spines = 1, .servers_per_leaf = 1};
  const topology::CampusBlueprint bp = topology::build_campus(params);
  const net::DomainGraph graph{bp};
  ASSERT_EQ(graph.domains(), 4u);
  EXPECT_TRUE(graph.coupled());
  // Ring: every hall has exactly two trunk peers, sorted by hall index.
  for (int h = 0; h < 4; ++h) {
    const std::vector<net::DomainPeer>& peers = graph.peers(h);
    ASSERT_EQ(peers.size(), 2u) << "hall " << h;
    EXPECT_LT(peers[0].hall, peers[1].hall);
  }
  EXPECT_LT(graph.min_latency(), Duration::max());
  EXPECT_GT(graph.min_latency(), Duration::zero());
  EXPECT_EQ(graph.latency(0, 1), graph.latency(1, 0));
  EXPECT_EQ(graph.latency(0, 2), Duration::max());  // not adjacent on the ring
}

TEST(DomainGraphTest, RejectsZeroLatencyTrunks) {
  topology::CampusParams params;
  params.halls = 2;
  params.hall = {.leaves = 2, .spines = 1, .servers_per_leaf = 1};
  topology::CampusBlueprint bp = topology::build_campus(params);
  bp.cross_links[0].latency = Duration::zero();  // lookahead 0 is unschedulable
  EXPECT_THROW((net::DomainGraph{bp}), std::logic_error);
  bp.cross_links[0].latency = Duration::minutes(1);
  bp.cross_links[0].hall_b = 7;  // dangling hall index
  EXPECT_THROW((net::DomainGraph{bp}), std::logic_error);
}

TEST(CampusBlueprintTest, RingAndMeshTrunkCounts) {
  topology::CampusParams params;
  params.hall = {.leaves = 2, .spines = 1, .servers_per_leaf = 1};
  params.halls = 4;
  EXPECT_EQ(topology::build_campus(params).cross_links.size(), 4u);  // ring with wrap
  params.halls = 2;
  EXPECT_EQ(topology::build_campus(params).cross_links.size(), 1u);  // no duplicate wrap
  params.halls = 4;
  params.ring = false;
  EXPECT_EQ(topology::build_campus(params).cross_links.size(), 6u);  // full mesh
}

TEST(DomainSeed, HallZeroRunsTheCampusSeed) {
  EXPECT_EQ(scenario::domain_seed(42, 0), 42u);
  EXPECT_NE(scenario::domain_seed(42, 1), scenario::domain_seed(42, 2));
  EXPECT_NE(scenario::domain_seed(42, 1), scenario::domain_seed(43, 1));
}

// ---------------------------------------------------------------------------
// Campus fixtures.

topology::CampusBlueprint tiny_campus(int halls, bool coupled) {
  topology::CampusParams params;
  params.halls = halls;
  params.hall = {.leaves = 2, .spines = 1, .servers_per_leaf = 1};
  topology::CampusBlueprint bp = topology::build_campus(params);
  if (!coupled) bp.cross_links.clear();
  return bp;
}

CampusConfig tiny_config(std::uint64_t seed) {
  CampusConfig cfg;
  cfg.hall = scenario::WorldConfig::for_level(core::AutomationLevel::kL3_HighAutomation);
  cfg.hall.seed = seed;
  // Boosted fault traffic so short runs still produce seed-dependent traces
  // and spare requests (cf. runner_test.cpp tiny_spec).
  cfg.hall.faults.transceiver_afr = 4.0;
  cfg.hall.faults.gray_rate_per_year = 100.0;
  cfg.traffic_period = Duration::minutes(30);
  cfg.spare_audit_period = Duration::hours(3);
  return cfg;
}

/// Everything a shard count could possibly perturb, captured in one blob.
struct CampusSignature {
  std::vector<std::uint64_t> domain_traces;
  std::uint64_t trace_hash = 0;
  std::uint64_t metrics_hash = 0;
  std::uint64_t events = 0;
  std::uint64_t messages = 0;
  std::uint64_t barriers = 0;
  int depot_stock = 0;
  std::vector<obs::SnapshotEntry> snapshot;
};

CampusSignature signature_of(Campus& campus) {
  CampusSignature sig;
  for (std::size_t i = 0; i < campus.domain_count(); ++i) {
    sig.domain_traces.push_back(campus.domain(i).simulator().trace_hash());
  }
  sig.trace_hash = campus.trace_hash();
  sig.metrics_hash = campus.metrics_hash();
  sig.events = campus.events_processed();
  sig.messages = campus.messages_exchanged();
  sig.barriers = campus.barriers_passed();
  sig.depot_stock = campus.spare_pool().stock();
  sig.snapshot = campus.merged_snapshot();
  return sig;
}

void expect_equal(const CampusSignature& a, const CampusSignature& b, const std::string& what) {
  EXPECT_EQ(a.domain_traces, b.domain_traces) << what;
  EXPECT_EQ(a.trace_hash, b.trace_hash) << what;
  EXPECT_EQ(a.metrics_hash, b.metrics_hash) << what;
  EXPECT_EQ(a.events, b.events) << what;
  EXPECT_EQ(a.messages, b.messages) << what;
  EXPECT_EQ(a.barriers, b.barriers) << what;
  EXPECT_EQ(a.depot_stock, b.depot_stock) << what;
  ASSERT_EQ(a.snapshot.size(), b.snapshot.size()) << what;
  for (std::size_t i = 0; i < a.snapshot.size(); ++i) {
    EXPECT_EQ(a.snapshot[i].name, b.snapshot[i].name) << what;
    EXPECT_EQ(a.snapshot[i].value, b.snapshot[i].value) << what << " " << a.snapshot[i].name;
  }
}

CampusSignature run_campus(const topology::CampusBlueprint& bp, const CampusConfig& cfg,
                           Duration span, int shards, int chunks = 1) {
  Campus campus{bp, cfg};
  runner::ShardPool pool{shards};
  const Campus::Executor exec = shards > 1 ? pool.executor() : Campus::Executor{};
  // Deliberately ragged chunking: run_for boundaries land mid-epoch, proving
  // barriers stay at fixed multiples of the lookahead regardless.
  const Duration chunk = Duration::microseconds(span.count_us() / chunks);
  Duration remaining = span;
  for (int i = 0; i + 1 < chunks; ++i) {
    campus.run_for(chunk, exec);
    remaining = remaining - chunk;
  }
  campus.run_for(remaining, exec);
  campus.check_invariants();
  return signature_of(campus);
}

TEST(CampusTest, UncoupledDomainsMatchStandaloneWorlds) {
  const topology::CampusBlueprint bp = tiny_campus(/*halls=*/3, /*coupled=*/false);
  const CampusConfig cfg = tiny_config(/*seed=*/11);
  Campus campus{bp, cfg};
  EXPECT_FALSE(campus.coupled());
  campus.run_for(Duration::days(1));
  campus.check_invariants();
  EXPECT_EQ(campus.barriers_passed(), 0u);
  EXPECT_EQ(campus.messages_exchanged(), 0u);

  // The anchor of the differential suite: with no trunks, domain i is
  // event-for-event (and metric-for-metric) a standalone World at the
  // derived seed. Hall 0 runs the campus seed itself.
  for (std::size_t i = 0; i < campus.domain_count(); ++i) {
    scenario::WorldConfig solo_cfg = cfg.hall;
    solo_cfg.seed = scenario::domain_seed(cfg.hall.seed, i);
    scenario::World solo{bp.halls[i], std::move(solo_cfg)};
    solo.run_for(Duration::days(1));
    EXPECT_EQ(campus.domain(i).simulator().trace_hash(), solo.simulator().trace_hash())
        << "hall " << i;
    ASSERT_NE(solo.obs().metrics(), nullptr);
    ASSERT_NE(campus.domain(i).obs().metrics(), nullptr);
    EXPECT_EQ(campus.domain(i).obs().metrics()->snapshot_hash(),
              solo.obs().metrics()->snapshot_hash())
        << "hall " << i;
  }
}

TEST(CampusTest, CoupledCampusExchangesMessages) {
  const topology::CampusBlueprint bp = tiny_campus(/*halls=*/4, /*coupled=*/true);
  Campus campus{bp, tiny_config(/*seed=*/5)};
  ASSERT_TRUE(campus.coupled());
  EXPECT_GT(campus.lookahead(), Duration::zero());
  campus.run_for(Duration::days(1));
  campus.check_invariants();
  EXPECT_GT(campus.barriers_passed(), 0u);
  EXPECT_GT(campus.messages_exchanged(), 0u);
  // Cross-traffic flows landed: every hall received flows from its two ring
  // peers (2 flows per peer per 30-minute tick over a day).
  const std::vector<obs::SnapshotEntry> snap = campus.merged_snapshot();
  double rx = 0.0;
  for (const obs::SnapshotEntry& e : snap) {
    if (e.name == "campus_xtraffic_rx_total") rx = e.value;
  }
  EXPECT_GT(rx, 0.0);
}

TEST(CampusTest, ShardCountInvariance) {
  const topology::CampusBlueprint bp = tiny_campus(/*halls=*/4, /*coupled=*/true);
  const CampusConfig cfg = tiny_config(/*seed=*/7);
  const CampusSignature serial = run_campus(bp, cfg, Duration::days(1), /*shards=*/1);
  const CampusSignature two = run_campus(bp, cfg, Duration::days(1), /*shards=*/2);
  const CampusSignature four = run_campus(bp, cfg, Duration::days(1), /*shards=*/4);
  EXPECT_GT(serial.messages, 0u);
  expect_equal(serial, two, "shards=1 vs shards=2");
  expect_equal(serial, four, "shards=1 vs shards=4");
}

TEST(CampusTest, RaggedChunkingLeavesBarriersFixed) {
  const topology::CampusBlueprint bp = tiny_campus(/*halls=*/3, /*coupled=*/true);
  const CampusConfig cfg = tiny_config(/*seed=*/9);
  const CampusSignature whole = run_campus(bp, cfg, Duration::hours(13), 1, /*chunks=*/1);
  // 7 chunks of 13 hours is 6681.42... minutes-per-chunk: every chunk
  // boundary lands mid-epoch.
  const CampusSignature ragged = run_campus(bp, cfg, Duration::hours(13), 1, /*chunks=*/7);
  const CampusSignature ragged_sharded = run_campus(bp, cfg, Duration::hours(13), 2,
                                                    /*chunks=*/7);
  expect_equal(whole, ragged, "one run_for vs 7 ragged chunks");
  expect_equal(whole, ragged_sharded, "one run_for vs 7 ragged chunks on 2 shards");
}

TEST(CampusTest, EmptyEpochsStillSynchronize) {
  // No producers at all: every epoch exchanges zero messages, and the
  // domains must remain exactly standalone Worlds while barriers tick.
  const topology::CampusBlueprint bp = tiny_campus(/*halls=*/2, /*coupled=*/true);
  CampusConfig cfg = tiny_config(/*seed=*/13);
  cfg.traffic_period = Duration::zero();
  cfg.spare_audit_period = Duration::zero();
  Campus campus{bp, cfg};
  campus.run_for(Duration::hours(1));
  EXPECT_EQ(campus.barriers_passed(), 60u);  // 1-minute lookahead
  EXPECT_EQ(campus.messages_exchanged(), 0u);

  scenario::WorldConfig solo_cfg = cfg.hall;
  scenario::World solo{bp.halls[0], std::move(solo_cfg)};
  solo.run_for(Duration::hours(1));
  EXPECT_EQ(campus.domain(0).simulator().trace_hash(), solo.simulator().trace_hash());
}

TEST(CampusTest, SpareDepotArbitrationIsSharedAndBounded) {
  const topology::CampusBlueprint bp = tiny_campus(/*halls=*/4, /*coupled=*/true);
  CampusConfig cfg = tiny_config(/*seed=*/3);
  // A starved depot: some requests must be denied, and the arbitration is
  // part of the shard-invariance surface covered above.
  cfg.spare_pool = {.initial_stock = 1, .restock_per_day = 0.5, .max_stock = 2};
  Campus campus{bp, cfg};
  campus.run_for(Duration::days(2));
  const core::SparePool& pool = campus.spare_pool();
  EXPECT_GT(pool.granted_total() + pool.denied_total(), 0u);
  EXPECT_LE(pool.stock(), 2);
  double requested = 0.0;
  double granted = 0.0;
  double denied = 0.0;
  for (const obs::SnapshotEntry& e : campus.merged_snapshot()) {
    if (e.name == "campus_spares_requested_total") requested = e.value;
    if (e.name == "campus_spares_granted_total") granted = e.value;
    if (e.name == "campus_spares_denied_total") denied = e.value;
  }
  EXPECT_GT(requested, 0.0);
  // The answer counters increment at grant *delivery* (sent + 2*lookahead),
  // so decisions made at the final barriers may still be in flight when the
  // run ends: delivered answers never exceed requests, and the depot's own
  // tally (updated at decision time) never trails the delivered count.
  EXPECT_LE(granted + denied, requested);
  EXPECT_GT(granted + denied, 0.0);
  EXPECT_LE(granted, static_cast<double>(pool.granted_total()));
  EXPECT_LE(denied, static_cast<double>(pool.denied_total()));
  EXPECT_EQ(requested, static_cast<double>(pool.granted_total() + pool.denied_total()));
}

TEST(CampusTest, RandomizedDifferentialShardedVsReference) {
  // Deterministically-randomized campus shapes: every draw comes from a
  // named sim RNG stream, so failures reproduce exactly.
  sim::RngStream rng = sim::RngFactory{20260808}.stream("campus-difftest");
  for (int trial = 0; trial < 4; ++trial) {
    const int halls = static_cast<int>(rng.uniform_int(2, 4));
    const std::uint64_t seed = static_cast<std::uint64_t>(rng.uniform_int(1, 1000));
    CampusConfig cfg = tiny_config(seed);
    cfg.traffic_period = Duration::minutes(static_cast<double>(rng.uniform_int(7, 45)));
    cfg.flows_per_tick = static_cast<int>(rng.uniform_int(1, 3));
    cfg.spare_audit_period = Duration::hours(static_cast<double>(rng.uniform_int(1, 6)));
    const topology::CampusBlueprint bp = tiny_campus(halls, /*coupled=*/true);
    const std::string what = "trial " + std::to_string(trial) + " halls " +
                             std::to_string(halls) + " seed " + std::to_string(seed);
    const CampusSignature reference = run_campus(bp, cfg, Duration::hours(30), /*shards=*/1);
    const CampusSignature sharded = run_campus(bp, cfg, Duration::hours(30), /*shards=*/2);
    expect_equal(reference, sharded, what);
  }
}

TEST(ShardPoolTest, RunsEveryTaskExactlyOnceAcrossRounds) {
  runner::ShardPool pool{4};
  EXPECT_EQ(pool.shards(), 4);
  std::vector<std::atomic<int>> counts(64);
  for (int round = 0; round < 10; ++round) {
    std::vector<runner::ShardPool::Task> tasks;
    tasks.reserve(counts.size());
    for (std::size_t i = 0; i < counts.size(); ++i) {
      tasks.push_back([&counts, i] { counts[i].fetch_add(1, std::memory_order_relaxed); });
    }
    pool.run(tasks);
  }
  for (const std::atomic<int>& c : counts) EXPECT_EQ(c.load(), 10);
}

TEST(ShardPoolTest, SingleShardRunsInline) {
  runner::ShardPool pool{1};
  const std::thread::id caller = std::this_thread::get_id();
  std::vector<runner::ShardPool::Task> tasks;
  std::vector<std::thread::id> ran_on(3);
  for (std::size_t i = 0; i < ran_on.size(); ++i) {
    tasks.push_back([&ran_on, i] { ran_on[i] = std::this_thread::get_id(); });
  }
  pool.run(tasks);
  for (const std::thread::id& id : ran_on) EXPECT_EQ(id, caller);
  std::vector<runner::ShardPool::Task> empty;
  pool.run(empty);  // no-op, must not deadlock
}

TEST(CampusSweep, ShardAndJobCountInvariantReports) {
  // The in-process version of the CI gate: campus-preset sweep JSON must be
  // byte-identical across every jobs x shards combination once timing fields
  // are excluded.
  const runner::SweepSpec spec =
      runner::make_sweep("campus", sim::Duration::days(2), /*first_seed=*/1, /*seeds=*/2);
  ASSERT_EQ(spec.cells.size(), 1u);
  ASSERT_TRUE(spec.cells[0].is_campus());

  const runner::JsonOptions no_timing{.include_timing = false};
  std::string reference;
  for (const auto& [jobs, shards] : std::vector<std::pair<int, int>>{
           {1, 1}, {1, 2}, {1, 4}, {2, 2}}) {
    runner::SweepRunner sweeper;
    runner::SweepRunner::Options opts;
    opts.jobs = jobs;
    opts.shards = shards;
    const runner::SweepReport report = sweeper.run(spec, opts);
    EXPECT_EQ(report.replicates_done, 2u);
    const std::string json = runner::to_json(report, no_timing);
    if (reference.empty()) {
      reference = json;
      EXPECT_NE(json.find("campus/L3"), std::string::npos);
    } else {
      EXPECT_EQ(json, reference) << "jobs=" << jobs << " shards=" << shards;
    }
  }
}

TEST(CampusSweep, SurvivabilityCurvesAreShardInvariant) {
  // The survivability preset's campus cell aggregates per-hall frontiers.
  // Frontiers are computed on the calling thread in hall order, so curves,
  // hashes, and the full report must be byte-identical at any shard width.
  const runner::SweepSpec preset =
      runner::make_sweep("survivability", sim::Duration::days(1), /*first_seed=*/1, /*seeds=*/1);
  runner::SweepSpec spec;
  spec.first_seed = preset.first_seed;
  spec.seeds = 1;
  spec.duration = preset.duration;
  for (const runner::CellSpec& cell : preset.cells) {
    if (cell.is_campus()) spec.cells.push_back(cell);
  }
  ASSERT_EQ(spec.cells.size(), 1u);
  spec.cells[0].config.survivability.orderings = 4;  // keep the unit budget

  const runner::ReplicateResult one =
      runner::SweepRunner::run_replicate(spec.cells[0], 0, 1, spec.duration,
                                         /*sample_trace=*/false, /*shards=*/1);
  const runner::ReplicateResult two =
      runner::SweepRunner::run_replicate(spec.cells[0], 0, 1, spec.duration,
                                         /*sample_trace=*/false, /*shards=*/2);
  const runner::ReplicateResult four =
      runner::SweepRunner::run_replicate(spec.cells[0], 0, 1, spec.duration,
                                         /*sample_trace=*/false, /*shards=*/4);
  ASSERT_TRUE(one.survivability.present());
  // 4 halls x 4 orderings aggregated into one campus frontier.
  EXPECT_EQ(one.survivability.samples, 16u);
  for (const runner::ReplicateResult* other : {&two, &four}) {
    EXPECT_EQ(one.trace_hash, other->trace_hash);
    EXPECT_EQ(one.metrics_hash, other->metrics_hash);
    EXPECT_EQ(one.survivability.hash, other->survivability.hash);
    EXPECT_EQ(one.survivability.largest_component.mean,
              other->survivability.largest_component.mean);
    EXPECT_EQ(one.survivability.server_reachability.ci95,
              other->survivability.server_reachability.ci95);
    EXPECT_EQ(one.metrics[runner::kSurvivabilityAucConnectivity],
              other->metrics[runner::kSurvivabilityAucConnectivity]);
  }
  // The campus-aggregate frontier instruments ride the merged snapshot.
  bool has_auc_gauge = false;
  for (const obs::SnapshotEntry& e : one.obs_snapshot) {
    if (e.name == "survivability_auc_connectivity") has_auc_gauge = true;
  }
  EXPECT_TRUE(has_auc_gauge);

  // Full-report byte identity across jobs x shards, curves included.
  const runner::JsonOptions no_timing{.include_timing = false};
  std::string reference;
  for (const auto& [jobs, shards] : std::vector<std::pair<int, int>>{{1, 1}, {1, 2}, {2, 4}}) {
    runner::SweepRunner sweeper;
    runner::SweepRunner::Options opts;
    opts.jobs = jobs;
    opts.shards = shards;
    const std::string json = runner::to_json(sweeper.run(spec, opts), no_timing);
    if (reference.empty()) {
      reference = json;
      EXPECT_NE(json.find("\"survivability\""), std::string::npos);
    } else {
      EXPECT_EQ(json, reference) << "jobs=" << jobs << " shards=" << shards;
    }
  }
}

TEST(CampusSweep, CampusCellMetricsAreAggregatedAcrossHalls) {
  const runner::SweepSpec spec =
      runner::make_sweep("campus", sim::Duration::days(1), /*first_seed=*/1, /*seeds=*/1);
  const runner::ReplicateResult r =
      runner::SweepRunner::run_replicate(spec.cells[0], 0, 1, spec.duration);
  EXPECT_GT(r.events, 0u);
  EXPECT_NE(r.trace_hash, 0u);
  EXPECT_GT(r.metrics[runner::kAvailability], 0.0);
  EXPECT_LE(r.metrics[runner::kAvailability], 1.0);
  // The merged snapshot carries the campus-coupling instruments.
  bool has_campus_instrument = false;
  for (const obs::SnapshotEntry& e : r.obs_snapshot) {
    if (e.name == "campus_xtraffic_tx_total") has_campus_instrument = true;
  }
  EXPECT_TRUE(has_campus_instrument);
}

}  // namespace
}  // namespace smn
