// Tests for Network::rewire and the robotic topology reconfigurer.
#include <gtest/gtest.h>

#include "core/reconfigure.h"
#include "fault/cascade.h"
#include "net/traffic.h"
#include "test_util.h"
#include "topology/builders.h"

namespace smn::core {
namespace {

using sim::Duration;

struct RewireFixture : ::testing::Test {
  sim::Simulator sim;
  topology::Blueprint bp = topology::build_leaf_spine(
      {.leaves = 4, .spines = 2, .servers_per_leaf = 4, .uplinks_per_spine = 2});
  net::Network net{bp, testutil::short_aoc(), sim};
};

TEST_F(RewireFixture, RewireMovesEndpointsAndIndexes) {
  const auto leaves = net.devices_with_role(topology::NodeRole::kTorSwitch);
  const auto spines = net.devices_with_role(topology::NodeRole::kSpineSwitch);
  const net::LinkId lid = net.links_between(leaves[0], spines[0])[0];
  const std::size_t before_at_l0 = net.links_at(leaves[0]).size();
  const std::size_t before_at_l1 = net.links_at(leaves[1]).size();

  net.rewire(lid, leaves[1], spines[0]);

  const net::Link& l = net.link(lid);
  EXPECT_EQ(l.end_a.device, leaves[1]);
  EXPECT_EQ(l.end_b.device, spines[0]);
  EXPECT_EQ(l.state, net::LinkState::kUp);  // fresh hardware
  EXPECT_EQ(net.links_at(leaves[0]).size(), before_at_l0 - 1);
  EXPECT_EQ(net.links_at(leaves[1]).size(), before_at_l1 + 1);
  EXPECT_EQ(net.links_between(leaves[1], spines[0]).size(), 3u);
  // The embedded blueprint followed.
  const topology::LinkSpec& spec = net.blueprint().link(l.topology_link_index);
  EXPECT_EQ(spec.node_a, leaves[1].value());
  EXPECT_GT(spec.route.length_m, 0.0);
  net.blueprint().validate();
}

TEST_F(RewireFixture, RewireResetsHardwareCondition) {
  const net::LinkId lid{0};
  net.link_mut(lid).end_a.condition.contamination = 0.9;
  net.link_mut(lid).cable.wear = 0.7;
  const auto spines = net.devices_with_role(topology::NodeRole::kSpineSwitch);
  const auto leaves = net.devices_with_role(topology::NodeRole::kTorSwitch);
  net.rewire(lid, leaves[2], spines[1]);
  EXPECT_DOUBLE_EQ(net.link(lid).end_a.condition.contamination, 0.0);
  EXPECT_DOUBLE_EQ(net.link(lid).cable.wear, 0.0);
}

TEST_F(RewireFixture, RewireRejectsSelfLoop) {
  const auto spines = net.devices_with_role(topology::NodeRole::kSpineSwitch);
  EXPECT_THROW(net.rewire(net::LinkId{0}, spines[0], spines[0]), std::invalid_argument);
}

TEST_F(RewireFixture, PortsStayUniquePerDevice) {
  const auto leaves = net.devices_with_role(topology::NodeRole::kTorSwitch);
  const auto spines = net.devices_with_role(topology::NodeRole::kSpineSwitch);
  while (!net.links_between(leaves[0], spines[0]).empty()) {
    net.rewire(net.links_between(leaves[0], spines[0])[0], leaves[1], spines[1]);
  }
  std::set<int> ports;
  for (const net::LinkId lid : net.links_at(leaves[1])) {
    const net::Link& l = net.link(lid);
    const int port = l.end_a.device == leaves[1] ? l.end_a.port : l.end_b.port;
    EXPECT_TRUE(ports.insert(port).second) << "duplicate port " << port;
  }
}

struct ReconfigureFixture : ::testing::Test {
  sim::Simulator sim;
  // Thin 100G uplinks make the *fabric* the bottleneck for the hot leaf
  // pair, which is the regime reconfiguration is for.
  topology::Blueprint bp = topology::build_leaf_spine({.leaves = 4,
                                                       .spines = 2,
                                                       .servers_per_leaf = 4,
                                                       .uplinks_per_spine = 1,
                                                       .server_gbps = 100.0,
                                                       .uplink_gbps = 100.0});
  net::Network net{bp, testutil::short_aoc(), sim};
  sim::RngFactory rngs{51};

  net::TrafficMatrix hot_pair_matrix() {
    net::TrafficMatrix tm;
    const auto servers = net.servers();
    // Leaf 0 hosts servers 0..3, leaf 1 hosts 4..7: saturate that direction.
    for (int s = 0; s < 4; ++s) {
      for (int d = 4; d < 8; ++d) {
        tm.flows.push_back(net::Flow{servers[static_cast<size_t>(s)],
                                     servers[static_cast<size_t>(d)], 30.0});
      }
    }
    return tm;
  }
};

TEST_F(ReconfigureFixture, PlanImprovesDeliveredGoodputAndRestoresWiring) {
  const net::TrafficMatrix tm = hot_pair_matrix();
  const net::LoadReport before = net::route_and_load(net, tm);
  ASSERT_LT(before.delivered_gbps, before.demand_gbps);  // fabric is the bottleneck

  std::vector<std::pair<int, int>> original_endpoints;
  for (const net::Link& l : net.links()) {
    original_endpoints.emplace_back(l.end_a.device.value(), l.end_b.device.value());
  }

  TopologyReconfigurer rec{net, nullptr};
  const TopologyReconfigurer::Plan plan = rec.plan(tm);
  EXPECT_FALSE(plan.moves.empty());
  EXPECT_GT(plan.delivered_after_gbps, plan.delivered_before_gbps);

  // plan() must leave the network exactly as it found it.
  for (const net::Link& l : net.links()) {
    const auto& [a, b] = original_endpoints[static_cast<size_t>(l.id.value())];
    EXPECT_EQ(l.end_a.device.value(), a);
    EXPECT_EQ(l.end_b.device.value(), b);
  }
  const net::LoadReport still = net::route_and_load(net, tm);
  EXPECT_NEAR(still.delivered_gbps, before.delivered_gbps, 1e-6);
}

TEST_F(ReconfigureFixture, ApplyInstantlyRealizesThePlan) {
  const net::TrafficMatrix tm = hot_pair_matrix();
  TopologyReconfigurer rec{net, nullptr};
  const auto plan = rec.plan(tm);
  ASSERT_FALSE(plan.moves.empty());
  rec.apply_instantly(plan);
  const net::LoadReport after = net::route_and_load(net, tm);
  EXPECT_NEAR(after.delivered_gbps, plan.delivered_after_gbps, 1e-6);
}

TEST_F(ReconfigureFixture, PlanNeverStealsServerAccessLinks) {
  TopologyReconfigurer rec{net, nullptr};
  const auto plan = rec.plan(hot_pair_matrix());
  for (const auto& m : plan.moves) {
    for (const auto& r : m.rewires) {
      EXPECT_TRUE(topology::is_switch(net.device(r.from_a).role));
      EXPECT_TRUE(topology::is_switch(net.device(r.from_b).role));
    }
  }
}

TEST_F(ReconfigureFixture, ApplyViaFleetRequiresCableCapability) {
  fault::Environment env;
  fault::FaultInjector injector{net, env, rngs.stream("inj")};
  fault::CascadeModel cascade{net, env, injector, rngs.stream("c")};
  fault::ContaminationProcess contamination{net, env, rngs.stream("co")};

  robotics::RobotFleet::Config no_cable = robotics::RobotFleet::row_coverage(bp);
  robotics::RobotFleet fleet{net, cascade, &contamination, rngs.stream("f"), no_cable};
  TopologyReconfigurer rec{net, &fleet};
  const auto plan = rec.plan(hot_pair_matrix());
  ASSERT_FALSE(plan.moves.empty());
  EXPECT_EQ(rec.apply(plan, nullptr), 0);  // refused: not cable-capable

  robotics::RobotFleet::Config with_cable = robotics::RobotFleet::row_coverage(bp);
  with_cable.can_replace_cable = true;
  with_cable.failure_per_job = 0.0;
  robotics::RobotFleet l4fleet{net, cascade, &contamination, rngs.stream("f4"), with_cable};
  TopologyReconfigurer rec4{net, &l4fleet};
  std::size_t total_rewires = 0;
  for (const auto& m : plan.moves) total_rewires += m.rewires.size();
  bool finished = false;
  const int dispatched = rec4.apply(plan, [&] { finished = true; });
  EXPECT_EQ(dispatched, static_cast<int>(total_rewires));
  sim.run_until(sim.now() + Duration::days(1));
  EXPECT_TRUE(finished);
  const net::LoadReport after = net::route_and_load(net, hot_pair_matrix());
  EXPECT_NEAR(after.delivered_gbps, plan.delivered_after_gbps, 1.0);
  for (const net::Link& l : net.links()) EXPECT_FALSE(l.admin_down);
}

TEST_F(ReconfigureFixture, CascadeAdjacencyCanBeRebuiltAfterRewire) {
  fault::Environment env;
  fault::FaultInjector injector{net, env, rngs.stream("inj")};
  fault::CascadeModel cascade{net, env, injector, rngs.stream("c")};
  const auto leaves = net.devices_with_role(topology::NodeRole::kTorSwitch);
  const auto spines = net.devices_with_role(topology::NodeRole::kSpineSwitch);
  const net::LinkId lid = net.links_between(leaves[0], spines[0])[0];
  net.rewire(lid, leaves[3], spines[1]);
  cascade.rebuild_adjacency();  // must not throw, and contacts stay self-free
  const auto contacts =
      cascade.predicted_contacts(fault::Disturbance{lid, leaves[3], 1.0, true});
  for (const net::LinkId c : contacts) EXPECT_NE(c, lid);
}

}  // namespace
}  // namespace smn::core
