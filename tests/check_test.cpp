// SMN_ASSERT / SMN_DCHECK semantics and the runtime invariant sweeps: a
// passing sweep on healthy components, and death tests proving corruption is
// actually detected (ISSUE acceptance: "invariant violations detected").
#include "core/check.h"

#include <gtest/gtest.h>

#include "maintenance/ticket.h"
#include "net/network.h"
#include "scenario/world.h"
#include "sim/event_queue.h"
#include "topology/builders.h"

namespace smn {
namespace {

using sim::Duration;
using sim::TimePoint;

TEST(Check, AssertPassesOnTrueCondition) {
  SMN_ASSERT(1 + 1 == 2);
  SMN_ASSERT(true, "context %d never rendered", 42);
}

TEST(CheckDeathTest, AssertAbortsAndPrintsExpression) {
  EXPECT_DEATH(SMN_ASSERT(2 + 2 == 5), "SMN_CHECK failed: 2 \\+ 2 == 5");
}

TEST(CheckDeathTest, AssertPrintsContextMessage) {
  const int got = 7;
  EXPECT_DEATH(SMN_ASSERT(got == 3, "got=%d want=3", got), "context: got=7 want=3");
}

TEST(Check, DcheckCompilesInBothModes) {
#if SMN_DCHECK_IS_ON
  EXPECT_DEATH(SMN_DCHECK(false, "dcheck active"), "SMN_CHECK failed");
#else
  SMN_DCHECK(false, "compiled away; must not abort");
#endif
}

TEST(Check, SimulatorInvariantsHoldThroughRunAndCancellation) {
  sim::Simulator sim;
  const sim::EventId id = sim.schedule_after(Duration::seconds(5), [] {});
  sim.schedule_after(Duration::seconds(1), [] {});
  sim.cancel(id);
  sim.cancel(sim::EventId{424242});  // stale id: must not poison bookkeeping
  sim.check_invariants();
  EXPECT_EQ(sim.pending(), 1u);
  sim.run();
  sim.check_invariants();
  EXPECT_EQ(sim.pending(), 0u);
}

TEST(Check, WorldInvariantSweepPassesOnHealthyRun) {
  scenario::WorldConfig cfg = scenario::WorldConfig::for_level(core::AutomationLevel::kL3_HighAutomation);
  cfg.seed = 11;
  // Force several in-simulation sweeps on top of the explicit final one.
  cfg.invariant_interval = Duration::hours(12);
  scenario::World world{topology::build_leaf_spine({.leaves = 4, .spines = 2, .servers_per_leaf = 2}),
                        cfg};
  world.run_for(Duration::days(5));
  world.check_invariants();
}

TEST(CheckDeathTest, NetworkDetectsCorruptedLinkEndpoint) {
  sim::Simulator sim;
  net::Network network{topology::build_leaf_spine({.leaves = 2, .spines = 2, .servers_per_leaf = 1}),
                       {}, sim};
  network.check_invariants();
  // Point a link at a device that does not exist; the referential-integrity
  // sweep must catch it.
  network.link_mut(net::LinkId{0}).end_a.device = net::DeviceId{10000};
  EXPECT_DEATH(network.check_invariants(), "out of range");
}

TEST(CheckDeathTest, NetworkDetectsOutOfRangeContamination) {
  sim::Simulator sim;
  net::Network network{topology::build_leaf_spine({.leaves = 2, .spines = 2, .servers_per_leaf = 1}),
                       {}, sim};
  network.link_mut(net::LinkId{0}).end_b.condition.contamination = 1.5;
  EXPECT_DEATH(network.check_invariants(), "out of \\[0,1\\]");
}

TEST(Check, TicketInvariantsHoldThroughLifecycle) {
  maintenance::TicketSystem tickets;
  const TimePoint t0 = TimePoint::origin() + Duration::hours(1);
  const int id = *tickets.open(t0, net::LinkId{3}, telemetry::IssueKind::kDown, true);
  tickets.check_invariants();
  tickets.mark_dispatched(id, t0 + Duration::minutes(5));
  tickets.mark_started(id, t0 + Duration::minutes(30));
  tickets.check_invariants();
  tickets.mark_resolved(id, t0 + Duration::hours(2), "robot");
  tickets.check_invariants();
  // A second ticket for the same link is legal once the first closed.
  ASSERT_TRUE(tickets.open(t0 + Duration::hours(3), net::LinkId{3},
                           telemetry::IssueKind::kFlapping, true)
                  .has_value());
  tickets.check_invariants();
}

}  // namespace
}  // namespace smn
