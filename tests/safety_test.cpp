// Tests for the §3.4 human-robot safety interlock: robots stand down in rows
// where technicians are physically working.
#include <gtest/gtest.h>

#include <optional>

#include "scenario/world.h"
#include "test_util.h"
#include "topology/builders.h"

namespace smn::robotics {
namespace {

using maintenance::Job;
using maintenance::JobReport;
using maintenance::RepairActionKind;
using sim::Duration;
using sim::TimePoint;

struct SafetyFixture : ::testing::Test {
  sim::Simulator sim;
  topology::Blueprint bp = topology::build_leaf_spine(
      {.leaves = 4, .spines = 2, .servers_per_leaf = 2, .uplinks_per_spine = 2});
  net::Network net{bp, testutil::short_aoc(), sim};
  fault::Environment env;
  sim::RngFactory rngs{71};
  fault::FaultInjector injector{net, env, rngs.stream("inj")};
  fault::CascadeModel cascade{net, env, injector, rngs.stream("casc")};
  fault::ContaminationProcess contamination{net, env, rngs.stream("cont")};

  RobotFleet make_fleet() {
    RobotFleet::Config cfg = RobotFleet::row_coverage(bp);
    cfg.failure_per_job = 0.0;
    cfg.manipulator.base_grasp_success = 1.0;
    cfg.manipulator.hard_tab_penalty = 0.0;
    cfg.manipulator.clutter_penalty_per_neighbor = 0.0;
    return RobotFleet{net, cascade, &contamination, rngs.stream("fleet"), cfg};
  }
};

TEST_F(SafetyFixture, LockedRowHoldsRobotJobs) {
  RobotFleet fleet = make_fleet();
  const net::LinkId lid{0};
  const topology::RackLocation site =
      net.device(net.link(lid).end_a.device).location;
  fleet.lock_row(site, Duration::hours(2));
  EXPECT_TRUE(fleet.row_locked(site));

  std::optional<JobReport> report;
  fleet.submit(Job{0, lid, 0, RepairActionKind::kInspect, false},
               [&](const JobReport& r) { report = r; });
  sim.run_until(TimePoint::origin() + Duration::hours(1));
  EXPECT_FALSE(report.has_value());  // held by the interlock
  sim.run_until(TimePoint::origin() + Duration::hours(3));
  ASSERT_TRUE(report.has_value());   // released after the lockout
  EXPECT_TRUE(report->performed);
  EXPECT_GE(report->started, TimePoint::origin() + Duration::hours(2));
}

TEST_F(SafetyFixture, OtherRowsKeepWorking) {
  RobotFleet fleet = make_fleet();
  // Lock the spine row (row 0); submit work for a leaf row.
  fleet.lock_row(topology::RackLocation{0, 0, 0, 0}, Duration::hours(4));
  net::LinkId leaf_site_link;
  for (const net::Link& l : net.links()) {
    const auto& loc = net.device(l.end_a.device).location;
    if (loc.row != 0) {
      leaf_site_link = l.id;
      break;
    }
  }
  std::optional<JobReport> report;
  const int end = net.device(net.link(leaf_site_link).end_a.device).location.row != 0
                      ? 0
                      : 1;
  fleet.submit(Job{0, leaf_site_link, end, RepairActionKind::kInspect, false},
               [&](const JobReport& r) { report = r; });
  sim.run_until(TimePoint::origin() + Duration::hours(1));
  EXPECT_TRUE(report.has_value());  // unaffected row proceeds
}

TEST_F(SafetyFixture, LockExtendsButNeverShrinks) {
  RobotFleet fleet = make_fleet();
  const topology::RackLocation row{0, 1, 0, 0};
  fleet.lock_row(row, Duration::hours(3));
  fleet.lock_row(row, Duration::hours(1));  // shorter: must not shrink
  sim.run_until(TimePoint::origin() + Duration::hours(2));
  EXPECT_TRUE(fleet.row_locked(row));
  sim.run_until(TimePoint::origin() + Duration::hours(3) + Duration::minutes(1));
  EXPECT_FALSE(fleet.row_locked(row));
}

TEST(SafetyIntegration, TechnicianPresenceLocksRobotsOut) {
  // End-to-end through the World wiring: an L2 world where a technician job
  // (robot-incapable cable replacement) triggers the interlock.
  const topology::Blueprint bp = topology::build_leaf_spine(
      {.leaves = 4, .spines = 2, .servers_per_leaf = 2, .uplinks_per_spine = 2});
  scenario::WorldConfig cfg =
      scenario::WorldConfig::for_level(core::AutomationLevel::kL2_PartialAutomation);
  cfg.network = testutil::short_aoc();
  cfg.faults.transceiver_afr = 0;
  cfg.faults.cable_afr = 0;
  cfg.faults.switch_afr = 0;
  cfg.faults.server_nic_afr = 0;
  cfg.faults.gray_rate_per_year = 0;
  cfg.contamination.mean_accumulation_per_day = 0;
  cfg.detection.false_positive_per_year = 0;
  scenario::World world{bp, cfg};
  world.start();

  // Cable break forces a technician into the hall.
  const net::DeviceId leaf =
      world.network().devices_with_role(topology::NodeRole::kTorSwitch)[0];
  const net::DeviceId spine =
      world.network().devices_with_role(topology::NodeRole::kSpineSwitch)[0];
  const net::LinkId uplink = world.network().links_between(leaf, spine)[0];
  world.injector().inject_cable_break(uplink);
  world.run_for(sim::Duration::days(7));
  EXPECT_EQ(world.network().link(uplink).state, net::LinkState::kUp);
  EXPECT_GE(world.technicians().completed(), 1u);
  // The interlock fired at least once (the technician's row was locked).
  // Indirect check: the system remained consistent and no robot job ran in
  // parallel at that faceplate — verified by the suite's determinism and by
  // row_locked during the technician's dwell in the unit tests above.
}

}  // namespace
}  // namespace smn::robotics
